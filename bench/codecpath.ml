(* Codec-path benchmark: derived zero-copy parse vs the legacy hand-written
   parser.

   A steady mix of plain TCP/UDP frames is replayed through (a) the legacy
   parser (build a Pkt.t per frame) and (b) the staged zero-copy path
   (shape_of + five-tuple getters straight off the bytes — the per-frame
   work of a sharding datapath, no record built), and the same discipline
   is applied to VXLAN frames read through the inner-header getters.  The
   results go to BENCH_codec.json (maestro-telemetry/1, diffable with
   `check_regression` against bench/baseline/).

   Gated counters (deterministic, compared by default):
     codec.frames            frames per timing pass (floor-gated: the
                             differential must keep covering the trace)
     codec.roundtrips        serialize→parse_typed→equal successes over
                             plain + VXLAN + GRE packets
     codec.parse_agreement   staged parse = legacy parse (Pkt.equal)
     codec.parse_alloc_free  1 when the zero-copy path allocated nothing
                             (floor-gated: dropping to 0 fails CI; the
                             binary also exits non-zero itself)
     codec.inner_alloc_free  same for the inner-header (VXLAN) path
   Ratio counter (gated with a relaxed threshold, machine speed cancels):
     codec.parse_rel_cost_x100  100 * t_zerocopy / t_legacy — growth
                             means the staged path lost ground
   Timing counters (_ns names, skipped by the default gate policy):
     codec.shape_ns_x100, codec.zerocopy_ns_x100, codec.legacy_ns_x100,
     codec.typed_ns_x100, codec.inner_ns_x100 *)

open Packet

let iters_scale () =
  match Sys.getenv_opt "MAESTRO_BENCH_ITERS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> float_of_int n /. 100.0
      | _ -> 1.0)
  | None -> 1.0

let scaled base = max 100 (int_of_float (float_of_int base *. iters_scale ()))
let x100 v = int_of_float (Float.round (100.0 *. v))
let counter suffix doc = Telemetry.Counter.make ("codec." ^ suffix) ~doc
let passes = 3

let time_pass f =
  let best = ref infinity in
  for _ = 1 to passes do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let () =
  Format.printf "@.=== Codec-path benchmarks (BENCH_codec.json) ===@.";
  Telemetry.reset ();
  Telemetry.disable ();
  let rng = Random.State.make [| 11 |] in
  let fs = Traffic.Gen.flows rng 512 in
  let spec = { Traffic.Gen.default_spec with pkts = scaled 20_000; reply_fraction = 0.4 } in
  let plain = Traffic.Gen.uniform ~spec rng ~flows:fs in
  let vxlan = Traffic.Gen.encapsulate Pkt.Vxlan plain in
  let gre = Traffic.Gen.encapsulate Pkt.Gre plain in
  let frames = Array.map Wire.serialize plain in
  let vx_frames = Array.map Wire.serialize vxlan in
  let n = Array.length frames in
  let npf = float_of_int n in
  let c = Stacks.pkt in
  let g_src = Codec.getter c "ipv4.src"
  and g_dst = Codec.getter c "ipv4.dst"
  and g_proto = Codec.getter c "ipv4.proto"
  and g_tsp = Codec.getter c "tcp.sport"
  and g_tdp = Codec.getter c "tcp.dport"
  and g_usp = Codec.getter c "udp.sport"
  and g_udp = Codec.getter c "udp.dport"
  and g_isrc = Codec.getter c "iipv4.src"
  and g_idst = Codec.getter c "iipv4.dst"
  and g_iproto = Codec.getter c "iipv4.proto"
  and g_itsp = Codec.getter c "itcp.sport"
  and g_itdp = Codec.getter c "itcp.dport" in
  let sink = ref 0 in
  (* classification alone *)
  let shape_pass () =
    for i = 0 to n - 1 do
      sink := !sink lxor Codec.shape_of c (Array.unsafe_get frames i)
    done
  in
  (* the sharding datapath's per-frame work: classify + read the 5-tuple *)
  let zero_pass () =
    for i = 0 to n - 1 do
      let b = Array.unsafe_get frames i in
      let sid = Codec.shape_of c b in
      let s =
        g_src.(sid) b + g_dst.(sid) b + g_proto.(sid) b
        +
        if sid = Stacks.Sid.tcp then g_tsp.(sid) b + g_tdp.(sid) b
        else g_usp.(sid) b + g_udp.(sid) b
      in
      sink := !sink lxor s
    done
  in
  (* the same 5-tuple out of the encapsulated inner headers *)
  let inner_pass () =
    for i = 0 to n - 1 do
      let b = Array.unsafe_get vx_frames i in
      let sid = Codec.shape_of c b in
      let s =
        g_isrc.(sid) b + g_idst.(sid) b + g_iproto.(sid) b + g_itsp.(sid) b + g_itdp.(sid) b
      in
      sink := !sink lxor s
    done
  in
  let legacy_pass () =
    for i = 0 to n - 1 do
      match Wire.Legacy.parse (Array.unsafe_get frames i) with
      | Ok p -> sink := !sink lxor p.Pkt.ip_src
      | Error _ -> ()
    done
  in
  let typed_pass () =
    for i = 0 to n - 1 do
      match Wire.parse_typed (Array.unsafe_get frames i) with
      | Ok p -> sink := !sink lxor p.Pkt.ip_src
      | Error _ -> ()
    done
  in
  shape_pass ();
  zero_pass ();
  inner_pass ();
  legacy_pass ();
  typed_pass ();
  let t_shape = time_pass shape_pass /. npf *. 1e9 in
  let t_zero = time_pass zero_pass /. npf *. 1e9 in
  let t_inner = time_pass inner_pass /. npf *. 1e9 in
  let t_legacy = time_pass legacy_pass /. npf *. 1e9 in
  let t_typed = time_pass typed_pass /. npf *. 1e9 in
  let w0 = Gc.minor_words () in
  zero_pass ();
  let words = (Gc.minor_words () -. w0) /. npf in
  let w1 = Gc.minor_words () in
  inner_pass ();
  let inner_words = (Gc.minor_words () -. w1) /. npf in
  (* differential coverage: every frame parses identically on both paths,
     every packet (plain and both tunnel kinds) round-trips *)
  let agreement = ref 0 in
  Array.iteri
    (fun i b ->
      match (Wire.parse b, Wire.Legacy.parse b) with
      | Ok a, Ok l when Pkt.equal a l -> incr agreement
      | _ -> ignore i)
    frames;
  let roundtrips = ref 0 in
  Array.iter
    (fun p ->
      match Wire.parse_typed ~port:p.Pkt.port (Wire.serialize p) with
      | Ok q when Pkt.equal { p with Pkt.ts_ns = 0 } { q with Pkt.ts_ns = 0 } -> incr roundtrips
      | _ -> ())
    (Array.concat [ plain; vxlan; gre ]);
  let rel = t_zero /. t_legacy in
  Format.printf
    "frames %d  shape %5.1f ns  zerocopy %5.1f ns  legacy %5.1f ns  typed %5.1f ns  inner %5.1f ns@."
    n t_shape t_zero t_legacy t_typed t_inner;
  Format.printf
    "zerocopy/legacy %4.2fx  words/frame %6.4f (outer) %6.4f (inner)  agreement %d/%d  roundtrips %d/%d@."
    rel words inner_words !agreement n !roundtrips (3 * n);
  ignore !sink;
  Telemetry.enable ();
  Telemetry.Counter.add (counter "frames" "frames per timing pass") n;
  Telemetry.Counter.add (counter "roundtrips" "serialize/parse_typed roundtrip successes")
    !roundtrips;
  Telemetry.Counter.add (counter "parse_agreement" "staged = legacy parse agreements") !agreement;
  Telemetry.Counter.add
    (counter "parse_rel_cost_x100" "zerocopy/legacy cost ratio, x100 (lower is better)")
    (x100 rel);
  Telemetry.Counter.add
    (counter "parse_alloc_free" "1 when the zero-copy path allocated no minor words")
    (if words = 0.0 then 1 else 0);
  Telemetry.Counter.add
    (counter "inner_alloc_free" "1 when the inner-header path allocated no minor words")
    (if inner_words = 0.0 then 1 else 0);
  Telemetry.Counter.add (counter "shape_ns_x100" "classification cost, 1/100 ns per frame")
    (x100 t_shape);
  Telemetry.Counter.add (counter "zerocopy_ns_x100" "zero-copy 5-tuple cost, 1/100 ns per frame")
    (x100 t_zero);
  Telemetry.Counter.add (counter "legacy_ns_x100" "legacy parse cost, 1/100 ns per frame")
    (x100 t_legacy);
  Telemetry.Counter.add (counter "typed_ns_x100" "staged Pkt.t parse cost, 1/100 ns per frame")
    (x100 t_typed);
  Telemetry.Counter.add (counter "inner_ns_x100" "inner 5-tuple cost, 1/100 ns per frame")
    (x100 t_inner);
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Telemetry.reset ();
  let file = "BENCH_codec.json" in
  let oc = open_out file in
  output_string oc (Telemetry.to_json ~name:"codec" snap);
  close_out oc;
  Format.printf "wrote %s@." file;
  (* self-gate: the staged path must stay allocation-free and fully
     agree with the legacy oracle *)
  let fail = ref 0 in
  let check cond msg = if not cond then (incr fail; Format.printf "VIOLATION: %s@." msg) in
  check (words = 0.0) "zero-copy path allocated minor words";
  check (inner_words = 0.0) "inner-header path allocated minor words";
  check (!agreement = n) "staged parse disagrees with legacy parse";
  check (!roundtrips = 3 * n) "serialize/parse_typed roundtrip failures";
  if !fail > 0 then exit 1
