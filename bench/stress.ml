(* Entry point for the flow-scale stress harness; the logic lives in
   Gates.Stress_gate.  Scale comes from MAESTRO_STRESS_FLOWS (default one
   million flows — the nightly run; PR CI sets 50000).  First argv
   overrides the telemetry output path. *)

let () =
  let out = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  if Gates.Stress_gate.run ?out () > 0 then exit 1
