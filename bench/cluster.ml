(* CI entry point for the cluster-tier smoke gate; the logic lives in
   Gates.Cluster_gate.  First argv overrides the telemetry output path. *)

let () =
  let out = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  if Gates.Cluster_gate.run ?out () > 0 then exit 1
