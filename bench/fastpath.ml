(* Fast-path benchmarks: table-driven vs bit-by-bit Toeplitz, and the
   persistent domain pool vs spawn-per-run execution.  Timings are recorded
   as [_ns]-suffixed telemetry counters (machine-dependent, skipped by the
   regression gate's default policy) together with the speedup ratios, and
   written to BENCH_fastpath.json in the same schema as the per-NF
   documents so `check_regression` can diff them. *)

let c_ref_ns =
  Telemetry.Counter.make "fastpath.toeplitz_ref_ns_x100"
    ~doc:"bit-by-bit Toeplitz, 1/100 ns per 12B hash"

let c_compiled_ns =
  Telemetry.Counter.make "fastpath.toeplitz_compiled_ns_x100"
    ~doc:"table-driven Toeplitz, 1/100 ns per 12B hash"

let c_toeplitz_speedup =
  Telemetry.Counter.make "fastpath.toeplitz_speedup_x100"
    ~doc:"compiled-over-reference Toeplitz speedup, x100"

let c_spawn_ns =
  Telemetry.Counter.make "fastpath.domains_spawn_ns_x100"
    ~doc:"spawn-per-run shared-nothing execution, 1/100 ns per packet"

let c_pool_ns =
  Telemetry.Counter.make "fastpath.domains_pool_ns_x100"
    ~doc:"pooled shared-nothing execution, 1/100 ns per packet"

let c_pool_speedup =
  Telemetry.Counter.make "fastpath.pool_speedup_x100"
    ~doc:"pool-over-spawn execution speedup, x100"

let iters_scale () =
  match Sys.getenv_opt "MAESTRO_BENCH_ITERS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> float_of_int n /. 100.0
      | _ -> 1.0)
  | None -> 1.0

let scaled base = max 1 (int_of_float (float_of_int base *. iters_scale ()))

let time_ns iters f =
  for _ = 1 to max 1 (iters / 10) do
    f ()
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let bench_toeplitz () =
  let key = Nic.Toeplitz.microsoft_test_key in
  let ckey = Nic.Toeplitz.Key.compile key in
  let pkt =
    Packet.Pkt.make ~ip_src:0x0a000001 ~ip_dst:0x60000002 ~src_port:1234 ~dst_port:80 ()
  in
  let input = Option.get (Nic.Field_set.hash_input Nic.Field_set.ipv4_tcp pkt) in
  assert (Nic.Toeplitz.hash_int ~key input = Nic.Toeplitz.Key.hash_int ckey input);
  let sink = ref 0 in
  let iters = scaled 200_000 in
  let t_ref = time_ns iters (fun () -> sink := !sink + Nic.Toeplitz.hash_int ~key input) in
  let t_compiled =
    time_ns iters (fun () -> sink := !sink + Nic.Toeplitz.Key.hash_int ckey input)
  in
  ignore !sink;
  let speedup = t_ref /. t_compiled in
  Format.printf "toeplitz 12B hash:     reference %8.1f ns   compiled %8.1f ns   %.1fx@." t_ref
    t_compiled speedup;
  (t_ref, t_compiled, speedup)

let bench_pool () =
  let request = { Maestro.Pipeline.default_request with cores = 4 } in
  let plan =
    (Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn "fw")).Maestro.Pipeline.plan
  in
  let st = Random.State.make [| 97 |] in
  let flows = Traffic.Gen.flows st 200 in
  let trace =
    Traffic.Gen.uniform ~spec:{ Traffic.Gen.default_spec with pkts = 4000 } st ~flows
  in
  let npkts = float_of_int (Array.length trace) in
  let runs = scaled 30 in
  let t_spawn =
    time_ns runs (fun () -> ignore (Runtime.Domains.run_shared_nothing_spawning plan trace))
    /. npkts
  in
  let pool = Runtime.Pool.create ~cores:4 () in
  let t_pool =
    Fun.protect
      ~finally:(fun () -> Runtime.Pool.shutdown pool)
      (fun () -> time_ns runs (fun () -> ignore (Runtime.Pool.run pool plan trace)) /. npkts)
  in
  let speedup = t_spawn /. t_pool in
  Format.printf "fw shared-nothing x4:  spawn %11.1f ns/pkt  pool %8.1f ns/pkt   %.1fx@." t_spawn
    t_pool speedup;
  (t_spawn, t_pool, speedup)

let x100 v = int_of_float (Float.round (100.0 *. v))

let run () =
  Format.printf "@.=== Fast-path benchmarks (BENCH_fastpath.json) ===@.";
  (* measure with telemetry off so the numbers are the uninstrumented cost *)
  Telemetry.reset ();
  Telemetry.disable ();
  let t_ref, t_compiled, toeplitz_speedup = bench_toeplitz () in
  let t_spawn, t_pool, pool_speedup = bench_pool () in
  Telemetry.enable ();
  Telemetry.Counter.add c_ref_ns (x100 t_ref);
  Telemetry.Counter.add c_compiled_ns (x100 t_compiled);
  Telemetry.Counter.add c_toeplitz_speedup (x100 toeplitz_speedup);
  Telemetry.Counter.add c_spawn_ns (x100 t_spawn);
  Telemetry.Counter.add c_pool_ns (x100 t_pool);
  Telemetry.Counter.add c_pool_speedup (x100 pool_speedup);
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Telemetry.reset ();
  let file = "BENCH_fastpath.json" in
  let oc = open_out file in
  output_string oc (Telemetry.to_json ~name:"fastpath" snap);
  close_out oc;
  Format.printf "wrote %s@." file
