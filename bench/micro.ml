(* Bechamel micro-benchmarks of the performance-critical primitives. *)

open Bechamel
open Toolkit

let toeplitz_bench =
  let key = Nic.Toeplitz.microsoft_test_key in
  let pkt = Packet.Pkt.make ~ip_src:0x0a000001 ~ip_dst:0x60000002 ~src_port:1234 ~dst_port:80 () in
  let input = Option.get (Nic.Field_set.hash_input Nic.Field_set.ipv4_tcp pkt) in
  Test.make ~name:"toeplitz-hash-12B" (Staged.stage (fun () -> Nic.Toeplitz.hash_int ~key input))

let toeplitz_compiled_bench =
  let ckey = Nic.Toeplitz.Key.compile Nic.Toeplitz.microsoft_test_key in
  let pkt = Packet.Pkt.make ~ip_src:0x0a000001 ~ip_dst:0x60000002 ~src_port:1234 ~dst_port:80 () in
  let input = Option.get (Nic.Field_set.hash_input Nic.Field_set.ipv4_tcp pkt) in
  Test.make ~name:"toeplitz-hash-12B-tbl"
    (Staged.stage (fun () -> Nic.Toeplitz.Key.hash_int ckey input))

(* The RFC 1071 checksum primitive shared by the derived encoders' fixups
   and Wire.internet_checksum.  The 63-byte buffer exercises the odd-tail
   path, which folds in place instead of allocating a padded copy. *)
let checksum_bench =
  let b = Bytes.init 63 (fun i -> Char.chr ((i * 37) land 0xff)) in
  Test.make ~name:"internet-checksum-63B"
    (Staged.stage (fun () -> Packet.Wire.internet_checksum b))

let checksum_region_bench =
  let b = Bytes.init 1514 (fun i -> Char.chr ((i * 41) land 0xff)) in
  Test.make ~name:"checksum-sum-region-1514B"
    (Staged.stage (fun () ->
         Packet.Codec.Checksum.(finish (sum_region b ~off:0 ~len:1514 0))))

let map_bench =
  let m = State.Map_s.create ~capacity:65536 in
  let keys = Array.init 1024 (fun i -> Dsl.Ast.key_of_parts [ (32, i); (32, i * 7) ]) in
  Array.iteri (fun i k -> ignore (State.Map_s.put m k i)) keys;
  let i = ref 0 in
  Test.make ~name:"map-get"
    (Staged.stage (fun () ->
         i := (!i + 1) land 1023;
         State.Map_s.get m keys.(!i)))

let dchain_bench =
  let c = State.Dchain.create ~capacity:65536 in
  for i = 0 to 1023 do
    ignore (State.Dchain.allocate c ~now:i)
  done;
  let i = ref 0 in
  Test.make ~name:"dchain-rejuvenate"
    (Staged.stage (fun () ->
         i := (!i + 1) land 1023;
         State.Dchain.rejuvenate c !i ~now:!i))

let sketch_bench =
  let s = State.Sketch.create () in
  let key = Dsl.Ast.key_of_parts [ (32, 42); (32, 77) ] in
  Test.make ~name:"sketch-count" (Staged.stage (fun () -> State.Sketch.count s key))

let fw_pkt_bench =
  let nf = Nfs.Registry.find_exn "fw" in
  let info = Dsl.Check.check_exn nf in
  let inst = Dsl.Instance.create nf in
  let pkt = Packet.Pkt.make ~ip_src:0x0a000001 ~ip_dst:0x60000002 ~src_port:1234 ~dst_port:80 () in
  Test.make ~name:"fw-interpret-packet"
    (Staged.stage (fun () -> Dsl.Interp.process nf info inst pkt))

let gauss_bench =
  Test.make ~name:"rs3-gauss-fw-keys"
    (Staged.stage (fun () ->
         let p =
           Result.get_ok
             (Rs3.Problem.for_constraints ~nports:2 [ Rs3.Cstr.symmetric ~port_a:0 ~port_b:1 ])
         in
         Rs3.Solve.solve ~seed:1 ~max_attempts:4 p))

(* The telemetry contract is "zero overhead when disabled": the instrumented
   Toeplitz hash costs a single bool load over an uninstrumented one, and the
   span wrapper a bool test plus closure call.  Measure the wrapper against
   the bare hash — the cheapest instrumented operation, i.e. the worst
   relative case — and report the overhead percentage. *)
let time_ns iters f =
  for _ = 1 to iters / 10 do
    f ()
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let telemetry_overhead () =
  assert (not (Telemetry.enabled ()));
  let key = Nic.Toeplitz.microsoft_test_key in
  let pkt = Packet.Pkt.make ~ip_src:0x0a000001 ~ip_dst:0x60000002 ~src_port:1234 ~dst_port:80 () in
  let input = Option.get (Nic.Field_set.hash_input Nic.Field_set.ipv4_tcp pkt) in
  let sink = ref 0 in
  let plain () = sink := !sink + Nic.Toeplitz.hash_int ~key input in
  let wrapped () = Telemetry.Span.with_span "micro" plain in
  let iters = 300_000 in
  let t_plain = time_ns iters plain in
  let t_wrapped = time_ns iters wrapped in
  let overhead = Float.max 0.0 (100.0 *. (t_wrapped -. t_plain) /. t_plain) in
  Format.printf "@.=== Disabled-telemetry overhead (12B Toeplitz hash) ===@.";
  Format.printf "bare instrumented hash:   %8.1f ns/op@." t_plain;
  Format.printf "+ disabled span wrapper:  %8.1f ns/op@." t_wrapped;
  Format.printf "overhead: %.2f%% (contract: < 2%%)@." overhead;
  ignore !sink

let run () =
  telemetry_overhead ();
  let tests =
    [
      toeplitz_bench;
      toeplitz_compiled_bench;
      checksum_bench;
      checksum_region_bench;
      map_bench;
      dchain_bench;
      sketch_bench;
      fw_pkt_bench;
      gauss_bench;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  Format.printf "@.=== Micro-benchmarks (Bechamel) ===@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Format.printf "%-24s %12.1f ns/op@." name est
          | _ -> Format.printf "%-24s (no estimate)@." name)
        results)
    tests
