(* Reproduction of every table and figure of the paper's evaluation.
   Each function prints the series the corresponding figure plots; expected
   shapes are recorded in EXPERIMENTS.md and asserted by
   test/test_experiments.ml. *)

let core_counts = [ 1; 2; 4; 8; 16 ]

let printf = Format.printf

let plan_for ?(seed = 0xbeef) ?(strategy = `Auto) nf cores =
  let request = { Maestro.Pipeline.default_request with cores; strategy; seed } in
  (Maestro.Pipeline.parallelize_exn ~request nf).Maestro.Pipeline.plan

let gbps_of ?balanced_reta ?params plan profile trace =
  (Sim.Throughput.evaluate ?balanced_reta ?params plan profile trace).Sim.Throughput.gbps

let header title = printf "@.=== %s ===@." title

(* --- Fig. 2: Constraints Generator outputs -------------------------------- *)

let fig2 () =
  header "Figure 2: Constraints Generator example outputs";
  List.iter
    (fun nf ->
      let report = Maestro.Report.build (Symbex.Exec.run nf) in
      printf "@[<v 2>%s:@ %a@]@." nf.Dsl.Ast.name Maestro.Sharding.pp_decision
        (Maestro.Sharding.decide report))
    (Nfs.Scenarios.all ())

(* --- Fig. 3: firewall SR -> sharding constraints --------------------------- *)

let fig3 () =
  header "Figure 3: from the firewall's stateful report to its constraints";
  let nf = Nfs.Registry.find_exn "fw" in
  let model = Symbex.Exec.run nf in
  let report = Maestro.Report.build model in
  printf "%a@." Maestro.Report.pp report;
  printf "%a@." Maestro.Sharding.pp_decision (Maestro.Sharding.decide report);
  let plan = plan_for nf 16 in
  printf "@.%s@." (Maestro.Codegen.emit_rss_keys plan)

(* --- Fig. 5: shared-nothing FW under uniform vs Zipfian traffic ------------ *)

let fig5 () =
  header "Figure 5: shared-nothing firewall, uniform vs Zipfian traffic (Gbps)";
  let uniform = Sim.Workload.read_heavy ~pkts:50_000 ~flows:1000 "fw" in
  let zipf = Sim.Workload.zipf ~pkts:50_000 "fw" in
  let p_uni = Sim.Workload.profile_of uniform in
  let p_zipf = Sim.Workload.profile_of zipf in
  let seeds = [ 0xbeef; 0xcafe; 0xd00d; 0xf00d; 0xfeed ] in
  printf "cores |  uniform       | zipf (min..max) | zipf balanced (min..max)@.";
  List.iter
    (fun cores ->
      let series profile trace balanced =
        let gs =
          List.map
            (fun seed ->
              let plan = plan_for ~seed (Nfs.Registry.find_exn "fw") cores in
              gbps_of ~balanced_reta:balanced plan profile trace)
            seeds
        in
        (List.fold_left Float.min infinity gs, List.fold_left Float.max 0.0 gs)
      in
      let u_min, u_max = series p_uni uniform.Sim.Workload.trace false in
      let z_min, z_max = series p_zipf zipf.Sim.Workload.trace false in
      let b_min, b_max = series p_zipf zipf.Sim.Workload.trace true in
      printf "%5d | %5.1f..%5.1f | %5.1f..%5.1f    | %5.1f..%5.1f@." cores u_min u_max z_min
        z_max b_min b_max)
    core_counts

(* --- Fig. 6: time to generate parallel implementations --------------------- *)

let fig6 () =
  header "Figure 6: Maestro generation time per NF (10 runs)";
  printf "%-9s %10s %10s %10s %10s %10s %10s@." "nf" "total-ms" "symbex" "report" "sharding"
    "solving" "codegen";
  List.iter
    (fun name ->
      let nf = Nfs.Registry.find_exn name in
      let runs =
        List.init 10 (fun i ->
            let request = { Maestro.Pipeline.default_request with seed = 0x1000 + i } in
            (Maestro.Pipeline.parallelize_exn ~request nf).Maestro.Pipeline.timing)
      in
      let avg f = List.fold_left (fun a t -> a +. f t) 0.0 runs /. 10.0 *. 1000.0 in
      printf "%-9s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f@." name
        (avg Maestro.Pipeline.total_s)
        (avg (fun t -> t.Maestro.Pipeline.symbex_s))
        (avg (fun t -> t.Maestro.Pipeline.report_s))
        (avg (fun t -> t.Maestro.Pipeline.sharding_s))
        (avg (fun t -> t.Maestro.Pipeline.solving_s))
        (avg (fun t -> t.Maestro.Pipeline.codegen_s)))
    Nfs.Registry.names

(* --- Table 1: stateful constructors ---------------------------------------- *)

let table1 () =
  header "Table 1: stateful constructors supported by Maestro";
  List.iter
    (fun (name, desc) -> printf "%-8s %s@." name desc)
    [
      ("map", "Stores integers indexed by arbitrary data.");
      ("vector", "Stores arbitrary data indexed by integers.");
      ("dchain", "Time-aware integer allocator.");
      ("sketch", "Count-min sketch.");
    ]

(* --- Fig. 8: NOP throughput vs packet size --------------------------------- *)

let fig8 () =
  header "Figure 8: parallel NOP on 16 cores vs packet size";
  printf "size(B) |   Gbps |   Mpps | bottleneck@.";
  List.iter
    (fun size ->
      let w = Sim.Workload.read_heavy ~flows:40_000 ~pkts:40_000 ~size "nop" in
      let profile = Sim.Workload.profile_of w in
      let plan = plan_for w.Sim.Workload.nf 16 in
      let e = Sim.Throughput.evaluate plan profile w.Sim.Workload.trace in
      printf "%7d | %6.1f | %6.1f | %s@." size e.Sim.Throughput.gbps e.Sim.Throughput.mpps
        (Sim.Throughput.bottleneck_name e.Sim.Throughput.bottleneck))
    Traffic.Gen.packet_sizes

(* --- Fig. 9: FW churn study ------------------------------------------------ *)

let churn_levels = [ 0.0; 100.0; 1_000.0; 10_000.0; 100_000.0; 1_000_000.0 ]

let fig9 () =
  header "Figure 9: firewall under churn (Gbps; churn reported in flows/minute at the achieved rate)";
  List.iter
    (fun (label, strategy) ->
      printf "@.[%s]@." label;
      printf "%14s" "rel-churn f/Gb";
      List.iter (fun c -> printf " | %9s" (Printf.sprintf "%d cores" c)) core_counts;
      printf "@.";
      List.iter
        (fun flows_per_gbit ->
          let spec =
            {
              Traffic.Churn.default_spec with
              Traffic.Churn.active_flows = 4096;
              flows_per_gbit;
              pkts = 50_000;
            }
          in
          let trace = Traffic.Churn.trace (Random.State.make [| 77 |]) spec in
          let nf = Nfs.Registry.find_exn "fw" in
          let profile = Sim.Profile.of_trace ~skip:spec.Traffic.Churn.active_flows nf trace in
          printf "%14.0f" flows_per_gbit;
          List.iter
            (fun cores ->
              let plan = plan_for ~strategy nf cores in
              let e = Sim.Throughput.evaluate plan profile trace in
              let fpm = Traffic.Churn.absolute_churn_fpm spec ~gbps:e.Sim.Throughput.gbps in
              printf " | %5.1fG%s" e.Sim.Throughput.gbps
                (if fpm > 0.0 then Printf.sprintf "/%.0em" fpm else "    "))
            core_counts;
          printf "@.")
        churn_levels)
    [ ("shared-nothing", `Auto); ("lock-based", `Force_locks); ("transactional memory", `Force_tm) ]

(* --- Fig. 10: scalability of all 8 NFs ------------------------------------- *)

let scalability ~title ~workload ?(balanced = false) () =
  header title;
  List.iter
    (fun name ->
      let w : Sim.Workload.t = workload name in
      let profile = Sim.Workload.profile_of w in
      printf "@.%s  (%a)@." w.Sim.Workload.label Sim.Profile.pp profile;
      List.iter
        (fun (label, strategy) ->
          let skip =
            (* unshardable NFs: `Auto now lands on the SCR rung, so both
               forced rows below it stay informative; only skip the scr
               row when `Auto already produced it *)
            match (strategy, Nfs.Registry.expected_strategy name) with
            | `Force_scr, `Locks ->
                Result.is_ok (Maestro.Scrspec.admissible w.Sim.Workload.nf)
            | _ -> false
          in
          if not skip then begin
            printf "  %-16s" label;
            List.iter
              (fun cores ->
                let plan = plan_for ~strategy w.Sim.Workload.nf cores in
                printf " %6.1fG"
                  (gbps_of ~balanced_reta:balanced plan profile w.Sim.Workload.trace))
              core_counts;
            printf "@."
          end)
        [ ("auto", `Auto); ("scr", `Force_scr); ("locks", `Force_locks); ("tm", `Force_tm) ])
    Nfs.Registry.names

let fig10 () =
  scalability
    ~title:
      "Figure 10: scalability, uniform read-heavy 64B traffic (cores: 1 2 4 8 16)"
    ~workload:(fun name -> Sim.Workload.read_heavy name)
    ()

let fig14 () =
  scalability
    ~title:"Figure 14: scalability, Zipfian read-heavy 64B traffic, balanced tables"
    ~workload:(fun name -> Sim.Workload.zipf name)
    ~balanced:true ()

(* --- Fig. 11: VPP comparison ------------------------------------------------ *)

let fig11 () =
  header "Figure 11: NAT — Maestro (shared-nothing, lock-based) vs VPP nat44-ei";
  let w = Sim.Workload.read_heavy "nat" in
  let profile = Sim.Workload.profile_of w in
  let row label f =
    printf "%-24s" label;
    List.iter (fun cores -> printf " %6.1fG" (f cores)) core_counts;
    printf "@."
  in
  row "maestro shared-nothing" (fun cores ->
      gbps_of (plan_for w.Sim.Workload.nf cores) profile w.Sim.Workload.trace);
  row "maestro lock-based" (fun cores ->
      gbps_of (plan_for ~strategy:`Force_locks w.Sim.Workload.nf cores) profile
        w.Sim.Workload.trace);
  row "vpp nat44-ei" (fun cores ->
      gbps_of ~params:Vpp.Nat44.cost_params
        (plan_for ~strategy:`Force_locks w.Sim.Workload.nf cores)
        profile w.Sim.Workload.trace);
  (* sanity: the functional VPP NAT really translates this workload (the
     full trace, so replies target sessions it allocated itself) *)
  let vpp = Vpp.Nat44.create () in
  let verdicts = Vpp.Nat44.run vpp w.Sim.Workload.trace in
  let sent = Array.fold_left (fun a v -> match v with Vpp.Graph.Sent _ -> a + 1 | _ -> a) 0 verdicts in
  printf "(functional check: vpp forwarded %d/%d packets, %d sessions)@." sent
    (Array.length verdicts) (Vpp.Nat44.sessions vpp)

(* --- §6.4 latency ----------------------------------------------------------- *)

let latency () =
  header "Latency (1 Gbps background, 1000 probes)";
  printf "%-9s %-16s %12s %12s %12s@." "nf" "strategy" "avg(us)" "p99(us)" "stddev";
  List.iter
    (fun name ->
      let w = Sim.Workload.read_heavy name in
      let profile = Sim.Workload.profile_of w in
      List.iter
        (fun (label, strategy) ->
          let plan = plan_for ~strategy w.Sim.Workload.nf 16 in
          let s = Sim.Latency.probe plan profile in
          printf "%-9s %-16s %12.1f %12.1f %12.1f@." name label s.Sim.Latency.avg_us
            s.Sim.Latency.p99_us s.Sim.Latency.stddev_us)
        [ ("sequential", `Auto); ("parallel-auto", `Auto); ("parallel-locks", `Force_locks) ])
    Nfs.Registry.names

(* --- ablations --------------------------------------------------------------- *)

let ext_hhh () =
  header "Extension: hierarchical heavy hitter (prefix sharding, §3.5's hard case)";
  let w = Sim.Workload.read_heavy "hhh" in
  let profile = Sim.Workload.profile_of w in
  printf "decision: %a@."
    Maestro.Sharding.pp_decision
    (Maestro.Sharding.decide (Maestro.Report.build (Symbex.Exec.run w.Sim.Workload.nf)));
  printf "  %-16s" "auto";
  List.iter
    (fun cores ->
      let plan = plan_for w.Sim.Workload.nf cores in
      printf " %6.1fG" (gbps_of plan profile w.Sim.Workload.trace))
    core_counts;
  printf "@.";
  printf "  %-16s" "locks";
  List.iter
    (fun cores ->
      let plan = plan_for ~strategy:`Force_locks w.Sim.Workload.nf cores in
      printf " %6.1fG" (gbps_of plan profile w.Sim.Workload.trace))
    core_counts;
  printf "@."

let ext_attack () =
  header "Extension: §5 state-sharding attack and the key-randomization defense";
  let rng = Random.State.make [| 1337 |] in
  let nf = Nfs.Registry.find_exn "fw" in
  let victim = plan_for ~seed:0xbeef nf 16 in
  let redeployed = plan_for ~seed:0xfeed nf 16 in
  let field_set = victim.Maestro.Plan.rss.(0).Maestro.Plan.field_set in
  let key = victim.Maestro.Plan.rss.(0).Maestro.Plan.key in
  (* the attacker knows the victim's key: craft flows colliding on one hash *)
  let attack =
    Rs3.Attack.colliding_packets ~key ~field_set ~target_hash:0x0badcafe ~rng ~n:2000
    |> Array.of_list
  in
  let spread plan =
    let counts = Runtime.Parallel.dispatch_counts plan attack in
    let busiest = Array.fold_left max 0 counts in
    (float_of_int busiest /. float_of_int (Array.length attack), counts)
  in
  printf "attack set: %d crafted flows, collision rate %.3f under the victim key@."
    (Array.length attack)
    (Rs3.Attack.collision_rate ~key ~field_set (Array.to_list attack));
  let frac_victim, _ = spread victim in
  let frac_redeploy, _ = spread redeployed in
  printf "share of attack traffic on the busiest core:@.";
  printf "  victim key (known to the attacker): %5.1f%%  <- one core takes it all@."
    (100.0 *. frac_victim);
  printf "  re-randomized key (same constraints): %5.1f%%  <- defense restored@."
    (100.0 *. frac_redeploy)

let ext_rsspp () =
  header "Extension: dynamic RSS++ rebalancing under shifting skew (shared-nothing FW, 8 cores)";
  (* Zipfian traffic whose elephant set changes halfway through the run *)
  let rng = Random.State.make [| 99 |] in
  let z = Traffic.Zipf.paper () in
  let fs = Traffic.Gen.flows rng 1000 in
  let spec = { Traffic.Gen.default_spec with Traffic.Gen.pkts = 24_000; reply_fraction = 0.0 } in
  let first = Traffic.Zipf.trace ~spec rng z ~flows:fs in
  let second = Traffic.Zipf.trace ~spec rng z ~flows:(List.rev fs) in
  let trace = Array.append first second in
  let plan = plan_for (Nfs.Registry.find_exn "fw") 8 in
  let r = Runtime.Rebalance.study_exn plan trace ~epoch_pkts:6000 in
  printf "epoch | static imbalance | dynamic imbalance@.";
  Array.iteri
    (fun e s ->
      printf "%5d | %16.2f | %17.2f@." e s r.Runtime.Rebalance.dynamic_imbalance.(e))
    r.Runtime.Rebalance.static_imbalance;
  printf "migrations: %d buckets, %d flow states moved across cores@."
    r.Runtime.Rebalance.migrated_buckets r.Runtime.Rebalance.migrated_flows

let ext_churn () =
  header "Extension: churn smoke — SCR vs lock rung on the domain pool (BENCH_churn.json)";
  let failures = Gates.Churn_gate.run () in
  if failures > 0 then printf "churn gate: %d violation(s) (non-fatal in the bench tour)@." failures

let ext_adaptive () =
  header
    "Extension: adaptive smoke — discipline switching vs both static rungs (BENCH_adaptive.json)";
  let failures = Gates.Adaptive_gate.run () in
  if failures > 0 then
    printf "adaptive gate: %d violation(s) (non-fatal in the bench tour)@." failures

let ext_chain () =
  header "Extension: service chain — fused single-pass vs back-to-back NFs (BENCH_chain.json)";
  List.iter
    (fun chain ->
      let report = Maestro.Report.build (Symbex.Exec.run (Dsl.Chain.nf chain)) in
      printf "@[<v 2>%s:@ %a@]@." chain.Dsl.Chain.name Maestro.Sharding.pp_decision
        (Maestro.Sharding.decide report))
    (Nfs.Scenarios.chains ());
  let failures = Gates.Chain_gate.run () in
  if failures > 0 then printf "chain gate: %d violation(s) (non-fatal in the bench tour)@." failures

let ablation_nic () =
  header "Ablation: NIC capability vs parallelization strategy (E810 subset/flex hashing vs rigid X710)";
  printf "%-9s %-18s %-18s@." "nf" "E810" "X710";
  List.iter
    (fun name ->
      let nf = Nfs.Registry.find_exn name in
      let strat nic =
        let request = { Maestro.Pipeline.default_request with nic } in
        let o = Maestro.Pipeline.parallelize_exn ~request nf in
        Maestro.Plan.strategy_name o.Maestro.Pipeline.plan.Maestro.Plan.strategy
      in
      printf "%-9s %-18s %-18s@." name (strat Nic.Model.E810) (strat Nic.Model.X710))
    Nfs.Registry.extended_names

let ablation_rs3 () =
  header "Ablation: RS3 GF(2) elimination vs SAT MaxSAT backend (firewall problem)";
  List.iter
    (fun (label, backend) ->
      let t0 = Unix.gettimeofday () in
      let outcomes =
        List.init 5 (fun i ->
            let request =
              { Maestro.Pipeline.default_request with solver = backend; seed = 0x2000 + i }
            in
            Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn "fw"))
      in
      let dt = (Unix.gettimeofday () -. t0) /. 5.0 *. 1000.0 in
      let ones =
        List.fold_left
          (fun acc o ->
            let plan = o.Maestro.Pipeline.plan in
            acc
            + Array.fold_left
                (fun a (r : Maestro.Plan.port_rss) -> a + Bitvec.popcount r.Maestro.Plan.key)
                0 plan.Maestro.Plan.rss)
          0 outcomes
        / 5
      in
      printf "%-8s: %8.2f ms/solve, %d key bits set (of %d)@." label dt ones (2 * 416))
    [ ("gauss", `Gauss); ("sat", `Sat) ]

let ablation_rejuv () =
  header "Ablation: per-core aging replicas vs naive write-lock rejuvenation (lock-based FW)";
  let w = Sim.Workload.read_heavy "fw" in
  let profile = Sim.Workload.profile_of w in
  (* naive rejuvenation turns every rejuvenating packet into a writer *)
  let naive =
    {
      profile with
      Sim.Profile.write_pkt_fraction = 1.0;
      writes_per_pkt = profile.Sim.Profile.writes_per_pkt +. 1.0;
    }
  in
  printf "cores | per-core aging | naive write-lock@.";
  List.iter
    (fun cores ->
      let plan = plan_for ~strategy:`Force_locks w.Sim.Workload.nf cores in
      printf "%5d | %9.1fG | %9.1fG@." cores
        (gbps_of plan profile w.Sim.Workload.trace)
        (gbps_of plan naive w.Sim.Workload.trace))
    core_counts

let ablation_shard () =
  header "Ablation: state sharding (capacity split) vs full-size replicas (shared-nothing FW)";
  let w = Sim.Workload.read_heavy "fw" in
  let profile = Sim.Workload.profile_of w in
  printf "cores | split ws/core | replica ws/core | split Gbps | cycles split/replica@.";
  List.iter
    (fun cores ->
      let plan = plan_for w.Sim.Workload.nf cores in
      let machine = Sim.Machine.xeon_6226r in
      let ws_split = Sim.Cost.working_set_bytes profile ~shards:cores in
      let ws_replica = Sim.Cost.working_set_bytes profile ~shards:1 in
      let c_split = Sim.Cost.packet_cycles machine profile ~ws_bytes:ws_split in
      let c_replica = Sim.Cost.packet_cycles machine profile ~ws_bytes:ws_replica in
      printf "%5d | %10.0fKB | %12.0fKB | %9.1fG | %7.0f / %7.0f@." cores (ws_split /. 1024.)
        (ws_replica /. 1024.)
        (gbps_of plan profile w.Sim.Workload.trace)
        c_split c_replica)
    core_counts

let ablation_spec () =
  header "Ablation: speculative read path vs pessimistic write locks (lock-based FW)";
  let w = Sim.Workload.read_heavy "fw" in
  let profile = Sim.Workload.profile_of w in
  let pessimistic = { profile with Sim.Profile.write_pkt_fraction = 1.0 } in
  printf "cores | speculative | pessimistic@.";
  List.iter
    (fun cores ->
      let plan = plan_for ~strategy:`Force_locks w.Sim.Workload.nf cores in
      printf "%5d | %8.1fG | %8.1fG@." cores
        (gbps_of plan profile w.Sim.Workload.trace)
        (gbps_of plan pessimistic w.Sim.Workload.trace))
    core_counts
