(* CI entry point for the adaptive discipline-switching smoke gate; the
   logic lives in Gates.Adaptive_gate so the bench tour
   (`main.exe ext-adaptive`) can run the same benchmark.  First argv
   overrides the telemetry output path. *)

let () =
  let out = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  if Gates.Adaptive_gate.run ?out () > 0 then exit 1
