(* Fault-injection smoke run — the CI [fault-smoke] job.

   Drives the full recovery story end to end on real domains: a seeded
   worker crash with supervisor restart, a permanent core failure with
   indirection-table remap (no flow may land on the dead core, none may
   be lost), and full-ring backpressure under every policy.  Exits
   non-zero on any violation and writes the run's telemetry snapshot as
   JSON (first argv, default [FAULT_SMOKE.json]) so CI can archive the
   recovery counters. *)

let failures = ref 0

let check name ok =
  Printf.printf "%-58s %s\n%!" name (if ok then "ok" else "FAIL");
  if not ok then incr failures

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

let install spec =
  match Faults.parse spec with
  | Ok plan -> Faults.install plan
  | Error e ->
      prerr_endline e;
      exit 2

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "FAULT_SMOKE.json" in
  Telemetry.reset ();
  Telemetry.enable ();
  let nf = Nfs.Registry.find_exn "fw" in
  let request = { Maestro.Pipeline.default_request with cores = 4 } in
  let plan = (Maestro.Pipeline.parallelize_exn ~request nf).Maestro.Pipeline.plan in
  let st = Random.State.make [| 0x5eed |] in
  let flows = Traffic.Gen.flows st 200 in
  let trace =
    Traffic.Gen.uniform ~spec:{ Traffic.Gen.default_spec with pkts = 4000 } st ~flows
  in
  let seq = Runtime.Parallel.run_sequential nf trace in

  (* 1. crash + supervisor restart: lossless, order-preserving *)
  let pool = Runtime.Pool.create ~cores:4 () in
  install "crash@1:2";
  let v = Runtime.Pool.run pool plan trace in
  Faults.clear ();
  let s = Runtime.Pool.stats pool in
  check "crash: verdicts identical to sequential" (verdicts_equal seq v);
  check "crash: worker restarted" (s.Runtime.Pool.restarts >= 1);
  check "crash: no permanent failure" (s.Runtime.Pool.failed_cores = []);
  Runtime.Pool.shutdown pool;

  (* 2. permanent failure: restart budget exhausted, producer drains inline *)
  let supervisor = { Runtime.Supervisor.default_config with max_restarts = 0 } in
  let pool = Runtime.Pool.create ~cores:4 ~supervisor () in
  install "crash@1:0x1000000";
  let v = Runtime.Pool.run pool plan trace in
  Faults.clear ();
  check "give-up: verdicts identical to sequential" (verdicts_equal seq v);
  check "give-up: core 1 written off" (Runtime.Pool.failed_cores pool = [ 1 ]);

  (* 3. failover remap: rerun on the degraded pool — the dead core's RSS
     buckets migrated, every flow lands on exactly one live core *)
  let v = Runtime.Pool.run pool plan trace in
  let s = Runtime.Pool.stats pool in
  check "remap: dead core serves zero packets" (s.Runtime.Pool.last_per_core_pkts.(1) = 0);
  check "remap: zero lost flows"
    (Array.fold_left ( + ) 0 s.Runtime.Pool.last_per_core_pkts = Array.length trace);
  check "remap: verdicts identical to sequential" (verdicts_equal seq v);
  Runtime.Pool.shutdown pool;

  (* 4. backpressure: a frozen consumer with a tiny ring must terminate
     under every policy; block stays lossless *)
  List.iter
    (fun (name, bp) ->
      install "stall@1:0:2000000";
      let pool =
        Runtime.Pool.create ~cores:4 ~ring_capacity:2 ~batch_size:8 ~backpressure:bp ()
      in
      let v = Runtime.Pool.run pool plan trace in
      Faults.clear ();
      let s = Runtime.Pool.stats pool in
      check (Printf.sprintf "backpressure %s: run terminated" name) true;
      check
        (Printf.sprintf "backpressure %s: ring-full stall observed" name)
        (s.Runtime.Pool.ring_full_stalls >= 1);
      (match bp with
      | Runtime.Pool.Block ->
          check "backpressure block: lossless" (verdicts_equal seq v);
          check "backpressure block: nothing dropped" (s.Runtime.Pool.dropped_batches = 0)
      | Runtime.Pool.Drop _ | Runtime.Pool.Shed ->
          check
            (Printf.sprintf "backpressure %s: drops accounted" name)
            (s.Runtime.Pool.dropped_batches > 0
            && s.Runtime.Pool.dropped_pkts >= s.Runtime.Pool.dropped_batches));
      Runtime.Pool.shutdown pool)
    [
      ("block", Runtime.Pool.Block);
      ("drop", Runtime.Pool.Drop { max_spins = 200 });
      ("shed", Runtime.Pool.Shed);
    ];

  Telemetry.disable ();
  let oc = open_out out in
  output_string oc (Telemetry.to_json ~name:"fault-smoke" (Telemetry.snapshot ()));
  close_out oc;
  Printf.printf "telemetry written to %s\n" out;
  if !failures > 0 then begin
    Printf.printf "%d violation(s)\n" !failures;
    exit 1
  end;
  print_endline "fault smoke: all recovery paths green"
