(* Adaptive discipline-switching smoke benchmark — the CI [adaptive-smoke]
   job (entry point bench/adaptive.ml; also runnable inside the bench tour
   as `ext-adaptive`).

   The workload alternates calm and skewed phases over one flow
   population: calm traffic spreads uniformly over 1 024 flows (the
   shared-nothing rung's best case), skewed traffic concentrates
   Zipf(3.5) on the heaviest flows so one RSS bucket owns ~90 % of the
   packets and a sharded pool collapses onto a single hot core.  The
   phase schedule is declared as a fault-plan [phase@E:PROFILE] string
   and read back through {!Faults.phases} — the same plan syntax that
   injects the crashes drives the traffic they land on.

   The gate replays the trace four ways on real domains — sequential
   oracle, static shared-nothing, static lock, adaptive — and checks:

   - the adaptive controller switches (down to SCR when each skew phase
     hits, back to shared-nothing when calm returns) and the residency
     split lands where the phases are;
   - adaptive verdicts are identical to sequential execution, across
     shard merges, replica seedings and SCR collapses;
   - per-flow ordering holds between consecutive switch boundaries on
     every non-SCR segment (SCR moves batch OWNERSHIP round-robin by
     design while each replica still applies the global stream in order);
   - verdicts stay sequential under a fault plan that crashes workers in
     the switch epoch: the old rung's recovery path runs first, the
     switch defers, SCR replicas rebuild from snapshot + digest log;
   - throughput: adaptive beats BOTH static rungs on the mixed trace —
     the whole point of switching (gate 1.0x: reject regressing to
     either static behaviour; the modeled margin is larger, ~1.3x).

   Throughput is priced by {!Sim.Throughput.evaluate}, the same cycle
   model every paper figure uses, fed the per-epoch per-core shares each
   REAL pool run actually dispatched ([measured_shares]) and the rung
   each epoch actually ran under; the adaptive run is additionally
   charged {!Sim.Cost.discipline_switch_cycles} per committed switch.
   CI machines expose too few hardware threads for OCaml domains to run
   in parallel, so wall clock measures scheduler overhead, not the
   discipline physics — the model makes the gate deterministic and
   machine-independent while staying anchored to the measured dispatch
   of the real runs.  Wall-clock numbers are still reported under [_ms]
   names that the benchdiff timing policy excludes from diffs.

   Returns the number of violations and writes telemetry as
   BENCH_adaptive.json ([out] overrides) for the check_regression gate;
   the timing-dependent pool counters are filtered from the document. *)

let cores = 4
let epoch_pkts = 4_096
let nflows = 1_024
let zipf_exponent = 3.5
let speed_gate = 1.0

(* calm 4 | skew 8 | calm 4 | skew 8 epochs = 24 epochs.  Skew phases are
   twice the calm ones: a switch only pays for itself over enough epochs
   of the regime it bought (the amortization argument priced out in
   {!Sim.Cost.discipline_switch_cycles}), and the controller's hysteresis
   exists precisely because short-lived disturbances are not worth
   chasing. *)
let phase_plan = "phase@0:calm;phase@4:skew;phase@12:calm;phase@16:skew"
let total_epochs = 24
let npkts = total_epochs * epoch_pkts

let adaptive_mode =
  Runtime.Adaptive.(On { epoch_pkts; up = 2.0; down = 1.3; cooldown = 1 })

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

(* Build the trace from the installed plan's phase schedule.  The traffic
   is steady-state (established sessions, mostly LAN→WAN with a 15 %
   reply share): load churn comes from WHERE the packets concentrate,
   not from session churn — the RSS++ regime, where the flow population
   is stable but its load distribution shifts under the dispatcher.  A
   mostly one-directional hot flow matters for the lock baseline: locks
   need no flow affinity, so their random RSS key splits a session's two
   directions over two cores and a reply-heavy elephant would be half
   hidden from the imbalance term. *)
let trace_of_phases rng ~flows phases =
  let spec pkts =
    { Traffic.Gen.default_spec with pkts; reply_fraction = 0.15; fresh_fraction = 0.0 }
  in
  let zipf = Traffic.Zipf.make ~exponent:zipf_exponent ~nflows () in
  let rec go = function
    | [] -> []
    | (epoch, profile) :: rest ->
        let until = match rest with (e, _) :: _ -> e | [] -> total_epochs in
        let pkts = (until - epoch) * epoch_pkts in
        let seg =
          match profile with
          | "calm" -> Traffic.Gen.uniform ~spec:(spec pkts) rng ~flows
          | "skew" -> Traffic.Zipf.trace ~spec:(spec pkts) rng zipf ~flows
          | p -> failwith ("adaptive gate: unknown phase profile " ^ p)
        in
        seg :: go rest
  in
  Array.concat (go phases)

(* rung of each 1-based epoch, given the committed switch schedule *)
let rung_of_epoch switch_epochs ~initial epoch =
  List.fold_left (fun acc (e, r) -> if epoch > e then r else acc) initial switch_epochs

(* per-flow ordering between consecutive rebalance points, skipping SCR
   epochs (round-robin ownership is the mechanism there, not a bug) *)
let ordering_violations trace (s : Runtime.Pool.stats) ~initial =
  let points = Array.of_list s.Runtime.Pool.last_rebalance_points in
  let flow_core = Hashtbl.create 4096 in
  let seg = ref 0 and viol = ref 0 in
  Array.iteri
    (fun i pkt ->
      while !seg < Array.length points && i >= points.(!seg) do
        incr seg;
        Hashtbl.reset flow_core
      done;
      let epoch = 1 + (i / epoch_pkts) in
      if rung_of_epoch s.Runtime.Pool.switch_epochs ~initial epoch <> Maestro.Ladder.Scr
      then begin
        let flow = Packet.Flow.normalize (Packet.Flow.of_pkt pkt) in
        let core = s.Runtime.Pool.last_assignment.(i) in
        match Hashtbl.find_opt flow_core flow with
        | None -> Hashtbl.add flow_core flow core
        | Some c -> if c <> core then incr viol
      end)
    trace;
  !viol

(* per-core dispatch counts of one epoch, from a run's recorded assignment *)
let epoch_counts (s : Runtime.Pool.stats) e =
  let counts = Array.make cores 0 in
  for i = e * epoch_pkts to ((e + 1) * epoch_pkts) - 1 do
    let c = s.Runtime.Pool.last_assignment.(i) in
    counts.(c) <- counts.(c) + 1
  done;
  counts

(* Per-epoch NF profiles: epoch [e] is profiled with the preceding epochs
   executed as warm-up, so a calm epoch late in the trace sees the
   established sessions and not spurious re-establishment writes.  The
   phase structure is what makes the epochs differ — a skewed epoch's
   effective flow count collapses (hot flows cache well) while its
   dispatch shares pile up, and the contention laws react to both. *)
let epoch_profiles nf trace =
  let total_epochs = Array.length trace / epoch_pkts in
  Array.init total_epochs (fun e ->
      Sim.Profile.of_trace ~skip:(e * epoch_pkts) nf
        (Array.sub trace 0 ((e + 1) * epoch_pkts)))

(* Modeled time to serve the trace, epoch by epoch: each epoch is priced
   under the rung it actually ran on, with the per-core shares the run
   actually dispatched, through the discipline's contention law.  The
   adaptive run additionally pays the quiesce stall + state conversion
   for every committed switch ([flows] is the converted table population,
   so the trace's full session count). *)
let model_time ~plan_for ~profiles ~table_flows trace (s : Runtime.Pool.stats) ~initial =
  let total_epochs = Array.length trace / epoch_pkts in
  let seconds = ref 0.0 in
  for e = 0 to total_epochs - 1 do
    let rung = rung_of_epoch s.Runtime.Pool.switch_epochs ~initial (e + 1) in
    let shares = Sim.Throughput.shares_of_counts (epoch_counts s e) in
    let slice = Array.sub trace (e * epoch_pkts) epoch_pkts in
    let ev =
      Sim.Throughput.evaluate ~measured_shares:shares (plan_for rung) profiles.(e) slice
    in
    seconds := !seconds +. (float_of_int epoch_pkts /. (ev.Sim.Throughput.mpps *. 1e6))
  done;
  let switch_cost =
    List.fold_left
      (fun acc (_, target) ->
        let replicas = match target with Maestro.Ladder.Scr -> cores | _ -> 1 in
        acc
        +. Sim.Cost.discipline_switch_cycles ~flows:table_flows ~replicas ()
           /. Sim.Machine.xeon_6226r.Sim.Machine.freq_hz)
      0.0 s.Runtime.Pool.switch_epochs
  in
  !seconds +. switch_cost

(* wall clock of one run, reported for local reading but never gated on:
   CI hosts give the domains a single hardware thread *)
let timed ?adaptive pool plan trace =
  let t0 = Unix.gettimeofday () in
  let v = Runtime.Pool.run ?adaptive pool plan trace in
  (v, Unix.gettimeofday () -. t0)

let c_counter name doc v =
  let c = Telemetry.Counter.make name ~doc in
  Telemetry.Counter.add c v

let run ?(out = "BENCH_adaptive.json") () =
  let failures = ref 0 in
  let check name ok =
    Printf.printf "%-58s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  Telemetry.reset ();
  Telemetry.enable ();
  Nic.Rss.set_compile_default true;
  Dsl.Compile.set_default true;
  let nf = Nfs.Registry.find_exn "fw" in
  let request = { Maestro.Pipeline.default_request with cores } in
  let plan_of strategy =
    (Maestro.Pipeline.parallelize_exn ~request:{ request with strategy } nf)
      .Maestro.Pipeline.plan
  in
  let sn_plan = plan_of `Auto in
  let lock_plan = plan_of `Force_locks in
  let scr_plan = plan_of `Force_scr in
  check "auto plan lands on the shared-nothing rung"
    (sn_plan.Maestro.Plan.strategy = Maestro.Plan.Shared_nothing);
  let plan_for = function
    | Maestro.Ladder.Shared_nothing -> sn_plan
    | Maestro.Ladder.Scr -> scr_plan
    | Maestro.Ladder.Lock_based | Maestro.Ladder.Serial -> lock_plan
  in

  (* the phase schedule comes from the fault-plan syntax *)
  let phases =
    match Faults.parse phase_plan with
    | Error e -> failwith e
    | Ok p ->
        Faults.install p;
        let ph = Faults.phases () in
        Faults.clear ();
        ph
  in
  check "phase schedule parsed" (List.length phases = 4);
  let rng = Random.State.make [| 0xada9 |] in
  let flows = Traffic.Gen.flows rng nflows in
  let trace = trace_of_phases rng ~flows phases in
  check "trace covers every epoch" (Array.length trace = npkts);
  let seq = Runtime.Parallel.run_sequential nf trace in

  (* correctness first: one adaptive run on a fresh pool *)
  let pool = Runtime.Pool.create ~cores () in
  let v_ad, t_ad = timed ~adaptive:adaptive_mode pool sn_plan trace in
  let s = Runtime.Pool.stats pool in
  check "adaptive: verdicts identical to sequential" (verdicts_equal seq v_ad);
  check "adaptive: switched down and back at least twice" (s.Runtime.Pool.switches >= 3);
  let res r = Option.value ~default:0 (List.assoc_opt r s.Runtime.Pool.rung_residency) in
  check "adaptive: calm phases ran sharded"
    (res Maestro.Ladder.Shared_nothing >= total_epochs / 3);
  check "adaptive: skew phases ran on SCR" (res Maestro.Ladder.Scr >= total_epochs / 3);
  check "adaptive: first switch adopts SCR"
    (match s.Runtime.Pool.switch_epochs with
    | (_, Maestro.Ladder.Scr) :: _ -> true
    | _ -> false);
  check "adaptive: shard merges handed state over" (s.Runtime.Pool.migrated_flows > 0);
  check "adaptive: nothing dropped, nothing evicted"
    (s.Runtime.Pool.dropped_batches = 0 && s.Runtime.Pool.migration_drops = 0);
  check "adaptive: zero flow-ordering violations"
    (ordering_violations trace s ~initial:Maestro.Ladder.Shared_nothing = 0);
  let switches = s.Runtime.Pool.switches in
  let flaps = s.Runtime.Pool.flap_suppressed in
  let sn_epochs = res Maestro.Ladder.Shared_nothing in
  let scr_epochs = res Maestro.Ladder.Scr in
  let migrated_flows = s.Runtime.Pool.migrated_flows in
  Runtime.Pool.shutdown pool;

  (* crash workers around the first switch: the calm opening feeds every
     core ~32 batches per epoch (4 096 pkts over 4 cores, 32-pkt batches),
     so by batch ~130 the opening's 128 are done and the first skew epoch
     — whose barrier decides the first switch — is in flight.  The hot
     core races through its skewed backlog and crashes in that epoch, so
     its recovery and the switch collide at the same barrier (the switch
     must defer); the cold cores accumulate batches slowly under skew and
     crash only after the switch, on the SCR rung, rebuilding their
     replicas from snapshot + digest log *)
  (match Faults.parse "crash@0:130;crash@1:131;crash@2:132;crash@3:133" with
  | Error e -> failwith e
  | Ok p -> Faults.install p);
  let pool = Runtime.Pool.create ~cores () in
  let v_fault = Runtime.Pool.run ~adaptive:adaptive_mode pool sn_plan trace in
  let sf = Runtime.Pool.stats pool in
  Faults.clear ();
  check "fault plan: workers crashed and recovered" (sf.Runtime.Pool.restarts >= 1);
  check "fault plan: still switched" (sf.Runtime.Pool.switches >= 1);
  check "fault plan: verdicts identical to sequential despite mid-switch crashes"
    (verdicts_equal seq v_fault);
  let fault_restarts = sf.Runtime.Pool.restarts in
  let fault_rebuilds = sf.Runtime.Pool.scr_rebuilds in
  Runtime.Pool.shutdown pool;

  (* static rungs, one run each: their verdicts must match the oracle too,
     and their recorded dispatch feeds the throughput model *)
  let pool = Runtime.Pool.create ~cores () in
  let v_sn, t_sn = timed pool sn_plan trace in
  let s_sn = Runtime.Pool.stats pool in
  Runtime.Pool.shutdown pool;
  check "static shared-nothing: verdicts identical to sequential" (verdicts_equal seq v_sn);
  (* no verdict check for the lock baseline: its random-key RSS does not
     keep a session's two directions on one core, so cross-direction
     arrival order — which the sequential oracle fixes — is not preserved
     on real domains.  It is here as the throughput baseline. *)
  let pool = Runtime.Pool.create ~cores () in
  let v_lock, t_lock = timed pool lock_plan trace in
  let s_lock = Runtime.Pool.stats pool in
  Runtime.Pool.shutdown pool;
  check "static lock: every packet got a verdict"
    (Array.length v_lock = Array.length seq);

  (* throughput: adaptive must beat BOTH static rungs on the mixed trace.
     Each run is priced per epoch by the paper's cycle model on the shares
     it actually dispatched; adaptive also pays for every switch. *)
  let profiles = epoch_profiles nf trace in
  let table_flows =
    (Sim.Profile.of_trace nf trace).Sim.Profile.distinct_flows
  in
  let m_ad =
    model_time ~plan_for ~profiles ~table_flows trace s
      ~initial:Maestro.Ladder.Shared_nothing
  in
  let m_sn =
    model_time ~plan_for ~profiles ~table_flows trace s_sn
      ~initial:Maestro.Ladder.Shared_nothing
  in
  let m_lock =
    model_time ~plan_for ~profiles ~table_flows trace s_lock
      ~initial:Maestro.Ladder.Lock_based
  in
  let vs_sn = m_sn /. m_ad and vs_lock = m_lock /. m_ad in
  Printf.printf
    "modeled serve time: adaptive %.0f us, static shared-nothing %.0f us, static lock %.0f us\n\
     \                    (vs sn %.2fx, vs lock %.2fx, gate %.2fx)\n%!"
    (m_ad *. 1e6) (m_sn *. 1e6) (m_lock *. 1e6) vs_sn vs_lock speed_gate;
  Printf.printf
    "wall clock (1 run, informational): adaptive %.1f ms, static sn %.1f ms, static lock %.1f ms\n%!"
    (t_ad *. 1e3) (t_sn *. 1e3) (t_lock *. 1e3);
  check "adaptive beats static shared-nothing on the mixed trace" (vs_sn >= speed_gate);
  check "adaptive beats static lock on the mixed trace" (vs_lock >= speed_gate);

  c_counter "adaptive.pkts" "packets replayed per run" npkts;
  c_counter "adaptive.epoch_pkts" "packets per controller epoch" epoch_pkts;
  c_counter "adaptive.phases" "traffic phases in the schedule" (List.length phases);
  c_counter "adaptive.switches" "discipline switches committed (one run)" switches;
  c_counter "adaptive.flap_suppressed" "switches suppressed by the cooldown (one run)" flaps;
  c_counter "adaptive.sn_epochs" "epochs on the shared-nothing rung (one run)" sn_epochs;
  c_counter "adaptive.scr_epochs" "epochs on the SCR rung (one run)" scr_epochs;
  c_counter "adaptive.migrated_flows" "flow states handed over by shard merges/splits (one run)"
    migrated_flows;
  c_counter "adaptive.fault_restarts" "worker restarts under the mid-switch crash plan"
    fault_restarts;
  c_counter "adaptive.fault_scr_rebuilds" "SCR replicas rebuilt under the crash plan"
    fault_rebuilds;
  (* deterministic model outputs: diffed against the committed baseline *)
  c_counter "adaptive.model_vs_sn_x100" "modeled static-sn/adaptive serve time, percent"
    (int_of_float (Float.round (vs_sn *. 100.0)));
  c_counter "adaptive.model_vs_lock_x100" "modeled static-lock/adaptive serve time, percent"
    (int_of_float (Float.round (vs_lock *. 100.0)));
  c_counter "adaptive.model_adaptive_us" "modeled adaptive serve time, microseconds"
    (int_of_float (Float.round (m_ad *. 1e6)));
  c_counter "adaptive.model_static_sn_us" "modeled static shared-nothing serve time, microseconds"
    (int_of_float (Float.round (m_sn *. 1e6)));
  c_counter "adaptive.model_static_lock_us" "modeled static lock serve time, microseconds"
    (int_of_float (Float.round (m_lock *. 1e6)));
  (* timing-suffixed names: reported, never diffed *)
  c_counter "adaptive.adaptive_wall_ms" "adaptive wall clock, milliseconds"
    (int_of_float (Float.round (t_ad *. 1e3)));
  c_counter "adaptive.static_sn_wall_ms" "static shared-nothing wall clock, milliseconds"
    (int_of_float (Float.round (t_sn *. 1e3)));
  c_counter "adaptive.static_lock_wall_ms" "static lock wall clock, milliseconds"
    (int_of_float (Float.round (t_lock *. 1e3)));

  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  let timing_dependent = [ "pool.ring_full_stalls"; "supervisor.stuck_detected" ] in
  let snap =
    {
      snap with
      Telemetry.counters =
        List.filter
          (fun c -> not (List.mem c.Telemetry.counter_name timing_dependent))
          snap.Telemetry.counters;
    }
  in
  let oc = open_out out in
  output_string oc (Telemetry.to_json ~name:"adaptive" snap);
  close_out oc;
  Printf.printf "telemetry written to %s\n" out;
  if !failures > 0 then Printf.printf "%d violation(s)\n" !failures
  else print_endline "adaptive smoke: switching beats both static rungs";
  !failures
