(* Flow-scale stress harness — nightly at one million concurrent flows
   (entry point bench/stress.ml; the PR-CI matrix runs it scaled down via
   MAESTRO_STRESS_FLOWS=50000 so every PR still exercises the same code
   paths).

   The paper's NFs are evaluated at data-center flow counts; this gate
   holds the state layer to that scale and pins the structural behaviour
   that only shows up there:

   - {e flow-table fill}: establish N concurrent flows through the
     firewall and inspect the live {!State.Map_s} — open-addressing
     probe lengths must stay short (the hybrid map's reason to exist)
     and the backing table must stay within the rebuild law's bound
     (slots <= smallest power of two >= 4*(size+1), so < 8*size).
   - {e tombstone churn}: a rotating insert/erase window over
     {!State.Intmap} must NOT grow the table — erase pressure is
     reclaimed by same-size rebuilds, not by doubling.  Before that fix
     a few hundred thousand erases ballooned the table without bound.
   - {e expiry at scale}: one far-future packet sweeps the full chain;
     {!State.Dchain.allocate_at} bulk re-insertion (the migration path)
     must be O(1) amortized for recency-ordered streams — the
     tail-backward scan fix; head-forward scanning is quadratic and
     visibly hangs at this scale.
   - {e live pool}: the whole trace runs through the persistent domain
     pool under the derived plan, and verdicts must match the sequential
     oracle — semantics preservation does not decay with state size.
   - {e GC pressure}: allocated words per packet on the sequential leg
     (deterministic for a fixed seed) are reported and gated, so a
     fastpath change that starts boxing per packet fails loudly.

   Wall-clock phases are reported under [_ms] names (excluded from
   cross-machine diffs); the structural counters are deterministic at a
   given MAESTRO_STRESS_FLOWS, so each scale diffs against its own
   committed baseline (bench/baseline/BENCH_stress_pr.json at 50k,
   BENCH_stress.json at the nightly million). *)

let default_flows = 1_000_000

let flows_target =
  match Sys.getenv_opt "MAESTRO_STRESS_FLOWS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> default_flows)
  | None -> default_flows

let cores = 4
let churn_window = 4_096

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

let c_counter name doc v =
  let c = Telemetry.Counter.make name ~doc in
  Telemetry.Counter.add c v

let ms_since t0 = int_of_float (Float.round ((Unix.gettimeofday () -. t0) *. 1e3))

let find_map inst name =
  match Dsl.Instance.find inst name with
  | Dsl.Instance.O_map m -> m
  | _ -> failwith (name ^ " is not a map")

let find_chain inst name =
  match Dsl.Instance.find inst name with
  | Dsl.Instance.O_chain c -> c
  | _ -> failwith (name ^ " is not a chain")

let run ?(out = "BENCH_stress.json") () =
  let nflows = flows_target in
  let body_pkts = max (nflows / 4) 16_384 in
  let capacity = 2 * nflows in
  let failures = ref 0 in
  let check name ok =
    Printf.printf "%-58s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  Telemetry.reset ();
  Telemetry.enable ();
  Nic.Rss.set_compile_default true;
  Dsl.Compile.set_default true;
  Printf.printf "stress scale: %d concurrent flows (+%d body packets)\n%!" nflows body_pkts;
  let nf = Nfs.Fw.make ~capacity () in
  let info = Dsl.Check.check_exn nf in
  let rng = Random.State.make [| 0x57e55 |] in
  let flows = Traffic.Gen.flows rng nflows in
  let spec =
    { Traffic.Gen.default_spec with pkts = body_pkts; fresh_fraction = 0.0; gap_ns = 100 }
  in
  let trace, _warmup = Traffic.Gen.steady_uniform ~spec rng ~flows in

  (* sequential leg: verdict oracle + a live instance to inspect, with
     allocation accounting *)
  let inst = Dsl.Instance.create nf in
  let runner = Dsl.Compile.make_runner nf info inst in
  let t0 = Unix.gettimeofday () in
  let alloc0 = Gc.allocated_bytes () in
  let seq = Array.map (fun p -> Dsl.Compile.run runner p) trace in
  let alloc_bytes = Gc.allocated_bytes () -. alloc0 in
  let seq_ms = ms_since t0 in
  let alloc_words_per_pkt =
    alloc_bytes /. 8.0 /. float_of_int (Array.length trace)
  in

  let chain = find_chain inst "fw_chain" in
  let fw_map = find_map inst "fw_flows" in
  let peak = State.Dchain.allocated chain in
  let max_probe, mean_probe_x100, table_slots, tombs = State.Map_s.packed_stats fw_map in
  check "fill: every flow concurrently resident" (peak = nflows);
  check "fill: packed-map max probe <= 64" (max_probe <= 64);
  check "fill: packed-map table within the rebuild bound (< 8x size)"
    (table_slots < 8 * max 1 (State.Map_s.size fw_map));
  check "fill: sequential leg allocates < 256 words/pkt" (alloc_words_per_pkt < 256.0);

  (* expiry sweep: one packet 2x the expiry window past the last arrival
     retires every idle flow in a single Chain_expire *)
  let last_ts = trace.(Array.length trace - 1).Packet.Pkt.ts_ns in
  let sweeper =
    { trace.(0) with Packet.Pkt.ts_ns = last_ts + (2 * Nfs.Fw.default_expiry_ns) }
  in
  let t0 = Unix.gettimeofday () in
  ignore (Dsl.Compile.run runner sweeper);
  let sweep_ms = ms_since t0 in
  let after_sweep = State.Dchain.allocated chain in
  let expired = peak - after_sweep in
  check "sweep: expiry drained the chain (sweeper flow remains)" (after_sweep = 1);
  check "sweep: full-chain expiry under 30s" (sweep_ms < 30_000);

  (* dchain bulk re-insertion, recency order — the migration stream shape;
     quadratic scanning does not finish this phase at the nightly scale *)
  let mig = State.Dchain.create ~capacity:nflows in
  let t0 = Unix.gettimeofday () in
  let mig_ok = ref 0 in
  for i = 0 to nflows - 1 do
    match State.Dchain.allocate_at mig ~touched:(1000 + i) with
    | Some _ -> incr mig_ok
    | None -> ()
  done;
  let dchain_fill_ms = ms_since t0 in
  check "dchain: recency-ordered bulk insert fills to capacity" (!mig_ok = nflows);
  check "dchain: bulk insert is linear (under 30s)" (dchain_fill_ms < 30_000);
  let t0 = Unix.gettimeofday () in
  let swept = State.Dchain.expire_before mig ~threshold:(1000 + nflows) in
  let expire_scan_ms = ms_since t0 in
  check "dchain: full-chain expire_before returns every flow"
    (List.length swept = nflows);

  (* intmap tombstone churn: rotating window, table must not grow *)
  let churn_ops = max (2 * nflows) 1_000_000 in
  let im = State.Intmap.create ~capacity:(churn_window + 1) in
  for i = 0 to churn_window - 1 do
    ignore (State.Intmap.put im i i)
  done;
  let t0 = Unix.gettimeofday () in
  let churn_fail = ref 0 in
  for i = 0 to churn_ops - 1 do
    if not (State.Intmap.erase im i) then incr churn_fail;
    if not (State.Intmap.put im (i + churn_window) i) then incr churn_fail
  done;
  let churn_ms = ms_since t0 in
  let churn_slots = State.Intmap.table_slots im in
  let churn_tombs = State.Intmap.tombstones im in
  let churn_max_probe, churn_mean_x100 = State.Intmap.probe_stats im in
  check "churn: every erase/insert of the rotating window landed" (!churn_fail = 0);
  check "churn: table stayed bounded under tombstone pressure"
    (churn_slots <= 32_768);
  check "churn: tombstones reclaimed by same-size rebuilds" (churn_tombs < churn_slots);
  check "churn: probe lengths stay short" (churn_max_probe <= 64);

  (* the live pool at full scale, against the sequential oracle *)
  let outcome =
    Maestro.Pipeline.parallelize_exn
      ~request:{ Maestro.Pipeline.default_request with cores }
      nf
  in
  let pool = Runtime.Pool.create ~cores () in
  let t0 = Unix.gettimeofday () in
  let pooled = Runtime.Pool.run pool outcome.Maestro.Pipeline.plan trace in
  let pool_ms = ms_since t0 in
  Runtime.Pool.shutdown pool;
  check "pool: verdicts at scale identical to sequential" (verdicts_equal seq pooled);

  c_counter "stress.flows" "concurrent flows established" nflows;
  c_counter "stress.trace_pkts" "packets in the stress trace" (Array.length trace);
  c_counter "stress.peak_concurrent_flows" "chain entries live after establishment (gated)"
    peak;
  c_counter "stress.map_table_slots" "packed-map backing slots at peak" table_slots;
  c_counter "stress.map_tombstones" "packed-map tombstones at peak" tombs;
  c_counter "stress.map_max_probe" "packed-map max probe length at peak" max_probe;
  c_counter "stress.map_mean_probe_x100" "packed-map mean probe length at peak, x100"
    mean_probe_x100;
  c_counter "stress.expired_flows" "flows retired by the single expiry sweep" expired;
  c_counter "stress.intmap_churn_ops" "erase+insert pairs over the rotating window"
    churn_ops;
  c_counter "stress.intmap_churn_slots" "intmap backing slots after churn (bounded)"
    churn_slots;
  c_counter "stress.intmap_churn_tombstones" "intmap tombstones after churn" churn_tombs;
  c_counter "stress.intmap_churn_max_probe" "intmap max probe after churn" churn_max_probe;
  c_counter "stress.intmap_churn_mean_probe_x100" "intmap mean probe after churn, x100"
    churn_mean_x100;
  c_counter "stress.dchain_bulk_inserts" "recency-ordered allocate_at calls" !mig_ok;
  c_counter "stress.pool_agreement_pkts" "pool verdicts matching sequential (gated)"
    (if verdicts_equal seq pooled then Array.length trace else 0);
  c_counter "stress.alloc_words_per_pkt_x100" "sequential-leg GC allocation per packet, x100"
    (int_of_float (Float.round (alloc_words_per_pkt *. 100.0)));
  c_counter "stress.seq_ms" "sequential leg wall clock, ms" seq_ms;
  c_counter "stress.expire_sweep_ms" "full-chain expiry sweep wall clock, ms" sweep_ms;
  c_counter "stress.dchain_fill_ms" "bulk re-insertion wall clock, ms" dchain_fill_ms;
  c_counter "stress.dchain_expire_scan_ms" "full-chain expire_before wall clock, ms"
    expire_scan_ms;
  c_counter "stress.intmap_churn_ms" "rotating-window churn wall clock, ms" churn_ms;
  c_counter "stress.pool_run_ms" "pool leg wall clock, ms" pool_ms;

  Telemetry.disable ();
  (* drop the two timing-dependent pool counters so the committed
     baseline diffs cleanly across machines (same policy as churn) *)
  let snap = Telemetry.snapshot () in
  let timing_dependent = [ "pool.ring_full_stalls"; "supervisor.stuck_detected" ] in
  let snap =
    {
      snap with
      Telemetry.counters =
        List.filter
          (fun c -> not (List.mem c.Telemetry.counter_name timing_dependent))
          snap.Telemetry.counters;
    }
  in
  let oc = open_out out in
  output_string oc (Telemetry.to_json ~name:"stress" snap);
  close_out oc;
  Printf.printf "telemetry written to %s\n" out;
  if !failures > 0 then Printf.printf "%d violation(s)\n" !failures
  else
    Printf.printf "stress smoke: %d flows live, state layer holds at scale\n" nflows;
  !failures
