(* Churn smoke benchmark — the CI [churn-smoke] job (entry point
   bench/churn.ml; also runnable inside the bench tour as `ext-churn`).

   Replays a high-churn LAN trace (paper §6.3 workload family: a window
   of active flows with the oldest slot retired at an even pace, so the
   firewall's flow table sees constant allocation/expiry pressure)
   through the persistent domain pool twice — once under the lock rung
   and once under state-compute replication — and checks the SCR
   contract end to end on real domains:

   - SCR verdicts are identical to sequential execution (digest
     broadcast + write-slice replay is observationally invisible);
   - every batch is broadcast: scr_replays = batches * (cores - 1),
     and the digest byte accounting is non-zero;
   - SCR beats the lock rung: a churning write-heavy NF serializes
     behind the write lock, while SCR cores never wait for one another.
     The comparison is priced by the {!Sim.Throughput} contention laws
     on the measured per-core dispatch shares of the two real runs, not
     by wall clock: CI runners (and this container) timeshare every
     domain on one CPU, where each rung's wall time is just its total
     CPU work and lock *contention* is invisible — on one CPU the wall
     comparison measures producer dispatch overhead, nothing else.
     Wall clock is still reported, under [_ms]/[speedup] names.

   Returns the number of violations and writes the run's telemetry as
   BENCH_churn.json ([out] overrides the path) for the check_regression
   gate.  Every churn.* counter without a timing suffix is producer-side
   and deterministic for a fixed seed; the wall-clock measurements are
   emitted under [_ms]/[speedup] names so the benchdiff timing policy
   excludes them, and the two timing-dependent pool counters are
   filtered out of the document so the committed baseline diffs cleanly
   across machines. *)

let cores = 4
let npkts = 49_152
let active_flows = 1_024
let flows_per_gbit = 240_000.0
let repeats = 3

(* Model-priced SCR throughput must be at least lock's; the observed
   margin is larger, the gate only has to reject a regression to
   lock-equivalent behaviour *)
let speed_gate = 1.0

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

(* warmed best-of-N wall clock for one pool run *)
let best_of pool plan trace =
  ignore (Runtime.Pool.run pool plan trace);
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    ignore (Runtime.Pool.run pool plan trace);
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let c_counter name doc v =
  let c = Telemetry.Counter.make name ~doc in
  Telemetry.Counter.add c v

let run ?(out = "BENCH_churn.json") () =
  let failures = ref 0 in
  let check name ok =
    Printf.printf "%-58s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  Telemetry.reset ();
  Telemetry.enable ();
  Nic.Rss.set_compile_default true;
  Dsl.Compile.set_default true;
  let nf = Nfs.Registry.find_exn "fw" in
  let request = { Maestro.Pipeline.default_request with cores } in
  let plan_of strategy =
    (Maestro.Pipeline.parallelize_exn ~request:{ request with strategy } nf)
      .Maestro.Pipeline.plan
  in
  let scr_plan = plan_of `Force_scr in
  let lock_plan = plan_of `Force_locks in
  check "scr plan lands on the scr rung"
    (scr_plan.Maestro.Plan.strategy = Maestro.Plan.Scr);
  check "lock plan lands on the lock rung"
    (lock_plan.Maestro.Plan.strategy = Maestro.Plan.Lock_based);

  let spec = { Traffic.Churn.default_spec with active_flows; flows_per_gbit; pkts = npkts } in
  let rng = Random.State.make [| 0xc40a9 |] in
  let trace = Traffic.Churn.trace rng spec in
  let generations = Traffic.Churn.generations spec in
  let seq = Runtime.Parallel.run_sequential nf trace in

  (* correctness first: one SCR run, verdicts against the oracle *)
  let pool = Runtime.Pool.create ~cores () in
  let v_scr = Runtime.Pool.run pool scr_plan trace in
  let s = Runtime.Pool.stats pool in
  check "scr: verdicts identical to sequential" (verdicts_equal seq v_scr);
  check "scr: every batch broadcast to every non-owner"
    (s.Runtime.Pool.scr_replays > 0
    && s.Runtime.Pool.scr_replays mod (cores - 1) = 0);
  check "scr: digest bytes accounted" (s.Runtime.Pool.scr_digest_bytes > 0);
  check "scr: no rebuilds without faults" (s.Runtime.Pool.scr_rebuilds = 0);
  check "scr: nothing dropped" (s.Runtime.Pool.dropped_batches = 0);
  let scr_replays = s.Runtime.Pool.scr_replays in
  let scr_digest_bytes = s.Runtime.Pool.scr_digest_bytes in

  (* wall clock: warmed best-of-N for each rung on the same pool shape
     (informational only — see the header comment) *)
  let t_scr = best_of pool scr_plan trace in
  let scr_shares = Sim.Throughput.shares_of_pool_stats (Runtime.Pool.stats pool) in
  Runtime.Pool.shutdown pool;
  let pool = Runtime.Pool.create ~cores () in
  let t_lock = best_of pool lock_plan trace in
  let lock_shares = Sim.Throughput.shares_of_pool_stats (Runtime.Pool.stats pool) in
  Runtime.Pool.shutdown pool;
  let speedup = t_lock /. t_scr in

  (* the gated comparison: the contention laws on the measured shares *)
  let profile = Sim.Profile.of_trace nf trace in
  let mpps plan shares =
    (Sim.Throughput.evaluate ~measured_shares:shares plan profile trace).Sim.Throughput.mpps
  in
  let m_scr = mpps scr_plan scr_shares and m_lock = mpps lock_plan lock_shares in
  let model_speedup = m_scr /. m_lock in
  Printf.printf "model: scr %.2f mpps, lock %.2f mpps (x %.2f, gate %.2fx)\n%!" m_scr m_lock
    model_speedup speed_gate;
  Printf.printf "wall clock (informational): scr %.1f ms, lock %.1f ms (%.2fx)\n%!"
    (t_scr *. 1e3) (t_lock *. 1e3) speedup;
  check "scr beats the lock rung on churn" (model_speedup >= speed_gate);

  c_counter "churn.pkts" "packets replayed per run" npkts;
  c_counter "churn.active_flows" "concurrently live flows" active_flows;
  c_counter "churn.generations" "flow creations in one pass of the trace" generations;
  c_counter "churn.scr_replays" "digest batch replays scheduled (one run)" scr_replays;
  c_counter "churn.scr_digest_bytes" "digest bytes broadcast (one run)" scr_digest_bytes;
  c_counter "churn.scr_rebuilds" "replica rebuilds (must be 0 without faults)"
    s.Runtime.Pool.scr_rebuilds;
  c_counter "churn.model_scr_vs_lock_x100" "model scr/lock throughput, percent (gated)"
    (int_of_float (Float.round (model_speedup *. 100.0)));
  c_counter "churn.model_scr_mpps_x100" "model SCR throughput, mpps x100"
    (int_of_float (Float.round (m_scr *. 100.0)));
  c_counter "churn.model_lock_mpps_x100" "model lock throughput, mpps x100"
    (int_of_float (Float.round (m_lock *. 100.0)));
  (* timing-suffixed names: reported, never diffed *)
  c_counter "churn.scr_best_ms" "best SCR wall clock, milliseconds"
    (int_of_float (Float.round (t_scr *. 1e3)));
  c_counter "churn.lock_best_ms" "best lock wall clock, milliseconds"
    (int_of_float (Float.round (t_lock *. 1e3)));
  c_counter "churn.speedup_x100" "lock/scr wall clock, percent (informational)"
    (int_of_float (Float.round (speedup *. 100.0)));

  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  let timing_dependent = [ "pool.ring_full_stalls"; "supervisor.stuck_detected" ] in
  let snap =
    {
      snap with
      Telemetry.counters =
        List.filter
          (fun c -> not (List.mem c.Telemetry.counter_name timing_dependent))
          snap.Telemetry.counters;
    }
  in
  let oc = open_out out in
  output_string oc (Telemetry.to_json ~name:"churn" snap);
  close_out oc;
  Printf.printf "telemetry written to %s\n" out;
  if !failures > 0 then Printf.printf "%d violation(s)\n" !failures
  else print_endline "churn smoke: scr beats the lock rung";
  !failures
