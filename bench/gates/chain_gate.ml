(* Chain-path benchmark — the CI [chain-smoke] job (entry point
   bench/chainpath.ml; also runnable inside the bench tour as `ext-chain`).

   Composes fw→nat→lb with [Dsl.Chain] and replays one warmed trace
   through

   (a) the fused single-pass path: [Compile.stage] over the composed AST
       — one packet parse, every stage's layouts baked, verdicts
       threaded from stage to stage without leaving the closure tree —
       and
   (b) the back-to-back baseline: each stage checked, staged and bound
       separately, with a per-NF RSS dispatch before every hop — the
       cost of running the same NFs as a pipeline of independent
       processes on one core, minus the queueing.

   Checks (the wrapper exits non-zero on any violation):

   - fused verdicts are identical, packet for packet, to the
     back-to-back run and to the sequential interpreter-composition
     oracle ([Dsl.Chain.oracle_process]);
   - fused ns/pkt beats back-to-back by the gate factor
     (MAESTRO_CHAIN_GATE_X100, default 120 = 1.2x; CI sets 100 since
     shared runners only have to prove "never slower");
   - the fused path allocates no more minor words per packet than the
     costliest individual stage run alone — fusion introduces zero
     inter-NF allocation.

   Writes BENCH_chain.json ([out] overrides the path) for the
   check_regression gate.  chain.* counters without a timing suffix are
   deterministic for the fixed seed; wall-clock measurements use
   [_ns]/[speedup] names so the benchdiff timing policy excludes them. *)

let cores = 4
let passes = 3
let nflows = 512

let stage_names = [ "fw"; "nat"; "lb" ]

let iters_scale () =
  match Sys.getenv_opt "MAESTRO_BENCH_ITERS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> float_of_int n /. 100.0
      | _ -> 1.0)
  | None -> 1.0

let scaled base = max 100 (int_of_float (float_of_int base *. iters_scale ()))
let x100 v = int_of_float (Float.round (100.0 *. v))

let gate_x100 () =
  match Sys.getenv_opt "MAESTRO_CHAIN_GATE_X100" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 120)
  | None -> 120

(* Best of [passes] timed runs — the minimum is the least
   noise-contaminated estimate of the per-pass cost. *)
let time_pass f =
  let best = ref infinity in
  for _ = 1 to passes do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let verdict_equal a b =
  match (a, b) with
  | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
  | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
  | _ -> false

let c_counter name doc v =
  let c = Telemetry.Counter.make name ~doc in
  Telemetry.Counter.add c v

let run ?(out = "BENCH_chain.json") () =
  let failures = ref 0 in
  let check name ok =
    Printf.printf "%-58s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  (* measure with telemetry off so the loops are uninstrumented *)
  Telemetry.reset ();
  Telemetry.disable ();
  Nic.Rss.set_compile_default true;
  Dsl.Compile.set_default true;
  let stage_nfs = List.map Nfs.Registry.find_exn stage_names in
  let chain = Dsl.Chain.compose_exn stage_nfs in
  let composed = Dsl.Chain.nf chain in

  (* one uniform 2-port trace with replies, so the LAN and WAN paths and
     the NAT's allocation path are all on the measured loop *)
  let npkts = scaled 16_384 in
  let rng = Random.State.make [| 0xcab1e |] in
  let fs = Traffic.Gen.flows rng nflows in
  let spec = { Traffic.Gen.default_spec with Traffic.Gen.pkts = npkts; reply_fraction = 0.4 } in
  let trace = Traffic.Gen.uniform ~spec rng ~flows:fs in
  let npkts_f = float_of_int (Array.length trace) in

  let fused_bind () =
    Dsl.Compile.bind (Dsl.Chain.stage_compiled chain) (Dsl.Instance.create composed)
  in
  (* back-to-back: every stage owns a full-capacity instance and its own
     RSS engines, exactly as separate NF processes would *)
  let request = { Maestro.Pipeline.default_request with cores } in
  let stage_engines =
    List.map
      (fun nf ->
        let plan = (Maestro.Pipeline.parallelize_exn ~request nf).Maestro.Pipeline.plan in
        Array.init nf.Dsl.Ast.devices (Maestro.Plan.rss_engine plan))
      stage_nfs
  in
  let b2b_make () =
    List.map2
      (fun nf engines ->
        let info = Dsl.Check.check_exn nf in
        (Dsl.Compile.bind (Dsl.Compile.stage nf info) (Dsl.Instance.create nf), engines))
      stage_nfs stage_engines
  in
  let rec b2b_go stages pkt =
    match stages with
    | [] -> assert false
    | [ (b, engines) ] ->
        ignore (Nic.Rss.dispatch engines.(pkt.Packet.Pkt.port) pkt : int);
        Dsl.Compile.process b pkt
    | (b, engines) :: rest -> (
        ignore (Nic.Rss.dispatch engines.(pkt.Packet.Pkt.port) pkt : int);
        match Dsl.Compile.process b pkt with
        | Dsl.Interp.Dropped -> Dsl.Interp.Dropped
        | Dsl.Interp.Fwd (_, pkt') -> b2b_go rest pkt')
  in

  (* correctness: fresh state on every side, lockstep over one pass *)
  let fused_c = fused_bind () in
  let b2b_c = b2b_make () in
  let oracle = Dsl.Chain.oracle chain in
  let agree_b2b = ref 0 and agree_oracle = ref 0 in
  Array.iter
    (fun pkt ->
      let vf = Dsl.Compile.process fused_c pkt in
      if verdict_equal vf (b2b_go b2b_c pkt) then incr agree_b2b;
      if verdict_equal vf (Dsl.Chain.oracle_process oracle pkt) then incr agree_oracle)
    trace;
  check "fused == back-to-back verdicts" (!agree_b2b = Array.length trace);
  check "fused == interpreter-composition oracle" (!agree_oracle = Array.length trace);

  (* timing: fresh state again, warm twice (fill tables, then steady
     state), then best-of-N per side *)
  let fused_pass b = Array.iter (fun p -> ignore (Dsl.Compile.process b p : Dsl.Interp.action)) trace in
  let b2b_pass st = Array.iter (fun p -> ignore (b2b_go st p : Dsl.Interp.action)) trace in
  let fused_t = fused_bind () in
  fused_pass fused_t;
  fused_pass fused_t;
  let t_fused = time_pass (fun () -> fused_pass fused_t) /. npkts_f *. 1e9 in
  let w0 = Gc.minor_words () in
  fused_pass fused_t;
  let fused_words = (Gc.minor_words () -. w0) /. npkts_f in
  let b2b_t = b2b_make () in
  b2b_pass b2b_t;
  b2b_pass b2b_t;
  let t_b2b = time_pass (fun () -> b2b_pass b2b_t) /. npkts_f *. 1e9 in

  (* allocation bound: each stage alone over the same (warmed) trace *)
  let stage_words =
    List.map
      (fun nf ->
        let info = Dsl.Check.check_exn nf in
        let b = Dsl.Compile.bind (Dsl.Compile.stage nf info) (Dsl.Instance.create nf) in
        let pass () = Array.iter (fun p -> ignore (Dsl.Compile.process b p : Dsl.Interp.action)) trace in
        pass ();
        let w0 = Gc.minor_words () in
        pass ();
        (Gc.minor_words () -. w0) /. npkts_f)
      stage_nfs
  in
  let max_stage_words = List.fold_left Float.max 0.0 stage_words in

  let speedup = t_b2b /. t_fused in
  let gate = float_of_int (gate_x100 ()) /. 100.0 in
  Printf.printf
    "chain %s: fused %.1f ns/pkt, back-to-back %.1f ns/pkt (%.2fx, gate %.2fx)\n\
     alloc: fused %.2f words/pkt, stages alone %s (max %.2f)\n%!"
    (String.concat "->" stage_names)
    t_fused t_b2b speedup gate fused_words
    (String.concat ", " (List.map (Printf.sprintf "%.2f") stage_words))
    max_stage_words;
  check (Printf.sprintf "fused beats back-to-back by >= %.2fx" gate) (speedup >= gate);
  check "fused allocates <= costliest individual stage"
    (x100 fused_words <= x100 max_stage_words);

  Telemetry.enable ();
  c_counter "chain.stages" "stages in the fused chain" (List.length stage_names);
  c_counter "chain.pkts" "packets replayed per pass" (Array.length trace);
  c_counter "chain.flows" "flows in the workload" nflows;
  c_counter "chain.verdict_agreement" "fused/back-to-back verdict matches (one pass)"
    !agree_b2b;
  c_counter "chain.oracle_agreement" "fused/interpreter-oracle verdict matches (one pass)"
    !agree_oracle;
  c_counter "chain.fused_alloc_words_per_pkt_x100"
    "fused-path minor words per packet, x100" (x100 fused_words);
  c_counter "chain.stage_max_alloc_words_x100"
    "costliest individual stage, minor words per packet, x100" (x100 max_stage_words);
  (* timing-suffixed names: reported, never diffed *)
  c_counter "chain.fused_ns_x100" "fused cost, 1/100 ns per packet" (x100 t_fused);
  c_counter "chain.b2b_ns_x100" "back-to-back cost, 1/100 ns per packet" (x100 t_b2b);
  c_counter "chain.speedup_x100" "back-to-back over fused, x100" (x100 speedup);
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  let oc = open_out out in
  output_string oc (Telemetry.to_json ~name:"chain" snap);
  close_out oc;
  Printf.printf "telemetry written to %s\n" out;
  if !failures > 0 then Printf.printf "%d violation(s)\n" !failures
  else print_endline "chain smoke: fusion beats back-to-back, allocation flat";
  !failures
