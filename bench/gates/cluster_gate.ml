(* Cluster-tier smoke gate — the CI [cluster] matrix entry (entry point
   bench/cluster.ml).

   Exercises the front tier end to end on the firewall NF:

   - {e differential}: cluster verdicts must be positionally identical to
     a single-machine sequential run of the same trace — in steady state,
     across a join and a graceful leave (state migrated with
     {!Runtime.Balancer.migrate_by}), and across a machine failure whose
     replica is rebuilt from the SCR digest log.  This is the cluster
     statement of the paper's semantics-preservation contract.
   - {e minimal disruption}: maglev table reassignment on join/leave must
     stay under 2/N — both as a pure table property (swept over fleet
     sizes) and as measured flow movement under live traffic.
   - {e zero violations}: no packet may reach a down machine, and no flow
     may change machines without a churn event in between
     (state-sharing flows are never split, one level up from RSS).
   - {e pricing}: {!Sim.Throughput.evaluate_cluster} on the measured
     per-machine shares must price the fleet close to linear scale-out —
     the whole motivation for the tier (one box caps at the PCIe
     ceiling; ROADMAP item 4 wants past it).

   All cluster.* counters are deterministic (seeded keys, seeded trace,
   model-priced throughput); wall clock is reported under a [_ms] name
   the benchdiff timing policy excludes. *)

let machines = 4
let cores = 4
let nflows = 2_048
let body_pkts = 24_576
let epoch_pkts = 2_048

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

let agreement a b =
  let n = min (Array.length a) (Array.length b) in
  let ok = ref 0 in
  for i = 0 to n - 1 do
    let same =
      match (a.(i), b.(i)) with
      | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
      | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
      | _ -> false
    in
    if same then incr ok
  done;
  !ok

let c_counter name doc v =
  let c = Telemetry.Counter.make name ~doc in
  Telemetry.Counter.add c v

let build_tier nf =
  let config =
    {
      Cluster.Tier.default_config with
      Cluster.Tier.machines;
      epoch_pkts;
      request = { Maestro.Pipeline.default_request with cores };
    }
  in
  match Cluster.Tier.build ~config nf with
  | Ok t -> t
  | Error e -> failwith ("cluster gate: " ^ e)

let run_scenario nf trace fault_plan =
  (match fault_plan with
  | None -> Faults.clear ()
  | Some spec -> (
      match Faults.parse spec with
      | Ok plan -> Faults.install plan
      | Error e -> failwith e));
  let tier = build_tier nf in
  let verdicts, stats = Cluster.Tier.run tier trace in
  Faults.clear ();
  (tier, verdicts, stats)

let run ?(out = "BENCH_cluster.json") () =
  let failures = ref 0 in
  let check name ok =
    Printf.printf "%-58s %s\n%!" name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  Telemetry.reset ();
  Telemetry.enable ();
  Nic.Rss.set_compile_default true;
  Dsl.Compile.set_default true;
  let t0 = Unix.gettimeofday () in
  let nf = Nfs.Registry.find_exn "fw" in
  let rng = Random.State.make [| 0xc105e4 |] in
  let flows = Traffic.Gen.flows rng nflows in
  let spec = { Traffic.Gen.default_spec with pkts = body_pkts } in
  let trace, _warmup = Traffic.Gen.steady_uniform ~spec rng ~flows in
  let seq = Runtime.Parallel.run_sequential nf trace in

  (* pure maglev properties first: balance and minimal disruption over a
     sweep of fleet sizes *)
  let maglev_checks = ref 0 in
  for n = 2 to 8 do
    let ids = List.init n Fun.id in
    let base = Cluster.Maglev.build ~machines:ids () in
    let joined = Cluster.Maglev.build ~machines:(ids @ [ n ]) () in
    let left = Cluster.Maglev.build ~machines:(List.tl ids) () in
    let shares = Cluster.Maglev.shares base |> List.map snd in
    let max_s = List.fold_left Float.max 0.0 shares in
    incr maglev_checks;
    check
      (Printf.sprintf "maglev n=%d: balanced (max share %.3f)" n max_s)
      (max_s <= 2.0 /. float_of_int n);
    check
      (Printf.sprintf "maglev n=%d: join disruption <= 2/%d" n (n + 1))
      (Cluster.Maglev.disruption base joined <= 2.0 /. float_of_int (n + 1));
    check
      (Printf.sprintf "maglev n=%d: leave disruption <= 2/%d" n n)
      (Cluster.Maglev.disruption base left <= 2.0 /. float_of_int n)
  done;

  (* scenario A: steady fleet, no churn *)
  let tier_a, v_a, s_a = run_scenario nf trace None in
  check "steady: cluster verdicts identical to sequential" (verdicts_equal seq v_a);
  check "steady: front-tier key matches every packet" (s_a.Cluster.Tier.unmatched = 0);
  check "steady: no packet reached a down machine" (s_a.Cluster.Tier.dead_hits = 0);
  check "steady: no flow split across machines" (s_a.Cluster.Tier.affinity_violations = 0);
  check "steady: machine load within 2x of mean" (s_a.Cluster.Tier.imbalance_x100 <= 200);

  (* scenario B: join then graceful leave, state migrated live *)
  let _, v_b, s_b = run_scenario nf trace (Some "join@4:4;leave@8:1") in
  check "churn: verdicts survive join + leave migrations" (verdicts_equal seq v_b);
  check "churn: both events applied" (List.length s_b.Cluster.Tier.events = 2);
  List.iter
    (fun (e : Cluster.Tier.event_log) ->
      let n_after =
        match e.action with Faults.Join -> machines + 1 | _ -> machines
      in
      check
        (Printf.sprintf "churn: %s@%d reassigned <= 2/%d of slots"
           (match e.action with
           | Faults.Join -> "join"
           | Faults.Leave -> "leave"
           | Faults.Fail -> "fail")
           e.at_epoch n_after)
        (e.disruption <= 2.0 /. float_of_int n_after))
    s_b.Cluster.Tier.events;
  check "churn: migration moved flows" (s_b.Cluster.Tier.moved_flows > 0);
  check "churn: no flow dropped in migration" (s_b.Cluster.Tier.dropped_flows = 0);
  check "churn: no packet reached a down machine" (s_b.Cluster.Tier.dead_hits = 0);
  check "churn: no flow split between events" (s_b.Cluster.Tier.affinity_violations = 0);

  (* scenario C: machine failure, replica rebuilt from the digest log *)
  let tier_c, v_c, s_c = run_scenario nf trace (Some "fail@6:2") in
  check "fail: firewall admits a digest program" (Cluster.Tier.scr_admissible tier_c);
  check "fail: verdicts survive the crash rebuild" (verdicts_equal seq v_c);
  check "fail: zero flows lost" (s_c.Cluster.Tier.lost_flows = 0);
  check "fail: replica rebuilt from digests" (s_c.Cluster.Tier.rebuilt_flows > 0);
  check "fail: no packet reached the dead machine" (s_c.Cluster.Tier.dead_hits = 0);

  (* pricing: the measured steady-state shares through the cluster law *)
  let profile = Sim.Profile.of_trace nf trace in
  let counts =
    s_a.Cluster.Tier.machine_pkts |> List.map snd |> Array.of_list
  in
  let ce =
    Sim.Throughput.evaluate_cluster
      ~machine_shares:(Sim.Throughput.shares_of_counts counts)
      (Cluster.Tier.plan tier_a) profile trace
  in
  Printf.printf "model: one machine %.2f mpps, fleet of %d %.2f mpps (x%.2f)\n%!"
    ce.Sim.Throughput.per_machine.Sim.Throughput.mpps machines ce.Sim.Throughput.cluster_mpps
    ce.Sim.Throughput.scaleout;
  check "model: fleet realizes >= 3.2 machines of capacity"
    (ce.Sim.Throughput.scaleout >= 0.8 *. float_of_int machines);
  let run_ms = (Unix.gettimeofday () -. t0) *. 1e3 in

  c_counter "cluster.machines" "fleet size" machines;
  c_counter "cluster.pkts" "packets per scenario trace" (Array.length trace);
  c_counter "cluster.flows" "distinct flows in the trace" nflows;
  c_counter "cluster.maglev_table_slots" "maglev table size"
    (Cluster.Maglev.size (Cluster.Tier.table tier_a));
  c_counter "cluster.maglev_checks" "fleet sizes swept for table properties" !maglev_checks;
  c_counter "cluster.verdict_agreement" "verdicts agreeing with sequential, all scenarios"
    (agreement seq v_a + agreement seq v_b + agreement seq v_c);
  c_counter "cluster.moved_flows" "flows migrated between machines (join+leave+fail)"
    (s_b.Cluster.Tier.moved_flows + s_c.Cluster.Tier.moved_flows);
  c_counter "cluster.rebuilt_flows" "flows rebuilt from the SCR digest log"
    s_c.Cluster.Tier.rebuilt_flows;
  c_counter "cluster.dropped_flows" "flows dropped in migration (must be 0)"
    (s_b.Cluster.Tier.dropped_flows + s_c.Cluster.Tier.dropped_flows);
  c_counter "cluster.lost_flows" "flows lost to machine failure (must be 0)"
    s_c.Cluster.Tier.lost_flows;
  c_counter "cluster.dead_hits" "packets steered to down machines (must be 0)"
    (s_a.Cluster.Tier.dead_hits + s_b.Cluster.Tier.dead_hits + s_c.Cluster.Tier.dead_hits);
  c_counter "cluster.affinity_violations" "flows split without a churn event (must be 0)"
    (s_a.Cluster.Tier.affinity_violations + s_b.Cluster.Tier.affinity_violations
   + s_c.Cluster.Tier.affinity_violations);
  c_counter "cluster.imbalance_x100" "steady-state machine load max/mean, x100"
    s_a.Cluster.Tier.imbalance_x100;
  c_counter "cluster.front_key_attempts" "front-tier RS3 sampling rounds"
    (Cluster.Tier.key_attempts tier_a);
  c_counter "cluster.front_key_free_bits" "front-tier key solution-space dimension"
    (Cluster.Tier.key_free_bits tier_a);
  c_counter "cluster.model_scaleout_x100" "machines of capacity realized, x100 (gated)"
    (int_of_float (Float.round (ce.Sim.Throughput.scaleout *. 100.0)));
  c_counter "cluster.model_cluster_mpps_x100" "model fleet throughput, mpps x100"
    (int_of_float (Float.round (ce.Sim.Throughput.cluster_mpps *. 100.0)));
  c_counter "cluster.run_ms" "gate wall clock, milliseconds"
    (int_of_float (Float.round run_ms));

  Telemetry.disable ();
  let oc = open_out out in
  output_string oc (Telemetry.to_json ~name:"cluster" (Telemetry.snapshot ()));
  close_out oc;
  Printf.printf "telemetry written to %s\n" out;
  if !failures > 0 then Printf.printf "%d violation(s)\n" !failures
  else print_endline "cluster smoke: fleet preserves sequential semantics under churn";
  !failures
