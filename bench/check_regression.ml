(* Perf regression gate: diff two BENCH_<name>.json telemetry documents and
   fail (exit 1) when any compared counter grew beyond the threshold.

     check_regression [options] BASELINE.json CURRENT.json
       --threshold PCT     allowed growth, percent (default 15)
       --counters a,b,c    compare only the named counters
       --min-counters a,b  floor-gated counters: fail when one shrinks
                           below baseline * (1 - threshold) — for
                           counters that measure work which must keep
                           happening (rebalances, migrated flows)
       --include-timings   also compare machine-dependent counters
                           (_ns/_ms timings and speedup ratios)

   By default only deterministic work counters are compared (symbex paths,
   GF(2) equations, Toeplitz hashes, per-core packet counts, ...), so the
   gate is meaningful across machines; timing counters need a baseline
   recorded on the same hardware. *)

let usage () =
  prerr_endline
    "usage: check_regression [--threshold PCT] [--counters a,b,c] [--min-counters a,b]\n\
    \       [--include-timings] BASELINE.json CURRENT.json";
  exit 2

let () =
  let threshold = ref 15.0 in
  let only = ref None in
  let min_counters = ref [] in
  let include_timings = ref false in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0.0 -> threshold := t
        | _ -> usage ());
        parse rest
    | "--counters" :: v :: rest ->
        only := Some (String.split_on_char ',' v |> List.filter (fun s -> s <> ""));
        parse rest
    | "--min-counters" :: v :: rest ->
        min_counters := String.split_on_char ',' v |> List.filter (fun s -> s <> "");
        parse rest
    | "--include-timings" :: rest ->
        include_timings := true;
        parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "unknown option %s\n" arg;
        usage ()
    | file :: rest ->
        files := file :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ base_file; cur_file ] -> (
      match (Benchdiff.load base_file, Benchdiff.load cur_file) with
      | Error e, _ | _, Error e ->
          Printf.eprintf "check_regression: %s\n" e;
          exit 2
      | Ok base, Ok cur ->
          let report =
            Benchdiff.diff ~threshold:(!threshold /. 100.0) ?only:!only
              ~min_counters:!min_counters ~include_timings:!include_timings base cur
          in
          Format.printf "%s (%s) vs %s (%s)@." base_file base.Benchdiff.doc_name cur_file
            cur.Benchdiff.doc_name;
          Format.printf "%a@." Benchdiff.pp_report report;
          if Benchdiff.ok report then begin
            print_endline "OK";
            exit 0
          end
          else begin
            (* one GitHub Actions annotation per failed gate, so the PR
               checks tab names the counter without opening the log *)
            let annotate what (c : Benchdiff.change) =
              Printf.printf "::error title=bench gate: %s::%s %s: %d -> %d (%+.1f%%, threshold %.0f%%)\n"
                c.Benchdiff.counter_name c.Benchdiff.counter_name what c.Benchdiff.base
                c.Benchdiff.current
                (100.0 *. (c.Benchdiff.ratio -. 1.0))
                !threshold
            in
            List.iter (annotate "regressed") report.Benchdiff.regressions;
            List.iter (annotate "shrank below its floor") report.Benchdiff.shrunk;
            List.iter
              (fun name ->
                Printf.printf
                  "::error title=bench gate: %s::counter %s is gated but missing from the run\n"
                  name name)
              report.Benchdiff.missing;
            exit 1
          end)
  | _ -> usage ()
