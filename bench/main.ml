(* The benchmark harness: `dune exec bench/main.exe [targets...]`.

   With no arguments every figure and table of the paper is regenerated in
   order (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
   expected shapes). *)

let targets : (string * (unit -> unit)) list =
  [
    ("bench-json", Bench_json.run);
    ("fig2", Figures.fig2);
    ("fig3", Figures.fig3);
    ("fig5", Figures.fig5);
    ("fig6", Figures.fig6);
    ("table1", Figures.table1);
    ("fig8", Figures.fig8);
    ("fig9", Figures.fig9);
    ("fig10", Figures.fig10);
    ("fig11", Figures.fig11);
    ("fig14", Figures.fig14);
    ("latency", Figures.latency);
    ("ext-hhh", Figures.ext_hhh);
    ("ext-attack", Figures.ext_attack);
    ("ext-rsspp", Figures.ext_rsspp);
    ("ext-churn", Figures.ext_churn);
    ("ext-adaptive", Figures.ext_adaptive);
    ("ext-chain", Figures.ext_chain);
    ("ablation-nic", Figures.ablation_nic);
    ("ablation-rs3", Figures.ablation_rs3);
    ("ablation-rejuv", Figures.ablation_rejuv);
    ("ablation-shard", Figures.ablation_shard);
    ("ablation-spec", Figures.ablation_spec);
    ("micro", Micro.run);
    ("fastpath", Fastpath.run);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let requested = if requested = [] then List.map fst targets else requested in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
          Format.eprintf "unknown target %s (known: %s)@." name
            (String.concat ", " (List.map fst targets));
          exit 1)
    requested
