(* Machine-readable benchmark output: one BENCH_<nf>.json per NF in the
   corpus, written to the current directory.

   Each file is a versioned Telemetry snapshot (schema
   [Telemetry.schema_version]) of one full tour through the toolchain —
   pipeline generation, 10k packets through the deterministic parallel
   runtime, and one performance-model evaluation — so per-phase span
   timings and work counters (symbex paths, GF(2) equations, Toeplitz
   hashes, per-core packet counts, ...) are diffable across PRs. *)

let pkts = 10_000

let bench_nf name =
  Telemetry.reset ();
  Telemetry.enable ();
  let w = Sim.Workload.read_heavy ~pkts name in
  let outcome = Maestro.Pipeline.parallelize_exn w.Sim.Workload.nf in
  let plan = outcome.Maestro.Pipeline.plan in
  ignore (Runtime.Parallel.run plan w.Sim.Workload.trace);
  let profile = Sim.Workload.profile_of w in
  ignore (Sim.Throughput.evaluate plan profile w.Sim.Workload.trace);
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Telemetry.reset ();
  let file = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out file in
  output_string oc (Telemetry.to_json ~name snap);
  close_out oc;
  Format.printf "wrote %s (%d spans, %d counters, %d histograms)@." file
    (List.length snap.Telemetry.spans)
    (List.length snap.Telemetry.counters)
    (List.length snap.Telemetry.histograms)

let run () =
  Format.printf "@.=== Benchmark telemetry (BENCH_<nf>.json) ===@.";
  List.iter bench_nf Nfs.Registry.names
