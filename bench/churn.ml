(* CI entry point for the churn smoke gate; the logic lives in
   Gates.Churn_gate so the bench tour (`main.exe ext-churn`) can run the
   same benchmark.  First argv overrides the telemetry output path. *)

let () =
  let out = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  if Gates.Churn_gate.run ?out () > 0 then exit 1
