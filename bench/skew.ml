(* Skew smoke benchmark — the CI [skew-smoke] job.

   Replays a Zipf(1.1) "mice and elephants" trace (the Fig. 5 workload
   family) through the persistent domain pool twice — once with the
   static RSS dispatch and once with online RSS++ rebalancing
   (epoch 4096, threshold 1.1) — and checks the dynamic-balancing
   contract end to end on real domains:

   - both runs' verdicts are identical to sequential execution (the
     quiesced state migration is invisible to the NF);
   - zero flow-ordering violations: between two consecutive rebalance
     points every flow's packets land on exactly one core;
   - the balancer actually helps: averaged over the epochs after the
     first boundary, the dynamic run's excess imbalance
     (max/mean - 1) is at most [imbalance_gate] of the static run's.

   Exits non-zero on any violation and writes the run's telemetry as
   BENCH_skew.json (first argv overrides the path) for the
   check_regression gate.  Every skew.* counter is producer-side and
   deterministic for a fixed seed; the one timing-dependent pool
   counter (pool.ring_full_stalls) is filtered out of the document so
   the committed baseline diffs cleanly across machines. *)

let cores = 8
let epoch_pkts = 4096
let epochs = 8
let npkts = epochs * epoch_pkts
let nflows = 1_000
let zipf_exponent = 1.1
let threshold = 1.1

let imbalance_gate = 0.6
(* dynamic excess imbalance must be <= gate * static excess imbalance *)

let failures = ref 0

let check name ok =
  Printf.printf "%-58s %s\n%!" name (if ok then "ok" else "FAIL");
  if not ok then incr failures

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

(* flow-ordering violations: within each segment between consecutive
   rebalance points, a (normalized) flow dispatched to two different
   cores could be reordered *)
let ordering_violations trace (s : Runtime.Pool.stats) =
  let points = Array.of_list s.Runtime.Pool.last_rebalance_points in
  let flow_core = Hashtbl.create 4096 in
  let seg = ref 0 and viol = ref 0 in
  Array.iteri
    (fun i pkt ->
      while !seg < Array.length points && i >= points.(!seg) do
        incr seg;
        Hashtbl.reset flow_core
      done;
      let flow = Packet.Flow.normalize (Packet.Flow.of_pkt pkt) in
      let core = s.Runtime.Pool.last_assignment.(i) in
      match Hashtbl.find_opt flow_core flow with
      | None -> Hashtbl.add flow_core flow core
      | Some c -> if c <> core then incr viol)
    trace;
  !viol

let epoch_imbalances (s : Runtime.Pool.stats) =
  Array.init epochs (fun e ->
      let counts = Array.make cores 0 in
      for i = e * epoch_pkts to ((e + 1) * epoch_pkts) - 1 do
        let c = s.Runtime.Pool.last_assignment.(i) in
        counts.(c) <- counts.(c) + 1
      done;
      Runtime.Rebalance.imbalance_of counts)

(* mean excess imbalance (max/mean - 1) over the epochs where the
   balancer has had a chance to act (after the first boundary) *)
let mean_excess imbalances =
  let n = Array.length imbalances - 1 in
  let sum = ref 0.0 in
  for e = 1 to n do
    sum := !sum +. (imbalances.(e) -. 1.0)
  done;
  !sum /. float_of_int n

let c_counter name doc v =
  let c = Telemetry.Counter.make name ~doc in
  Telemetry.Counter.add c v

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_skew.json" in
  Telemetry.reset ();
  Telemetry.enable ();
  Nic.Rss.set_compile_default true;
  Dsl.Compile.set_default true;
  let nf = Nfs.Registry.find_exn "fw" in
  let request = { Maestro.Pipeline.default_request with cores } in
  let plan = (Maestro.Pipeline.parallelize_exn ~request nf).Maestro.Pipeline.plan in
  let rng = Random.State.make [| 0x5ca1e |] in
  let z = Traffic.Zipf.make ~exponent:zipf_exponent ~nflows () in
  let flows = Traffic.Gen.flows rng nflows in
  let spec = { Traffic.Gen.default_spec with pkts = npkts; reply_fraction = 0.3 } in
  let trace = Traffic.Zipf.trace ~spec rng z ~flows in
  let seq = Runtime.Parallel.run_sequential nf trace in

  (* static dispatch: the baseline the balancer must beat *)
  let pool = Runtime.Pool.create ~cores () in
  let v_static = Runtime.Pool.run pool plan trace in
  let s_static = Runtime.Pool.stats pool in
  Runtime.Pool.shutdown pool;
  check "static: verdicts identical to sequential" (verdicts_equal seq v_static);
  check "static: every packet dispatched"
    (Array.fold_left ( + ) 0 s_static.Runtime.Pool.last_per_core_pkts = npkts);

  (* dynamic dispatch: online rebalancing with quiesced state migration *)
  let pool = Runtime.Pool.create ~cores () in
  let mode = Runtime.Balancer.On { Runtime.Balancer.epoch_pkts; threshold } in
  let v_dyn = Runtime.Pool.run ~rebalance:mode pool plan trace in
  let s_dyn = Runtime.Pool.stats pool in
  Runtime.Pool.shutdown pool;
  check "dynamic: verdicts identical to sequential" (verdicts_equal seq v_dyn);
  check "dynamic: every packet dispatched"
    (Array.fold_left ( + ) 0 s_dyn.Runtime.Pool.last_per_core_pkts = npkts);
  check "dynamic: balancer engaged" (s_dyn.Runtime.Pool.rebalances >= 1);
  check "dynamic: state actually migrated" (s_dyn.Runtime.Pool.migrated_flows >= 1);
  check "dynamic: no migration evictions" (s_dyn.Runtime.Pool.migration_drops = 0);

  let viol_static = ordering_violations trace s_static in
  let viol_dyn = ordering_violations trace s_dyn in
  check "static: zero flow-ordering violations" (viol_static = 0);
  check "dynamic: zero flow-ordering violations" (viol_dyn = 0);

  let imb_static = mean_excess (epoch_imbalances s_static) in
  let imb_dyn = mean_excess (epoch_imbalances s_dyn) in
  Printf.printf "mean excess imbalance (epochs 1..%d): static %.3f, dynamic %.3f (gate %.2fx)\n%!"
    (epochs - 1) imb_static imb_dyn imbalance_gate;
  check "dynamic imbalance within gate" (imb_dyn <= imbalance_gate *. imb_static);

  c_counter "skew.pkts" "packets replayed per run" npkts;
  c_counter "skew.flows" "distinct flows in the workload" nflows;
  c_counter "skew.static_imbalance_x100" "mean static excess imbalance, percent"
    (int_of_float (Float.round (imb_static *. 100.0)));
  c_counter "skew.dynamic_imbalance_x100" "mean dynamic excess imbalance, percent"
    (int_of_float (Float.round (imb_dyn *. 100.0)));
  c_counter "skew.imbalance_ratio_x100" "dynamic/static excess imbalance, percent"
    (int_of_float (Float.round (imb_dyn /. Float.max 1e-9 imb_static *. 100.0)));
  c_counter "skew.rebalances" "rebalances applied by the dynamic run"
    s_dyn.Runtime.Pool.rebalances;
  c_counter "skew.migrated_buckets" "indirection buckets moved" s_dyn.Runtime.Pool.migrated_buckets;
  c_counter "skew.migrated_flows" "flow states handed between cores"
    s_dyn.Runtime.Pool.migrated_flows;
  c_counter "skew.ordering_violations" "flow-ordering violations across both runs"
    (viol_static + viol_dyn);

  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  (* ring-full stalls and stuck-worker detections depend on
     producer/consumer timing, never on the workload — drop them so the
     committed baseline is machine-independent *)
  let timing_dependent = [ "pool.ring_full_stalls"; "supervisor.stuck_detected" ] in
  let snap =
    {
      snap with
      Telemetry.counters =
        List.filter
          (fun c -> not (List.mem c.Telemetry.counter_name timing_dependent))
          snap.Telemetry.counters;
    }
  in
  let oc = open_out out in
  output_string oc (Telemetry.to_json ~name:"skew" snap);
  close_out oc;
  Printf.printf "telemetry written to %s\n" out;
  if !failures > 0 then begin
    Printf.printf "%d violation(s)\n" !failures;
    exit 1
  end;
  print_endline "skew smoke: dynamic rebalancing green"
