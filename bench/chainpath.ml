(* CI entry point for the chain smoke gate; the logic lives in
   Gates.Chain_gate so the bench tour (`main.exe ext-chain`) can run the
   same benchmark.  First argv overrides the telemetry output path. *)

let () =
  let out = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  if Gates.Chain_gate.run ?out () > 0 then exit 1
