(* NF-path benchmark: tree-walking interpreter vs staged closures.

   For every NF in the corpus a steady-state workload is replayed through
   (a) [Dsl.Interp.process] and (b) the closure from [Dsl.Compile.stage],
   both warmed over the establishment prefix, and the per-packet cost and
   the compiled path's minor-heap allocation rate are recorded to
   BENCH_nfpath.json (same schema as the per-NF telemetry documents, so
   `check_regression` can diff it against bench/baseline/).

   Gated counters (machine-portable, compared by default):
     nfpath.<nf>.compiled_rel_cost_x100   100 * t_compiled / t_interp —
                                          a timing *ratio*, so machine
                                          speed cancels; growth means the
                                          compiled path lost ground
     nfpath.<nf>.alloc_words_per_pkt_x100 100 * minor words per packet on
                                          the compiled path
   Timing counters (_ns/speedup, skipped by the default gate policy):
     nfpath.<nf>.interp_ns_x100, nfpath.<nf>.compiled_ns_x100,
     nfpath.<nf>.speedup_x100 *)

let iters_scale () =
  match Sys.getenv_opt "MAESTRO_BENCH_ITERS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> float_of_int n /. 100.0
      | _ -> 1.0)
  | None -> 1.0

let scaled base = max 100 (int_of_float (float_of_int base *. iters_scale ()))
let x100 v = int_of_float (Float.round (100.0 *. v))

let counter nf suffix doc =
  Telemetry.Counter.make (Printf.sprintf "nfpath.%s.%s" nf suffix) ~doc

(* Best of [passes] timed runs of [f] — the minimum is the least
   noise-contaminated estimate of the per-pass cost. *)
let passes = 3

let time_pass f =
  let best = ref infinity in
  for _ = 1 to passes do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let bench_nf name =
  let w = Sim.Workload.read_heavy ~pkts:(scaled 20_000) name in
  let nf = w.Sim.Workload.nf in
  let info = Dsl.Check.check_exn nf in
  let body = Sim.Workload.body w in
  let warm = Array.sub w.Sim.Workload.trace 0 w.Sim.Workload.skip in
  let npkts = float_of_int (Array.length body) in
  let interp_pass inst arr =
    for i = 0 to Array.length arr - 1 do
      ignore (Dsl.Interp.process nf info inst arr.(i))
    done
  in
  let compiled_pass b arr =
    for i = 0 to Array.length arr - 1 do
      ignore (Dsl.Compile.process b arr.(i))
    done
  in
  (* interpreter: warm over the establishment prefix, then one extra body
     pass so both sides time against fully-populated tables *)
  let i_inst = Dsl.Instance.create nf in
  interp_pass i_inst warm;
  interp_pass i_inst body;
  let t_interp = time_pass (fun () -> interp_pass i_inst body) /. npkts *. 1e9 in
  (* compiled: stage once, bind, same warmup discipline *)
  let staged = Dsl.Compile.stage nf info in
  let b = Dsl.Compile.bind staged (Dsl.Instance.create nf) in
  compiled_pass b warm;
  compiled_pass b body;
  let t_compiled = time_pass (fun () -> compiled_pass b body) /. npkts *. 1e9 in
  (* allocation rate of the warmed compiled path *)
  let w0 = Gc.minor_words () in
  compiled_pass b body;
  let words = (Gc.minor_words () -. w0) /. npkts in
  let speedup = t_interp /. t_compiled in
  Format.printf "%-8s interp %8.1f ns/pkt   compiled %8.1f ns/pkt   %4.1fx   %6.2f words/pkt@."
    name t_interp t_compiled speedup words;
  (name, t_interp, t_compiled, words)

let record (name, t_interp, t_compiled, words) =
  Telemetry.Counter.add (counter name "interp_ns_x100" "interp cost, 1/100 ns per packet")
    (x100 t_interp);
  Telemetry.Counter.add (counter name "compiled_ns_x100" "compiled cost, 1/100 ns per packet")
    (x100 t_compiled);
  Telemetry.Counter.add (counter name "speedup_x100" "interp-over-compiled speedup, x100")
    (x100 (t_interp /. t_compiled));
  Telemetry.Counter.add
    (counter name "compiled_rel_cost_x100" "compiled/interp cost ratio, x100 (lower is better)")
    (x100 (t_compiled /. t_interp));
  Telemetry.Counter.add
    (counter name "alloc_words_per_pkt_x100" "compiled-path minor words per packet, x100")
    (x100 words)

let () =
  Format.printf "@.=== NF-path benchmarks (BENCH_nfpath.json) ===@.";
  (* measure with telemetry off so the loops are uninstrumented, then
     record the results against an enabled collector *)
  Telemetry.reset ();
  Telemetry.disable ();
  let results = List.map bench_nf Nfs.Registry.extended_names in
  Telemetry.enable ();
  List.iter record results;
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Telemetry.reset ();
  let file = "BENCH_nfpath.json" in
  let oc = open_out file in
  output_string oc (Telemetry.to_json ~name:"nfpath" snap);
  close_out oc;
  Format.printf "wrote %s@." file
