(* Using RS3 on its own: derive RSS keys with custom steering guarantees and
   verify them by hashing — no NF involved.

   Reproduces two classics:
   - the Woo & Park single-port symmetric key (TCP session monitoring:
     both directions of a flow on one core), rediscovered by the solver
     rather than hand-crafted;
   - the firewall's two-port generalization (paper §3.5): independent keys
     per interface, symmetric across them.

     dune exec examples/symmetric_rss.exe
*)

open Packet

let random_pkt rng =
  Pkt.make
    ~ip_src:(Random.State.int rng 0x3fffffff)
    ~ip_dst:(Random.State.int rng 0x3fffffff)
    ~src_port:(Random.State.int rng 0x10000)
    ~dst_port:(Random.State.int rng 0x10000)
    ()

let hash key pkt = Nic.Toeplitz.hash_int ~key (Option.get (Nic.Field_set.hash_input Nic.Field_set.ipv4_tcp pkt))

let () =
  let rng = Random.State.make [| 2718 |] in

  (* --- single port, symmetric within itself (Woo & Park) ----------------- *)
  let single =
    Rs3.Problem.make ~field_sets:[ Nic.Field_set.ipv4_tcp ]
      [ Rs3.Cstr.symmetric ~port_a:0 ~port_b:0 ]
  in
  (match Rs3.Solve.solve ~seed:1 single with
  | Error (_, e) -> failwith e
  | Ok sol ->
      let key = sol.Rs3.Solve.keys.(0) in
      Format.printf "single-port symmetric key (%d free bits):@.  %s@." sol.Rs3.Solve.free_bits
        (Bitvec.to_hex key);
      let violations = ref 0 in
      for _ = 1 to 10_000 do
        let p = random_pkt rng in
        if hash key p <> hash key (Pkt.flip p) then incr violations
      done;
      Format.printf "checked 10000 random flows against their reverses: %d violations@.@."
        !violations);

  (* --- two ports, symmetric across them (the firewall's problem) --------- *)
  let dual =
    Rs3.Problem.make
      ~field_sets:[ Nic.Field_set.ipv4_tcp; Nic.Field_set.ipv4_tcp ]
      [ Rs3.Cstr.symmetric ~port_a:0 ~port_b:1 ]
  in
  (match Rs3.Solve.solve ~seed:2 dual with
  | Error (_, e) -> failwith e
  | Ok sol ->
      let k0 = sol.Rs3.Solve.keys.(0) and k1 = sol.Rs3.Solve.keys.(1) in
      Format.printf "two-port symmetric keys:@.  LAN %s@.  WAN %s@." (Bitvec.to_hex k0)
        (Bitvec.to_hex k1);
      let spread = Hashtbl.create 64 in
      let violations = ref 0 in
      for _ = 1 to 10_000 do
        let p = random_pkt rng in
        let h0 = hash k0 p and h1 = hash k1 (Pkt.flip p) in
        if h0 <> h1 then incr violations;
        Hashtbl.replace spread (h0 land 15) ()
      done;
      Format.printf "cross-port checks: %d violations; %d/16 queues touched@." !violations
        (Hashtbl.length spread));

  (* --- and a deliberately impossible request ----------------------------- *)
  let impossible =
    Rs3.Problem.make ~field_sets:[ Nic.Field_set.ipv4_tcp ]
      [
        Rs3.Cstr.same_flow ~port:0 [ Packet.Field.Ip_src ];
        Rs3.Cstr.same_flow ~port:0 [ Packet.Field.Ip_dst ];
      ]
  in
  match Rs3.Solve.solve ~seed:3 impossible with
  | Ok _ -> Format.printf "@.unexpected: disjoint requirements produced a key?!@."
  | Error (_, e) -> Format.printf "@.disjoint requirements correctly rejected:@.  %s@." e
