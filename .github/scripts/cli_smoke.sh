#!/usr/bin/env bash
# CLI surface smoke for the consolidated smoke-gate matrix, keyed by the
# matrix entry name.  Each case drives bin/maestro_cli.exe the way the
# README documents it and greps the load-bearing output lines; all
# traffic is seeded, so the expected counts are exact.
set -euo pipefail

cli() { opam exec -- dune exec bin/maestro_cli.exe -- "$@"; }

case "${1:?usage: cli_smoke.sh <matrix-entry-name>}" in
  bench | stress)
    # No CLI surface of their own: bench gates telemetry documents, and
    # the stress scale knob is exercised by the run step itself.
    ;;

  codec)
    # The VXLAN-terminating firewall end to end: inner-5-tuple symbex
    # constraints, inner-header RSS key, live pool agreeing with the
    # sequential oracle and actually spreading across cores.
    cli run vxlan_fw --cores 4 --pkts 4000 --flows 200 | tee cli-vxlan.txt
    grep -q 'strategy: shared-nothing' cli-vxlan.txt
    grep -q 'pool sequential agreement: 4000/4000' cli-vxlan.txt
    cli run gre_peer --cores 4 --pkts 4000 --flows 200 | tee cli-gre.txt
    grep -q 'pool sequential agreement: 4000/4000' cli-gre.txt
    ;;

  fault)
    cli run fw --cores 4 --pkts 4000 --flows 200 --fault-plan 'crash@1:2' | tee cli-fault.txt
    grep -q 'pool sequential agreement: 4000/4000' cli-fault.txt
    grep -q 'restarts' cli-fault.txt
    ;;

  skew)
    cli run fw --cores 8 --pkts 16384 --flows 1000 --rebalance epoch=4096 | tee cli-rebalance.txt
    grep -q 'pool sequential agreement: 16384/16384' cli-rebalance.txt
    grep -q 'pool rebalancing' cli-rebalance.txt
    ;;

  churn)
    cli run fw --cores 4 --pkts 4000 --flows 200 --discipline scr | tee cli-scr.txt
    grep -q 'pool sequential agreement: 4000/4000' cli-scr.txt
    grep -q 'state-compute-replication' cli-scr.txt
    ;;

  adaptive)
    cli run fw --cores 4 --pkts 16384 --flows 400 --adaptive epochs=2048 --stats | tee cli-adaptive.txt
    grep -q 'pool sequential agreement: 16384/16384' cli-adaptive.txt
    grep -q 'pool adaptive' cli-adaptive.txt
    ;;

  chain)
    cli parallelize --chain fw,nat --cores 8 | tee cli-chain.txt
    grep -q 'unified ladder rung: shared-nothing' cli-chain.txt
    grep -q 'stage 1 (nat, prefix s1_nat_)' cli-chain.txt
    cli run --chain policer,fw,nat --cores 4 --pkts 4000 --flows 200 | tee cli-chain-run.txt
    grep -q 'chain: chain_policer_fw_nat (3 stages fused)' cli-chain-run.txt
    grep -q 'pool sequential agreement: 4000/4000' cli-chain-run.txt
    ;;

  cluster)
    # Four machines under churn: a fifth joins, then one crashes and is
    # rebuilt from the SCR digest log — verdicts must stay identical to
    # the sequential NF with zero dead hits and zero split flows.
    cli cluster fw --machines 4 --cores 4 --pkts 12000 --flows 800 \
      --fault-plan 'join@1:4;fail@2:2' | tee cli-cluster.txt
    grep -q 'strategy: shared-nothing on 4 cores x 4 machines' cli-cluster.txt
    grep -q 'digest rebuild available' cli-cluster.txt
    grep -q 'agree with sequential; 0 dead hits, 0 affinity violations' cli-cluster.txt
    grep -Eq 'fail@2 machine 2: .* [1-9][0-9]* rebuilt' cli-cluster.txt
    ;;

  *)
    echo "cli_smoke.sh: unknown matrix entry '$1'" >&2
    exit 2
    ;;
esac
