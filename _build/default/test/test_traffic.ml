(* Tests for the workload generators. *)

let rng seed = Random.State.make [| seed |]

let test_flows_distinct () =
  let fs = Traffic.Gen.flows (rng 1) 500 in
  Alcotest.(check int) "count" 500 (List.length fs);
  Alcotest.(check int) "distinct" 500
    (List.length (List.sort_uniq Packet.Flow.compare fs))

let test_flows_client_server_ranges () =
  List.iter
    (fun (f : Packet.Flow.t) ->
      Alcotest.(check int) "client in 10/8" 0x0a (f.Packet.Flow.ip_src lsr 24);
      Alcotest.(check bool) "server in 96/3" true (f.Packet.Flow.ip_dst lsr 29 = 0b011))
    (Traffic.Gen.flows (rng 2) 100)

let test_uniform_trace_shape () =
  let st = rng 3 in
  let flows = Traffic.Gen.flows st 50 in
  let spec = { Traffic.Gen.default_spec with pkts = 2000; size = 128 } in
  let trace = Traffic.Gen.uniform ~spec st ~flows in
  Alcotest.(check int) "pkts" 2000 (Array.length trace);
  Array.iter (fun p -> Alcotest.(check int) "size" 128 p.Packet.Pkt.size) trace;
  Alcotest.(check int) "flows bounded" 50 (Traffic.Gen.count_new_flows trace);
  (* timestamps increase *)
  let ok = ref true in
  Array.iteri (fun i p -> if p.Packet.Pkt.ts_ns <> i * spec.Traffic.Gen.gap_ns then ok := false) trace;
  Alcotest.(check bool) "timestamps" true !ok

let test_first_packet_is_lan () =
  let st = rng 4 in
  let flows = Traffic.Gen.flows st 20 in
  let trace =
    Traffic.Gen.uniform ~spec:{ Traffic.Gen.default_spec with pkts = 500; reply_fraction = 0.8 }
      st ~flows
  in
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun p ->
      let key = Packet.Flow.normalize (Packet.Flow.of_pkt p) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        Alcotest.(check int) "session starts on the LAN" 0 p.Packet.Pkt.port
      end)
    trace

let test_zipf_calibration () =
  let z = Traffic.Zipf.paper () in
  let share = Traffic.Zipf.share_of_top z 48 in
  Alcotest.(check bool) "48 of 1000 flows carry ~80%" true (Float.abs (share -. 0.8) < 0.005);
  Alcotest.(check int) "nflows" 1000 (Traffic.Zipf.nflows z)

let test_zipf_sampling_skew () =
  let z = Traffic.Zipf.paper () in
  let st = rng 5 in
  let counts = Array.make 1000 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Traffic.Zipf.sample z st in
    counts.(i) <- counts.(i) + 1
  done;
  let top48 = Array.fold_left ( + ) 0 (Array.sub counts 0 48) in
  let share = float_of_int top48 /. float_of_int n in
  Alcotest.(check bool) "empirical share near 0.8" true (Float.abs (share -. 0.8) < 0.03);
  Alcotest.(check bool) "rank 0 heaviest" true (counts.(0) > counts.(100))

let test_zipf_trace () =
  let st = rng 6 in
  let z = Traffic.Zipf.paper () in
  let flows = Traffic.Gen.flows st 1000 in
  let trace = Traffic.Zipf.trace ~spec:{ Traffic.Gen.default_spec with pkts = 5000 } st z ~flows in
  Alcotest.(check int) "pkts" 5000 (Array.length trace);
  Alcotest.(check bool) "few flows dominate" true (Traffic.Gen.count_new_flows trace <= 1000)

let test_churn_zero () =
  let spec = { Traffic.Churn.default_spec with flows_per_gbit = 0.0; pkts = 5000 } in
  let trace = Traffic.Churn.trace (rng 7) spec in
  Alcotest.(check int) "no churn -> active flows only"
    spec.Traffic.Churn.active_flows
    (Traffic.Gen.count_new_flows trace)

let test_churn_rate () =
  let spec =
    { Traffic.Churn.default_spec with active_flows = 256; flows_per_gbit = 20_000.0; pkts = 50_000 }
  in
  let trace = Traffic.Churn.trace (rng 8) spec in
  let distinct = Traffic.Gen.count_new_flows trace in
  let expected = spec.Traffic.Churn.active_flows + Traffic.Churn.generations spec in
  (* the construction can lag slightly at the trace edges *)
  Alcotest.(check bool)
    (Printf.sprintf "distinct flows %d near expected %d" distinct expected)
    true
    (float_of_int (abs (distinct - expected)) < 0.15 *. float_of_int expected);
  Alcotest.(check bool) "relative churn realized" true
    (Float.abs ((Traffic.Churn.relative_churn spec /. spec.Traffic.Churn.flows_per_gbit) -. 1.0)
     < 0.1)

let test_churn_absolute_scaling () =
  let spec = { Traffic.Churn.default_spec with flows_per_gbit = 1000.0; pkts = 50_000 } in
  let at10 = Traffic.Churn.absolute_churn_fpm spec ~gbps:10.0 in
  let at20 = Traffic.Churn.absolute_churn_fpm spec ~gbps:20.0 in
  Alcotest.(check bool) "fpm scales with rate" true (Float.abs ((at20 /. at10) -. 2.0) < 1e-9)

let test_churn_spread_evenly () =
  let spec =
    { Traffic.Churn.default_spec with active_flows = 64; flows_per_gbit = 50_000.0; pkts = 20_000 }
  in
  let trace = Traffic.Churn.trace (rng 9) spec in
  (* count new-flow first-occurrences per quarter of the trace *)
  let seen = Hashtbl.create 1024 in
  let quarters = Array.make 4 0 in
  Array.iteri
    (fun i p ->
      let f = Packet.Flow.of_pkt p in
      if not (Hashtbl.mem seen f) then begin
        Hashtbl.replace seen f ();
        let q = i * 4 / Array.length trace in
        quarters.(q) <- quarters.(q) + 1
      end)
    trace;
  let mx = Array.fold_left max 0 quarters and mn = Array.fold_left min max_int quarters in
  Alcotest.(check bool)
    (Printf.sprintf "even spread (quarters %d..%d)" mn mx)
    true
    (float_of_int mn > 0.5 *. float_of_int mx)

let test_packet_sizes () =
  Alcotest.(check (list int)) "fig8 sweep" [ 64; 128; 256; 512; 1024; 1500 ]
    Traffic.Gen.packet_sizes

(* --- properties ------------------------------------------------------------ *)

let prop_traces_deterministic =
  QCheck.Test.make ~name:"traces are deterministic in the seed" ~count:20
    QCheck.(int_range 0 100000)
    (fun seed ->
      let mk () =
        let st = rng seed in
        let flows = Traffic.Gen.flows st 32 in
        Traffic.Gen.uniform ~spec:{ Traffic.Gen.default_spec with pkts = 200 } st ~flows
      in
      mk () = mk ())

let suite =
  [
    Alcotest.test_case "flows distinct" `Quick test_flows_distinct;
    Alcotest.test_case "flows in address ranges" `Quick test_flows_client_server_ranges;
    Alcotest.test_case "uniform trace shape" `Quick test_uniform_trace_shape;
    Alcotest.test_case "sessions start on the LAN" `Quick test_first_packet_is_lan;
    Alcotest.test_case "zipf calibration (48/1000 = 80%)" `Quick test_zipf_calibration;
    Alcotest.test_case "zipf sampling skew" `Quick test_zipf_sampling_skew;
    Alcotest.test_case "zipf trace" `Quick test_zipf_trace;
    Alcotest.test_case "churn: zero" `Quick test_churn_zero;
    Alcotest.test_case "churn: rate realized" `Quick test_churn_rate;
    Alcotest.test_case "churn: absolute scales with rate" `Quick test_churn_absolute_scaling;
    Alcotest.test_case "churn: spread evenly" `Quick test_churn_spread_evenly;
    Alcotest.test_case "packet size sweep" `Quick test_packet_sizes;
    QCheck_alcotest.to_alcotest prop_traces_deterministic;
  ]
