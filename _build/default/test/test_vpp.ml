(* Tests for the VPP-style batching framework and its nat44 baseline. *)

let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let pkt ?(port = 0) ?(ts_ns = 0) src sport dst dport =
  Packet.Pkt.make ~port ~ts_ns ~ip_src:src ~ip_dst:dst ~src_port:sport ~dst_port:dport ()

let test_graph_runs_batches () =
  let doubler =
    {
      Vpp.Graph.name = "entry";
      handler = Array.map (fun p -> (p, Vpp.Graph.Tx (1 - p.Packet.Pkt.port)));
    }
  in
  let g = Vpp.Graph.create ~entry:"entry" [ doubler ] in
  let pkts = Array.init 1000 (fun i -> pkt ~port:(i mod 2) i 1 2 3) in
  let verdicts = Vpp.Graph.run g pkts in
  Array.iteri
    (fun i v ->
      match v with
      | Vpp.Graph.Sent (p, _) -> Alcotest.(check int) "crossed" (1 - (i mod 2)) p
      | Vpp.Graph.Dropped -> Alcotest.fail "dropped")
    verdicts;
  (* 1000 packets in 256-packet batches = 4 node invocations *)
  Alcotest.(check int) "batched" 4 (Vpp.Graph.nodes_visited g)

let test_graph_rejects_bad_wiring () =
  let bad = { Vpp.Graph.name = "entry"; handler = Array.map (fun p -> (p, Vpp.Graph.To_node "nowhere")) } in
  let g = Vpp.Graph.create ~entry:"entry" [ bad ] in
  Alcotest.(check bool) "dangling next detected" true
    (try
       ignore (Vpp.Graph.run g [| pkt 1 2 3 4 |]);
       false
     with Invalid_argument _ -> true)

let test_nat44_translates () =
  let nat = Vpp.Nat44.create () in
  let client = ip 10 0 0 1 and server = ip 96 0 0 1 in
  match Vpp.Nat44.run nat [| pkt ~port:0 client 4444 server 80 |] with
  | [| Vpp.Graph.Sent (1, out) |] ->
      Alcotest.(check int) "src is external" (Vpp.Nat44.external_ip nat) out.Packet.Pkt.ip_src;
      Alcotest.(check bool) "port allocated" true (out.Packet.Pkt.src_port >= 1024);
      (* the reply comes back translated to the client *)
      (match
         Vpp.Nat44.run nat
           [| pkt ~port:1 server 80 (Vpp.Nat44.external_ip nat) out.Packet.Pkt.src_port |]
       with
      | [| Vpp.Graph.Sent (0, back) |] ->
          Alcotest.(check int) "client restored" client back.Packet.Pkt.ip_dst;
          Alcotest.(check int) "client port restored" 4444 back.Packet.Pkt.dst_port
      | _ -> Alcotest.fail "reply not delivered")
  | _ -> Alcotest.fail "not translated"

let test_nat44_blocks_spoofing () =
  let nat = Vpp.Nat44.create () in
  let client = ip 10 0 0 1 and server = ip 96 0 0 1 in
  match Vpp.Nat44.run nat [| pkt ~port:0 client 4444 server 80 |] with
  | [| Vpp.Graph.Sent (1, out) |] ->
      (match
         Vpp.Nat44.run nat
           [| pkt ~port:1 (ip 6 6 6 6) 80 (Vpp.Nat44.external_ip nat) out.Packet.Pkt.src_port |]
       with
      | [| Vpp.Graph.Dropped |] -> ()
      | _ -> Alcotest.fail "spoofed reply admitted")
  | _ -> Alcotest.fail "not translated"

let test_nat44_agrees_with_maestro_nat () =
  (* both NATs, fed the same LAN traffic, admit exactly the same packets *)
  let w = Sim.Workload.read_heavy ~pkts:4000 ~flows:500 "nat" in
  let vpp = Vpp.Nat44.create () in
  let vpp_verdicts = Vpp.Nat44.run vpp w.Sim.Workload.trace in
  let maestro = Runtime.Parallel.run_sequential w.Sim.Workload.nf w.Sim.Workload.trace in
  Array.iteri
    (fun i v ->
      let same =
        match (v, maestro.(i)) with
        | Vpp.Graph.Sent (pa, _), Dsl.Interp.Fwd (pb, _) -> pa = pb
        | Vpp.Graph.Dropped, Dsl.Interp.Dropped -> true
        | _ -> false
      in
      Alcotest.(check bool) (Printf.sprintf "verdict %d" i) true same)
    vpp_verdicts

let test_cost_params_slower_reads () =
  Alcotest.(check bool) "vpp touches more lines" true
    (Vpp.Nat44.cost_params.Sim.Cost.accesses_per_op > Sim.Cost.default.Sim.Cost.accesses_per_op);
  Alcotest.(check bool) "vpp batching lowers base" true
    (Vpp.Nat44.cost_params.Sim.Cost.base_cycles < Sim.Cost.default.Sim.Cost.base_cycles)

let suite =
  [
    Alcotest.test_case "graph runs batches" `Quick test_graph_runs_batches;
    Alcotest.test_case "graph rejects bad wiring" `Quick test_graph_rejects_bad_wiring;
    Alcotest.test_case "nat44 translates" `Quick test_nat44_translates;
    Alcotest.test_case "nat44 blocks spoofing" `Quick test_nat44_blocks_spoofing;
    Alcotest.test_case "nat44 agrees with maestro nat" `Quick test_nat44_agrees_with_maestro_nat;
    Alcotest.test_case "cost params encode the §6.4 story" `Quick test_cost_params_slower_reads;
  ]
