(* Direct tests for the Vigor stateful containers (paper Table 1). *)

open State

(* --- Map_s ---------------------------------------------------------------- *)

let test_map_basics () =
  let m = Map_s.create ~capacity:4 in
  Alcotest.(check (option int)) "miss" None (Map_s.get m "a");
  Alcotest.(check bool) "put" true (Map_s.put m "a" 1);
  Alcotest.(check (option int)) "hit" (Some 1) (Map_s.get m "a");
  Alcotest.(check bool) "overwrite" true (Map_s.put m "a" 2);
  Alcotest.(check (option int)) "new value" (Some 2) (Map_s.get m "a");
  Alcotest.(check int) "size" 1 (Map_s.size m)

let test_map_capacity () =
  let m = Map_s.create ~capacity:2 in
  Alcotest.(check bool) "1" true (Map_s.put m "a" 1);
  Alcotest.(check bool) "2" true (Map_s.put m "b" 2);
  Alcotest.(check bool) "full" false (Map_s.put m "c" 3);
  (* overwriting existing keys still works at capacity *)
  Alcotest.(check bool) "overwrite ok" true (Map_s.put m "a" 9);
  Alcotest.(check bool) "erase" true (Map_s.erase m "a");
  Alcotest.(check bool) "room again" true (Map_s.put m "c" 3)

let test_map_erase_absent () =
  let m = Map_s.create ~capacity:2 in
  Alcotest.(check bool) "absent" false (Map_s.erase m "zzz")

let test_map_binary_keys () =
  let m = Map_s.create ~capacity:8 in
  let k1 = "\x00\x01\x00" and k2 = "\x00\x00\x01" in
  ignore (Map_s.put m k1 1);
  ignore (Map_s.put m k2 2);
  Alcotest.(check (option int)) "k1" (Some 1) (Map_s.get m k1);
  Alcotest.(check (option int)) "k2" (Some 2) (Map_s.get m k2)

(* --- Vector --------------------------------------------------------------- *)

let test_vector () =
  let v = Vector.create ~capacity:4 ~default:0 in
  Vector.set v 2 42;
  Alcotest.(check int) "set/get" 42 (Vector.get v 2);
  Vector.update v 2 (fun x -> x + 1);
  Alcotest.(check int) "update" 43 (Vector.get v 2);
  Vector.reset v;
  Alcotest.(check int) "reset" 0 (Vector.get v 2);
  Alcotest.(check bool) "bounds" true
    (try
       ignore (Vector.get v 4);
       false
     with Invalid_argument _ -> true)

(* --- Dchain --------------------------------------------------------------- *)

let test_dchain_allocate_all () =
  let c = Dchain.create ~capacity:3 in
  let a = Dchain.allocate c ~now:1 and b = Dchain.allocate c ~now:2 in
  let d = Dchain.allocate c ~now:3 in
  Alcotest.(check bool) "three distinct" true
    (match (a, b, d) with
    | Some x, Some y, Some z -> x <> y && y <> z && x <> z
    | _ -> false);
  Alcotest.(check (option int)) "exhausted" None (Dchain.allocate c ~now:4);
  Alcotest.(check int) "allocated" 3 (Dchain.allocated c)

let test_dchain_expiry_order () =
  let c = Dchain.create ~capacity:4 in
  let i1 = Option.get (Dchain.allocate c ~now:10) in
  let i2 = Option.get (Dchain.allocate c ~now:20) in
  let i3 = Option.get (Dchain.allocate c ~now:30) in
  Alcotest.(check (option int)) "oldest" (Some i1) (Dchain.oldest c);
  (* rejuvenating the oldest moves it behind *)
  Alcotest.(check bool) "rejuvenate" true (Dchain.rejuvenate c i1 ~now:40);
  Alcotest.(check (option int)) "new oldest" (Some i2) (Dchain.oldest c);
  (* expiry frees strictly-older entries, oldest first *)
  Alcotest.(check (list int)) "expired" [ i2; i3 ] (Dchain.expire_before c ~threshold:35);
  Alcotest.(check int) "one left" 1 (Dchain.allocated c);
  Alcotest.(check bool) "i1 still allocated" true (Dchain.is_allocated c i1)

let test_dchain_free_and_reuse () =
  let c = Dchain.create ~capacity:2 in
  let i = Option.get (Dchain.allocate c ~now:1) in
  Alcotest.(check bool) "free" true (Dchain.free c i);
  Alcotest.(check bool) "double free" false (Dchain.free c i);
  Alcotest.(check bool) "reusable" true (Dchain.allocate c ~now:2 <> None)

let test_dchain_last_touch () =
  let c = Dchain.create ~capacity:2 in
  let i = Option.get (Dchain.allocate c ~now:5) in
  Alcotest.(check (option int)) "touch" (Some 5) (Dchain.last_touch c i);
  ignore (Dchain.rejuvenate c i ~now:9);
  Alcotest.(check (option int)) "rejuvenated" (Some 9) (Dchain.last_touch c i);
  Alcotest.(check (option int)) "absent" None (Dchain.last_touch c 1)

(* --- Sketch --------------------------------------------------------------- *)

let test_sketch_counts () =
  let s = Sketch.create ~depth:3 ~width:64 () in
  Alcotest.(check int) "empty" 0 (Sketch.count s "k");
  Sketch.increment s "k";
  Sketch.increment s "k";
  Alcotest.(check bool) "at least 2" true (Sketch.count s "k" >= 2);
  Sketch.clear s;
  Alcotest.(check int) "cleared" 0 (Sketch.count s "k")

let test_sketch_over_limit () =
  let s = Sketch.create () in
  Sketch.add s "pair" 65;
  Alcotest.(check bool) "over" true (Sketch.over_limit s "pair" ~limit:64);
  Alcotest.(check bool) "not over" false (Sketch.over_limit s "pair" ~limit:65)

(* count-min never under-estimates *)
let prop_sketch_overestimates =
  QCheck.Test.make ~name:"count-min never under-estimates" ~count:50
    QCheck.(pair (int_range 1 200) (int_range 1 500))
    (fun (keys, adds) ->
      let rng = Random.State.make [| keys; adds |] in
      let s = Sketch.create ~depth:4 ~width:128 () in
      let truth = Hashtbl.create 64 in
      for _ = 1 to adds do
        let k = string_of_int (Random.State.int rng keys) in
        Sketch.increment s k;
        Hashtbl.replace truth k (1 + Option.value ~default:0 (Hashtbl.find_opt truth k))
      done;
      Hashtbl.fold (fun k v acc -> acc && Sketch.count s k >= v) truth true)

(* --- Expire helpers -------------------------------------------------------- *)

let test_expire_single_map () =
  let chain = Dchain.create ~capacity:8 in
  let keys = Vector.create ~capacity:8 ~default:"" in
  let map = Map_s.create ~capacity:8 in
  let add key now =
    Option.get (Expire.allocate_flow chain ~keys ~map ~key ~now)
  in
  let _a = add "flow-a" 10 and _b = add "flow-b" 20 in
  Alcotest.(check int) "both live" 2 (Map_s.size map);
  let expired = Expire.expire_single_map chain ~keys ~map ~threshold:15 in
  Alcotest.(check int) "one expired" 1 expired;
  Alcotest.(check bool) "a gone" false (Map_s.mem map "flow-a");
  Alcotest.(check bool) "b alive" true (Map_s.mem map "flow-b")

let test_allocate_flow_full_map () =
  let chain = Dchain.create ~capacity:4 in
  let keys = Vector.create ~capacity:4 ~default:"" in
  let map = Map_s.create ~capacity:1 in
  Alcotest.(check bool) "first fits" true
    (Expire.allocate_flow chain ~keys ~map ~key:"x" ~now:1 <> None);
  (* the map (not the chain) is the binding constraint: allocation must be
     rolled back *)
  Alcotest.(check bool) "second refused" true
    (Expire.allocate_flow chain ~keys ~map ~key:"y" ~now:2 = None);
  Alcotest.(check int) "chain rolled back" 1 (Dchain.allocated chain)

(* dchain invariant: allocated + free = capacity under random ops *)
let prop_dchain_conservation =
  QCheck.Test.make ~name:"dchain conserves its index pool" ~count:50
    QCheck.(int_range 1 2000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let cap = 1 + Random.State.int rng 32 in
      let c = Dchain.create ~capacity:cap in
      let live = Hashtbl.create 16 in
      let ok = ref true in
      for step = 1 to 200 do
        match Random.State.int rng 4 with
        | 0 -> (
            match Dchain.allocate c ~now:step with
            | Some i ->
                if Hashtbl.mem live i then ok := false;
                Hashtbl.replace live i ()
            | None -> if Hashtbl.length live <> cap then ok := false)
        | 1 ->
            if Hashtbl.length live > 0 then begin
              let i = List.hd (List.of_seq (Hashtbl.to_seq_keys live)) in
              ignore (Dchain.free c i);
              Hashtbl.remove live i
            end
        | 2 ->
            if Hashtbl.length live > 0 then begin
              let i = List.hd (List.of_seq (Hashtbl.to_seq_keys live)) in
              ignore (Dchain.rejuvenate c i ~now:step)
            end
        | _ ->
            let freed = Dchain.expire_before c ~threshold:(step - 50) in
            List.iter (Hashtbl.remove live) freed
      done;
      !ok && Dchain.allocated c = Hashtbl.length live)

let suite =
  [
    Alcotest.test_case "map basics" `Quick test_map_basics;
    Alcotest.test_case "map capacity" `Quick test_map_capacity;
    Alcotest.test_case "map erase absent" `Quick test_map_erase_absent;
    Alcotest.test_case "map binary keys" `Quick test_map_binary_keys;
    Alcotest.test_case "vector" `Quick test_vector;
    Alcotest.test_case "dchain allocate all" `Quick test_dchain_allocate_all;
    Alcotest.test_case "dchain expiry order" `Quick test_dchain_expiry_order;
    Alcotest.test_case "dchain free/reuse" `Quick test_dchain_free_and_reuse;
    Alcotest.test_case "dchain last touch" `Quick test_dchain_last_touch;
    Alcotest.test_case "sketch counts" `Quick test_sketch_counts;
    Alcotest.test_case "sketch over limit" `Quick test_sketch_over_limit;
    Alcotest.test_case "expire single map" `Quick test_expire_single_map;
    Alcotest.test_case "allocate flow rollback" `Quick test_allocate_flow_full_map;
    QCheck_alcotest.to_alcotest prop_sketch_overestimates;
    QCheck_alcotest.to_alcotest prop_dchain_conservation;
  ]
