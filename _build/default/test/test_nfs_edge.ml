(* Edge-case behavior of the NF corpus: capacity exhaustion, expiry
   interplay, throttling boundaries — the semantics §4 says sharding must
   preserve locally. *)


let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let pkt ?(port = 0) ?(ts_ns = 0) ?(size = 64) src sport dst dport =
  Packet.Pkt.make ~port ~ts_ns ~size ~ip_src:src ~ip_dst:dst ~src_port:sport ~dst_port:dport ()

let runner nf =
  let info = Dsl.Check.check_exn nf in
  let inst = Dsl.Instance.create nf in
  fun p -> Dsl.Interp.process nf info inst p

let is_fwd port = function Dsl.Interp.Fwd (p, _) -> p = port | Dsl.Interp.Dropped -> false
let is_drop = function Dsl.Interp.Dropped -> true | Dsl.Interp.Fwd _ -> false

(* --- capacity exhaustion --------------------------------------------------- *)

let test_fw_outbound_survives_full_table () =
  let run = runner (Nfs.Fw.make ~capacity:4 ()) in
  (* fill the flow table *)
  for i = 1 to 4 do
    assert (is_fwd 1 (run (pkt (ip 10 0 0 i) 1000 (ip 96 0 0 1) 80)))
  done;
  (* a fifth outbound flow still forwards (fail-open for egress) ... *)
  Alcotest.(check bool) "outbound still flows" true
    (is_fwd 1 (run (pkt (ip 10 0 0 9) 1000 (ip 96 0 0 1) 80)));
  (* ... but its reply is unsolicited: the session was never recorded *)
  Alcotest.(check bool) "untracked reply dropped" true
    (is_drop (run (pkt ~port:1 (ip 96 0 0 1) 80 (ip 10 0 0 9) 1000)))

let test_fw_expiry_frees_capacity () =
  let run = runner (Nfs.Fw.make ~capacity:2 ~expiry_ns:1_000 ()) in
  assert (is_fwd 1 (run (pkt ~ts_ns:0 (ip 10 0 0 1) 1 (ip 96 0 0 1) 80)));
  assert (is_fwd 1 (run (pkt ~ts_ns:10 (ip 10 0 0 2) 1 (ip 96 0 0 1) 80)));
  (* both slots full and fresh: a third flow is untracked *)
  assert (is_fwd 1 (run (pkt ~ts_ns:20 (ip 10 0 0 3) 1 (ip 96 0 0 1) 80)));
  Alcotest.(check bool) "third reply dropped while full" true
    (is_drop (run (pkt ~port:1 ~ts_ns:30 (ip 96 0 0 1) 80 (ip 10 0 0 3) 1)));
  (* after expiry the table admits and tracks new flows again *)
  assert (is_fwd 1 (run (pkt ~ts_ns:10_000 (ip 10 0 0 4) 1 (ip 96 0 0 1) 80)));
  Alcotest.(check bool) "tracked after expiry" true
    (is_fwd 0 (run (pkt ~port:1 ~ts_ns:10_010 (ip 96 0 0 1) 80 (ip 10 0 0 4) 1)))

let test_nat_port_pool_exhaustion () =
  let run = runner (Nfs.Nat.make ~capacity:2 ()) in
  assert (is_fwd 1 (run (pkt (ip 10 0 0 1) 1 (ip 96 0 0 1) 80)));
  assert (is_fwd 1 (run (pkt (ip 10 0 0 2) 1 (ip 96 0 0 1) 80)));
  (* no external ports left: new connections are refused *)
  Alcotest.(check bool) "third connection refused" true
    (is_drop (run (pkt (ip 10 0 0 3) 1 (ip 96 0 0 1) 80)));
  (* existing sessions keep working *)
  Alcotest.(check bool) "existing session fine" true
    (is_fwd 1 (run (pkt (ip 10 0 0 1) 1 (ip 96 0 0 1) 80)))

(* --- policer boundaries ----------------------------------------------------- *)

let test_policer_exact_burst_boundary () =
  let run = runner (Nfs.Policer.make ~burst:128 ~ns_per_byte:8 ()) in
  let user = ip 10 0 0 1 in
  (* exactly the burst: admitted; one byte more would not be *)
  Alcotest.(check bool) "exact burst passes" true
    (is_fwd 0 (run (pkt ~port:1 ~size:128 ~ts_ns:0 (ip 96 0 0 1) 80 user 1)));
  Alcotest.(check bool) "empty bucket drops" true
    (is_drop (run (pkt ~port:1 ~size:64 ~ts_ns:8 (ip 96 0 0 1) 80 user 1)))

let test_policer_bucket_never_exceeds_burst () =
  let run = runner (Nfs.Policer.make ~burst:100 ~ns_per_byte:1 ()) in
  let user = ip 10 0 0 2 in
  assert (is_fwd 0 (run (pkt ~port:1 ~size:64 ~ts_ns:0 (ip 96 0 0 1) 80 user 1)));
  (* wait far longer than needed to refill: the bucket caps at [burst],
     so a 101-byte... (frame min is 64; use two 64B back-to-back) *)
  assert (is_fwd 0 (run (pkt ~port:1 ~size:64 ~ts_ns:1_000_000 (ip 96 0 0 1) 80 user 1)));
  Alcotest.(check bool) "second in a row exceeds the capped bucket" true
    (is_drop (run (pkt ~port:1 ~size:64 ~ts_ns:1_000_010 (ip 96 0 0 1) 80 user 1)))

(* --- psd / cl boundaries ----------------------------------------------------- *)

let test_psd_threshold_is_exact () =
  let run = runner (Nfs.Psd.make ~threshold:3 ()) in
  let src = ip 10 0 0 3 in
  for port = 1 to 3 do
    assert (is_fwd 1 (run (pkt src 999 (ip 96 0 0 1) port)))
  done;
  Alcotest.(check bool) "port 4 blocked" true (is_drop (run (pkt src 999 (ip 96 0 0 1) 4)))

let test_psd_expiry_resets_budget () =
  let run = runner (Nfs.Psd.make ~threshold:2 ~expiry_ns:1_000 ()) in
  let src = ip 10 0 0 4 in
  assert (is_fwd 1 (run (pkt ~ts_ns:0 src 9 (ip 96 0 0 1) 1)));
  assert (is_fwd 1 (run (pkt ~ts_ns:1 src 9 (ip 96 0 0 1) 2)));
  assert (is_drop (run (pkt ~ts_ns:2 src 9 (ip 96 0 0 1) 3)));
  (* after the window, the source starts fresh *)
  Alcotest.(check bool) "budget reset" true
    (is_fwd 1 (run (pkt ~ts_ns:10_000 src 9 (ip 96 0 0 1) 3)))

let test_cl_flows_within_one_pair_share_budget () =
  let run = runner (Nfs.Cl.make ~limit:2 ()) in
  let src = ip 10 0 0 5 and dst = ip 96 0 0 5 in
  assert (is_fwd 1 (run (pkt src 1001 dst 80)));
  assert (is_fwd 1 (run (pkt src 1002 dst 80)));
  assert (is_fwd 1 (run (pkt src 1003 dst 80)));
  Alcotest.(check bool) "fourth connection over the limit" true
    (is_drop (run (pkt src 1004 dst 80)));
  (* distinct pair unaffected even with same source *)
  Alcotest.(check bool) "other server fine" true (is_fwd 1 (run (pkt src 1005 (ip 96 0 0 6) 80)))

(* --- hhh ---------------------------------------------------------------------- *)

let test_hhh_throttles_heavy_prefix () =
  let run = runner (Nfs.Hhh.make ~budgets:(1000, 1000, 3) ()) in
  (* one /24 sends 5 packets from distinct hosts: the budget admits counts
     up to 3, so the packet seeing an estimate of 4 is the first throttled *)
  let verdicts =
    List.init 5 (fun i -> run (pkt (ip 77 1 1 (10 + i)) 1000 (ip 10 0 0 66) 80))
  in
  Alcotest.(check int) "first four pass, fifth throttled" 4
    (List.length (List.filter (is_fwd 1) verdicts));
  (* a different /24 in the same /16 still has budget at /24 level *)
  Alcotest.(check bool) "sibling /24 unaffected" true
    (is_fwd 1 (run (pkt (ip 77 1 2 10) 1000 (ip 10 0 0 66) 80)))

let test_hhh_wan_passthrough () =
  let run = runner (Nfs.Hhh.make ()) in
  Alcotest.(check bool) "reverse direction untouched" true
    (is_fwd 0 (run (pkt ~port:1 (ip 10 0 0 66) 80 (ip 77 1 1 10) 1000)))

(* --- lb ------------------------------------------------------------------------ *)

let test_lb_inactive_slot_drops () =
  let run = runner (Nfs.Lb.make ~backends:4 ()) in
  (* register only slot of backend 10.0.1.1; clients hashing to empty slots
     are refused *)
  assert (is_fwd 1 (run (pkt (ip 10 0 1 1) 80 (ip 10 0 1 100) 9)));
  let outcomes =
    List.init 16 (fun i -> run (pkt ~port:1 (ip 96 0 0 (i + 1)) (3000 + i) (ip 10 0 1 100) 80))
  in
  let served = List.length (List.filter (is_fwd 0) outcomes) in
  let refused = List.length (List.filter is_drop outcomes) in
  Alcotest.(check int) "all accounted" 16 (served + refused);
  Alcotest.(check bool) "some served, some refused" true (served > 0 && refused > 0)

let test_lb_non_subnet_lan_traffic_passes () =
  let run = runner (Nfs.Lb.make ()) in
  (* ordinary LAN hosts are not mistaken for backends *)
  Alcotest.(check bool) "passes through" true
    (is_fwd 1 (run (pkt (ip 10 9 9 9) 1234 (ip 96 0 0 1) 80)))

(* --- scenario 5 semantics ------------------------------------------------------ *)

let test_interchangeable_scenario_behaviour () =
  let run = runner (Nfs.Scenarios.interchangeable ()) in
  let mac_ip = ip 10 0 0 7 in
  (* register (source MAC, source IP) on the LAN side *)
  let reg =
    Packet.Pkt.make ~port:0
      ~eth_src:(Packet.Flow.mac_of_ip mac_ip)
      ~ip_src:mac_ip ~ip_dst:(ip 96 0 0 1) ~src_port:1 ~dst_port:2 ()
  in
  assert (is_fwd 1 (run reg));
  (* WAN packets to that MAC pass only when the destination IP matches *)
  let to_mac dst =
    Packet.Pkt.make ~port:1
      ~eth_dst:(Packet.Flow.mac_of_ip mac_ip)
      ~ip_src:(ip 96 0 0 1) ~ip_dst:dst ~src_port:2 ~dst_port:1 ()
  in
  Alcotest.(check bool) "matching ip admitted" true (is_fwd 0 (run (to_mac mac_ip)));
  Alcotest.(check bool) "mismatching ip dropped" true (is_drop (run (to_mac (ip 10 0 0 8))))

let suite =
  [
    Alcotest.test_case "fw: full table fails open outbound" `Quick
      test_fw_outbound_survives_full_table;
    Alcotest.test_case "fw: expiry frees capacity" `Quick test_fw_expiry_frees_capacity;
    Alcotest.test_case "nat: port pool exhaustion" `Quick test_nat_port_pool_exhaustion;
    Alcotest.test_case "policer: exact burst boundary" `Quick test_policer_exact_burst_boundary;
    Alcotest.test_case "policer: bucket caps at burst" `Quick
      test_policer_bucket_never_exceeds_burst;
    Alcotest.test_case "psd: threshold exact" `Quick test_psd_threshold_is_exact;
    Alcotest.test_case "psd: expiry resets budget" `Quick test_psd_expiry_resets_budget;
    Alcotest.test_case "cl: per-pair budget" `Quick test_cl_flows_within_one_pair_share_budget;
    Alcotest.test_case "hhh: throttles heavy /24" `Quick test_hhh_throttles_heavy_prefix;
    Alcotest.test_case "hhh: reverse passthrough" `Quick test_hhh_wan_passthrough;
    Alcotest.test_case "lb: inactive slots refuse" `Quick test_lb_inactive_slot_drops;
    Alcotest.test_case "lb: non-subnet traffic passes" `Quick
      test_lb_non_subnet_lan_traffic_passes;
    Alcotest.test_case "fig2⑤: guard semantics" `Quick test_interchangeable_scenario_behaviour;
  ]
