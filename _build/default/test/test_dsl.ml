(* Tests for the NF DSL: static checking, interpretation, state semantics. *)

open Dsl.Ast

let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let pkt ?(port = 0) ?(ts_ns = 0) ?(size = 64) ?(proto = Packet.Pkt.Tcp) src sport dst dport =
  Packet.Pkt.make ~port ~ts_ns ~size ~proto ~ip_src:src ~ip_dst:dst ~src_port:sport
    ~dst_port:dport ()

let run_nf nf =
  let info = Dsl.Check.check_exn nf in
  let inst = Dsl.Instance.create nf in
  fun p -> Dsl.Interp.process nf info inst p

(* --- static checking ----------------------------------------------------- *)

let tiny_counter key =
  {
    name = "tiny";
    devices = 2;
    state = [ Decl_map { name = "m"; capacity = 16; init = [] } ];
    process =
      Map_get
        {
          obj = "m";
          key;
          found = "f";
          value = "v";
          k =
            Map_put
              { obj = "m"; key; value = Var "v" +. const 1; ok = "ok"; k = Forward (const ~width:16 1) };
        };
  }

let test_check_accepts_valid () =
  match Dsl.Check.check (tiny_counter [ Field Packet.Field.Ip_src ]) with
  | Ok _ -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let expect_errors nf =
  match Dsl.Check.check nf with
  | Ok _ -> Alcotest.fail "expected validation errors"
  | Error es -> es

let test_check_unknown_object () =
  let nf =
    { (tiny_counter [ Field Packet.Field.Ip_src ]) with state = [] }
  in
  let es = expect_errors nf in
  Alcotest.(check bool) "mentions unknown object" true
    (List.exists (fun e -> String.length e > 0) es)

let test_check_unbound_var () =
  let nf =
    {
      name = "bad";
      devices = 1;
      state = [];
      process = If (Var "nope" ==. const 1, Drop, Drop);
    }
  in
  ignore (expect_errors nf)

let test_check_key_width_consistency () =
  let nf =
    {
      name = "bad_widths";
      devices = 1;
      state = [ Decl_map { name = "m"; capacity = 4; init = [] } ];
      process =
        Map_get
          {
            obj = "m";
            key = [ Field Packet.Field.Ip_src ];
            found = "f";
            value = "v";
            k =
              Map_put
                {
                  obj = "m";
                  key = [ Field Packet.Field.Src_port ];
                  value = const 1;
                  ok = "ok";
                  k = Drop;
                };
          };
    }
  in
  ignore (expect_errors nf)

let test_check_mismatched_comparison () =
  let nf =
    {
      name = "bad_cmp";
      devices = 1;
      state = [];
      process = If (Field Packet.Field.Ip_src ==. Field Packet.Field.Src_port, Drop, Drop);
    }
  in
  ignore (expect_errors nf)

let test_check_bad_forward () =
  let nf = { name = "bad_fwd"; devices = 2; state = []; process = Forward (const ~width:16 5) } in
  ignore (expect_errors nf)

let test_check_all_registry_nfs_valid () =
  List.iter
    (fun nf ->
      match Dsl.Check.check nf with
      | Ok _ -> ()
      | Error es ->
          Alcotest.fail (Printf.sprintf "%s: %s" nf.Dsl.Ast.name (String.concat "; " es)))
    (List.map Nfs.Registry.find_exn Nfs.Registry.extended_names @ Nfs.Scenarios.all ())

(* --- interpretation ------------------------------------------------------ *)

let test_interp_counter_counts () =
  let nf = tiny_counter [ Field Packet.Field.Ip_src ] in
  let info = Dsl.Check.check_exn nf in
  let inst = Dsl.Instance.create nf in
  let p = pkt (ip 1 2 3 4) 10 (ip 5 6 7 8) 20 in
  for _ = 1 to 3 do
    ignore (Dsl.Interp.process nf info inst p)
  done;
  match Dsl.Instance.find inst "m" with
  | Dsl.Instance.O_map m ->
      let key = key_of_parts [ (32, ip 1 2 3 4) ] in
      Alcotest.(check (option int)) "count" (Some 3) (State.Map_s.get m key)
  | _ -> Alcotest.fail "not a map"

let test_interp_op_events () =
  let nf = tiny_counter [ Field Packet.Field.Ip_src ] in
  let info = Dsl.Check.check_exn nf in
  let inst = Dsl.Instance.create nf in
  let events = ref [] in
  let on_op (e : Dsl.Interp.op_event) = events := e :: !events in
  ignore (Dsl.Interp.process ~on_op nf info inst (pkt 1 2 3 4));
  let kinds = List.rev_map (fun (e : Dsl.Interp.op_event) -> e.Dsl.Interp.kind) !events in
  Alcotest.(check int) "two ops" 2 (List.length kinds);
  Alcotest.(check bool) "get then put" true
    (kinds = [ Dsl.Interp.Op_map_get; Dsl.Interp.Op_map_put ]);
  let writes = List.filter (fun (e : Dsl.Interp.op_event) -> e.Dsl.Interp.write) !events in
  Alcotest.(check int) "one write" 1 (List.length writes)

let test_instance_capacity_division () =
  let nf = Nfs.Fw.make ~capacity:1024 () in
  let whole = Dsl.Instance.create nf in
  let sharded = Dsl.Instance.create ~divide:8 nf in
  (match (Dsl.Instance.find whole "fw_chain", Dsl.Instance.find sharded "fw_chain") with
  | Dsl.Instance.O_chain a, Dsl.Instance.O_chain b ->
      Alcotest.(check int) "full" 1024 (State.Dchain.capacity a);
      Alcotest.(check int) "divided" 128 (State.Dchain.capacity b)
  | _ -> Alcotest.fail "chains expected");
  Alcotest.(check bool) "memory shrinks" true
    (Dsl.Instance.total_memory_bytes sharded < Dsl.Instance.total_memory_bytes whole)

let test_cast_masks () =
  let nf =
    {
      name = "cast";
      devices = 2;
      state = [];
      process =
        Let
          ( "x",
            Cast (16, const ~width:32 (1024 + 70000)),
            If (Var "x" ==. const ~width:16 ((1024 + 70000) land 0xffff), Forward (const ~width:16 1), Drop) );
    }
  in
  match run_nf nf (pkt 1 2 3 4) with
  | Dsl.Interp.Fwd (1, _) -> ()
  | _ -> Alcotest.fail "cast did not truncate"

let test_div_by_zero_is_zero () =
  let nf =
    {
      name = "divz";
      devices = 2;
      state = [];
      process =
        If (Bin (Div, const 10, const 0) ==. const 0, Forward (const ~width:16 1), Drop);
    }
  in
  match run_nf nf (pkt 1 2 3 4) with
  | Dsl.Interp.Fwd (1, _) -> ()
  | _ -> Alcotest.fail "div by zero should be 0"

let suite =
  [
    Alcotest.test_case "check accepts valid" `Quick test_check_accepts_valid;
    Alcotest.test_case "check unknown object" `Quick test_check_unknown_object;
    Alcotest.test_case "check unbound var" `Quick test_check_unbound_var;
    Alcotest.test_case "check key width consistency" `Quick test_check_key_width_consistency;
    Alcotest.test_case "check width-mismatched comparison" `Quick test_check_mismatched_comparison;
    Alcotest.test_case "check bad forward" `Quick test_check_bad_forward;
    Alcotest.test_case "all registry NFs validate" `Quick test_check_all_registry_nfs_valid;
    Alcotest.test_case "interp counter" `Quick test_interp_counter_counts;
    Alcotest.test_case "interp op events" `Quick test_interp_op_events;
    Alcotest.test_case "instance capacity division" `Quick test_instance_capacity_division;
    Alcotest.test_case "cast masks" `Quick test_cast_masks;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero_is_zero;
  ]
