(* Tests for GF(2) linear systems. *)

open Gf2

let solve_exn sys =
  match System.eliminate sys with
  | Some s -> s
  | None -> Alcotest.fail "expected a consistent system"

let test_simple_solve () =
  (* x0 + x1 = 1, x1 = 1  =>  x0 = 0, x1 = 1 *)
  let sys = System.create ~cols:2 in
  System.add_equation sys ~coeffs:[ 0; 1 ] ~rhs:true;
  System.add_equation sys ~coeffs:[ 1 ] ~rhs:true;
  let s = solve_exn sys in
  let x = System.solve s in
  Alcotest.(check (array bool)) "solution" [| false; true |] x;
  Alcotest.(check int) "rank" 2 (System.rank s);
  Alcotest.(check int) "free" 0 (System.n_free s);
  Alcotest.(check bool) "check" true (System.check sys x)

let test_inconsistent () =
  let sys = System.create ~cols:1 in
  System.add_equation sys ~coeffs:[ 0 ] ~rhs:true;
  System.add_equation sys ~coeffs:[ 0 ] ~rhs:false;
  Alcotest.(check bool) "unsat" true (System.eliminate sys = None)

let test_inconsistent_implied () =
  (* x0+x1=0, x1+x2=0, x0+x2=1 is inconsistent by summing *)
  let sys = System.create ~cols:3 in
  System.add_equation sys ~coeffs:[ 0; 1 ] ~rhs:false;
  System.add_equation sys ~coeffs:[ 1; 2 ] ~rhs:false;
  System.add_equation sys ~coeffs:[ 0; 2 ] ~rhs:true;
  Alcotest.(check bool) "unsat" true (System.eliminate sys = None)

let test_free_variables () =
  let sys = System.create ~cols:4 in
  System.add_equal sys 0 1;
  System.add_zero sys 2;
  let s = solve_exn sys in
  Alcotest.(check int) "free" 2 (System.n_free s);
  let x = System.solve s in
  Alcotest.(check bool) "x0=x1" true (x.(0) = x.(1));
  Alcotest.(check bool) "x2=0" true (not x.(2))

let test_duplicate_coeffs_cancel () =
  (* x0 + x0 + x1 = 1 is x1 = 1 *)
  let sys = System.create ~cols:2 in
  System.add_equation sys ~coeffs:[ 0; 0; 1 ] ~rhs:true;
  let s = solve_exn sys in
  Alcotest.(check int) "rank 1" 1 (System.rank s);
  Alcotest.(check bool) "x1" true (System.solve s).(1)

let test_nullspace () =
  let sys = System.create ~cols:3 in
  System.add_equation sys ~coeffs:[ 0; 1; 2 ] ~rhs:false;
  let s = solve_exn sys in
  let basis = System.nullspace s in
  Alcotest.(check int) "dim" 2 (List.length basis);
  List.iter
    (fun v -> Alcotest.(check bool) "basis vector solves homogeneous" true (System.check sys v))
    basis

let test_sample_bias () =
  (* An unconstrained 64-var system sampled with bias 1.0 must be all ones. *)
  let sys = System.create ~cols:64 in
  let s = solve_exn sys in
  let rng = Random.State.make [| 1 |] in
  let x = System.sample s ~rng ~one_bias:1.0 in
  Alcotest.(check bool) "all ones" true (Array.for_all Fun.id x);
  let y = System.sample s ~rng ~one_bias:0.0 in
  Alcotest.(check bool) "all zeros" true (Array.for_all not y)

let test_out_of_range () =
  let sys = System.create ~cols:2 in
  Alcotest.check_raises "index" (Invalid_argument "Gf2.System.add_equation: index")
    (fun () -> System.add_equation sys ~coeffs:[ 2 ] ~rhs:false)

(* --- properties --------------------------------------------------------- *)

(* Random systems: generate a hidden solution, emit equations consistent with
   it; elimination must find some solution satisfying all equations. *)
let prop_consistent_systems_solve =
  QCheck.Test.make ~name:"systems built from a hidden witness are solvable" ~count:100
    QCheck.(pair (int_range 1 40) (int_range 0 60))
    (fun (cols, nrows) ->
      let rng = Random.State.make [| cols; nrows |] in
      let hidden = Array.init cols (fun _ -> Random.State.bool rng) in
      let sys = System.create ~cols in
      for _ = 1 to nrows do
        let coeffs =
          List.filter (fun _ -> Random.State.bool rng) (List.init cols Fun.id)
        in
        let rhs = List.fold_left (fun acc i -> if hidden.(i) then not acc else acc) false coeffs in
        System.add_equation sys ~coeffs ~rhs
      done;
      match System.eliminate sys with
      | None -> false
      | Some s ->
          let x = System.solve s in
          System.check sys x && System.check sys hidden)

let prop_sampled_solutions_check =
  QCheck.Test.make ~name:"sampled solutions satisfy the system" ~count:100
    QCheck.(pair (int_range 1 30) (int_range 0 40))
    (fun (cols, nrows) ->
      let rng = Random.State.make [| cols; nrows; 7 |] in
      let hidden = Array.init cols (fun _ -> Random.State.bool rng) in
      let sys = System.create ~cols in
      for _ = 1 to nrows do
        let coeffs = List.filter (fun _ -> Random.State.bool rng) (List.init cols Fun.id) in
        let rhs = List.fold_left (fun acc i -> if hidden.(i) then not acc else acc) false coeffs in
        System.add_equation sys ~coeffs ~rhs
      done;
      match System.eliminate sys with
      | None -> false
      | Some s ->
          List.for_all
            (fun bias -> System.check sys (System.sample s ~rng ~one_bias:bias))
            [ 0.0; 0.3; 0.7; 1.0 ])

let prop_rank_plus_free =
  QCheck.Test.make ~name:"rank + free = cols on consistent systems" ~count:100
    QCheck.(int_range 1 30)
    (fun cols ->
      let rng = Random.State.make [| cols; 13 |] in
      let sys = System.create ~cols in
      for _ = 1 to cols / 2 do
        let i = Random.State.int rng cols and j = Random.State.int rng cols in
        System.add_equal sys i j
      done;
      match System.eliminate sys with
      | None -> false
      | Some s -> System.rank s + System.n_free s = cols)

let suite =
  [
    Alcotest.test_case "simple solve" `Quick test_simple_solve;
    Alcotest.test_case "inconsistent" `Quick test_inconsistent;
    Alcotest.test_case "inconsistent (implied)" `Quick test_inconsistent_implied;
    Alcotest.test_case "free variables" `Quick test_free_variables;
    Alcotest.test_case "duplicate coefficients cancel" `Quick test_duplicate_coeffs_cancel;
    Alcotest.test_case "nullspace" `Quick test_nullspace;
    Alcotest.test_case "sample bias" `Quick test_sample_bias;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    QCheck_alcotest.to_alcotest prop_consistent_systems_solve;
    QCheck_alcotest.to_alcotest prop_sampled_solutions_check;
    QCheck_alcotest.to_alcotest prop_rank_plus_free;
  ]
