test/test_rs3.ml: Alcotest Array Attack Bitvec Cstr Field Hashtbl List Nic Packet Pkt Problem QCheck QCheck_alcotest Random Result Rs3 Solve Validate Window
