test/test_symbex.ml: Alcotest Array Dsl Field Fun List Nfs Packet QCheck QCheck_alcotest Random Symbex
