test/test_vpp.ml: Alcotest Array Dsl Packet Printf Runtime Sim Vpp
