test/test_traffic.ml: Alcotest Array Float Hashtbl List Packet Printf QCheck QCheck_alcotest Random Traffic
