test/test_sim.ml: Alcotest Float List Maestro Nfs Printf Sim Traffic
