test/test_gf2.ml: Alcotest Array Fun Gf2 List QCheck QCheck_alcotest Random System
