test/test_codegen.ml: Alcotest Array Astring_contains Bitvec Bytes Char Dsl List Maestro Nfs Printf String
