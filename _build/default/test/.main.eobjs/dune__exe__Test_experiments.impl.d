test/test_experiments.ml: Alcotest List Maestro Nfs Printf Random Sim Traffic Vpp
