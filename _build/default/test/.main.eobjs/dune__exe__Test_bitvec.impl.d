test/test_bitvec.ml: Alcotest Bitvec Bytes QCheck QCheck_alcotest
