test/test_runtime.ml: Alcotest Array Domain Dsl List Maestro Nfs Option Packet Printf QCheck QCheck_alcotest Random Runtime Traffic
