test/test_sat.ml: Alcotest Array Dimacs Format List Lit QCheck QCheck_alcotest Sat Solver Tseitin
