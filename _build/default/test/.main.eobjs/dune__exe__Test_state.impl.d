test/test_state.ml: Alcotest Dchain Expire Hashtbl List Map_s Option QCheck QCheck_alcotest Random Sketch State Vector
