test/test_nic.ml: Alcotest Bitvec Field Field_set List Model Nic Option Packet Pkt QCheck QCheck_alcotest Random Reta Rss String Toeplitz
