test/test_pipeline.ml: Alcotest Array Astring_contains Dsl Hashtbl List Maestro Nfs Nic Packet Printf Random Runtime Sim
