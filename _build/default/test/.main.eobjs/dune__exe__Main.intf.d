test/main.mli:
