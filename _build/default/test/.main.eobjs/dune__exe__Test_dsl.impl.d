test/test_dsl.ml: Alcotest Dsl List Nfs Packet Printf State String
