test/test_nfs_edge.ml: Alcotest Dsl List Nfs Packet
