test/test_packet.ml: Alcotest Bitvec Bytes Field Filename Flow Format Fun List Packet Pcap Pkt QCheck QCheck_alcotest Result String Sys Wire
