test/test_nfs.ml: Alcotest Dsl List Nfs Packet QCheck QCheck_alcotest Random
