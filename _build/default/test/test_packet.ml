(* Tests for the packet library: fields, flows, wire format, pcap. *)

open Packet

let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let sample_pkt =
  Pkt.make ~port:1 ~ip_src:(ip 10 0 0 1) ~ip_dst:(ip 192 168 1 2) ~src_port:1234
    ~dst_port:80 ()

let test_field_widths () =
  Alcotest.(check int) "eth" 48 (Field.width Field.Eth_src);
  Alcotest.(check int) "ip" 32 (Field.width Field.Ip_src);
  Alcotest.(check int) "port" 16 (Field.width Field.Src_port);
  Alcotest.(check int) "proto" 8 (Field.width Field.Ip_proto)

let test_field_strings () =
  List.iter
    (fun f ->
      match Field.of_string (Field.to_string f) with
      | Some f' -> Alcotest.(check bool) "roundtrip" true (Field.equal f f')
      | None -> Alcotest.fail "of_string failed")
    Field.all

let test_rss_capability () =
  Alcotest.(check bool) "mac not hashable" false (Field.rss_capable Field.Eth_src);
  Alcotest.(check bool) "ip hashable" true (Field.rss_capable Field.Ip_src)

let test_symmetric_counterpart () =
  Alcotest.(check bool) "src<->dst ip" true
    (Field.symmetric_counterpart Field.Ip_src = Some Field.Ip_dst);
  Alcotest.(check bool) "proto none" true (Field.symmetric_counterpart Field.Ip_proto = None)

let test_get_field () =
  let v = Pkt.get_field sample_pkt Field.Ip_src in
  Alcotest.(check int) "width" 32 (Bitvec.length v);
  Alcotest.(check int) "value" (ip 10 0 0 1) (Bitvec.to_int v);
  Alcotest.(check int) "port value" 1234 (Bitvec.to_int (Pkt.get_field sample_pkt Field.Src_port))

let test_flip () =
  let f = Pkt.flip sample_pkt in
  Alcotest.(check int) "src<->dst ip" sample_pkt.Pkt.ip_dst f.Pkt.ip_src;
  Alcotest.(check int) "ports" sample_pkt.Pkt.src_port f.Pkt.dst_port;
  Alcotest.(check bool) "flip twice is identity" true (Pkt.equal sample_pkt (Pkt.flip f))

let test_wire_size () =
  Alcotest.(check int) "64B frame is 84B on wire" 84 (Pkt.wire_size sample_pkt)

let test_flow_normalize () =
  let fwd = Flow.of_pkt sample_pkt and rev = Flow.of_pkt (Pkt.flip sample_pkt) in
  Alcotest.(check bool) "same session" true (Flow.equal (Flow.normalize fwd) (Flow.normalize rev));
  Alcotest.(check bool) "directions differ" false (Flow.equal fwd rev);
  Alcotest.(check bool) "reverse involution" true (Flow.equal fwd (Flow.reverse rev))

let test_checksum () =
  (* classic RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Alcotest.(check int) "rfc1071" 0x220d (Wire.internet_checksum b)

let test_serialize_parse_roundtrip () =
  let frame = Wire.serialize sample_pkt in
  Alcotest.(check int) "frame size" sample_pkt.Pkt.size (Bytes.length frame);
  match Wire.parse ~port:1 frame with
  | Error e -> Alcotest.fail e
  | Ok p -> Alcotest.(check bool) "roundtrip" true (Pkt.equal sample_pkt p)

let test_serialize_ip_header_checksum () =
  let frame = Wire.serialize sample_pkt in
  (* recomputing the IPv4 header checksum over the header must give zero *)
  Alcotest.(check int) "ip header checksum validates" 0
    (Wire.internet_checksum (Bytes.sub frame 14 20))

let test_udp_roundtrip () =
  let p = Pkt.make ~proto:Pkt.Udp ~size:100 ~ip_src:1 ~ip_dst:2 ~src_port:53 ~dst_port:5353 () in
  match Wire.parse (Wire.serialize p) with
  | Error e -> Alcotest.fail e
  | Ok q ->
      Alcotest.(check bool) "udp" true (q.Pkt.proto = Pkt.Udp);
      Alcotest.(check int) "sport" 53 q.Pkt.src_port

let test_serialize_too_small () =
  let p = Pkt.make ~size:40 ~ip_src:1 ~ip_dst:2 ~src_port:1 ~dst_port:2 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Wire.serialize p);
       false
     with Invalid_argument _ -> true)

let test_parse_truncated () =
  Alcotest.(check bool) "truncated is an error" true
    (Result.is_error (Wire.parse (Bytes.create 10)))

let test_pcap_roundtrip () =
  let pkts =
    List.init 5 (fun i ->
        Pkt.make ~ip_src:(ip 10 0 0 i) ~ip_dst:(ip 10 0 1 i) ~src_port:(1000 + i)
          ~dst_port:80 ~ts_ns:(i * 1_000_000) ())
  in
  let path = Filename.temp_file "maestro" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pcap.write_file path pkts;
      match Pcap.read_file path with
      | Error e -> Alcotest.fail e
      | Ok read ->
          Alcotest.(check int) "count" 5 (List.length read);
          List.iter2
            (fun a b ->
              Alcotest.(check int) "ip" a.Pkt.ip_src b.Pkt.ip_src;
              Alcotest.(check int) "port" a.Pkt.src_port b.Pkt.src_port;
              (* pcap stores microseconds *)
              Alcotest.(check int) "timestamp" a.Pkt.ts_ns b.Pkt.ts_ns)
            pkts read)

let test_pcap_bad_magic () =
  Alcotest.(check bool) "bad magic" true
    (Result.is_error (Pcap.of_string (String.make 24 'x')))

(* --- properties --------------------------------------------------------- *)

let gen_pkt =
  QCheck.Gen.(
    let ip = int_bound 0xffffff in
    let port = int_bound 0xffff in
    map2
      (fun (s, d) (sp, dp) ->
        Pkt.make ~ip_src:s ~ip_dst:d ~src_port:sp ~dst_port:dp
          ~size:(64 + (s mod 256)) ())
      (pair ip ip) (pair port port))

let arb_pkt = QCheck.make ~print:(Format.asprintf "%a" Pkt.pp) gen_pkt

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"serialize/parse roundtrip" ~count:200 arb_pkt (fun p ->
      match Wire.parse (Wire.serialize p) with Ok q -> Pkt.equal p q | Error _ -> false)

let prop_flip_preserves_session =
  QCheck.Test.make ~name:"flip preserves the normalized flow" ~count:200 arb_pkt (fun p ->
      Flow.equal
        (Flow.normalize (Flow.of_pkt p))
        (Flow.normalize (Flow.of_pkt (Pkt.flip p))))

let suite =
  [
    Alcotest.test_case "field widths" `Quick test_field_widths;
    Alcotest.test_case "field strings" `Quick test_field_strings;
    Alcotest.test_case "rss capability" `Quick test_rss_capability;
    Alcotest.test_case "symmetric counterpart" `Quick test_symmetric_counterpart;
    Alcotest.test_case "get_field" `Quick test_get_field;
    Alcotest.test_case "flip" `Quick test_flip;
    Alcotest.test_case "wire size" `Quick test_wire_size;
    Alcotest.test_case "flow normalize" `Quick test_flow_normalize;
    Alcotest.test_case "internet checksum" `Quick test_checksum;
    Alcotest.test_case "serialize/parse roundtrip" `Quick test_serialize_parse_roundtrip;
    Alcotest.test_case "ip header checksum" `Quick test_serialize_ip_header_checksum;
    Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "serialize too small" `Quick test_serialize_too_small;
    Alcotest.test_case "parse truncated" `Quick test_parse_truncated;
    Alcotest.test_case "pcap roundtrip" `Quick test_pcap_roundtrip;
    Alcotest.test_case "pcap bad magic" `Quick test_pcap_bad_magic;
    QCheck_alcotest.to_alcotest prop_wire_roundtrip;
    QCheck_alcotest.to_alcotest prop_flip_preserves_session;
  ]
