(* Behavioral tests for the eight evaluated NFs, run sequentially through
   the DSL interpreter. *)

open Dsl.Ast

let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d
let lan = 0
let wan = 1

let pkt ?(port = 0) ?(ts_ns = 0) ?(size = 64) src sport dst dport =
  Packet.Pkt.make ~port ~ts_ns ~size ~ip_src:src ~ip_dst:dst ~src_port:sport ~dst_port:dport ()

type runner = { nf : t; run : Packet.Pkt.t -> Dsl.Interp.action }

let runner nf =
  let info = Dsl.Check.check_exn nf in
  let inst = Dsl.Instance.create nf in
  { nf; run = (fun p -> Dsl.Interp.process nf info inst p) }

let is_fwd port = function Dsl.Interp.Fwd (p, _) -> p = port | Dsl.Interp.Dropped -> false
let is_drop = function Dsl.Interp.Dropped -> true | Dsl.Interp.Fwd _ -> false

let check_fwd msg port action = Alcotest.(check bool) msg true (is_fwd port action)
let check_drop msg action = Alcotest.(check bool) msg true (is_drop action)

(* --- NOP ----------------------------------------------------------------- *)

let test_nop () =
  let r = runner (Nfs.Nop.make ()) in
  check_fwd "lan->wan" wan (r.run (pkt ~port:lan 1 2 3 4));
  check_fwd "wan->lan" lan (r.run (pkt ~port:wan 1 2 3 4))

(* --- FW ------------------------------------------------------------------ *)

let test_fw_blocks_unsolicited () =
  let r = runner (Nfs.Fw.make ()) in
  check_drop "unsolicited wan" (r.run (pkt ~port:wan (ip 8 8 8 8) 53 (ip 10 0 0 1) 4444))

let test_fw_admits_replies () =
  let r = runner (Nfs.Fw.make ()) in
  let client = ip 10 0 0 1 and server = ip 8 8 8 8 in
  check_fwd "outbound" wan (r.run (pkt ~port:lan client 4444 server 53));
  (* the symmetric reply must get in *)
  check_fwd "reply admitted" lan (r.run (pkt ~port:wan server 53 client 4444));
  (* a different server is still blocked *)
  check_drop "other server blocked" (r.run (pkt ~port:wan (ip 9 9 9 9) 53 client 4444))

let test_fw_expiry () =
  let r = runner (Nfs.Fw.make ~expiry_ns:1_000 ()) in
  let client = ip 10 0 0 1 and server = ip 8 8 8 8 in
  check_fwd "outbound" wan (r.run (pkt ~port:lan ~ts_ns:0 client 4444 server 53));
  check_fwd "fresh reply ok" lan (r.run (pkt ~port:wan ~ts_ns:500 server 53 client 4444));
  (* long after expiry, the reply is unsolicited again *)
  check_drop "stale reply dropped" (r.run (pkt ~port:wan ~ts_ns:1_000_000 server 53 client 4444))

let test_fw_rejuvenation_keeps_flow_alive () =
  let r = runner (Nfs.Fw.make ~expiry_ns:1_000 ()) in
  let client = ip 10 0 0 1 and server = ip 8 8 8 8 in
  check_fwd "outbound" wan (r.run (pkt ~port:lan ~ts_ns:0 client 4444 server 53));
  (* keep touching the flow every 800ns: it must never expire *)
  for i = 1 to 5 do
    check_fwd "kept alive" lan (r.run (pkt ~port:wan ~ts_ns:(i * 800) server 53 client 4444))
  done

(* --- Policer ------------------------------------------------------------- *)

let test_policer_uploads_unpoliced () =
  let r = runner (Nfs.Policer.make ()) in
  check_fwd "upload passes" wan (r.run (pkt ~port:lan (ip 10 0 0 1) 1 (ip 8 8 8 8) 2))

let test_policer_limits_rate () =
  (* burst of 150 bytes, 1 byte per 8ns: two quick 100B packets exceed it *)
  let r = runner (Nfs.Policer.make ~burst:150 ~ns_per_byte:8 ()) in
  let user = ip 10 0 0 9 in
  check_fwd "first within burst" lan (r.run (pkt ~port:wan ~size:100 ~ts_ns:0 (ip 8 8 8 8) 80 user 5555));
  check_drop "second exceeds burst" (r.run (pkt ~port:wan ~size:100 ~ts_ns:10 (ip 8 8 8 8) 80 user 5555))

let test_policer_refills () =
  let r = runner (Nfs.Policer.make ~burst:150 ~ns_per_byte:8 ()) in
  let user = ip 10 0 0 9 in
  check_fwd "first" lan (r.run (pkt ~port:wan ~size:100 ~ts_ns:0 (ip 8 8 8 8) 80 user 5555));
  (* after 100 * 8 ns the bucket regained 100 bytes *)
  check_fwd "refilled" lan (r.run (pkt ~port:wan ~size:100 ~ts_ns:900 (ip 8 8 8 8) 80 user 5555))

let test_policer_per_user_isolation () =
  let r = runner (Nfs.Policer.make ~burst:150 ~ns_per_byte:8 ()) in
  check_fwd "user a" lan (r.run (pkt ~port:wan ~size:100 ~ts_ns:0 (ip 8 8 8 8) 80 (ip 10 0 0 1) 5555));
  (* a different user has their own bucket *)
  check_fwd "user b unaffected" lan
    (r.run (pkt ~port:wan ~size:100 ~ts_ns:1 (ip 8 8 8 8) 80 (ip 10 0 0 2) 5555))

(* --- Bridges ------------------------------------------------------------- *)

let mac i = 0x02_00_00_00_10_00 + i

let bpkt ~port ~src_mac ~dst_mac =
  Packet.Pkt.make ~port ~eth_src:src_mac ~eth_dst:dst_mac ~ip_src:(ip 10 0 0 1)
    ~ip_dst:(ip 10 0 0 2) ~src_port:1 ~dst_port:2 ()

let test_sbridge_static_forwarding () =
  let r = runner (Nfs.Bridge.static ~bindings:[ (mac 1, lan); (mac 2, wan) ] ()) in
  check_fwd "to wan host" wan (r.run (bpkt ~port:lan ~src_mac:(mac 1) ~dst_mac:(mac 2)));
  check_fwd "to lan host" lan (r.run (bpkt ~port:wan ~src_mac:(mac 2) ~dst_mac:(mac 1)));
  check_drop "unknown mac dropped" (r.run (bpkt ~port:lan ~src_mac:(mac 1) ~dst_mac:(mac 99)));
  check_drop "same-port filtered" (r.run (bpkt ~port:lan ~src_mac:(mac 2) ~dst_mac:(mac 1)))

let test_dbridge_learns () =
  let r = runner (Nfs.Bridge.dynamic ()) in
  (* unknown destination: dropped, but the source was learned *)
  check_drop "unknown dst" (r.run (bpkt ~port:lan ~src_mac:(mac 1) ~dst_mac:(mac 2)));
  (* now mac 2 speaks from the wan side; mac 1 is known on the lan port *)
  check_fwd "learned" lan (r.run (bpkt ~port:wan ~src_mac:(mac 2) ~dst_mac:(mac 1)));
  (* and the reverse direction works too *)
  check_fwd "both ways" wan (r.run (bpkt ~port:lan ~src_mac:(mac 1) ~dst_mac:(mac 2)))

let test_dbridge_migration () =
  let r = runner (Nfs.Bridge.dynamic ()) in
  check_drop "learn mac1 on lan" (r.run (bpkt ~port:lan ~src_mac:(mac 1) ~dst_mac:(mac 9)));
  (* the host moves to the wan port *)
  check_drop "relearn on wan" (r.run (bpkt ~port:wan ~src_mac:(mac 1) ~dst_mac:(mac 9)));
  (* traffic for mac1 from wan is now same-port filtered *)
  check_drop "same port" (r.run (bpkt ~port:wan ~src_mac:(mac 3) ~dst_mac:(mac 1)));
  check_fwd "from lan" wan (r.run (bpkt ~port:lan ~src_mac:(mac 4) ~dst_mac:(mac 1)))

(* --- PSD ----------------------------------------------------------------- *)

let test_psd_allows_below_threshold () =
  let r = runner (Nfs.Psd.make ~threshold:4 ()) in
  let src = ip 10 0 0 7 in
  for port = 1 to 4 do
    check_fwd "scan below threshold" wan (r.run (pkt ~port:lan src 1000 (ip 8 8 8 8) port))
  done

let test_psd_blocks_scan () =
  let r = runner (Nfs.Psd.make ~threshold:4 ()) in
  let src = ip 10 0 0 7 in
  for port = 1 to 4 do
    ignore (r.run (pkt ~port:lan src 1000 (ip 8 8 8 8) port))
  done;
  check_drop "fifth port blocked" (r.run (pkt ~port:lan src 1000 (ip 8 8 8 8) 5));
  (* revisiting an already-authorized port is fine *)
  check_fwd "known port ok" wan (r.run (pkt ~port:lan src 1000 (ip 8 8 8 8) 3));
  (* other sources are unaffected *)
  check_fwd "other source" wan (r.run (pkt ~port:lan (ip 10 0 0 8) 1000 (ip 8 8 8 8) 5))

(* --- NAT ----------------------------------------------------------------- *)

let ext_ip = 0xc0a80101

let test_nat_translates_and_replies () =
  let r = runner (Nfs.Nat.make ~external_ip:ext_ip ()) in
  let client = ip 10 0 0 1 and server = ip 8 8 8 8 in
  (match r.run (pkt ~port:lan client 4444 server 80) with
  | Dsl.Interp.Fwd (p, out) ->
      Alcotest.(check int) "to wan" wan p;
      Alcotest.(check int) "src rewritten" ext_ip out.Packet.Pkt.ip_src;
      Alcotest.(check bool) "port allocated" true (out.Packet.Pkt.src_port >= 1024);
      (* the reply to the allocated port must reach the client *)
      (match r.run (pkt ~port:wan server 80 ext_ip out.Packet.Pkt.src_port) with
      | Dsl.Interp.Fwd (p', back) ->
          Alcotest.(check int) "to lan" lan p';
          Alcotest.(check int) "dst restored" client back.Packet.Pkt.ip_dst;
          Alcotest.(check int) "dport restored" 4444 back.Packet.Pkt.dst_port
      | Dsl.Interp.Dropped -> Alcotest.fail "reply dropped")
  | Dsl.Interp.Dropped -> Alcotest.fail "outbound dropped")

let test_nat_blocks_spoofed_reply () =
  let r = runner (Nfs.Nat.make ~external_ip:ext_ip ()) in
  let client = ip 10 0 0 1 and server = ip 8 8 8 8 in
  match r.run (pkt ~port:lan client 4444 server 80) with
  | Dsl.Interp.Fwd (_, out) ->
      (* a different host aiming at the allocated port is rejected *)
      check_drop "spoofed" (r.run (pkt ~port:wan (ip 6 6 6 6) 80 ext_ip out.Packet.Pkt.src_port));
      (* even the right server from a different port *)
      check_drop "wrong port" (r.run (pkt ~port:wan server 81 ext_ip out.Packet.Pkt.src_port))
  | Dsl.Interp.Dropped -> Alcotest.fail "outbound dropped"

let test_nat_allocates_distinct_ports () =
  let r = runner (Nfs.Nat.make ()) in
  let server = ip 8 8 8 8 in
  let out1 = r.run (pkt ~port:lan (ip 10 0 0 1) 1111 server 80) in
  let out2 = r.run (pkt ~port:lan (ip 10 0 0 2) 2222 server 80) in
  match (out1, out2) with
  | Dsl.Interp.Fwd (_, a), Dsl.Interp.Fwd (_, b) ->
      Alcotest.(check bool) "distinct external ports" true
        (a.Packet.Pkt.src_port <> b.Packet.Pkt.src_port)
  | _ -> Alcotest.fail "translation failed"

let test_nat_same_flow_same_port () =
  let r = runner (Nfs.Nat.make ()) in
  let server = ip 8 8 8 8 in
  match (r.run (pkt ~port:lan (ip 10 0 0 1) 1111 server 80), r.run (pkt ~port:lan (ip 10 0 0 1) 1111 server 80)) with
  | Dsl.Interp.Fwd (_, a), Dsl.Interp.Fwd (_, b) ->
      Alcotest.(check int) "stable mapping" a.Packet.Pkt.src_port b.Packet.Pkt.src_port
  | _ -> Alcotest.fail "translation failed"

(* --- LB ------------------------------------------------------------------ *)

let test_lb_sticky_flows () =
  let r = runner (Nfs.Lb.make ~backends:4 ()) in
  (* register two backends *)
  ignore (r.run (pkt ~port:lan (ip 10 0 1 1) 80 (ip 1 1 1 1) 99));
  ignore (r.run (pkt ~port:lan (ip 10 0 1 2) 80 (ip 1 1 1 1) 99));
  (* a wan flow gets pinned to some backend and sticks to it *)
  let client = pkt ~port:wan (ip 7 7 7 7) 3333 (ip 5 5 5 5) 80 in
  match r.run client with
  | Dsl.Interp.Fwd (p, first) ->
      Alcotest.(check int) "to lan" lan p;
      let backend = first.Packet.Pkt.ip_dst in
      Alcotest.(check bool) "a registered backend" true
        (backend = ip 10 0 1 1 || backend = ip 10 0 1 2);
      for _ = 1 to 3 do
        match r.run client with
        | Dsl.Interp.Fwd (_, again) ->
            Alcotest.(check int) "sticky" backend again.Packet.Pkt.ip_dst
        | Dsl.Interp.Dropped -> Alcotest.fail "sticky packet dropped"
      done
  | Dsl.Interp.Dropped -> Alcotest.fail "no backend found (slot empty)"

let test_lb_no_backends_drops () =
  let r = runner (Nfs.Lb.make ~backends:4 ()) in
  check_drop "no backends" (r.run (pkt ~port:wan (ip 7 7 7 7) 3333 (ip 5 5 5 5) 80))

(* --- CL ------------------------------------------------------------------ *)

let test_cl_limits_connections () =
  let r = runner (Nfs.Cl.make ~limit:3 ()) in
  let src = ip 10 0 0 1 and dst = ip 8 8 8 8 in
  (* distinct flows between one pair count against the limit *)
  for i = 1 to 4 do
    check_fwd "within limit" wan (r.run (pkt ~port:lan src (1000 + i) dst 80))
  done;
  check_drop "over limit" (r.run (pkt ~port:lan src 2000 dst 80));
  (* established flows keep working *)
  check_fwd "existing flow ok" wan (r.run (pkt ~port:lan src 1001 dst 80));
  (* another destination pair is unaffected *)
  check_fwd "other pair" wan (r.run (pkt ~port:lan src 3000 (ip 9 9 9 9) 80))

(* --- cross-cutting ------------------------------------------------------- *)

(* Determinism: running the same packet sequence on two fresh instances
   produces identical verdicts — the baseline for parallel equivalence. *)
let prop_sequential_determinism =
  QCheck.Test.make ~name:"sequential NFs are deterministic" ~count:20
    QCheck.(pair (int_range 0 1000000) (int_range 1 50))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      let mk () = runner (Nfs.Fw.make ()) in
      let a = mk () and b = mk () in
      let pkts =
        List.init n (fun i ->
            pkt
              ~port:(Random.State.int rng 2)
              ~ts_ns:(i * 1000)
              (Random.State.int rng 16)
              (Random.State.int rng 4)
              (Random.State.int rng 16)
              (Random.State.int rng 4))
      in
      List.for_all
        (fun p ->
          match (a.run p, b.run p) with
          | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
          | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) ->
              pa = pb && Packet.Pkt.equal oa ob
          | _ -> false)
        pkts)

let suite =
  [
    Alcotest.test_case "nop forwards" `Quick test_nop;
    Alcotest.test_case "fw blocks unsolicited" `Quick test_fw_blocks_unsolicited;
    Alcotest.test_case "fw admits replies" `Quick test_fw_admits_replies;
    Alcotest.test_case "fw expiry" `Quick test_fw_expiry;
    Alcotest.test_case "fw rejuvenation" `Quick test_fw_rejuvenation_keeps_flow_alive;
    Alcotest.test_case "policer uploads unpoliced" `Quick test_policer_uploads_unpoliced;
    Alcotest.test_case "policer limits rate" `Quick test_policer_limits_rate;
    Alcotest.test_case "policer refills" `Quick test_policer_refills;
    Alcotest.test_case "policer per-user isolation" `Quick test_policer_per_user_isolation;
    Alcotest.test_case "sbridge static forwarding" `Quick test_sbridge_static_forwarding;
    Alcotest.test_case "dbridge learns" `Quick test_dbridge_learns;
    Alcotest.test_case "dbridge migration" `Quick test_dbridge_migration;
    Alcotest.test_case "psd below threshold" `Quick test_psd_allows_below_threshold;
    Alcotest.test_case "psd blocks scan" `Quick test_psd_blocks_scan;
    Alcotest.test_case "nat translate/reply" `Quick test_nat_translates_and_replies;
    Alcotest.test_case "nat blocks spoofed" `Quick test_nat_blocks_spoofed_reply;
    Alcotest.test_case "nat distinct ports" `Quick test_nat_allocates_distinct_ports;
    Alcotest.test_case "nat stable mapping" `Quick test_nat_same_flow_same_port;
    Alcotest.test_case "lb sticky flows" `Quick test_lb_sticky_flows;
    Alcotest.test_case "lb no backends" `Quick test_lb_no_backends_drops;
    Alcotest.test_case "cl limits connections" `Quick test_cl_limits_connections;
    QCheck_alcotest.to_alcotest prop_sequential_determinism;
  ]
