(* Tests for the exhaustive symbolic execution engine. *)

open Dsl.Ast
open Packet

let fwd p = Forward (const ~width:16 p)

let run nf = Symbex.Exec.run nf

let test_stateless_single_path_per_port () =
  let nf = Nfs.Nop.make () in
  let model = run nf in
  (* in_port folds to a constant per run: exactly one path per port *)
  Alcotest.(check int) "two paths" 2 (Symbex.Exec.paths model);
  Alcotest.(check int) "no calls" 0 (List.length (Symbex.Exec.calls model))

let test_branch_on_field_forks () =
  let nf =
    {
      name = "forker";
      devices = 2;
      state = [];
      process = If (Field Field.Src_port ==. const ~width:16 80, fwd 1, Drop);
    }
  in
  let model = run nf in
  Alcotest.(check int) "two paths per port" 4 (Symbex.Exec.paths model)

let test_constant_folding_prunes () =
  let nf =
    {
      name = "folder";
      devices = 1;
      state = [];
      process = If (const 1 ==. const 1, fwd 0, Drop);
    }
  in
  let model = run nf in
  Alcotest.(check int) "one path" 1 (Symbex.Exec.paths model)

let test_contradictory_branch_pruned () =
  let cond = Field Field.Src_port ==. const ~width:16 80 in
  let nf =
    {
      name = "contra";
      devices = 1;
      state = [];
      process = If (cond, If (cond, fwd 0, Drop), Drop);
    }
  in
  let model = run nf in
  (* the inner else-branch contradicts the outer condition: pruned *)
  Alcotest.(check int) "two paths" 2 (Symbex.Exec.paths model)

let test_map_get_branches_on_found () =
  let nf =
    {
      name = "getter";
      devices = 1;
      state = [ Decl_map { name = "m"; capacity = 4; init = [] } ];
      process =
        Map_get
          {
            obj = "m";
            key = [ Field Field.Ip_src ];
            found = "f";
            value = "v";
            k = If (Var "f", fwd 0, Drop);
          };
    }
  in
  let model = run nf in
  Alcotest.(check int) "two paths" 2 (Symbex.Exec.paths model);
  let calls = Symbex.Exec.calls model in
  Alcotest.(check int) "one call" 1 (List.length calls);
  match (List.hd calls).Symbex.Tree.key with
  | Some [ Symbex.Sym.Field Field.Ip_src ] -> ()
  | _ -> Alcotest.fail "key not tracked"

let test_rewrites_tracked_in_actions () =
  let nf =
    {
      name = "rewriter";
      devices = 2;
      state = [];
      process = Set_field (Field.Ip_dst, const ~width:32 42, fwd 1);
    }
  in
  let model = run nf in
  match Symbex.Tree.leaves model.Symbex.Exec.trees.(0) with
  | [ (Symbex.Tree.Forward (_, [ (Field.Ip_dst, Symbex.Sym.Const (32, 42)) ]), _) ] -> ()
  | _ -> Alcotest.fail "rewrite not recorded"

let test_field_reads_after_rewrite_see_new_value () =
  (* after ip.dst := ip.src, a key on ip.dst is symbolically ip.src *)
  let nf =
    {
      name = "alias";
      devices = 1;
      state = [ Decl_map { name = "m"; capacity = 4; init = [] } ];
      process =
        Set_field
          ( Field.Ip_dst,
            Field Field.Ip_src,
            Map_get
              {
                obj = "m";
                key = [ Field Field.Ip_dst ];
                found = "f";
                value = "v";
                k = Drop;
              } );
    }
  in
  let model = run nf in
  match (List.hd (Symbex.Exec.calls model)).Symbex.Tree.key with
  | Some [ Symbex.Sym.Field Field.Ip_src ] -> ()
  | _ -> Alcotest.fail "rewrite not threaded through field reads"

let test_chain_alloc_forks_structurally () =
  let nf =
    {
      name = "alloc";
      devices = 1;
      state = [ Decl_chain { name = "c"; capacity = 4 } ];
      process = Chain_alloc { obj = "c"; index = "i"; k_ok = fwd 0; k_fail = Drop };
    }
  in
  let model = run nf in
  Alcotest.(check int) "two paths" 2 (Symbex.Exec.paths model)

let test_call_paths_recorded () =
  let nf = Nfs.Fw.make () in
  let model = run nf in
  (* the map_put of the firewall only happens on the miss path: its recorded
     path constraints must mention the map_get's found symbol negatively *)
  let put =
    List.find
      (fun (c : Symbex.Tree.call) -> c.Symbex.Tree.kind = Dsl.Interp.Op_map_put)
      (Symbex.Exec.calls model)
  in
  Alcotest.(check bool) "guarded by a miss" true
    (List.exists
       (fun (sym, polarity) ->
         (not polarity) && match sym with Symbex.Sym.Call (_, "found") -> true | _ -> false)
       put.Symbex.Tree.path)

let test_classify_atoms () =
  let open Symbex.Sym in
  Alcotest.(check bool) "field" true (classify (Field Field.Ip_src) = A_field Field.Ip_src);
  Alcotest.(check bool) "field+const" true
    (classify (Bin (Dsl.Ast.Add, Field Field.Src_port, Const (16, 7))) = A_field Field.Src_port);
  Alcotest.(check bool) "prefix" true
    (classify (Bin (Dsl.Ast.Div, Field Field.Ip_src, Const (32, 1 lsl 24)))
    = A_prefix (Field.Ip_src, 8));
  Alcotest.(check bool) "nested prefix" true
    (classify
       (Bin
          ( Dsl.Ast.Div,
            Bin (Dsl.Ast.Div, Field Field.Ip_src, Const (32, 1 lsl 8)),
            Const (32, 1 lsl 8) ))
    = A_prefix (Field.Ip_src, 16));
  Alcotest.(check bool) "mod is lossy" true
    (match classify (Bin (Dsl.Ast.Mod, Field Field.Src_port, Const (16, 64))) with
    | A_opaque _ -> true
    | _ -> false);
  Alcotest.(check bool) "call result is opaque" true
    (match classify (Call (3, "value")) with A_opaque _ -> true | _ -> false);
  Alcotest.(check bool) "non-power divisor is lossy" true
    (match classify (Bin (Dsl.Ast.Div, Field Field.Ip_src, Const (32, 1000))) with
    | A_opaque _ -> true
    | _ -> false)

let test_tree_search_helpers () =
  let nf = Nfs.Fw.make () in
  let model = run nf in
  let tree = model.Symbex.Exec.trees.(0) in
  let get =
    List.find
      (fun (c : Symbex.Tree.call) -> c.Symbex.Tree.kind = Dsl.Interp.Op_map_get)
      (Symbex.Tree.all_calls tree)
  in
  (match Symbex.Tree.continuation_of_call tree get.Symbex.Tree.id with
  | Some _ -> ()
  | None -> Alcotest.fail "continuation not found");
  match
    Symbex.Tree.find_branch tree (fun c ->
        Symbex.Sym.equal c (Symbex.Sym.Call (get.Symbex.Tree.id, "found")))
  with
  | Some (_, t_found, t_miss) ->
      Alcotest.(check bool) "found path forwards" true
        (List.mem (Symbex.Tree.Forward (Symbex.Sym.Const (16, 1), []))
           (Symbex.Tree.leaf_action_set t_found));
      Alcotest.(check bool) "miss path exists" true
        (Symbex.Tree.leaf_action_set t_miss <> [])
  | None -> Alcotest.fail "found branch missing"

(* the model is complete: every concrete execution's verdict is one of the
   tree's leaf actions for that port *)
let prop_model_covers_concrete_runs =
  QCheck.Test.make ~name:"execution tree covers concrete verdicts" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let nf = Nfs.Registry.find_exn "fw" in
      let model = run nf in
      let info = Dsl.Check.check_exn nf in
      let inst = Dsl.Instance.create nf in
      let rng = Random.State.make [| seed |] in
      List.for_all
        (fun _ ->
          let port = Random.State.int rng 2 in
          let pkt =
            Packet.Pkt.make ~port
              ~ip_src:(Random.State.int rng 64)
              ~ip_dst:(Random.State.int rng 64)
              ~src_port:(Random.State.int rng 16)
              ~dst_port:(Random.State.int rng 16)
              ()
          in
          let verdict = Dsl.Interp.process nf info inst pkt in
          let leaf_ports =
            Symbex.Tree.leaves model.Symbex.Exec.trees.(port)
            |> List.map (fun (a, _) ->
                   match a with
                   | Symbex.Tree.Drop -> None
                   | Symbex.Tree.Forward (Symbex.Sym.Const (_, p), _) -> Some p
                   | Symbex.Tree.Forward _ -> Some (-1))
          in
          match verdict with
          | Dsl.Interp.Dropped -> List.mem None leaf_ports
          | Dsl.Interp.Fwd (p, _) -> List.mem (Some p) leaf_ports || List.mem (Some (-1)) leaf_ports)
        (List.init 20 Fun.id))

let suite =
  [
    Alcotest.test_case "stateless: one path per port" `Quick test_stateless_single_path_per_port;
    Alcotest.test_case "field branch forks" `Quick test_branch_on_field_forks;
    Alcotest.test_case "constant folding prunes" `Quick test_constant_folding_prunes;
    Alcotest.test_case "contradictions pruned" `Quick test_contradictory_branch_pruned;
    Alcotest.test_case "map_get forks on found" `Quick test_map_get_branches_on_found;
    Alcotest.test_case "rewrites tracked" `Quick test_rewrites_tracked_in_actions;
    Alcotest.test_case "rewrites alias field reads" `Quick
      test_field_reads_after_rewrite_see_new_value;
    Alcotest.test_case "chain_alloc forks" `Quick test_chain_alloc_forks_structurally;
    Alcotest.test_case "call paths recorded" `Quick test_call_paths_recorded;
    Alcotest.test_case "atom classification" `Quick test_classify_atoms;
    Alcotest.test_case "tree search helpers" `Quick test_tree_search_helpers;
    QCheck_alcotest.to_alcotest prop_model_covers_concrete_runs;
  ]
