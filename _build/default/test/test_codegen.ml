(* Tests for the C emitter: structural sanity of the generated source for
   every NF and strategy (the paper's Fig. 13 artifact). *)

let contains = Astring_contains.contains

let emit ?(strategy = `Auto) ?(cores = 16) name =
  let request = { Maestro.Pipeline.default_request with cores; strategy } in
  let o = Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn name) in
  (o.Maestro.Pipeline.plan, Maestro.Codegen.emit_c o.Maestro.Pipeline.plan)

let balanced_braces code =
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    code;
  !ok && !depth = 0

let test_all_nfs_emit () =
  List.iter
    (fun name ->
      let plan, code = emit name in
      Alcotest.(check bool) (name ^ ": braces balance") true (balanced_braces code);
      Alcotest.(check bool) (name ^ ": has init") true (contains code "int init(void)");
      Alcotest.(check bool) (name ^ ": has process") true (contains code "int process(");
      (* every state object appears *)
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (name ^ ": declares " ^ Dsl.Ast.decl_name d)
            true
            (contains code (Dsl.Ast.decl_name d)))
        plan.Maestro.Plan.nf.Dsl.Ast.state;
      (* one key array per port *)
      Array.iteri
        (fun port _ ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: key for port %d" name port)
            true
            (contains code (Printf.sprintf "RSS_HASH_PORT_%d" port)))
        plan.Maestro.Plan.rss)
    Nfs.Registry.extended_names

let test_shared_nothing_divides_capacity () =
  let _, code = emit ~cores:16 "fw" in
  (* 65536 split over 16 cores *)
  Alcotest.(check bool) "per-core capacity" true (contains code "4096");
  Alcotest.(check bool) "per-core instances" true (contains code "[core_id]")

let test_lock_based_keeps_capacity () =
  let _, code = emit ~strategy:`Force_locks "fw" in
  Alcotest.(check bool) "full capacity" true (contains code "map_init(&fw_flows, 65536)");
  Alcotest.(check bool) "no per-core suffix on state" false (contains code "fw_flows[core_id]")

let test_key_bytes_match_plan () =
  let plan, code = emit "fw" in
  let key = plan.Maestro.Plan.rss.(0).Maestro.Plan.key in
  let first_byte = Printf.sprintf "0x%02x," (Char.code (Bytes.get (Bitvec.to_bytes key) 0)) in
  Alcotest.(check bool) "first key byte present" true (contains code first_byte);
  Alcotest.(check bool) "52-byte array" true (contains code "RSS_HASH_PORT_0[52]")

let test_warnings_surface_in_header () =
  let _, code = emit "lb" in
  Alcotest.(check bool) "warning comment" true (contains code "warning:")

let test_flex_extraction_flagged () =
  let _, code = emit "hhh" in
  Alcotest.(check bool) "flex comment" true (contains code "flex-extract top 8 bits")

let test_tm_header () =
  let _, code = emit ~strategy:`Force_tm "fw" in
  Alcotest.(check bool) "rtm comment" true (contains code "restricted transaction")

let suite =
  [
    Alcotest.test_case "all NFs emit structurally sane C" `Quick test_all_nfs_emit;
    Alcotest.test_case "shared-nothing divides capacity" `Quick
      test_shared_nothing_divides_capacity;
    Alcotest.test_case "lock-based keeps capacity" `Quick test_lock_based_keeps_capacity;
    Alcotest.test_case "key bytes match the plan" `Quick test_key_bytes_match_plan;
    Alcotest.test_case "warnings surface" `Quick test_warnings_surface_in_header;
    Alcotest.test_case "flex extraction flagged" `Quick test_flex_extraction_flagged;
    Alcotest.test_case "tm header" `Quick test_tm_header;
  ]
