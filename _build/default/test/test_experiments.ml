(* Shape assertions for every reproduced figure: who wins, by roughly what
   factor, where the crossovers are.  These encode EXPERIMENTS.md's claims so
   a regression in the model breaks the build.  Workloads are scaled down
   for test speed; the bench harness runs the full-size versions. *)

let plan_for ?(seed = 0xbeef) ?(strategy = `Auto) name cores =
  let request = { Maestro.Pipeline.default_request with cores; strategy; seed } in
  (Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn name)).Maestro.Pipeline.plan

let gbps ?balanced_reta ?params plan profile trace =
  (Sim.Throughput.evaluate ?balanced_reta ?params plan profile trace).Sim.Throughput.gbps

let small name = Sim.Workload.read_heavy ~pkts:8000 ~flows:2000 name

(* Fig. 8: 64B traffic tops out at the PCIe ceiling (~45 Gbps), large packets
   approach line rate. *)
let test_fig8_shape () =
  let g size =
    let w = Sim.Workload.read_heavy ~pkts:4000 ~flows:2000 ~size "nop" in
    let p = Sim.Workload.profile_of w in
    gbps (plan_for "nop" 16) p w.Sim.Workload.trace
  in
  let g64 = g 64 and g1500 = g 1500 in
  Alcotest.(check bool) (Printf.sprintf "64B ≈ 45G (got %.1f)" g64) true (g64 > 40.0 && g64 < 52.0);
  Alcotest.(check bool) (Printf.sprintf "1500B ≈ line rate (got %.1f)" g1500) true (g1500 > 90.0)

(* Fig. 10: shared-nothing scales ~linearly until PCIe; locks trail; the
   policer's locks collapse; TM rises then falls. *)
let test_fig10_shared_nothing_linear () =
  List.iter
    (fun name ->
      let w = small name in
      let p = Sim.Workload.profile_of w in
      let g c = gbps (plan_for name c) p w.Sim.Workload.trace in
      let g1 = g 1 and g4 = g 4 in
      Alcotest.(check bool)
        (Printf.sprintf "%s 4-core speedup (%.1f/%.1f)" name g4 g1)
        true
        (g4 /. g1 > 3.5))
    [ "fw"; "policer"; "psd"; "cl" ]

let test_fig10_shared_nothing_beats_locks () =
  List.iter
    (fun name ->
      let w = small name in
      let p = Sim.Workload.profile_of w in
      let sn = gbps (plan_for name 16) p w.Sim.Workload.trace in
      let locks = gbps (plan_for ~strategy:`Force_locks name 16) p w.Sim.Workload.trace in
      Alcotest.(check bool)
        (Printf.sprintf "%s SN %.1f > locks %.1f at 16 cores" name sn locks)
        true (sn > locks))
    [ "fw"; "policer"; "psd"; "nat"; "cl" ]

let test_fig10_policer_locks_catastrophic () =
  let w = small "policer" in
  let p = Sim.Workload.profile_of w in
  let g c = gbps (plan_for ~strategy:`Force_locks "policer" c) p w.Sim.Workload.trace in
  Alcotest.(check bool) "never scales past ~2x" true (g 16 < 2.0 *. g 1);
  let sn16 = gbps (plan_for "policer" 16) p w.Sim.Workload.trace in
  Alcotest.(check bool) "SN is >5x better at 16" true (sn16 > 5.0 *. g 16)

let test_fig10_tm_crossover () =
  let w = small "fw" in
  let p = Sim.Workload.profile_of w in
  let g c = gbps (plan_for ~strategy:`Force_tm "fw" c) p w.Sim.Workload.trace in
  Alcotest.(check bool) "tm grows to 4" true (g 4 > 1.5 *. g 1);
  Alcotest.(check bool) "tm collapses by 16" true (g 16 < g 4);
  (* and TM never beats the optimized locks at high core counts (§6.4) *)
  let locks16 = gbps (plan_for ~strategy:`Force_locks "fw" 16) p w.Sim.Workload.trace in
  Alcotest.(check bool) "locks beat tm at 16" true (locks16 > g 16)

let test_fig10_psd_compound_speedup () =
  (* the paper's headline: PSD 16-core ≈ 19x its 1-core version, parallelism
     compounding with cache locality *)
  let w = Sim.Workload.read_heavy ~pkts:12_000 ~flows:8192 "psd" in
  let p = Sim.Workload.profile_of w in
  let g c = gbps (plan_for "psd" c) p w.Sim.Workload.trace in
  let speedup = g 16 /. g 1 in
  Alcotest.(check bool) (Printf.sprintf "super-linear-ish (%.1fx)" speedup) true (speedup > 10.0)

(* Fig. 9: churn kills locks, barely dents shared-nothing. *)
let test_fig9_churn () =
  let trace_of churn =
    Traffic.Churn.trace (Random.State.make [| 9 |])
      {
        Traffic.Churn.default_spec with
        Traffic.Churn.active_flows = 1024;
        flows_per_gbit = churn;
        pkts = 12_000;
      }
  in
  let nf = Nfs.Registry.find_exn "fw" in
  let eval strategy churn =
    let trace = trace_of churn in
    let p = Sim.Profile.of_trace ~skip:1024 nf trace in
    gbps (plan_for ~strategy "fw" 8) p trace
  in
  let sn_quiet = eval `Auto 0.0 and sn_churny = eval `Auto 300_000.0 in
  let locks_quiet = eval `Force_locks 0.0 and locks_churny = eval `Force_locks 300_000.0 in
  Alcotest.(check bool) "sn barely dented" true (sn_churny > 0.6 *. sn_quiet);
  Alcotest.(check bool) "locks collapse" true (locks_churny < 0.4 *. locks_quiet)

(* Fig. 5: zipf hurts unbalanced shared-nothing; balancing recovers part;
   one core prefers zipf (cache). *)
let test_fig5_zipf () =
  let uni = Sim.Workload.read_heavy ~pkts:20_000 ~flows:1000 "fw" in
  let zipf = Sim.Workload.zipf ~pkts:20_000 "fw" in
  let pu = Sim.Workload.profile_of uni and pz = Sim.Workload.profile_of zipf in
  let g ?balanced_reta profile (w : Sim.Workload.t) cores =
    gbps ?balanced_reta (plan_for "fw" cores) profile w.Sim.Workload.trace
  in
  Alcotest.(check bool) "1 core: zipf >= uniform (cache bonus)" true
    (g pz zipf 1 >= g pu uni 1);
  Alcotest.(check bool) "8 cores: uniform beats zipf" true (g pu uni 8 > 1.3 *. g pz zipf 8);
  Alcotest.(check bool) "8 cores: balancing helps zipf" true
    (g ~balanced_reta:true pz zipf 8 >= g pz zipf 8)

(* Fig. 11: Maestro SN decisively beats VPP; Maestro locks edge it out. *)
let test_fig11_vpp () =
  let w = Sim.Workload.read_heavy ~pkts:8000 ~flows:2000 "nat" in
  let p = Sim.Workload.profile_of w in
  let sn = gbps (plan_for "nat" 16) p w.Sim.Workload.trace in
  let locks = gbps (plan_for ~strategy:`Force_locks "nat" 16) p w.Sim.Workload.trace in
  let vpp =
    gbps ~params:Vpp.Nat44.cost_params
      (plan_for ~strategy:`Force_locks "nat" 16)
      p w.Sim.Workload.trace
  in
  Alcotest.(check bool) (Printf.sprintf "SN %.1f decisively beats VPP %.1f" sn vpp) true
    (sn > 1.5 *. vpp);
  Alcotest.(check bool) (Printf.sprintf "locks %.1f slightly beat VPP %.1f" locks vpp) true
    (locks > vpp && locks < 1.25 *. vpp)

(* Fig. 6: solving dominates generation time; NOP/SBridge are instant. *)
let test_fig6_solving_dominates () =
  let t name =
    let o = Maestro.Pipeline.parallelize_exn (Nfs.Registry.find_exn name) in
    o.Maestro.Pipeline.timing
  in
  let fw = t "fw" in
  Alcotest.(check bool) "fw solving dominates" true
    (fw.Maestro.Pipeline.solving_s > 0.5 *. Maestro.Pipeline.total_s fw);
  let nop = t "nop" in
  Alcotest.(check bool) "nop instant" true (Maestro.Pipeline.total_s nop < 0.1)

let suite =
  [
    Alcotest.test_case "fig8: pcie vs line rate" `Slow test_fig8_shape;
    Alcotest.test_case "fig10: shared-nothing near-linear" `Slow
      test_fig10_shared_nothing_linear;
    Alcotest.test_case "fig10: shared-nothing beats locks" `Slow
      test_fig10_shared_nothing_beats_locks;
    Alcotest.test_case "fig10: policer locks catastrophic" `Slow
      test_fig10_policer_locks_catastrophic;
    Alcotest.test_case "fig10: tm rises then collapses" `Slow test_fig10_tm_crossover;
    Alcotest.test_case "fig10: psd compound speedup" `Slow test_fig10_psd_compound_speedup;
    Alcotest.test_case "fig9: churn shapes" `Slow test_fig9_churn;
    Alcotest.test_case "fig5: zipf shapes" `Slow test_fig5_zipf;
    Alcotest.test_case "fig11: vpp comparison shapes" `Slow test_fig11_vpp;
    Alcotest.test_case "fig6: solving dominates" `Slow test_fig6_solving_dominates;
  ]
