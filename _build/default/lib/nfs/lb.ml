(* LB: a Maglev-like load balancer (paper §6.1).  Servers on the LAN side
   register themselves by sending traffic; WAN flows are pinned to a backend
   and stick to it.

   Semantic equivalence demands that every core see the full backend pool,
   but registrations land on a single core and backend slots are picked by
   an allocator, not by packet fields — no sharding key exists (rule R4 with
   no R5 rescue), so Maestro warns and generates the read/write lock
   version. *)

open Dsl.Ast
open Packet

let default_flow_capacity = 65536
let default_backends = 64
let default_expiry_ns = 1_000_000_000

let key_flow = [ Field Field.Ip_src; Field Field.Ip_dst; Field Field.Src_port; Field Field.Dst_port ]

let backend_subnet = 0x0a0001 (* 10.0.1.0/24 *)

let make ?(flow_capacity = default_flow_capacity) ?(backends = default_backends)
    ?(expiry_ns = default_expiry_ns) () =
  let send_to_backend record k =
    Set_field (Field.Ip_dst, Record_field (record, "ip"), k)
  in
  let register_backend =
    (* server heartbeat/reply: register the backend if new, then pass on *)
    Map_get
      {
        obj = "lb_backends";
        key = [ Field Field.Ip_src ];
        found = "lb_bf";
        value = "lb_bidx";
        k =
          If
            ( Var "lb_bf",
              Topo.fwd Topo.wan,
              Chain_alloc
                {
                  obj = "lb_bchain";
                  index = "lb_bnew";
                  k_ok =
                    Vec_set
                      {
                        obj = "lb_pool";
                        index = Var "lb_bnew";
                        fields = [ ("ip", Field Field.Ip_src); ("active", const ~width:1 1) ];
                        k =
                          Map_put
                            {
                              obj = "lb_backends";
                              key = [ Field Field.Ip_src ];
                              value = Var "lb_bnew";
                              ok = "lb_bok";
                              k = Topo.fwd Topo.wan;
                            };
                      };
                  k_fail = Topo.fwd Topo.wan;
                } );
      }
  in
  let lan_side =
    (* only hosts in the backend subnet register; other LAN traffic passes *)
    If
      ( Bin (Div, Field Field.Ip_src, const ~width:32 256) ==. const ~width:32 backend_subnet,
        register_backend,
        Topo.fwd Topo.wan )
  in
  let pick_new_backend =
    (* steer by a cheap deterministic choice over the pool slots *)
    Let
      ( "lb_slot",
        Bin (Mod, Field Field.Src_port, const ~width:16 backends),
        Vec_get
          {
            obj = "lb_pool";
            index = Var "lb_slot";
            record = "lb_cand";
            k =
              If
                ( Record_field ("lb_cand", "active") ==. const ~width:1 1,
                  Chain_alloc
                    {
                      obj = "lb_fchain";
                      index = "lb_fnew";
                      k_ok =
                        Vec_set
                          {
                            obj = "lb_fkeys";
                            index = Var "lb_fnew";
                            fields =
                              [
                                ("sip", Field Field.Ip_src);
                                ("dip", Field Field.Ip_dst);
                                ("sp", Field Field.Src_port);
                                ("dp", Field Field.Dst_port);
                              ];
                            k =
                              Map_put
                                {
                                  obj = "lb_flows";
                                  key = key_flow;
                                  value = Topo.widen 32 (Var "lb_slot");
                                  ok = "lb_fok";
                                  k = send_to_backend "lb_cand" (Topo.fwd Topo.lan);
                                };
                          };
                      (* flow table full: balance statelessly *)
                      k_fail = send_to_backend "lb_cand" (Topo.fwd Topo.lan);
                    },
                  (* no backend registered in that slot *)
                  Drop );
          } )
  in
  let wan_side =
    Map_get
      {
        obj = "lb_flows";
        key = key_flow;
        found = "lb_ff";
        value = "lb_fidx";
        k =
          If
            ( Var "lb_ff",
              Vec_get
                {
                  obj = "lb_pool";
                  index = Var "lb_fidx";
                  record = "lb_b";
                  k =
                    If
                      ( Record_field ("lb_b", "active") ==. const ~width:1 1,
                        Chain_rejuv
                          {
                            obj = "lb_fchain";
                            index = Var "lb_fidx";
                            k = send_to_backend "lb_b" (Topo.fwd Topo.lan);
                          },
                        Drop );
                },
              pick_new_backend );
      }
  in
  {
    name = "lb";
    devices = 2;
    state =
      [
        Decl_map { name = "lb_backends"; capacity = backends; init = [] };
        Decl_chain { name = "lb_bchain"; capacity = backends };
        Decl_vector { name = "lb_pool"; capacity = backends; layout = [ ("ip", 32); ("active", 1) ] };
        Decl_map { name = "lb_flows"; capacity = flow_capacity; init = [] };
        Decl_chain { name = "lb_fchain"; capacity = flow_capacity };
        Decl_vector
          {
            name = "lb_fkeys";
            capacity = flow_capacity;
            layout = [ ("sip", 32); ("dip", 32); ("sp", 16); ("dp", 16) ];
          };
      ];
    process =
      Chain_expire
        {
          obj = "lb_fchain";
          purges = [ ("lb_flows", "lb_fkeys") ];
          age_ns = expiry_ns;
          k = If (Topo.from_lan, lan_side, wan_side);
        };
  }
