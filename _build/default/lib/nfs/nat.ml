(* NAT: translates LAN flows to a single external IP, allocating a unique
   external port per flow (paper §6.1, RFC 3022 style).

   The flow ↔ external-port association is a map whose key is the allocated
   port — not a packet field on the write side, which is rule R4 and would
   block shared-nothing sharding.  But WAN packets are only translated when
   they come from the server the LAN client contacted (the stored
   destination), and a mismatch behaves exactly like a miss (drop): rule R5
   makes the server address/port an interchangeable sharding key, so Maestro
   shards LAN packets on (ip.dst, l4.dport) and WAN packets on
   (ip.src, l4.sport).

   As in the paper, the parallel NAT keeps port uniqueness per core, not
   across cores — sharding by server means equal ports on different cores
   belong to different servers, preserving semantics. *)

open Dsl.Ast
open Packet

let default_capacity = 32768
let default_expiry_ns = 1_000_000_000
let port_base = 1024

let key_lan = [ Field Field.Ip_src; Field Field.Ip_dst; Field Field.Src_port; Field Field.Dst_port ]

let make ?(capacity = default_capacity) ?(expiry_ns = default_expiry_ns)
    ?(external_ip = 0xc0a80101 (* 192.168.1.1 *)) () =
  if capacity + port_base > 0xffff then invalid_arg "Nat.make: capacity exceeds the port space";
  let ext_port_of idx = Cast (16, Bin (Add, idx, const port_base)) in
  let translate_and_forward idx =
    Set_field
      ( Field.Ip_src,
        const ~width:32 external_ip,
        Set_field (Field.Src_port, ext_port_of idx, Topo.fwd Topo.wan) )
  in
  let lan_side =
    Map_get
      {
        obj = "nat_flows";
        key = key_lan;
        found = "nat_f";
        value = "nat_idx";
        k =
          If
            ( Var "nat_f",
              Chain_rejuv
                { obj = "nat_chain"; index = Var "nat_idx"; k = translate_and_forward (Var "nat_idx") },
              Chain_alloc
                {
                  obj = "nat_chain";
                  index = "nat_new";
                  k_ok =
                    Vec_set
                      {
                        obj = "nat_keys";
                        index = Var "nat_new";
                        fields =
                          [
                            ("sip", Field Field.Ip_src);
                            ("dip", Field Field.Ip_dst);
                            ("sp", Field Field.Src_port);
                            ("dp", Field Field.Dst_port);
                          ];
                        k =
                          Map_put
                            {
                              obj = "nat_flows";
                              key = key_lan;
                              value = Var "nat_new";
                              ok = "nat_ok1";
                              k =
                                Vec_set
                                  {
                                    obj = "nat_portkeys";
                                    index = Var "nat_new";
                                    fields = [ ("port", ext_port_of (Var "nat_new")) ];
                                    k =
                                      Map_put
                                        {
                                          obj = "nat_ports";
                                          key = [ ext_port_of (Var "nat_new") ];
                                          value = Var "nat_new";
                                          ok = "nat_ok2";
                                          k = translate_and_forward (Var "nat_new");
                                        };
                                  };
                            };
                      };
                  (* port pool exhausted: the connection cannot be admitted *)
                  k_fail = Drop;
                } );
      }
  in
  let wan_side =
    Map_get
      {
        obj = "nat_ports";
        key = [ Field Field.Dst_port ];
        found = "nat_wf";
        value = "nat_widx";
        k =
          If
            ( Var "nat_wf",
              Vec_get
                {
                  obj = "nat_keys";
                  index = Var "nat_widx";
                  record = "nat_flow";
                  k =
                    If
                      ( Record_field ("nat_flow", "dip") ==. Field Field.Ip_src
                        &&. (Record_field ("nat_flow", "dp") ==. Field Field.Src_port),
                        Chain_rejuv
                          {
                            obj = "nat_chain";
                            index = Var "nat_widx";
                            k =
                              Set_field
                                ( Field.Ip_dst,
                                  Record_field ("nat_flow", "sip"),
                                  Set_field
                                    ( Field.Dst_port,
                                      Record_field ("nat_flow", "sp"),
                                      Topo.fwd Topo.lan ) );
                          },
                        (* not from the server this session talks to *)
                        Drop );
                },
              Drop );
      }
  in
  {
    name = "nat";
    devices = 2;
    state =
      [
        Decl_map { name = "nat_flows"; capacity; init = [] };
        Decl_map { name = "nat_ports"; capacity; init = [] };
        Decl_chain { name = "nat_chain"; capacity };
        Decl_vector
          {
            name = "nat_keys";
            capacity;
            layout = [ ("sip", 32); ("dip", 32); ("sp", 16); ("dp", 16) ];
          };
        Decl_vector { name = "nat_portkeys"; capacity; layout = [ ("port", 16) ] };
      ];
    process =
      Chain_expire
        {
          obj = "nat_chain";
          purges = [ ("nat_flows", "nat_keys"); ("nat_ports", "nat_portkeys") ];
          age_ns = expiry_ns;
          k = If (Topo.from_lan, lan_side, wan_side);
        };
  }
