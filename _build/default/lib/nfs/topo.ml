(* Shared two-port topology conventions for the evaluated NFs. *)

let lan = 0
let wan = 1

open Dsl.Ast

let port p = const ~width:16 p
let from_lan = In_port ==. port lan

(* Zero-extend an expression to a wider width (widths must match in
   comparisons). *)
let widen w e = Bin (Add, e, const ~width:w 0)

let fwd p = Forward (port p)
