(* The two bridges of §6.1.

   [dynamic] (DBridge) learns source MAC → port bindings and forwards by
   destination MAC.  All its state is keyed by link-layer addresses, which
   RSS cannot hash (rule R4): Maestro warns and falls back to read/write
   locks.

   [static] (SBridge) has the learning disabled: only statically configured
   MAC → port bindings remain, so all state is read-only and Maestro
   parallelizes with a purely load-balancing RSS configuration. *)

open Dsl.Ast
open Packet

let default_capacity = 65536
let default_expiry_ns = 1_000_000_000

(* Forward to the port stored for the destination MAC; filter packets whose
   destination sits on the arrival port. *)
let lookup_and_forward ~map =
  Map_get
    {
      obj = map;
      key = [ Field Field.Eth_dst ];
      found = "br_f_dst";
      value = "br_out";
      k =
        If
          ( Var "br_f_dst",
            If (Var "br_out" ==. Topo.widen 32 In_port, Drop, Forward (Var "br_out")),
            Drop );
    }

let dynamic ?(capacity = default_capacity) ?(expiry_ns = default_expiry_ns) () =
  let learn k =
    Map_get
      {
        obj = "dbr_fdb";
        key = [ Field Field.Eth_src ];
        found = "br_f_src";
        value = "br_src_idx";
        k =
          If
            ( Var "br_f_src",
              Chain_rejuv { obj = "dbr_chain"; index = Var "br_src_idx"; k },
              Chain_alloc
                {
                  obj = "dbr_chain";
                  index = "br_new";
                  k_ok =
                    Vec_set
                      {
                        obj = "dbr_keys";
                        index = Var "br_new";
                        fields = [ ("mac", Field Field.Eth_src) ];
                        k =
                          Map_put
                            {
                              obj = "dbr_fdb";
                              key = [ Field Field.Eth_src ];
                              value = Var "br_new";
                              ok = "br_put_ok";
                              k;
                            };
                      };
                  k_fail = k;
                } );
      }
  in
  (* The fdb maps MAC -> index; ports live in a vector alongside. *)
  let forward_by_dst =
    Map_get
      {
        obj = "dbr_fdb";
        key = [ Field Field.Eth_dst ];
        found = "br_f_dst";
        value = "br_dst_idx";
        k =
          If
            ( Var "br_f_dst",
              Vec_get
                {
                  obj = "dbr_ports";
                  index = Var "br_dst_idx";
                  record = "br_binding";
                  k =
                    If
                      ( Record_field ("br_binding", "port") ==. Topo.widen 32 In_port,
                        Drop,
                        Forward (Record_field ("br_binding", "port")) );
                },
              Drop );
      }
  in
  (* After learning, the source binding's index is found by re-reading the
     map (it is [br_src_idx] on the hit path and [br_new] on the learning
     path).  The port is re-recorded only when the host moved: a stable
     steady state is read-only, which is what lets the lock-based DBridge
     scale on read-heavy traffic (Fig. 10). *)
  let record_port k =
    Map_get
      {
        obj = "dbr_fdb";
        key = [ Field Field.Eth_src ];
        found = "br_f_src2";
        value = "br_src_idx2";
        k =
          If
            ( Var "br_f_src2",
              Vec_get
                {
                  obj = "dbr_ports";
                  index = Var "br_src_idx2";
                  record = "br_cur";
                  k =
                    If
                      ( Record_field ("br_cur", "port") ==. Topo.widen 32 In_port,
                        k,
                        Vec_set
                          {
                            obj = "dbr_ports";
                            index = Var "br_src_idx2";
                            fields = [ ("port", Topo.widen 32 In_port) ];
                            k;
                          } );
                },
              k );
      }
  in
  {
    name = "dbridge";
    devices = 2;
    state =
      [
        Decl_map { name = "dbr_fdb"; capacity; init = [] };
        Decl_chain { name = "dbr_chain"; capacity };
        Decl_vector { name = "dbr_keys"; capacity; layout = [ ("mac", 48) ] };
        Decl_vector { name = "dbr_ports"; capacity; layout = [ ("port", 32) ] };
      ];
    process =
      Chain_expire
        {
          obj = "dbr_chain";
          purges = [ ("dbr_fdb", "dbr_keys") ];
          age_ns = expiry_ns;
          k = learn (record_port forward_by_dst);
        };
  }

(* default plan: 64 hosts, even MACs on the LAN port, odd on the WAN *)
let default_bindings = List.init 64 (fun i -> (0x02_00_00_00_10_00 + i, i mod 2))

let static ?(bindings = []) () =
  let bindings = if bindings <> [] then bindings else default_bindings in
  let init = List.map (fun (mac, port) -> (key_of_parts [ (48, mac) ], port)) bindings in
  {
    name = "sbridge";
    devices = 2;
    state = [ Decl_map { name = "sbr_fdb"; capacity = max 1 (List.length init); init } ];
    process = lookup_and_forward ~map:"sbr_fdb";
  }
