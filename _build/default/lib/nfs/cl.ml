(* CL: the connection limiter (paper §6.1).  It bounds how many connections
   a client (source IP) may open to a server (destination IP) over a wide
   time frame, estimating the pair's count with a count-min sketch.

   The flow map is keyed by the 4-tuple, the sketch by (ip.src, ip.dst);
   the sketch's coarser key subsumes the map's (rule R2), so Maestro shards
   on the address pair. *)

open Dsl.Ast
open Packet

let default_capacity = 65536
let default_expiry_ns = 1_000_000_000
let default_limit = 64
let default_sketch_depth = 5
let default_sketch_width = 4096

let key_flow = [ Field Field.Ip_src; Field Field.Ip_dst; Field Field.Src_port; Field Field.Dst_port ]
let key_pair = [ Field Field.Ip_src; Field Field.Ip_dst ]

let make ?(capacity = default_capacity) ?(expiry_ns = default_expiry_ns)
    ?(limit = default_limit) ?(sketch_depth = default_sketch_depth)
    ?(sketch_width = default_sketch_width) () =
  let admit_new_connection =
    Sketch_query
      {
        obj = "cl_sketch";
        key = key_pair;
        count = "cl_count";
        k =
          If
            ( const limit <. Var "cl_count",
              (* every sketch entry surpasses the limit: block the connection *)
              Drop,
              Sketch_touch
                {
                  obj = "cl_sketch";
                  key = key_pair;
                  k =
                    Chain_alloc
                      {
                        obj = "cl_chain";
                        index = "cl_new";
                        k_ok =
                          Vec_set
                            {
                              obj = "cl_keys";
                              index = Var "cl_new";
                              fields =
                                [
                                  ("sip", Field Field.Ip_src);
                                  ("dip", Field Field.Ip_dst);
                                  ("sp", Field Field.Src_port);
                                  ("dp", Field Field.Dst_port);
                                ];
                              k =
                                Map_put
                                  {
                                    obj = "cl_flows";
                                    key = key_flow;
                                    value = Var "cl_new";
                                    ok = "cl_ok";
                                    k = Topo.fwd Topo.wan;
                                  };
                            };
                        (* cannot track: refuse the new connection *)
                        k_fail = Drop;
                      };
                } );
      }
  in
  let lan_side =
    Map_get
      {
        obj = "cl_flows";
        key = key_flow;
        found = "cl_f";
        value = "cl_idx";
        k =
          If
            ( Var "cl_f",
              Chain_rejuv { obj = "cl_chain"; index = Var "cl_idx"; k = Topo.fwd Topo.wan },
              admit_new_connection );
      }
  in
  {
    name = "cl";
    devices = 2;
    state =
      [
        Decl_map { name = "cl_flows"; capacity; init = [] };
        Decl_chain { name = "cl_chain"; capacity };
        Decl_vector
          {
            name = "cl_keys";
            capacity;
            layout = [ ("sip", 32); ("dip", 32); ("sp", 16); ("dp", 16) ];
          };
        Decl_sketch { name = "cl_sketch"; depth = sketch_depth; width = sketch_width };
      ];
    process =
      Chain_expire
        {
          obj = "cl_chain";
          purges = [ ("cl_flows", "cl_keys") ];
          age_ns = expiry_ns;
          k = If (Topo.from_lan, lan_side, Topo.fwd Topo.lan);
        };
  }
