(* FW: the stateful firewall of the paper's running example (§3.1, Fig. 12).
   It admits WAN traffic only for sessions started from the LAN, tracking
   flows in a map keyed by addresses and ports, symmetrically on the WAN
   side.  Maestro shards it shared-nothing on the flow key with symmetric
   per-port RSS keys (Fig. 3). *)

open Dsl.Ast
open Packet

let default_capacity = 65536
let default_expiry_ns = 1_000_000_000

let key_lan = [ Field Field.Ip_src; Field Field.Ip_dst; Field Field.Src_port; Field Field.Dst_port ]
let key_wan = [ Field Field.Ip_dst; Field Field.Ip_src; Field Field.Dst_port; Field Field.Src_port ]

let make ?(capacity = default_capacity) ?(expiry_ns = default_expiry_ns) () =
  let lan_side =
    Map_get
      {
        obj = "fw_flows";
        key = key_lan;
        found = "fw_f_lan";
        value = "fw_idx_lan";
        k =
          If
            ( Var "fw_f_lan",
              Chain_rejuv { obj = "fw_chain"; index = Var "fw_idx_lan"; k = Topo.fwd Topo.wan },
              Chain_alloc
                {
                  obj = "fw_chain";
                  index = "fw_new";
                  k_ok =
                    Vec_set
                      {
                        obj = "fw_keys";
                        index = Var "fw_new";
                        fields =
                          [
                            ("sip", Field Field.Ip_src);
                            ("dip", Field Field.Ip_dst);
                            ("sp", Field Field.Src_port);
                            ("dp", Field Field.Dst_port);
                          ];
                        k =
                          Map_put
                            {
                              obj = "fw_flows";
                              key = key_lan;
                              value = Var "fw_new";
                              ok = "fw_put_ok";
                              k = Topo.fwd Topo.wan;
                            };
                      };
                  (* flow table full: outgoing traffic still flows *)
                  k_fail = Topo.fwd Topo.wan;
                } );
      }
  in
  let wan_side =
    Map_get
      {
        obj = "fw_flows";
        key = key_wan;
        found = "fw_f_wan";
        value = "fw_idx_wan";
        k =
          If
            ( Var "fw_f_wan",
              Chain_rejuv { obj = "fw_chain"; index = Var "fw_idx_wan"; k = Topo.fwd Topo.lan },
              Drop );
      }
  in
  {
    name = "fw";
    devices = 2;
    state =
      [
        Decl_map { name = "fw_flows"; capacity; init = [] };
        Decl_chain { name = "fw_chain"; capacity };
        Decl_vector
          {
            name = "fw_keys";
            capacity;
            layout = [ ("sip", 32); ("dip", 32); ("sp", 16); ("dp", 16) ];
          };
      ];
    process =
      Chain_expire
        {
          obj = "fw_chain";
          purges = [ ("fw_flows", "fw_keys") ];
          age_ns = expiry_ns;
          k = If (Topo.from_lan, lan_side, wan_side);
        };
  }
