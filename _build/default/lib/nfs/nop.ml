(* NOP: a stateless forwarder between two ports (paper §6.1).  Maestro finds
   no state and configures RSS purely for load balancing. *)

open Dsl.Ast

let make () =
  {
    name = "nop";
    devices = 2;
    state = [];
    process = If (Topo.from_lan, Topo.fwd Topo.wan, Topo.fwd Topo.lan);
  }
