(* PSD: the port-scan detector (paper §6.1).  It counts how many distinct
   destination TCP/UDP ports each source IP touched within a time frame and
   blocks connections to new ports above a threshold.

   Two access patterns coexist: a map keyed by (source IP, destination port)
   and one keyed by source IP alone.  The latter subsumes the former (rule
   R2), so Maestro shards on the source IP only. *)

open Dsl.Ast
open Packet

let default_capacity = 65536
let default_expiry_ns = 1_000_000_000
let default_threshold = 128

let key_pair = [ Field Field.Ip_src; Field Field.Dst_port ]
let key_src = [ Field Field.Ip_src ]

let make ?(capacity = default_capacity) ?(expiry_ns = default_expiry_ns)
    ?(threshold = default_threshold) () =
  (* Record (src, dst_port) as seen and admit the packet. *)
  let register_port k =
    Chain_alloc
      {
        obj = "psd_pchain";
        index = "psd_pnew";
        k_ok =
          Vec_set
            {
              obj = "psd_pkeys";
              index = Var "psd_pnew";
              fields = [ ("src", Field Field.Ip_src); ("port", Field Field.Dst_port) ];
              k =
                Map_put
                  {
                    obj = "psd_ports";
                    key = key_pair;
                    value = Var "psd_pnew";
                    ok = "psd_pok";
                    k;
                  };
            };
        (* table full: fail open, admit without tracking *)
        k_fail = k;
      }
  in
  let count_and_maybe_admit =
    Map_get
      {
        obj = "psd_counts";
        key = key_src;
        found = "psd_cf";
        value = "psd_cidx";
        k =
          If
            ( Var "psd_cf",
              Vec_get
                {
                  obj = "psd_counters";
                  index = Var "psd_cidx";
                  record = "psd_c";
                  k =
                    If
                      ( Record_field ("psd_c", "count") <. const threshold,
                        Vec_set
                          {
                            obj = "psd_counters";
                            index = Var "psd_cidx";
                            fields = [ ("count", Record_field ("psd_c", "count") +. const 1) ];
                            k =
                              Chain_rejuv
                                {
                                  obj = "psd_cchain";
                                  index = Var "psd_cidx";
                                  k = register_port (Topo.fwd Topo.wan);
                                };
                          },
                        (* threshold reached: block connections to new ports *)
                        Drop );
                },
              (* first port touched by this source *)
              Chain_alloc
                {
                  obj = "psd_cchain";
                  index = "psd_cnew";
                  k_ok =
                    Vec_set
                      {
                        obj = "psd_ckeys";
                        index = Var "psd_cnew";
                        fields = [ ("src", Field Field.Ip_src) ];
                        k =
                          Map_put
                            {
                              obj = "psd_counts";
                              key = key_src;
                              value = Var "psd_cnew";
                              ok = "psd_cok";
                              k =
                                Vec_set
                                  {
                                    obj = "psd_counters";
                                    index = Var "psd_cnew";
                                    fields = [ ("count", const 1) ];
                                    k = register_port (Topo.fwd Topo.wan);
                                  };
                            };
                      };
                  k_fail = Topo.fwd Topo.wan;
                } );
      }
  in
  let lan_side =
    Map_get
      {
        obj = "psd_ports";
        key = key_pair;
        found = "psd_pf";
        value = "psd_pidx";
        k =
          If
            ( Var "psd_pf",
              (* a port this source already used: no new information *)
              Chain_rejuv { obj = "psd_pchain"; index = Var "psd_pidx"; k = Topo.fwd Topo.wan },
              count_and_maybe_admit );
      }
  in
  {
    name = "psd";
    devices = 2;
    state =
      [
        Decl_map { name = "psd_ports"; capacity; init = [] };
        Decl_chain { name = "psd_pchain"; capacity };
        Decl_vector { name = "psd_pkeys"; capacity; layout = [ ("src", 32); ("port", 16) ] };
        Decl_map { name = "psd_counts"; capacity; init = [] };
        Decl_chain { name = "psd_cchain"; capacity };
        Decl_vector { name = "psd_ckeys"; capacity; layout = [ ("src", 32) ] };
        Decl_vector { name = "psd_counters"; capacity; layout = [ ("count", 32) ] };
      ];
    process =
      Chain_expire
        {
          obj = "psd_pchain";
          purges = [ ("psd_ports", "psd_pkeys") ];
          age_ns = expiry_ns;
          k =
            Chain_expire
              {
                obj = "psd_cchain";
                purges = [ ("psd_counts", "psd_ckeys") ];
                age_ns = expiry_ns;
                k = If (Topo.from_lan, lan_side, Topo.fwd Topo.lan);
              };
        };
  }
