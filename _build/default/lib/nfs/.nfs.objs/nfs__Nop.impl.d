lib/nfs/nop.ml: Dsl Topo
