lib/nfs/registry.ml: Bridge Cl Dsl Fw Hhh Lb List Nat Nop Option Policer Printf Psd String
