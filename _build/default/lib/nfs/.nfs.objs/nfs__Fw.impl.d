lib/nfs/fw.ml: Dsl Field Packet Topo
