lib/nfs/registry.mli: Dsl
