lib/nfs/lb.ml: Dsl Field Packet Topo
