lib/nfs/policer.ml: Dsl Field Packet Topo
