lib/nfs/topo.ml: Dsl
