lib/nfs/psd.ml: Dsl Field Packet Topo
