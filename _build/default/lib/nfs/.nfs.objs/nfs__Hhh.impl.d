lib/nfs/hhh.ml: Dsl Field Packet Printf Topo
