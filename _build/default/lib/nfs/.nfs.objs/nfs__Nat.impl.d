lib/nfs/nat.ml: Dsl Field Packet Topo
