lib/nfs/scenarios.ml: Dsl Field Packet Topo
