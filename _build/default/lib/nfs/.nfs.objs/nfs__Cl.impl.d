lib/nfs/cl.ml: Dsl Field Packet Topo
