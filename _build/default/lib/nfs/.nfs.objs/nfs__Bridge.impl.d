lib/nfs/bridge.ml: Dsl Field List Packet Topo
