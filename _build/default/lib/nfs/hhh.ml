(* HHH: a hierarchical heavy hitter — the paper's §3.5 example of a complex
   RSS requirement ("sharding on multiple subnets of the source IP").

   Packets are counted per source prefix at /8, /16 and /24 with one
   count-min sketch per level; a prefix whose estimate exceeds its level's
   budget is throttled.  Every sketch is keyed by a prefix of ip.src, so the
   subsumption rule generalizes: the coarsest requirement (/8) wins and
   Maestro must produce an RSS key under which packets agreeing on the top
   8 bits of the source address — and only those bits — collide.  This is
   an extension NF: it exercises the prefix-aware constraint machinery end
   to end. *)

open Dsl.Ast
open Packet

let default_sketch_width = 8192

(* per-level packet budgets: a /8 aggregates more sources, so it gets more *)
let default_budgets = (1_000_000, 200_000, 50_000)

let prefix bits = Bin (Div, Field Field.Ip_src, const ~width:32 (1 lsl (32 - bits)))

let make ?(sketch_width = default_sketch_width) ?(budgets = default_budgets) () =
  let b8, b16, b24 = budgets in
  let level bits obj budget k =
    Sketch_query
      {
        obj;
        key = [ prefix bits ];
        count = Printf.sprintf "hhh_c%d" bits;
        k =
          If
            ( const budget <. Var (Printf.sprintf "hhh_c%d" bits),
              Drop,
              Sketch_touch { obj; key = [ prefix bits ]; k } );
      }
  in
  {
    name = "hhh";
    devices = 2;
    state =
      [
        Decl_sketch { name = "hhh_s8"; depth = 4; width = sketch_width };
        Decl_sketch { name = "hhh_s16"; depth = 4; width = sketch_width };
        Decl_sketch { name = "hhh_s24"; depth = 4; width = sketch_width };
      ];
    process =
      If
        ( Topo.from_lan,
          level 8 "hhh_s8" b8
            (level 16 "hhh_s16" b16 (level 24 "hhh_s24" b24 (Topo.fwd Topo.wan))),
          Topo.fwd Topo.lan );
  }
