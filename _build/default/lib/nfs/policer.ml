(* Policer: limits each user's download rate with a per-destination-address
   token bucket (paper §6.1).  State is keyed by the destination IP only, so
   Maestro must shard on that single field; since the modeled E810 cannot
   hash addresses without L4 ports, RS3 has to pick the ports-bearing field
   set and cancel the port bits out of the key — the reason the Policer is
   the slowest NF to parallelize in Fig. 6.

   Every policed packet updates its bucket, making the lock-based fallback
   catastrophic (every packet needs the write lock, Fig. 10). *)

open Dsl.Ast
open Packet

let default_capacity = 65536
let default_expiry_ns = 1_000_000_000

(* 1 Gbps per user: 125 MB/s = one byte every 8 ns *)
let default_ns_per_byte = 8
let default_burst_bytes = 100_000

let make ?(capacity = default_capacity) ?(expiry_ns = default_expiry_ns)
    ?(ns_per_byte = default_ns_per_byte) ?(burst = default_burst_bytes) () =
  let burst48 = const ~width:48 burst in
  let len48 = Topo.widen 48 Pkt_len in
  (* Consume from a bucket holding [avail] tokens: pass or shape. *)
  let consume avail =
    If
      ( len48 <=. avail,
        Vec_set
          {
            obj = "pol_buckets";
            index = Var "pol_idx";
            fields = [ ("tokens", Bin (Sub, avail, len48)); ("time", Now) ];
            k =
              Chain_rejuv { obj = "pol_chain"; index = Var "pol_idx"; k = Topo.fwd Topo.lan };
          },
        Vec_set
          {
            obj = "pol_buckets";
            index = Var "pol_idx";
            fields = [ ("tokens", avail); ("time", Now) ];
            k = Chain_rejuv { obj = "pol_chain"; index = Var "pol_idx"; k = Drop };
          } )
  in
  let known_user =
    Vec_get
      {
        obj = "pol_buckets";
        index = Var "pol_idx";
        record = "pol_b";
        k =
          Let
            ( "pol_refill",
              Bin
                ( Add,
                  Record_field ("pol_b", "tokens"),
                  Bin (Div, Bin (Sub, Now, Record_field ("pol_b", "time")), const ~width:48 ns_per_byte)
                ),
              If (burst48 <. Var "pol_refill", consume burst48, consume (Var "pol_refill")) );
      }
  in
  let new_user =
    Chain_alloc
      {
        obj = "pol_chain";
        index = "pol_new";
        k_ok =
          Vec_set
            {
              obj = "pol_keys";
              index = Var "pol_new";
              fields = [ ("dip", Field Field.Ip_dst) ];
              k =
                Map_put
                  {
                    obj = "pol_map";
                    key = [ Field Field.Ip_dst ];
                    value = Var "pol_new";
                    ok = "pol_put_ok";
                    k =
                      If
                        ( len48 <=. burst48,
                          Vec_set
                            {
                              obj = "pol_buckets";
                              index = Var "pol_new";
                              fields =
                                [ ("tokens", Bin (Sub, burst48, len48)); ("time", Now) ];
                              k = Topo.fwd Topo.lan;
                            },
                          Vec_set
                            {
                              obj = "pol_buckets";
                              index = Var "pol_new";
                              fields = [ ("tokens", burst48); ("time", Now) ];
                              k = Drop;
                            } );
                  };
            };
        (* cannot track a new user: police conservatively *)
        k_fail = Drop;
      }
  in
  let wan_side =
    Map_get
      {
        obj = "pol_map";
        key = [ Field Field.Ip_dst ];
        found = "pol_f";
        value = "pol_idx";
        k = If (Var "pol_f", known_user, new_user);
      }
  in
  {
    name = "policer";
    devices = 2;
    state =
      [
        Decl_map { name = "pol_map"; capacity; init = [] };
        Decl_chain { name = "pol_chain"; capacity };
        Decl_vector { name = "pol_keys"; capacity; layout = [ ("dip", 32) ] };
        Decl_vector
          { name = "pol_buckets"; capacity; layout = [ ("tokens", 48); ("time", 48) ] };
      ];
    process =
      Chain_expire
        {
          obj = "pol_chain";
          purges = [ ("pol_map", "pol_keys") ];
          age_ns = expiry_ns;
          (* uploads are not policed; downloads pass through the bucket *)
          k = If (Topo.from_lan, Topo.fwd Topo.wan, wan_side);
        };
  }
