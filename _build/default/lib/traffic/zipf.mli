(** Zipfian ("mice and elephants") traffic.

    The paper's Fig. 5 workload, with parameters from Benson et al. [12] as
    used by [60]: 1 000 flows of which the 48 heaviest carry 80 % of the
    packets.  The skew exponent is calibrated numerically to hit that share. *)

type t

val make : ?exponent:float -> nflows:int -> unit -> t
(** Explicit exponent; flows ranked 1 (heaviest) to [nflows]. *)

val calibrate : ?top:int -> ?share:float -> nflows:int -> unit -> t
(** Find the exponent such that the [top] (default 48) flows carry [share]
    (default 0.8) of the probability mass. *)

val paper : unit -> t
(** [calibrate ~top:48 ~share:0.8 ~nflows:1000 ()]. *)

val exponent : t -> float

val nflows : t -> int

val share_of_top : t -> int -> float
(** Probability mass of the [k] heaviest flows. *)

val sample : t -> Random.State.t -> int
(** A flow rank in [0 .. nflows-1], heaviest first. *)

val trace :
  ?spec:Gen.trace_spec ->
  Random.State.t ->
  t ->
  flows:Packet.Flow.t list ->
  Packet.Pkt.t array
(** A trace whose flows are drawn Zipf-distributed from the given list
    (which must have at least [nflows] entries). *)
