type spec = {
  active_flows : int;
  flows_per_gbit : float;
  pkts : int;
  size : int;
  gap_ns : int;
}

let default_spec =
  { active_flows = 1024; flows_per_gbit = 0.0; pkts = 50_000; size = 64; gap_ns = 100 }

let gbits spec = float_of_int (spec.pkts * spec.size * 8) /. 1e9

let generations spec =
  int_of_float (Float.round (spec.flows_per_gbit *. gbits spec))

let relative_churn spec = float_of_int (generations spec) /. gbits spec

let absolute_churn_fpm spec ~gbps = relative_churn spec *. gbps *. 60.0

let flow_of_slot rng cache slot gen =
  let key = (slot, gen) in
  match Hashtbl.find_opt cache key with
  | Some f -> f
  | None ->
      let f =
        {
          Packet.Flow.ip_src = 0x0a000000 lor Random.State.int rng 0xffffff;
          ip_dst = 0x60000000 lor Random.State.int rng 0x0fffffff;
          src_port = 1024 + Random.State.int rng 60000;
          dst_port = 1 + Random.State.int rng 1023;
          proto = Packet.Pkt.Tcp;
        }
      in
      Hashtbl.replace cache key f;
      f

let trace rng spec =
  if spec.active_flows < 1 then invalid_arg "Churn.trace: active_flows";
  let gens = generations spec in
  (* one slot generation advances every [step] packets, spreading flow
     replacement evenly through the trace *)
  let step = if gens = 0 then max_int else max 1 (spec.pkts / gens) in
  let cache = Hashtbl.create 4096 in
  Array.init spec.pkts (fun i ->
      let slot = i mod spec.active_flows in
      (* replacements sweep round-robin over slots: after [advanced] total
         replacements, slot [s] has been replaced once per full sweep past
         it *)
      let advanced = i / step in
      let gen =
        if advanced > slot then ((advanced - slot - 1) / spec.active_flows) + 1 else 0
      in
      let flow = flow_of_slot rng cache slot gen in
      Packet.Flow.to_pkt ~port:0 ~size:spec.size ~ts_ns:(i * spec.gap_ns) flow)
