(** Churn workloads (paper §6.3).

    Churn — the rate of flow creation/expiry — is specified {e relative} to
    the traffic volume, in flows per Gbit, because the replayed PCAP's
    absolute churn (flows per minute) scales with the replay rate.  Traces
    keep a window of active flows, retire the oldest slot at an even pace
    and are cyclic: replaying the trace in a loop recreates the flows that
    expired at the start. *)

type spec = {
  active_flows : int;  (** concurrently live flows *)
  flows_per_gbit : float;  (** relative churn; 0 = no churn *)
  pkts : int;
  size : int;  (** frame bytes *)
  gap_ns : int;
}

val default_spec : spec

val trace : Random.State.t -> spec -> Packet.Pkt.t array
(** LAN-side packets establishing and reusing flows; each new generation of
    a slot is a fresh flow. *)

val relative_churn : spec -> float
(** Flows per Gbit actually realized by the construction. *)

val absolute_churn_fpm : spec -> gbps:float -> float
(** Flows per minute when the trace is replayed at [gbps] (paper: absolute
    churn = relative churn × achieved rate). *)

val generations : spec -> int
(** Total flow creations in one pass of the trace. *)
