lib/traffic/gen.ml: Array Hashtbl List Packet Random
