lib/traffic/churn.ml: Array Float Hashtbl Packet Random
