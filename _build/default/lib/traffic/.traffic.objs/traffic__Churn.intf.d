lib/traffic/churn.mli: Packet Random
