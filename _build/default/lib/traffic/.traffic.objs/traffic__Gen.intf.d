lib/traffic/gen.mli: Packet Random
