lib/traffic/zipf.ml: Array Float Gen Random
