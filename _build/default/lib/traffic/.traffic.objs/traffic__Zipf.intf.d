lib/traffic/zipf.mli: Gen Packet Random
