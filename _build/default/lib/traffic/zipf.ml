type t = { exponent : float; nflows : int; cdf : float array }

let build exponent nflows =
  if nflows < 1 then invalid_arg "Zipf.make";
  let weights = Array.init nflows (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) exponent) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make nflows 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  { exponent; nflows; cdf }

let make ?(exponent = 1.0) ~nflows () = build exponent nflows

let share_of_top t k =
  if k <= 0 then 0.0 else if k >= t.nflows then 1.0 else t.cdf.(k - 1)

let calibrate ?(top = 48) ?(share = 0.8) ~nflows () =
  if top < 1 || top >= nflows then invalid_arg "Zipf.calibrate";
  (* share_of_top is monotonically increasing in the exponent: bisect *)
  let rec bisect lo hi n =
    let mid = (lo +. hi) /. 2.0 in
    if n = 0 then build mid nflows
    else
      let s = share_of_top (build mid nflows) top in
      if s < share then bisect mid hi (n - 1) else bisect lo mid (n - 1)
  in
  bisect 0.01 8.0 60

let paper () = calibrate ~top:48 ~share:0.8 ~nflows:1000 ()

let exponent t = t.exponent
let nflows t = t.nflows

let sample t rng =
  let u = Random.State.float rng 1.0 in
  (* binary search for the first cdf entry >= u *)
  let lo = ref 0 and hi = ref (t.nflows - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let trace ?spec rng t ~flows =
  let arr = Array.of_list flows in
  if Array.length arr < t.nflows then invalid_arg "Zipf.trace: not enough flows";
  Gen.trace ?spec rng ~pick:(fun rng -> arr.(sample t rng))
