(** Flow identities.

    A flow is the unit of related packets that an NF logically tracks (paper
    §1).  The canonical identity is the 5-tuple; NFs that track coarser flows
    (a policer by destination address, a PSD by source address) derive their
    keys from a subset of these fields. *)

type t = {
  ip_src : int;
  ip_dst : int;
  src_port : int;
  dst_port : int;
  proto : Pkt.proto;
}

val of_pkt : Pkt.t -> t

val mac_of_ip : int -> int
(** A locally-administered MAC derived from an IPv4 address — how generated
    traffic gives each host a distinct link-layer identity. *)

val to_pkt : ?port:int -> ?size:int -> ?ts_ns:int -> t -> Pkt.t
(** A minimal packet carrying this flow's headers; MACs derive from the
    addresses via {!mac_of_ip}. *)

val reverse : t -> t
(** Source and destination swapped — the reply direction. *)

val normalize : t -> t
(** The lexicographically smaller of the flow and its reverse; two packets of
    the same bidirectional session normalize to the same value. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
