lib/packet/wire.ml: Bytes Char Pkt Printf
