lib/packet/pcap.mli: Buffer Pkt
