lib/packet/flow.ml: Format Hashtbl Map Pkt Set Stdlib
