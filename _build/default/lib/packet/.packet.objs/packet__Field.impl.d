lib/packet/field.ml: Format List Stdlib
