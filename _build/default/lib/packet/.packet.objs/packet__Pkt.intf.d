lib/packet/pkt.mli: Bitvec Field Format
