lib/packet/pcap.ml: Buffer Bytes Char Fun List Pkt String Wire
