lib/packet/wire.mli: Pkt
