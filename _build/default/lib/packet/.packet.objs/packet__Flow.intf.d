lib/packet/flow.mli: Format Map Pkt Set
