lib/packet/pkt.ml: Bitvec Field Format Stdlib
