type t = {
  ip_src : int;
  ip_dst : int;
  src_port : int;
  dst_port : int;
  proto : Pkt.proto;
}

let of_pkt (p : Pkt.t) =
  {
    ip_src = p.Pkt.ip_src;
    ip_dst = p.Pkt.ip_dst;
    src_port = p.Pkt.src_port;
    dst_port = p.Pkt.dst_port;
    proto = p.Pkt.proto;
  }

(* Locally-administered MACs derived from the addresses, so L2 NFs (the
   bridges) see per-host MAC variety in generated traffic. *)
let mac_of_ip ip = 0x02_00_00_00_00_00 lor ip

let to_pkt ?port ?size ?ts_ns f =
  Pkt.make ?port ?size ?ts_ns ~proto:f.proto ~eth_src:(mac_of_ip f.ip_src)
    ~eth_dst:(mac_of_ip f.ip_dst) ~ip_src:f.ip_src ~ip_dst:f.ip_dst ~src_port:f.src_port
    ~dst_port:f.dst_port ()

let reverse f =
  { f with ip_src = f.ip_dst; ip_dst = f.ip_src; src_port = f.dst_port; dst_port = f.src_port }

let compare = Stdlib.compare
let equal a b = compare a b = 0
let normalize f = if compare f (reverse f) <= 0 then f else reverse f
let hash = Hashtbl.hash

let pp fmt f =
  Format.fprintf fmt "%a:%d->%a:%d/%d" Pkt.pp_ip f.ip_src f.src_port Pkt.pp_ip f.ip_dst
    f.dst_port
    (Pkt.proto_number f.proto)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
