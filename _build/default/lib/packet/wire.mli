(** Wire encoding of packets: Ethernet + IPv4 + TCP/UDP serialization and
    parsing, and the internet checksum.  Used by the pcap reader/writer and
    by tests that want bit-exact frames. *)

val internet_checksum : bytes -> int
(** RFC 1071 ones-complement checksum over the buffer (padded with a zero
    byte when of odd length). *)

val serialize : Pkt.t -> bytes
(** Encode the packet into a frame of exactly [p.size] bytes (the L4 payload
    is zero-filled).  IPv4 header and TCP/UDP checksums are computed.
    Raises [Invalid_argument] when [p.size] is too small to hold the
    headers (54 bytes for TCP, 42 for UDP). *)

val parse : ?port:int -> ?ts_ns:int -> bytes -> (Pkt.t, string) result
(** Decode a frame.  Non-IPv4 ethertypes and unknown IP protocols are
    accepted (ports read as zero); truncated frames are an [Error]. *)

val min_size : Pkt.proto -> int
(** Smallest frame that [serialize] accepts for this protocol. *)
