type t =
  | Eth_src
  | Eth_dst
  | Eth_type
  | Ip_src
  | Ip_dst
  | Ip_proto
  | Src_port
  | Dst_port

let all = [ Eth_src; Eth_dst; Eth_type; Ip_src; Ip_dst; Ip_proto; Src_port; Dst_port ]

let width = function
  | Eth_src | Eth_dst -> 48
  | Eth_type -> 16
  | Ip_src | Ip_dst -> 32
  | Ip_proto -> 8
  | Src_port | Dst_port -> 16

let rss_capable = function
  | Eth_src | Eth_dst | Eth_type -> false
  | Ip_src | Ip_dst | Ip_proto | Src_port | Dst_port -> true

let symmetric_counterpart = function
  | Ip_src -> Some Ip_dst
  | Ip_dst -> Some Ip_src
  | Src_port -> Some Dst_port
  | Dst_port -> Some Src_port
  | Eth_src -> Some Eth_dst
  | Eth_dst -> Some Eth_src
  | Eth_type | Ip_proto -> None

let to_string = function
  | Eth_src -> "eth.src"
  | Eth_dst -> "eth.dst"
  | Eth_type -> "eth.type"
  | Ip_src -> "ip.src"
  | Ip_dst -> "ip.dst"
  | Ip_proto -> "ip.proto"
  | Src_port -> "l4.sport"
  | Dst_port -> "l4.dport"

let of_string s = List.find_opt (fun f -> to_string f = s) all
let pp fmt f = Format.pp_print_string fmt (to_string f)
let equal = ( = )
let compare = Stdlib.compare
