let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let set_u16 b off v =
  set_u8 b off (v lsr 8);
  set_u8 b (off + 1) v

let set_u32 b off v =
  set_u16 b off (v lsr 16);
  set_u16 b (off + 2) v

let set_u48 b off v =
  set_u16 b off (v lsr 32);
  set_u32 b (off + 2) v

let get_u8 b off = Char.code (Bytes.get b off)
let get_u16 b off = (get_u8 b off lsl 8) lor get_u8 b (off + 1)
let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)
let get_u48 b off = (get_u16 b off lsl 32) lor get_u32 b (off + 2)

let internet_checksum buf =
  let n = Bytes.length buf in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + get_u16 buf !i;
    i := !i + 2
  done;
  if n mod 2 = 1 then sum := !sum + (get_u8 buf (n - 1) lsl 8);
  while !sum > 0xffff do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let eth_header = 14
let ip_header = 20

let l4_header = function Pkt.Tcp -> 20 | Pkt.Udp -> 8 | Pkt.Other _ -> 0

let min_size proto = eth_header + ip_header + l4_header proto

let serialize (p : Pkt.t) =
  let hdr = min_size p.Pkt.proto in
  if p.Pkt.size < hdr then
    invalid_arg (Printf.sprintf "Wire.serialize: frame of %d B below header size %d B" p.Pkt.size hdr);
  let b = Bytes.make p.Pkt.size '\000' in
  (* Ethernet *)
  set_u48 b 0 p.Pkt.eth_dst;
  set_u48 b 6 p.Pkt.eth_src;
  set_u16 b 12 p.Pkt.eth_type;
  (* IPv4 *)
  let ip_total = p.Pkt.size - eth_header in
  set_u8 b 14 0x45;
  set_u16 b 16 ip_total;
  set_u8 b 22 64 (* TTL *);
  set_u8 b 23 (Pkt.proto_number p.Pkt.proto);
  set_u32 b 26 p.Pkt.ip_src;
  set_u32 b 30 p.Pkt.ip_dst;
  let ip_csum = internet_checksum (Bytes.sub b eth_header ip_header) in
  set_u16 b 24 ip_csum;
  (* L4 *)
  let l4_off = eth_header + ip_header in
  let l4_len = p.Pkt.size - l4_off in
  (match p.Pkt.proto with
  | Pkt.Tcp ->
      set_u16 b l4_off p.Pkt.src_port;
      set_u16 b (l4_off + 2) p.Pkt.dst_port;
      set_u8 b (l4_off + 12) 0x50 (* data offset = 5 words *)
  | Pkt.Udp ->
      set_u16 b l4_off p.Pkt.src_port;
      set_u16 b (l4_off + 2) p.Pkt.dst_port;
      set_u16 b (l4_off + 4) l4_len
  | Pkt.Other _ -> ());
  (* L4 checksum over pseudo-header + segment *)
  (match p.Pkt.proto with
  | Pkt.Tcp | Pkt.Udp ->
      let pseudo = Bytes.make (12 + l4_len) '\000' in
      set_u32 pseudo 0 p.Pkt.ip_src;
      set_u32 pseudo 4 p.Pkt.ip_dst;
      set_u8 pseudo 9 (Pkt.proto_number p.Pkt.proto);
      set_u16 pseudo 10 l4_len;
      Bytes.blit b l4_off pseudo 12 l4_len;
      let csum = internet_checksum pseudo in
      let csum_off = if p.Pkt.proto = Pkt.Tcp then l4_off + 16 else l4_off + 6 in
      set_u16 b csum_off (if csum = 0 then 0xffff else csum)
  | Pkt.Other _ -> ());
  b

let parse ?(port = 0) ?(ts_ns = 0) b =
  let n = Bytes.length b in
  if n < eth_header then Error "frame shorter than an Ethernet header"
  else
    let eth_dst = get_u48 b 0 and eth_src = get_u48 b 6 and eth_type = get_u16 b 12 in
    if eth_type <> Pkt.ipv4_ethertype then
      Ok
        {
          Pkt.port;
          eth_src;
          eth_dst;
          eth_type;
          ip_src = 0;
          ip_dst = 0;
          proto = Pkt.Other 0;
          src_port = 0;
          dst_port = 0;
          size = n;
          ts_ns;
        }
    else if n < eth_header + ip_header then Error "frame truncated inside the IPv4 header"
    else
      let proto = Pkt.proto_of_number (get_u8 b 23) in
      let ip_src = get_u32 b 26 and ip_dst = get_u32 b 30 in
      let l4_off = eth_header + ((get_u8 b 14 land 0xf) * 4) in
      let needs = match proto with Pkt.Tcp | Pkt.Udp -> 4 | Pkt.Other _ -> 0 in
      if n < l4_off + needs then Error "frame truncated inside the L4 header"
      else
        let src_port, dst_port =
          match proto with
          | Pkt.Tcp | Pkt.Udp -> (get_u16 b l4_off, get_u16 b (l4_off + 2))
          | Pkt.Other _ -> (0, 0)
        in
        Ok
          {
            Pkt.port;
            eth_src;
            eth_dst;
            eth_type;
            ip_src;
            ip_dst;
            proto;
            src_port;
            dst_port;
            size = n;
            ts_ns;
          }
