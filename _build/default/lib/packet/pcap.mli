(** Reading and writing libpcap capture files.

    The classic [0xa1b2c3d4] microsecond format with Ethernet link type.
    The churn experiments of the paper (§6.3) are driven from generated
    PCAPs replayed in a loop; this module lets those workloads be saved to
    disk and inspected with standard tools. *)

val write_file : string -> Pkt.t list -> unit
(** Serialize the packets (via {!Wire.serialize}) into a pcap file;
    timestamps come from [ts_ns]. *)

val read_file : string -> (Pkt.t list, string) result
(** Parse a pcap file back into packets; the receive [port] of every packet
    is 0.  Frames that fail to parse are skipped. *)

val to_buffer : Pkt.t list -> Buffer.t

val of_string : string -> (Pkt.t list, string) result
