type proto = Tcp | Udp | Other of int

type t = {
  port : int;
  eth_src : int;
  eth_dst : int;
  eth_type : int;
  ip_src : int;
  ip_dst : int;
  proto : proto;
  src_port : int;
  dst_port : int;
  size : int;
  ts_ns : int;
}

let ipv4_ethertype = 0x0800

let proto_number = function Tcp -> 6 | Udp -> 17 | Other n -> n land 0xff

let proto_of_number = function 6 -> Tcp | 17 -> Udp | n -> Other (n land 0xff)

let make ?(port = 0) ?(eth_src = 0x02_00_00_00_00_01) ?(eth_dst = 0x02_00_00_00_00_02)
    ?(proto = Tcp) ?(size = 64) ?(ts_ns = 0) ~ip_src ~ip_dst ~src_port ~dst_port () =
  {
    port;
    eth_src;
    eth_dst;
    eth_type = ipv4_ethertype;
    ip_src;
    ip_dst;
    proto;
    src_port;
    dst_port;
    size;
    ts_ns;
  }

let field_int p = function
  | Field.Eth_src -> p.eth_src
  | Field.Eth_dst -> p.eth_dst
  | Field.Eth_type -> p.eth_type
  | Field.Ip_src -> p.ip_src
  | Field.Ip_dst -> p.ip_dst
  | Field.Ip_proto -> proto_number p.proto
  | Field.Src_port -> p.src_port
  | Field.Dst_port -> p.dst_port

let get_field p f = Bitvec.of_int ~width:(Field.width f) (field_int p f)

let flip p =
  {
    p with
    eth_src = p.eth_dst;
    eth_dst = p.eth_src;
    ip_src = p.ip_dst;
    ip_dst = p.ip_src;
    src_port = p.dst_port;
    dst_port = p.src_port;
  }

let with_port p port = { p with port }

(* 7B preamble + 1B SFD + 12B inter-frame gap *)
let wire_size p = p.size + 20

let equal a b = a = b
let compare = Stdlib.compare

let pp_ip fmt ip =
  Format.fprintf fmt "%d.%d.%d.%d" ((ip lsr 24) land 0xff) ((ip lsr 16) land 0xff)
    ((ip lsr 8) land 0xff) (ip land 0xff)

let pp fmt p =
  let proto_str = match p.proto with Tcp -> "tcp" | Udp -> "udp" | Other n -> string_of_int n in
  Format.fprintf fmt "[port %d] %a:%d -> %a:%d %s %dB" p.port pp_ip p.ip_src p.src_port
    pp_ip p.ip_dst p.dst_port proto_str p.size
