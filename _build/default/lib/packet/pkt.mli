(** Concrete packets.

    A packet is a parsed Ethernet/IPv4/L4 header set plus wire metadata.
    Header values are plain non-negative integers (a 48-bit MAC fits in an
    OCaml int); [size] is the full frame length in bytes, used by the
    performance model and by throughput accounting. *)

type proto = Tcp | Udp | Other of int

type t = {
  port : int;  (** device the packet arrived on *)
  eth_src : int;  (** 48-bit MAC *)
  eth_dst : int;
  eth_type : int;  (** 16-bit; 0x0800 for IPv4 *)
  ip_src : int;  (** 32-bit IPv4 address *)
  ip_dst : int;
  proto : proto;
  src_port : int;  (** 16-bit; 0 when [proto] is [Other] *)
  dst_port : int;
  size : int;  (** frame bytes, header included *)
  ts_ns : int;  (** arrival timestamp, nanoseconds *)
}

val ipv4_ethertype : int

val proto_number : proto -> int

val proto_of_number : int -> proto

val make :
  ?port:int ->
  ?eth_src:int ->
  ?eth_dst:int ->
  ?proto:proto ->
  ?size:int ->
  ?ts_ns:int ->
  ip_src:int ->
  ip_dst:int ->
  src_port:int ->
  dst_port:int ->
  unit ->
  t
(** A TCP/IPv4 packet by default, 64 bytes, port 0, timestamp 0. *)

val get_field : t -> Field.t -> Bitvec.t
(** The wire bits of one header field, MSB first. *)

val field_int : t -> Field.t -> int

val flip : t -> t
(** Swap source and destination addresses and ports (the WAN reply direction
    of a LAN flow). *)

val with_port : t -> int -> t

val wire_size : t -> int
(** Bytes the frame occupies on the wire including Ethernet preamble,
    start-of-frame delimiter and inter-frame gap (size + 20) — what line-rate
    math must use. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val pp_ip : Format.formatter -> int -> unit
(** Dotted-quad rendering of a 32-bit address. *)
