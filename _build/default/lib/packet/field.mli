(** Packet header fields.

    This is the shared vocabulary between the symbolic-execution engine
    (which reports which fields an NF's state keys are built from), the
    constraints generator, and RS3 (which maps fields onto Toeplitz hash
    input bits).  Widths are wire widths in bits. *)

type t =
  | Eth_src
  | Eth_dst
  | Eth_type
  | Ip_src
  | Ip_dst
  | Ip_proto
  | Src_port
  | Dst_port

val all : t list

val width : t -> int
(** Wire width in bits. *)

val rss_capable : t -> bool
(** Whether any RSS field set can hash over this field at all.  Link-layer
    fields are not hashable by RSS on the NICs we model (paper §3.4, rule
    R4: the bridge's MAC-keyed state defeats shared-nothing). *)

val symmetric_counterpart : t -> t option
(** The field this one swaps with under flow symmetry:
    [Ip_src <-> Ip_dst], [Src_port <-> Dst_port], [Eth_src <-> Eth_dst]. *)

val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val compare : t -> t -> int
