lib/runtime/rebalance.ml: Array Dsl Hashtbl Maestro Nic Option Packet
