lib/runtime/domains.ml: Array Domain Dsl List Maestro Nic Packet Rwlock
