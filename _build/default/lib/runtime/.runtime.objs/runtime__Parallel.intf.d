lib/runtime/parallel.mli: Dsl Maestro Nic Packet
