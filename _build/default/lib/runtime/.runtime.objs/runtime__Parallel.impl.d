lib/runtime/parallel.ml: Array Dsl Maestro Nic Option Packet
