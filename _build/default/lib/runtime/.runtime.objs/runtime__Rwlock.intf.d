lib/runtime/rwlock.mli:
