lib/runtime/rebalance.mli: Maestro Packet
