lib/runtime/domains.mli: Dsl Maestro Packet
