lib/runtime/rwlock.ml: Array Atomic Domain Fun
