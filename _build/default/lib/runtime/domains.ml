let dispatch_plan (plan : Maestro.Plan.t) pkts =
  let nf = plan.Maestro.Plan.nf in
  let engines =
    Array.init nf.Dsl.Ast.devices (fun port -> Maestro.Plan.rss_engine plan port)
  in
  Array.map (fun p -> Nic.Rss.dispatch engines.(p.Packet.Pkt.port) p) pkts

let run_shared_nothing (plan : Maestro.Plan.t) pkts =
  if plan.Maestro.Plan.strategy <> Maestro.Plan.Shared_nothing then
    invalid_arg "Domains.run_shared_nothing: plan is not shared-nothing";
  let nf = plan.Maestro.Plan.nf in
  let info = Dsl.Check.check_exn nf in
  let cores = plan.Maestro.Plan.cores in
  let assignment = dispatch_plan plan pkts in
  (* per-core work queues, preserving arrival order within a core *)
  let queues = Array.make cores [] in
  Array.iteri (fun i core -> queues.(core) <- i :: queues.(core)) assignment;
  let verdicts = Array.make (Array.length pkts) Dsl.Interp.Dropped in
  let worker core () =
    let inst = Dsl.Instance.create ~divide:cores nf in
    List.iter
      (fun i -> verdicts.(i) <- Dsl.Interp.process nf info inst pkts.(i))
      (List.rev queues.(core))
  in
  let domains = Array.init cores (fun core -> Domain.spawn (worker core)) in
  Array.iter Domain.join domains;
  verdicts

let run_lock_based (plan : Maestro.Plan.t) pkts =
  let nf = plan.Maestro.Plan.nf in
  let info = Dsl.Check.check_exn nf in
  let cores = plan.Maestro.Plan.cores in
  let assignment = dispatch_plan plan pkts in
  let queues = Array.make cores [] in
  Array.iteri (fun i core -> queues.(core) <- i :: queues.(core)) assignment;
  let inst = Dsl.Instance.create nf in
  let lock = Rwlock.create ~cores in
  let verdicts = Array.make (Array.length pkts) Dsl.Interp.Dropped in
  (* OCaml has no transactional rollback, so a packet that *may* write on
     any path must take the write lock up front: classify statically.  The
     speculative read→restart discipline (and the per-core aging that keeps
     rejuvenation off the write lock) is modeled deterministically in
     {!Parallel.run}; this runtime only demonstrates race-free real-domain
     execution. *)
  let rec stmt_writes (s : Dsl.Ast.stmt) =
    match s with
    | Dsl.Ast.Map_put _ | Dsl.Ast.Map_erase _ | Dsl.Ast.Vec_set _ | Dsl.Ast.Chain_alloc _
    | Dsl.Ast.Chain_rejuv _ | Dsl.Ast.Chain_expire _ | Dsl.Ast.Sketch_touch _ ->
        true
    | Dsl.Ast.If (_, t, f) -> stmt_writes t || stmt_writes f
    | Dsl.Ast.Let (_, _, k)
    | Dsl.Ast.Map_get { k; _ }
    | Dsl.Ast.Vec_get { k; _ }
    | Dsl.Ast.Sketch_query { k; _ }
    | Dsl.Ast.Set_field (_, _, k) ->
        stmt_writes k
    | Dsl.Ast.Forward _ | Dsl.Ast.Drop -> false
  in
  let nf_writes = stmt_writes nf.Dsl.Ast.process in
  let worker core () =
    List.iter
      (fun i ->
        let pkt = pkts.(i) in
        if nf_writes then
          Rwlock.with_write lock (fun () ->
              verdicts.(i) <- Dsl.Interp.process nf info inst pkt)
        else
          Rwlock.with_read lock ~core (fun () ->
              verdicts.(i) <- Dsl.Interp.process nf info inst pkt))
      (List.rev queues.(core))
  in
  let domains = Array.init cores (fun core -> Domain.spawn (worker core)) in
  Array.iter Domain.join domains;
  verdicts
