(** Dynamic RSS++-style indirection-table rebalancing (paper §4 implements
    the static version and notes "their dynamic versions could be used to
    handle changes in skew over time" — this is that extension).

    The trace is processed in epochs; after each epoch the per-bucket loads
    observed during it drive a rebalance of every port's indirection table.
    Because RSS++ moves whole buckets, colliding flows stay together and —
    on a shared-nothing plan — moving a bucket migrates its flows' state
    between cores, which is counted. *)

type report = {
  epochs : int;
  static_imbalance : float array;  (** per-epoch max/mean core load, fixed tables *)
  dynamic_imbalance : float array;  (** same, tables rebalanced after each epoch *)
  migrated_buckets : int;  (** indirection entries reassigned over the run *)
  migrated_flows : int;  (** flows whose state moved cores (shared-nothing) *)
}

val study : Maestro.Plan.t -> Packet.Pkt.t array -> epoch_pkts:int -> report
(** Raises [Invalid_argument] when the trace is shorter than one epoch. *)
