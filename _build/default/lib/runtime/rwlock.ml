type t = { flags : bool Atomic.t array }

let create ~cores =
  if cores < 1 then invalid_arg "Rwlock.create";
  { flags = Array.init cores (fun _ -> Atomic.make false) }

let cores t = Array.length t.flags

let acquire flag =
  while not (Atomic.compare_and_set flag false true) do
    Domain.cpu_relax ()
  done

let read_lock t ~core = acquire t.flags.(core)
let read_unlock t ~core = Atomic.set t.flags.(core) false

let write_lock t = Array.iter acquire t.flags
let write_unlock t = Array.iter (fun f -> Atomic.set f false) t.flags

let with_read t ~core f =
  read_lock t ~core;
  Fun.protect ~finally:(fun () -> read_unlock t ~core) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f
