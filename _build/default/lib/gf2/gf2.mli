(** Dense linear algebra over GF(2).

    The central object is a mutable system of linear equations
    [a.x = b] over boolean variables [x_0 .. x_{n-1}].  Systems are solved by
    Gaussian elimination; the solution space is exposed through a particular
    solution, a nullspace basis, and biased random sampling (used by RS3 to
    prefer RSS keys with many 1 bits, the paper's soft-constraint goal). *)

module System : sig
  type t

  val create : cols:int -> t
  (** A fresh empty system over [cols] variables. *)

  val cols : t -> int

  val rows : t -> int
  (** Number of equations added so far. *)

  val add_equation : t -> coeffs:int list -> rhs:bool -> unit
  (** [add_equation t ~coeffs ~rhs] adds the equation
      [x_{i1} + x_{i2} + ... = rhs] (sum over GF(2)); repeated indices cancel
      pairwise.  Raises [Invalid_argument] on an out-of-range index. *)

  val add_zero : t -> int -> unit
  (** [add_zero t i] constrains [x_i = 0]. *)

  val add_equal : t -> int -> int -> unit
  (** [add_equal t i j] constrains [x_i = x_j]. *)

  type solved

  val eliminate : t -> solved option
  (** Row-reduce; [None] when the system is inconsistent.  The original
      system is not modified and may keep accumulating equations for later
      calls. *)

  val rank : solved -> int

  val n_free : solved -> int
  (** Number of free (non-pivot) variables. *)

  val solve : solved -> bool array
  (** A particular solution with all free variables set to [false]. *)

  val sample : solved -> rng:Random.State.t -> one_bias:float -> bool array
  (** A random solution: each free variable is drawn [true] with probability
      [one_bias], then pivot variables are back-substituted.  [one_bias]
      outside [0,1] is clamped. *)

  val nullspace : solved -> bool array list
  (** A basis of the homogeneous solution space; empty when the solution is
      unique. *)

  val check : t -> bool array -> bool
  (** [check t x] verifies that [x] satisfies every equation of [t]. *)
end
