type role = Keyed of Symbex.Sym.atom list | Internal | Maintenance

type entry = { call : Symbex.Tree.call; role : role; write : bool }

type cluster = { cid : int; objects : string list; entries : entry list; read_only : bool }

type t = { model : Symbex.Exec.model; clusters : cluster list }

(* --- union-find over object names --------------------------------------- *)

module Uf = struct
  let create () = Hashtbl.create 16

  let rec find t x =
    match Hashtbl.find_opt t x with
    | None | Some "" -> x
    | Some p when String.equal p x -> x
    | Some p ->
        let r = find t p in
        Hashtbl.replace t x r;
        r

  let union t a b =
    let ra = find t a and rb = find t b in
    if not (String.equal ra rb) then Hashtbl.replace t ra rb
end

let call_write (c : Symbex.Tree.call) =
  match c.Symbex.Tree.kind with
  | Dsl.Interp.Op_chain_expire ->
      (* maintenance; its write-ness is dynamic (only when flows expire) and
         handled by the runtimes, not by sharding *)
      false
  | k -> Dsl.Interp.op_is_write k

let build (model : Symbex.Exec.model) =
  let calls = Symbex.Exec.calls model in
  let obj_of_call_id = Hashtbl.create 64 in
  List.iter (fun (c : Symbex.Tree.call) -> Hashtbl.replace obj_of_call_id c.Symbex.Tree.id c.Symbex.Tree.obj) calls;
  let uf = Uf.create () in
  (* Link objects that exchange call results: a vector indexed by a map's
     value, a map storing a chain's index, an expire purging maps/keyvecs. *)
  let link_syms (c : Symbex.Tree.call) syms =
    List.iter
      (fun s ->
        List.iter
          (fun id ->
            match Hashtbl.find_opt obj_of_call_id id with
            | Some other -> Uf.union uf c.Symbex.Tree.obj other
            | None -> ())
          (Symbex.Sym.calls s))
      syms
  in
  List.iter
    (fun (c : Symbex.Tree.call) ->
      (match c.Symbex.Tree.key with Some key -> link_syms c key | None -> ());
      (match c.Symbex.Tree.index with Some i -> link_syms c [ i ] | None -> ());
      match c.Symbex.Tree.kind with
      | Dsl.Interp.Op_chain_expire ->
          List.iter (fun (obj, _) -> Uf.union uf c.Symbex.Tree.obj obj) c.Symbex.Tree.stored
      | _ -> link_syms c (List.map snd c.Symbex.Tree.stored))
    calls;
  (* Classify each call. *)
  let role_of (c : Symbex.Tree.call) =
    match c.Symbex.Tree.kind with
    | Dsl.Interp.Op_chain_expire -> Maintenance
    | Dsl.Interp.Op_chain_alloc -> Internal
    | Dsl.Interp.Op_map_get | Dsl.Interp.Op_map_put | Dsl.Interp.Op_map_erase
    | Dsl.Interp.Op_sketch_touch | Dsl.Interp.Op_sketch_query -> (
        match c.Symbex.Tree.key with
        | Some key -> Keyed (List.map Symbex.Sym.classify key)
        | None -> Internal)
    | Dsl.Interp.Op_vec_get | Dsl.Interp.Op_vec_set | Dsl.Interp.Op_chain_rejuv -> (
        match c.Symbex.Tree.index with
        | None -> Internal
        | Some idx ->
            if Symbex.Sym.calls idx <> [] then Internal
            else Keyed [ Symbex.Sym.classify idx ])
  in
  let entries =
    List.map (fun c -> { call = c; role = role_of c; write = call_write c }) calls
  in
  (* Group by union-find root. *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let root = Uf.find uf e.call.Symbex.Tree.obj in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups root) in
      Hashtbl.replace groups root (e :: cur))
    entries;
  let clusters =
    Hashtbl.fold
      (fun _root es acc ->
        let es = List.rev es in
        let objects =
          List.sort_uniq String.compare (List.map (fun e -> e.call.Symbex.Tree.obj) es)
        in
        let read_only = not (List.exists (fun e -> e.write) es) in
        { cid = 0; objects; entries = es; read_only } :: acc)
      groups []
    |> List.sort (fun a b -> compare a.objects b.objects)
    |> List.mapi (fun i c -> { c with cid = i })
  in
  { model; clusters }

let stateless t = t.clusters = []

let writable_clusters t = List.filter (fun c -> not c.read_only) t.clusters

let cluster_of_object t obj =
  List.find_opt (fun c -> List.exists (String.equal obj) c.objects) t.clusters

let pp_atom fmt = function
  | Symbex.Sym.A_field f -> Packet.Field.pp fmt f
  | Symbex.Sym.A_prefix (f, bits) -> Format.fprintf fmt "%a[0:%d]" Packet.Field.pp f bits
  | Symbex.Sym.A_const (w, v) -> Format.fprintf fmt "const %d:%d" v w
  | Symbex.Sym.A_opaque s -> Format.fprintf fmt "opaque(%a)" Symbex.Sym.pp s

let pp_entry fmt e =
  let kind =
    match e.call.Symbex.Tree.kind with
    | Dsl.Interp.Op_map_get -> "map_get"
    | Dsl.Interp.Op_map_put -> "map_put"
    | Dsl.Interp.Op_map_erase -> "map_erase"
    | Dsl.Interp.Op_vec_get -> "vec_get"
    | Dsl.Interp.Op_vec_set -> "vec_set"
    | Dsl.Interp.Op_chain_alloc -> "chain_alloc"
    | Dsl.Interp.Op_chain_rejuv -> "chain_rejuvenate"
    | Dsl.Interp.Op_chain_expire -> "expire"
    | Dsl.Interp.Op_sketch_touch -> "sketch_touch"
    | Dsl.Interp.Op_sketch_query -> "sketch_query"
  in
  Format.fprintf fmt "port %d: %s(%s)%s" e.call.Symbex.Tree.port kind e.call.Symbex.Tree.obj
    (if e.write then " [write]" else "");
  match e.role with
  | Keyed atoms ->
      Format.fprintf fmt " key=<%a>"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_atom)
        atoms
  | Internal -> Format.pp_print_string fmt " (internal)"
  | Maintenance -> Format.pp_print_string fmt " (maintenance)"

let pp fmt t =
  List.iter
    (fun c ->
      Format.fprintf fmt "@[<v 2>cluster %d {%s}%s:@ %a@]@." c.cid
        (String.concat ", " c.objects)
        (if c.read_only then " (read-only)" else "")
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_entry)
        c.entries)
    t.clusters
