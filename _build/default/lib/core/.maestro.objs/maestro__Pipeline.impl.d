lib/core/pipeline.ml: Array Dsl Format List Nic Plan Printf Random Report Rs3 Sharding String Symbex Unix
