lib/core/codegen.mli: Plan
