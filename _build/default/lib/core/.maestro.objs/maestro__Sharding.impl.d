lib/core/sharding.ml: Array Dsl Exec Format Hashtbl Int List Option Packet Report Rs3 Set Stdlib String Sym Symbex Tree
