lib/core/codegen.ml: Array Bitvec Buffer Bytes Char Dsl List Nic Packet Plan Printf String
