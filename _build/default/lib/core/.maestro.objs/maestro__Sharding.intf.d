lib/core/sharding.mli: Format Packet Report Rs3
