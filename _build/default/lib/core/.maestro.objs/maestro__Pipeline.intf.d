lib/core/pipeline.mli: Dsl Nic Plan Report Rs3 Sharding
