lib/core/plan.ml: Array Bitvec Dsl Format List Nic Rs3
