lib/core/report.ml: Dsl Format Hashtbl List Option Packet String Symbex
