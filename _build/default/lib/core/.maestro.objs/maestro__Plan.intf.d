lib/core/plan.mli: Bitvec Dsl Format Nic Rs3
