lib/core/report.mli: Format Symbex
