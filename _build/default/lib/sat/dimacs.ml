type cnf = { nvars : int; clauses : Lit.t list list }

let parse text =
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; _nc ] -> nvars := int_of_string nv
        | _ -> failwith "Dimacs.parse: bad problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> failwith ("Dimacs.parse: bad token " ^ tok)
               | Some 0 ->
                   clauses := List.rev !current :: !clauses;
                   current := []
               | Some i ->
                   nvars := max !nvars (abs i);
                   current := Lit.of_dimacs i :: !current))
    lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { nvars = !nvars; clauses = List.rev !clauses }

let print fmt { nvars; clauses } =
  Format.fprintf fmt "p cnf %d %d@." nvars (List.length clauses);
  List.iter
    (fun c ->
      List.iter (fun l -> Format.fprintf fmt "%d " (Lit.to_dimacs l)) c;
      Format.fprintf fmt "0@.")
    clauses

let load s { nvars; clauses } =
  while Solver.nvars s < nvars do
    ignore (Solver.new_var s)
  done;
  List.iter (Solver.add_clause s) clauses
