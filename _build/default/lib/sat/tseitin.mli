(** Tseitin encoding of boolean formulas and parity constraints into CNF.

    Auxiliary variables are allocated in the target solver; the encoding is
    equisatisfiable and, because every definition is bidirectional, also
    model-preserving on the original variables. *)

type formula =
  | True
  | False
  | Atom of Lit.t
  | Not of formula
  | And of formula list
  | Or of formula list
  | Xor of formula * formula
  | Iff of formula * formula
  | Imp of formula * formula

val atom : Lit.var -> formula
(** Positive atom for a variable. *)

val lit_of : Solver.t -> formula -> Lit.t
(** A literal constrained (by added clauses) to be equivalent to the
    formula. *)

val assert_formula : Solver.t -> formula -> unit
(** Add clauses forcing the formula to hold. *)

val xor_clause : Solver.t -> Lit.t list -> bool -> unit
(** [xor_clause s lits rhs] asserts that the parity of the literals equals
    [rhs], chaining auxiliary variables (CNF size linear in the number of
    literals). *)

val pp : Format.formatter -> formula -> unit
