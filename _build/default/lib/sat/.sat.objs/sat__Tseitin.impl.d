lib/sat/tseitin.ml: Format List Lit Solver
