lib/sat/tseitin.mli: Format Lit Solver
