lib/sat/solver.ml: Array Float Hashtbl List Lit Random
