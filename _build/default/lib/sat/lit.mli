(** Propositional literals.

    A variable is a non-negative integer; a literal packs a variable and a
    sign into a single integer ([2v] positive, [2v+1] negative), the classic
    MiniSat encoding. *)

type t = private int

type var = int

val make : var -> bool -> t
(** [make v sign] is [v] when [sign] is [true], [¬v] otherwise. *)

val pos : var -> t

val neg : var -> t

val var : t -> var

val sign : t -> bool
(** [true] for a positive literal. *)

val negate : t -> t

val to_int : t -> int
(** The raw encoding, suitable as an array index in [0 .. 2*nvars-1]. *)

val of_int : int -> t

val to_dimacs : t -> int
(** 1-based signed integer as in the DIMACS format. *)

val of_dimacs : int -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
