type t = int
type var = int

let make v sign =
  if v < 0 then invalid_arg "Lit.make";
  (2 * v) + if sign then 0 else 1

let pos v = make v true
let neg v = make v false
let var l = l / 2
let sign l = l land 1 = 0
let negate l = l lxor 1
let to_int l = l
let of_int i = if i < 0 then invalid_arg "Lit.of_int" else i
let to_dimacs l = if sign l then var l + 1 else -(var l + 1)

let of_dimacs i =
  if i = 0 then invalid_arg "Lit.of_dimacs"
  else if i > 0 then pos (i - 1)
  else neg (-i - 1)

let equal = Int.equal
let compare = Int.compare
let pp fmt l = Format.fprintf fmt "%s%d" (if sign l then "" else "~") (var l)
