type formula =
  | True
  | False
  | Atom of Lit.t
  | Not of formula
  | And of formula list
  | Or of formula list
  | Xor of formula * formula
  | Iff of formula * formula
  | Imp of formula * formula

let atom v = Atom (Lit.pos v)

(* [define_and s ls] returns a literal x with x <-> /\ ls. *)
let define_and s ls =
  let x = Lit.pos (Solver.new_var s) in
  List.iter (fun l -> Solver.add_clause s [ Lit.negate x; l ]) ls;
  Solver.add_clause s (x :: List.map Lit.negate ls);
  x

let define_or s ls =
  let x = Lit.pos (Solver.new_var s) in
  List.iter (fun l -> Solver.add_clause s [ x; Lit.negate l ]) ls;
  Solver.add_clause s (Lit.negate x :: ls);
  x

(* x <-> a xor b *)
let define_xor s a b =
  let x = Lit.pos (Solver.new_var s) in
  Solver.add_clause s [ Lit.negate x; Lit.negate a; Lit.negate b ];
  Solver.add_clause s [ Lit.negate x; a; b ];
  Solver.add_clause s [ x; Lit.negate a; b ];
  Solver.add_clause s [ x; a; Lit.negate b ];
  x

let true_lit s =
  (* A constant-true literal; cheap enough to allocate per call given how
     rarely constants appear in our encodings. *)
  let v = Solver.new_var s in
  Solver.add_clause s [ Lit.pos v ];
  Lit.pos v

let rec lit_of s = function
  | True -> true_lit s
  | False -> Lit.negate (true_lit s)
  | Atom l -> l
  | Not f -> Lit.negate (lit_of s f)
  | And [] -> true_lit s
  | And [ f ] -> lit_of s f
  | And fs -> define_and s (List.map (lit_of s) fs)
  | Or [] -> Lit.negate (true_lit s)
  | Or [ f ] -> lit_of s f
  | Or fs -> define_or s (List.map (lit_of s) fs)
  | Xor (a, b) -> define_xor s (lit_of s a) (lit_of s b)
  | Iff (a, b) -> Lit.negate (define_xor s (lit_of s a) (lit_of s b))
  | Imp (a, b) -> lit_of s (Or [ Not a; b ])

(* Assert directly where possible to avoid auxiliary variables at the top
   level of the formula. *)
let rec assert_formula s = function
  | True -> ()
  | False -> Solver.add_clause s []
  | Atom l -> Solver.add_clause s [ l ]
  | Not (Atom l) -> Solver.add_clause s [ Lit.negate l ]
  | Not (Not f) -> assert_formula s f
  | And fs -> List.iter (assert_formula s) fs
  | Or fs -> Solver.add_clause s (List.map (lit_of s) fs)
  | Imp (a, b) -> assert_formula s (Or [ Not a; b ])
  | (Not _ | Xor _ | Iff _) as f -> Solver.add_clause s [ lit_of s f ]

let xor_clause s lits rhs =
  match lits with
  | [] -> if rhs then Solver.add_clause s []
  | first :: rest ->
      let acc = List.fold_left (fun acc l -> define_xor s acc l) first rest in
      Solver.add_clause s [ (if rhs then acc else Lit.negate acc) ]

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Atom l -> Lit.pp fmt l
  | Not f -> Format.fprintf fmt "!(%a)" pp f
  | And fs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " & ") pp)
        fs
  | Or fs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " | ") pp)
        fs
  | Xor (a, b) -> Format.fprintf fmt "(%a ^ %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf fmt "(%a <-> %a)" pp a pp b
  | Imp (a, b) -> Format.fprintf fmt "(%a -> %a)" pp a pp b
