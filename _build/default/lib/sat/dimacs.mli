(** DIMACS CNF reading and writing, for interoperability and tests. *)

type cnf = { nvars : int; clauses : Lit.t list list }

val parse : string -> cnf
(** Parse DIMACS CNF text.  Raises [Failure] on malformed input. *)

val print : Format.formatter -> cnf -> unit

val load : Solver.t -> cnf -> unit
(** Allocate the variables (those not yet present) and add all clauses. *)
