(** The Toeplitz-based RSS hash (paper Fig. 4, Microsoft RSS spec).

    The 32-bit running hash is XOR-ed with the 32 most significant bits of
    the key, left-rotated once per consumed input bit, whenever the current
    input bit is 1.  Equivalently, hash bit [b] is
    [⊕_x d(x) ∧ k(x + b)] — linear over GF(2) in both the key and the
    input, which is the property RS3's solver exploits. *)

val hash : key:Bitvec.t -> Bitvec.t -> int32
(** [hash ~key d] hashes input [d].  Requires
    [Bitvec.length key >= Bitvec.length d + 32] — 52-byte keys cover the
    12-byte IPv4 TCP tuple and more.  Raises [Invalid_argument] otherwise. *)

val hash_int : key:Bitvec.t -> Bitvec.t -> int
(** Same as {!hash} with the result as a non-negative int. *)

val key_bits_for_input : int -> int
(** Minimum key width for a given input width. *)

val microsoft_test_key : Bitvec.t
(** The 40-byte reference key from the Microsoft RSS verification suite,
    usable for validating this implementation against published vectors. *)
