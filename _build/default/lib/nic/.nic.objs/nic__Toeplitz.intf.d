lib/nic/toeplitz.mli: Bitvec
