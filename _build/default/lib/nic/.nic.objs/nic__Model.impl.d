lib/nic/model.ml: Field_set Format Int List Packet
