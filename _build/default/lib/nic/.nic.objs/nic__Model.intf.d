lib/nic/model.mli: Field_set Format Packet
