lib/nic/field_set.ml: Bitvec Field Format List Option Packet Pkt Printf Stdlib
