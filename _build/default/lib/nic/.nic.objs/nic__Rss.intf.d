lib/nic/rss.mli: Bitvec Field_set Format Model Packet Random Reta
