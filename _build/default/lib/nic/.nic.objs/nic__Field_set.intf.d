lib/nic/field_set.mli: Bitvec Format Packet
