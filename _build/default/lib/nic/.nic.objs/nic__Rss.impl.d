lib/nic/rss.ml: Bitvec Field_set Format List Model Printf Reta Toeplitz
