lib/nic/reta.mli: Format
