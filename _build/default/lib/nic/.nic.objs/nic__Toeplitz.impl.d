lib/nic/toeplitz.ml: Bitvec Int32
