lib/nic/reta.ml: Array Float Format Int32
