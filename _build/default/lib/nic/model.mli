(** NIC capability models.

    Each NIC supports only some of the DPDK RSS field-set options (paper
    §5, "RSS limitations").  The modeled E810, like DPDK's ice driver,
    honors the [RTE_ETH_RSS_L3_SRC_ONLY]/[L3_DST_ONLY]/[L4_*_ONLY]
    modifiers, i.e. it can hash {e any} subset of the IPv4/L4 fields; the
    modeled X710 only offers the rigid address-pair and full-tuple sets.

    Subset hashing is load-bearing for shared-nothing parallelization:
    cancelling an unwanted field out of a rigid ports-bearing Toeplitz
    input zeroes key windows that overlap the neighbouring fields' windows,
    collapsing the hash to a handful of values (the solver-level face of
    rule R3; proved by the solver in test_rs3.ml).  A dst-IP-sharded
    Policer or a server-sharded NAT therefore needs the *_ONLY modifiers —
    on a rigid NIC Maestro must fall back to locks. *)

type t = E810 | X710 | Permissive

val name : t -> string

val key_bytes : t -> int
(** RSS key length (52 for the E810, 40 for the X710). *)

val supported_sets : t -> Field_set.t list

val supports : t -> Field_set.t -> bool

val reta_size : t -> int
(** Indirection table entries. *)

val max_queues : t -> int

val best_set_covering : t -> Packet.Field.t list -> Field_set.t option
(** The smallest supported field set that includes all the given fields —
    how Maestro picks the RSS option for a sharding requirement.  [None]
    when some field is not hashable on this NIC. *)

val pp : Format.formatter -> t -> unit
