type disposition = To_node of string | Tx of int | Drop_pkt

type node = {
  name : string;
  handler : Packet.Pkt.t array -> (Packet.Pkt.t * disposition) array;
}

type t = { entry : string; nodes : (string, node) Hashtbl.t; mutable visits : int }

let batch_size = 256

let create ~entry nodes =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n.name then invalid_arg ("Vpp.Graph: duplicate node " ^ n.name);
      Hashtbl.replace tbl n.name n)
    nodes;
  if not (Hashtbl.mem tbl entry) then invalid_arg ("Vpp.Graph: unknown entry " ^ entry);
  { entry; nodes = tbl; visits = 0 }

type verdict = Sent of int * Packet.Pkt.t | Dropped

let run t pkts =
  let n = Array.length pkts in
  let verdicts = Array.make n Dropped in
  let pos = ref 0 in
  while !pos < n do
    let len = min batch_size (n - !pos) in
    (* frames: (original index, current headers) walking the graph *)
    let rec process name frames =
      if frames <> [] then begin
        let nd =
          match Hashtbl.find_opt t.nodes name with
          | Some nd -> nd
          | None -> invalid_arg ("Vpp.Graph: dangling next node " ^ name)
        in
        t.visits <- t.visits + 1;
        let arr = Array.of_list frames in
        let out = nd.handler (Array.map snd arr) in
        if Array.length out <> Array.length arr then
          invalid_arg ("Vpp.Graph: node " ^ name ^ " returned a short vector");
        let nexts = Hashtbl.create 4 in
        Array.iteri
          (fun i (pkt, d) ->
            let idx, _ = arr.(i) in
            match d with
            | Tx port -> verdicts.(idx) <- Sent (port, pkt)
            | Drop_pkt -> verdicts.(idx) <- Dropped
            | To_node next ->
                Hashtbl.replace nexts next
                  ((idx, pkt) :: Option.value ~default:[] (Hashtbl.find_opt nexts next)))
          out;
        Hashtbl.iter (fun next frames -> process next (List.rev frames)) nexts
      end
    in
    process t.entry (List.init len (fun i -> (!pos + i, pkts.(!pos + i))));
    pos := !pos + len
  done;
  verdicts

let nodes_visited t = t.visits
