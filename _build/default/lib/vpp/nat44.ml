let lan = 0
let wan = 1
let port_base = 1024

type t = {
  capacity : int;
  ext_ip : int;
  sessions_out : State.Map_s.t; (* inside 4-tuple -> session index *)
  sessions_in : State.Map_s.t; (* external port -> session index *)
  chain : State.Dchain.t;
  flows : (int * int * int * int) array; (* per session: sip, dip, sp, dp *)
}

let pack parts = Dsl_pack.pack parts

let key_out sip dip sp dp = pack [ (32, sip); (32, dip); (16, sp); (16, dp) ]
let key_in port = pack [ (16, port) ]

let create ?(capacity = 32768) ?(external_ip = 0xc0a80101) () =
  {
    capacity;
    ext_ip = external_ip;
    sessions_out = State.Map_s.create ~capacity;
    sessions_in = State.Map_s.create ~capacity;
    chain = State.Dchain.create ~capacity;
    flows = Array.make capacity (0, 0, 0, 0);
  }

let external_ip t = t.ext_ip
let sessions t = State.Dchain.allocated t.chain

(* Pre-routing sanity, VPP style: one cheap vectorized check per node. *)
let ethernet_input =
  {
    Graph.name = "ethernet-input";
    handler =
      Array.map (fun (p : Packet.Pkt.t) ->
          if p.Packet.Pkt.eth_type = Packet.Pkt.ipv4_ethertype then
            (p, Graph.To_node "ip4-input")
          else (p, Graph.Drop_pkt));
  }

let ip4_input =
  {
    Graph.name = "ip4-input";
    handler =
      Array.map (fun (p : Packet.Pkt.t) ->
          match p.Packet.Pkt.proto with
          | Packet.Pkt.Tcp | Packet.Pkt.Udp -> (p, Graph.To_node "nat44")
          | Packet.Pkt.Other _ -> (p, Graph.Drop_pkt));
  }

let nat44_node t =
  let in2out (p : Packet.Pkt.t) =
    let now = p.Packet.Pkt.ts_ns in
    let k =
      key_out p.Packet.Pkt.ip_src p.Packet.Pkt.ip_dst p.Packet.Pkt.src_port
        p.Packet.Pkt.dst_port
    in
    let translate idx =
      ( {
          p with
          Packet.Pkt.ip_src = t.ext_ip;
          src_port = port_base + idx;
          eth_src = Packet.Flow.mac_of_ip t.ext_ip;
        },
        Graph.Tx wan )
    in
    match State.Map_s.get t.sessions_out k with
    | Some idx ->
        ignore (State.Dchain.rejuvenate t.chain idx ~now);
        translate idx
    | None -> (
        match State.Dchain.allocate t.chain ~now with
        | None -> (p, Graph.Drop_pkt)
        | Some idx ->
            t.flows.(idx) <-
              (p.Packet.Pkt.ip_src, p.Packet.Pkt.ip_dst, p.Packet.Pkt.src_port, p.Packet.Pkt.dst_port);
            ignore (State.Map_s.put t.sessions_out k idx);
            ignore (State.Map_s.put t.sessions_in (key_in (port_base + idx)) idx);
            translate idx)
  in
  let out2in (p : Packet.Pkt.t) =
    match State.Map_s.get t.sessions_in (key_in p.Packet.Pkt.dst_port) with
    | None -> (p, Graph.Drop_pkt)
    | Some idx ->
        let sip, dip, sp, dp = t.flows.(idx) in
        if dip = p.Packet.Pkt.ip_src && dp = p.Packet.Pkt.src_port then begin
          ignore (State.Dchain.rejuvenate t.chain idx ~now:p.Packet.Pkt.ts_ns);
          ( {
              p with
              Packet.Pkt.ip_dst = sip;
              dst_port = sp;
              eth_dst = Packet.Flow.mac_of_ip sip;
            },
            Graph.Tx lan )
        end
        else (p, Graph.Drop_pkt)
  in
  {
    Graph.name = "nat44";
    handler =
      Array.map (fun (p : Packet.Pkt.t) ->
          if p.Packet.Pkt.port = lan then in2out p else out2in p);
  }

let graph t = Graph.create ~entry:"ethernet-input" [ ethernet_input; ip4_input; nat44_node t ]

let run t pkts = Graph.run (graph t) pkts

(* Batching amortizes per-packet I/O (lower base cost) but the
   shared-memory buffer/metadata design touches more lines per operation —
   the perf-counter story of §6.4 (L1 hits: VPP 46% vs Maestro 55%). *)
let cost_params =
  {
    Sim.Cost.default with
    Sim.Cost.base_cycles = 145.0;
    accesses_per_op = 3.0;
    read_lock_cycles = 20.0;
  }
