(* Big-endian key packing, matching the byte-string keys of the stateful
   containers (the same encoding Dsl.Ast.key_of_parts uses). *)
let pack parts =
  let buf = Buffer.create 16 in
  List.iter
    (fun (width, v) ->
      let bytes = (width + 7) / 8 in
      for i = bytes - 1 downto 0 do
        Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
      done)
    parts;
  Buffer.contents buf
