(** A miniature Vector Packet Processing framework (paper §6.4, [7]).

    VPP's organizing idea is to push {e vectors} (batches) of packets
    through a graph of nodes, amortizing instruction-cache misses and
    per-packet overhead across the batch.  Nodes consume a whole batch and
    tag each packet with its next node or a disposition.  This module is a
    faithful, working miniature: nodes, a graph, and a batch scheduler. *)

type disposition = To_node of string | Tx of int  (** output device *) | Drop_pkt

type node = {
  name : string;
  handler : Packet.Pkt.t array -> (Packet.Pkt.t * disposition) array;
      (** one (possibly rewritten) packet and disposition per batch entry *)
}

type t

val create : entry:string -> node list -> t
(** Raises [Invalid_argument] on duplicate or dangling node names. *)

val batch_size : int
(** VPP's classic 256. *)

type verdict = Sent of int * Packet.Pkt.t | Dropped

val run : t -> Packet.Pkt.t array -> verdict array
(** Push the trace through the graph in batches, preserving input order in
    the verdict array. *)

val nodes_visited : t -> int
(** Total node invocations so far (for the batching-efficiency ablation). *)
