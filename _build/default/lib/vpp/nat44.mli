(** A [nat44-ei]-equivalent NAT in the VPP style (paper §6.4, Fig. 11).

    Built directly against the stateful containers — not through the Maestro
    DSL — the way an expert writes a VPP plugin: a shared session table in a
    shared-memory parallel environment where any packet can land on any
    worker.  Features are trimmed exactly as the paper trims nat44-ei: no
    counters, no checksum validation, no reassembly, static forwarding. *)

type t

val create : ?capacity:int -> ?external_ip:int -> unit -> t

val graph : t -> Graph.t
(** The processing graph: ethernet-input → ip4-input → nat44 → tx. *)

val run : t -> Packet.Pkt.t array -> Graph.verdict array

val sessions : t -> int

val external_ip : t -> int

val cost_params : Sim.Cost.params
(** Calibrated cost parameters for the performance comparison: batching
    lowers per-packet overhead, the shared-memory design touches more
    metadata per access (the paper measured 46 % L1 hit rate vs Maestro's
    55 %). *)
