lib/vpp/nat44.ml: Array Dsl_pack Graph Packet Sim State
