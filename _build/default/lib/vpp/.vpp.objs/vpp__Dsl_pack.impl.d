lib/vpp/dsl_pack.ml: Buffer Char List
