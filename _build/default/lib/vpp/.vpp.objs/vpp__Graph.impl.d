lib/vpp/graph.ml: Array Hashtbl List Option Packet
