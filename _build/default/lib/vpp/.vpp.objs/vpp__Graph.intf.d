lib/vpp/graph.mli: Packet
