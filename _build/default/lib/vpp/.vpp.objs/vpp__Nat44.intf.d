lib/vpp/nat44.mli: Graph Packet Sim
