type t =
  | Field of Packet.Field.t
  | Pkt_len
  | Now
  | Const of int * int
  | Call of int * string
  | Record of int * string * string
  | Bin of Dsl.Ast.binop * t * t
  | Not of t
  | Cast of int * t

let equal = ( = )
let compare = Stdlib.compare

let rec fold f acc s =
  let acc = f acc s in
  match s with
  | Field _ | Pkt_len | Now | Const _ | Call _ | Record _ -> acc
  | Bin (_, a, b) -> fold f (fold f acc a) b
  | Not a | Cast (_, a) -> fold f acc a

let fields s =
  fold (fun acc x -> match x with Field f when not (List.mem f acc) -> f :: acc | _ -> acc) [] s
  |> List.rev

let calls s =
  fold (fun acc x -> match x with Call (i, _) | Record (i, _, _) -> i :: acc | _ -> acc) [] s
  |> List.sort_uniq Int.compare

let is_packet_pure s =
  fold
    (fun acc x ->
      acc && match x with Pkt_len | Now | Call _ | Record _ -> false | _ -> true)
    true s

type atom =
  | A_field of Packet.Field.t
  | A_prefix of Packet.Field.t * int
  | A_const of int * int
  | A_opaque of t

let log2_exact v =
  let rec go k = if 1 lsl k = v then Some k else if 1 lsl k > v then None else go (k + 1) in
  if v <= 0 then None else go 0

(* Injectivity is what matters: sharding on the underlying field must
   guarantee "equal key part" exactly when the field is equal.  The field
   itself, field ± constant (addition mod 2^w is a bijection), and casts at
   least as wide as the field qualify. *)
let rec classify s =
  match s with
  | Field f -> A_field f
  | Const (w, v) -> A_const (w, v)
  | Bin ((Dsl.Ast.Add | Dsl.Ast.Sub), a, b) -> (
      match (classify a, classify b) with
      | A_field f, A_const _ | A_const _, A_field f -> A_field f
      | _ -> A_opaque s)
  | Bin (Dsl.Ast.Div, a, b) -> (
      (* field / 2^k keeps the field's top (width - k) bits *)
      match (classify a, classify b) with
      | A_field f, A_const (_, v) -> (
          match log2_exact v with
          | Some k when k > 0 && k < Packet.Field.width f -> A_prefix (f, Packet.Field.width f - k)
          | Some 0 -> A_field f
          | _ -> A_opaque s)
      | A_prefix (f, bits), A_const (_, v) -> (
          match log2_exact v with
          | Some k when k > 0 && k < bits -> A_prefix (f, bits - k)
          | Some 0 -> A_prefix (f, bits)
          | _ -> A_opaque s)
      | _ -> A_opaque s)
  | Cast (w, a) -> (
      match classify a with
      | A_field f when w >= Packet.Field.width f -> A_field f
      | A_prefix (f, bits) when w >= bits -> A_prefix (f, bits)
      | A_const (_, v) -> A_const (w, if w >= 62 then v else v land ((1 lsl w) - 1))
      | A_field _ | A_prefix _ | A_opaque _ -> A_opaque s)
  | Pkt_len | Now | Call _ | Record _ | Bin _ | Not _ -> A_opaque s

let rec pp fmt = function
  | Field f -> Packet.Field.pp fmt f
  | Pkt_len -> Format.pp_print_string fmt "pkt_len"
  | Now -> Format.pp_print_string fmt "now"
  | Const (w, v) -> Format.fprintf fmt "%d:%d" v w
  | Call (id, tag) -> Format.fprintf fmt "call%d.%s" id tag
  | Record (id, obj, f) -> Format.fprintf fmt "%s[call%d].%s" obj id f
  | Bin (op, a, b) ->
      let op_str =
        match op with
        | Dsl.Ast.Add -> "+"
        | Dsl.Ast.Sub -> "-"
        | Dsl.Ast.Mul -> "*"
        | Dsl.Ast.Div -> "/"
        | Dsl.Ast.Mod -> "%"
        | Dsl.Ast.Eq -> "=="
        | Dsl.Ast.Neq -> "!="
        | Dsl.Ast.Lt -> "<"
        | Dsl.Ast.Le -> "<="
        | Dsl.Ast.Land -> "&&"
        | Dsl.Ast.Lor -> "||"
      in
      Format.fprintf fmt "(%a %s %a)" pp a op_str pp b
  | Not a -> Format.fprintf fmt "!%a" pp a
  | Cast (w, a) -> Format.fprintf fmt "(%a:%d)" pp a w
