(** The execution tree extracted by exhaustive symbolic execution —
    the paper's "model" (§3.3): every node is a branch condition, a stateful
    operation, or a packet operation, and every node carries the constraints
    that lead to it. *)

type path = (Sym.t * bool) list
(** Branch conditions taken so far, oldest first, with the polarity taken. *)

(** One stateful call site as observed on one path. *)
type call = {
  id : int;  (** unique per (port, path, site) *)
  port : int;  (** device whose symbolic packet triggered it *)
  obj : string;
  kind : Dsl.Interp.op_kind;
  key : Sym.t list option;  (** map/sketch ops: symbolic key parts *)
  index : Sym.t option;  (** vector/chain ops: symbolic index *)
  stored : (string * Sym.t) list;  (** vec_set: fields written; map_put: [("value", v)] *)
  path : path;  (** constraints under which the call happens *)
}

type action =
  | Forward of Sym.t * (Packet.Field.t * Sym.t) list
      (** output device and the header rewrites applied *)
  | Drop

type t =
  | Branch of { cond : Sym.t; t_true : t; t_false : t }
  | Call_node of call * t
  | Action_node of { action : action; path : path }

val leaves : t -> (action * path) list
(** All packet operations with their path constraints. *)

val all_calls : t -> call list
(** Every stateful call in the tree, in traversal order. *)

val count_paths : t -> int

val continuation_of_call : t -> int -> t option
(** The subtree that follows the call with the given id, when present. *)

val find_branch : t -> (Sym.t -> bool) -> (Sym.t * t * t) option
(** Depth-first search for the first branch whose condition satisfies the
    predicate; returns condition and both subtrees. *)

val leaf_action_set : t -> action list
(** The distinct actions reachable in the tree (sorted, deduplicated) — the
    basis for the behavioural-equivalence checks of rule R5. *)

val pp : Format.formatter -> t -> unit
(** Renders the tree with indentation, for diagnostics and the CLI. *)

val pp_action : Format.formatter -> action -> unit

val pp_path : Format.formatter -> path -> unit
