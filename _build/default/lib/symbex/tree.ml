type path = (Sym.t * bool) list

type call = {
  id : int;
  port : int;
  obj : string;
  kind : Dsl.Interp.op_kind;
  key : Sym.t list option;
  index : Sym.t option;
  stored : (string * Sym.t) list;
  path : path;
}

type action = Forward of Sym.t * (Packet.Field.t * Sym.t) list | Drop

type t =
  | Branch of { cond : Sym.t; t_true : t; t_false : t }
  | Call_node of call * t
  | Action_node of { action : action; path : path }

let rec leaves = function
  | Branch { t_true; t_false; _ } -> leaves t_true @ leaves t_false
  | Call_node (_, k) -> leaves k
  | Action_node { action; path } -> [ (action, path) ]

let rec all_calls = function
  | Branch { t_true; t_false; _ } -> all_calls t_true @ all_calls t_false
  | Call_node (c, k) -> c :: all_calls k
  | Action_node _ -> []

let count_paths t = List.length (leaves t)

let rec continuation_of_call t id =
  match t with
  | Branch { t_true; t_false; _ } -> (
      match continuation_of_call t_true id with
      | Some k -> Some k
      | None -> continuation_of_call t_false id)
  | Call_node (c, k) -> if c.id = id then Some k else continuation_of_call k id
  | Action_node _ -> None

let rec find_branch t pred =
  match t with
  | Branch { cond; t_true; t_false } ->
      if pred cond then Some (cond, t_true, t_false)
      else (
        match find_branch t_true pred with
        | Some r -> Some r
        | None -> find_branch t_false pred)
  | Call_node (_, k) -> find_branch k pred
  | Action_node _ -> None

let leaf_action_set t =
  List.map fst (leaves t) |> List.sort_uniq Stdlib.compare

let kind_str = function
  | Dsl.Interp.Op_map_get -> "map_get"
  | Dsl.Interp.Op_map_put -> "map_put"
  | Dsl.Interp.Op_map_erase -> "map_erase"
  | Dsl.Interp.Op_vec_get -> "vec_get"
  | Dsl.Interp.Op_vec_set -> "vec_set"
  | Dsl.Interp.Op_chain_alloc -> "chain_alloc"
  | Dsl.Interp.Op_chain_rejuv -> "chain_rejuvenate"
  | Dsl.Interp.Op_chain_expire -> "expire"
  | Dsl.Interp.Op_sketch_touch -> "sketch_touch"
  | Dsl.Interp.Op_sketch_query -> "sketch_query"

let pp_path fmt path =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.pp_print_string f " && ")
    (fun f (c, b) -> if b then Sym.pp f c else Format.fprintf f "!(%a)" Sym.pp c)
    fmt path

let pp_action fmt = function
  | Drop -> Format.pp_print_string fmt "drop"
  | Forward (port, rewrites) ->
      Format.fprintf fmt "forward(%a)" Sym.pp port;
      List.iter
        (fun (f, v) -> Format.fprintf fmt " [%a := %a]" Packet.Field.pp f Sym.pp v)
        rewrites

let pp_call fmt c =
  Format.fprintf fmt "#%d %s(%s" c.id (kind_str c.kind) c.obj;
  (match c.key with
  | Some key ->
      Format.fprintf fmt ", key=[%a]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") Sym.pp)
        key
  | None -> ());
  (match c.index with Some i -> Format.fprintf fmt ", idx=%a" Sym.pp i | None -> ());
  if c.stored <> [] then
    Format.fprintf fmt ", stores {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
         (fun f (n, v) -> Format.fprintf f "%s=%a" n Sym.pp v))
      c.stored;
  Format.pp_print_string fmt ")"

let rec pp fmt = function
  | Branch { cond; t_true; t_false } ->
      Format.fprintf fmt "@[<v 2>if %a@ %a@]@ @[<v 2>else@ %a@]" Sym.pp cond pp t_true pp
        t_false
  | Call_node (c, k) -> Format.fprintf fmt "%a@ %a" pp_call c pp k
  | Action_node { action; _ } -> pp_action fmt action
