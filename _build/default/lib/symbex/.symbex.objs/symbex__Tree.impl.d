lib/symbex/tree.ml: Dsl Format List Packet Stdlib Sym
