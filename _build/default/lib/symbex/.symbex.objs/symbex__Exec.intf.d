lib/symbex/exec.mli: Dsl Format Tree
