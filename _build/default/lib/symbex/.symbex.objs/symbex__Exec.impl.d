lib/symbex/exec.ml: Array Dsl Format List Packet Sym Tree
