lib/symbex/sym.mli: Dsl Format Packet
