lib/symbex/tree.mli: Dsl Format Packet Sym
