lib/symbex/sym.ml: Dsl Format Int List Packet Stdlib
