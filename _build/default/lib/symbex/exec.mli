(** Exhaustive symbolic execution of NF programs (paper §3.3).

    One symbolic packet is pushed through the NF per input device (RSS is
    configured per port, so the analysis is port-specific).  Branch
    conditions that depend on symbols fork the execution; conditions that
    fold to constants (like [in_port == 0] once the port is fixed) do not.
    The result is a sound and complete model: an execution tree per port
    containing every code path any concrete packet could trigger. *)

type model = {
  nf : Dsl.Ast.t;
  info : Dsl.Check.info;
  trees : Tree.t array;  (** one execution tree per device *)
}

val run : Dsl.Ast.t -> model
(** Raises [Invalid_argument] when the NF does not validate, and [Failure]
    if the tree exceeds the path budget (impossible for loop-free NFs of
    sane size; the budget guards against pathological inputs). *)

val calls : model -> Tree.call list
(** All stateful calls of all ports. *)

val paths : model -> int
(** Total number of execution paths across ports. *)

val pp : Format.formatter -> model -> unit
