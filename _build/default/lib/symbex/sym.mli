(** Symbolic values.

    During exhaustive symbolic execution the packet's header fields, its
    length, the time, and every stateful-call result are opaque symbols;
    expressions over them stay symbolic.  The Constraints Generator decides
    shardability by looking at the *shape* of these values: a key part that
    is (an injective function of) a packet field can steer RSS, a call
    result or a lossy derivation cannot. *)

type t =
  | Field of Packet.Field.t  (** an original header field of the packet *)
  | Pkt_len
  | Now
  | Const of int * int  (** width, value *)
  | Call of int * string  (** stateful-call id, result tag ("value", "index", "count", "ok") *)
  | Record of int * string * string  (** vec_get call id, vector object, field name *)
  | Bin of Dsl.Ast.binop * t * t
  | Not of t
  | Cast of int * t

val equal : t -> t -> bool

val compare : t -> t -> int

val fields : t -> Packet.Field.t list
(** All header fields appearing anywhere inside, without duplicates. *)

val calls : t -> int list
(** All call ids appearing inside. *)

val is_packet_pure : t -> bool
(** No call results, records, time or length — only fields and constants. *)

(** How a key part can be used for sharding. *)
type atom =
  | A_field of Packet.Field.t
      (** equal to an injective function of this one field: packets agreeing
          on the field agree on the part, and vice versa *)
  | A_prefix of Packet.Field.t * int
      (** the top [bits] of the field (a division by a power of two):
          packets agreeing on that prefix agree on the part — how a
          hierarchical heavy hitter keys its subnet levels (§3.5) *)
  | A_const of int * int  (** the same for every packet *)
  | A_opaque of t
      (** anything else — call results, lossy arithmetic, time, length *)

val classify : t -> atom
(** Injective field derivations recognized: the field itself, [field ± c],
    width-preserving casts of those, and [field / 2^k] as a prefix. *)

val pp : Format.formatter -> t -> unit
