(** Static validation of NF programs.

    Rejects programs that would defeat exhaustive symbolic execution or
    concrete interpretation: unbound names, kind mismatches, inconsistent
    key widths on one object, unknown record fields, boolean operators on
    non-boolean widths.  On success returns the width/layout information
    that the interpreter and the symbolic engine share. *)

type info

val check : Ast.t -> (info, string list) result
(** All detected problems, or the binding information. *)

val check_exn : Ast.t -> info
(** Raises [Invalid_argument] with the concatenated problems. *)

val var_width : info -> string -> int
(** Width of an int binding (raises [Not_found] for unknown names). *)

val record_layout : info -> string -> (string * int) list
(** Layout of a record binding. *)

val expr_width : info -> Ast.expr -> int
(** Width in bits of an expression's value. *)

val key_width : info -> string -> int
(** Total key width used with a map or sketch object. *)

val layout_of_object : info -> string -> (string * int) list
(** Layout of a vector object. *)
