type binop = Add | Sub | Mul | Div | Mod | Eq | Neq | Lt | Le | Land | Lor

type expr =
  | Const of int * int
  | Field of Packet.Field.t
  | In_port
  | Now
  | Pkt_len
  | Var of string
  | Record_field of string * string
  | Bin of binop * expr * expr
  | Not of expr
  | Cast of int * expr

type key = expr list

type stmt =
  | If of expr * stmt * stmt
  | Let of string * expr * stmt
  | Map_get of { obj : string; key : key; found : string; value : string; k : stmt }
  | Map_put of { obj : string; key : key; value : expr; ok : string; k : stmt }
  | Map_erase of { obj : string; key : key; k : stmt }
  | Vec_get of { obj : string; index : expr; record : string; k : stmt }
  | Vec_set of { obj : string; index : expr; fields : (string * expr) list; k : stmt }
  | Chain_alloc of { obj : string; index : string; k_ok : stmt; k_fail : stmt }
  | Chain_rejuv of { obj : string; index : expr; k : stmt }
  | Chain_expire of { obj : string; purges : (string * string) list; age_ns : int; k : stmt }
  | Sketch_touch of { obj : string; key : key; k : stmt }
  | Sketch_query of { obj : string; key : key; count : string; k : stmt }
  | Set_field of Packet.Field.t * expr * stmt
  | Forward of expr
  | Drop

type state_decl =
  | Decl_map of { name : string; capacity : int; init : (string * int) list }
  | Decl_vector of { name : string; capacity : int; layout : (string * int) list }
  | Decl_chain of { name : string; capacity : int }
  | Decl_sketch of { name : string; depth : int; width : int }

type t = { name : string; devices : int; state : state_decl list; process : stmt }

let decl_name = function
  | Decl_map { name; _ } | Decl_vector { name; _ } | Decl_chain { name; _ }
  | Decl_sketch { name; _ } ->
      name

let key_of_parts parts =
  let buf = Buffer.create 16 in
  List.iter
    (fun (width, v) ->
      let bytes = (width + 7) / 8 in
      for i = bytes - 1 downto 0 do
        Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
      done)
    parts;
  Buffer.contents buf

let const ?(width = 32) v = Const (width, v)
let ( ==. ) a b = Bin (Eq, a, b)
let ( <>. ) a b = Bin (Neq, a, b)
let ( <. ) a b = Bin (Lt, a, b)
let ( <=. ) a b = Bin (Le, a, b)
let ( &&. ) a b = Bin (Land, a, b)
let ( ||. ) a b = Bin (Lor, a, b)
let ( +. ) a b = Bin (Add, a, b)
let ( -. ) a b = Bin (Sub, a, b)
let ( *. ) a b = Bin (Mul, a, b)
let ( /. ) a b = Bin (Div, a, b)
let ( %. ) a b = Bin (Mod, a, b)

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Land -> "&&"
  | Lor -> "||"

let rec pp_expr fmt = function
  | Const (w, v) -> Format.fprintf fmt "%d:%d" v w
  | Field f -> Packet.Field.pp fmt f
  | In_port -> Format.pp_print_string fmt "in_port"
  | Now -> Format.pp_print_string fmt "now"
  | Pkt_len -> Format.pp_print_string fmt "pkt_len"
  | Var x -> Format.pp_print_string fmt x
  | Record_field (r, f) -> Format.fprintf fmt "%s.%s" r f
  | Bin (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Not e -> Format.fprintf fmt "!%a" pp_expr e
  | Cast (w, e) -> Format.fprintf fmt "(%a : %d)" pp_expr e w

let pp_key fmt key =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp_expr)
    key

let rec pp_stmt fmt = function
  | If (c, t, f) ->
      Format.fprintf fmt "@[<v 2>if %a {@ %a@]@ @[<v 2>} else {@ %a@]@ }" pp_expr c pp_stmt t
        pp_stmt f
  | Let (x, e, k) -> Format.fprintf fmt "let %s = %a@ %a" x pp_expr e pp_stmt k
  | Map_get { obj; key; found; value; k } ->
      Format.fprintf fmt "(%s, %s) = map_get(%s, %a)@ %a" found value obj pp_key key pp_stmt k
  | Map_put { obj; key; value; ok; k } ->
      Format.fprintf fmt "%s = map_put(%s, %a, %a)@ %a" ok obj pp_key key pp_expr value
        pp_stmt k
  | Map_erase { obj; key; k } ->
      Format.fprintf fmt "map_erase(%s, %a)@ %a" obj pp_key key pp_stmt k
  | Vec_get { obj; index; record; k } ->
      Format.fprintf fmt "%s = vec_get(%s, %a)@ %a" record obj pp_expr index pp_stmt k
  | Vec_set { obj; index; fields; k } ->
      Format.fprintf fmt "vec_set(%s, %a, {%a})@ %a" obj pp_expr index
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
           (fun f (n, e) -> Format.fprintf f "%s=%a" n pp_expr e))
        fields pp_stmt k
  | Chain_alloc { obj; index; k_ok; k_fail } ->
      Format.fprintf fmt
        "@[<v 2>match chain_alloc(%s) with@ @[<v 2>| Some %s ->@ %a@]@ @[<v 2>| None ->@ %a@]@]"
        obj index pp_stmt k_ok pp_stmt k_fail
  | Chain_rejuv { obj; index; k } ->
      Format.fprintf fmt "chain_rejuvenate(%s, %a)@ %a" obj pp_expr index pp_stmt k
  | Chain_expire { obj; purges; age_ns; k } ->
      Format.fprintf fmt "expire(%s, [%s], %dns)@ %a" obj
        (String.concat "; " (List.map (fun (m, v) -> m ^ "/" ^ v) purges))
        age_ns pp_stmt k
  | Sketch_touch { obj; key; k } ->
      Format.fprintf fmt "sketch_touch(%s, %a)@ %a" obj pp_key key pp_stmt k
  | Sketch_query { obj; key; count; k } ->
      Format.fprintf fmt "%s = sketch_query(%s, %a)@ %a" count obj pp_key key pp_stmt k
  | Set_field (f, e, k) ->
      Format.fprintf fmt "%a := %a@ %a" Packet.Field.pp f pp_expr e pp_stmt k
  | Forward e -> Format.fprintf fmt "forward(%a)" pp_expr e
  | Drop -> Format.pp_print_string fmt "drop"

let pp_decl fmt = function
  | Decl_map { name; capacity; init } ->
      Format.fprintf fmt "map %s[%d]%s" name capacity
        (if init = [] then "" else Printf.sprintf " (%d static entries)" (List.length init))
  | Decl_vector { name; capacity; layout } ->
      Format.fprintf fmt "vector %s[%d] {%s}" name capacity
        (String.concat ", " (List.map (fun (n, w) -> Printf.sprintf "%s:%d" n w) layout))
  | Decl_chain { name; capacity } -> Format.fprintf fmt "dchain %s[%d]" name capacity
  | Decl_sketch { name; depth; width } ->
      Format.fprintf fmt "sketch %s[%dx%d]" name depth width

let pp fmt t =
  Format.fprintf fmt "@[<v>nf %s (%d devices)@ %a@ @[<v 2>process:@ %a@]@]" t.name t.devices
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_decl)
    t.state pp_stmt t.process
