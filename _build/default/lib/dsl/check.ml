open Ast

type kind = Kmap | Kvector | Kchain | Ksketch

type info = {
  widths : (string, int) Hashtbl.t; (* int binding -> width *)
  records : (string, (string * int) list) Hashtbl.t; (* record binding -> layout *)
  key_widths : (string, int) Hashtbl.t; (* map/sketch -> key width *)
  layouts : (string, (string * int) list) Hashtbl.t; (* vector object -> layout *)
}

let var_width info x = Hashtbl.find info.widths x
let record_layout info r = Hashtbl.find info.records r
let key_width info obj = Hashtbl.find info.key_widths obj
let layout_of_object info obj = Hashtbl.find info.layouts obj

let rec expr_width info = function
  | Const (w, _) -> w
  | Field f -> Packet.Field.width f
  | In_port -> 16
  | Now -> 48
  | Pkt_len -> 16
  | Var x -> ( match Hashtbl.find_opt info.widths x with Some w -> w | None -> 32)
  | Record_field (r, f) -> (
      match Hashtbl.find_opt info.records r with
      | None -> 32
      | Some layout -> ( match List.assoc_opt f layout with Some w -> w | None -> 32))
  | Cast (w, _) -> w
  | Bin ((Eq | Neq | Lt | Le | Land | Lor), _, _) -> 1
  | Bin ((Add | Sub), a, b) -> max (expr_width info a) (expr_width info b)
  | Bin (Mul, a, b) -> min 62 (expr_width info a + expr_width info b)
  | Bin ((Div | Mod), a, _) -> expr_width info a
  | Not _ -> 1

let check nf =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let info =
    {
      widths = Hashtbl.create 16;
      records = Hashtbl.create 16;
      key_widths = Hashtbl.create 16;
      layouts = Hashtbl.create 16;
    }
  in
  if nf.devices < 1 then err "nf %s: needs at least one device" nf.name;
  (* declarations *)
  let kinds = Hashtbl.create 16 in
  let capacities = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let name = decl_name d in
      if Hashtbl.mem kinds name then err "duplicate state declaration %s" name;
      (match d with
      | Decl_map { capacity; _ } | Decl_chain { capacity; _ } ->
          Hashtbl.replace capacities name capacity
      | Decl_vector { capacity; layout; _ } ->
          Hashtbl.replace capacities name capacity;
          if layout = [] then err "vector %s: empty layout" name;
          let names = List.map fst layout in
          if List.length (List.sort_uniq String.compare names) <> List.length names then
            err "vector %s: duplicate layout field" name;
          List.iter
            (fun (f, w) -> if w < 1 || w > 62 then err "vector %s: field %s width %d" name f w)
            layout;
          Hashtbl.replace info.layouts name layout
      | Decl_sketch { depth; width; _ } ->
          if depth < 1 || width < 1 then err "sketch %s: bad dimensions" name);
      Hashtbl.replace kinds name
        (match d with
        | Decl_map _ -> Kmap
        | Decl_vector _ -> Kvector
        | Decl_chain _ -> Kchain
        | Decl_sketch _ -> Ksketch))
    nf.state;
  let expect_kind obj kind what =
    match Hashtbl.find_opt kinds obj with
    | None -> err "%s: unknown object %s" what obj
    | Some k -> if k <> kind then err "%s: object %s has the wrong kind" what obj
  in
  (* Bindings must be unambiguous so width lookup can be a plain table.  A
     continuation duplicated across branches re-binds the same names with the
     same widths, which is fine; only incompatible reuse is rejected. *)
  let bind_var x w =
    if Hashtbl.mem info.records x then err "binding %s reuses a record binding's name" x
    else
      match Hashtbl.find_opt info.widths x with
      | Some w' when w' <> w ->
          err "binding %s reused with a different width (%d vs %d)" x w w'
      | Some _ -> ()
      | None -> Hashtbl.replace info.widths x w
  in
  let bind_record r layout =
    if Hashtbl.mem info.widths r then err "binding %s reuses an int binding's name" r
    else
      match Hashtbl.find_opt info.records r with
      | Some l when l <> layout -> err "record binding %s reused with a different layout" r
      | Some _ -> ()
      | None -> Hashtbl.replace info.records r layout
  in
  let scope = Hashtbl.create 16 in
  (* names visible on the current path *)
  let with_bound names f =
    List.iter (fun n -> Hashtbl.replace scope n ()) names;
    f ();
    List.iter (Hashtbl.remove scope) names
  in
  let rec check_expr e =
    match e with
    | Const (w, v) ->
        if w < 1 || w > 62 then err "constant width %d out of range" w;
        if v < 0 then err "negative constant %d" v
    | Field _ | In_port | Now | Pkt_len -> ()
    | Var x -> if not (Hashtbl.mem scope x) then err "unbound variable %s" x
    | Record_field (r, f) ->
        if not (Hashtbl.mem scope r) then err "unbound record %s" r
        else (
          match Hashtbl.find_opt info.records r with
          | Some layout -> if not (List.mem_assoc f layout) then err "record %s has no field %s" r f
          | None -> err "%s is not a record binding" r)
    | Bin (op, a, b) ->
        check_expr a;
        check_expr b;
        let wa = expr_width info a and wb = expr_width info b in
        (match op with
        | Eq | Neq | Lt | Le ->
            if wa <> wb then
              err "comparison of values of different widths (%d vs %d) in %a" wa wb
                (fun fmt -> Ast.pp_expr fmt)
                e
        | Land | Lor ->
            if wa <> 1 || wb <> 1 then err "boolean operator on non-boolean operands"
        | Add | Sub | Mul | Div | Mod -> ())
    | Not a ->
        check_expr a;
        if expr_width info a <> 1 then err "negation of a non-boolean"
    | Cast (w, a) ->
        check_expr a;
        if w < 1 || w > 62 then err "cast width %d out of range" w
  in
  let check_key obj key what =
    List.iter check_expr key;
    if key = [] then err "%s: empty key for %s" what obj;
    let w = List.fold_left (fun acc e -> acc + expr_width info e) 0 key in
    match Hashtbl.find_opt info.key_widths obj with
    | None -> Hashtbl.replace info.key_widths obj w
    | Some w' ->
        if w <> w' then err "%s: key width %d for %s differs from earlier width %d" what w obj w'
  in
  let check_bool c what =
    check_expr c;
    if expr_width info c <> 1 then err "%s: condition is not boolean" what
  in
  let rec go = function
    | If (c, t, f) ->
        check_bool c "if";
        go t;
        go f
    | Let (x, e, k) ->
        check_expr e;
        bind_var x (expr_width info e);
        with_bound [ x ] (fun () -> go k)
    | Map_get { obj; key; found; value; k } ->
        expect_kind obj Kmap "map_get";
        check_key obj key "map_get";
        bind_var found 1;
        bind_var value 32;
        with_bound [ found; value ] (fun () -> go k)
    | Map_put { obj; key; value; ok; k } ->
        expect_kind obj Kmap "map_put";
        check_key obj key "map_put";
        check_expr value;
        bind_var ok 1;
        with_bound [ ok ] (fun () -> go k)
    | Map_erase { obj; key; k } ->
        expect_kind obj Kmap "map_erase";
        check_key obj key "map_erase";
        go k
    | Vec_get { obj; index; record; k } ->
        expect_kind obj Kvector "vec_get";
        check_expr index;
        (match Hashtbl.find_opt info.layouts obj with
        | Some layout ->
            bind_record record layout;
            with_bound [ record ] (fun () -> go k)
        | None -> go k)
    | Vec_set { obj; index; fields; k } ->
        expect_kind obj Kvector "vec_set";
        check_expr index;
        (match Hashtbl.find_opt info.layouts obj with
        | Some layout ->
            List.iter
              (fun (f, e) ->
                check_expr e;
                if not (List.mem_assoc f layout) then err "vec_set %s: unknown field %s" obj f)
              fields
        | None -> ());
        go k
    | Chain_alloc { obj; index; k_ok; k_fail } ->
        expect_kind obj Kchain "chain_alloc";
        bind_var index 32;
        with_bound [ index ] (fun () -> go k_ok);
        go k_fail
    | Chain_rejuv { obj; index; k } ->
        expect_kind obj Kchain "chain_rejuvenate";
        check_expr index;
        go k
    | Chain_expire { obj; purges; age_ns; k } ->
        expect_kind obj Kchain "expire";
        if purges = [] then err "expire: no purge pairs";
        if age_ns < 0 then err "expire: negative age";
        List.iter
          (fun (map, keyvec) ->
            expect_kind map Kmap "expire";
            expect_kind keyvec Kvector "expire";
            (match
               (Hashtbl.find_opt info.layouts keyvec, Hashtbl.find_opt info.key_widths map)
             with
            | Some layout, Some kw ->
                let lw = List.fold_left (fun acc (_, w) -> acc + w) 0 layout in
                if lw <> kw then
                  err "expire: key vector %s layout width %d differs from map %s key width %d"
                    keyvec lw map kw
            | _ -> ());
            match (Hashtbl.find_opt capacities obj, Hashtbl.find_opt capacities keyvec) with
            | Some a, Some b when a <> b ->
                err "expire: chain %s and key vector %s capacities differ" obj keyvec
            | _ -> ())
          purges;
        go k
    | Sketch_touch { obj; key; k } ->
        expect_kind obj Ksketch "sketch_touch";
        check_key obj key "sketch_touch";
        go k
    | Sketch_query { obj; key; count; k } ->
        expect_kind obj Ksketch "sketch_query";
        check_key obj key "sketch_query";
        bind_var count 32;
        with_bound [ count ] (fun () -> go k)
    | Set_field (_, e, k) ->
        check_expr e;
        go k
    | Forward e -> (
        check_expr e;
        match e with
        | Const (_, p) when p < 0 || p >= nf.devices -> err "forward to unknown device %d" p
        | _ -> ())
    | Drop -> ()
  in
  (* Chain_expire key-width checks need map key widths, which may only be
     learned later in the traversal; run twice and keep the second pass's
     errors (plus the declaration errors gathered above). *)
  let decl_errors = !errors in
  go nf.process;
  errors := decl_errors;
  Hashtbl.reset scope;
  Hashtbl.reset info.widths;
  Hashtbl.reset info.records;
  go nf.process;
  if !errors = [] then Ok info else Error (List.rev !errors)

let check_exn nf =
  match check nf with
  | Ok info -> info
  | Error errs -> invalid_arg (Printf.sprintf "NF %s: %s" nf.name (String.concat "; " errs))
