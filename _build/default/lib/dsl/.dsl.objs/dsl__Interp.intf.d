lib/dsl/interp.mli: Ast Check Instance Packet
