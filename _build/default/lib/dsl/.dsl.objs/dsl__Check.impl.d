lib/dsl/check.ml: Ast Format Hashtbl List Packet Printf String
