lib/dsl/instance.mli: Ast State
