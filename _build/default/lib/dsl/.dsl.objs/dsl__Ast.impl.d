lib/dsl/ast.ml: Buffer Char Format List Packet Printf String
