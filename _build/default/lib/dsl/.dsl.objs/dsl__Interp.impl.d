lib/dsl/interp.ml: Array Ast Check Format Instance List Packet State String
