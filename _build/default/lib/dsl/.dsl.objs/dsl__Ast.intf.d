lib/dsl/ast.mli: Format Packet
