lib/dsl/instance.ml: Array Ast Hashtbl List State
