(** The NF language.

    Network functions handed to Maestro are written against the Vigor-style
    stateful API (map / vector / dchain / sketch) in a small expression and
    statement language.  The language enforces the paper's §5 restrictions
    by construction: state only lives in the declared data structures,
    control flow is a finite tree (no loops), and there is no pointer
    arithmetic — which is what makes exhaustive symbolic execution both
    possible and complete.

    Statements are in continuation style: every stateful call names its
    results and carries the rest of the program, so an NF's [process] is a
    tree whose leaves are packet actions. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** integer division; division by zero yields 0, as NFs guard it *)
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Land  (** logical and on 1-bit values *)
  | Lor

type expr =
  | Const of int * int  (** width in bits, value *)
  | Field of Packet.Field.t  (** header field of the packet being processed *)
  | In_port  (** device the packet arrived on (16 bits) *)
  | Now  (** packet timestamp in ns (48 bits) *)
  | Pkt_len  (** frame length in bytes (16 bits) *)
  | Var of string  (** an int binding *)
  | Record_field of string * string  (** record binding, field name *)
  | Bin of binop * expr * expr
  | Not of expr
  | Cast of int * expr  (** truncate/zero-extend to the given width *)

(** A stateful key is the big-endian concatenation of expressions. *)
type key = expr list

type stmt =
  | If of expr * stmt * stmt
  | Let of string * expr * stmt
  | Map_get of { obj : string; key : key; found : string; value : string; k : stmt }
      (** [found] is a 1-bit binding, [value] a 32-bit one (garbage when not
          found, as in Vigor). *)
  | Map_put of { obj : string; key : key; value : expr; ok : string; k : stmt }
  | Map_erase of { obj : string; key : key; k : stmt }
  | Vec_get of { obj : string; index : expr; record : string; k : stmt }
  | Vec_set of { obj : string; index : expr; fields : (string * expr) list; k : stmt }
      (** Fields not listed keep their stored value. *)
  | Chain_alloc of { obj : string; index : string; k_ok : stmt; k_fail : stmt }
      (** Allocate a fresh index touched at the packet time. *)
  | Chain_rejuv of { obj : string; index : expr; k : stmt }
  | Chain_expire of { obj : string; purges : (string * string) list; age_ns : int; k : stmt }
      (** Expire every flow untouched for [age_ns]: free its chain index and,
          for each [(map, keyvec)] purge pair, rebuild the key from the key
          vector's record and erase it from that map — the Vigor
          [expire_items_single_map] idiom, generalized to NFs (like the NAT)
          whose flows live in several maps. *)
  | Sketch_touch of { obj : string; key : key; k : stmt }
  | Sketch_query of { obj : string; key : key; count : string; k : stmt }
      (** Binds the count-min estimate (32 bits). *)
  | Set_field of Packet.Field.t * expr * stmt  (** header rewrite *)
  | Forward of expr  (** output device *)
  | Drop

type state_decl =
  | Decl_map of { name : string; capacity : int; init : (string * int) list }
      (** [init] pre-populates the map at start-up; a map that is never
          written by [process] is read-only state (no coordination needed). *)
  | Decl_vector of { name : string; capacity : int; layout : (string * int) list }
      (** [layout]: field name and width in bits, in serialization order. *)
  | Decl_chain of { name : string; capacity : int }
  | Decl_sketch of { name : string; depth : int; width : int }

type t = {
  name : string;
  devices : int;  (** number of ports, numbered [0 .. devices-1] *)
  state : state_decl list;
  process : stmt;
}

val decl_name : state_decl -> string

val key_of_parts : (int * int) list -> string
(** Serialize (width, value) pairs into the byte-string key representation
    used by map instances — also how [Decl_map.init] keys must be built. *)

(** {1 Convenience constructors} *)

val const : ?width:int -> int -> expr
(** Defaults to 32 bits. *)

val ( ==. ) : expr -> expr -> expr

val ( <>. ) : expr -> expr -> expr

val ( <. ) : expr -> expr -> expr

val ( <=. ) : expr -> expr -> expr

val ( &&. ) : expr -> expr -> expr

val ( ||. ) : expr -> expr -> expr

val ( +. ) : expr -> expr -> expr

val ( -. ) : expr -> expr -> expr

val ( *. ) : expr -> expr -> expr

val ( /. ) : expr -> expr -> expr

val ( %. ) : expr -> expr -> expr

val pp_expr : Format.formatter -> expr -> unit

val pp_stmt : Format.formatter -> stmt -> unit

val pp : Format.formatter -> t -> unit
