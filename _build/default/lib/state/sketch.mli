(** A count-min sketch (paper Table 1, used by the Connection Limiter).

    [depth] independent hash rows of [width] counters; an item's estimated
    count is the minimum of its [depth] counters, which can only
    over-estimate.  The CL drops a new connection when every indexed entry
    surpasses the limit — i.e. when the estimate exceeds it (§6.1). *)

type t

val create : ?depth:int -> ?width:int -> unit -> t
(** Defaults: depth 5 (the paper's default), width 4096. *)

val depth : t -> int

val width : t -> int

val increment : t -> string -> unit

val add : t -> string -> int -> unit

val count : t -> string -> int
(** The count-min estimate. *)

val over_limit : t -> string -> limit:int -> bool
(** Whether all of the item's entries surpass [limit] — the CL's drop test. *)

val clear : t -> unit
(** Reset all counters (the periodic refresh of a time-framed limiter). *)

val memory_bytes : t -> int
(** Footprint in bytes (4 per counter), for the cache model. *)
