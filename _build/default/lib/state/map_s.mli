(** The Vigor map: integers indexed by arbitrary byte-string keys, with a
    fixed capacity (paper Table 1).

    Two operations access the same stored entry iff they use the same key —
    the property the Constraints Generator's rule R1 relies on.  The map
    never resizes: when full, [put] fails and the NF observes it (the
    sequential semantics that sharded per-core instances must reproduce
    locally, §4 "State sharding"). *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : t -> int

val size : t -> int

val get : t -> string -> int option

val mem : t -> string -> bool

val put : t -> string -> int -> bool
(** Insert or overwrite; [false] iff the map is full and the key absent. *)

val erase : t -> string -> bool
(** [true] iff the key was present. *)

val iter : t -> (string -> int -> unit) -> unit

val clear : t -> unit

val pp : Format.formatter -> t -> unit
