type 'a t = { default : 'a; data : 'a array }

let create ~capacity ~default =
  if capacity < 1 then invalid_arg "Vector.create: capacity must be >= 1";
  { default; data = Array.make capacity default }

let capacity t = Array.length t.data

let check t i = if i < 0 || i >= Array.length t.data then invalid_arg "Vector: index out of range"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let update t i f =
  check t i;
  t.data.(i) <- f t.data.(i)

let iteri t f = Array.iteri f t.data
let reset t = Array.fill t.data 0 (Array.length t.data) t.default
