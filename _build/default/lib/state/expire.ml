let expire_single_map chain ~keys ~map ~threshold =
  let freed = Dchain.expire_before chain ~threshold in
  List.iter (fun i -> ignore (Map_s.erase map (Vector.get keys i))) freed;
  List.length freed

let allocate_flow chain ~keys ~map ~key ~now =
  match Dchain.allocate chain ~now with
  | None -> None
  | Some i ->
      if Map_s.put map key i then begin
        Vector.set keys i key;
        Some i
      end
      else begin
        (* map full despite a free index: undo the allocation *)
        ignore (Dchain.free chain i);
        None
      end
