(** Flow-table expiry: the Vigor [expire_items_single_map] idiom.

    A flow table is a {!Map_s} from flow key to index, a {!Dchain} that owns
    the indices and their ages, and {!Vector}s holding per-flow data, one of
    which holds the key itself so expired map entries can be removed. *)

val expire_single_map :
  Dchain.t -> keys:string Vector.t -> map:Map_s.t -> threshold:int -> int
(** Free every index last touched before [threshold], erase the matching map
    entries, and return how many flows expired. *)

val allocate_flow :
  Dchain.t -> keys:string Vector.t -> map:Map_s.t -> key:string -> now:int -> int option
(** Allocate an index for a new flow and record [key] in both the map and
    the key vector; [None] when the table is full. *)
