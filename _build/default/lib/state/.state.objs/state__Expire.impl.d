lib/state/expire.ml: Dchain List Map_s Vector
