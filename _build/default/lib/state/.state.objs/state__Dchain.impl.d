lib/state/dchain.ml: Array Format List
