lib/state/vector.mli:
