lib/state/map_s.mli: Format
