lib/state/vector.ml: Array
