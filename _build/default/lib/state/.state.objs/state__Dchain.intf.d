lib/state/dchain.mli: Format
