lib/state/expire.mli: Dchain Map_s Vector
