lib/state/sketch.ml: Array Hashtbl
