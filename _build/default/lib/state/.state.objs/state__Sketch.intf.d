lib/state/sketch.mli:
