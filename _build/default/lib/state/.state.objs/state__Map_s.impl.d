lib/state/map_s.ml: Format Hashtbl
