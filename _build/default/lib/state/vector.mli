(** The Vigor vector: arbitrary data indexed by integers in
    [0 .. capacity-1] (paper Table 1).  NFs use it to store per-flow records
    at the index a {!Dchain} allocated. *)

type 'a t

val create : capacity:int -> default:'a -> 'a t

val capacity : 'a t -> int

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of range — the DSL guarantees indices
    come from a dchain of the same capacity. *)

val set : 'a t -> int -> 'a -> unit

val update : 'a t -> int -> ('a -> 'a) -> unit

val iteri : 'a t -> (int -> 'a -> unit) -> unit

val reset : 'a t -> unit
(** Restore every slot to the default. *)
