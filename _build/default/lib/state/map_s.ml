type t = { capacity : int; table : (string, int) Hashtbl.t }

let create ~capacity =
  if capacity < 1 then invalid_arg "Map_s.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create (min capacity 4096) }

let capacity t = t.capacity
let size t = Hashtbl.length t.table
let get t k = Hashtbl.find_opt t.table k
let mem t k = Hashtbl.mem t.table k

let put t k v =
  if Hashtbl.mem t.table k then begin
    Hashtbl.replace t.table k v;
    true
  end
  else if Hashtbl.length t.table >= t.capacity then false
  else begin
    Hashtbl.replace t.table k v;
    true
  end

let erase t k =
  if Hashtbl.mem t.table k then begin
    Hashtbl.remove t.table k;
    true
  end
  else false

let iter t f = Hashtbl.iter f t.table
let clear t = Hashtbl.reset t.table

let pp fmt t = Format.fprintf fmt "map[%d/%d]" (size t) t.capacity
