type t = { depth : int; width : int; rows : int array array }

let create ?(depth = 5) ?(width = 4096) () =
  if depth < 1 || width < 1 then invalid_arg "Sketch.create";
  { depth; width; rows = Array.init depth (fun _ -> Array.make width 0) }

let depth t = t.depth
let width t = t.width

(* Per-row salted hashing; Hashtbl.hash on the salted string gives
   independent-enough rows for a simulator. *)
let index t row key = Hashtbl.hash (row, key) mod t.width

let add t key n =
  for row = 0 to t.depth - 1 do
    let i = index t row key in
    t.rows.(row).(i) <- t.rows.(row).(i) + n
  done

let increment t key = add t key 1

let count t key =
  let m = ref max_int in
  for row = 0 to t.depth - 1 do
    m := min !m t.rows.(row).(index t row key)
  done;
  !m

let over_limit t key ~limit = count t key > limit

let clear t = Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.rows

let memory_bytes t = 4 * t.depth * t.width
