(** NF-aware benchmark workloads.

    The evaluation's default traffic (§6.4) is uniformly-distributed,
    read-heavy, 64-byte packets: sessions are established in a warmup pass
    and the measured body mostly revisits them (a small fresh-flow residue
    keeps it "read-heavy" rather than read-only).  Some NFs need appropriate
    traffic to be exercised meaningfully:

    - the NAT's reply packets must target the external address and the
      allocated port, so replies are synthesized by observing the NAT's own
      translations;
    - the LB serves WAN clients against LAN backends, so backends register
      during warmup and the body arrives from the WAN;
    - the static bridge only forwards frames addressed to its configured
      MAC bindings. *)

type t = {
  label : string;
  nf : Dsl.Ast.t;
  trace : Packet.Pkt.t array;
  skip : int;  (** warmup prefix to exclude from profiling *)
}

val read_heavy :
  ?seed:int -> ?flows:int -> ?pkts:int -> ?size:int -> ?fresh:float -> string -> t
(** Per-NF appropriate steady-state traffic for a registry NF name. *)

val zipf :
  ?seed:int -> ?pkts:int -> ?size:int -> string -> t
(** The paper's Zipfian workload (1k flows, 48 = 80 %) for a registry NF. *)

val profile_of : t -> Profile.t

val body : t -> Packet.Pkt.t array
(** The measured part of the trace (after warmup). *)
