type sample = { avg_us : float; p50_us : float; p99_us : float; stddev_us : float }

(* Fixed round-trip path: TG tx ring + wire + DUT rx/tx + TG rx, measured
   ~10.5 us on the testbed class we model. *)
let fixed_path_us = 10.5

let probe ?(machine = Machine.xeon_6226r) ?(params = Cost.default) ?(probes = 1000)
    ?(seed = 7) (plan : Maestro.Plan.t) (profile : Profile.t) =
  let rng = Random.State.make [| seed |] in
  let shards =
    match plan.Maestro.Plan.strategy with Maestro.Plan.Shared_nothing -> plan.Maestro.Plan.cores | _ -> 1
  in
  let ws = Cost.working_set_bytes profile ~shards in
  let cycles = Cost.packet_cycles ~params machine profile ~ws_bytes:ws in
  let proc_us = cycles /. machine.Machine.freq_hz *. 1e6 in
  let draws =
    Array.init probes (fun _ ->
        (* light-load queueing jitter: a few buffered packets at most *)
        let jitter = Random.State.float rng 1.0 +. Random.State.float rng 1.0 in
        fixed_path_us +. proc_us +. jitter)
  in
  Array.sort Float.compare draws;
  let n = float_of_int probes in
  let avg = Array.fold_left ( +. ) 0.0 draws /. n in
  let var = Array.fold_left (fun a x -> a +. ((x -. avg) ** 2.0)) 0.0 draws /. n in
  {
    avg_us = avg;
    p50_us = draws.(probes / 2);
    p99_us = draws.(probes * 99 / 100);
    stddev_us = Float.sqrt var;
  }
