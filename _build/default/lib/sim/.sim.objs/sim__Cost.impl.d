lib/sim/cost.ml: Float Machine Profile
