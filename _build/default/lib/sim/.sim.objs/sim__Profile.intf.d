lib/sim/profile.mli: Dsl Format Packet
