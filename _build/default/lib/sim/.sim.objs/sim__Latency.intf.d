lib/sim/latency.mli: Cost Machine Maestro Profile
