lib/sim/machine.ml: Float
