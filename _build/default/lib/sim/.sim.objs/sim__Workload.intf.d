lib/sim/workload.mli: Dsl Packet Profile
