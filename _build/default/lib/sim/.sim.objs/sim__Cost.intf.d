lib/sim/cost.mli: Machine Profile
