lib/sim/machine.mli:
