lib/sim/latency.ml: Array Cost Float Machine Maestro Profile Random
