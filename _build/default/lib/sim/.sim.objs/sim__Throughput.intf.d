lib/sim/throughput.mli: Cost Machine Maestro Packet Profile
