lib/sim/throughput.ml: Array Cost Dsl Float Machine Maestro Nic Packet Profile
