lib/sim/workload.ml: Array Dsl Fun List Nfs Packet Profile Random Traffic
