lib/sim/profile.ml: Array Dsl Float Format Hashtbl List Option Packet
