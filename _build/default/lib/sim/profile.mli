(** Trace-driven NF profiling.

    One sequential pass over the workload gathers everything the cost model
    needs: stateful-operation mix, the read/write-packet split under the
    speculative lock discipline, the TM write rate (where rejuvenation
    counts — hardware transactions get no per-core aging trick), flow-count
    and skew statistics (the effective flow count is [exp] of the empirical
    entropy, which captures why Zipfian traffic caches better), and the
    state footprint per flow. *)

type t = {
  pkts : int;
  reads_per_pkt : float;  (** stateful reads (rejuvenation included) *)
  writes_per_pkt : float;  (** writes under the lock discipline *)
  tm_writes_per_pkt : float;  (** writes as a transaction sees them *)
  chain_ops_per_pkt : float;
  write_pkt_fraction : float;  (** packets needing the write lock *)
  distinct_flows : int;
  effective_flows : float;  (** exp(entropy) of the packet-over-flow distribution *)
  avg_frame_bytes : float;
  bytes_per_flow : float;  (** marginal state footprint *)
  flow_capacity : int;  (** most flows the NF can track (smallest map) *)
  fixed_state_bytes : float;  (** footprint independent of flow count (sketches) *)
  drops : int;  (** packets the NF dropped (sanity signal) *)
}

val of_trace : ?skip:int -> Dsl.Ast.t -> Packet.Pkt.t array -> t
(** [skip] packets are executed (warming flow tables up) but excluded from
    the statistics — how the paper's read-heavy steady state is profiled
    without counting session establishment as churn. *)

val pp : Format.formatter -> t -> unit
