(** The latency model for the §6.4 probe experiment.

    Under light load (1 Gbps background, far from any bottleneck) latency is
    dominated by fixed costs: NIC/DMA/ring traversal on both hosts plus the
    NF's per-packet processing.  Parallelization does not add to it — RSS
    steering happens in NIC hardware — which is the paper's observation:
    sequential and parallel NFs measure alike (~11 µs, ~12 µs for the CL). *)

type sample = { avg_us : float; p50_us : float; p99_us : float; stddev_us : float }

val probe :
  ?machine:Machine.t ->
  ?params:Cost.params ->
  ?probes:int ->
  ?seed:int ->
  Maestro.Plan.t ->
  Profile.t ->
  sample
(** Draw latency probes: fixed path cost + processing cycles + small
    queueing jitter. *)
