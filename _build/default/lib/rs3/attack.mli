(** The state-sharding attack of paper §5 — and why key randomization
    blunts it.

    An attacker who knows an NF's RSS key can synthesize flows whose
    Toeplitz hashes collide exactly: for a fixed key the hash is a linear
    map of the input bits, so "inputs hashing to [target]" is one more GF(2)
    system.  Colliding flows land in the same indirection-table entry, pile
    onto one core, and can exhaust that core's (capacity-divided) state with
    far fewer flows than the sequential NF would need.

    Maestro's defense is that RS3 draws keys randomly from the solution
    space: a collision set crafted against one deployment's key spreads
    normally under another's. *)

val colliding_packets :
  key:Bitvec.t ->
  field_set:Nic.Field_set.t ->
  target_hash:int ->
  rng:Random.State.t ->
  n:int ->
  Packet.Pkt.t list
(** [n] distinct TCP packets whose RSS hash under [key]/[field_set] is
    exactly [target_hash].  Raises [Invalid_argument] when no input hashes
    to the target (possible for rank-deficient keys). *)

val collision_rate : key:Bitvec.t -> field_set:Nic.Field_set.t -> Packet.Pkt.t list -> float
(** Fraction of the packets sharing the most common hash — 1.0 means the
    attack set fully collides. *)
