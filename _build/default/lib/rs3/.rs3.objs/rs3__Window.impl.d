lib/rs3/window.ml: Array Bitvec Cstr Gf2 List Nic Option Problem Stdlib
