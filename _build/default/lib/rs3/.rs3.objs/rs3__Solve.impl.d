lib/rs3/solve.ml: Array Bitvec Gf2 List Printf Random Sat Validate Window
