lib/rs3/validate.mli: Bitvec Nic Problem Random
