lib/rs3/window.mli: Bitvec Gf2 Problem
