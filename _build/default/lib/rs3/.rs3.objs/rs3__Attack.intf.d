lib/rs3/attack.mli: Bitvec Nic Packet Random
