lib/rs3/problem.mli: Cstr Format Nic
