lib/rs3/attack.ml: Array Bitvec Fun Gf2 Hashtbl List Nic Option Packet Random
