lib/rs3/problem.ml: Array Cstr Format Hashtbl List Nic Packet
