lib/rs3/cstr.mli: Format Packet
