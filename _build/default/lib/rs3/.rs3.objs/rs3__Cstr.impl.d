lib/rs3/cstr.ml: Field Format List Packet Printf
