lib/rs3/validate.ml: Array Cstr Format Hashtbl List Nic Packet Problem Random
