lib/rs3/solve.mli: Bitvec Problem
