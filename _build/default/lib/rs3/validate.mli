(** Independent validation of RSS keys.

    The window reduction is exact, but solutions are still re-checked the
    way the paper's artifact does: hash randomly drawn packet pairs that
    satisfy each constraint and require equal hashes; and measure how well
    each key spreads unconstrained traffic over the indirection table —
    rejecting the degenerate keys §4 warns about (e.g. hashes that can only
    take two values, or the all-zero hash a disjoint-requirement system
    forces). *)

val check_constraints :
  Problem.t -> keys:Bitvec.t array -> rng:Random.State.t -> trials:int -> (unit, string) result
(** For every constraint, draw [trials] satisfying packet pairs and compare
    hashes.  The first violated constraint is reported. *)

type spread = {
  distinct_hashes : int;
  bucket_imbalance : float;
      (** max/mean occupancy over the hash-indexed buckets; 1.0 is ideal *)
  nonempty_buckets : int;
      (** buckets (indexed by the low hash bits, as the indirection table
          is) that received at least one packet — a key whose variability
          sits only in the high hash bits fails here *)
  constant_hash : bool;
}

val spread_of_key :
  key:Bitvec.t -> field_set:Nic.Field_set.t -> rng:Random.State.t -> trials:int -> spread

val quality_ok : Problem.t -> keys:Bitvec.t array -> rng:Random.State.t -> bool
(** The paper's acceptance test: every port's key must spread unconstrained
    traffic (no constant or two-value hashes, no pathological bucket
    skew). *)
