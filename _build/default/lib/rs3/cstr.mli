(** Sharding constraints, RS3's input language (paper §3.5).

    A constraint relates packets [d] arriving on [port_a] and [d'] on
    [port_b]: if every listed field pair is equal ([d.fa = d'.fb]) and
    [d ≠ d'], the two packets' RSS hashes must match so they reach the same
    core.  A constraint set is a conjunction of such implications (the
    disjunction of the paper's §3.4 is already decomposed: [(C1 ∨ C2) → H]
    is [(C1 → H) ∧ (C2 → H)]). *)

type pair = {
  fa : Packet.Field.t;  (** field of the port-a packet *)
  fb : Packet.Field.t;  (** field of the port-b packet *)
  bits : int;  (** how many leading bits must agree; the full width for
                   whole-field equality, less for subnet/prefix sharding
                   (the HHH case of §3.5) *)
}

type t = { port_a : int; port_b : int; pairs : pair list }

val make : port_a:int -> port_b:int -> (Packet.Field.t * Packet.Field.t) list -> t
(** Whole-field equalities.  Normalizes so that [port_a <= port_b]
    (C_ij = C_ji, §3.5) and checks width agreement.  Raises
    [Invalid_argument] on width mismatch or an empty pair list. *)

val make_sliced : port_a:int -> port_b:int -> pair list -> t
(** Prefix-aware variant; [bits] must be positive and within both fields'
    widths. *)

val same_flow : port:int -> Packet.Field.t list -> t
(** Packets on one port agreeing on all the given fields must meet: the
    plain per-flow constraint. *)

val symmetric : port_a:int -> port_b:int -> t
(** The firewall/NAT session symmetry: src/dst addresses and ports swapped
    between the two ports. *)

val fields_of_port : t -> int -> Packet.Field.t list
(** Fields this constraint mentions for packets of the given port. *)

val is_self_identity : t -> bool
(** Same port and every pair is [f = f] — vacuously satisfied by any key
    (the hash is a function). *)

val pp : Format.formatter -> t -> unit
