(** Reduction of RS3 constraints to linear equations on key bits.

    {b Theory.}  Toeplitz hash bit [b] of input [d] under key [k] is
    [h_b(k,d) = ⊕_x d(x) ∧ k(x+b)] (paper Eq. 1).  Call
    [w_k(x) = (k(x), …, k(x+31))] the {e window} of input bit [x].  For a
    constraint "[d] on port [a] and [d'] on port [b] agree on field pairs
    π ⇒ equal hashes", expand:

    [h(k_a,d) ⊕ h(k_b,d') = ⊕_{x∈dom π} d(x)·(w_a(x) ⊕ w_b(π x))
                           ⊕ ⊕_{x∉dom π} d(x)·w_a(x)
                           ⊕ ⊕_{y∉ran π} d'(y)·w_b(y)]

    Since the constrained packet pairs span all assignments of the matched
    bits and leave the unmatched bits free, the sum vanishes for {e all} of
    them iff every coefficient does:

    - [w_a(x) = w_b(π x)] for matched bits, and
    - [w_a(x) = 0], [w_b(y) = 0] for unmatched bits.

    These are plain GF(2) equations on key bits — Equation 3 becomes a
    linear system, solved exactly (no quantifier, no search).  The paper's
    [d ≠ d'] proviso only removes single points from the span and does not
    change the coefficient argument.

    The window-zero equations are also how NIC field-set limitations are
    absorbed: a Policer on an E810 must hash the ports-bearing set, and the
    equations cancel the port windows out of the key (§6.1). *)

type equation =
  | Equal of int * int * int * int  (** [Equal (pa, i, pb, j)]: key bit [i] of port [pa] equals bit [j] of port [pb] *)
  | Zero of int * int  (** [Zero (p, i)]: key bit [i] of port [p] is 0 *)

val equations : Problem.t -> equation list
(** Deduplicated equations for all constraints of the problem.
    Self-identity constraints contribute nothing. *)

val var_of : Problem.t -> port:int -> bit:int -> int
(** Flat variable index for the GF(2)/SAT encodings. *)

val total_vars : Problem.t -> int

val to_gf2 : Problem.t -> Gf2.System.t
(** The equations as a linear system over all ports' key bits. *)

val keys_of_solution : Problem.t -> bool array -> Bitvec.t array
(** Extract per-port keys from a variable assignment. *)
