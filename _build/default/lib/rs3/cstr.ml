open Packet

type pair = { fa : Field.t; fb : Field.t; bits : int }

type t = { port_a : int; port_b : int; pairs : pair list }

let make_sliced ~port_a ~port_b pairs =
  if pairs = [] then invalid_arg "Cstr.make: empty pair list";
  List.iter
    (fun { fa; fb; bits } ->
      if bits < 1 || bits > Field.width fa || bits > Field.width fb then
        invalid_arg
          (Printf.sprintf "Cstr.make: %d bits out of range for %s~%s" bits (Field.to_string fa)
             (Field.to_string fb)))
    pairs;
  if port_a <= port_b then { port_a; port_b; pairs }
  else
    {
      port_a = port_b;
      port_b = port_a;
      pairs = List.map (fun { fa; fb; bits } -> { fa = fb; fb = fa; bits }) pairs;
    }

let make ~port_a ~port_b pairs =
  List.iter
    (fun (fa, fb) ->
      if Field.width fa <> Field.width fb then
        invalid_arg
          (Printf.sprintf "Cstr.make: width mismatch %s vs %s" (Field.to_string fa)
             (Field.to_string fb)))
    pairs;
  make_sliced ~port_a ~port_b
    (List.map (fun (fa, fb) -> { fa; fb; bits = Field.width fa }) pairs)

let same_flow ~port fields = make ~port_a:port ~port_b:port (List.map (fun f -> (f, f)) fields)

let symmetric ~port_a ~port_b =
  make ~port_a ~port_b
    [
      (Field.Ip_src, Field.Ip_dst);
      (Field.Ip_dst, Field.Ip_src);
      (Field.Src_port, Field.Dst_port);
      (Field.Dst_port, Field.Src_port);
    ]

let fields_of_port t port =
  let a = if t.port_a = port then List.map (fun p -> p.fa) t.pairs else [] in
  let b = if t.port_b = port then List.map (fun p -> p.fb) t.pairs else [] in
  List.sort_uniq Field.compare (a @ b)

let is_self_identity t =
  t.port_a = t.port_b
  && List.for_all (fun { fa; fb; bits } -> Field.equal fa fb && bits = Field.width fa) t.pairs

let pp_pair fmt { fa; fb; bits } =
  if bits = Field.width fa && bits = Field.width fb then
    Format.fprintf fmt "%s=%s" (Field.to_string fa) (Field.to_string fb)
  else Format.fprintf fmt "%s[0:%d]=%s[0:%d]" (Field.to_string fa) bits (Field.to_string fb) bits

let pp fmt t =
  Format.fprintf fmt "p%d~p%d: %a" t.port_a t.port_b
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " & ") pp_pair)
    t.pairs
