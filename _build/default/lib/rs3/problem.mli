(** An RS3 problem: find one RSS key per port, over chosen per-port field
    sets, satisfying a set of constraints (Equation 3 of the paper,
    generalized to multiple keys and field sets). *)

type t = {
  nic : Nic.Model.t;
  field_sets : Nic.Field_set.t array;  (** one per port; index = port *)
  constraints : Cstr.t list;
}

val make : ?nic:Nic.Model.t -> field_sets:Nic.Field_set.t list -> Cstr.t list -> t
(** Validates that every field set is supported by the NIC and that every
    constraint's fields are contained in its port's field set.  Raises
    [Invalid_argument] otherwise. *)

val for_constraints : ?nic:Nic.Model.t -> nports:int -> Cstr.t list -> (t, string) result
(** Picks, per port, the smallest NIC-supported field set covering that
    port's constrained fields (ports with no constraints get the full
    tuple set).  [Error] when some field cannot be hashed by the NIC. *)

val nports : t -> int

val key_bits : t -> int
(** Bits per key on this NIC. *)

val pp : Format.formatter -> t -> unit
