type equation = Equal of int * int * int * int | Zero of int * int

let offset_exn fs f =
  match Nic.Field_set.offset fs f with
  | Some o -> o
  | None -> invalid_arg "Rs3.Window: field outside the port's field set"

(* No early-out for self-identity constraints: a partial identity (the
   Policer's "same dst-IP" on a ports-bearing field set) is NOT vacuous — it
   demands that all other windows cancel.  A full-tuple identity naturally
   yields no equations below. *)
let equations_of_constraint (p : Problem.t) (c : Cstr.t) =
  begin
    let a = c.Cstr.port_a and b = c.Cstr.port_b in
    let fs_a = p.Problem.field_sets.(a) and fs_b = p.Problem.field_sets.(b) in
    let len_a = Nic.Field_set.input_bits fs_a and len_b = Nic.Field_set.input_bits fs_b in
    let dom = Array.make len_a false and ran = Array.make len_b false in
    let eqs = ref [] in
    List.iter
      (fun { Cstr.fa; fb; bits } ->
        let oa = offset_exn fs_a fa and ob = offset_exn fs_b fb in
        (* only the leading [bits] of the field slices are matched; the
           remaining slice bits stay unmatched and get their windows zeroed
           below.  A slice shorter than the pair demands is coarser sharding
           — always safe — so clamp. *)
        let sa = Option.value ~default:bits (Nic.Field_set.slice_bits fs_a fa) in
        let sb = Option.value ~default:bits (Nic.Field_set.slice_bits fs_b fb) in
        let bits = min bits (min sa sb) in
        for i = 0 to bits - 1 do
          dom.(oa + i) <- true;
          ran.(ob + i) <- true;
          if not (a = b && oa + i = ob + i) then
            for t = 0 to 31 do
              eqs := Equal (a, oa + i + t, b, ob + i + t) :: !eqs
            done
        done)
      c.Cstr.pairs;
    (* Unmatched input bits: their windows must vanish.  On a same-port
       constraint a bit is unmatched if it is missing from either side. *)
    let zero port x = for t = 0 to 31 do eqs := Zero (port, x + t) :: !eqs done in
    if a = b then
      for x = 0 to len_a - 1 do
        if not (dom.(x) && ran.(x)) then zero a x
      done
    else begin
      for x = 0 to len_a - 1 do
        if not dom.(x) then zero a x
      done;
      for y = 0 to len_b - 1 do
        if not ran.(y) then zero b y
      done
    end;
    !eqs
  end

let equations p =
  List.concat_map (equations_of_constraint p) p.Problem.constraints
  |> List.sort_uniq Stdlib.compare

let var_of p ~port ~bit = (port * Problem.key_bits p) + bit

let total_vars p = Problem.nports p * Problem.key_bits p

let to_gf2 p =
  let sys = Gf2.System.create ~cols:(total_vars p) in
  List.iter
    (fun eq ->
      match eq with
      | Equal (pa, i, pb, j) ->
          Gf2.System.add_equal sys (var_of p ~port:pa ~bit:i) (var_of p ~port:pb ~bit:j)
      | Zero (pt, i) -> Gf2.System.add_zero sys (var_of p ~port:pt ~bit:i))
    (equations p);
  sys

let keys_of_solution p x =
  let kb = Problem.key_bits p in
  Array.init (Problem.nports p) (fun port ->
      Bitvec.init kb (fun bit -> x.(var_of p ~port ~bit)))
