type t = { nic : Nic.Model.t; field_sets : Nic.Field_set.t array; constraints : Cstr.t list }

let validate t =
  Array.iter
    (fun fs ->
      if not (Nic.Model.supports t.nic fs) then
        invalid_arg
          (Format.asprintf "Rs3.Problem: %s does not support %a" (Nic.Model.name t.nic)
             Nic.Field_set.pp fs))
    t.field_sets;
  List.iter
    (fun (c : Cstr.t) ->
      List.iter
        (fun port ->
          if port < 0 || port >= Array.length t.field_sets then
            invalid_arg "Rs3.Problem: constraint port out of range";
          List.iter
            (fun f ->
              match Nic.Field_set.offset t.field_sets.(port) f with
              | Some _ -> ()
              | None ->
                  invalid_arg
                    (Format.asprintf "Rs3.Problem: field %a not in port %d's field set"
                       Packet.Field.pp f port))
            (Cstr.fields_of_port c port))
        [ c.Cstr.port_a; c.Cstr.port_b ])
    t.constraints

let make ?(nic = Nic.Model.E810) ~field_sets constraints =
  let t = { nic; field_sets = Array.of_list field_sets; constraints } in
  validate t;
  t

let for_constraints ?(nic = Nic.Model.E810) ~nports constraints =
  (* unconstrained ports hash the full tuple for load balancing *)
  let default = Nic.Field_set.ipv4_tcp in
  let sets = Array.make nports default in
  let missing = ref None in
  (* per port, the fewest leading bits any constraint demands of each field:
     the exact hash-input slice (hashing less than a requirement demands is
     coarser sharding, which is always safe) *)
  let slice_req port =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (c : Cstr.t) ->
        List.iter
          (fun { Cstr.fa; fb; bits } ->
            let note f =
              match Hashtbl.find_opt tbl f with
              | Some b when b <= bits -> ()
              | _ -> Hashtbl.replace tbl f bits
            in
            if c.Cstr.port_a = port then note fa;
            if c.Cstr.port_b = port then note fb)
          c.Cstr.pairs)
      constraints;
    Hashtbl.fold (fun f b acc -> (f, b) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Packet.Field.compare a b)
  in
  List.iteri
    (fun port _ ->
      let slices = slice_req port in
      if slices <> [] && List.exists (fun (f, _) -> not (Packet.Field.rss_capable f)) slices
      then
        missing :=
          Some
            (Format.asprintf "no %s RSS field set covers {%a} needed on port %d"
               (Nic.Model.name nic)
               (Format.pp_print_list
                  ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
                  Packet.Field.pp)
               (List.map fst slices) port)
      else if slices <> [] then begin
        let sliced = Nic.Field_set.make_sliced slices in
        if Nic.Model.supports nic sliced then sets.(port) <- sliced
        else
          (* the NIC cannot flex-extract sub-fields: fall back to a rigid
             covering set — the solver's key-quality gate decides whether
             the zero-window workaround still distributes traffic *)
          match Nic.Model.best_set_covering nic (List.map fst slices) with
          | Some s -> sets.(port) <- s
          | None ->
              missing :=
                Some
                  (Format.asprintf "no %s RSS field set covers {%a} needed on port %d"
                     (Nic.Model.name nic)
                     (Format.pp_print_list
                        ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
                        Packet.Field.pp)
                     (List.map fst slices) port)
      end)
    (Array.to_list sets);
  match !missing with
  | Some msg -> Error msg
  | None ->
      let t = { nic; field_sets = sets; constraints } in
      (try
         validate t;
         Ok t
       with Invalid_argument msg -> Error msg)

let nports t = Array.length t.field_sets
let key_bits t = 8 * Nic.Model.key_bytes t.nic

let pp fmt t =
  Format.fprintf fmt "@[<v>nic: %s@ " (Nic.Model.name t.nic);
  Array.iteri (fun p fs -> Format.fprintf fmt "port %d: %a@ " p Nic.Field_set.pp fs) t.field_sets;
  Format.fprintf fmt "%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Cstr.pp)
    t.constraints
