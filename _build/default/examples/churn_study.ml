(* A miniature of the paper's §6.3 churn study: how the three parallel
   firewalls cope as flows are created and expired ever faster.

     dune exec examples/churn_study.exe
*)

let () =
  let nf = Nfs.Registry.find_exn "fw" in
  (* churn workloads are ordinary traffic: save one as a real pcap and read
     it back, as the paper's methodology replays pcaps in a loop *)
  let sample =
    Traffic.Churn.trace (Random.State.make [| 1 |])
      { Traffic.Churn.default_spec with Traffic.Churn.pkts = 2000; flows_per_gbit = 100_000.0 }
  in
  let path = Filename.temp_file "churn" ".pcap" in
  Packet.Pcap.write_file path (Array.to_list sample);
  (match Packet.Pcap.read_file path with
  | Ok pkts ->
      Format.printf "wrote and re-read %d churn packets via %s@.@." (List.length pkts) path
  | Error e -> failwith e);
  Sys.remove path;
  Format.printf "firewall, 8 cores, 64B packets, 4096 live flows@.";
  Format.printf "%14s | %14s | %14s | %14s | %s@." "churn (f/Gbit)" "shared-nothing"
    "lock-based" "txn memory" "lock write-pkt%";
  List.iter
    (fun flows_per_gbit ->
      let spec =
        {
          Traffic.Churn.default_spec with
          Traffic.Churn.active_flows = 4096;
          flows_per_gbit;
          pkts = 30_000;
        }
      in
      let trace = Traffic.Churn.trace (Random.State.make [| 5 |]) spec in
      let profile = Sim.Profile.of_trace ~skip:spec.Traffic.Churn.active_flows nf trace in
      let gbps strategy =
        let request = { Maestro.Pipeline.default_request with cores = 8; strategy } in
        let plan = (Maestro.Pipeline.parallelize_exn ~request nf).Maestro.Pipeline.plan in
        (Sim.Throughput.evaluate plan profile trace).Sim.Throughput.gbps
      in
      Format.printf "%14.0f | %13.1fG | %13.1fG | %13.1fG | %14.1f@." flows_per_gbit
        (gbps `Auto) (gbps `Force_locks) (gbps `Force_tm)
        (100.0 *. profile.Sim.Profile.write_pkt_fraction))
    [ 0.; 1_000.; 10_000.; 100_000.; 300_000.; 1_000_000. ];
  Format.printf
    "@.the shared-nothing firewall barely notices churn; the lock-based one collapses once@.";
  Format.printf "most packets need the write lock, and transactions abort into their fallback@."
