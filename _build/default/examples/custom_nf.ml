(* Authoring your own NF against the Vigor-style API and letting Maestro
   parallelize it.

   The NF here is a per-source packet-count limiter: each source IP may send
   at most [limit] packets per aging window.  Because its only state is
   keyed by the source address, Maestro shards it shared-nothing on ip.src.

   A second variant adds a per-*destination* counter too — which makes the
   requirements disjoint (rule R3) and demonstrates the feedback a developer
   gets when a design defeats sharding.

     dune exec examples/custom_nf.exe
*)

open Dsl.Ast
open Packet

let limit = 1000
let window_ns = 1_000_000_000

let rate_limiter =
  let count_and_decide =
    Vec_get
      {
        obj = "rl_counters";
        index = Var "rl_idx";
        record = "rl_c";
        k =
          If
            ( Record_field ("rl_c", "count") <. const limit,
              Vec_set
                {
                  obj = "rl_counters";
                  index = Var "rl_idx";
                  fields = [ ("count", Record_field ("rl_c", "count") +. const 1) ];
                  k =
                    Chain_rejuv
                      { obj = "rl_chain"; index = Var "rl_idx"; k = Forward (const ~width:16 1) };
                },
              Drop );
      }
  in
  {
    name = "rate_limiter";
    devices = 2;
    state =
      [
        Decl_map { name = "rl_map"; capacity = 65536; init = [] };
        Decl_chain { name = "rl_chain"; capacity = 65536 };
        Decl_vector { name = "rl_keys"; capacity = 65536; layout = [ ("src", 32) ] };
        Decl_vector { name = "rl_counters"; capacity = 65536; layout = [ ("count", 32) ] };
      ];
    process =
      Chain_expire
        {
          obj = "rl_chain";
          purges = [ ("rl_map", "rl_keys") ];
          age_ns = window_ns;
          k =
            If
              ( In_port ==. const ~width:16 0,
                Map_get
                  {
                    obj = "rl_map";
                    key = [ Field Field.Ip_src ];
                    found = "rl_f";
                    value = "rl_idx";
                    k =
                      If
                        ( Var "rl_f",
                          count_and_decide,
                          Chain_alloc
                            {
                              obj = "rl_chain";
                              index = "rl_new";
                              k_ok =
                                Vec_set
                                  {
                                    obj = "rl_keys";
                                    index = Var "rl_new";
                                    fields = [ ("src", Field Field.Ip_src) ];
                                    k =
                                      Map_put
                                        {
                                          obj = "rl_map";
                                          key = [ Field Field.Ip_src ];
                                          value = Var "rl_new";
                                          ok = "rl_ok";
                                          k =
                                            Vec_set
                                              {
                                                obj = "rl_counters";
                                                index = Var "rl_new";
                                                fields = [ ("count", const 1) ];
                                                k = Forward (const ~width:16 1);
                                              };
                                        };
                                  };
                              k_fail = Drop;
                            } );
                  },
                Forward (const ~width:16 0) );
        };
  }

(* The broken variant: an extra per-destination counter (written on every
   packet) makes "same source on one core" and "same destination on one
   core" both mandatory — impossible for RSS. *)
let with_destination_counter =
  let base = rate_limiter in
  {
    base with
    name = "rate_limiter_r3";
    state = base.state @ [ Decl_map { name = "rl_dst"; capacity = 65536; init = [] } ];
    process =
      Map_get
        {
          obj = "rl_dst";
          key = [ Field Field.Ip_dst ];
          found = "rd_f";
          value = "rd_v";
          k =
            Map_put
              {
                obj = "rl_dst";
                key = [ Field Field.Ip_dst ];
                value = Var "rd_v" +. const 1;
                ok = "rd_ok";
                k = base.process;
              };
        };
  }

let show nf =
  Format.printf "@.=== %s ===@." nf.name;
  let outcome = Maestro.Pipeline.parallelize_exn nf in
  let plan = outcome.Maestro.Pipeline.plan in
  Format.printf "decision: %s@." (Maestro.Plan.strategy_name plan.Maestro.Plan.strategy);
  List.iter (fun w -> Format.printf "  warning: %s@." w) plan.Maestro.Plan.warnings;
  List.iter
    (fun c -> Format.printf "  constraint: %a@." Rs3.Cstr.pp c)
    plan.Maestro.Plan.constraints;
  plan

let () =
  let plan = show rate_limiter in
  ignore (show with_destination_counter);

  (* run the shardable one in parallel and watch the limiter bite *)
  let rng = Random.State.make [| 7 |] in
  let chatty = List.hd (Traffic.Gen.flows rng 1) in
  let trace =
    Array.init 3000 (fun i -> Packet.Flow.to_pkt ~port:0 ~ts_ns:(i * 1000) chatty)
  in
  let result = Runtime.Parallel.run plan trace in
  let fwd =
    Array.fold_left
      (fun a v -> match v with Dsl.Interp.Fwd _ -> a + 1 | Dsl.Interp.Dropped -> a)
      0 result.Runtime.Parallel.verdicts
  in
  Format.printf "@.one source sent 3000 packets in a window: %d passed (limit %d)@." fwd limit
