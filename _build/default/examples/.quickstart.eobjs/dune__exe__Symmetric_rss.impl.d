examples/symmetric_rss.ml: Array Bitvec Format Hashtbl Nic Option Packet Pkt Random Rs3
