examples/quickstart.ml: Array Format List Maestro Nfs Nic Packet Random Runtime String Traffic
