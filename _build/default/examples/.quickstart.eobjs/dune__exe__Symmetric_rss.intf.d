examples/symmetric_rss.mli:
