examples/quickstart.mli:
