examples/custom_nf.ml: Array Dsl Field Format List Maestro Packet Random Rs3 Runtime Traffic
