examples/churn_study.mli:
