examples/churn_study.ml: Array Filename Format List Maestro Nfs Packet Random Sim Sys Traffic
