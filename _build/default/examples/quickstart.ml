(* Quickstart: parallelize the firewall with one call, inspect what Maestro
   produced, and check that the parallel NF behaves exactly like the
   sequential one on real traffic.

     dune exec examples/quickstart.exe
*)

let () =
  (* 1. pick a sequential NF (the paper's running example) *)
  let fw = Nfs.Fw.make () in

  (* 2. push the button *)
  let request = { Maestro.Pipeline.default_request with cores = 8 } in
  let outcome = Maestro.Pipeline.parallelize_exn ~request fw in
  let plan = outcome.Maestro.Pipeline.plan in
  Format.printf "Maestro decided: %s@." (Maestro.Plan.strategy_name plan.Maestro.Plan.strategy);
  Format.printf "%a@." Maestro.Plan.pp plan;

  (* 3. the RSS keys are symmetric across the two ports: a WAN reply lands
     on the same core as its LAN session *)
  let rss_lan = Maestro.Plan.rss_engine plan 0 and rss_wan = Maestro.Plan.rss_engine plan 1 in
  let client = Packet.Pkt.make ~port:0 ~ip_src:0x0a000001 ~ip_dst:0x62000001 ~src_port:4242 ~dst_port:443 () in
  let reply = Packet.Pkt.with_port (Packet.Pkt.flip client) 1 in
  Format.printf "@.client -> core %d, server reply -> core %d@." (Nic.Rss.dispatch rss_lan client)
    (Nic.Rss.dispatch rss_wan reply);

  (* 4. run real traffic through both versions and compare verdicts *)
  let rng = Random.State.make [| 2024 |] in
  let flows = Traffic.Gen.flows rng 2000 in
  let spec = { Traffic.Gen.default_spec with pkts = 20_000; reply_fraction = 0.5 } in
  let trace = Traffic.Gen.uniform ~spec rng ~flows in
  let sequential = Runtime.Parallel.run_sequential fw trace in
  let parallel = Runtime.Parallel.run plan trace in
  let same = ref 0 in
  Array.iteri
    (fun i v -> if v = sequential.(i) then incr same)
    parallel.Runtime.Parallel.verdicts;
  Format.printf "@.verdict agreement with the sequential firewall: %d / %d@." !same
    (Array.length trace);
  Format.printf "per-core packet counts: %s@."
    (String.concat ", "
       (Array.to_list
          (Array.map string_of_int parallel.Runtime.Parallel.stats.Runtime.Parallel.per_core_pkts)));

  (* 5. and this is what Maestro would hand to a DPDK build *)
  Format.printf "@.--- generated C (excerpt) ---@.";
  let c = Maestro.Codegen.emit_c plan in
  String.split_on_char '\n' c
  |> List.filteri (fun i _ -> i < 30)
  |> List.iter print_endline;
  print_endline "..."
