(* Bechamel micro-benchmarks of the performance-critical primitives. *)

open Bechamel
open Toolkit

let toeplitz_bench =
  let key = Nic.Toeplitz.microsoft_test_key in
  let pkt = Packet.Pkt.make ~ip_src:0x0a000001 ~ip_dst:0x60000002 ~src_port:1234 ~dst_port:80 () in
  let input = Option.get (Nic.Field_set.hash_input Nic.Field_set.ipv4_tcp pkt) in
  Test.make ~name:"toeplitz-hash-12B" (Staged.stage (fun () -> Nic.Toeplitz.hash_int ~key input))

let map_bench =
  let m = State.Map_s.create ~capacity:65536 in
  let keys = Array.init 1024 (fun i -> Dsl.Ast.key_of_parts [ (32, i); (32, i * 7) ]) in
  Array.iteri (fun i k -> ignore (State.Map_s.put m k i)) keys;
  let i = ref 0 in
  Test.make ~name:"map-get"
    (Staged.stage (fun () ->
         i := (!i + 1) land 1023;
         State.Map_s.get m keys.(!i)))

let dchain_bench =
  let c = State.Dchain.create ~capacity:65536 in
  for i = 0 to 1023 do
    ignore (State.Dchain.allocate c ~now:i)
  done;
  let i = ref 0 in
  Test.make ~name:"dchain-rejuvenate"
    (Staged.stage (fun () ->
         i := (!i + 1) land 1023;
         State.Dchain.rejuvenate c !i ~now:!i))

let sketch_bench =
  let s = State.Sketch.create () in
  let key = Dsl.Ast.key_of_parts [ (32, 42); (32, 77) ] in
  Test.make ~name:"sketch-count" (Staged.stage (fun () -> State.Sketch.count s key))

let fw_pkt_bench =
  let nf = Nfs.Registry.find_exn "fw" in
  let info = Dsl.Check.check_exn nf in
  let inst = Dsl.Instance.create nf in
  let pkt = Packet.Pkt.make ~ip_src:0x0a000001 ~ip_dst:0x60000002 ~src_port:1234 ~dst_port:80 () in
  Test.make ~name:"fw-interpret-packet"
    (Staged.stage (fun () -> Dsl.Interp.process nf info inst pkt))

let gauss_bench =
  Test.make ~name:"rs3-gauss-fw-keys"
    (Staged.stage (fun () ->
         let p =
           Result.get_ok
             (Rs3.Problem.for_constraints ~nports:2 [ Rs3.Cstr.symmetric ~port_a:0 ~port_b:1 ])
         in
         Rs3.Solve.solve ~seed:1 ~max_attempts:4 p))

let run () =
  let tests =
    [ toeplitz_bench; map_bench; dchain_bench; sketch_bench; fw_pkt_bench; gauss_bench ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  Format.printf "@.=== Micro-benchmarks (Bechamel) ===@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Format.printf "%-24s %12.1f ns/op@." name est
          | _ -> Format.printf "%-24s (no estimate)@." name)
        results)
    tests
