bench/micro.ml: Analyze Array Bechamel Benchmark Dsl Format Hashtbl Instance List Measure Nfs Nic Option Packet Result Rs3 Staged State Test Time Toolkit
