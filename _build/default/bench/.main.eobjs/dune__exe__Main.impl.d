bench/main.ml: Array Figures Format List Micro String Sys
