bench/figures.ml: Array Bitvec Dsl Float Format List Maestro Nfs Nic Printf Random Rs3 Runtime Sim Symbex Traffic Unix Vpp
