bench/main.mli:
