(* The Maestro command line: analyze, parallelize and run the bundled NFs.

     maestro list
     maestro analyze fw
     maestro parallelize fw --cores 16 --emit-c
     maestro run fw --cores 8 --pkts 20000
*)

open Cmdliner

let chain_scenarios = Nfs.Scenarios.chains ()

let nf_names =
  Nfs.Registry.names
  @ List.map (fun nf -> nf.Dsl.Ast.name) (Nfs.Scenarios.all ())
  @ List.map (fun c -> c.Dsl.Chain.name) chain_scenarios

let find_nf name =
  match Nfs.Registry.find name with
  | Some nf -> Ok nf
  | None -> (
      match List.find_opt (fun nf -> nf.Dsl.Ast.name = name) (Nfs.Scenarios.all ()) with
      | Some nf -> Ok nf
      | None -> (
          match List.find_opt (fun c -> c.Dsl.Chain.name = name) chain_scenarios with
          | Some c -> Ok (Dsl.Chain.nf c)
          | None ->
              Error
                (Printf.sprintf "unknown NF %s (known: %s)" name (String.concat ", " nf_names))))

(* --chain NF,NF,...: compose registry NFs into one fused service chain and
   operate on the composed AST exactly as on a single NF. *)
type target = Single of Dsl.Ast.t | Chain of Dsl.Chain.t

let find_target name chain =
  match (name, chain) with
  | Some _, Some _ -> Error "give either a positional NF or --chain, not both"
  | None, None -> Error "no NF given: name a positional NF or pass --chain NF,NF,..."
  | Some n, None -> Result.map (fun nf -> Single nf) (find_nf n)
  | None, Some spec ->
      let names =
        String.split_on_char ',' spec |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      Result.map (fun c -> Chain c) (Nfs.Registry.compose_chain names)

let target_nf = function Single nf -> nf | Chain c -> Dsl.Chain.nf c

(* Each stage analyzed on its own, so the report shows what every NF demands
   before the chain's union is solved. *)
let print_chain_stages (c : Dsl.Chain.t) =
  Format.printf "chain %s: %d stages fused@." c.Dsl.Chain.name (List.length c.Dsl.Chain.stages);
  List.iter
    (fun (st : Dsl.Chain.stage) ->
      let decision =
        Maestro.Sharding.decide (Maestro.Report.build (Symbex.Exec.run st.Dsl.Chain.nf))
      in
      let summary =
        match decision with
        | Maestro.Sharding.No_state -> "stateless, 0 constraints"
        | Maestro.Sharding.Read_only -> "read-only state, 0 constraints"
        | Maestro.Sharding.Shard cs ->
            Printf.sprintf "shardable alone, %d constraints" (List.length cs)
        | Maestro.Sharding.Blocked rs ->
            Printf.sprintf "blocked alone, %d reasons" (List.length rs)
      in
      Format.printf "stage %d (%s, prefix %s): %s@." st.Dsl.Chain.index st.Dsl.Chain.name
        st.Dsl.Chain.prefix summary)
    c.Dsl.Chain.stages

let nf_arg =
  let doc = "Network function to operate on (omit when passing $(b,--chain))." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"NF" ~doc)

let chain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chain" ] ~docv:"NF,NF,..."
      ~doc:
        "Compose a service chain of the named NFs (in order) and operate on the fused \
         single-pass NF: one flattened AST, jointly sharded, one RSS key for the union of \
         every stage's constraints.")

let cores_arg =
  Arg.(value & opt int 16 & info [ "cores" ] ~docv:"N" ~doc:"Worker cores to generate for.")

let seed_arg = Arg.(value & opt int 0xbeef & info [ "seed" ] ~doc:"RNG seed for key search.")

let strategy_arg =
  let strategies =
    [
      ("auto", `Auto);
      ("shared-nothing", `Auto);
      ("locks", `Force_locks);
      ("lock", `Force_locks);
      ("tm", `Force_tm);
      ("scr", `Force_scr);
    ]
  in
  Arg.(
    value
    & opt (enum strategies) `Auto
    & info [ "strategy"; "discipline" ]
        ~doc:
          "Parallelization discipline: $(b,auto) (shared-nothing when possible, degrading \
           down the ladder), $(b,scr) (state-compute replication: full replica per core, \
           digest replay), $(b,locks) or $(b,tm).")

let solver_arg =
  Arg.(
    value
    & opt (enum [ ("gauss", `Gauss); ("sat", `Sat) ]) `Gauss
    & info [ "solver" ] ~doc:"RS3 backend: GF(2) elimination or SAT MaxSAT.")

let nic_arg =
  Arg.(
    value
    & opt (enum [ ("e810", Nic.Model.E810); ("x710", Nic.Model.X710) ]) Nic.Model.E810
    & info [ "nic" ] ~doc:"NIC capability model.")

let emit_c_arg =
  Arg.(value & flag & info [ "emit-c" ] ~doc:"Print the generated DPDK-style C source.")

let sat_budget_arg =
  Arg.(
    value
    & opt (some (pair ~sep:':' int int)) None
    & info [ "sat-budget" ] ~docv:"CONFLICTS:PROPS"
        ~doc:
          "Conflict/propagation budget for the SAT key search; on exhaustion the plan \
           degrades down the ladder instead of failing (negative component = unlimited).")

let rebalance_conv =
  let parse s =
    match Runtime.Balancer.parse s with Ok m -> Ok m | Error e -> Error (`Msg e)
  in
  let print fmt m = Format.pp_print_string fmt (Runtime.Balancer.to_string m) in
  Arg.conv ~docv:"SPEC" (parse, print)

let rebalance_arg =
  Arg.(
    value
    & opt rebalance_conv Runtime.Balancer.Off
    & info [ "rebalance" ] ~docv:"SPEC"
        ~doc:
          "Online RSS++ rebalancing on the domain pool: $(b,off) (default), $(b,on), or a \
           comma-separated $(b,epoch=N),$(b,threshold=F) — check max/mean core imbalance \
           every N packets and move hot indirection buckets (with a quiesced state \
           migration on shared-nothing plans) when it exceeds F.")

let adaptive_conv =
  let parse s =
    match Runtime.Adaptive.parse s with Ok m -> Ok m | Error e -> Error (`Msg e)
  in
  let print fmt m = Format.pp_print_string fmt (Runtime.Adaptive.to_string m) in
  Arg.conv ~docv:"SPEC" (parse, print)

let adaptive_arg =
  Arg.(
    value
    & opt adaptive_conv Runtime.Adaptive.Off
    & info [ "adaptive" ] ~docv:"SPEC"
        ~doc:
          "Online discipline switching on the domain pool: $(b,off) (default), $(b,on), or a \
           comma-separated $(b,epochs=N),$(b,up=F),$(b,down=F),$(b,cooldown=N) — every N \
           packets the hysteresis controller may switch the live pool between admissible \
           ladder rungs (shared-nothing, SCR, lock, serial) at the quiesce barrier: \
           imbalance above F$(i,up) steps down, a cooldown+1-epoch calm streak below \
           F$(i,down) steps back up.  Mutually exclusive with $(b,--rebalance).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Collect telemetry and print a per-phase summary (spans, counters, histograms).")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Collect telemetry and write the chronological span log to $(docv) in Chrome \
           trace-event format (view in about:tracing or ui.perfetto.dev).")

(* Run [f] inside a telemetry collection window when either flag asks for
   one, then emit whatever was requested. *)
let with_telemetry stats trace_json f =
  let wanted = stats || trace_json <> None in
  if wanted then begin
    Telemetry.reset ();
    Telemetry.enable ()
  end;
  let r = f () in
  if wanted then begin
    Telemetry.disable ();
    if stats then Format.printf "%a@." Telemetry.pp_summary (Telemetry.snapshot ());
    Option.iter
      (fun file ->
        match open_out file with
        | oc ->
            output_string oc (Telemetry.trace_events_json ());
            close_out oc;
            Format.printf "wrote span trace to %s@." file
        | exception Sys_error msg ->
            Format.eprintf "cannot write span trace: %s@." msg;
            exit 1)
      trace_json
  end;
  r

(* --- list ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun name ->
        let tag =
          match Nfs.Registry.expected_strategy name with
          | `Shared_nothing -> "shared-nothing"
          | `Locks -> "lock-based"
          | `Read_only_lb -> "load-balance"
          | exception Not_found -> "scenario"
        in
        Format.printf "%-22s %s@." name tag)
      nf_names
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled network functions.") Term.(const run $ const ())

(* --- analyze ---------------------------------------------------------------- *)

let analyze_cmd =
  let run name chain verbose stats trace_json =
    match find_target name chain with
    | Error e ->
        Format.eprintf "%s@." e;
        exit 1
    | Ok target ->
        let nf = target_nf target in
        with_telemetry stats trace_json @@ fun () ->
        (match target with Chain c -> print_chain_stages c | Single _ -> ());
        let model = Symbex.Exec.run nf in
        if verbose then Format.printf "%a@." Symbex.Exec.pp model;
        let report = Maestro.Report.build model in
        Format.printf "--- stateful report ---@.%a@." Maestro.Report.pp report;
        Format.printf "--- decision ---@.%a@." Maestro.Sharding.pp_decision
          (Maestro.Sharding.decide report)
  in
  let verbose = Arg.(value & flag & info [ "tree" ] ~doc:"Also print the execution trees.") in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Symbolically execute an NF and show the sharding analysis.")
    Term.(const run $ nf_arg $ chain_arg $ verbose $ stats_arg $ trace_json_arg)

(* --- parallelize ------------------------------------------------------------ *)

let parallelize_cmd =
  let run name chain cores seed strategy solver nic sat_budget emit_c stats trace_json =
    match find_target name chain with
    | Error e ->
        Format.eprintf "%s@." e;
        exit 1
    | Ok target -> (
        let nf = target_nf target in
        with_telemetry stats trace_json @@ fun () ->
        (match target with Chain c -> print_chain_stages c | Single _ -> ());
        let request =
          { Maestro.Pipeline.cores; nic; strategy; solver; seed; sat_budget }
        in
        match Maestro.Pipeline.parallelize ~request nf with
        | Error e ->
            Format.eprintf "error: %s@." e;
            exit 1
        | Ok outcome ->
            Format.printf "%a@." Maestro.Plan.pp outcome.Maestro.Pipeline.plan;
            Format.printf "--- degradation ladder ---@.%a@." Maestro.Ladder.pp
              outcome.Maestro.Pipeline.ladder;
            (match target with
            | Chain _ ->
                Format.printf "unified ladder rung: %s@."
                  (Maestro.Ladder.rung_name
                     outcome.Maestro.Pipeline.ladder.Maestro.Ladder.chosen)
            | Single _ -> ());
            Format.printf "generation took %.2f ms@."
              (1000.0 *. Maestro.Pipeline.total_s outcome.Maestro.Pipeline.timing);
            if emit_c then
              Format.printf "@.%s@." (Maestro.Codegen.emit_c outcome.Maestro.Pipeline.plan))
  in
  Cmd.v
    (Cmd.info "parallelize" ~doc:"Generate a parallel implementation of an NF or service chain.")
    Term.(
      const run $ nf_arg $ chain_arg $ cores_arg $ seed_arg $ strategy_arg $ solver_arg
      $ nic_arg $ sat_budget_arg $ emit_c_arg $ stats_arg $ trace_json_arg)

(* --- run --------------------------------------------------------------------- *)

let run_cmd =
  let run name chain cores seed strategy pkts flows batch_size backpressure fault_plan compiled
      compiled_nf interp rebalance adaptive stats trace_json =
    match find_target name chain with
    | Error e ->
        Format.eprintf "%s@." e;
        exit 1
    | Ok target ->
        if rebalance <> Runtime.Balancer.Off && adaptive <> Runtime.Adaptive.Off then begin
          Format.eprintf "--adaptive and --rebalance are mutually exclusive@.";
          exit 1
        end;
        let nf = target_nf target in
        (match fault_plan with
        | None -> Faults.clear ()
        | Some spec -> (
            match Faults.parse spec with
            | Ok plan -> Faults.install plan
            | Error e ->
                Format.eprintf "%s@." e;
                exit 1));
        Fun.protect ~finally:Faults.clear @@ fun () ->
        with_telemetry stats trace_json @@ fun () ->
        (* before plan generation: the pipeline configures its RSS engines
           (and therefore picks the hash implementation) while planning *)
        Nic.Rss.set_compile_default compiled;
        (* staged NF compilation: on by default, --interp (or
           --compiled-nf false) keeps every worker on the interpreter *)
        let nf_compiled = compiled_nf && not interp in
        Dsl.Compile.set_default nf_compiled;
        let request = { Maestro.Pipeline.default_request with cores; seed; strategy } in
        let outcome = Maestro.Pipeline.parallelize_exn ~request nf in
        let plan = outcome.Maestro.Pipeline.plan in
        let rng = Random.State.make [| seed |] in
        let fs = Traffic.Gen.flows rng flows in
        let spec = { Traffic.Gen.default_spec with pkts; reply_fraction = 0.4 } in
        let trace = Traffic.Gen.uniform ~spec rng ~flows:fs in
        (* tunnel-terminating NFs key on inner headers: give them the same
           flows, wrapped in the matching underlay *)
        let trace =
          match name with
          | Some "vxlan_fw" -> Traffic.Gen.encapsulate Packet.Pkt.Vxlan trace
          | Some "gre_peer" -> Traffic.Gen.encapsulate Packet.Pkt.Gre trace
          | _ -> trace
        in
        let seq = Runtime.Parallel.run_sequential nf trace in
        let par = Runtime.Parallel.run plan trace in
        let agree = ref 0 and fwd = ref 0 and dropped = ref 0 in
        Array.iteri
          (fun i v ->
            (match v with
            | Dsl.Interp.Fwd _ -> incr fwd
            | Dsl.Interp.Dropped -> incr dropped);
            if v = seq.(i) then incr agree)
          par.Runtime.Parallel.verdicts;
        let s = par.Runtime.Parallel.stats in
        (match target with
        | Chain c ->
            Format.printf "chain: %s (%d stages fused)@." c.Dsl.Chain.name
              (List.length c.Dsl.Chain.stages)
        | Single _ -> ());
        Format.printf "strategy: %s on %d cores@."
          (Maestro.Plan.strategy_name plan.Maestro.Plan.strategy)
          cores;
        Format.printf "ladder rung: %s@."
          (Maestro.Ladder.rung_name outcome.Maestro.Pipeline.ladder.Maestro.Ladder.chosen);
        Format.printf "packets: %d forwarded, %d dropped@." !fwd !dropped;
        Format.printf "sequential agreement: %d/%d@." !agree (Array.length trace);
        Format.printf "per-core packets: %s (imbalance %.2f)@."
          (String.concat ", "
             (Array.to_list (Array.map string_of_int s.Runtime.Parallel.per_core_pkts)))
          (Runtime.Parallel.imbalance s);
        Format.printf "state ops: %d reads, %d writes; %d read-pkts, %d write-pkts@."
          s.Runtime.Parallel.reads s.Runtime.Parallel.writes s.Runtime.Parallel.read_pkts
          s.Runtime.Parallel.write_pkts;
        Format.printf "rss hash: %s@." (if compiled then "table-driven (compiled)" else "bit-by-bit (reference)");
        Format.printf "nf path: %s@."
          (if nf_compiled then "staged closures (compiled)" else "tree-walking interpreter");
        (* the same plan on real OCaml domains, fed through the persistent pool *)
        Runtime.Pool.with_global ~batch_size ~backpressure ~cores:plan.Maestro.Plan.cores
        @@ fun pool ->
        let dv = Runtime.Pool.run ~rebalance ~adaptive pool plan trace in
        let ps = Runtime.Pool.stats pool in
        let dagree = ref 0 in
        Array.iteri (fun i v -> if v = seq.(i) then incr dagree) dv;
        Format.printf "pool: %d domains, batch %d, backpressure %s: %d batches, %d ring-full stalls@."
          (Runtime.Pool.cores pool) (Runtime.Pool.batch_size pool)
          (Runtime.Pool.backpressure_name (Runtime.Pool.backpressure pool))
          ps.Runtime.Pool.batches ps.Runtime.Pool.ring_full_stalls;
        if ps.Runtime.Pool.dropped_batches > 0 then
          Format.printf "pool drops: %d batches (%d packets); per-core %s@."
            ps.Runtime.Pool.dropped_batches ps.Runtime.Pool.dropped_pkts
            (String.concat ", "
               (Array.to_list (Array.map string_of_int ps.Runtime.Pool.per_core_drops)));
        if ps.Runtime.Pool.restarts > 0 || ps.Runtime.Pool.failed_cores <> [] then begin
          Format.printf "pool recovery: %d restarts, %d inline batches; failed cores: %s@."
            ps.Runtime.Pool.restarts ps.Runtime.Pool.inline_batches
            (match ps.Runtime.Pool.failed_cores with
            | [] -> "none"
            | cs -> String.concat ", " (List.map string_of_int cs));
          List.iter
            (fun ev -> Format.printf "  supervisor: %a@." Runtime.Supervisor.pp_event ev)
            (Runtime.Supervisor.events (Runtime.Pool.supervisor pool))
        end;
        (match rebalance with
        | Runtime.Balancer.Off -> ()
        | Runtime.Balancer.On _ ->
            Format.printf
              "pool rebalancing (%s): %d rebalances (%d forced), %d buckets, %d flow states \
               moved, %d evicted@."
              (Runtime.Balancer.to_string rebalance)
              ps.Runtime.Pool.rebalances ps.Runtime.Pool.forced_rebalances
              ps.Runtime.Pool.migrated_buckets ps.Runtime.Pool.migrated_flows
              ps.Runtime.Pool.migration_drops;
            Format.printf "pool core shares: %s@."
              (String.concat ", "
                 (Array.to_list
                    (Array.map
                       (fun s -> Printf.sprintf "%.3f" s)
                       ps.Runtime.Pool.last_core_share))));
        (match adaptive with
        | Runtime.Adaptive.Off -> ()
        | Runtime.Adaptive.On _ ->
            Format.printf "pool adaptive (%s): %d switches, %d flap-suppressed@."
              (Runtime.Adaptive.to_string adaptive)
              ps.Runtime.Pool.switches ps.Runtime.Pool.flap_suppressed;
            Format.printf "  switch epochs: %s@."
              (match ps.Runtime.Pool.switch_epochs with
              | [] -> "none"
              | es ->
                  String.concat ", "
                    (List.map
                       (fun (e, r) -> Printf.sprintf "%d→%s" e (Maestro.Ladder.rung_name r))
                       es));
            Format.printf "  rung residency: %s@."
              (String.concat ", "
                 (List.map
                    (fun (r, n) -> Printf.sprintf "%s=%d" (Maestro.Ladder.rung_name r) n)
                    ps.Runtime.Pool.rung_residency)));
        if plan.Maestro.Plan.strategy = Maestro.Plan.Scr then
          Format.printf
            "pool scr: %d digest replays, %d replica rebuilds, %d digest bytes broadcast@."
            ps.Runtime.Pool.scr_replays ps.Runtime.Pool.scr_rebuilds
            ps.Runtime.Pool.scr_digest_bytes;
        Format.printf "pool sequential agreement: %d/%d@." !dagree (Array.length trace)
  in
  let pkts = Arg.(value & opt int 20_000 & info [ "pkts" ] ~doc:"Packets to replay.") in
  let flows = Arg.(value & opt int 1_000 & info [ "flows" ] ~doc:"Flows in the workload.") in
  let batch_size =
    Arg.(
      value
      & opt int Runtime.Pool.default_batch_size
      & info [ "batch-size" ] ~docv:"N"
          ~doc:"Packets per batch pushed to the worker-domain rings (DPDK burst style).")
  in
  let backpressure =
    let policies =
      [
        ("block", Runtime.Pool.Block);
        ("drop", Runtime.Pool.Drop { max_spins = Runtime.Pool.default_drop_spins });
        ("shed", Runtime.Pool.Shed);
      ]
    in
    Arg.(
      value
      & opt (enum policies) Runtime.Pool.Block
      & info [ "backpressure" ] ~docv:"POLICY"
          ~doc:
            "What the producer does on a full worker ring: $(b,block) (lossless spin with \
             liveness checks), $(b,drop) (bounded spin, then drop the batch) or $(b,shed) \
             (drop immediately).")
  in
  let fault_plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-plan" ] ~docv:"SPEC"
          ~doc:
            "Install a deterministic fault plan before running, e.g. \
             $(b,crash\\@1:3;stall\\@2:0:100000).  Events: crash\\@CORE:BATCH[xTIMES], \
             slow\\@CORE:FROM:SPINS, stall\\@CORE:BATCH:SPINS, satbudget\\@CONFLICTS:PROPS.")
  in
  let compiled_rss =
    Arg.(
      value & opt bool true
      & info [ "compiled-rss" ] ~docv:"BOOL"
          ~doc:
            "Use the table-driven (compiled) Toeplitz hash in every RSS engine; pass \
             $(b,false) for the bit-by-bit reference implementation.")
  in
  let compiled_nf =
    Arg.(
      value & opt bool true
      & info [ "compiled-nf" ] ~docv:"BOOL"
          ~doc:
            "Run workers on the staged NF compiler (closures, fixed frame slots, packed \
             keys); pass $(b,false) for the tree-walking interpreter.")
  in
  let interp =
    Arg.(
      value & flag
      & info [ "interp" ]
          ~doc:
            "Force the tree-walking interpreter — the reference semantics — regardless of \
             $(b,--compiled-nf).")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute the generated parallel NF over a workload and compare it against the \
          sequential version.")
    Term.(
      const run $ nf_arg $ chain_arg $ cores_arg $ seed_arg $ strategy_arg $ pkts $ flows
      $ batch_size $ backpressure $ fault_plan $ compiled_rss $ compiled_nf $ interp
      $ rebalance_arg $ adaptive_arg $ stats_arg $ trace_json_arg)

(* --- rebalance (offline study) ---------------------------------------------- *)

let rebalance_cmd =
  let run name chain cores seed pkts flows epoch threshold exponent stats trace_json =
    match find_target name chain with
    | Error e ->
        Format.eprintf "%s@." e;
        exit 1
    | Ok target ->
        let nf = target_nf target in
        with_telemetry stats trace_json @@ fun () ->
        let request = { Maestro.Pipeline.default_request with cores; seed } in
        let plan = (Maestro.Pipeline.parallelize_exn ~request nf).Maestro.Pipeline.plan in
        let rng = Random.State.make [| seed |] in
        let z = Traffic.Zipf.make ~exponent ~nflows:flows () in
        let fs = Traffic.Gen.flows rng flows in
        let spec = { Traffic.Gen.default_spec with Traffic.Gen.pkts } in
        let trace = Traffic.Zipf.trace ~spec rng z ~flows:fs in
        (match Runtime.Rebalance.study ~threshold plan trace ~epoch_pkts:epoch with
        | Error e ->
            Format.eprintf "error: %s@." e;
            exit 1
        | Ok r ->
            Format.printf "strategy: %s on %d cores; Zipf(%.2f), %d flows, epoch %d@."
              (Maestro.Plan.strategy_name plan.Maestro.Plan.strategy)
              cores exponent flows epoch;
            Format.printf "epoch | static imbalance | dynamic imbalance@.";
            Array.iteri
              (fun e s ->
                Format.printf "%5d | %16.2f | %17.2f@." e s
                  r.Runtime.Rebalance.dynamic_imbalance.(e))
              r.Runtime.Rebalance.static_imbalance;
            Format.printf "rebalances: %d (threshold %.2f); %d buckets, %d flow states moved@."
              r.Runtime.Rebalance.rebalances threshold r.Runtime.Rebalance.migrated_buckets
              r.Runtime.Rebalance.migrated_flows)
  in
  let pkts = Arg.(value & opt int 24_000 & info [ "pkts" ] ~doc:"Packets to study.") in
  let flows = Arg.(value & opt int 1_000 & info [ "flows" ] ~doc:"Flows in the workload.") in
  let epoch =
    Arg.(value & opt int 4096 & info [ "epoch" ] ~docv:"N" ~doc:"Packets per rebalance epoch.")
  in
  let threshold =
    Arg.(
      value & opt float 0.0
      & info [ "threshold" ] ~docv:"F"
          ~doc:
            "Max/mean imbalance above which an epoch boundary rebalances (0 = always; pass \
             the live balancer's threshold to reproduce its decisions).")
  in
  let exponent =
    Arg.(value & opt float 1.1 & info [ "zipf" ] ~docv:"S" ~doc:"Zipf exponent of the workload.")
  in
  Cmd.v
    (Cmd.info "rebalance"
       ~doc:
         "Offline study of dynamic RSS++ rebalancing: replay a Zipfian trace through static \
          and dynamically rebalanced indirection tables and report per-epoch imbalance and \
          migration costs.")
    Term.(
      const run $ nf_arg $ chain_arg $ cores_arg $ seed_arg $ pkts $ flows $ epoch $ threshold
      $ exponent $ stats_arg $ trace_json_arg)

(* --- cluster (front-tier study) --------------------------------------------- *)

let cluster_cmd =
  let run name chain machines cores seed pkts flows fault_plan stats trace_json =
    match find_target name chain with
    | Error e ->
        Format.eprintf "%s@." e;
        exit 1
    | Ok target ->
        let nf = target_nf target in
        with_telemetry stats trace_json @@ fun () ->
        (match fault_plan with
        | None -> Faults.clear ()
        | Some spec -> (
            match Faults.parse spec with
            | Ok plan -> Faults.install plan
            | Error e ->
                Format.eprintf "error: %s@." e;
                exit 1));
        let config =
          {
            Cluster.Tier.default_config with
            Cluster.Tier.machines;
            seed;
            request = { Maestro.Pipeline.default_request with cores; seed };
          }
        in
        (match Cluster.Tier.build ~config nf with
        | Error e ->
            Format.eprintf "error: %s@." e;
            exit 1
        | Ok tier ->
            let plan = Cluster.Tier.plan tier in
            let rng = Random.State.make [| seed |] in
            let fs = Traffic.Gen.flows rng flows in
            let spec = { Traffic.Gen.default_spec with Traffic.Gen.pkts } in
            let trace, _warmup = Traffic.Gen.steady_uniform ~spec rng ~flows:fs in
            let seq = Runtime.Parallel.run_sequential nf trace in
            let verdicts, s = Cluster.Tier.run tier trace in
            let agree = ref 0 in
            Array.iteri
              (fun i v ->
                let same =
                  match (v, seq.(i)) with
                  | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
                  | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) ->
                      pa = pb && Packet.Pkt.equal oa ob
                  | _ -> false
                in
                if same then incr agree)
              verdicts;
            Format.printf "strategy: %s on %d cores x %d machines@."
              (Maestro.Plan.strategy_name plan.Maestro.Plan.strategy)
              cores machines;
            Format.printf "front tier: %a@." Cluster.Maglev.pp (Cluster.Tier.table tier);
            Format.printf
              "front key: %d sampling rounds, %d free bits; digest rebuild %s@."
              (Cluster.Tier.key_attempts tier)
              (Cluster.Tier.key_free_bits tier)
              (if Cluster.Tier.scr_admissible tier then "available" else "unavailable");
            Format.printf "machine | packets@.";
            List.iter
              (fun (id, n) -> Format.printf "%7d | %d@." id n)
              s.Cluster.Tier.machine_pkts;
            List.iter
              (fun (e : Cluster.Tier.event_log) ->
                Format.printf
                  "%s@%d machine %d: %.1f%% slots reassigned, %d flows moved, %d rebuilt, \
                   %d dropped, %d lost@."
                  (match e.Cluster.Tier.action with
                  | Faults.Join -> "join"
                  | Faults.Leave -> "leave"
                  | Faults.Fail -> "fail")
                  e.Cluster.Tier.at_epoch e.Cluster.Tier.machine
                  (100.0 *. e.Cluster.Tier.disruption)
                  e.Cluster.Tier.moved e.Cluster.Tier.rebuilt e.Cluster.Tier.dropped
                  e.Cluster.Tier.lost)
              s.Cluster.Tier.events;
            Format.printf
              "verdicts: %d/%d agree with sequential; %d dead hits, %d affinity violations@."
              !agree (Array.length trace) s.Cluster.Tier.dead_hits
              s.Cluster.Tier.affinity_violations;
            let counts =
              s.Cluster.Tier.machine_pkts |> List.map snd |> Array.of_list
            in
            let profile = Sim.Profile.of_trace nf trace in
            let ce =
              Sim.Throughput.evaluate_cluster
                ~machine_shares:(Sim.Throughput.shares_of_counts counts)
                plan profile trace
            in
            Format.printf
              "model: %.2f mpps per machine, %.2f mpps (%.2f gbps) across the fleet — x%.2f \
               scale-out, machine imbalance %.2f@."
              ce.Sim.Throughput.per_machine.Sim.Throughput.mpps ce.Sim.Throughput.cluster_mpps
              ce.Sim.Throughput.cluster_gbps ce.Sim.Throughput.scaleout
              ce.Sim.Throughput.machine_imbalance;
            Faults.clear ())
  in
  let machines_arg =
    Arg.(
      value & opt int 4
      & info [ "machines" ] ~docv:"N" ~doc:"Machines behind the front tier.")
  in
  let pkts = Arg.(value & opt int 24_000 & info [ "pkts" ] ~doc:"Packets to replay.") in
  let flows = Arg.(value & opt int 1_000 & info [ "flows" ] ~doc:"Flows in the workload.") in
  let fault_plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-plan" ] ~docv:"SPEC"
          ~doc:
            "Machine churn schedule, e.g. $(b,join\\@4:4;leave\\@8:1;fail\\@6:2) — \
             join\\@EPOCH:MACHINE, leave\\@EPOCH:MACHINE (graceful, state migrated), \
             fail\\@EPOCH:MACHINE (abrupt, state rebuilt from SCR digests).")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Scale an NF past one machine: maglev front tier over N machines, each running the \
          derived per-machine plan, with state-sharing flow groups pinned to one machine by \
          a second-level RS3 key.  Replays a trace (optionally under machine churn), checks \
          verdicts against the sequential NF and prices fleet throughput.")
    Term.(
      const run $ nf_arg $ chain_arg $ machines_arg $ cores_arg $ seed_arg $ pkts $ flows
      $ fault_plan $ stats_arg $ trace_json_arg)

let () =
  let doc = "Automatic parallelization of software network functions (NSDI'24 reproduction)" in
  let info = Cmd.info "maestro" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; analyze_cmd; parallelize_cmd; run_cmd; rebalance_cmd; cluster_cmd ]))
