(** RS3's key search (paper §3.5 and §4 "Finding good RSS keys").

    Two interchangeable backends solve the window equations:

    - [`Gauss]: the equations are a linear system over GF(2); Gaussian
      elimination gives the whole solution space and free bits are sampled
      directly (biased toward 1, the paper's soft-constraint goal).
    - [`Sat]: the equations become CNF clauses on our CDCL solver and key
      bits are seeded by soft assumption literals; on UNSAT the assumption
      core is extracted and a random subset of the clashing soft bits is
      discarded — the randomized Fu–Malik-style partial-MaxSAT diagnosis
      loop the paper adapts from [33].

    Candidate keys are accepted only after the §4 quality test
    ({!Validate.quality_ok}); degenerate solutions trigger re-sampling with
    a fresh seed, mirroring the paper's parallel-solver retry. *)

type backend = [ `Gauss | `Sat ]

type solution = {
  keys : Bitvec.t array;  (** one per port *)
  attempts : int;  (** sampling rounds until a quality key emerged *)
  backend : backend;
  free_bits : int;  (** dimension of the solution space *)
}

type error_kind =
  | Infeasible
      (** the window system is inconsistent, or no sampled solution passes
          the quality test — the solver-level symptom of disjoint
          requirements (rule R3) *)
  | Budget_exhausted
      (** the [`Sat] backend ran out of its conflict/propagation budget
          before deciding — the trigger of the pipeline's degradation
          ladder (maintain semantics at lower speed, paper §4.4) *)

val solve :
  ?backend:backend ->
  ?seed:int ->
  ?max_attempts:int ->
  ?one_bias:float ->
  ?budget:int * int ->
  Problem.t ->
  (solution, error_kind * string) result
(** [Error] carries the failure class (so callers can distinguish "no key
    exists" from "gave up searching") plus a human-readable explanation.
    [budget] is the [(conflicts, propagations)] allowance handed to every
    {!Sat.Solver.solve} call of the [`Sat] backend; the [`Gauss] backend
    decides in closed form and ignores it. *)
