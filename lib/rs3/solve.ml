type backend = [ `Gauss | `Sat ]

type solution = { keys : Bitvec.t array; attempts : int; backend : backend; free_bits : int }

type error_kind = Infeasible | Budget_exhausted

let c_solves = Telemetry.Counter.make "rs3.solves" ~doc:"RS3 key searches"
let c_attempts = Telemetry.Counter.make "rs3.attempts" ~doc:"key sampling rounds"
let c_rejects = Telemetry.Counter.make "rs3.quality_rejects" ~doc:"candidate keys failing the quality test"

let c_budget =
  Telemetry.Counter.make "rs3.budget_exhausted"
    ~doc:"key searches abandoned because the SAT budget ran out"

let infeasible fmt = Printf.ksprintf (fun m -> Error (Infeasible, m)) fmt

let no_quality_key max_attempts =
  infeasible
    "no quality key found in %d attempts: the constraints force a degenerate hash (disjoint \
     sharding requirements)"
    max_attempts

(* --- GF(2) backend ------------------------------------------------------- *)

let solve_gauss p ~rng ~max_attempts ~one_bias =
  let sys = Window.to_gf2 p in
  match Gf2.System.eliminate sys with
  | None -> infeasible "window equations are inconsistent"
  | Some solved ->
      let free_bits = Gf2.System.n_free solved in
      let rec attempt n =
        if n > max_attempts then no_quality_key max_attempts
        else
          let x = Gf2.System.sample solved ~rng ~one_bias in
          let keys = Window.keys_of_solution p x in
          Telemetry.Counter.incr c_attempts;
          if Validate.quality_ok p ~keys ~rng then
            Ok { keys; attempts = n; backend = `Gauss; free_bits }
          else begin
            Telemetry.Counter.incr c_rejects;
            attempt (n + 1)
          end
      in
      attempt 1

(* --- SAT backend --------------------------------------------------------- *)

let solve_sat p ~rng ~max_attempts ~one_bias ~budget =
  let nvars = Window.total_vars p in
  let s = Sat.Solver.create ~seed:(Random.State.bits rng) () in
  let vars = Array.init nvars (fun _ -> Sat.Solver.new_var s) in
  List.iter
    (fun eq ->
      match eq with
      | Window.Equal (pa, i, pb, j) ->
          let a = vars.(Window.var_of p ~port:pa ~bit:i)
          and b = vars.(Window.var_of p ~port:pb ~bit:j) in
          Sat.Solver.add_clause s [ Sat.Lit.neg a; Sat.Lit.pos b ];
          Sat.Solver.add_clause s [ Sat.Lit.pos a; Sat.Lit.neg b ]
      | Window.Zero (pt, i) ->
          Sat.Solver.add_clause s [ Sat.Lit.neg vars.(Window.var_of p ~port:pt ~bit:i) ])
    (Window.equations p);
  if not (Sat.Solver.okay s) then infeasible "window clauses are inconsistent"
  else
    let rec attempt n =
      if n > max_attempts then no_quality_key max_attempts
      else begin
        (* Seed every key bit as a soft assumption (biased toward 1), then
           relax by UNSAT cores until satisfiable: Fu–Malik-style diagnosis
           with randomized discarding, as in paper §4. *)
        let soft =
          ref
            (Array.to_list vars
            |> List.map (fun v -> Sat.Lit.make v (Random.State.float rng 1.0 < one_bias)))
        in
        let result = ref None in
        while !result = None do
          match Sat.Solver.solve ?budget ~assumptions:!soft s with
          | Sat.Solver.Sat ->
              let x = Array.map (fun v -> Sat.Solver.value s v) vars in
              result := Some (Ok x)
          | Sat.Solver.Unknown ->
              Telemetry.Counter.incr c_budget;
              result :=
                Some
                  (Error
                     ( Budget_exhausted,
                       Printf.sprintf
                         "SAT budget exhausted after %d conflicts / %d propagations while \
                          searching for an RSS key"
                         (Sat.Solver.n_conflicts s) (Sat.Solver.n_propagations s) ))
          | Sat.Solver.Unsat -> (
              match Sat.Solver.unsat_core s with
              | [] ->
                  (* hard clauses unsat; cannot happen for window equations *)
                  result := Some (Error (Infeasible, "window clauses are inconsistent"))
              | core ->
                  let keep l =
                    (not (List.exists (Sat.Lit.equal l) core)) || Random.State.bool rng
                  in
                  let kept = List.filter keep !soft in
                  (* guarantee progress even if every coin flip said keep *)
                  soft :=
                    (if List.length kept < List.length !soft then kept
                     else List.filter (fun l -> not (List.exists (Sat.Lit.equal l) core)) !soft))
        done;
        match !result with
        | Some (Error e) -> Error e
        | None -> assert false
        | Some (Ok x) ->
            let keys = Window.keys_of_solution p x in
            Telemetry.Counter.incr c_attempts;
            if Validate.quality_ok p ~keys ~rng then
              Ok { keys; attempts = n; backend = `Sat; free_bits = -1 }
            else begin
              Telemetry.Counter.incr c_rejects;
              attempt (n + 1)
            end
      end
    in
    attempt 1

let solve ?(backend = `Gauss) ?(seed = 0x1234) ?(max_attempts = 16) ?(one_bias = 0.5) ?budget p =
  Telemetry.Counter.incr c_solves;
  Telemetry.Span.with_span "rs3/solve" @@ fun () ->
  let rng = Random.State.make [| seed |] in
  match backend with
  | `Gauss -> solve_gauss p ~rng ~max_attempts ~one_bias
  | `Sat -> solve_sat p ~rng ~max_attempts ~one_bias ~budget
