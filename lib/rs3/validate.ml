(* full 32-bit draws: Random.int caps at 2^30, which would starve the top
   address bits that prefix-sharded keys hash *)
let rand32 rng = (Random.State.bits rng lsl 2) lxor Random.State.bits rng land 0xffffffff

(* Random packets carry a random tunnel view so that inner-header field
   sets see spread bits too: without it, every probe packet would hash the
   same zeroed inner 5-tuple and the solver's spread check could never
   pass for inner sets. *)
let random_pkt rng ~port =
  Packet.Pkt.make ~port ~ip_src:(rand32 rng) ~ip_dst:(rand32 rng)
    ~src_port:(Random.State.int rng 0x10000)
    ~dst_port:(Random.State.int rng 0x10000)
    ~encap:
      {
        Packet.Pkt.default_encap with
        tunnel_id = Random.State.int rng 0xffffff;
        in_ip_src = rand32 rng;
        in_ip_dst = rand32 rng;
        in_src_port = Random.State.int rng 0x10000;
        in_dst_port = Random.State.int rng 0x10000;
      }
    ()

let set_field (p : Packet.Pkt.t) f v = Packet.Pkt.set_field p f v

let hash_with (p : Problem.t) keys ~port pkt =
  match Nic.Field_set.hash_input p.Problem.field_sets.(port) pkt with
  | Some d -> Some (Nic.Toeplitz.hash_int ~key:keys.(port) d)
  | None -> None

let check_constraints (p : Problem.t) ~keys ~rng ~trials =
  let violation = ref None in
  List.iter
    (fun (c : Cstr.t) ->
      if !violation = None then
        for _ = 1 to trials do
          if !violation = None then begin
            let d_b = random_pkt rng ~port:c.Cstr.port_b in
            let d_a =
              List.fold_left
                (fun acc { Cstr.fa; fb; bits } ->
                  (* copy the matched prefix, keep the low bits random *)
                  let w = Packet.Field.width fa in
                  let mask_hi = ((1 lsl bits) - 1) lsl (w - bits) in
                  let v =
                    Packet.Pkt.field_int d_b fb land mask_hi
                    lor (Packet.Pkt.field_int acc fa land lnot mask_hi)
                  in
                  set_field acc fa v)
                (random_pkt rng ~port:c.Cstr.port_a)
                c.Cstr.pairs
            in
            match (hash_with p keys ~port:c.Cstr.port_a d_a, hash_with p keys ~port:c.Cstr.port_b d_b) with
            | Some ha, Some hb when ha <> hb ->
                violation :=
                  Some
                    (Format.asprintf "constraint %a violated: %08x vs %08x" Cstr.pp c ha hb)
            | _ -> ()
          end
        done)
    p.Problem.constraints;
  match !violation with Some msg -> Error msg | None -> Ok ()

type spread = {
  distinct_hashes : int;
  bucket_imbalance : float;
  nonempty_buckets : int;
  constant_hash : bool;
}

(* Buckets are measured at queue scale (64 >= any realistic core count), not
   at indirection-table scale: a legitimately coarse sharding key — a /8
   subnet prefix gives at most 256 hash values — must still count as healthy
   as long as it can feed every queue. *)
let spread_buckets = 64

let spread_of_key ~key ~field_set ~rng ~trials =
  let buckets = Array.make spread_buckets 0 in
  let seen = Hashtbl.create trials in
  for _ = 1 to trials do
    let pkt = random_pkt rng ~port:0 in
    match Nic.Field_set.hash_input field_set pkt with
    | Some d ->
        let h = Nic.Toeplitz.hash_int ~key d in
        Hashtbl.replace seen h ();
        buckets.(h land (spread_buckets - 1)) <- buckets.(h land (spread_buckets - 1)) + 1
    | None -> ()
  done;
  let total = Array.fold_left ( + ) 0 buckets in
  let mean = float_of_int total /. float_of_int spread_buckets in
  let worst = Array.fold_left max 0 buckets in
  {
    distinct_hashes = Hashtbl.length seen;
    bucket_imbalance = (if total = 0 then 1. else float_of_int worst /. mean);
    nonempty_buckets = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 buckets;
    constant_hash = Hashtbl.length seen <= 1;
  }

let quality_ok (p : Problem.t) ~keys ~rng =
  let trials = 4096 in
  Array.to_list (Array.mapi (fun port key -> (port, key)) keys)
  |> List.for_all (fun (port, key) ->
         let s = spread_of_key ~key ~field_set:p.Problem.field_sets.(port) ~rng ~trials in
         (* degenerate keys collapse to a handful of hash values or leave
            the low (table-indexing) hash bits dead; healthy ones — even
            legitimately coarse prefix-sharded ones — can feed every queue *)
         (not s.constant_hash)
         && s.distinct_hashes >= spread_buckets
         && s.nonempty_buckets >= spread_buckets / 2)
