let set_field (p : Packet.Pkt.t) f v = Packet.Pkt.set_field p f v

(* Packet whose hash-input bits equal [d]; header bits outside the selected
   slices are drawn randomly.  The base packet carries a random tunnel view
   so inner-header field sets have bits to overwrite. *)
let packet_of_input rng field_set d =
  let base =
    Packet.Pkt.make
      ~ip_src:(Random.State.int rng 0x3fffffff)
      ~ip_dst:(Random.State.int rng 0x3fffffff)
      ~src_port:(Random.State.int rng 0x10000)
      ~dst_port:(Random.State.int rng 0x10000)
      ~encap:
        {
          Packet.Pkt.default_encap with
          tunnel_id = Random.State.int rng 0xffffff;
          in_ip_src = Random.State.int rng 0x3fffffff;
          in_ip_dst = Random.State.int rng 0x3fffffff;
          in_src_port = Random.State.int rng 0x10000;
          in_dst_port = Random.State.int rng 0x10000;
        }
      ()
  in
  List.fold_left
    (fun (pkt, off) (f, bits) ->
      let w = Packet.Field.width f in
      let top = Bitvec.to_int (Bitvec.sub d ~pos:off ~len:bits) in
      let low_mask = (1 lsl (w - bits)) - 1 in
      let v = (top lsl (w - bits)) lor (Packet.Pkt.field_int base f land low_mask) in
      (set_field pkt f v, off + bits))
    (base, 0) (Nic.Field_set.slices field_set)
  |> fst

let colliding_packets ~key ~field_set ~target_hash ~rng ~n =
  let input_bits = Nic.Field_set.input_bits field_set in
  (* h_b(d) = ⊕_x d(x)·k(x+b): 32 linear equations over the input bits *)
  let sys = Gf2.System.create ~cols:input_bits in
  for b = 0 to 31 do
    let coeffs =
      List.filter (fun x -> Bitvec.get key (x + b)) (List.init input_bits Fun.id)
    in
    Gf2.System.add_equation sys ~coeffs ~rhs:((target_hash lsr (31 - b)) land 1 = 1)
  done;
  match Gf2.System.eliminate sys with
  | None -> invalid_arg "Attack.colliding_packets: no input hashes to the target"
  | Some solved ->
      let seen = Hashtbl.create n in
      let rec draw acc remaining budget =
        if remaining = 0 || budget = 0 then List.rev acc
        else
          let x = Gf2.System.sample solved ~rng ~one_bias:0.5 in
          let d = Bitvec.init input_bits (fun i -> x.(i)) in
          if Hashtbl.mem seen d then draw acc remaining (budget - 1)
          else begin
            Hashtbl.replace seen d ();
            draw (packet_of_input rng field_set d :: acc) (remaining - 1) (budget - 1)
          end
      in
      let pkts = draw [] n (20 * n) in
      if pkts = [] then invalid_arg "Attack.colliding_packets: empty solution space"
      else pkts

let collision_rate ~key ~field_set pkts =
  let counts = Hashtbl.create 64 in
  let total = ref 0 in
  List.iter
    (fun p ->
      match Nic.Field_set.hash_input field_set p with
      | Some d ->
          incr total;
          let h = Nic.Toeplitz.hash_int ~key d in
          Hashtbl.replace counts h (1 + Option.value ~default:0 (Hashtbl.find_opt counts h))
      | None -> ())
    pkts;
  if !total = 0 then 0.0
  else
    float_of_int (Hashtbl.fold (fun _ c acc -> max c acc) counts 0) /. float_of_int !total
