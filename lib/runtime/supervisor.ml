(* Restart policy and failure bookkeeping for the pool's worker domains.

   The supervisor never touches domains itself — OCaml domains cannot be
   preempted or killed from outside — it only decides.  The pool's
   producer (the only thread that can safely join a dead domain and
   respawn it) reports deaths and heartbeat observations here and acts on
   the returned decision.  Time is logical: the producer advances it by
   calling [tick] on its wait-loop checks, so every decision is a
   deterministic function of the observed event sequence, never of the
   wall clock — fault-injection tests replay identically. *)

type config = {
  max_restarts : int;
  window : int;
  backoff_base : int;
  backoff_factor : int;
  stall_checks : int;
}

(* [stall_checks] must dwarf the checks that accumulate while one healthy
   batch is in flight: the producer observes every 256 spins (~1 µs) and a
   32-packet batch takes tens of µs, so a small threshold flags ordinary
   processing as stuck.  512 checks (~0.5 ms of stagnation with work
   queued) clears healthy batches by ~30x while still firing well inside
   any stall worth reporting. *)
let default_config =
  { max_restarts = 4; window = 4096; backoff_base = 64; backoff_factor = 4; stall_checks = 512 }

type event =
  | Restarted of { core : int; attempt : int; backoff_spins : int }
  | Gave_up of { core : int; restarts : int }
  | Stuck of { core : int; checks : int }

type decision = [ `Restart of int | `Give_up ]

type core_state = {
  mutable restart_ticks : int list;  (* logical times of restarts, newest first *)
  mutable last_heartbeat : int;
  mutable stagnant : int;  (* consecutive no-progress observations with work queued *)
  mutable stuck_reported : bool;
}

type t = {
  config : config;
  cores : core_state array;
  mutable now : int;
  mutable events : event list; (* newest first *)
}

let c_restarts =
  Telemetry.Counter.make "supervisor.restarts" ~doc:"worker domains restarted after a crash"

let c_gave_up =
  Telemetry.Counter.make "supervisor.gave_up"
    ~doc:"workers declared permanently failed (restart budget exhausted)"

let c_stuck =
  Telemetry.Counter.make "supervisor.stuck_detected"
    ~doc:"live workers flagged as stuck (heartbeat stopped with work queued)"

let create ?(config = default_config) ~cores () =
  if config.max_restarts < 0 then invalid_arg "Supervisor.create: max_restarts";
  if config.stall_checks < 1 then invalid_arg "Supervisor.create: stall_checks";
  {
    config;
    cores =
      Array.init cores (fun _ ->
          { restart_ticks = []; last_heartbeat = 0; stagnant = 0; stuck_reported = false });
    now = 0;
    events = [];
  }

let tick t = t.now <- t.now + 1

let events t = List.rev t.events

let restarts t =
  List.length (List.filter (function Restarted _ -> true | _ -> false) t.events)

let on_death t ~core =
  let st = t.cores.(core) in
  st.restart_ticks <- List.filter (fun tk -> t.now - tk < t.config.window) st.restart_ticks;
  let prior = List.length st.restart_ticks in
  if prior >= t.config.max_restarts then begin
    Telemetry.Counter.incr c_gave_up;
    t.events <- Gave_up { core; restarts = prior } :: t.events;
    `Give_up
  end
  else begin
    st.restart_ticks <- t.now :: st.restart_ticks;
    let attempt = prior + 1 in
    let backoff =
      let b = ref t.config.backoff_base in
      for _ = 2 to attempt do
        b := !b * t.config.backoff_factor
      done;
      !b
    in
    Telemetry.Counter.incr c_restarts;
    t.events <- Restarted { core; attempt; backoff_spins = backoff } :: t.events;
    `Restart backoff
  end

let note_heartbeat t ~core ~heartbeat ~ring_len =
  let st = t.cores.(core) in
  if ring_len = 0 || heartbeat <> st.last_heartbeat then begin
    st.last_heartbeat <- heartbeat;
    st.stagnant <- 0;
    st.stuck_reported <- false;
    `Ok
  end
  else begin
    st.stagnant <- st.stagnant + 1;
    if st.stagnant >= t.config.stall_checks && not st.stuck_reported then begin
      st.stuck_reported <- true;
      Telemetry.Counter.incr c_stuck;
      t.events <- Stuck { core; checks = st.stagnant } :: t.events;
      `Stuck
    end
    else `Ok
  end

let pp_event fmt = function
  | Restarted { core; attempt; backoff_spins } ->
      Format.fprintf fmt "core %d restarted (attempt %d, backoff %d spins)" core attempt
        backoff_spins
  | Gave_up { core; restarts } ->
      Format.fprintf fmt "core %d failed permanently after %d restarts" core restarts
  | Stuck { core; checks } ->
      Format.fprintf fmt "core %d stuck (%d checks without progress)" core checks
