(** Online discipline switching: pick the cheapest parallelization rung
    the *current* traffic admits, live.

    The compile-time ladder ({!Maestro.Ladder}) chooses one rung for the
    whole run; NFork (arXiv 2309.01494) observes that the right rung is a
    property of the workload, not just the NF — a shared-nothing plan is
    fastest under balanced traffic but bottlenecks on one core under
    skew, while SCR spreads any skew across cores at a fixed digest
    cost.  This module is the controller half of that argument: it
    watches per-epoch pool statistics and asks {!Runtime.Pool} to switch
    the live pool between admissible rungs at the epoch quiesce barrier,
    where the state conversions (shard merge/split via
    {!Balancer.migrate}, replica seeding via {!Dsl.Instance.copy}) are
    safe.

    Hysteresis, not reaction: a switch needs the imbalance to leave the
    [down]..[up] dead band, an upward switch additionally needs
    [cooldown + 1] consecutive calm epochs, and every committed switch
    opens a [cooldown]-epoch window in which further switches are
    suppressed (and counted as {!flap_suppressed}) — an oscillating
    trace settles on one rung instead of flapping.  Dispatch imbalance
    pressures only the shared-nothing rung (the other rungs are
    skew-immune by construction), but sustained skew still blocks the
    climb back up: calm requires the imbalance below [down].

    Admissibility is pinned to compile time: the controller never climbs
    above the plan's rung, SCR participates only when
    {!Maestro.Scrspec.admissible} derived a digest, and shared-nothing
    participates only when the {!Balancer} migration plan is exact (a
    lossy shard split would fork verdicts from sequential semantics). *)

(** {1 Policy} *)

type config = {
  epoch_pkts : int;  (** packets between controller decisions *)
  up : float;  (** step down a rung when imbalance exceeds this *)
  down : float;  (** step up only while imbalance is below this *)
  cooldown : int;  (** epochs after a switch during which further switches are suppressed *)
}

val default_config : config
(** [epoch_pkts = 4096], [up = 1.5], [down = 1.15], [cooldown = 2]. *)

type mode = Off | On of config

val parse : string -> (mode, string) result
(** Parse an [--adaptive] specification: ["off"], ["on"], or a
    comma-separated list of [epochs=N], [up=F], [down=F], [cooldown=N]
    (each implies [On]; missing fields take {!default_config} values).
    Built on {!Balancer.Kv} — the same parser shape, the same typed
    errors.  Rejects [up <= down] (no hysteresis band). *)

val to_string : mode -> string

(** {1 Admissibility} *)

val ladder :
  strategy:Maestro.Plan.strategy ->
  scr_ok:bool ->
  exact_migration:bool ->
  (Maestro.Ladder.rung list, string) result
(** The admissible rungs for a plan, fastest first: the plan's own rung
    and everything below it ({!Maestro.Ladder.descent}), minus SCR when
    [scr_ok] is false and minus shared-nothing when [exact_migration] is
    false.  [Error] for load-balance plans (no state-owning rung to
    switch).  An inadmissible rung is simply absent, so a step-down
    request from the rung above it lands on the next admissible rung. *)

(** {1 Controller} *)

type obs = {
  imbalance : float;
      (** max/mean of the would-be RSS dispatch counts this epoch —
          computed from packet hashes in {e every} rung, because SCR's
          round-robin spray hides skew from actual dispatch counts *)
  drops : int;  (** batches dropped by backpressure this epoch *)
  restarts : int;  (** worker restarts recovered this epoch *)
  digest_bytes : int;  (** SCR digest bytes broadcast this epoch *)
}

type decision =
  | Stay
  | Switch of Maestro.Ladder.rung  (** perform the conversion, then {!commit} *)
  | Suppressed of Maestro.Ladder.rung
      (** the cooldown window blocked a switch that would have fired *)

type t

val create : config -> ladder:Maestro.Ladder.rung list -> t
(** A controller starting on the first (fastest admissible) rung.
    Raises [Invalid_argument] on an empty ladder. *)

val rung : t -> Maestro.Ladder.rung
val admissible : t -> Maestro.Ladder.rung list

val observe : t -> obs -> decision
(** Feed one epoch's statistics; must be called exactly once per epoch,
    at the quiesce barrier.  A pending deferred switch ({!defer}) is
    re-issued before any fresh analysis. *)

val commit : t -> Maestro.Ladder.rung -> unit
(** The pool completed the conversion: adopt the rung, open the cooldown
    window.  Raises [Invalid_argument] for a rung outside the ladder. *)

val defer : t -> Maestro.Ladder.rung -> unit
(** The pool declined to switch this barrier (a worker crash in the same
    epoch was recovered by the old rung's replay/rebuild path); the
    switch is retried at the next barrier. *)

(** {1 Accounting} *)

val switches : t -> int
val flap_suppressed : t -> int

val switch_epochs : t -> (int * Maestro.Ladder.rung) list
(** Committed switches in order: (1-based epoch index, rung adopted). *)

val residency : t -> (Maestro.Ladder.rung * int) list
(** Epochs spent on each rung, fastest first (admissible rungs always
    listed, others only when visited). *)
