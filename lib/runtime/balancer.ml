(* Policy parsing, migration-plan analysis and the quiesced state handoff.
   See balancer.mli for the design notes. *)

type config = { epoch_pkts : int; threshold : float }

let default_config = { epoch_pkts = 4096; threshold = 1.1 }

type mode = Off | On of config

(* The shared parser shape for mode flags: "off" | "on" | comma-separated
   key=value tokens (implying "on"), every malformed input a typed Error.
   [--rebalance] and [--adaptive] (see {!Adaptive.parse}) both build on
   it, so the two flags reject garbage identically. *)
module Kv = struct
  let parse ~flag ~grammar ~default ~field spec =
    let spec = String.trim spec in
    if spec = "" then Error (Printf.sprintf "%s: empty specification" flag)
    else if spec = "off" then Ok None
    else if spec = "on" then Ok (Some default)
    else
      let tokens = String.split_on_char ',' spec in
      let rec go cfg = function
        | [] -> Ok (Some cfg)
        | tok :: rest -> (
            match String.index_opt tok '=' with
            | None ->
                Error
                  (Printf.sprintf "%s: unknown token %S (expected %s)" flag tok grammar)
            | Some i -> (
                let k = String.trim (String.sub tok 0 i) in
                let v = String.trim (String.sub tok (i + 1) (String.length tok - i - 1)) in
                match field ~key:k ~value:v cfg with
                | Ok cfg -> go cfg rest
                | Error _ as e -> e))
      in
      go default tokens

  let pos_int ~flag ~key v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (Printf.sprintf "%s: %s must be a positive integer, got %S" flag key v)

  let nonneg_int ~flag ~key v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "%s: %s must be a non-negative integer, got %S" flag key v)

  let ratio ~flag ~key v =
    match float_of_string_opt v with
    | Some f when f >= 1.0 -> Ok f
    | _ -> Error (Printf.sprintf "%s: %s must be >= 1.0, got %S" flag key v)
end

let parse spec =
  let flag = "--rebalance" in
  let ( let* ) = Result.bind in
  let field ~key ~value cfg =
    match key with
    | "epoch" ->
        let* n = Kv.pos_int ~flag ~key value in
        Ok { cfg with epoch_pkts = n }
    | "threshold" ->
        let* f = Kv.ratio ~flag ~key value in
        Ok { cfg with threshold = f }
    | _ -> Error (Printf.sprintf "%s: unknown key %S" flag key)
  in
  match
    Kv.parse ~flag ~grammar:"off, on, epoch=N or threshold=F" ~default:default_config ~field
      spec
  with
  | Ok None -> Ok Off
  | Ok (Some cfg) -> Ok (On cfg)
  | Error _ as e -> e

let to_string = function
  | Off -> "off"
  | On { epoch_pkts; threshold } -> Printf.sprintf "epoch=%d,threshold=%g" epoch_pkts threshold

(* ------------------------------------------------------------------ *)
(* Migration planning                                                  *)
(* ------------------------------------------------------------------ *)

(* One serialized segment of a map key, in [Ast.key_of_parts] order.  A key
   is decodable back into packet fields exactly when every expression in the
   [Map_put] key is a plain header field, the input port, or a constant. *)
type seg =
  | Seg_field of Packet.Field.t
  | Seg_port
  | Seg_const of int * int (* width, value *)

type group = {
  chain : string;
  purges : (string * string) list; (* (map, keyvec) pairs, Chain_expire order *)
  vectors : string list; (* chain-tied vectors, keyvecs included *)
}

type migration_plan = {
  groups : group list;
  lone_maps : (string * seg list list) list; (* written, chain-free, decodable *)
  specs : (string * seg list list) list; (* map -> decodable put-key specs *)
  skipped : string list;
  exact_ : bool;
}

let exact p = p.exact_
let skipped_objects p = p.skipped

let seg_of_expr = function
  | Dsl.Ast.Field f -> Some (Seg_field f)
  | Dsl.Ast.In_port -> Some Seg_port
  | Dsl.Ast.Const (w, v) -> Some (Seg_const (w, v))
  | _ -> None

let spec_of_key key =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | e :: rest -> ( match seg_of_expr e with Some s -> go (s :: acc) rest | None -> None)
  in
  go [] key

let rec expr_vars acc = function
  | Dsl.Ast.Const _ | Dsl.Ast.Field _ | Dsl.Ast.In_port | Dsl.Ast.Now | Dsl.Ast.Pkt_len -> acc
  | Dsl.Ast.Var x -> x :: acc
  | Dsl.Ast.Record_field _ -> acc
  | Dsl.Ast.Bin (_, a, b) -> expr_vars (expr_vars acc a) b
  | Dsl.Ast.Not e | Dsl.Ast.Cast (_, e) -> expr_vars acc e

(* Chains whose index a variable carries, under the environment [env]
   (variable -> chain). *)
let chains_in env e =
  List.filter_map (fun x -> List.assoc_opt x env) (expr_vars [] e)

let migration_plan (nf : Dsl.Ast.t) =
  let purge_pairs : (string, (string * string) list) Hashtbl.t = Hashtbl.create 8 in
  let put_specs : (string, seg list list) Hashtbl.t = Hashtbl.create 8 in
  let written_maps = Hashtbl.create 8 in
  let written_vecs = Hashtbl.create 8 in
  let written_sketches = Hashtbl.create 8 in
  let vec_ties : (string, string) Hashtbl.t = Hashtbl.create 8 in
  (* vector -> chain *)
  let vec_loose = Hashtbl.create 8 in
  (* vectors also indexed by a non-chain expression *)
  let unsupported : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* chains the analysis gave up on *)
  let mark_unsupported cs = List.iter (fun c -> Hashtbl.replace unsupported c ()) cs in
  let note_spec obj key =
    match spec_of_key key with
    | None -> ()
    | Some spec ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt put_specs obj) in
        if not (List.mem spec prev) then Hashtbl.replace put_specs obj (spec :: prev)
  in
  let tie_vector env obj index =
    match index with
    | Dsl.Ast.Var x when List.mem_assoc x env ->
        let c = List.assoc x env in
        (match Hashtbl.find_opt vec_ties obj with
        | None -> Hashtbl.replace vec_ties obj c
        | Some c' when c' = c -> ()
        | Some c' ->
            (* one vector indexed by two different chains: give up on both *)
            mark_unsupported [ c; c' ]);
        ()
    | _ ->
        (match chains_in env index with
        | [] -> Hashtbl.replace vec_loose obj ()
        | cs ->
            (* index arithmetic on a chain index defeats slot-for-slot
               migration *)
            mark_unsupported cs);
        ()
  in
  let bind env x = List.remove_assoc x env in
  let rec walk env (s : Dsl.Ast.stmt) =
    match s with
    | Dsl.Ast.If (_, a, b) ->
        walk env a;
        walk env b
    | Dsl.Ast.Let (x, e, k) -> (
        match e with
        | Dsl.Ast.Var y when List.mem_assoc y env ->
            walk ((x, List.assoc y env) :: bind env x) k
        | _ ->
            mark_unsupported (chains_in env e);
            walk (bind env x) k)
    | Dsl.Ast.Map_get { obj; value; k; _ } ->
        let env = bind env value in
        let env =
          match
            Hashtbl.fold
              (fun chain pairs acc ->
                if List.exists (fun (m, _) -> m = obj) pairs then Some chain else acc)
              purge_pairs None
          with
          | Some chain -> (value, chain) :: env
          | None -> env
        in
        walk env k
    | Dsl.Ast.Map_put { obj; key; value; ok; k } ->
        Hashtbl.replace written_maps obj ();
        note_spec obj key;
        (match value with
        | Dsl.Ast.Var x when List.mem_assoc x env ->
            let c = List.assoc x env in
            let paired =
              match Hashtbl.find_opt purge_pairs c with
              | Some pairs -> List.exists (fun (m, _) -> m = obj) pairs
              | None -> false
            in
            (* storing a chain index in a map that Chain_expire does not
               purge would leave a dangling index after migration *)
            if not paired then mark_unsupported [ c ]
        | _ -> mark_unsupported (chains_in env value));
        walk (bind env ok) k
    | Dsl.Ast.Map_erase { obj; k; _ } ->
        Hashtbl.replace written_maps obj ();
        walk env k
    | Dsl.Ast.Vec_get { obj; index; k; _ } ->
        tie_vector env obj index;
        walk env k
    | Dsl.Ast.Vec_set { obj; index; fields; k } ->
        Hashtbl.replace written_vecs obj ();
        tie_vector env obj index;
        List.iter (fun (_, e) -> mark_unsupported (chains_in env e)) fields;
        walk env k
    | Dsl.Ast.Chain_alloc { obj; index; k_ok; k_fail } ->
        walk ((index, obj) :: bind env index) k_ok;
        walk (bind env index) k_fail
    | Dsl.Ast.Chain_rejuv { k; _ } -> walk env k
    | Dsl.Ast.Chain_expire { k; _ } -> walk env k
    | Dsl.Ast.Sketch_touch { obj; k; _ } ->
        Hashtbl.replace written_sketches obj ();
        walk env k
    | Dsl.Ast.Sketch_query { count; k; _ } -> walk (bind env count) k
    | Dsl.Ast.Set_field (_, e, k) ->
        mark_unsupported (chains_in env e);
        walk env k
    | Dsl.Ast.Forward e -> mark_unsupported (chains_in env e)
    | Dsl.Ast.Drop -> ()
  in
  (* Purge pairs first (they inform Map_get index bindings), then the
     variable-flow walk. *)
  let rec collect_purges (s : Dsl.Ast.stmt) =
    match s with
    | Dsl.Ast.If (_, a, b) ->
        collect_purges a;
        collect_purges b
    | Dsl.Ast.Let (_, _, k)
    | Dsl.Ast.Map_get { k; _ }
    | Dsl.Ast.Map_put { k; _ }
    | Dsl.Ast.Map_erase { k; _ }
    | Dsl.Ast.Vec_get { k; _ }
    | Dsl.Ast.Vec_set { k; _ }
    | Dsl.Ast.Chain_rejuv { k; _ }
    | Dsl.Ast.Sketch_touch { k; _ }
    | Dsl.Ast.Sketch_query { k; _ }
    | Dsl.Ast.Set_field (_, _, k) ->
        collect_purges k
    | Dsl.Ast.Chain_expire { obj; purges; k; _ } ->
        (match Hashtbl.find_opt purge_pairs obj with
        | None -> Hashtbl.replace purge_pairs obj purges
        | Some prev when prev = purges -> ()
        | Some _ -> Hashtbl.replace unsupported obj ());
        collect_purges k
    | Dsl.Ast.Chain_alloc { k_ok; k_fail; _ } ->
        collect_purges k_ok;
        collect_purges k_fail
    | Dsl.Ast.Forward _ | Dsl.Ast.Drop -> ()
  in
  collect_purges nf.Dsl.Ast.process;
  walk [] nf.Dsl.Ast.process;
  (* A purge map whose put keys are not all decodable defeats migration of
     its chain (we could not rehash the flows). *)
  Hashtbl.iter
    (fun chain pairs ->
      List.iter
        (fun (m, _) ->
          if Hashtbl.find_opt put_specs m = None then Hashtbl.replace unsupported chain ())
        pairs)
    purge_pairs;
  let decl_names kind =
    List.filter_map kind nf.Dsl.Ast.state
  in
  let chains =
    decl_names (function Dsl.Ast.Decl_chain { name; _ } -> Some name | _ -> None)
  in
  let purge_map_names =
    Hashtbl.fold (fun _ pairs acc -> List.map fst pairs @ acc) purge_pairs []
  in
  let groups =
    List.filter_map
      (fun chain ->
        match Hashtbl.find_opt purge_pairs chain with
        | Some ((_ :: _) as purges) when not (Hashtbl.mem unsupported chain) ->
            let keyvecs = List.map snd purges in
            let tied =
              Hashtbl.fold
                (fun v c acc -> if c = chain && not (List.mem v acc) then v :: acc else acc)
                vec_ties []
            in
            let vectors =
              List.sort_uniq compare (keyvecs @ tied)
            in
            (* a tied vector that is also indexed some other way cannot
               move slot-for-slot *)
            if List.exists (fun v -> Hashtbl.mem vec_loose v) vectors then None
            else Some { chain; purges; vectors }
        | _ -> None)
      chains
  in
  let supported_chains = List.map (fun g -> g.chain) groups in
  let supported_vectors = List.concat_map (fun g -> g.vectors) groups in
  let lone_maps =
    Hashtbl.fold
      (fun m () acc ->
        if List.mem m purge_map_names then acc
        else
          match Hashtbl.find_opt put_specs m with
          | Some specs -> (m, specs) :: acc
          | None -> acc)
      written_maps []
  in
  let lone_map_names = List.map fst lone_maps in
  let skipped =
    let written_chains =
      (* a chain is "written" if the NF declares it and it is not static
         config: every chain that appears in the process tree allocates *)
      List.filter (fun c -> not (List.mem c supported_chains)) chains
    in
    let maps =
      Hashtbl.fold
        (fun m () acc ->
          if List.mem m lone_map_names then acc
          else if
            List.exists
              (fun g -> List.exists (fun (pm, _) -> pm = m) g.purges)
              groups
          then acc
          else m :: acc)
        written_maps []
    in
    let vecs =
      Hashtbl.fold
        (fun v () acc -> if List.mem v supported_vectors then acc else v :: acc)
        written_vecs []
    in
    let sketches = Hashtbl.fold (fun s () acc -> s :: acc) written_sketches [] in
    List.sort_uniq compare (written_chains @ maps @ vecs @ sketches)
  in
  let exact_ =
    (* sketches are estimators: skipping them degrades estimates, not
       exact state *)
    List.for_all (fun o -> Hashtbl.mem written_sketches o) skipped
  in
  {
    groups;
    lone_maps;
    specs = Hashtbl.fold (fun m s acc -> (m, s) :: acc) put_specs [];
    skipped;
    exact_;
  }

(* ------------------------------------------------------------------ *)
(* Key decoding                                                        *)
(* ------------------------------------------------------------------ *)

let seg_bits = function
  | Seg_field f -> Packet.Field.width f
  | Seg_port -> 16
  | Seg_const (w, _) -> w

let seg_bytes s = (seg_bits s + 7) / 8

let mask_width w v = if w >= 63 then v else v land ((1 lsl w) - 1)

let read_be key off bytes =
  let v = ref 0 in
  for i = 0 to bytes - 1 do
    v := (!v lsl 8) lor Char.code key.[off + i]
  done;
  !v

(* Decode a serialized key against one spec: the port (if the key embeds
   [In_port]) and the header fields.  [None] when lengths or embedded
   constants disagree. *)
let try_spec spec key =
  let total = List.fold_left (fun acc s -> acc + seg_bytes s) 0 spec in
  if String.length key <> total then None
  else
    let rec go off port fields = function
      | [] -> Some (port, List.rev fields)
      | s :: rest -> (
          let b = seg_bytes s in
          let v = read_be key off b in
          match s with
          | Seg_field f -> go (off + b) port ((f, v) :: fields) rest
          | Seg_port -> go (off + b) (Some v) fields rest
          | Seg_const (w, c) -> if v = mask_width w c then go (off + b) port fields rest else None)
    in
    go 0 None [] spec

let decode specs key = List.find_map (fun spec -> try_spec spec key) specs

let pkt_of_fields ?port fields =
  let base = Packet.Pkt.make ?port ~ip_src:0 ~ip_dst:0 ~src_port:0 ~dst_port:0 () in
  List.fold_left (fun p (f, v) -> Packet.Pkt.set_field p f v) base fields

(* ------------------------------------------------------------------ *)
(* Migration execution                                                 *)
(* ------------------------------------------------------------------ *)

type outcome = { moved_flows : int; dropped_flows : int }

let find_map inst name =
  match Dsl.Instance.find inst name with
  | Dsl.Instance.O_map m -> m
  | _ -> invalid_arg ("Balancer.migrate: " ^ name ^ " is not a map")

let find_chain inst name =
  match Dsl.Instance.find inst name with
  | Dsl.Instance.O_chain c -> c
  | _ -> invalid_arg ("Balancer.migrate: " ^ name ^ " is not a chain")

let find_slots inst name =
  match Dsl.Instance.find inst name with
  | Dsl.Instance.O_vector (layout, slots) -> (layout, slots)
  | _ -> invalid_arg ("Balancer.migrate: " ^ name ^ " is not a vector")

let rebuild_key inst keyvec i =
  let layout, slots = find_slots inst keyvec in
  Dsl.Ast.key_of_parts (List.mapi (fun j (_, w) -> (w, slots.(i).(j))) layout)

let migrate_group plan g ~hash ~owner ~instances ~moved ~dropped =
  let primary_map = fst (List.hd g.purges) in
  let specs = List.assoc primary_map plan.specs in
  Array.iteri
    (fun s inst ->
      let chain = find_chain inst g.chain in
      let entries = ref [] in
      State.Dchain.iter_allocated chain (fun i touch -> entries := (i, touch) :: !entries);
      List.iter
        (fun (i, touch) ->
          let primary_key = rebuild_key inst (snd (List.hd g.purges)) i in
          match decode specs primary_key with
          | None -> () (* key not produced by a decodable put: leave in place *)
          | Some (port, fields) -> (
              match hash (pkt_of_fields ?port fields) with
              | None -> ()
              | Some h ->
                  let d = owner h in
                  if d <> s then begin
                    let tgt = instances.(d) in
                    (* rebuild every purge key before slots are disturbed *)
                    let purge_keys =
                      List.map (fun (m, kv) -> (m, rebuild_key inst kv i)) g.purges
                    in
                    let drop_from_source () =
                      List.iter
                        (fun (m, key) -> ignore (State.Map_s.erase (find_map inst m) key))
                        purge_keys;
                      List.iter
                        (fun v ->
                          let _, slots = find_slots inst v in
                          slots.(i) <- Array.make (Array.length slots.(i)) 0)
                        g.vectors;
                      ignore (State.Dchain.free chain i);
                      incr dropped
                    in
                    let room =
                      List.for_all
                        (fun (m, _) ->
                          let tm = find_map tgt m in
                          State.Map_s.size tm < State.Map_s.capacity tm)
                        purge_keys
                    in
                    if not room then drop_from_source ()
                    else
                      match State.Dchain.allocate_at (find_chain tgt g.chain) ~touched:touch with
                      | None -> drop_from_source ()
                      | Some j ->
                          List.iter
                            (fun v ->
                              let _, src = find_slots inst v in
                              let _, dst = find_slots tgt v in
                              dst.(j) <- Array.copy src.(i);
                              src.(i) <- Array.make (Array.length src.(i)) 0)
                            g.vectors;
                          List.iter
                            (fun (m, key) ->
                              ignore (State.Map_s.erase (find_map inst m) key);
                              ignore (State.Map_s.put (find_map tgt m) key j))
                            purge_keys;
                          ignore (State.Dchain.free chain i);
                          incr moved
                  end))
        (List.rev !entries))
    instances

let migrate_lone_map (name, specs) ~hash ~owner ~instances ~moved ~dropped =
  Array.iteri
    (fun s inst ->
      let m_s = find_map inst name in
      List.iter
        (fun (key, v) ->
          match decode specs key with
          | None -> ()
          | Some (port, fields) -> (
              match hash (pkt_of_fields ?port fields) with
              | None -> ()
              | Some h ->
                  let d = owner h in
                  if d <> s then begin
                    let m_d = find_map instances.(d) name in
                    if State.Map_s.mem m_d key || State.Map_s.size m_d < State.Map_s.capacity m_d
                    then begin
                      ignore (State.Map_s.put m_d key v);
                      ignore (State.Map_s.erase m_s key);
                      incr moved
                    end
                    else begin
                      ignore (State.Map_s.erase m_s key);
                      incr dropped
                    end
                  end))
        (State.Map_s.entries m_s))
    instances

let migrate_by plan ~hash ~owner ~instances =
  let moved = ref 0 and dropped = ref 0 in
  List.iter (fun g -> migrate_group plan g ~hash ~owner ~instances ~moved ~dropped) plan.groups;
  List.iter (fun lm -> migrate_lone_map lm ~hash ~owner ~instances ~moved ~dropped) plan.lone_maps;
  { moved_flows = !moved; dropped_flows = !dropped }

let migrate plan ~hash ~mask ~dest ~instances =
  migrate_by plan ~hash ~owner:(fun h -> dest (h land mask)) ~instances
