(** Real multicore execution on OCaml 5 domains.

    Shared-nothing plans run with one domain per core, each owning its state
    instance — no synchronization whatsoever, exactly the generated
    architecture.  Lock-based plans share one instance guarded by the
    {!Rwlock}: packets classified as read-only take the core-local flag,
    writers take all flags (the speculative-restart discipline is
    approximated by a pre-classification pass so the shared interpreter
    state is never mutated under a read lock).

    All three entry points are thin wrappers over the persistent
    process-global {!Pool}: worker domains are spawned once and fed batches
    through SPSC rings, not respawned per call.  The historical
    spawn-per-run implementations remain available as the [*_spawning]
    variants for benchmarking and as an independent oracle.

    Verdicts are returned in the original packet order.  On a shared-nothing
    plan they are deterministic regardless of scheduling, because same-flow
    packets never cross cores — the property Maestro's RSS keys establish. *)

val run_shared_nothing :
  Maestro.Plan.t -> Packet.Pkt.t array -> Dsl.Interp.action array
(** Raises [Invalid_argument] if the plan is not shared-nothing. *)

val run_lock_based : Maestro.Plan.t -> Packet.Pkt.t array -> Dsl.Interp.action array
(** Runs any shared-state plan with the read/write lock.  NOTE: per-core
    verdict streams are deterministic, but cross-core write interleaving can
    differ from arrival order (as on real hardware); use the deterministic
    {!Parallel.run} for exact equivalence checks. *)

val run_tm : Maestro.Plan.t -> Packet.Pkt.t array -> Dsl.Interp.action array
(** Runs a transactional-memory plan on real domains.  OCaml has no
    transactional rollback, so the TM discipline executes under the same
    conservative lock classification as {!run_lock_based} (abort/retry
    behavior is modeled deterministically in {!Parallel.run}).  Raises
    [Invalid_argument] if the plan is not TM. *)

(** {1 Spawn-per-run baselines}

    The pre-pool implementations: one [Domain.spawn] per core per call.
    Kept as the baseline for the pool-vs-spawn micro benchmark and as an
    independent oracle in the equivalence tests. *)

val run_shared_nothing_spawning :
  Maestro.Plan.t -> Packet.Pkt.t array -> Dsl.Interp.action array

val run_lock_based_spawning :
  Maestro.Plan.t -> Packet.Pkt.t array -> Dsl.Interp.action array
