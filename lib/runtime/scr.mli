(** State-compute replication (SCR), dynamic half.

    SCR is the fourth parallelization discipline (Xu et al., arXiv
    2309.14647), sitting between shared-nothing and lock-based on the
    degradation ladder: every core keeps a {e full} replica of the NF's
    state, the dispatcher derives a compact {e update digest} from each
    packet at dispatch time, and every non-owning core replays the
    digest against its replica by re-executing only the NF's
    {e write-slice} — the statement tree with every subtree that cannot
    reach a state write pruned away ({!Maestro.Scrspec}).  No core ever
    waits for another: owners run the full NF for the verdict, peers
    replay write-slices, and because every core consumes the global
    packet stream in arrival order, all replicas walk the sequential
    state trajectory exactly.

    The static analysis — which header fields the digest must carry,
    how many bytes that costs per packet, and whether the NF is
    admissible at all — lives in {!Maestro.Scrspec}; this module stages
    the write-slice once ({!prepare}), binds it per replica ({!bind}),
    and moves digests as flat [int] arrays sized by {!ints_per_pkt}, so
    a whole batch's digest is one array pushed over an SPSC ring. *)

type t
(** A prepared SCR program: the staged write-slice plus its digest
    layout.  Instance-independent; bind once per replica. *)

val prepare : ?compiled:bool -> Maestro.Scrspec.t -> t
(** Stage the write-slice of an admissible spec ({!Maestro.Scrspec.admissible}).
    [compiled] selects the compiled or interpreted runner, defaulting to
    {!Dsl.Compile.set_default}.  Raises [Invalid_argument] if the slice
    fails {!Dsl.Check.check} (impossible for a spec derived from a
    checked NF). *)

val spec : t -> Maestro.Scrspec.t

val ints_per_pkt : t -> int
(** Digest stride: [int] slots per packet (one per digest field, plus
    port / length / timestamp slots when present). *)

val digest_wire_bytes : t -> int
(** What the digest would cost on a real wire, in bytes per packet —
    {!Maestro.Scrspec.t.digest_bytes}; feeds the SCR throughput model
    and the [pool.scr_digest_bytes] counter. *)

(** {1 Encoding} *)

val encode : t -> Packet.Pkt.t -> int array -> int -> unit
(** [encode t pkt buf off] writes [pkt]'s digest segment at [buf.(off)
    ..], using exactly {!ints_per_pkt} slots. *)

val encode_batch : t -> Packet.Pkt.t array -> lo:int -> len:int -> int array
(** Digest for the batch [pkts.(lo) .. pkts.(lo+len-1)] as one freshly
    allocated array of [len * ints_per_pkt] slots. *)

val decode : t -> int array -> int -> Packet.Pkt.t
(** [decode t buf off] reconstructs the pseudo-packet of the digest
    segment at [off] — the packet {!apply} replays the write-slice with.
    Fields absent from the digest get defaults the slice never reads.
    The cluster tier uses this to ownership-filter a retained digest log
    when rebuilding a failed machine's replica: each logged packet is
    re-hashed with the front-tier key to decide whether the dead machine
    owned it. *)

(** {1 Replay} *)

type replayer
(** The write-slice bound to one replica.  Single-threaded, like
    {!Dsl.Compile.bound}: each core binds its own. *)

val bind : t -> Dsl.Instance.t -> replayer

val apply : replayer -> int array -> int -> unit
(** Replay one digest segment at the given offset: reconstruct the
    pseudo-packet and run the write-slice against the replica.  The
    slice's verdict is always [Drop] and is discarded — replay mutates
    state, it does not emit packets or op events. *)

val apply_batch : replayer -> int array -> npkts:int -> unit
(** Replay a whole batch digest in order. *)

(** {1 Replica comparison} *)

val replica_equal : Maestro.Scrspec.t -> Dsl.Instance.t -> Dsl.Instance.t -> bool
(** Structural equality of two instances over the spec's written
    objects: map entries (order-insensitive), vector slots, chain
    allocation sets with last-touch times, sketch counters.  The
    correctness oracle for digest replay and crash rebuilds. *)
