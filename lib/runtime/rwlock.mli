(** The custom read/write lock of paper §3.6.

    One spin flag per core: a reader takes only its own core's flag (no
    shared cache line is written by concurrent readers on distinct cores); a
    writer takes every flag in ascending order (deadlock-free).  Implemented
    over OCaml [Atomic] cells — each flag is a separate boxed atomic, which
    the runtime allocates independently, standing in for the cache-line
    padding of the C original.

    Writers take preference: a registered writer blocks {e new} readers
    (current readers finish their critical sections first), so a stream
    of readers re-acquiring their per-core flags cannot starve
    {!write_lock} — the reader fast path pays one extra atomic load. *)

type t

val create : cores:int -> t

val cores : t -> int

val read_lock : t -> core:int -> unit

val read_unlock : t -> core:int -> unit

val write_lock : t -> unit
(** Acquires all per-core flags, in order. *)

val write_unlock : t -> unit

val with_read : t -> core:int -> (unit -> 'a) -> 'a

val with_write : t -> (unit -> 'a) -> 'a
