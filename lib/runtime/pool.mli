(** A persistent, {e supervised} pool of worker domains fed by bounded
    SPSC rings of packet batches.

    The spawn-per-run entry points in {!Domains} paid a domain-spawn per
    core per call; this pool spawns [cores] domains {e once} and feeds
    them batches (default {!default_batch_size} packets, mirroring DPDK
    burst mode) through single-producer single-consumer rings, so
    repeated runs cost only enqueue/dequeue.  Idle workers block on a
    condition variable — an idle pool burns no CPU.

    {2 Fault tolerance}

    Every worker loop runs behind an exception barrier; a crash (real or
    injected via {!Faults}) marks the worker dead instead of silently
    killing the domain.  The producer detects deaths, consults the
    {!Supervisor} and either restarts the worker with exponential
    backoff — replaying the crashed batch inline {e before} the respawn,
    which preserves per-core arrival order and therefore sequential
    equivalence — or, once the restart budget is exhausted, declares the
    core permanently failed: its ring is drained inline and subsequent
    {!run}s remap the NIC indirection table ({!Nic.Reta.remap}) so the
    dead core's RSS buckets migrate to live cores (paper §4.4).

    Full rings apply the pool's {!backpressure} policy; the old
    unbounded producer spin livelocked when a consumer died with a full
    ring.  [Block] keeps the lossless behavior but checks worker
    liveness while spinning; [Drop]/[Shed] trade packets for bounded
    producer latency and account every loss in {!stats} and telemetry.

    {2 State-compute replication}

    SCR plans ({!Maestro.Plan.strategy} [Scr]) run a fourth discipline:
    every live core keeps a {e full} state replica and consumes the
    whole global batch stream in arrival order over its own SPSC ring.
    The owning core of a batch (round-robin spray) runs the complete NF
    and produces the verdicts; every other core replays the batch's
    {e update digest} — header fields captured from the packets at
    dispatch time ({!Maestro.Scrspec}) — by executing the NF's
    write-slice against its replica ({!Scr}).  No core ever waits for
    another and nothing is shared, so write-heavy NFs scale without a
    lock at the price of replicated memory and replay cycles.  Digest
    batches are never dropped (backpressure is forced to [Block] for
    SCR runs: a lost digest would silently diverge a replica), the
    digest stream is retained for the duration of the run, and a worker
    that dies mid-run has its replica {e rebuilt from the digest
    stream} — reset to initial state, then replayed up to exactly the
    batches it had applied — before the crashed batch is replayed
    inline and the core rejoins ({!stats.scr_rebuilds}).

    {!run} executes any plan strategy without respawning: shared-nothing
    and load-balance get per-core state instances (capacity-split and
    read-only replicas respectively); SCR gets per-core {e full-capacity}
    replicas; lock-based and transactional-memory
    plans share one instance guarded by the {!Rwlock} with conservative
    static write classification (OCaml has no transactional rollback, so
    the TM discipline degrades to the lock discipline on real domains —
    the speculative/transactional behavior is modeled deterministically
    in {!Parallel.run}).  Verdicts are bit-identical to the spawn-per-run
    paths and, for shared-nothing and SCR plans, to sequential
    execution. *)

val default_batch_size : int
(** 32 — the DPDK burst size. *)

(** Bounded single-producer single-consumer ring (lock-free; the
    producer's behavior on a full ring is the pool's backpressure
    policy, and {!stats} counts the stall). *)
module Ring : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** Capacity is rounded up to a power of two; [capacity >= 1]. *)

  val capacity : 'a t -> int

  val length : 'a t -> int

  val is_empty : 'a t -> bool

  val try_push : 'a t -> 'a -> bool
  (** [false] when the ring is full.  Producer side only. *)

  val pop : 'a t -> 'a option
  (** [None] when empty.  Consumer side only. *)
end

(** What the producer does when a worker's ring is full. *)
type backpressure =
  | Block
      (** Spin until there is room, rechecking worker liveness while
          spinning (a dead consumer triggers failover, not livelock).
          Lossless; the default. *)
  | Drop of { max_spins : int }
      (** Spin at most [max_spins] times, then drop the batch.  Losses
          are counted per core in {!stats} and in the
          [pool.dropped_*] telemetry counters. *)
  | Shed  (** Drop immediately — minimum producer latency. *)

val backpressure_name : backpressure -> string

val default_drop_spins : int
(** 4096 — the bounded spin used by the CLI's [--backpressure drop]. *)

type t

type stats = {
  runs : int;  (** plans executed since the pool was created *)
  batches : int;  (** batches pushed over the pool's lifetime *)
  pkts : int;  (** packets executed over the pool's lifetime *)
  ring_full_stalls : int;  (** producer stalls on a full ring *)
  last_per_core_pkts : int array;  (** dispatch counts of the most recent run *)
  dropped_batches : int;  (** batches dropped by backpressure *)
  dropped_pkts : int;  (** packets dropped by backpressure *)
  per_core_drops : int array;  (** lifetime dropped batches per core *)
  restarts : int;  (** supervisor restarts over the pool's lifetime *)
  failed_cores : int list;  (** cores declared permanently failed *)
  inline_batches : int;
      (** batches the producer ran inline: crashed-batch replays and
          failed-core ring drains *)
  rebalances : int;
      (** online rebalances applied over the pool's lifetime (epoch
          boundaries where the shared indirection table changed) *)
  forced_rebalances : int;
      (** the subset of {!field-rebalances} triggered by a permanent core
          write-off rather than the imbalance threshold *)
  migrated_buckets : int;  (** indirection buckets moved by the balancer *)
  migrated_flows : int;
      (** flow-state entries handed between cores by quiesced migrations *)
  migration_drops : int;
      (** flow-state entries evicted during migration because the
          destination instance was full (the flow restarts, as on expiry) *)
  last_core_share : float array;
      (** measured per-core load share of the most recent run (sums to 1;
          empty before the first run) — the post-rebalance shares
          {!Sim.Throughput.shares_of_pool_stats} feeds back to the model *)
  last_assignment : int array;
      (** core each packet of the most recent run was dispatched to, in
          trace order — with {!field-last_rebalance_points} this lets a
          caller verify per-flow ordering across rebalances *)
  last_rebalance_points : int list;
      (** ascending packet offsets at which the most recent run changed
          the indirection table; between two consecutive points every
          flow's packets land on exactly one core *)
  scr_replays : int;
      (** foreign-batch digest replays scheduled by SCR dispatch (one per
          batch per non-owning live core) *)
  scr_rebuilds : int;
      (** SCR replicas rebuilt from the retained digest stream after a
          worker death, before the core rejoined *)
  scr_digest_bytes : int;
      (** update-digest bytes broadcast by SCR dispatch — what the digest
          stream would cost on a real wire *)
  switches : int;
      (** adaptive discipline switches committed over the pool's lifetime
          (the [pool.adaptive.switches] counter) *)
  flap_suppressed : int;
      (** adaptive switches suppressed by the cooldown window over the
          pool's lifetime — evidence the hysteresis is doing work *)
  switch_epochs : (int * Maestro.Ladder.rung) list;
      (** committed switches of the most recent adaptive run, in order:
          (1-based epoch index, rung adopted).  The packet offsets of the
          same switches appear in {!field-last_rebalance_points}, so the
          per-flow ordering check spans discipline switches exactly as it
          spans rebalances *)
  rung_residency : (Maestro.Ladder.rung * int) list;
      (** epochs the most recent adaptive run spent on each rung, fastest
          first *)
}

val create :
  ?batch_size:int ->
  ?ring_capacity:int ->
  ?backpressure:backpressure ->
  ?supervisor:Supervisor.config ->
  cores:int ->
  unit ->
  t
(** Spawns [cores] worker domains immediately.  [batch_size] defaults to
    {!default_batch_size}, [ring_capacity] (per worker, in batches) to
    1024, [backpressure] to [Block], [supervisor] to
    {!Supervisor.default_config}.  Raises [Invalid_argument] on
    non-positive sizes. *)

val cores : t -> int

val batch_size : t -> int

val backpressure : t -> backpressure

val supervisor : t -> Supervisor.t
(** The pool's supervisor — its {!Supervisor.events} record every
    restart, permanent failure and stuck detection. *)

val live_cores : t -> int list

val failed_cores : t -> int list

val run :
  ?rebalance:Balancer.mode ->
  ?adaptive:Adaptive.mode ->
  t ->
  Maestro.Plan.t ->
  Packet.Pkt.t array ->
  Dsl.Interp.action array
(** Execute a plan over a trace on the pool's persistent workers.
    Verdicts are returned in the original packet order; batches dropped
    by backpressure leave their packets' verdicts as [Dropped].  When
    cores have failed permanently, the RSS indirection tables are
    remapped so every packet lands on a live core.  Raises
    [Invalid_argument] when the plan wants more cores than the pool has
    (plans with fewer cores use a prefix of the workers) or when every
    plan core has failed.

    [rebalance] (default [Off], which is the zero-cost single-pass path)
    turns on online RSS++ rebalancing: the trace is processed in epochs
    of {!Balancer.config.epoch_pkts} packets with per-bucket load counted
    at dispatch; at each epoch boundary the pool quiesces (every
    submitted batch has retired) and, when max/mean core imbalance
    exceeds the threshold — or a core was written off during the epoch,
    which counts as a {e forced} rebalance — hot buckets move to
    underloaded queues on the single table shared by all ports.  For
    exactly-migratable shared-nothing plans the moved buckets' flow state
    is handed to the destination cores ({!Balancer.migrate}) so verdicts
    stay equal to sequential execution; lock/TM/load-balance plans only
    retarget the table.  A rebalance never races a restart: dead domains
    are joined at the boundary before any state moves.

    [adaptive] (default [Off]; mutually exclusive with [rebalance]) turns
    on online discipline switching: the trace is processed in epochs of
    {!Adaptive.config.epoch_pkts} packets, and at each epoch barrier the
    {!Adaptive} hysteresis controller may switch the pool to an adjacent
    admissible ladder rung — shared-nothing ↔ SCR ↔ lock ↔ serial.  All
    rungs run over full-capacity instances so the quiesced state
    conversions are lossless: shard merges/splits reuse
    {!Balancer.migrate}, SCR replicas are seeded with exact structural
    copies ({!Dsl.Instance.copy}) so they evolve in lockstep, and an
    SCR collapse first asserts {!Scr.replica_equal} agreement across the
    live replicas.  Crash safety: dead domains are joined at the barrier
    {e before} the switch decision, so a worker crash in a switch epoch
    is recovered by the {e old} rung's replay/rebuild path and the switch
    is deferred to the next barrier ({!Adaptive.defer}); SCR replica
    rebuilds restore from the seeded snapshot plus the digest log since
    rung entry, not from initial state. *)

val stats : t -> stats

val shutdown : t -> unit
(** Stop and join every worker.  Idempotent; the pool must not be used
    afterwards. *)

val with_global : ?batch_size:int -> ?backpressure:backpressure -> cores:int -> (t -> 'a) -> 'a
(** Run [f] against the shared process-wide pool, growing it (respawn
    happens only when the requested core count exceeds the current pool,
    a different [batch_size] or [backpressure] is requested, or a
    previous run left permanently failed cores) and creating it on first
    use.  The global pool is shut down automatically [at_exit]. *)

val shutdown_global : unit -> unit
(** Tear down the process-wide pool now (it is recreated on the next
    {!with_global}). *)

val nf_statically_writes : Dsl.Ast.t -> bool
(** Conservative static classification used by the lock/TM disciplines:
    [true] when any path of the NF's packet handler writes state. *)
