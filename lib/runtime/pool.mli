(** A persistent pool of worker domains fed by bounded SPSC rings of
    packet batches.

    The spawn-per-run entry points in {!Domains} paid a domain-spawn per
    core per call; this pool spawns [cores] domains {e once} and feeds
    them batches (default {!default_batch_size} packets, mirroring DPDK
    burst mode) through single-producer single-consumer rings, so
    repeated runs cost only enqueue/dequeue.  Idle workers block on a
    condition variable — an idle pool burns no CPU.

    {!run} executes any plan strategy without respawning: shared-nothing
    and load-balance get per-core state instances (capacity-split and
    read-only replicas respectively); lock-based and transactional-memory
    plans share one instance guarded by the {!Rwlock} with conservative
    static write classification (OCaml has no transactional rollback, so
    the TM discipline degrades to the lock discipline on real domains —
    the speculative/transactional behavior is modeled deterministically
    in {!Parallel.run}).  Verdicts are bit-identical to the spawn-per-run
    paths and, for shared-nothing plans, to sequential execution. *)

val default_batch_size : int
(** 32 — the DPDK burst size. *)

(** Bounded single-producer single-consumer ring (lock-free; the
    producer spins on a full ring, which {!stats} counts as a stall). *)
module Ring : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** Capacity is rounded up to a power of two; [capacity >= 1]. *)

  val capacity : 'a t -> int

  val length : 'a t -> int

  val is_empty : 'a t -> bool

  val try_push : 'a t -> 'a -> bool
  (** [false] when the ring is full.  Producer side only. *)

  val pop : 'a t -> 'a option
  (** [None] when empty.  Consumer side only. *)
end

type t

type stats = {
  runs : int;  (** plans executed since the pool was created *)
  batches : int;  (** batches pushed over the pool's lifetime *)
  pkts : int;  (** packets executed over the pool's lifetime *)
  ring_full_stalls : int;  (** producer stalls on a full ring *)
  last_per_core_pkts : int array;  (** dispatch counts of the most recent run *)
}

val create : ?batch_size:int -> ?ring_capacity:int -> cores:int -> unit -> t
(** Spawns [cores] worker domains immediately.  [batch_size] defaults to
    {!default_batch_size}, [ring_capacity] (per worker, in batches) to
    1024.  Raises [Invalid_argument] when either is < 1. *)

val cores : t -> int

val batch_size : t -> int

val run : t -> Maestro.Plan.t -> Packet.Pkt.t array -> Dsl.Interp.action array
(** Execute a plan over a trace on the pool's persistent workers.
    Verdicts are returned in the original packet order.  Raises
    [Invalid_argument] when the plan wants more cores than the pool has
    (plans with fewer cores use a prefix of the workers). *)

val stats : t -> stats

val shutdown : t -> unit
(** Stop and join every worker.  Idempotent; the pool must not be used
    afterwards. *)

val with_global : ?batch_size:int -> cores:int -> (t -> 'a) -> 'a
(** Run [f] against the shared process-wide pool, growing it (respawn
    happens only when the requested core count exceeds the current pool,
    or a different [batch_size] is requested) and creating it on first
    use.  The global pool is shut down automatically [at_exit]. *)

val shutdown_global : unit -> unit
(** Tear down the process-wide pool now (it is recreated on the next
    {!with_global}). *)

val nf_statically_writes : Dsl.Ast.t -> bool
(** Conservative static classification used by the lock/TM disciplines:
    [true] when any path of the NF's packet handler writes state. *)
