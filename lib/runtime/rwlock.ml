type t = { flags : bool Atomic.t array; writers_waiting : int Atomic.t }

let create ~cores =
  if cores < 1 then invalid_arg "Rwlock.create";
  { flags = Array.init cores (fun _ -> Atomic.make false); writers_waiting = Atomic.make 0 }

let cores t = Array.length t.flags

let acquire flag =
  while not (Atomic.compare_and_set flag false true) do
    Domain.cpu_relax ()
  done

(* Writer preference: a reader holds off while any writer is registered.
   Without the gate a stream of readers re-acquiring their own flag can
   win the CAS race against the writer indefinitely — the writer needs
   every flag, the readers each need only their own, and nothing stops a
   reader from barging back in the instant it unlocks. *)
let read_lock t ~core =
  let flag = t.flags.(core) in
  let rec go () =
    if Atomic.get t.writers_waiting > 0 then begin
      Domain.cpu_relax ();
      go ()
    end
    else if not (Atomic.compare_and_set flag false true) then begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

let read_unlock t ~core = Atomic.set t.flags.(core) false

let write_lock t =
  Atomic.incr t.writers_waiting;
  Array.iter acquire t.flags

let write_unlock t =
  Array.iter (fun f -> Atomic.set f false) t.flags;
  Atomic.decr t.writers_waiting

let with_read t ~core f =
  read_lock t ~core;
  Fun.protect ~finally:(fun () -> read_unlock t ~core) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f
