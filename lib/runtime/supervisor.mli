(** Restart policy for the {!Pool}'s worker domains.

    OCaml domains cannot be preempted or killed from outside, so the
    supervisor is pure policy: the pool's producer — the only thread
    that can safely [Domain.join] a dead worker and respawn it — reports
    deaths and heartbeat observations, and acts on the decision returned
    here.  Restarts are granted with exponential backoff and bounded per
    sliding window; a worker that exhausts the budget is declared
    permanently failed, after which the pool drains its ring inline and
    remaps the NIC indirection table so its RSS buckets migrate to live
    cores ({!Nic.Reta.remap}, paper §4.4).

    Time is logical ([tick]): decisions are deterministic functions of
    the observed event sequence, never of the wall clock, so seeded
    fault-injection runs replay identically. *)

type config = {
  max_restarts : int;  (** restarts granted per core per sliding window *)
  window : int;  (** window length in {!tick}s *)
  backoff_base : int;  (** producer spins before the first respawn *)
  backoff_factor : int;  (** backoff multiplier per consecutive restart *)
  stall_checks : int;
      (** consecutive no-progress heartbeat observations (with work
          queued) before a live worker is flagged stuck *)
}

val default_config : config
(** 4 restarts per 4096-tick window, backoff 64 spins ×4 per attempt,
    stuck after 512 stagnant checks (large enough that a healthy
    in-flight batch is never flagged). *)

type event =
  | Restarted of { core : int; attempt : int; backoff_spins : int }
  | Gave_up of { core : int; restarts : int }
  | Stuck of { core : int; checks : int }

type decision = [ `Restart of int  (** backoff, in producer spins *) | `Give_up ]

type t

val create : ?config:config -> cores:int -> unit -> t

val tick : t -> unit
(** Advance logical time; the pool calls this on each wait-loop check. *)

val on_death : t -> core:int -> decision
(** Report a dead worker; grants a restart (with backoff) while the
    window budget lasts, [`Give_up] once it is exhausted. *)

val note_heartbeat : t -> core:int -> heartbeat:int -> ring_len:int -> [ `Ok | `Stuck ]
(** Report a liveness observation for a {e live} worker.  [`Stuck] fires
    once per stall (reset by the next heartbeat progress): the worker
    still holds its domain — it cannot be killed — but the event lets
    backpressure and operators react. *)

val events : t -> event list
(** Chronological. *)

val restarts : t -> int
(** Total restarts granted over the supervisor's lifetime. *)

val pp_event : Format.formatter -> event -> unit
