(* Persistent worker-domain pool fed by bounded SPSC rings of packet
   batches.  Spawning an OCaml domain costs tens of microseconds — paid on
   every call by the old spawn-per-run [Domains] entry points, which
   dominated short runs the way per-packet dispatch cost dominates the
   stateful-NF studies this repo models.  The pool spawns [cores] domains
   once and feeds them DPDK-burst-style batches (default 32 packets)
   through single-producer single-consumer rings, so repeated runs pay
   only the enqueue/dequeue cost.

   The pool is supervised (paper §4.4's failure story made executable):
   every worker loop runs behind an exception barrier; the producer — the
   only thread that can safely join and respawn a domain — detects deaths,
   consults {!Supervisor} for a restart-with-backoff or give-up decision,
   replays the crashed batch inline (BEFORE respawning: re-queueing it
   would run it after later batches of the same core and break per-core
   arrival order, i.e. sequential equivalence), and on permanent failure
   drains the dead core's ring inline and remaps the NIC indirection
   table so its RSS buckets migrate to live cores ({!Nic.Reta.remap}).
   Full rings apply a configurable backpressure policy instead of the
   unbounded producer spin that livelocked on a dead consumer. *)

let default_batch_size = 32
let default_ring_capacity = 1024

let c_batches = Telemetry.Counter.make "pool.batches" ~doc:"packet batches pushed to pool rings"
let c_pkts = Telemetry.Counter.make "pool.pkts" ~doc:"packets executed on the domain pool"
let c_stalls =
  Telemetry.Counter.make "pool.ring_full_stalls" ~doc:"producer stalls on a full pool ring"
let c_spawns = Telemetry.Counter.make "pool.domain_spawns" ~doc:"worker domains spawned by pools"

let c_crashes =
  Telemetry.Counter.make "pool.worker_crashes" ~doc:"worker domains killed by an exception"

let c_dropped_batches =
  Telemetry.Counter.make "pool.dropped_batches" ~doc:"batches dropped by backpressure"

let c_dropped_pkts =
  Telemetry.Counter.make "pool.dropped_pkts" ~doc:"packets dropped by backpressure"

let c_inline =
  Telemetry.Counter.make "pool.inline_batches"
    ~doc:"batches the producer ran inline (crash replay and failed-core drains)"

let c_remaps =
  Telemetry.Counter.make "pool.reta_remaps"
    ~doc:"indirection-table remaps after permanent core failures"

let c_rebalances =
  Telemetry.Counter.make "pool.rebalances"
    ~doc:"online RSS++ rebalances applied at epoch boundaries"

let c_rebalances_forced =
  Telemetry.Counter.make "pool.rebalances_forced"
    ~doc:"rebalances forced by a permanent core failure"

let c_moved_buckets =
  Telemetry.Counter.make "pool.migrated_buckets"
    ~doc:"indirection buckets moved by the online balancer"

let c_moved_flows =
  Telemetry.Counter.make "pool.migrated_flows"
    ~doc:"flow states handed between cores by the online balancer"

let c_migration_drops =
  Telemetry.Counter.make "pool.migration_drops"
    ~doc:"flow states evicted during migration because the destination was full"

let c_scr_replays =
  Telemetry.Counter.make "pool.scr_replays"
    ~doc:"foreign-batch digest replays scheduled by the SCR dispatcher"

let c_scr_rebuilds =
  Telemetry.Counter.make "pool.scr_rebuilds"
    ~doc:"SCR replicas rebuilt from the digest stream after a worker death"

let c_scr_digest_bytes =
  Telemetry.Counter.make "pool.scr_digest_bytes"
    ~doc:"update-digest bytes broadcast by the SCR dispatcher"

(* --- bounded SPSC ring ----------------------------------------------------- *)

module Ring = struct
  (* One producer (the dispatching domain), one consumer (the worker).
     [head] and [tail] are monotonically increasing; publication of the
     slot write is ordered by the subsequent [Atomic.set] of [tail]
     (OCaml's memory model makes atomic writes release points). *)
  type 'a t = {
    slots : 'a option array;
    mask : int;
    head : int Atomic.t; (* consumer position *)
    tail : int Atomic.t; (* producer position *)
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Pool.Ring.create: capacity";
    let cap = ref 1 in
    while !cap < capacity do
      cap := !cap * 2
    done;
    { slots = Array.make !cap None; mask = !cap - 1; head = Atomic.make 0; tail = Atomic.make 0 }

  let capacity t = t.mask + 1
  let length t = Atomic.get t.tail - Atomic.get t.head
  let is_empty t = length t = 0

  let try_push t x =
    let tail = Atomic.get t.tail in
    if tail - Atomic.get t.head > t.mask then false
    else begin
      t.slots.(tail land t.mask) <- Some x;
      Atomic.set t.tail (tail + 1);
      true
    end

  let pop t =
    let head = Atomic.get t.head in
    if Atomic.get t.tail = head then None
    else begin
      let i = head land t.mask in
      let x = t.slots.(i) in
      t.slots.(i) <- None;
      Atomic.set t.head (head + 1);
      x
    end
end

(* --- tasks and backpressure ------------------------------------------------- *)

(* A ring entry: the closure plus its packet count, so drops and inline
   replays can be accounted in packets as well as batches. *)
type task = { run : unit -> unit; npkts : int }

type backpressure =
  | Block  (** spin until there is room (checking worker liveness while spinning) *)
  | Drop of { max_spins : int }  (** bounded spin, then drop the batch *)
  | Shed  (** drop immediately when the ring is full *)

let backpressure_name = function
  | Block -> "block"
  | Drop { max_spins } -> Printf.sprintf "drop(%d)" max_spins
  | Shed -> "shed"

let default_drop_spins = 4096

(* --- workers ---------------------------------------------------------------- *)

type worker = {
  core : int;
  ring : task Ring.t;
  mutex : Mutex.t;
  cond : Condition.t;
  stop : bool Atomic.t;
  alive : bool Atomic.t;  (* cleared by the exception barrier on crash *)
  failed : bool Atomic.t;  (* permanent: restart budget exhausted *)
  heartbeat : int Atomic.t;  (* batches completed; read by the producer *)
  batches_started : int Atomic.t;  (* monotonic attempt index for fault hooks *)
  mutable in_flight : task option;
      (* the batch being executed; left set on crash and replayed inline
         by the producer.  Published by the release store to [alive]. *)
  mutable last_exn : string;
  mutable domain : unit Domain.t option;
}

type stats = {
  runs : int;  (** plans executed since the pool was created *)
  batches : int;  (** batches pushed over the pool's lifetime *)
  pkts : int;  (** packets executed over the pool's lifetime *)
  ring_full_stalls : int;  (** producer stalls on a full ring *)
  last_per_core_pkts : int array;  (** dispatch counts of the most recent run *)
  dropped_batches : int;  (** batches dropped by backpressure *)
  dropped_pkts : int;  (** packets dropped by backpressure *)
  per_core_drops : int array;  (** lifetime dropped batches per core *)
  restarts : int;  (** supervisor restarts over the pool's lifetime *)
  failed_cores : int list;  (** cores declared permanently failed *)
  inline_batches : int;  (** batches the producer ran inline *)
  rebalances : int;  (** online rebalances applied over the pool's lifetime *)
  forced_rebalances : int;  (** rebalances forced by a core write-off *)
  migrated_buckets : int;  (** indirection buckets moved by the balancer *)
  migrated_flows : int;  (** flow states handed between cores *)
  migration_drops : int;  (** flow states evicted (destination full) *)
  last_core_share : float array;  (** per-core load share of the last run *)
  last_assignment : int array;  (** per-packet core of the last run *)
  last_rebalance_points : int list;
      (** packet offsets (ascending) where the last run changed the table *)
  scr_replays : int;  (** foreign-batch digest replays scheduled (SCR runs) *)
  scr_rebuilds : int;  (** replicas rebuilt from the digest stream after a death *)
  scr_digest_bytes : int;  (** update-digest bytes broadcast (SCR runs) *)
  switches : int;  (** adaptive discipline switches committed (lifetime) *)
  flap_suppressed : int;  (** adaptive switches suppressed by the cooldown (lifetime) *)
  switch_epochs : (int * Maestro.Ladder.rung) list;
      (** committed switches of the last adaptive run: (epoch, rung adopted) *)
  rung_residency : (Maestro.Ladder.rung * int) list;
      (** epochs spent per rung in the last adaptive run *)
}

type t = {
  cores : int;
  batch_size : int;
  backpressure : backpressure;
  supervisor : Supervisor.t;
  workers : worker array;
  mutable runs : int;
  mutable batches : int;
  mutable total_pkts : int;
  mutable stalls : int;
  mutable dropped_batches : int;
  mutable dropped_pkts : int;
  per_core_drops : int array;
  mutable inline_batches : int;
  mutable last_per_core : int array;
  mutable rebalances : int;
  mutable forced_rebalances : int;
  mutable migrated_buckets : int;
  mutable migrated_flows : int;
  mutable migration_drops : int;
  mutable last_share : float array;
  mutable last_assignment : int array;
  mutable last_points : int list;
  mutable scr_replays : int;
  mutable scr_rebuilds : int;
  mutable scr_digest_bytes : int;
  mutable adaptive_switches : int;
  mutable adaptive_flaps : int;
  mutable adaptive_switch_epochs : (int * Maestro.Ladder.rung) list;
  mutable adaptive_residency : (Maestro.Ladder.rung * int) list;
  mutable scr_crash_hook : (int -> unit) option;
      (* set for the duration of an SCR run: rebuild [core]'s replica from
         the retained digest stream.  Called only by the producer, inside
         {!ensure_live}, after joining the dead domain (the join is the
         happens-before edge that publishes the worker's progress counter)
         and before the crashed batch is replayed inline. *)
}

let worker_loop w () =
  let rec go () =
    match Ring.pop w.ring with
    | Some task ->
        w.in_flight <- Some task;
        let b = Atomic.fetch_and_add w.batches_started 1 in
        Faults.worker_batch ~core:w.core ~batch:b;
        task.run ();
        w.in_flight <- None;
        Atomic.incr w.heartbeat;
        go ()
    | None ->
        if not (Atomic.get w.stop) then begin
          (* brief spin keeps latency low while a run is in flight... *)
          let rec spin n = if n > 0 && Ring.is_empty w.ring then (Domain.cpu_relax (); spin (n - 1)) in
          spin 64;
          (* ...then block so an idle pool costs nothing between runs *)
          if Ring.is_empty w.ring then begin
            Mutex.lock w.mutex;
            while Ring.is_empty w.ring && not (Atomic.get w.stop) do
              Condition.wait w.cond w.mutex
            done;
            Mutex.unlock w.mutex
          end;
          go ()
        end
  in
  (* The exception barrier: any exception — injected or real — marks the
     worker dead instead of silently killing the domain.  The [alive]
     store is a release point publishing [in_flight] and [last_exn] to
     the producer. *)
  try go ()
  with e ->
    w.last_exn <- Printexc.to_string e;
    Telemetry.Counter.incr c_crashes;
    Atomic.set w.alive false

let spawn_worker w =
  Telemetry.Counter.incr c_spawns;
  Atomic.set w.alive true;
  w.domain <- Some (Domain.spawn (worker_loop w))

let create ?(batch_size = default_batch_size) ?(ring_capacity = default_ring_capacity)
    ?(backpressure = Block) ?supervisor ~cores () =
  if cores < 1 then invalid_arg "Pool.create: cores";
  if batch_size < 1 then invalid_arg "Pool.create: batch_size";
  (match backpressure with
  | Drop { max_spins } when max_spins < 0 -> invalid_arg "Pool.create: max_spins"
  | _ -> ());
  let workers =
    Array.init cores (fun core ->
        {
          core;
          ring = Ring.create ~capacity:ring_capacity;
          mutex = Mutex.create ();
          cond = Condition.create ();
          stop = Atomic.make false;
          alive = Atomic.make false;
          failed = Atomic.make false;
          heartbeat = Atomic.make 0;
          batches_started = Atomic.make 0;
          in_flight = None;
          last_exn = "";
          domain = None;
        })
  in
  Array.iter spawn_worker workers;
  {
    cores;
    batch_size;
    backpressure;
    supervisor = Supervisor.create ?config:supervisor ~cores ();
    workers;
    runs = 0;
    batches = 0;
    total_pkts = 0;
    stalls = 0;
    dropped_batches = 0;
    dropped_pkts = 0;
    per_core_drops = Array.make cores 0;
    inline_batches = 0;
    last_per_core = [||];
    rebalances = 0;
    forced_rebalances = 0;
    migrated_buckets = 0;
    migrated_flows = 0;
    migration_drops = 0;
    last_share = [||];
    last_assignment = [||];
    last_points = [];
    scr_replays = 0;
    scr_rebuilds = 0;
    scr_digest_bytes = 0;
    adaptive_switches = 0;
    adaptive_flaps = 0;
    adaptive_switch_epochs = [];
    adaptive_residency = [];
    scr_crash_hook = None;
  }

let cores t = t.cores
let batch_size t = t.batch_size
let backpressure t = t.backpressure
let supervisor t = t.supervisor

let live_cores t =
  Array.to_list t.workers
  |> List.filter_map (fun w -> if Atomic.get w.failed then None else Some w.core)

let failed_cores t =
  Array.to_list t.workers
  |> List.filter_map (fun w -> if Atomic.get w.failed then Some w.core else None)

let shutdown t =
  Array.iter
    (fun w ->
      match w.domain with
      | None -> ()
      | Some d ->
          Atomic.set w.stop true;
          Mutex.lock w.mutex;
          Condition.signal w.cond;
          Mutex.unlock w.mutex;
          Domain.join d;
          w.domain <- None)
    t.workers

let stats t =
  {
    runs = t.runs;
    batches = t.batches;
    pkts = t.total_pkts;
    ring_full_stalls = t.stalls;
    last_per_core_pkts = Array.copy t.last_per_core;
    dropped_batches = t.dropped_batches;
    dropped_pkts = t.dropped_pkts;
    per_core_drops = Array.copy t.per_core_drops;
    restarts = Supervisor.restarts t.supervisor;
    failed_cores = failed_cores t;
    inline_batches = t.inline_batches;
    rebalances = t.rebalances;
    forced_rebalances = t.forced_rebalances;
    migrated_buckets = t.migrated_buckets;
    migrated_flows = t.migrated_flows;
    migration_drops = t.migration_drops;
    last_core_share = Array.copy t.last_share;
    last_assignment = Array.copy t.last_assignment;
    last_rebalance_points = t.last_points;
    scr_replays = t.scr_replays;
    scr_rebuilds = t.scr_rebuilds;
    scr_digest_bytes = t.scr_digest_bytes;
    switches = t.adaptive_switches;
    flap_suppressed = t.adaptive_flaps;
    switch_epochs = t.adaptive_switch_epochs;
    rung_residency = t.adaptive_residency;
  }

(* --- supervision (producer side) -------------------------------------------- *)

let run_inline t task =
  t.inline_batches <- t.inline_batches + 1;
  Telemetry.Counter.incr c_inline;
  task.run ()

(* Drain a permanently failed worker's ring on the producer: the consumer
   is gone, the batches are already accounted in [remaining], and FIFO
   order preserves per-core arrival order. *)
let drain_inline t w =
  let rec go () =
    match Ring.pop w.ring with
    | Some task ->
        run_inline t task;
        go ()
    | None -> ()
  in
  go ()

(* Bring [w] back to a usable state if its domain died.  Returns [`Ok]
   when the worker is (again) consuming its ring, [`Failed] when it is
   permanently gone and the producer must run this core's work inline.
   Only the producer calls this, so join/respawn are race-free. *)
let ensure_live t w =
  if Atomic.get w.failed then `Failed
  else if Atomic.get w.alive then `Ok
  else begin
    (* the barrier ran: the domain is exiting — join it *)
    (match w.domain with
    | Some d ->
        Domain.join d;
        w.domain <- None
    | None -> ());
    let crashed = w.in_flight in
    w.in_flight <- None;
    (* SCR: the dead core's replica may be stale (an injected crash fires
       before the batch mutates it); rebuild it from the retained digest
       stream BEFORE any inline replay touches it *)
    (match t.scr_crash_hook with Some rebuild -> rebuild w.core | None -> ());
    match Supervisor.on_death t.supervisor ~core:w.core with
    | `Restart backoff ->
        (* replay the crashed batch inline BEFORE respawning: re-queueing
           it would run it after later batches of this core and reorder
           the per-core packet stream *)
        Option.iter (run_inline t) crashed;
        for _ = 1 to backoff do
          Domain.cpu_relax ()
        done;
        spawn_worker w;
        `Ok
    | `Give_up ->
        Atomic.set w.failed true;
        Option.iter (run_inline t) crashed;
        drain_inline t w;
        `Failed
  end

let signal w =
  Mutex.lock w.mutex;
  Condition.signal w.cond;
  Mutex.unlock w.mutex

(* Submit one task to [core], honoring the backpressure policy ([bp],
   defaulting to the pool's own — SCR runs force [Block]: a dropped
   digest batch would silently diverge a replica).  Returns how the task
   was disposed of; [`Dropped] tasks never run. *)
let submit ?bp t ~core task =
  let bp = Option.value ~default:t.backpressure bp in
  let w = t.workers.(core) in
  match ensure_live t w with
  | `Failed ->
      run_inline t task;
      `Inline
  | `Ok -> (
      let note_stall stalled =
        if not !stalled then begin
          stalled := true;
          t.stalls <- t.stalls + 1;
          Telemetry.Counter.incr c_stalls
        end
      in
      let pushed =
        if Ring.try_push w.ring task then true
        else begin
          let stalled = ref false in
          match bp with
          | Shed ->
              note_stall stalled;
              false
          | Drop { max_spins } ->
              note_stall stalled;
              let spins = ref 0 in
              let ok = ref false in
              while (not !ok) && !spins < max_spins do
                Domain.cpu_relax ();
                incr spins;
                ok := Ring.try_push w.ring task
              done;
              !ok
          | Block ->
              (* spin, but recheck liveness: a full ring with a dead
                 consumer must fail over, not livelock the producer *)
              note_stall stalled;
              let ok = ref false in
              let gone = ref false in
              let spins = ref 0 in
              while (not !ok) && not !gone do
                Domain.cpu_relax ();
                incr spins;
                if !spins land 63 = 0 then begin
                  match ensure_live t w with
                  | `Failed -> gone := true
                  | `Ok -> ok := Ring.try_push w.ring task
                end
                else ok := Ring.try_push w.ring task
              done;
              !ok
        end
      in
      if pushed then begin
        t.batches <- t.batches + 1;
        Telemetry.Counter.incr c_batches;
        signal w;
        `Pushed
      end
      else if Atomic.get w.failed then begin
        (* the blocking path failed over: the ring was drained inline,
           so running this task inline keeps per-core order *)
        run_inline t task;
        `Inline
      end
      else begin
        t.dropped_batches <- t.dropped_batches + 1;
        t.dropped_pkts <- t.dropped_pkts + task.npkts;
        t.per_core_drops.(core) <- t.per_core_drops.(core) + 1;
        Telemetry.Counter.incr c_dropped_batches;
        Telemetry.Counter.add c_dropped_pkts task.npkts;
        `Dropped
      end)

(* --- plan execution --------------------------------------------------------- *)

(* Conservative static write classification, shared by the lock and TM
   disciplines: OCaml has no transactional rollback, so a packet that *may*
   write on any path takes the write lock up front.  The speculative
   read→restart discipline is modeled deterministically in {!Parallel.run};
   this runtime demonstrates race-free real-domain execution.  The
   classification itself is {!Maestro.Scrspec}'s — the same walk that
   derives the SCR write-slice. *)
let nf_statically_writes = Maestro.Scrspec.nf_writes

(* Chunk each core's index queue into batches and feed the rings;
   [remaining] is incremented before each handoff and compensated on a
   drop (a dropped task never runs, so nothing else will decrement for
   it). *)
let submit_queues t ~process_batch ~remaining queues =
  Array.iteri
    (fun core q ->
      let n = Array.length q in
      let nbatches = (n + t.batch_size - 1) / t.batch_size in
      for b = 0 to nbatches - 1 do
        let lo = b * t.batch_size in
        let len = min t.batch_size (n - lo) in
        Atomic.incr remaining;
        match submit t ~core (process_batch core (Array.sub q lo len)) with
        | `Pushed | `Inline -> ()
        | `Dropped -> Atomic.decr remaining
      done)
    queues

(* Per-core index queues, in arrival order, for [assignment.(lo..hi-1)]. *)
let queues_of_assignment ~cores assignment ~lo ~hi =
  let per = Array.make cores 0 in
  for i = lo to hi - 1 do
    per.(assignment.(i)) <- per.(assignment.(i)) + 1
  done;
  let queues = Array.init cores (fun c -> Array.make per.(c) 0) in
  let fill = Array.make cores 0 in
  for i = lo to hi - 1 do
    let c = assignment.(i) in
    queues.(c).(fill.(c)) <- i;
    fill.(c) <- fill.(c) + 1
  done;
  queues

(* Producer waits for the last batch; workers signal by decrementing.
   Every 256 spins it plays supervisor: joins/restarts dead workers
   (running their crashed batch and, on permanent failure, their whole
   ring inline) and checks heartbeats of workers with queued work. *)
let wait_quiesce t ~cores remaining =
  let iters = ref 0 in
  while Atomic.get remaining > 0 do
    incr iters;
    if !iters land 255 = 0 then begin
      Supervisor.tick t.supervisor;
      for core = 0 to cores - 1 do
        let w = t.workers.(core) in
        match ensure_live t w with
        | `Failed -> drain_inline t w
        | `Ok ->
            ignore
              (Supervisor.note_heartbeat t.supervisor ~core
                 ~heartbeat:(Atomic.get w.heartbeat) ~ring_len:(Ring.length w.ring))
      done
    end;
    Domain.cpu_relax ()
  done

let run ?(rebalance = Balancer.Off) ?(adaptive = Adaptive.Off) (t : t) (plan : Maestro.Plan.t)
    pkts =
  Telemetry.Span.with_span "pool/run" @@ fun () ->
  let cores = plan.Maestro.Plan.cores in
  if cores > t.cores then
    invalid_arg
      (Printf.sprintf "Pool.run: plan wants %d cores but the pool has %d" cores t.cores);
  let nf = plan.Maestro.Plan.nf in
  let info = Dsl.Check.check_exn nf in
  (* stage once per run, bind once per core: every worker gets its own
     execution frame, over per-core state (shared-nothing) or the one
     shared instance (lock/TM) *)
  let staged = Dsl.Compile.stage_runner nf info in
  let live = Array.init cores (fun c -> not (Atomic.get t.workers.(c).failed)) in
  if not (Array.exists Fun.id live) then
    invalid_arg "Pool.run: every core of the plan has failed permanently";
  let engines =
    Array.init nf.Dsl.Ast.devices (fun port ->
        let e = Maestro.Plan.rss_engine plan port in
        if Array.for_all Fun.id live then e
        else begin
          (* failover: migrate dead cores' RSS buckets to live cores so no
             flow is steered at a queue nobody serves (RSS++-style remap) *)
          Telemetry.Counter.incr c_remaps;
          Nic.Rss.with_reta e (Nic.Reta.remap (Nic.Rss.reta e) ~live)
        end)
  in
  let npkts = Array.length pkts in
  let verdicts = Array.make npkts Dsl.Interp.Dropped in
  let remaining = Atomic.make 0 in
  let strategy = plan.Maestro.Plan.strategy in
  let finish assignment points per_core =
    t.runs <- t.runs + 1;
    t.total_pkts <- t.total_pkts + npkts;
    t.last_per_core <- per_core;
    t.last_assignment <- assignment;
    t.last_points <- List.rev points;
    let total = Array.fold_left ( + ) 0 per_core in
    t.last_share <-
      (if total = 0 then Array.make cores 0.
       else Array.map (fun c -> float_of_int c /. float_of_int total) per_core);
    Telemetry.Counter.add c_pkts npkts;
    verdicts
  in
  match adaptive with
  | Adaptive.On acfg ->
      if rebalance <> Balancer.Off then
        invalid_arg "Pool.run: --adaptive and --rebalance are mutually exclusive";
      (* ---- adaptive discipline switching ------------------------------
         The run is driven in epochs; at every epoch barrier — the quiesce
         point PR 5 introduced, where nothing is in flight — a hysteresis
         controller ({!Adaptive}) looks at the epoch's statistics and may
         switch the live pool to an adjacent admissible ladder rung.  All
         rungs run over FULL-capacity instances (divide 1): a conversion
         must never lose entries to a smaller target, so the adaptive pool
         trades the static shards' memory savings for lossless switches.

         Representation: [insts] always has [cores] slots, whose meaning
         depends on the rung — per-core shards (shared-nothing), full
         replicas (SCR), or one shared instance aliased into every slot
         (lock-based and serial). *)
      let size = Nic.Reta.size (Nic.Rss.reta engines.(0)) in
      if Array.exists (fun e -> Nic.Reta.size (Nic.Rss.reta e) <> size) engines then
        invalid_arg "Pool.run: adaptive switching requires equal-size port indirection tables";
      let table = ref (Nic.Rss.reta engines.(0)) in
      let set_table tab =
        table := tab;
        Array.iteri (fun p e -> engines.(p) <- Nic.Rss.with_reta e tab) engines
      in
      set_table !table;
      let mask = size - 1 in
      let nports = Array.length engines in
      let hash_pkt (pk : Packet.Pkt.t) =
        let port = if pk.Packet.Pkt.port < nports then pk.Packet.Pkt.port else 0 in
        Nic.Rss.hash_of engines.(port) pk
      in
      let mplan = Balancer.migration_plan nf in
      (* shared-nothing participates only when the migration is exact AND
         skips nothing: shard merges/splits rebuild state in fresh
         instances, so even a skipped sketch (harmless to RSS++ bucket
         moves, which leave it in place) would be silently reset here *)
      let exact_migration = Balancer.exact mplan && Balancer.skipped_objects mplan = [] in
      let scr_spec =
        match Maestro.Scrspec.admissible nf with Ok s -> Some s | Error _ -> None
      in
      let ladder =
        match Adaptive.ladder ~strategy ~scr_ok:(scr_spec <> None) ~exact_migration with
        | Ok l -> l
        | Error e -> invalid_arg ("Pool.run: " ^ e)
      in
      let ctl = Adaptive.create acfg ~ladder in
      let scr_prog = Option.map Scr.prepare scr_spec in
      let writes = nf_statically_writes nf in
      let lock = Rwlock.create ~cores in
      let fresh () = Dsl.Instance.create nf in
      let insts =
        ref
          (match Adaptive.rung ctl with
          | Maestro.Ladder.Shared_nothing | Maestro.Ladder.Scr ->
              (* independent [create]s are structurally identical, so SCR
                 replicas start in lockstep *)
              Array.init cores (fun _ -> fresh ())
          | Maestro.Ladder.Lock_based | Maestro.Ladder.Serial ->
              let sh = fresh () in
              Array.make cores sh)
      in
      let runners = Array.map (Dsl.Compile.bind_runner staged) !insts in
      let replayers : Scr.replayer option array = Array.make cores None in
      (* SCR support state, reset at every SCR entry: the pristine seeded
         replica and the digest log since entry, for crash rebuilds *)
      let snapshot = ref None in
      let log = ref (Array.make 64 [||]) in
      let log_npkts = ref (Array.make 64 0) in
      let log_len = ref 0 in
      let applied = Array.make cores 0 in
      let push_log digest len =
        if !log_len = Array.length !log then begin
          let ncap = 2 * !log_len in
          let nl = Array.make ncap [||] and nn = Array.make ncap 0 in
          Array.blit !log 0 nl 0 !log_len;
          Array.blit !log_npkts 0 nn 0 !log_len;
          log := nl;
          log_npkts := nn
        end;
        !log.(!log_len) <- digest;
        !log_npkts.(!log_len) <- len;
        incr log_len
      in
      let first_live () =
        let rec go c = if c >= cores then 0 else if live.(c) then c else go (c + 1) in
        go 0
      in
      (* (re)bind the execution frames for rung [r] over the current
         [insts]; must run at a quiesce point (or, for one core, from the
         crash hook after the dead domain was joined) *)
      let enter r =
        Array.iteri (fun c inst -> runners.(c) <- Dsl.Compile.bind_runner staged inst) !insts;
        match r with
        | Maestro.Ladder.Scr ->
            let prog = Option.get scr_prog in
            Array.iteri (fun c inst -> replayers.(c) <- Some (Scr.bind prog inst)) !insts;
            snapshot := Some (Dsl.Instance.copy !insts.(first_live ()));
            log_len := 0;
            Array.fill applied 0 cores 0
        | Maestro.Ladder.Shared_nothing | Maestro.Ladder.Lock_based | Maestro.Ladder.Serial
          ->
            Array.fill replayers 0 cores None
      in
      let account (o : Balancer.outcome) =
        t.migrated_flows <- t.migrated_flows + o.Balancer.moved_flows;
        t.migration_drops <- t.migration_drops + o.Balancer.dropped_flows;
        Telemetry.Counter.add c_moved_flows o.Balancer.moved_flows;
        Telemetry.Counter.add c_migration_drops o.Balancer.dropped_flows
      in
      (* collapse the current rung's state into ONE full instance *)
      let collapse from_r =
        match from_r with
        | Maestro.Ladder.Shared_nothing ->
            (* merge every shard into a fresh full instance: the migration
               executor already knows how to re-home a flow's entries, so
               point every bucket at slot 0 (the merged instance) and let
               the shards at slots 1..cores empty themselves into it *)
            let merged = fresh () in
            account
              (Balancer.migrate mplan
                 ~hash:(fun _ -> Some 0)
                 ~mask:0
                 ~dest:(fun _ -> 0)
                 ~instances:(Array.append [| merged |] !insts));
            merged
        | Maestro.Ladder.Scr ->
            (* collapse replicas to one: sound only if the live replicas
               agree — which the SCR contract guarantees at a quiesce
               point, and crash rebuilds restore before we get here *)
            let spec = Option.get scr_spec in
            let base = first_live () in
            for c = 0 to cores - 1 do
              if
                live.(c) && c <> base
                && not (Scr.replica_equal spec !insts.(base) !insts.(c))
              then invalid_arg "Pool.run: SCR replicas diverged at a discipline switch"
            done;
            !insts.(base)
        | Maestro.Ladder.Lock_based | Maestro.Ladder.Serial -> !insts.(0)
      in
      let convert from_r to_r =
        match to_r with
        | Maestro.Ladder.Shared_nothing ->
            (* split one full instance into per-core shards along the
               live indirection table; slot 0 reuses the merged instance
               (its surplus entries migrate out, anything undecodable —
               static init entries — is already in every fresh shard) *)
            let merged = collapse from_r in
            let shards = Array.init cores (fun c -> if c = 0 then merged else fresh ()) in
            let dentries = Nic.Reta.entries !table in
            account
              (Balancer.migrate mplan ~hash:hash_pkt ~mask
                 ~dest:(fun b -> dentries.(b))
                 ~instances:shards);
            insts := shards
        | Maestro.Ladder.Scr ->
            (* seed every replica from the collapsed state; exact copies
               ({!Dsl.Instance.copy}) keep the replicas in lockstep *)
            let base = collapse from_r in
            insts :=
              Array.init cores (fun c -> if c = 0 then base else Dsl.Instance.copy base)
        | Maestro.Ladder.Lock_based | Maestro.Ladder.Serial ->
            insts := Array.make cores (collapse from_r)
      in
      let task_direct core lo len =
        {
          npkts = len;
          run =
            (fun () ->
              let r = runners.(core) in
              for i = lo to lo + len - 1 do
                verdicts.(i) <- Dsl.Compile.run r pkts.(i)
              done;
              Atomic.decr remaining);
        }
      in
      let task_direct_ixs core indices =
        {
          npkts = Array.length indices;
          run =
            (fun () ->
              let r = runners.(core) in
              Array.iter (fun i -> verdicts.(i) <- Dsl.Compile.run r pkts.(i)) indices;
              Atomic.decr remaining);
        }
      in
      let task_locked core indices =
        {
          npkts = Array.length indices;
          run =
            (fun () ->
              let r = runners.(core) in
              Array.iter
                (fun i ->
                  if writes then
                    Rwlock.with_write lock (fun () ->
                        verdicts.(i) <- Dsl.Compile.run r pkts.(i))
                  else
                    Rwlock.with_read lock ~core (fun () ->
                        verdicts.(i) <- Dsl.Compile.run r pkts.(i)))
                indices;
              Atomic.decr remaining);
        }
      in
      enter (Adaptive.rung ctl);
      t.scr_crash_hook <-
        Some
          (fun core ->
            if Adaptive.rung ctl = Maestro.Ladder.Scr then begin
              t.scr_rebuilds <- t.scr_rebuilds + 1;
              Telemetry.Counter.incr c_scr_rebuilds;
              (* rebuild from the seeded snapshot, not initial state: the
                 replica was seeded by a conversion mid-run *)
              let base = match !snapshot with Some s -> s | None -> assert false in
              !insts.(core) <- Dsl.Instance.copy base;
              runners.(core) <- Dsl.Compile.bind_runner staged !insts.(core);
              let prog = Option.get scr_prog in
              replayers.(core) <- Some (Scr.bind prog !insts.(core));
              let rp = Option.get replayers.(core) in
              for b = 0 to applied.(core) - 1 do
                Scr.apply_batch rp !log.(b) ~npkts:(!log_npkts).(b)
              done
            end)
      ;
      Fun.protect ~finally:(fun () -> t.scr_crash_hook <- None) @@ fun () ->
      let assignment = Array.make npkts 0 in
      let per_core = Array.make cores 0 in
      let rss_counts = Array.make cores 0 in
      let points = ref [] in
      let rr = ref 0 in
      let pos = ref 0 in
      let drops0 = ref t.dropped_batches in
      let restarts0 = ref (Supervisor.restarts t.supervisor) in
      let digest0 = ref t.scr_digest_bytes in
      while !pos < npkts do
        let lo = !pos in
        let hi = min (lo + acfg.Adaptive.epoch_pkts) npkts in
        (* would-be RSS dispatch counts, computed in EVERY rung: SCR's
           round-robin spray and the serial funnel hide traffic skew from
           the actual dispatch counts, but the controller must see the
           imbalance the shared-nothing rung WOULD suffer *)
        Array.fill rss_counts 0 cores 0;
        for i = lo to hi - 1 do
          let q =
            match hash_pkt pkts.(i) with
            | Some h -> Nic.Reta.lookup !table h
            | None -> 0
          in
          rss_counts.(q) <- rss_counts.(q) + 1;
          assignment.(i) <- q
        done;
        (match Adaptive.rung ctl with
        | Maestro.Ladder.Shared_nothing ->
            for i = lo to hi - 1 do
              per_core.(assignment.(i)) <- per_core.(assignment.(i)) + 1
            done;
            submit_queues t
              ~process_batch:task_direct_ixs ~remaining
              (queues_of_assignment ~cores assignment ~lo ~hi)
        | Maestro.Ladder.Lock_based ->
            for i = lo to hi - 1 do
              per_core.(assignment.(i)) <- per_core.(assignment.(i)) + 1
            done;
            submit_queues t ~process_batch:task_locked ~remaining
              (queues_of_assignment ~cores assignment ~lo ~hi)
        | Maestro.Ladder.Serial ->
            let core = first_live () in
            Array.fill assignment lo (hi - lo) core;
            per_core.(core) <- per_core.(core) + (hi - lo);
            let p = ref lo in
            while !p < hi do
              let len = min t.batch_size (hi - !p) in
              Atomic.incr remaining;
              (match submit t ~core (task_direct core !p len) with
              | `Pushed | `Inline -> ()
              | `Dropped -> Atomic.decr remaining);
              p := !p + len
            done
        | Maestro.Ladder.Scr ->
            let prog = Option.get scr_prog in
            let lives =
              Array.of_list
                (List.filteri (fun c _ -> live.(c)) (List.init cores Fun.id))
            in
            let nlive = Array.length lives in
            let p = ref lo in
            while !p < hi do
              let blo = !p in
              let len = min t.batch_size (hi - blo) in
              let owner = lives.(!rr mod nlive) in
              incr rr;
              Array.fill assignment blo len owner;
              per_core.(owner) <- per_core.(owner) + len;
              let digest = Scr.encode_batch prog pkts ~lo:blo ~len in
              push_log digest len;
              let bytes = len * Scr.digest_wire_bytes prog in
              t.scr_digest_bytes <- t.scr_digest_bytes + bytes;
              Telemetry.Counter.add c_scr_digest_bytes bytes;
              Array.iter
                (fun core ->
                  let task =
                    if core = owner then
                      {
                        npkts = len;
                        run =
                          (fun () ->
                            let r = runners.(core) in
                            for i = blo to blo + len - 1 do
                              verdicts.(i) <- Dsl.Compile.run r pkts.(i)
                            done;
                            applied.(core) <- applied.(core) + 1;
                            Atomic.decr remaining);
                      }
                    else begin
                      t.scr_replays <- t.scr_replays + 1;
                      Telemetry.Counter.incr c_scr_replays;
                      {
                        npkts = len;
                        run =
                          (fun () ->
                            (match replayers.(core) with
                            | Some rp -> Scr.apply_batch rp digest ~npkts:len
                            | None -> ());
                            applied.(core) <- applied.(core) + 1;
                            Atomic.decr remaining);
                      }
                    end
                  in
                  Atomic.incr remaining;
                  (* lossless backpressure: a dropped digest batch would
                     silently diverge a replica *)
                  match submit ~bp:Block t ~core task with
                  | `Pushed | `Inline -> ()
                  | `Dropped -> Atomic.decr remaining)
                lives;
              p := blo + len
            done);
        (* the epoch barrier IS the quiesce point *)
        wait_quiesce t ~cores remaining;
        pos := hi;
        (* join any dead domain NOW: crash recovery (inline replay, SCR
           replica rebuild) runs under the OLD rung before any switch is
           considered, so a mid-switch crash lands in the old rung's
           recovery path *)
        let newly_dead = ref false in
        for core = 0 to cores - 1 do
          match ensure_live t t.workers.(core) with
          | `Failed ->
              if live.(core) then begin
                live.(core) <- false;
                newly_dead := true
              end
          | `Ok -> ()
        done;
        if !newly_dead then begin
          (* failover: remap the dead cores' buckets; on the shared-nothing
             rung their flow state follows the buckets to the new owners *)
          let candidate = Nic.Reta.remap !table ~live in
          if Nic.Reta.diff !table candidate <> [] then begin
            (match Adaptive.rung ctl with
            | Maestro.Ladder.Shared_nothing ->
                let dentries = Nic.Reta.entries candidate in
                account
                  (Balancer.migrate mplan ~hash:hash_pkt ~mask
                     ~dest:(fun b -> dentries.(b))
                     ~instances:!insts)
            | _ -> ());
            set_table candidate;
            Telemetry.Counter.incr c_remaps;
            (* a write-off remap moves flows between cores exactly like a
               switch does — record the boundary so the per-flow ordering
               invariant over [last_rebalance_points] stays checkable *)
            if hi < npkts then points := hi :: !points
          end
        end;
        let drops_now = t.dropped_batches in
        let restarts_now = Supervisor.restarts t.supervisor in
        let digest_now = t.scr_digest_bytes in
        let live_counts =
          Array.of_list
            (List.filteri (fun c _ -> live.(c)) (Array.to_list rss_counts))
        in
        let obs =
          {
            Adaptive.imbalance = Rebalance.imbalance_of live_counts;
            drops = drops_now - !drops0;
            restarts = restarts_now - !restarts0;
            digest_bytes = digest_now - !digest0;
          }
        in
        drops0 := drops_now;
        restarts0 := restarts_now;
        digest0 := digest_now;
        let crash_recovery = obs.Adaptive.restarts > 0 || !newly_dead in
        (match Adaptive.observe ctl obs with
        | Adaptive.Stay | Adaptive.Suppressed _ -> ()
        | Adaptive.Switch _ when hi >= npkts -> () (* run is over *)
        | Adaptive.Switch target ->
            if crash_recovery then
              (* the old rung's recovery path just ran; switching on state
                 it may still be settling risks a torn conversion — defer
                 the switch and retry at the next barrier *)
              Adaptive.defer ctl target
            else begin
              let from_r = Adaptive.rung ctl in
              Telemetry.Span.with_span "pool/switch" (fun () ->
                  convert from_r target;
                  enter target);
              Adaptive.commit ctl target;
              points := hi :: !points
            end)
      done;
      t.adaptive_switches <- t.adaptive_switches + Adaptive.switches ctl;
      t.adaptive_flaps <- t.adaptive_flaps + Adaptive.flap_suppressed ctl;
      t.adaptive_switch_epochs <- Adaptive.switch_epochs ctl;
      t.adaptive_residency <- Adaptive.residency ctl;
      finish assignment !points per_core
  | Adaptive.Off ->
  (* per-core state for shared-nothing (capacity-split), load-balance
     (read-only replicas) and SCR (full replicas, state_divisor 1); one
     shared locked instance otherwise.  The instance array is kept
     visible so the balancer can migrate state between cores at a
     quiesced epoch boundary. *)
  let instances =
    match strategy with
    | Maestro.Plan.Shared_nothing | Maestro.Plan.Load_balance | Maestro.Plan.Scr ->
        Some
          (Array.init cores (fun _ ->
               Dsl.Instance.create ~divide:(Maestro.Plan.state_divisor plan) nf))
    | Maestro.Plan.Lock_based | Maestro.Plan.Tm_based -> None
  in
  let process_batch =
    match instances with
    | Some insts ->
        let runners = Array.map (Dsl.Compile.bind_runner staged) insts in
        fun core indices ->
          let r = runners.(core) in
          {
            npkts = Array.length indices;
            run =
              (fun () ->
                Array.iter (fun i -> verdicts.(i) <- Dsl.Compile.run r pkts.(i)) indices;
                Atomic.decr remaining);
          }
    | None ->
        let inst = Dsl.Instance.create nf in
        let lock = Rwlock.create ~cores in
        let writes = nf_statically_writes nf in
        let runners = Array.init cores (fun _ -> Dsl.Compile.bind_runner staged inst) in
        fun core indices ->
          let r = runners.(core) in
          {
            npkts = Array.length indices;
            run =
              (fun () ->
                Array.iter
                  (fun i ->
                    if writes then
                      Rwlock.with_write lock (fun () ->
                          verdicts.(i) <- Dsl.Compile.run r pkts.(i))
                    else
                      Rwlock.with_read lock ~core (fun () ->
                          verdicts.(i) <- Dsl.Compile.run r pkts.(i)))
                  indices;
                Atomic.decr remaining);
          }
  in
  match strategy with
  | Maestro.Plan.Scr ->
      (* State-compute replication: every live core consumes the FULL
         global batch stream in arrival order over its own SPSC ring.
         The owning core (round-robin over the batches) runs the complete
         NF for the verdicts; every other core replays the batch's update
         digest — derived from the packets at dispatch time — against its
         own full replica by executing the NF's write-slice.  No core
         ever waits for another: there is no shared state and no lock.
         The digest stream is retained for the whole run so a respawned
         worker can rebuild its replica from scratch before rejoining
         (see [scr_crash_hook]). *)
      let insts = match instances with Some i -> i | None -> assert false in
      let spec =
        match Maestro.Scrspec.admissible nf with
        | Ok spec -> spec
        | Error e ->
            invalid_arg
              (Printf.sprintf "Pool.run: SCR plan for %s but %s" nf.Dsl.Ast.name e)
      in
      let prog = Scr.prepare spec in
      let runners = Array.map (Dsl.Compile.bind_runner staged) insts in
      let replayers = Array.map (Scr.bind prog) insts in
      let lives =
        Array.of_list
          (List.filteri (fun c _ -> live.(c)) (List.init cores Fun.id))
      in
      let nlive = Array.length lives in
      let nbatches = (npkts + t.batch_size - 1) / t.batch_size in
      let log = Array.make (max 1 nbatches) [||] in
      let log_npkts = Array.make (max 1 nbatches) 0 in
      (* batches of THIS run fully applied per core; written by whoever
         executes the task (worker, or the producer inline), read by the
         producer only after joining the dead domain *)
      let applied = Array.make cores 0 in
      let assignment = Array.make npkts 0 in
      let per_core = Array.make cores 0 in
      t.scr_crash_hook <-
        Some
          (fun core ->
            t.scr_rebuilds <- t.scr_rebuilds + 1;
            Telemetry.Counter.incr c_scr_rebuilds;
            (* compiled runners capture the state containers eagerly, and
               [reset] replaces them — rebind both the full runner and
               the replayer to the fresh containers before replaying, or
               the rebuild would write into the orphaned pre-crash state *)
            Dsl.Instance.reset insts.(core) nf;
            runners.(core) <- Dsl.Compile.bind_runner staged insts.(core);
            replayers.(core) <- Scr.bind prog insts.(core);
            for b = 0 to applied.(core) - 1 do
              Scr.apply_batch replayers.(core) log.(b) ~npkts:log_npkts.(b)
            done);
      Fun.protect ~finally:(fun () -> t.scr_crash_hook <- None) @@ fun () ->
      for b = 0 to nbatches - 1 do
        let lo = b * t.batch_size in
        let len = min t.batch_size (npkts - lo) in
        let owner = lives.(b mod nlive) in
        Array.fill assignment lo len owner;
        per_core.(owner) <- per_core.(owner) + len;
        let digest = Scr.encode_batch prog pkts ~lo ~len in
        log.(b) <- digest;
        log_npkts.(b) <- len;
        let bytes = len * Scr.digest_wire_bytes prog in
        t.scr_digest_bytes <- t.scr_digest_bytes + bytes;
        Telemetry.Counter.add c_scr_digest_bytes bytes;
        Array.iter
          (fun core ->
            let task =
              if core = owner then
                {
                  npkts = len;
                  run =
                    (fun () ->
                      let r = runners.(core) in
                      for i = lo to lo + len - 1 do
                        verdicts.(i) <- Dsl.Compile.run r pkts.(i)
                      done;
                      applied.(core) <- applied.(core) + 1;
                      Atomic.decr remaining);
                }
              else begin
                t.scr_replays <- t.scr_replays + 1;
                Telemetry.Counter.incr c_scr_replays;
                {
                  npkts = len;
                  run =
                    (fun () ->
                      Scr.apply_batch replayers.(core) digest ~npkts:len;
                      applied.(core) <- applied.(core) + 1;
                      Atomic.decr remaining);
                }
              end
            in
            Atomic.incr remaining;
            (* a dropped digest batch would silently diverge a replica:
               force lossless backpressure regardless of pool policy *)
            match submit ~bp:Block t ~core task with
            | `Pushed | `Inline -> ()
            | `Dropped -> Atomic.decr remaining (* unreachable under Block *))
          lives
      done;
      wait_quiesce t ~cores remaining;
      finish assignment [] per_core
  | Maestro.Plan.Shared_nothing | Maestro.Plan.Load_balance | Maestro.Plan.Lock_based
  | Maestro.Plan.Tm_based -> (
  match rebalance with
  | Balancer.Off ->
      (* dispatch on the producer, exactly what the NIC does in hardware *)
      let assignment =
        Array.map (fun p -> Nic.Rss.dispatch engines.(p.Packet.Pkt.port) p) pkts
      in
      let per_core = Array.make cores 0 in
      Array.iter (fun c -> per_core.(c) <- per_core.(c) + 1) assignment;
      submit_queues t ~process_batch ~remaining
        (queues_of_assignment ~cores assignment ~lo:0 ~hi:npkts);
      wait_quiesce t ~cores remaining;
      finish assignment [] per_core
  | Balancer.On cfg ->
      let size = Nic.Reta.size (Nic.Rss.reta engines.(0)) in
      if Array.exists (fun e -> Nic.Reta.size (Nic.Rss.reta e) <> size) engines then
        invalid_arg "Pool.run: rebalancing requires equal-size port indirection tables";
      (* ONE table shared by all ports: Maestro's symmetric per-port keys
         give both directions of a flow the same hash, hence the same
         bucket on every port, so a single rebalanced table keeps each
         flow on exactly one core no matter the arrival port *)
      let table = ref (Nic.Rss.reta engines.(0)) in
      let set_table tab =
        table := tab;
        Array.iteri (fun p e -> engines.(p) <- Nic.Rss.with_reta e tab) engines
      in
      set_table !table;
      let mask = size - 1 in
      let mplan = Balancer.migration_plan nf in
      (* voluntary bucket moves need either no per-core flow state
         (lock/TM share one instance, load-balance replicates read-only
         state) or an exact migration; a partially-migratable
         shared-nothing NF only moves buckets when a core write-off
         forces it (state is then stranded exactly as in a plain remap) *)
      let migrate_ok = strategy = Maestro.Plan.Shared_nothing && Balancer.exact mplan in
      let voluntary_ok =
        match strategy with
        | Maestro.Plan.Shared_nothing -> Balancer.exact mplan
        | Maestro.Plan.Lock_based | Maestro.Plan.Tm_based | Maestro.Plan.Load_balance -> true
        | Maestro.Plan.Scr -> false (* SCR never reaches here: round-robin spray *)
      in
      let nports = Array.length engines in
      let hash_pkt (pk : Packet.Pkt.t) =
        let port = if pk.Packet.Pkt.port < nports then pk.Packet.Pkt.port else 0 in
        Nic.Rss.hash_of engines.(port) pk
      in
      let assignment = Array.make npkts 0 in
      let per_core = Array.make cores 0 in
      let bucket_loads = Array.make size 0.0 in
      let epoch_counts = Array.make cores 0 in
      let points = ref [] in
      let pos = ref 0 in
      while !pos < npkts do
        let hi = min (!pos + cfg.Balancer.epoch_pkts) npkts in
        (* per-bucket load accounting lives on the producer next to the
           dispatch it already performs — zero worker-side cost, and
           deterministic (a CI gate compares the resulting counters) *)
        for i = !pos to hi - 1 do
          let p = pkts.(i) in
          let q =
            match Nic.Rss.hash_of engines.(p.Packet.Pkt.port) p with
            | Some h ->
                let b = h land mask in
                bucket_loads.(b) <- bucket_loads.(b) +. 1.0;
                Nic.Reta.lookup !table h
            | None -> 0
          in
          assignment.(i) <- q;
          epoch_counts.(q) <- epoch_counts.(q) + 1;
          per_core.(q) <- per_core.(q) + 1
        done;
        submit_queues t ~process_batch ~remaining
          (queues_of_assignment ~cores assignment ~lo:!pos ~hi);
        (* the epoch barrier IS the quiesce point: nothing is in flight
           when the table changes or state moves, so per-flow order is
           preserved by construction (FIFO per core within an epoch) *)
        wait_quiesce t ~cores remaining;
        pos := hi;
        if !pos < npkts then begin
          (* supervisor integration: join any dead domain NOW, so a
             rebalance can never race a restart, and treat a fresh
             write-off as a forced rebalance *)
          let newly_dead = ref false in
          for core = 0 to cores - 1 do
            match ensure_live t t.workers.(core) with
            | `Failed ->
                if live.(core) then begin
                  live.(core) <- false;
                  newly_dead := true
                end
            | `Ok -> ()
          done;
          let wanted =
            voluntary_ok && Rebalance.imbalance_of epoch_counts > cfg.Balancer.threshold
          in
          if !newly_dead || wanted then begin
            let candidate =
              if wanted then Nic.Reta.rebalance !table ~bucket_load:bucket_loads else !table
            in
            let candidate =
              if Array.for_all Fun.id live then candidate
              else Nic.Reta.remap candidate ~live
            in
            let moves = Nic.Reta.diff !table candidate in
            if moves <> [] then
              Telemetry.Span.with_span "pool/rebalance" (fun () ->
                  (match (instances, migrate_ok) with
                  | Some insts, true ->
                      let dentries = Nic.Reta.entries candidate in
                      let outcome =
                        Balancer.migrate mplan ~hash:hash_pkt ~mask
                          ~dest:(fun b -> dentries.(b))
                          ~instances:insts
                      in
                      t.migrated_flows <- t.migrated_flows + outcome.Balancer.moved_flows;
                      t.migration_drops <- t.migration_drops + outcome.Balancer.dropped_flows;
                      Telemetry.Counter.add c_moved_flows outcome.Balancer.moved_flows;
                      Telemetry.Counter.add c_migration_drops outcome.Balancer.dropped_flows
                  | _ -> ());
                  set_table candidate;
                  t.rebalances <- t.rebalances + 1;
                  Telemetry.Counter.incr c_rebalances;
                  if !newly_dead then begin
                    t.forced_rebalances <- t.forced_rebalances + 1;
                    Telemetry.Counter.incr c_rebalances_forced
                  end;
                  t.migrated_buckets <- t.migrated_buckets + List.length moves;
                  Telemetry.Counter.add c_moved_buckets (List.length moves);
                  points := !pos :: !points)
          end;
          Array.fill bucket_loads 0 size 0.0;
          Array.fill epoch_counts 0 cores 0
        end
      done;
      finish assignment !points per_core)

(* --- the process-global pool ------------------------------------------------- *)

let global : t option ref = ref None
let global_mutex = Mutex.create ()

let shutdown_global () =
  Mutex.lock global_mutex;
  (match !global with
  | Some pool ->
      shutdown pool;
      global := None
  | None -> ());
  Mutex.unlock global_mutex

let () = at_exit shutdown_global

let with_global ?batch_size ?backpressure ~cores f =
  Mutex.lock global_mutex;
  let pool =
    match !global with
    | Some pool
      when pool.cores >= cores
           && (match batch_size with None -> true | Some b -> b = pool.batch_size)
           && (match backpressure with None -> true | Some bp -> bp = pool.backpressure)
           && failed_cores pool = [] ->
        pool
    | Some pool ->
        shutdown pool;
        let pool = create ?batch_size ?backpressure ~cores:(max cores pool.cores) () in
        global := Some pool;
        pool
    | None ->
        let pool = create ?batch_size ?backpressure ~cores () in
        global := Some pool;
        pool
  in
  Mutex.unlock global_mutex;
  f pool
