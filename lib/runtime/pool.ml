(* Persistent worker-domain pool fed by bounded SPSC rings of packet
   batches.  Spawning an OCaml domain costs tens of microseconds — paid on
   every call by the old spawn-per-run [Domains] entry points, which
   dominated short runs the way per-packet dispatch cost dominates the
   stateful-NF studies this repo models.  The pool spawns [cores] domains
   once and feeds them DPDK-burst-style batches (default 32 packets)
   through single-producer single-consumer rings, so repeated runs pay
   only the enqueue/dequeue cost. *)

let default_batch_size = 32
let default_ring_capacity = 1024

let c_batches = Telemetry.Counter.make "pool.batches" ~doc:"packet batches pushed to pool rings"
let c_pkts = Telemetry.Counter.make "pool.pkts" ~doc:"packets executed on the domain pool"
let c_stalls =
  Telemetry.Counter.make "pool.ring_full_stalls" ~doc:"producer stalls on a full pool ring"
let c_spawns = Telemetry.Counter.make "pool.domain_spawns" ~doc:"worker domains spawned by pools"

(* --- bounded SPSC ring ----------------------------------------------------- *)

module Ring = struct
  (* One producer (the dispatching domain), one consumer (the worker).
     [head] and [tail] are monotonically increasing; publication of the
     slot write is ordered by the subsequent [Atomic.set] of [tail]
     (OCaml's memory model makes atomic writes release points). *)
  type 'a t = {
    slots : 'a option array;
    mask : int;
    head : int Atomic.t; (* consumer position *)
    tail : int Atomic.t; (* producer position *)
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Pool.Ring.create: capacity";
    let cap = ref 1 in
    while !cap < capacity do
      cap := !cap * 2
    done;
    { slots = Array.make !cap None; mask = !cap - 1; head = Atomic.make 0; tail = Atomic.make 0 }

  let capacity t = t.mask + 1
  let length t = Atomic.get t.tail - Atomic.get t.head
  let is_empty t = length t = 0

  let try_push t x =
    let tail = Atomic.get t.tail in
    if tail - Atomic.get t.head > t.mask then false
    else begin
      t.slots.(tail land t.mask) <- Some x;
      Atomic.set t.tail (tail + 1);
      true
    end

  let pop t =
    let head = Atomic.get t.head in
    if Atomic.get t.tail = head then None
    else begin
      let i = head land t.mask in
      let x = t.slots.(i) in
      t.slots.(i) <- None;
      Atomic.set t.head (head + 1);
      x
    end
end

(* --- workers ---------------------------------------------------------------- *)

type worker = {
  ring : (unit -> unit) Ring.t;
  mutex : Mutex.t;
  cond : Condition.t;
  stop : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

type stats = {
  runs : int;  (** plans executed since the pool was created *)
  batches : int;  (** batches pushed over the pool's lifetime *)
  pkts : int;  (** packets executed over the pool's lifetime *)
  ring_full_stalls : int;  (** producer stalls on a full ring *)
  last_per_core_pkts : int array;  (** dispatch counts of the most recent run *)
}

type t = {
  cores : int;
  batch_size : int;
  workers : worker array;
  mutable runs : int;
  mutable batches : int;
  mutable total_pkts : int;
  mutable stalls : int;
  mutable last_per_core : int array;
}

let worker_loop w () =
  let rec go () =
    match Ring.pop w.ring with
    | Some task ->
        task ();
        go ()
    | None ->
        if not (Atomic.get w.stop) then begin
          (* brief spin keeps latency low while a run is in flight... *)
          let rec spin n = if n > 0 && Ring.is_empty w.ring then (Domain.cpu_relax (); spin (n - 1)) in
          spin 64;
          (* ...then block so an idle pool costs nothing between runs *)
          if Ring.is_empty w.ring then begin
            Mutex.lock w.mutex;
            while Ring.is_empty w.ring && not (Atomic.get w.stop) do
              Condition.wait w.cond w.mutex
            done;
            Mutex.unlock w.mutex
          end;
          go ()
        end
  in
  go ()

let create ?(batch_size = default_batch_size) ?(ring_capacity = default_ring_capacity) ~cores ()
    =
  if cores < 1 then invalid_arg "Pool.create: cores";
  if batch_size < 1 then invalid_arg "Pool.create: batch_size";
  let workers =
    Array.init cores (fun _ ->
        {
          ring = Ring.create ~capacity:ring_capacity;
          mutex = Mutex.create ();
          cond = Condition.create ();
          stop = Atomic.make false;
          domain = None;
        })
  in
  Array.iter
    (fun w ->
      Telemetry.Counter.incr c_spawns;
      w.domain <- Some (Domain.spawn (worker_loop w)))
    workers;
  {
    cores;
    batch_size;
    workers;
    runs = 0;
    batches = 0;
    total_pkts = 0;
    stalls = 0;
    last_per_core = [||];
  }

let cores t = t.cores
let batch_size t = t.batch_size

let shutdown t =
  Array.iter
    (fun w ->
      match w.domain with
      | None -> ()
      | Some d ->
          Atomic.set w.stop true;
          Mutex.lock w.mutex;
          Condition.signal w.cond;
          Mutex.unlock w.mutex;
          Domain.join d;
          w.domain <- None)
    t.workers

let stats t =
  {
    runs = t.runs;
    batches = t.batches;
    pkts = t.total_pkts;
    ring_full_stalls = t.stalls;
    last_per_core_pkts = Array.copy t.last_per_core;
  }

let submit t ~core task =
  let w = t.workers.(core) in
  let stalled = ref false in
  while not (Ring.try_push w.ring task) do
    if not !stalled then begin
      stalled := true;
      t.stalls <- t.stalls + 1;
      Telemetry.Counter.incr c_stalls
    end;
    Domain.cpu_relax ()
  done;
  t.batches <- t.batches + 1;
  Telemetry.Counter.incr c_batches;
  Mutex.lock w.mutex;
  Condition.signal w.cond;
  Mutex.unlock w.mutex

(* --- plan execution --------------------------------------------------------- *)

(* Conservative static write classification, shared by the lock and TM
   disciplines: OCaml has no transactional rollback, so a packet that *may*
   write on any path takes the write lock up front.  The speculative
   read→restart discipline is modeled deterministically in {!Parallel.run};
   this runtime demonstrates race-free real-domain execution. *)
let rec stmt_writes (s : Dsl.Ast.stmt) =
  match s with
  | Dsl.Ast.Map_put _ | Dsl.Ast.Map_erase _ | Dsl.Ast.Vec_set _ | Dsl.Ast.Chain_alloc _
  | Dsl.Ast.Chain_rejuv _ | Dsl.Ast.Chain_expire _ | Dsl.Ast.Sketch_touch _ ->
      true
  | Dsl.Ast.If (_, t, f) -> stmt_writes t || stmt_writes f
  | Dsl.Ast.Let (_, _, k)
  | Dsl.Ast.Map_get { k; _ }
  | Dsl.Ast.Vec_get { k; _ }
  | Dsl.Ast.Sketch_query { k; _ }
  | Dsl.Ast.Set_field (_, _, k) ->
      stmt_writes k
  | Dsl.Ast.Forward _ | Dsl.Ast.Drop -> false

let nf_statically_writes (nf : Dsl.Ast.t) = stmt_writes nf.Dsl.Ast.process

let run (t : t) (plan : Maestro.Plan.t) pkts =
  Telemetry.Span.with_span "pool/run" @@ fun () ->
  let cores = plan.Maestro.Plan.cores in
  if cores > t.cores then
    invalid_arg
      (Printf.sprintf "Pool.run: plan wants %d cores but the pool has %d" cores t.cores);
  let nf = plan.Maestro.Plan.nf in
  let info = Dsl.Check.check_exn nf in
  let engines =
    Array.init nf.Dsl.Ast.devices (fun port -> Maestro.Plan.rss_engine plan port)
  in
  let npkts = Array.length pkts in
  (* dispatch on the producer, exactly what the NIC does in hardware *)
  let assignment = Array.map (fun p -> Nic.Rss.dispatch engines.(p.Packet.Pkt.port) p) pkts in
  let per_core = Array.make cores 0 in
  Array.iter (fun c -> per_core.(c) <- per_core.(c) + 1) assignment;
  (* per-core index queues in arrival order *)
  let queues = Array.init cores (fun c -> Array.make per_core.(c) 0) in
  let fill = Array.make cores 0 in
  Array.iteri
    (fun i core ->
      queues.(core).(fill.(core)) <- i;
      fill.(core) <- fill.(core) + 1)
    assignment;
  let verdicts = Array.make npkts Dsl.Interp.Dropped in
  let remaining = Atomic.make 0 in
  let strategy = plan.Maestro.Plan.strategy in
  (* per-core state for shared-nothing (capacity-split) and load-balance
     (read-only replicas); one shared locked instance otherwise *)
  let process_batch =
    match strategy with
    | Maestro.Plan.Shared_nothing | Maestro.Plan.Load_balance ->
        let instances =
          Array.init cores (fun _ ->
              Dsl.Instance.create ~divide:(Maestro.Plan.state_divisor plan) nf)
        in
        fun core indices ->
          let inst = instances.(core) in
          fun () ->
            Array.iter (fun i -> verdicts.(i) <- Dsl.Interp.process nf info inst pkts.(i)) indices;
            Atomic.decr remaining
    | Maestro.Plan.Lock_based | Maestro.Plan.Tm_based ->
        let inst = Dsl.Instance.create nf in
        let lock = Rwlock.create ~cores in
        let writes = nf_statically_writes nf in
        fun core indices ->
          fun () ->
            Array.iter
              (fun i ->
                if writes then
                  Rwlock.with_write lock (fun () ->
                      verdicts.(i) <- Dsl.Interp.process nf info inst pkts.(i))
                else
                  Rwlock.with_read lock ~core (fun () ->
                      verdicts.(i) <- Dsl.Interp.process nf info inst pkts.(i)))
              indices;
            Atomic.decr remaining
  in
  (* chunk each core's queue into batches and feed the rings *)
  for core = 0 to cores - 1 do
    let q = queues.(core) in
    let n = Array.length q in
    let nbatches = (n + t.batch_size - 1) / t.batch_size in
    Atomic.fetch_and_add remaining nbatches |> ignore;
    for b = 0 to nbatches - 1 do
      let lo = b * t.batch_size in
      let len = min t.batch_size (n - lo) in
      submit t ~core (process_batch core (Array.sub q lo len))
    done
  done;
  (* producer waits for the last batch; workers signal by decrementing *)
  while Atomic.get remaining > 0 do
    Domain.cpu_relax ()
  done;
  t.runs <- t.runs + 1;
  t.total_pkts <- t.total_pkts + npkts;
  t.last_per_core <- per_core;
  Telemetry.Counter.add c_pkts npkts;
  verdicts

(* --- the process-global pool ------------------------------------------------- *)

let global : t option ref = ref None
let global_mutex = Mutex.create ()

let shutdown_global () =
  Mutex.lock global_mutex;
  (match !global with
  | Some pool ->
      shutdown pool;
      global := None
  | None -> ());
  Mutex.unlock global_mutex

let () = at_exit shutdown_global

let with_global ?batch_size ~cores f =
  Mutex.lock global_mutex;
  let pool =
    match !global with
    | Some pool
      when pool.cores >= cores
           && (match batch_size with None -> true | Some b -> b = pool.batch_size) ->
        pool
    | Some pool ->
        shutdown pool;
        let pool = create ?batch_size ~cores:(max cores pool.cores) () in
        global := Some pool;
        pool
    | None ->
        let pool = create ?batch_size ~cores () in
        global := Some pool;
        pool
  in
  Mutex.unlock global_mutex;
  f pool
