type report = {
  epochs : int;
  static_imbalance : float array;
  dynamic_imbalance : float array;
  migrated_buckets : int;
  migrated_flows : int;
}

let c_migrated_buckets =
  Telemetry.Counter.make "rebalance.migrated_buckets" ~doc:"indirection-table buckets remapped"

let c_migrated_flows =
  Telemetry.Counter.make "rebalance.migrated_flows" ~doc:"flow states moved across cores"

let imbalance_of counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 1.0
  else
    let mean = float_of_int total /. float_of_int (Array.length counts) in
    float_of_int (Array.fold_left max 0 counts) /. mean

let study (plan : Maestro.Plan.t) pkts ~epoch_pkts =
  if Array.length pkts < epoch_pkts || epoch_pkts < 1 then
    invalid_arg "Rebalance.study: trace shorter than one epoch";
  let nf = plan.Maestro.Plan.nf in
  let cores = plan.Maestro.Plan.cores in
  let nports = nf.Dsl.Ast.devices in
  let static_engines = Array.init nports (fun port -> Maestro.Plan.rss_engine plan port) in
  let dynamic_engines = Array.init nports (fun port -> Maestro.Plan.rss_engine plan port) in
  let epochs = Array.length pkts / epoch_pkts in
  let static_imbalance = Array.make epochs 1.0 in
  let dynamic_imbalance = Array.make epochs 1.0 in
  let migrated_buckets = ref 0 and migrated_flows = ref 0 in
  for e = 0 to epochs - 1 do
    let slice = Array.sub pkts (e * epoch_pkts) epoch_pkts in
    let run engines =
      let counts = Array.make cores 0 in
      let bucket_loads =
        Array.init nports (fun port ->
            Array.make (Nic.Reta.size (Nic.Rss.reta engines.(port))) 0.0)
      in
      let bucket_flows = Hashtbl.create 1024 in
      Array.iter
        (fun (pkt : Packet.Pkt.t) ->
          let port = pkt.Packet.Pkt.port in
          let engine = engines.(port) in
          (match Nic.Rss.hash_of engine pkt with
          | Some h ->
              let reta = Nic.Rss.reta engine in
              let b = h land (Nic.Reta.size reta - 1) in
              bucket_loads.(port).(b) <- bucket_loads.(port).(b) +. 1.0;
              Hashtbl.replace bucket_flows
                ((port, b), Packet.Flow.normalize (Packet.Flow.of_pkt pkt))
                ()
          | None -> ());
          let q = Nic.Rss.dispatch engine pkt in
          counts.(q) <- counts.(q) + 1)
        slice;
      (counts, bucket_loads, bucket_flows)
    in
    let s_counts, _, _ = run static_engines in
    static_imbalance.(e) <- imbalance_of s_counts;
    let d_counts, d_loads, d_flows = run dynamic_engines in
    dynamic_imbalance.(e) <- imbalance_of d_counts;
    (* distinct flows observed per (port, bucket) this epoch *)
    let flows_in_bucket = Hashtbl.create 256 in
    Hashtbl.iter
      (fun (pb, _flow) () ->
        Hashtbl.replace flows_in_bucket pb
          (1 + Option.value ~default:0 (Hashtbl.find_opt flows_in_bucket pb)))
      d_flows;
    (* rebalance each port's table from this epoch's observations *)
    for port = 0 to nports - 1 do
      let engine = dynamic_engines.(port) in
      let before = Nic.Reta.entries (Nic.Rss.reta engine) in
      let reta' = Nic.Reta.rebalance (Nic.Rss.reta engine) ~bucket_load:d_loads.(port) in
      let after = Nic.Reta.entries reta' in
      Array.iteri
        (fun b q ->
          if q <> after.(b) then begin
            incr migrated_buckets;
            migrated_flows :=
              !migrated_flows
              + Option.value ~default:0 (Hashtbl.find_opt flows_in_bucket (port, b))
          end)
        before;
      dynamic_engines.(port) <- Nic.Rss.with_reta engine reta'
    done
  done;
  Telemetry.Counter.add c_migrated_buckets !migrated_buckets;
  Telemetry.Counter.add c_migrated_flows !migrated_flows;
  {
    epochs;
    static_imbalance;
    dynamic_imbalance;
    migrated_buckets = !migrated_buckets;
    migrated_flows = !migrated_flows;
  }
