type report = {
  epochs : int;
  static_imbalance : float array;
  dynamic_imbalance : float array;
  rebalances : int;
  migrated_buckets : int;
  migrated_flows : int;
}

let c_migrated_buckets =
  Telemetry.Counter.make "rebalance.migrated_buckets" ~doc:"indirection-table buckets remapped"

let c_migrated_flows =
  Telemetry.Counter.make "rebalance.migrated_flows" ~doc:"flow states moved across cores"

let imbalance_of counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 1.0
  else
    let mean = float_of_int total /. float_of_int (Array.length counts) in
    float_of_int (Array.fold_left max 0 counts) /. mean

let study ?(threshold = 0.0) (plan : Maestro.Plan.t) pkts ~epoch_pkts =
  if epoch_pkts < 1 then Error "Rebalance.study: epoch_pkts must be >= 1"
  else if Array.length pkts < epoch_pkts then
    Error
      (Printf.sprintf "Rebalance.study: trace shorter than one epoch (%d packets, epoch %d)"
         (Array.length pkts) epoch_pkts)
  else begin
    let nf = plan.Maestro.Plan.nf in
    let cores = plan.Maestro.Plan.cores in
    let nports = nf.Dsl.Ast.devices in
    let static_engines = Array.init nports (fun port -> Maestro.Plan.rss_engine plan port) in
    let dynamic_engines = Array.init nports (fun port -> Maestro.Plan.rss_engine plan port) in
    let size = Nic.Reta.size (Nic.Rss.reta dynamic_engines.(0)) in
    if Array.exists (fun e -> Nic.Reta.size (Nic.Rss.reta e) <> size) dynamic_engines then
      Error "Rebalance.study: port indirection tables differ in size"
    else begin
      (* one table for all ports: symmetric keys put both directions of a
         flow in the same bucket index, so a single rebalanced table keeps
         the flow on one core regardless of arrival port *)
      let table = ref (Nic.Rss.reta dynamic_engines.(0)) in
      let mask = size - 1 in
      let epochs = Array.length pkts / epoch_pkts in
      let static_imbalance = Array.make epochs 1.0 in
      let dynamic_imbalance = Array.make epochs 1.0 in
      let rebalances = ref 0 in
      let migrated_buckets = ref 0 and migrated_flows = ref 0 in
      (* distinct flows resident per bucket, cumulative since the start of
         the trace — mirroring the state a shared-nothing core accumulates *)
      let bucket_flows : (int * Packet.Flow.t, unit) Hashtbl.t = Hashtbl.create 4096 in
      let flows_in b =
        Hashtbl.fold (fun (b', _) () acc -> if b' = b then acc + 1 else acc) bucket_flows 0
      in
      for e = 0 to epochs - 1 do
        let slice = Array.sub pkts (e * epoch_pkts) epoch_pkts in
        (* static reference: fixed per-port tables *)
        let s_counts = Array.make cores 0 in
        Array.iter
          (fun (pkt : Packet.Pkt.t) ->
            let q = Nic.Rss.dispatch static_engines.(pkt.Packet.Pkt.port) pkt in
            s_counts.(q) <- s_counts.(q) + 1)
          slice;
        static_imbalance.(e) <- imbalance_of s_counts;
        (* dynamic: per-port hashes, shared table *)
        let d_counts = Array.make cores 0 in
        let bucket_loads = Array.make size 0.0 in
        Array.iter
          (fun (pkt : Packet.Pkt.t) ->
            let q =
              match Nic.Rss.hash_of dynamic_engines.(pkt.Packet.Pkt.port) pkt with
              | Some h ->
                  let b = h land mask in
                  bucket_loads.(b) <- bucket_loads.(b) +. 1.0;
                  Hashtbl.replace bucket_flows
                    (b, Packet.Flow.normalize (Packet.Flow.of_pkt pkt))
                    ();
                  Nic.Reta.lookup !table h
              | None -> 0
            in
            d_counts.(q) <- d_counts.(q) + 1)
          slice;
        dynamic_imbalance.(e) <- imbalance_of d_counts;
        (* rebalance between epochs only (there is nothing to gain after
           the last), and only when the observed imbalance warrants it *)
        if e < epochs - 1 && imbalance_of d_counts > threshold then begin
          let candidate = Nic.Reta.rebalance !table ~bucket_load:bucket_loads in
          let moves = Nic.Reta.diff !table candidate in
          if moves <> [] then begin
            incr rebalances;
            List.iter
              (fun (b, _, _) ->
                incr migrated_buckets;
                migrated_flows := !migrated_flows + flows_in b)
              moves;
            table := candidate
          end
        end
      done;
      Telemetry.Counter.add c_migrated_buckets !migrated_buckets;
      Telemetry.Counter.add c_migrated_flows !migrated_flows;
      Ok
        {
          epochs;
          static_imbalance;
          dynamic_imbalance;
          rebalances = !rebalances;
          migrated_buckets = !migrated_buckets;
          migrated_flows = !migrated_flows;
        }
    end
  end

let study_exn ?threshold plan pkts ~epoch_pkts =
  match study ?threshold plan pkts ~epoch_pkts with
  | Ok r -> r
  | Error msg -> invalid_arg msg
