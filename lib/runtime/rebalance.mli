(** Offline study of dynamic RSS++-style indirection-table rebalancing
    (paper §4 implements the static version and notes "their dynamic
    versions could be used to handle changes in skew over time" — this is
    that extension, and {!Runtime.Balancer}/{!Runtime.Pool} run the same
    algorithm online).

    The trace is processed in epochs; at each epoch boundary the
    per-bucket loads observed during the finished epoch drive a greedy
    rebalance.  All ports share ONE indirection table: Maestro's symmetric
    per-port RSS keys give both directions of a flow the same hash, hence
    the same bucket on every port, so bucket loads are aggregated across
    ports and the rebalanced table applies to every port — exactly the
    invariant the live balancer relies on to keep each flow on one core.
    Because RSS++ moves whole buckets, colliding flows stay together and —
    on a shared-nothing plan — moving a bucket migrates its flows' state
    between cores, which is counted. *)

type report = {
  epochs : int;
  static_imbalance : float array;  (** per-epoch max/mean core load, fixed tables *)
  dynamic_imbalance : float array;  (** same, table rebalanced at epoch boundaries *)
  rebalances : int;  (** boundaries at which the table actually changed *)
  migrated_buckets : int;  (** indirection entries reassigned over the run *)
  migrated_flows : int;
      (** distinct flows resident in moved buckets, summed over rebalances —
          what a shared-nothing runtime must migrate ({!Runtime.Pool} reports
          the measured counterpart in its stats) *)
}

val imbalance_of : int array -> float
(** max/mean of per-core packet counts; 1.0 when perfectly balanced (and
    by convention when the total is zero). *)

val study :
  ?threshold:float ->
  Maestro.Plan.t ->
  Packet.Pkt.t array ->
  epoch_pkts:int ->
  (report, string) result
(** [threshold] (default [0.0], i.e. rebalance at every boundary) suppresses
    rebalancing at boundaries where the epoch's max/mean imbalance does not
    exceed it — pass the live {!Balancer.config} threshold to reproduce the
    pool's decisions.  [Error] (never an exception) when [epoch_pkts < 1],
    the trace is shorter than one epoch, or the plan's port tables are not
    the same size. *)

val study_exn :
  ?threshold:float -> Maestro.Plan.t -> Packet.Pkt.t array -> epoch_pkts:int -> report
(** {!study}, raising [Invalid_argument] on [Error] — for callers that have
    already validated the trace. *)
