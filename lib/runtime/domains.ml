(* Real multicore execution.  The fast path is {!Pool}: the entry points
   below are thin wrappers over the persistent process-global pool, so
   existing callers keep their signatures while paying no domain spawn per
   run.  The historical spawn-per-run implementations are retained as the
   [*_spawning] variants — they are the baseline the pool-vs-spawn micro
   benchmark (bench fastpath) measures against, and the oracle the pool
   equivalence tests compare with. *)

let dispatch_plan (plan : Maestro.Plan.t) pkts =
  let nf = plan.Maestro.Plan.nf in
  let engines =
    Array.init nf.Dsl.Ast.devices (fun port -> Maestro.Plan.rss_engine plan port)
  in
  Array.map (fun p -> Nic.Rss.dispatch engines.(p.Packet.Pkt.port) p) pkts

(* --- spawn-per-run baselines ------------------------------------------------ *)

let run_shared_nothing_spawning (plan : Maestro.Plan.t) pkts =
  if plan.Maestro.Plan.strategy <> Maestro.Plan.Shared_nothing then
    invalid_arg "Domains.run_shared_nothing: plan is not shared-nothing";
  let nf = plan.Maestro.Plan.nf in
  let info = Dsl.Check.check_exn nf in
  let cores = plan.Maestro.Plan.cores in
  let assignment = dispatch_plan plan pkts in
  (* per-core work queues, preserving arrival order within a core *)
  let queues = Array.make cores [] in
  Array.iteri (fun i core -> queues.(core) <- i :: queues.(core)) assignment;
  let verdicts = Array.make (Array.length pkts) Dsl.Interp.Dropped in
  let worker core () =
    let inst = Dsl.Instance.create ~divide:cores nf in
    List.iter
      (fun i -> verdicts.(i) <- Dsl.Interp.process nf info inst pkts.(i))
      (List.rev queues.(core))
  in
  let domains = Array.init cores (fun core -> Domain.spawn (worker core)) in
  Array.iter Domain.join domains;
  verdicts

let run_lock_based_spawning (plan : Maestro.Plan.t) pkts =
  let nf = plan.Maestro.Plan.nf in
  let info = Dsl.Check.check_exn nf in
  let cores = plan.Maestro.Plan.cores in
  let assignment = dispatch_plan plan pkts in
  let queues = Array.make cores [] in
  Array.iteri (fun i core -> queues.(core) <- i :: queues.(core)) assignment;
  let inst = Dsl.Instance.create nf in
  let lock = Rwlock.create ~cores in
  let verdicts = Array.make (Array.length pkts) Dsl.Interp.Dropped in
  (* conservative static write classification — see {!Pool.nf_statically_writes} *)
  let nf_writes = Pool.nf_statically_writes nf in
  let worker core () =
    List.iter
      (fun i ->
        let pkt = pkts.(i) in
        if nf_writes then
          Rwlock.with_write lock (fun () ->
              verdicts.(i) <- Dsl.Interp.process nf info inst pkt)
        else
          Rwlock.with_read lock ~core (fun () ->
              verdicts.(i) <- Dsl.Interp.process nf info inst pkt))
      (List.rev queues.(core))
  in
  let domains = Array.init cores (fun core -> Domain.spawn (worker core)) in
  Array.iter Domain.join domains;
  verdicts

(* --- pooled fast paths ------------------------------------------------------- *)

let pooled plan pkts =
  Pool.with_global ~cores:plan.Maestro.Plan.cores (fun pool -> Pool.run pool plan pkts)

let run_shared_nothing (plan : Maestro.Plan.t) pkts =
  if plan.Maestro.Plan.strategy <> Maestro.Plan.Shared_nothing then
    invalid_arg "Domains.run_shared_nothing: plan is not shared-nothing";
  pooled plan pkts

let run_lock_based (plan : Maestro.Plan.t) pkts = pooled plan pkts

let run_tm (plan : Maestro.Plan.t) pkts =
  if plan.Maestro.Plan.strategy <> Maestro.Plan.Tm_based then
    invalid_arg "Domains.run_tm: plan is not transactional-memory";
  pooled plan pkts
