(* State-compute replication, dynamic half (the static analysis lives in
   {!Maestro.Scrspec}).  A prepared program stages the NF's write-slice
   once; each core binds it to its own full replica and replays foreign
   packets from their update digests, reconstructed as pseudo-packets.

   Digests travel as flat [int] segments — one slot per header field the
   slice reads, plus optional port / frame-length / timestamp slots — so
   a batch's digest is a single [int array] pushed over the existing SPSC
   rings with no per-packet boxing. *)

type t = {
  spec : Maestro.Scrspec.t;
  staged : Dsl.Compile.staged;
  ints_per_pkt : int;
}

let spec t = t.spec
let ints_per_pkt t = t.ints_per_pkt
let digest_wire_bytes t = t.spec.Maestro.Scrspec.digest_bytes

let prepare ?compiled (spec : Maestro.Scrspec.t) =
  let slice = spec.Maestro.Scrspec.slice in
  let info =
    match Dsl.Check.check slice with
    | Ok info -> info
    | Error errs ->
        invalid_arg
          (Printf.sprintf "Scr.prepare: write-slice of %s fails validation: %s"
             spec.Maestro.Scrspec.nf.Dsl.Ast.name
             (String.concat "; " errs))
  in
  let ints_per_pkt =
    List.length spec.Maestro.Scrspec.fields
    + (if spec.Maestro.Scrspec.needs_port then 1 else 0)
    + (if spec.Maestro.Scrspec.needs_len then 1 else 0)
    + if spec.Maestro.Scrspec.needs_ts then 1 else 0
  in
  { spec; staged = Dsl.Compile.stage_runner ?compiled slice info; ints_per_pkt }

(* --- encoding ---------------------------------------------------------------- *)

let encode t pkt buf off =
  let i = ref off in
  let push v =
    buf.(!i) <- v;
    incr i
  in
  List.iter (fun f -> push (Packet.Pkt.field_int pkt f)) t.spec.Maestro.Scrspec.fields;
  if t.spec.Maestro.Scrspec.needs_port then push pkt.Packet.Pkt.port;
  if t.spec.Maestro.Scrspec.needs_len then push pkt.Packet.Pkt.size;
  if t.spec.Maestro.Scrspec.needs_ts then push pkt.Packet.Pkt.ts_ns

let encode_batch t pkts ~lo ~len =
  let buf = Array.make (max 1 (len * t.ints_per_pkt)) 0 in
  for j = 0 to len - 1 do
    encode t pkts.(lo + j) buf (j * t.ints_per_pkt)
  done;
  buf

(* --- replay ------------------------------------------------------------------ *)

type replayer = { prog : t; runner : Dsl.Compile.runner }

let bind prog instance = { prog; runner = Dsl.Compile.bind_runner prog.staged instance }

(* Reconstruct a pseudo-packet from one digest segment.  Fields absent
   from the digest are never read by the slice, so their defaults are
   irrelevant to the replayed state trajectory. *)
let decode t buf off =
  let i = ref off in
  let next () =
    let v = buf.(!i) in
    incr i;
    v
  in
  let port = ref 0
  and eth_src = ref 0
  and eth_dst = ref 0
  and eth_type = ref Packet.Pkt.ipv4_ethertype
  and ip_src = ref 0
  and ip_dst = ref 0
  and proto = ref 6 (* TCP *)
  and src_port = ref 0
  and dst_port = ref 0
  and has_inner = ref false
  and tunnel_id = ref 0
  and in_ip_src = ref 0
  and in_ip_dst = ref 0
  and in_proto = ref 6
  and in_src_port = ref 0
  and in_dst_port = ref 0
  and size = ref 64
  and ts_ns = ref 0 in
  let inner r v =
    has_inner := true;
    r := v
  in
  List.iter
    (fun f ->
      let v = next () in
      match (f : Packet.Field.t) with
      | Packet.Field.Eth_src -> eth_src := v
      | Packet.Field.Eth_dst -> eth_dst := v
      | Packet.Field.Eth_type -> eth_type := v
      | Packet.Field.Ip_src -> ip_src := v
      | Packet.Field.Ip_dst -> ip_dst := v
      | Packet.Field.Ip_proto -> proto := v
      | Packet.Field.Src_port -> src_port := v
      | Packet.Field.Dst_port -> dst_port := v
      | Packet.Field.Tunnel_id -> inner tunnel_id v
      | Packet.Field.Inner_ip_src -> inner in_ip_src v
      | Packet.Field.Inner_ip_dst -> inner in_ip_dst v
      | Packet.Field.Inner_ip_proto -> inner in_proto v
      | Packet.Field.Inner_src_port -> inner in_src_port v
      | Packet.Field.Inner_dst_port -> inner in_dst_port v)
    t.spec.Maestro.Scrspec.fields;
  if t.spec.Maestro.Scrspec.needs_port then port := next ();
  if t.spec.Maestro.Scrspec.needs_len then size := next ();
  if t.spec.Maestro.Scrspec.needs_ts then ts_ns := next ();
  {
    Packet.Pkt.port = !port;
    eth_src = !eth_src;
    eth_dst = !eth_dst;
    eth_type = !eth_type;
    ip_src = !ip_src;
    ip_dst = !ip_dst;
    proto = Packet.Pkt.proto_of_number !proto;
    src_port = !src_port;
    dst_port = !dst_port;
    encap =
      (if !has_inner then
         Some
           {
             Packet.Pkt.default_encap with
             tunnel_id = !tunnel_id;
             in_ip_src = !in_ip_src;
             in_ip_dst = !in_ip_dst;
             in_proto = Packet.Pkt.proto_of_number !in_proto;
             in_src_port = !in_src_port;
             in_dst_port = !in_dst_port;
           }
       else None);
    size = !size;
    ts_ns = !ts_ns;
  }

let apply r buf off =
  let pkt = decode r.prog buf off in
  ignore (Dsl.Compile.run r.runner pkt)

let apply_batch r buf ~npkts =
  let stride = r.prog.ints_per_pkt in
  for j = 0 to npkts - 1 do
    apply r buf (j * stride)
  done

(* --- replica comparison ------------------------------------------------------ *)

let chain_dump c =
  let acc = ref [] in
  State.Dchain.iter_allocated c (fun idx touch -> acc := (idx, touch) :: !acc);
  List.rev !acc

let obj_equal a b =
  match (a, b) with
  | Dsl.Instance.O_map ma, Dsl.Instance.O_map mb ->
      List.sort compare (State.Map_s.entries ma)
      = List.sort compare (State.Map_s.entries mb)
  | Dsl.Instance.O_vector (_, sa), Dsl.Instance.O_vector (_, sb) -> sa = sb
  | Dsl.Instance.O_chain ca, Dsl.Instance.O_chain cb -> chain_dump ca = chain_dump cb
  | Dsl.Instance.O_sketch sa, Dsl.Instance.O_sketch sb -> State.Sketch.equal sa sb
  | _ -> false

let replica_equal (spec : Maestro.Scrspec.t) a b =
  List.for_all
    (fun obj -> obj_equal (Dsl.Instance.find a obj) (Dsl.Instance.find b obj))
    spec.Maestro.Scrspec.written_objects
