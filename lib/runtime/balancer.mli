(** Online RSS++ rebalancing: policy, migration planning, and the state
    handoff that keeps shared-nothing sharding correct when buckets move.

    The paper implements the *static* variant of RSS++ bucket balancing and
    notes that "their dynamic versions could be used to handle changes in
    skew over time" (§4, "Traffic skew").  This module is that dynamic
    half: {!Runtime.Pool} counts per-RETA-bucket load at dispatch and, at
    every epoch boundary, consults a {!config} to decide whether to move
    hot buckets to underloaded queues.  Because shared-nothing plans keep
    per-flow state on the owning core, a bucket move must also move the
    state of every flow hashing into that bucket — the {!migrate} executor
    below performs that handoff while the pool is quiesced.

    Cross-port consistency: Maestro configures *symmetric* per-port RSS
    keys (paper Fig. 3), so both directions of a flow produce the same hash
    and therefore the same bucket index on every port.  The balancer
    exploits this by maintaining ONE indirection table shared by all ports
    (bucket loads are aggregated across ports and the rebalanced table is
    applied to every port engine), which preserves the invariant that a
    flow lands on exactly one core no matter which port its packets
    arrive on. *)

(** {1 Policy} *)

type config = {
  epoch_pkts : int;  (** packets between imbalance checks *)
  threshold : float;
      (** rebalance when max/mean per-core load exceeds this (1.0 is
          perfectly balanced, so useful thresholds are > 1.0) *)
}

val default_config : config
(** [epoch_pkts = 4096], [threshold = 1.1]. *)

type mode = Off | On of config

(** The parser shape shared by every mode flag ([--rebalance] here,
    [--adaptive] in {!Adaptive}): ["off"], ["on"], or comma-separated
    [key=value] tokens implying "on", with every malformed input a typed
    [Error] — never an exception. *)
module Kv : sig
  val parse :
    flag:string ->
    grammar:string ->
    default:'cfg ->
    field:(key:string -> value:string -> 'cfg -> ('cfg, string) result) ->
    string ->
    ('cfg option, string) result
  (** [Ok None] for ["off"], [Ok (Some default)] for ["on"], otherwise
      [field] folds each [key=value] token over [default].  [flag] and
      [grammar] only shape error messages. *)

  val pos_int : flag:string -> key:string -> string -> (int, string) result
  val nonneg_int : flag:string -> key:string -> string -> (int, string) result

  val ratio : flag:string -> key:string -> string -> (float, string) result
  (** A float [>= 1.0] — the shape of every imbalance threshold. *)
end

val parse : string -> (mode, string) result
(** Parse a [--rebalance] specification: ["off"], ["on"], or a
    comma-separated list of [epoch=N] and [threshold=F] (each implies
    [On], missing fields take {!default_config} values).  [Error] (never
    an exception) on malformed input. *)

val to_string : mode -> string

(** {1 Migration planning}

    A static analysis of the NF's AST discovering how per-flow state is
    laid out, mirroring the Vigor idiom: a {!State.Dchain} allocates flow
    indices, key vectors remember each flow's key fields, maps go from key
    bytes to index, and data vectors hold per-flow values — all tied
    together by the [Chain_expire] purge pairs.  The plan records, for
    every migratable object, how to rebuild a flow's key, decode it back
    into packet header fields (possible exactly when the map keys are
    plain header fields — the same restriction that makes the key
    RSS-shardable in the first place), and which vectors travel with a
    chain index. *)

type migration_plan

val migration_plan : Dsl.Ast.t -> migration_plan

val exact : migration_plan -> bool
(** [true] when every written map, chain and vector is migratable, so a
    bucket move loses no state and parallel verdicts stay equal to
    sequential.  Sketches are exempt: they are estimators, not exact
    state, and are skipped (and listed) instead. *)

val skipped_objects : migration_plan -> string list
(** Written state objects the migration cannot carry (sketches always;
    maps/vectors/chains whose keys or index flow defeat the analysis). *)

(** {1 Migration execution} *)

type outcome = {
  moved_flows : int;  (** state entries handed to another core *)
  dropped_flows : int;
      (** entries evicted because the destination was full — the flow
          restarts, exactly as if it had expired *)
}

val migrate_by :
  migration_plan ->
  hash:(Packet.Pkt.t -> int option) ->
  owner:(int -> int) ->
  instances:Dsl.Instance.t array ->
  outcome
(** [migrate_by plan ~hash ~owner ~instances] walks every instance's
    state, rebuilds each flow's key, decodes it into a pseudo-packet,
    hashes it with [hash] (an RSS key solved over the plan's sharding
    constraints, so the hash depends only on the key fields), and moves
    the flow's entries to instance [owner h] when that differs from the
    current holder.  [owner] receives the raw hash — the in-pool
    rebalancer masks it into an indirection table, the cluster tier feeds
    it to a maglev lookup.  Chain indices are re-allocated on the target
    with their last-touch time preserved in recency order
    ({!State.Dchain.allocate_at}), tied vector slots are copied, and map
    entries are re-pointed — so aging, expiry order and lookups all
    survive the move.  Must only be called while the instances are
    quiesced (no worker touching them). *)

val migrate :
  migration_plan ->
  hash:(Packet.Pkt.t -> int option) ->
  mask:int ->
  dest:(int -> int) ->
  instances:Dsl.Instance.t array ->
  outcome
(** [migrate plan ~hash ~mask ~dest ~instances] is
    [migrate_by plan ~hash ~owner:(fun h -> dest (h land mask)) ~instances]
    — the single-machine indirection-table form used by the pool's
    rebalancer. *)
