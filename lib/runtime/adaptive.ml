(* Online discipline switching: the hysteresis controller that moves the
   live pool between admissible ladder rungs at epoch barriers.  See
   adaptive.mli for the design notes; the state conversions themselves
   live in Pool (the only module that owns the instances). *)

type config = { epoch_pkts : int; up : float; down : float; cooldown : int }

let default_config = { epoch_pkts = 4096; up = 1.5; down = 1.15; cooldown = 2 }

type mode = Off | On of config

let validate cfg =
  if cfg.epoch_pkts < 1 then Error "--adaptive: epochs must be a positive integer"
  else if cfg.cooldown < 0 then Error "--adaptive: cooldown must be non-negative"
  else if not (cfg.down >= 1.0) then Error "--adaptive: down must be >= 1.0"
  else if not (cfg.up > cfg.down) then
    Error
      (Printf.sprintf "--adaptive: up (%g) must exceed down (%g) — the hysteresis band"
         cfg.up cfg.down)
  else Ok cfg

let parse spec =
  let flag = "--adaptive" in
  let ( let* ) = Result.bind in
  let field ~key ~value cfg =
    match key with
    | "epochs" | "epoch" ->
        let* n = Balancer.Kv.pos_int ~flag ~key value in
        Ok { cfg with epoch_pkts = n }
    | "up" ->
        let* f = Balancer.Kv.ratio ~flag ~key value in
        Ok { cfg with up = f }
    | "down" ->
        let* f = Balancer.Kv.ratio ~flag ~key value in
        Ok { cfg with down = f }
    | "cooldown" ->
        let* n = Balancer.Kv.nonneg_int ~flag ~key value in
        Ok { cfg with cooldown = n }
    | _ -> Error (Printf.sprintf "%s: unknown key %S" flag key)
  in
  match
    Balancer.Kv.parse ~flag ~grammar:"off, on, epochs=N, up=F, down=F or cooldown=N"
      ~default:default_config ~field spec
  with
  | Ok None -> Ok Off
  | Ok (Some cfg) -> Result.map (fun c -> On c) (validate cfg)
  | Error _ as e -> e

let to_string = function
  | Off -> "off"
  | On { epoch_pkts; up; down; cooldown } ->
      Printf.sprintf "epochs=%d,up=%g,down=%g,cooldown=%d" epoch_pkts up down cooldown

(* ------------------------------------------------------------------ *)
(* Admissibility                                                       *)
(* ------------------------------------------------------------------ *)

let ladder ~strategy ~scr_ok ~exact_migration =
  let open Maestro.Ladder in
  let top =
    match strategy with
    | Maestro.Plan.Shared_nothing -> Ok Shared_nothing
    | Maestro.Plan.Scr -> Ok Scr
    | Maestro.Plan.Lock_based | Maestro.Plan.Tm_based -> Ok Lock_based
    | Maestro.Plan.Load_balance ->
        Error "adaptive: load-balance plans have no state-owning rung to switch"
  in
  Result.map
    (fun top ->
      (* admissibility is pinned to what compile time derived: never climb
         above the plan's rung, include SCR only when Scrspec admitted a
         digest, and include shared-nothing only when the migration plan
         can carry every written object (a lossy conversion would fork the
         replicas from sequential semantics) *)
      List.filter
        (function
          | Shared_nothing -> exact_migration
          | Scr -> scr_ok
          | Lock_based | Serial -> true)
        (descent top))
    top

(* ------------------------------------------------------------------ *)
(* Controller                                                          *)
(* ------------------------------------------------------------------ *)

type obs = { imbalance : float; drops : int; restarts : int; digest_bytes : int }

type decision =
  | Stay
  | Switch of Maestro.Ladder.rung
  | Suppressed of Maestro.Ladder.rung

type t = {
  config : config;
  ladder : Maestro.Ladder.rung list;
  mutable rung : Maestro.Ladder.rung;
  mutable epoch : int;
  mutable cooldown_left : int;
  mutable calm_streak : int;
  mutable pending : Maestro.Ladder.rung option; (* a deferred switch to retry *)
  mutable switches : int;
  mutable flap_suppressed : int;
  mutable switch_epochs : (int * Maestro.Ladder.rung) list; (* newest first *)
  residency : int array; (* epochs spent per rung, Ladder order *)
}

let rung_index = function
  | Maestro.Ladder.Shared_nothing -> 0
  | Maestro.Ladder.Scr -> 1
  | Maestro.Ladder.Lock_based -> 2
  | Maestro.Ladder.Serial -> 3

let c_switches =
  Telemetry.Counter.make "pool.adaptive.switches" ~doc:"discipline switches committed"

let c_suppressed =
  Telemetry.Counter.make "pool.adaptive.flap_suppressed"
    ~doc:"switches suppressed by the cooldown window"

let c_epochs =
  Telemetry.Counter.make "pool.adaptive.epochs" ~doc:"epochs observed by the controller"

let c_deferred =
  Telemetry.Counter.make "pool.adaptive.deferred"
    ~doc:"switches deferred to the next barrier by same-epoch crash recovery"

let create config ~ladder:rungs =
  (match rungs with [] -> invalid_arg "Adaptive.create: empty ladder" | _ -> ());
  {
    config;
    ladder = rungs;
    rung = List.hd rungs;
    epoch = 0;
    cooldown_left = 0;
    calm_streak = 0;
    pending = None;
    switches = 0;
    flap_suppressed = 0;
    switch_epochs = [];
    residency = Array.make 4 0;
  }

let rung t = t.rung
let admissible t = t.ladder
let switches t = t.switches
let flap_suppressed t = t.flap_suppressed
let switch_epochs t = List.rev t.switch_epochs

let residency t =
  List.filter_map
    (fun r ->
      let n = t.residency.(rung_index r) in
      if n > 0 || List.mem r t.ladder then Some (r, n) else None)
    [ Maestro.Ladder.Shared_nothing; Scr; Lock_based; Serial ]

(* position of the current rung in the admissible ladder *)
let pos t =
  let rec go i = function
    | [] -> invalid_arg "Adaptive: current rung left the ladder"
    | r :: _ when r = t.rung -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.ladder

let step_down t = List.nth_opt t.ladder (pos t + 1)
let step_up t = if pos t = 0 then None else List.nth_opt t.ladder (pos t - 1)

(* The rung the current observation asks for, hysteresis band applied:
   pressure steps down to the next more conservative rung; only a
   [cooldown + 1]-epoch streak of calm (imbalance below [down], nothing
   dropped or restarted) earns a step back up.  The dead band between
   [down] and [up] holds.

   Dispatch imbalance pressures ONLY the shared-nothing rung: skew
   bottlenecks a sharded pool on the hot core, but SCR sprays batches
   round-robin and the lock/serial rungs funnel through shared state, so
   they are skew-immune by construction — treating would-be RSS skew as
   pressure everywhere would ratchet a skewed trace all the way down to
   serial instead of settling on SCR.  Sustained skew also blocks the
   step back up (calm requires [imbalance < down]), so the pool does not
   bounce back onto the rung the skew just chased it off. *)
let desired t o =
  let skew_pressured =
    t.rung = Maestro.Ladder.Shared_nothing && o.imbalance > t.config.up
  in
  let pressured = skew_pressured || o.drops > 0 || o.restarts > 0 in
  let calm = o.imbalance < t.config.down && o.drops = 0 && o.restarts = 0 in
  if pressured then begin
    t.calm_streak <- 0;
    step_down t
  end
  else if calm then begin
    t.calm_streak <- t.calm_streak + 1;
    if t.calm_streak >= t.config.cooldown + 1 then step_up t else None
  end
  else begin
    t.calm_streak <- 0;
    None
  end

let observe t o =
  t.epoch <- t.epoch + 1;
  t.residency.(rung_index t.rung) <- t.residency.(rung_index t.rung) + 1;
  Telemetry.Counter.incr c_epochs;
  match t.pending with
  | Some r -> Switch r (* a deferred switch retries before fresh analysis *)
  | None -> (
      if t.cooldown_left > 0 then begin
        t.cooldown_left <- t.cooldown_left - 1;
        match desired t o with
        | Some r ->
            t.flap_suppressed <- t.flap_suppressed + 1;
            Telemetry.Counter.incr c_suppressed;
            Suppressed r
        | None -> Stay
      end
      else match desired t o with Some r -> Switch r | None -> Stay)

let commit t r =
  if not (List.mem r t.ladder) then invalid_arg "Adaptive.commit: rung not admissible";
  t.rung <- r;
  t.pending <- None;
  t.cooldown_left <- t.config.cooldown;
  t.calm_streak <- 0;
  t.switches <- t.switches + 1;
  t.switch_epochs <- (t.epoch, r) :: t.switch_epochs;
  Telemetry.Counter.incr c_switches

let defer t r =
  t.pending <- Some r;
  Telemetry.Counter.incr c_deferred
