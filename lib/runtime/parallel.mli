(** Deterministic execution of generated parallel NFs.

    Packets are steered by the plan's actual RSS engines (Toeplitz hash +
    indirection table) to per-core workers.  Shared-nothing workers own
    per-core state instances with divided capacities; lock-based, TM and
    load-balance workers share one instance and are serialized in arrival
    order — which is exactly the semantics their coordination guarantees, so
    verdicts are reproducible and comparable against the sequential NF.
    SCR plans spray packets round-robin over per-core {e full} replicas:
    the owner runs the complete NF, every other core replays the
    packet's update digest through the write-slice ({!Scr}), and only
    the owner's op events are accounted — replays are state maintenance,
    not packet service.

    Besides the verdicts, execution gathers the coordination statistics the
    performance model consumes: read/write packet classification under the
    speculative lock discipline (a rejuvenation counts as a local write
    thanks to the per-core aging replicas of §4, so read-heavy traffic takes
    no write locks), speculative restarts, and per-packet read/write set
    sizes for the TM abort model. *)

type stats = {
  cores : int;
  per_core_pkts : int array;
  reads : int;  (** stateful read operations *)
  writes : int;  (** stateful write operations (local aging excluded) *)
  read_pkts : int;  (** packets that needed only the core-local read lock *)
  write_pkts : int;  (** packets that restarted and took the write lock *)
  spec_restarts : int;
  expired_flows : int;
  rejuv_local : int;  (** rejuvenations absorbed by per-core aging *)
  tm_rw_sets : (int * int) list;  (** per-packet (reads, writes), newest first *)
}

val empty_stats : cores:int -> stats

val imbalance : stats -> float
(** max/mean of the per-core packet counts (1.0 = perfectly even). *)

type result = { verdicts : Dsl.Interp.action array; stats : stats }

val run_sequential : Dsl.Ast.t -> Packet.Pkt.t array -> Dsl.Interp.action array

val run : ?reta:Nic.Reta.t array -> Maestro.Plan.t -> Packet.Pkt.t array -> result
(** Execute the plan over the trace.  [reta] overrides the per-port
    indirection tables (for RSS++-style rebalanced tables, Fig. 5). *)

val dispatch_counts : ?reta:Nic.Reta.t array -> Maestro.Plan.t -> Packet.Pkt.t array -> int array
(** Per-core packet counts under the plan's RSS configuration, without
    executing the NF. *)
