type stats = {
  cores : int;
  per_core_pkts : int array;
  reads : int;
  writes : int;
  read_pkts : int;
  write_pkts : int;
  spec_restarts : int;
  expired_flows : int;
  rejuv_local : int;
  tm_rw_sets : (int * int) list;
}

let empty_stats ~cores =
  {
    cores;
    per_core_pkts = Array.make cores 0;
    reads = 0;
    writes = 0;
    read_pkts = 0;
    write_pkts = 0;
    spec_restarts = 0;
    expired_flows = 0;
    rejuv_local = 0;
    tm_rw_sets = [];
  }

let imbalance s =
  let total = Array.fold_left ( + ) 0 s.per_core_pkts in
  if total = 0 then 1.0
  else
    let mean = float_of_int total /. float_of_int s.cores in
    float_of_int (Array.fold_left max 0 s.per_core_pkts) /. mean

type result = { verdicts : Dsl.Interp.action array; stats : stats }

let c_pkts = Telemetry.Counter.make "runtime.pkts" ~doc:"packets pushed through parallel plans"
let c_restarts = Telemetry.Counter.make "runtime.spec_restarts" ~doc:"speculative lock restarts"
let c_expired = Telemetry.Counter.make "runtime.expired_flows" ~doc:"flows aged out during execution"
let c_rejuv = Telemetry.Counter.make "runtime.rejuvenations" ~doc:"rejuvenations absorbed per-core"
let h_per_core = Telemetry.Histogram.make "runtime.per_core_pkts" ~doc:"packets per core per run"

(* the sequential oracle stays on the interpreter deliberately: it is the
   reference semantics every parallel execution (and the compiled path
   itself) is differentially tested against *)
let run_sequential nf pkts =
  let info = Dsl.Check.check_exn nf in
  let inst = Dsl.Instance.create nf in
  Array.map (fun p -> Dsl.Interp.process nf info inst p) pkts

(* Per-packet accounting of one interpreter run. *)
type pkt_ops = {
  mutable r : int;
  mutable w : int;
  mutable rejuvs : int;
  mutable expired : int;
}

let observe ops (e : Dsl.Interp.op_event) =
  (match e.Dsl.Interp.kind with
  | Dsl.Interp.Op_chain_rejuv -> ops.rejuvs <- ops.rejuvs + 1
  | Dsl.Interp.Op_chain_expire -> ops.expired <- ops.expired + e.Dsl.Interp.expired
  | _ -> ());
  (* Rejuvenation is served by the per-core aging replicas (§4) and expiry
     only writes when flows actually age out, so neither forces the write
     lock on the fast path. *)
  let counts_as_write =
    match e.Dsl.Interp.kind with
    | Dsl.Interp.Op_chain_rejuv -> false
    | Dsl.Interp.Op_chain_expire -> e.Dsl.Interp.expired > 0
    | _ -> e.Dsl.Interp.write
  in
  if counts_as_write then ops.w <- ops.w + 1 else ops.r <- ops.r + 1

let run ?reta (plan : Maestro.Plan.t) pkts =
  Telemetry.Span.with_span "runtime/run" @@ fun () ->
  let nf = plan.Maestro.Plan.nf in
  let info = Dsl.Check.check_exn nf in
  let cores = plan.Maestro.Plan.cores in
  let engines =
    Array.init nf.Dsl.Ast.devices (fun port ->
        let r = Option.map (fun retas -> retas.(port)) reta in
        Maestro.Plan.rss_engine ?reta:r plan port)
  in
  let shared_nothing = plan.Maestro.Plan.strategy = Maestro.Plan.Shared_nothing in
  let scr = plan.Maestro.Plan.strategy = Maestro.Plan.Scr in
  let per_core_state = shared_nothing || scr in
  let instances =
    if per_core_state then
      Array.init cores (fun _ -> Dsl.Instance.create ~divide:(Maestro.Plan.state_divisor plan) nf)
    else Array.make 1 (Dsl.Instance.create nf)
  in
  let staged = Dsl.Compile.stage_runner nf info in
  let runners = Array.map (Dsl.Compile.bind_runner staged) instances in
  (* SCR deterministic model: packets spray round-robin, the owner runs
     the full NF (and is the only core whose op events are accounted —
     replays are state maintenance, not packet service), every other core
     replays the packet's update digest against its full replica. *)
  let scr_replay =
    if not scr then None
    else
      let spec =
        match Maestro.Scrspec.admissible nf with
        | Ok spec -> spec
        | Error e ->
            invalid_arg
              (Printf.sprintf "Parallel.run: SCR plan for %s but %s" nf.Dsl.Ast.name e)
      in
      let prog = Scr.prepare spec in
      let replayers = Array.map (Scr.bind prog) instances in
      let buf = Array.make (max 1 (Scr.ints_per_pkt prog)) 0 in
      Some
        (fun owner pkt ->
          Scr.encode prog pkt buf 0;
          Array.iteri (fun c r -> if c <> owner then Scr.apply r buf 0) replayers)
  in
  let rr = ref 0 in
  let per_core_pkts = Array.make cores 0 in
  let reads = ref 0 and writes = ref 0 in
  let read_pkts = ref 0 and write_pkts = ref 0 in
  let spec_restarts = ref 0 and expired_flows = ref 0 and rejuv_local = ref 0 in
  let tm_rw_sets = ref [] in
  let tm = plan.Maestro.Plan.strategy = Maestro.Plan.Tm_based in
  let lock_based = plan.Maestro.Plan.strategy = Maestro.Plan.Lock_based in
  let verdicts =
    Array.map
      (fun pkt ->
        let core =
          if scr then begin
            let c = !rr mod cores in
            incr rr;
            c
          end
          else Nic.Rss.dispatch engines.(pkt.Packet.Pkt.port) pkt
        in
        per_core_pkts.(core) <- per_core_pkts.(core) + 1;
        let runner = if per_core_state then runners.(core) else runners.(0) in
        let ops = { r = 0; w = 0; rejuvs = 0; expired = 0 } in
        let verdict = Dsl.Compile.run ~on_op:(observe ops) runner pkt in
        (match scr_replay with Some replay -> replay core pkt | None -> ());
        reads := !reads + ops.r;
        writes := !writes + ops.w;
        expired_flows := !expired_flows + ops.expired;
        rejuv_local := !rejuv_local + ops.rejuvs;
        if lock_based then
          if ops.w > 0 then begin
            (* speculative read execution hit a write: restart under the
               all-cores write lock *)
            incr write_pkts;
            incr spec_restarts
          end
          else incr read_pkts;
        if tm then tm_rw_sets := (ops.r, ops.w) :: !tm_rw_sets;
        verdict)
      pkts
  in
  if Telemetry.enabled () then begin
    Telemetry.Counter.add c_pkts (Array.length pkts);
    Telemetry.Counter.add c_restarts !spec_restarts;
    Telemetry.Counter.add c_expired !expired_flows;
    Telemetry.Counter.add c_rejuv !rejuv_local;
    Array.iter (fun n -> Telemetry.Histogram.observe h_per_core (float_of_int n)) per_core_pkts
  end;
  {
    verdicts;
    stats =
      {
        cores;
        per_core_pkts;
        reads = !reads;
        writes = !writes;
        read_pkts = !read_pkts;
        write_pkts = !write_pkts;
        spec_restarts = !spec_restarts;
        expired_flows = !expired_flows;
        rejuv_local = !rejuv_local;
        tm_rw_sets = !tm_rw_sets;
      };
  }

let dispatch_counts ?reta (plan : Maestro.Plan.t) pkts =
  let nf = plan.Maestro.Plan.nf in
  let engines =
    Array.init nf.Dsl.Ast.devices (fun port ->
        let r = Option.map (fun retas -> retas.(port)) reta in
        Maestro.Plan.rss_engine ?reta:r plan port)
  in
  let counts = Array.make plan.Maestro.Plan.cores 0 in
  Array.iter
    (fun pkt ->
      let core = Nic.Rss.dispatch engines.(pkt.Packet.Pkt.port) pkt in
      counts.(core) <- counts.(core) + 1)
    pkts;
  counts
