(** A combinator DSL for binary header formats.

    Following Narcissus, a single declarative format yields both the
    parser and the encoder: {!Codec.stage} compiles a spec into
    zero-copy accessors and a derived encoder such that
    [encode ∘ decode = id] holds by construction.

    A spec is a chain of {e records}.  Each record is an ordered list of
    fixed-width bit {e fields} followed by a {!next} rule: nothing
    ([Stop]), an unconditional nested record ([Then]), or a tagged union
    ([Switch]) discriminating on one of the record's own fields — the
    ethertype, the IP protocol, a well-known UDP port.  Classification
    is first-match with no backtracking.

    Fields are either plain values or {e derived}: constants, computed
    lengths, header-length words (IPv4 IHL, TCP data offset) and
    checksums.  Derived fields are ignored on decode and fixed up by the
    derived encoder. *)

(** What a computed length counts: the bytes from this header's first
    byte to the end of the frame, or from just past this header's fixed
    part (IPv6 payload length). *)
type lscope = From_this_header | After_this_header

(** Checksum flavours: the IPv4 header checksum (over this record's
    actual bytes), or an L4 pseudo-header checksum that folds in address
    and protocol fields of the named ancestor IP record plus the L4
    length. *)
type ckind =
  | Ipv4_header
  | L4_pseudo of {
      ip : string;  (** record name of the enclosing IP header *)
      addrs : string list;  (** its address fields, in pseudo-header order *)
      proto_field : string;  (** its protocol / next-header field *)
      zero_is_ffff : bool;  (** transmit 0xffff when the sum comes out 0 *)
    }

type kind =
  | Value  (** caller-supplied on encode, reported on decode *)
  | Const of int  (** fixed wire value, written by the encoder *)
  | Length of lscope  (** computed byte count, written by the encoder *)
  | Hdr_len of { unit_bytes : int }
      (** this record's actual length in [unit_bytes] units; bounds the
          decoder (options allowed) and is emitted minimal by the encoder *)
  | Checksum of ckind  (** fixup field, settled innermost-first *)

type field = { fname : string; bits : int; fkind : kind }

(** What an unmatched switch tag means: [Accept] ends the shape at this
    record (an IPv4 packet of an unmodeled protocol is still a packet);
    [Reject] classifies the frame as unsupported. *)
type default = Accept | Reject

type t = { name : string; fields : field list; next : next }

and next =
  | Stop
  | Then of t
  | Switch of { on : string; arms : (int * t) list; default : default }

val field : ?kind:kind -> string -> int -> field
(** [field name bits] — a plain value field of [bits] wire bits. *)

val const : string -> int -> int -> field
(** [const name bits v] — shorthand for [field ~kind:(Const v) name bits]. *)

val value : ?kind:kind -> string -> int -> field
(** Alias of {!field}. *)

val record : string -> field list -> next -> t

val fixed_bits : t -> int
(** Total declared bits of the record's fixed part. *)

val fixed_bytes : t -> int

val find_field : t -> string -> field option

val hdr_len_field : t -> field option
(** The record's [Hdr_len] field, if any. *)

val validate : t -> (unit, string) result
(** Structural checks: every record a whole number of bytes; every field
    1–56 bits and spanning at most 7 bytes (so staged reads fit an OCaml
    int); unique field names per record; at most one [Hdr_len] per
    record; switch scrutinee declared in the same record with distinct
    arm tags; no record name repeated along a path; pseudo-checksums
    referencing an ancestor record.  [Codec.stage] refuses specs that
    fail this. *)

val pp : Format.formatter -> t -> unit
