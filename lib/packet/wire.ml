(* Wire encoding of packets, routed through the staged codecs of
   Stacks.pkt.  The original hand-written parser/serializer survives as
   [Legacy] — the differential-test oracle for the derived code, exactly
   like lib/dsl keeps the interpreter as the oracle for staged NFs. *)

(* RFC 1071, delegating to the codec's fixup primitive (allocation-free,
   odd tail folded in place — no padded copy). *)
let internet_checksum buf =
  Codec.Checksum.(finish (sum_region buf ~off:0 ~len:(Bytes.length buf) 0))

let eth_header = 14
let ip_header = 20

let l4_header = function Pkt.Tcp -> 20 | Pkt.Udp -> 8 | Pkt.Other _ -> 0

let min_size proto = eth_header + ip_header + l4_header proto

(* ---- the hand-written original, kept as oracle ---------------------- *)

module Legacy = struct
  let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

  let set_u16 b off v =
    set_u8 b off (v lsr 8);
    set_u8 b (off + 1) v

  let set_u32 b off v =
    set_u16 b off (v lsr 16);
    set_u16 b (off + 2) v

  let set_u48 b off v =
    set_u16 b off (v lsr 32);
    set_u32 b (off + 2) v

  let get_u8 b off = Char.code (Bytes.get b off)
  let get_u16 b off = (get_u8 b off lsl 8) lor get_u8 b (off + 1)
  let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)
  let get_u48 b off = (get_u16 b off lsl 32) lor get_u32 b (off + 2)

  let serialize (p : Pkt.t) =
    let hdr = min_size p.Pkt.proto in
    if p.Pkt.size < hdr then
      invalid_arg
        (Printf.sprintf "Wire.serialize: frame of %d B below header size %d B" p.Pkt.size
           hdr);
    let b = Bytes.make p.Pkt.size '\000' in
    (* Ethernet *)
    set_u48 b 0 p.Pkt.eth_dst;
    set_u48 b 6 p.Pkt.eth_src;
    set_u16 b 12 p.Pkt.eth_type;
    (* IPv4 *)
    let ip_total = p.Pkt.size - eth_header in
    set_u8 b 14 0x45;
    set_u16 b 16 ip_total;
    set_u8 b 22 64 (* TTL *);
    set_u8 b 23 (Pkt.proto_number p.Pkt.proto);
    set_u32 b 26 p.Pkt.ip_src;
    set_u32 b 30 p.Pkt.ip_dst;
    let ip_csum = internet_checksum (Bytes.sub b eth_header ip_header) in
    set_u16 b 24 ip_csum;
    (* L4 *)
    let l4_off = eth_header + ip_header in
    let l4_len = p.Pkt.size - l4_off in
    (match p.Pkt.proto with
    | Pkt.Tcp ->
        set_u16 b l4_off p.Pkt.src_port;
        set_u16 b (l4_off + 2) p.Pkt.dst_port;
        set_u8 b (l4_off + 12) 0x50 (* data offset = 5 words *)
    | Pkt.Udp ->
        set_u16 b l4_off p.Pkt.src_port;
        set_u16 b (l4_off + 2) p.Pkt.dst_port;
        set_u16 b (l4_off + 4) l4_len
    | Pkt.Other _ -> ());
    (* L4 checksum over pseudo-header + segment *)
    (match p.Pkt.proto with
    | Pkt.Tcp | Pkt.Udp ->
        let pseudo = Bytes.make (12 + l4_len) '\000' in
        set_u32 pseudo 0 p.Pkt.ip_src;
        set_u32 pseudo 4 p.Pkt.ip_dst;
        set_u8 pseudo 9 (Pkt.proto_number p.Pkt.proto);
        set_u16 pseudo 10 l4_len;
        Bytes.blit b l4_off pseudo 12 l4_len;
        let csum = internet_checksum pseudo in
        let csum_off = if p.Pkt.proto = Pkt.Tcp then l4_off + 16 else l4_off + 6 in
        set_u16 b csum_off (if csum = 0 then 0xffff else csum)
    | Pkt.Other _ -> ());
    b

  let parse ?(port = 0) ?(ts_ns = 0) b =
    let n = Bytes.length b in
    if n < eth_header then Error "frame shorter than an Ethernet header"
    else
      let eth_dst = get_u48 b 0 and eth_src = get_u48 b 6 and eth_type = get_u16 b 12 in
      if eth_type <> Pkt.ipv4_ethertype then Error "unsupported ethertype"
      else if n < eth_header + ip_header then Error "frame truncated inside the IPv4 header"
      else
        let proto = Pkt.proto_of_number (get_u8 b 23) in
        let ip_src = get_u32 b 26 and ip_dst = get_u32 b 30 in
        let l4_off = eth_header + ((get_u8 b 14 land 0xf) * 4) in
        let needs = match proto with Pkt.Tcp | Pkt.Udp -> 4 | Pkt.Other _ -> 0 in
        if n < l4_off + needs then Error "frame truncated inside the L4 header"
        else
          let src_port, dst_port =
            match proto with
            | Pkt.Tcp | Pkt.Udp -> (get_u16 b l4_off, get_u16 b (l4_off + 2))
            | Pkt.Other _ -> (0, 0)
          in
          Ok
            {
              Pkt.port;
              eth_src;
              eth_dst;
              eth_type;
              ip_src;
              ip_dst;
              proto;
              src_port;
              dst_port;
              encap = None;
              size = n;
              ts_ns;
            }
end

(* ---- staged path ---------------------------------------------------- *)

let c = Stacks.pkt

module Sid = Stacks.Sid

let shape_for (p : Pkt.t) =
  match p.Pkt.encap with
  | None -> (
      match p.Pkt.proto with
      | Pkt.Tcp -> Sid.tcp
      | Pkt.Udp -> Sid.udp
      | Pkt.Other _ -> Sid.ipv4)
  | Some e -> (
      match (e.Pkt.kind, e.Pkt.in_proto) with
      | Pkt.Vxlan, Pkt.Tcp -> Sid.vxlan_tcp
      | Pkt.Vxlan, Pkt.Udp -> Sid.vxlan_udp
      | Pkt.Vxlan, Pkt.Other _ -> Sid.vxlan_ip
      | Pkt.Gre, Pkt.Tcp -> Sid.gre_tcp
      | Pkt.Gre, Pkt.Udp -> Sid.gre_udp
      | Pkt.Gre, Pkt.Other _ -> Sid.gre_ip)

let header_size p = Codec.encode_fixed_len c ~shape:(shape_for p)

let serialize (p : Pkt.t) =
  let shape = shape_for p in
  let hdr = Codec.encode_fixed_len c ~shape in
  if p.Pkt.size < hdr then
    invalid_arg
      (Printf.sprintf "Wire.serialize: frame of %d B below header size %d B" p.Pkt.size hdr);
  let outer =
    [
      ("eth.dst", p.Pkt.eth_dst);
      ("eth.src", p.Pkt.eth_src);
      ("ipv4.ttl", 64);
      ("ipv4.proto", Pkt.proto_number p.Pkt.proto);
      ("ipv4.src", p.Pkt.ip_src);
      ("ipv4.dst", p.Pkt.ip_dst);
      ("tcp.sport", p.Pkt.src_port);
      ("tcp.dport", p.Pkt.dst_port);
      ("udp.sport", p.Pkt.src_port);
      ("udp.dport", p.Pkt.dst_port);
    ]
  in
  let fields =
    match p.Pkt.encap with
    | None -> outer
    | Some e ->
        outer
        @ [
            ("vxlan.vni", e.Pkt.tunnel_id land 0xffffff);
            ("gre.key", e.Pkt.tunnel_id);
            ("ieth.dst", e.Pkt.in_eth_dst);
            ("ieth.src", e.Pkt.in_eth_src);
            ("iipv4.ttl", 64);
            ("iipv4.proto", Pkt.proto_number e.Pkt.in_proto);
            ("iipv4.src", e.Pkt.in_ip_src);
            ("iipv4.dst", e.Pkt.in_ip_dst);
            ("itcp.sport", e.Pkt.in_src_port);
            ("itcp.dport", e.Pkt.in_dst_port);
            ("iudp.sport", e.Pkt.in_src_port);
            ("iudp.dport", e.Pkt.in_dst_port);
          ]
  in
  Codec.encode c ~shape ~payload_len:(p.Pkt.size - hdr) fields

(* Staged getters, one array per path, indexed by shape id. *)
let g_eth_src = Codec.getter c "eth.src"
let g_eth_dst = Codec.getter c "eth.dst"
let g_ip_src = Codec.getter c "ipv4.src"
let g_ip_dst = Codec.getter c "ipv4.dst"
let g_ip_proto = Codec.getter c "ipv4.proto"
let g_tcp_sport = Codec.getter c "tcp.sport"
let g_tcp_dport = Codec.getter c "tcp.dport"
let g_udp_sport = Codec.getter c "udp.sport"
let g_udp_dport = Codec.getter c "udp.dport"
let g_vni = Codec.getter c "vxlan.vni"
let g_gre_key = Codec.getter c "gre.key"
let g_ieth_src = Codec.getter c "ieth.src"
let g_ieth_dst = Codec.getter c "ieth.dst"
let g_iip_src = Codec.getter c "iipv4.src"
let g_iip_dst = Codec.getter c "iipv4.dst"
let g_iip_proto = Codec.getter c "iipv4.proto"
let g_itcp_sport = Codec.getter c "itcp.sport"
let g_itcp_dport = Codec.getter c "itcp.dport"
let g_iudp_sport = Codec.getter c "iudp.sport"
let g_iudp_dport = Codec.getter c "iudp.dport"

(* Per-shape Pkt builders with the getter closures prebound at module
   init — the per-frame path is one classification plus direct closure
   calls, no array dispatch. *)
let builders : (int -> int -> bytes -> Pkt.t) array =
  Array.init (Codec.shape_count c) (fun sid ->
      let ges = g_eth_src.(sid)
      and ged = g_eth_dst.(sid)
      and gis = g_ip_src.(sid)
      and gid = g_ip_dst.(sid) in
      let base ~proto ~sport ~dport ~encap port ts_ns b =
        {
          Pkt.port;
          eth_src = ges b;
          eth_dst = ged b;
          eth_type = Pkt.ipv4_ethertype;
          ip_src = gis b;
          ip_dst = gid b;
          proto;
          src_port = sport;
          dst_port = dport;
          encap;
          size = Bytes.length b;
          ts_ns;
        }
      in
      if sid = Sid.tcp then (
        let gsp = g_tcp_sport.(sid) and gdp = g_tcp_dport.(sid) in
        fun port ts_ns b ->
          base ~proto:Pkt.Tcp ~sport:(gsp b) ~dport:(gdp b) ~encap:None port ts_ns b)
      else if sid = Sid.udp then (
        let gsp = g_udp_sport.(sid) and gdp = g_udp_dport.(sid) in
        fun port ts_ns b ->
          base ~proto:Pkt.Udp ~sport:(gsp b) ~dport:(gdp b) ~encap:None port ts_ns b)
      else if sid = Sid.ipv4 then (
        let gpr = g_ip_proto.(sid) in
        fun port ts_ns b ->
          base ~proto:(Pkt.proto_of_number (gpr b)) ~sport:0 ~dport:0 ~encap:None port
            ts_ns b)
      else if sid = Sid.vxlan_tcp || sid = Sid.vxlan_udp || sid = Sid.vxlan_ip then (
        let gsp = g_udp_sport.(sid)
        and gvni = g_vni.(sid)
        and gies = g_ieth_src.(sid)
        and gied = g_ieth_dst.(sid)
        and giis = g_iip_src.(sid)
        and giid = g_iip_dst.(sid) in
        let inner =
          if sid = Sid.vxlan_tcp then
            let gip = g_itcp_sport.(sid) and gid' = g_itcp_dport.(sid) in
            fun b -> (Pkt.Tcp, gip b, gid' b)
          else if sid = Sid.vxlan_udp then
            let gip = g_iudp_sport.(sid) and gid' = g_iudp_dport.(sid) in
            fun b -> (Pkt.Udp, gip b, gid' b)
          else
            let gipr = g_iip_proto.(sid) in
            fun b -> (Pkt.proto_of_number (gipr b), 0, 0)
        in
        fun port ts_ns b ->
          let in_proto, isp, idp = inner b in
          base ~proto:Pkt.Udp ~sport:(gsp b) ~dport:Stacks.vxlan_port
            ~encap:
              (Some
                 {
                   Pkt.kind = Pkt.Vxlan;
                   tunnel_id = gvni b;
                   in_eth_src = gies b;
                   in_eth_dst = gied b;
                   in_ip_src = giis b;
                   in_ip_dst = giid b;
                   in_proto;
                   in_src_port = isp;
                   in_dst_port = idp;
                 })
            port ts_ns b)
      else if sid = Sid.gre_tcp || sid = Sid.gre_udp || sid = Sid.gre_ip then (
        let gkey = g_gre_key.(sid) and giis = g_iip_src.(sid) and giid = g_iip_dst.(sid) in
        let inner =
          if sid = Sid.gre_tcp then
            let gip = g_itcp_sport.(sid) and gid' = g_itcp_dport.(sid) in
            fun b -> (Pkt.Tcp, gip b, gid' b)
          else if sid = Sid.gre_udp then
            let gip = g_iudp_sport.(sid) and gid' = g_iudp_dport.(sid) in
            fun b -> (Pkt.Udp, gip b, gid' b)
          else
            let gipr = g_iip_proto.(sid) in
            fun b -> (Pkt.proto_of_number (gipr b), 0, 0)
        in
        fun port ts_ns b ->
          let in_proto, isp, idp = inner b in
          base ~proto:(Pkt.Other Stacks.gre_proto) ~sport:0 ~dport:0
            ~encap:
              (Some
                 {
                   Pkt.kind = Pkt.Gre;
                   tunnel_id = gkey b;
                   in_eth_src = 0;
                   in_eth_dst = 0;
                   in_ip_src = giis b;
                   in_ip_dst = giid b;
                   in_proto;
                   in_src_port = isp;
                   in_dst_port = idp;
                 })
            port ts_ns b)
      else
        fun _ _ _ ->
          invalid_arg ("Wire.parse_typed: unhandled shape " ^ Codec.shape_name c sid))

let parse_typed ?(port = 0) ?(ts_ns = 0) b =
  let sid = Codec.shape_of c b in
  if sid < 0 then Error (Codec.error_of c b) else Ok (builders.(sid) port ts_ns b)

let parse ?port ?ts_ns b =
  match parse_typed ?port ?ts_ns b with
  | Ok p -> Ok p
  | Error e -> Error (Codec.error_to_string e)
