(** Concrete packets.

    A packet is a parsed Ethernet/IPv4/L4 header set plus wire metadata.
    Header values are plain non-negative integers (a 48-bit MAC fits in an
    OCaml int); [size] is the full frame length in bytes, used by the
    performance model and by throughput accounting.

    A packet may additionally carry an {!encap} view: the inner headers of
    a VXLAN or GRE tunnel as seen by a tunnel-terminating NF.  The outer
    fields then describe the underlay (VTEP addresses, outer UDP port) and
    the [Inner_*] members of {!Field.t} address the encapsulated frame. *)

type proto = Tcp | Udp | Other of int

type encap_kind = Vxlan | Gre

type encap = {
  kind : encap_kind;
  tunnel_id : int;  (** VXLAN VNI (24-bit) or GRE key (32-bit) *)
  in_eth_src : int;  (** inner MACs; zero for GRE (no inner Ethernet) *)
  in_eth_dst : int;
  in_ip_src : int;
  in_ip_dst : int;
  in_proto : proto;
  in_src_port : int;
  in_dst_port : int;
}

type t = {
  port : int;  (** device the packet arrived on *)
  eth_src : int;  (** 48-bit MAC *)
  eth_dst : int;
  eth_type : int;  (** 16-bit; 0x0800 for IPv4 *)
  ip_src : int;  (** 32-bit IPv4 address *)
  ip_dst : int;
  proto : proto;
  src_port : int;  (** 16-bit; 0 when [proto] is [Other] *)
  dst_port : int;
  encap : encap option;  (** inner headers when the frame is a tunnel *)
  size : int;  (** frame bytes, header included *)
  ts_ns : int;  (** arrival timestamp, nanoseconds *)
}

val ipv4_ethertype : int

val proto_number : proto -> int

val proto_of_number : int -> proto

val default_encap : encap
(** A zeroed VXLAN view; what {!set_field} materializes when asked to set
    an inner field on a packet with no encapsulation. *)

val make :
  ?port:int ->
  ?eth_src:int ->
  ?eth_dst:int ->
  ?proto:proto ->
  ?size:int ->
  ?ts_ns:int ->
  ?encap:encap ->
  ip_src:int ->
  ip_dst:int ->
  src_port:int ->
  dst_port:int ->
  unit ->
  t
(** A TCP/IPv4 packet by default, 64 bytes, port 0, timestamp 0, no
    encapsulation. *)

val get_field : t -> Field.t -> Bitvec.t
(** The wire bits of one header field, MSB first. *)

val field_int : t -> Field.t -> int
(** Inner fields and the tunnel id of a packet without an [encap] view
    read as zero (same convention as absent L4 ports). *)

val set_field : t -> Field.t -> int -> t
(** Functional update of one header field.  Setting an inner field on a
    packet with no encapsulation materializes {!default_encap} first. *)

val flip : t -> t
(** Swap source and destination addresses and ports (the WAN reply direction
    of a LAN flow), inner headers included. *)

val with_port : t -> int -> t

val wire_size : t -> int
(** Bytes the frame occupies on the wire including Ethernet preamble,
    start-of-frame delimiter and inter-frame gap (size + 20) — what line-rate
    math must use. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val pp_ip : Format.formatter -> int -> unit
(** Dotted-quad rendering of a 32-bit address. *)
