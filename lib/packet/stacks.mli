(** The shipped format specs and their staged codecs.

    {!pkt} is the production stack [Wire] routes through: Ethernet →
    IPv4 → TCP/UDP, with VXLAN (UDP port 4789, inner Ethernet) and GRE
    (IP protocol 47, keyed) tunnels carrying an inner IPv4/TCP/UDP
    stack.  {!full} adds VLAN (0x8100), QinQ (0x88a8 + 0x8100) and IPv6
    (0x86dd) — codec-level protocol diversity exercised by the
    round-trip properties and pcap fixtures.

    Classification is first-match on switch tags with no backtracking:
    a plain UDP frame to port 4789 is committed to the VXLAN arm.  The
    traffic generators keep ordinary flows away from the tunnel port. *)

val vxlan_port : int
(** 4789. *)

val gre_proto : int
(** 47. *)

val pkt_spec : Spec.t
val full_spec : Spec.t

val pkt : Codec.t
(** Staged production stack (9 shapes). *)

val full : Codec.t
(** Staged extended stack (VLAN/QinQ/IPv6 included). *)

(** Shape ids of {!pkt}, by path name. *)
module Sid : sig
  val ipv4 : int
  (** ["eth/ipv4"] — IPv4 of an unmodeled protocol. *)

  val tcp : int
  val udp : int
  val vxlan_ip : int
  val vxlan_tcp : int
  val vxlan_udp : int
  val gre_ip : int
  val gre_tcp : int
  val gre_udp : int
end
