(* A combinator DSL for binary header formats (the Narcissus idea: one
   declarative format from which both the parser and the encoder are
   derived).  A spec is a chain of records; each record is a list of
   fixed-width bit fields plus a rule for what follows it — nothing, a
   nested record, or a tagged union switching on one of its own fields
   (ethertype, IP protocol, UDP destination port).  Fields can carry
   derived kinds — constants, computed lengths, header-length words,
   checksums — which the parser ignores and the encoder fixes up, so
   encode ∘ decode = id holds by construction.  Codec.stage compiles a
   spec into allocation-free offset/width accessors over the raw frame. *)

type lscope = From_this_header | After_this_header

type ckind =
  | Ipv4_header
  | L4_pseudo of {
      ip : string;  (** record name of the enclosing IP header *)
      addrs : string list;  (** its address fields, in pseudo-header order *)
      proto_field : string;  (** its protocol / next-header field *)
      zero_is_ffff : bool;  (** transmit 0xffff when the sum comes out 0 *)
    }

type kind =
  | Value
  | Const of int
  | Length of lscope
  | Hdr_len of { unit_bytes : int }
  | Checksum of ckind

type field = { fname : string; bits : int; fkind : kind }

type default = Accept | Reject

type t = { name : string; fields : field list; next : next }

and next =
  | Stop
  | Then of t
  | Switch of { on : string; arms : (int * t) list; default : default }

let field ?(kind = Value) fname bits = { fname; bits; fkind = kind }
let const fname bits v = { fname; bits; fkind = Const v }
let value = field
let record name fields next = { name; fields; next }

let fixed_bits r = List.fold_left (fun acc f -> acc + f.bits) 0 r.fields
let fixed_bytes r = fixed_bits r / 8

let find_field r fname = List.find_opt (fun f -> f.fname = fname) r.fields

let hdr_len_field r =
  List.find_opt (fun f -> match f.fkind with Hdr_len _ -> true | _ -> false) r.fields

(* Structural validation.  Offset/width legality is per record; cross-record
   rules (unique names along a path, pseudo-checksums referencing an
   enclosing IP record) depend on the path and are rechecked shape by shape
   in Codec.stage. *)
let validate spec =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let rec walk path (r : t) =
    let path = path @ [ r.name ] in
    let where = String.concat "/" path in
    if fixed_bits r mod 8 <> 0 then
      err "%s: %d bits is not a whole number of bytes" where (fixed_bits r);
    let names = List.map (fun f -> f.fname) r.fields in
    if List.length (List.sort_uniq compare names) <> List.length names then
      err "%s: duplicate field name" where;
    let bit = ref 0 in
    List.iter
      (fun f ->
        let span = (!bit mod 8) + f.bits in
        if f.bits < 1 || span > 56 then
          err "%s.%s: %d bits at bit offset %d exceeds the int-safe window" where f.fname
            f.bits !bit;
        (match f.fkind with
        | Hdr_len { unit_bytes } when unit_bytes < 1 ->
            err "%s.%s: header-length unit must be positive" where f.fname
        | Const v when v lsr f.bits <> 0 && f.bits < 62 ->
            err "%s.%s: constant 0x%x exceeds %d bits" where f.fname v f.bits
        | _ -> ());
        bit := !bit + f.bits)
      r.fields;
    if
      List.length
        (List.filter (fun f -> match f.fkind with Hdr_len _ -> true | _ -> false) r.fields)
      > 1
    then err "%s: more than one header-length field" where;
    List.iter
      (fun f ->
        match f.fkind with
        | Checksum (L4_pseudo { ip; addrs; proto_field; _ }) ->
            if not (List.exists (fun anc -> anc = ip) path) then
              err "%s.%s: pseudo-header record %s is not an ancestor" where f.fname ip;
            ignore addrs;
            ignore proto_field
        | _ -> ())
      r.fields;
    match r.next with
    | Stop -> ()
    | Then t ->
        if List.mem t.name path then err "%s: record %s repeats along the path" where t.name;
        walk path t
    | Switch { on; arms; default = _ } ->
        (match find_field r on with
        | None -> err "%s: switch field %s is not declared" where on
        | Some f -> (
            match f.fkind with
            | Value | Const _ -> ()
            | _ -> err "%s: switch field %s must be a plain value" where on));
        let tags = List.map fst arms in
        if List.length (List.sort_uniq compare tags) <> List.length tags then
          err "%s: duplicate switch arm" where;
        List.iter
          (fun (_, t) ->
            if List.mem t.name path then
              err "%s: record %s repeats along the path" where t.name;
            walk path t)
          arms
  in
  walk [] spec;
  match !errs with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

let rec pp fmt (r : t) =
  Format.fprintf fmt "@[<v 2>%s {" r.name;
  List.iter
    (fun f ->
      let k =
        match f.fkind with
        | Value -> ""
        | Const v -> Printf.sprintf " = 0x%x" v
        | Length From_this_header -> " = len(here..)"
        | Length After_this_header -> " = len(after..)"
        | Hdr_len { unit_bytes } -> Printf.sprintf " = hdrlen/%d" unit_bytes
        | Checksum Ipv4_header -> " = cksum(header)"
        | Checksum (L4_pseudo { ip; _ }) -> Printf.sprintf " = cksum(pseudo %s)" ip
      in
      Format.fprintf fmt "@ %s:%d%s" f.fname f.bits k)
    r.fields;
  (match r.next with
  | Stop -> ()
  | Then t -> Format.fprintf fmt "@ -> %a" pp t
  | Switch { on; arms; default } ->
      Format.fprintf fmt "@ switch %s {" on;
      List.iter (fun (v, t) -> Format.fprintf fmt "@ 0x%x -> %a" v pp t) arms;
      Format.fprintf fmt "@ _ -> %s }"
        (match default with Accept -> "accept" | Reject -> "reject"));
  Format.fprintf fmt "@]@ }"
