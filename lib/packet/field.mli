(** Packet header fields.

    This is the shared vocabulary between the symbolic-execution engine
    (which reports which fields an NF's state keys are built from), the
    constraints generator, and RS3 (which maps fields onto Toeplitz hash
    input bits).  Widths are wire widths in bits.

    The [Inner_*] fields address the headers *inside* a terminated
    VXLAN/GRE tunnel (the {!Pkt.encap} view); [Tunnel_id] is the VXLAN
    VNI or GRE key.  Tunnel-terminating NFs key state on inner 5-tuples,
    so the sharding constraints of the paper (§3.4) apply two headers
    deep — these variants are what lets symbex report that and lets
    [Nic.Field_set] build inner-header hash plans. *)

type t =
  | Eth_src
  | Eth_dst
  | Eth_type
  | Ip_src
  | Ip_dst
  | Ip_proto
  | Src_port
  | Dst_port
  | Tunnel_id  (** VXLAN VNI / GRE key of an encapsulated packet *)
  | Inner_ip_src
  | Inner_ip_dst
  | Inner_ip_proto
  | Inner_src_port
  | Inner_dst_port

val all : t list

val width : t -> int
(** Wire width in bits. *)

val rss_capable : t -> bool
(** Whether any RSS field set can hash over this field at all.  Link-layer
    fields are not hashable by RSS on the NICs we model (paper §3.4, rule
    R4: the bridge's MAC-keyed state defeats shared-nothing), and neither
    is the tunnel id, which lives in the VXLAN/GRE shim.  Inner headers of
    terminated tunnels {e are} hashable. *)

val symmetric_counterpart : t -> t option
(** The field this one swaps with under flow symmetry:
    [Ip_src <-> Ip_dst], [Src_port <-> Dst_port], [Eth_src <-> Eth_dst],
    and likewise for the inner header. *)

val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val compare : t -> t -> int
