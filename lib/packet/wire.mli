(** Wire encoding of packets, derived from the staged codecs.

    [serialize] and [parse] route through {!Stacks.pkt} (the production
    Ethernet/IPv4 stack with VXLAN and GRE tunnels): one staged
    classification per frame, field reads straight off the bytes.  The
    original hand-written code survives as {!Legacy}, the differential
    oracle for the derived path. *)

val internet_checksum : bytes -> int
(** RFC 1071 ones-complement checksum over the buffer.  Allocation-free,
    including the odd-length tail (folded in place — no padded copy);
    delegates to {!Codec.Checksum}, the same primitive the derived
    encoders use for checksum fixups. *)

val serialize : Pkt.t -> bytes
(** Encode the packet into a frame of exactly [p.size] bytes (the payload
    is zero-filled) via the derived encoder for the packet's shape —
    including VXLAN/GRE encapsulation when [p.encap] is set.  Header
    checksums and lengths are fixed up by construction.  Raises
    [Invalid_argument] when [p.size] cannot hold the headers
    ({!header_size}). *)

val parse_typed : ?port:int -> ?ts_ns:int -> bytes -> (Pkt.t, Codec.error) result
(** Decode a frame through the staged classifier.  Tunnel frames (UDP
    port 4789 VXLAN, IP protocol 47 GRE) come back with [encap] set.
    Truncation and unsupported ethertypes/protocols are distinguished in
    the typed error. *)

val parse : ?port:int -> ?ts_ns:int -> bytes -> (Pkt.t, string) result
(** String-error shim over {!parse_typed}.  Note the historical
    silent-zero behaviour is gone: a non-IPv4 ethertype is an [Error
    "unsupported …"], not an [Ok] packet with zeroed addresses. *)

val header_size : Pkt.t -> int
(** Exact header bytes [serialize] will emit for this packet's shape. *)

val min_size : Pkt.proto -> int
(** Smallest unencapsulated frame that [serialize] accepts for this
    protocol. *)

(** The pre-codec hand-written serializer/parser, kept as the
    differential-test oracle (IPv4-only, no tunnels). *)
module Legacy : sig
  val serialize : Pkt.t -> bytes

  val parse : ?port:int -> ?ts_ns:int -> bytes -> (Pkt.t, string) result
end
