(* Stage a Spec.t into zero-copy accessors over raw frames.

   [stage] walks the spec once and produces:
   - a decision [tree] closure classifying a frame into a *shape* — one
     root-to-leaf path through the tagged unions — with all offsets,
     tag locations and bounds baked in (dynamic offsets, e.g. past an
     IPv4 IHL, are themselves staged closures);
   - per-field get/set closure arrays indexed by shape id, so a hot
     loop does [shape_of] once and then raw offset/width reads with no
     intermediate record and no allocation;
   - a derived encoder per shape: plain values come from the caller,
     constants / forced switch tags / header lengths / computed lengths
     / checksums are fixed up by the encoder, which is what makes
     encode ∘ decode = id hold by construction.

   Hot-path discipline: [shape_of] returns an int (>= 0 shape id,
   [err_truncated] or [err_unsupported]) rather than a result, so the
   classify-then-access path allocates nothing.  The typed [error] is
   recovered by a slow safe re-walk ([error_of]) only when the caller
   asks. *)

type error =
  | Truncated of { record : string; need : int; have : int }
  | Unsupported of { record : string; tag_field : string; tag : int }

let err_truncated = -1
let err_unsupported = -2

let error_to_string = function
  | Truncated { record; need; have } ->
      Printf.sprintf "truncated inside %s header: need %d bytes, have %d" record need have
  | Unsupported { record; tag_field; tag } ->
      Printf.sprintf "unsupported %s.%s value 0x%x" record tag_field tag

(* RFC 1071 ones-complement checksum, allocation-free including the
   odd-length tail (the last byte is folded as the high half of a final
   16-bit word — no padded copy). *)
module Checksum = struct
  let sum_region b ~off ~len init =
    if off < 0 || len < 0 || off + len > Bytes.length b then
      invalid_arg "Codec.Checksum.sum_region: region out of bounds";
    let sum = ref init in
    let i = ref off in
    let stop = off + len in
    while !i + 1 < stop do
      sum :=
        !sum
        + (Char.code (Bytes.unsafe_get b !i) lsl 8)
        + Char.code (Bytes.unsafe_get b (!i + 1));
      i := !i + 2
    done;
    if len land 1 = 1 then sum := !sum + (Char.code (Bytes.unsafe_get b (stop - 1)) lsl 8);
    !sum

  (* fold an int into the running sum as big-endian 16-bit words *)
  let fold_value v sum =
    let s = ref sum in
    let v = ref v in
    while !v <> 0 do
      s := !s + (!v land 0xffff);
      v := !v lsr 16
    done;
    !s

  let finish sum =
    let s = ref sum in
    while !s > 0xffff do
      s := (!s land 0xffff) + (!s lsr 16)
    done;
    lnot !s land 0xffff
end

(* ---- staged field locations ---------------------------------------- *)

(* A field within its record: first covered byte, covered byte count,
   right shift and mask extracting the value from those bytes read
   big-endian.  Spec.validate caps nbytes at 7, so the read fits an
   OCaml int. *)
type loc = { byte0 : int; nbytes : int; shift : int; mask : int }

let loc_of ~bitoff ~bits =
  let byte0 = bitoff / 8 in
  let bit_in = bitoff mod 8 in
  let nbytes = (bit_in + bits + 7) / 8 in
  { byte0; nbytes; shift = (nbytes * 8) - bit_in - bits; mask = (1 lsl bits) - 1 }

(* Record offsets are known ints when every preceding header is fixed
   size, staged closures once a variable-length header (IHL) intervenes. *)
type ofs = Kn of int | Dyn of (bytes -> int)

let ofs_fn = function Kn k -> fun _ -> k | Dyn f -> f
let ofs_add o n = match o with Kn k -> Kn (k + n) | Dyn f -> Dyn (fun b -> f b + n)

(* Generic extract; only safe after the enclosing record's bounds check. *)
let read_at b o l =
  let v = ref 0 in
  for i = 0 to l.nbytes - 1 do
    v := (!v lsl 8) lor Char.code (Bytes.unsafe_get b (o + l.byte0 + i))
  done;
  (!v lsr l.shift) land l.mask

let read_at_safe b o l =
  let v = ref 0 in
  for i = 0 to l.nbytes - 1 do
    v := (!v lsl 8) lor Char.code (Bytes.get b (o + l.byte0 + i))
  done;
  (!v lsr l.shift) land l.mask

let write_at b o l v =
  let cur = ref 0 in
  for i = 0 to l.nbytes - 1 do
    cur := (!cur lsl 8) lor Char.code (Bytes.get b (o + l.byte0 + i))
  done;
  let nv = !cur land lnot (l.mask lsl l.shift) lor ((v land l.mask) lsl l.shift) in
  for i = 0 to l.nbytes - 1 do
    Bytes.set b (o + l.byte0 + i) (Char.chr ((nv lsr (8 * (l.nbytes - 1 - i))) land 0xff))
  done

(* Specialized getters for byte-aligned full-mask widths — the common
   case (ports, addresses, MACs) compiles to straight-line reads. *)
let getter_at off l =
  let aligned = l.shift = 0 && l.mask = (1 lsl (l.nbytes * 8)) - 1 in
  match off with
  | Kn k -> (
      let o = k + l.byte0 in
      match l.nbytes with
      | 1 when aligned -> fun b -> Char.code (Bytes.unsafe_get b o)
      | 2 when aligned ->
          fun b ->
            (Char.code (Bytes.unsafe_get b o) lsl 8) lor Char.code (Bytes.unsafe_get b (o + 1))
      | 4 when aligned ->
          fun b ->
            (Char.code (Bytes.unsafe_get b o) lsl 24)
            lor (Char.code (Bytes.unsafe_get b (o + 1)) lsl 16)
            lor (Char.code (Bytes.unsafe_get b (o + 2)) lsl 8)
            lor Char.code (Bytes.unsafe_get b (o + 3))
      | _ ->
          let l = { l with byte0 = 0 } in
          fun b -> read_at b o l)
  | Dyn f -> (
      match l.nbytes with
      | 1 when aligned ->
          let d = l.byte0 in
          fun b -> Char.code (Bytes.unsafe_get b (f b + d))
      | 2 when aligned ->
          let d = l.byte0 in
          fun b ->
            let o = f b + d in
            (Char.code (Bytes.unsafe_get b o) lsl 8) lor Char.code (Bytes.unsafe_get b (o + 1))
      | 4 when aligned ->
          let d = l.byte0 in
          fun b ->
            let o = f b + d in
            (Char.code (Bytes.unsafe_get b o) lsl 24)
            lor (Char.code (Bytes.unsafe_get b (o + 1)) lsl 16)
            lor (Char.code (Bytes.unsafe_get b (o + 2)) lsl 8)
            lor Char.code (Bytes.unsafe_get b (o + 3))
      | _ -> fun b -> read_at b (f b) l)

let setter_at off l =
  match off with
  | Kn k -> fun b v -> write_at b k l v
  | Dyn f -> fun b v -> write_at b (f b) l v

(* ---- shapes --------------------------------------------------------- *)

type srec = {
  rname : string;
  roff : ofs;
  rfixed : int;  (* fixed part, bytes *)
  flocs : (string * loc * Spec.kind * int) list;  (* name, loc, kind, bits *)
  rhdr : (loc * int) option;  (* header-length field loc, unit bytes *)
  rend : ofs;  (* just past this record (its actual length) *)
}

type shape = {
  sid : int;
  sname : string;
  srecs : srec list;
  smin : int;  (* minimum frame bytes (sum of fixed parts) *)
  send : ofs;  (* past the last record: payload start *)
  sforced : (string * int) list;  (* switch tags forced along this path *)
}

type accessor = { get : (bytes -> int) array; set : (bytes -> int -> unit) array }

type fixup =
  | Fx_const of loc * int
  | Fx_len of loc * [ `From of int | `After of int ]
  | Fx_ck_hdr of { region : int; rlen : int; at : loc }
  | Fx_ck_pseudo of {
      l4 : int;
      addrs : loc list;
      proto : loc;
      at : loc;
      zero_is_ffff : bool;
    }

type eplan = {
  e_fixed : int;  (* total header bytes, all offsets static *)
  e_values : (string * loc) list;  (* caller-supplied fields *)
  e_fixups : fixup list;  (* consts+tags+hdr_len, then lengths, then checksums *)
}

type t = {
  spec : Spec.t;
  shapes : shape array;
  tree : bytes -> int;
  acc : (string, accessor) Hashtbl.t;
  eplans : eplan array;
}

let mk_srec roff (r : Spec.t) =
  let bit = ref 0 in
  let hdr = ref None in
  let flocs =
    List.map
      (fun (f : Spec.field) ->
        let l = loc_of ~bitoff:!bit ~bits:f.bits in
        (match f.fkind with
        | Spec.Hdr_len { unit_bytes } -> hdr := Some (l, unit_bytes)
        | _ -> ());
        bit := !bit + f.bits;
        (f.fname, l, f.fkind, f.bits))
      r.fields
  in
  let rfixed = !bit / 8 in
  let rend =
    match !hdr with
    | None -> ofs_add roff rfixed
    | Some (hl, u) when hl.nbytes = 1 ->
        (* IPv4 IHL / TCP data offset: a single-byte nibble read *)
        let b0 = hl.byte0 and sh = hl.shift and m = hl.mask in
        (match roff with
        | Kn k ->
            let at = k + b0 in
            Dyn (fun b -> k + ((Char.code (Bytes.unsafe_get b at) lsr sh) land m * u))
        | Dyn base ->
            Dyn
              (fun b ->
                let o = base b in
                o + ((Char.code (Bytes.unsafe_get b (o + b0)) lsr sh) land m * u)))
    | Some (hl, u) ->
        let base = ofs_fn roff in
        Dyn
          (fun b ->
            let o = base b in
            o + (read_at b o hl * u))
  in
  { rname = r.name; roff; rfixed; flocs; rhdr = !hdr; rend }

let stage spec =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Codec.stage: invalid spec: " ^ e));
  let shapes = ref [] in
  let next_sid = ref 0 in
  let rec go (racc : srec list) (forced : (string * int) list) roff (r : Spec.t) :
      bytes -> int =
    let sr = mk_srec roff r in
    let racc = sr :: racc in
    let finish_shape () =
      let sid = !next_sid in
      incr next_sid;
      let srecs = List.rev racc in
      shapes :=
        {
          sid;
          sname = String.concat "/" (List.map (fun s -> s.rname) srecs);
          srecs;
          smin = List.fold_left (fun a s -> a + s.rfixed) 0 srecs;
          send = sr.rend;
          sforced = List.rev forced;
        }
        :: !shapes;
      sid
    in
    let k =
      match r.next with
      | Spec.Stop ->
          let sid = finish_shape () in
          fun _ -> sid
      | Spec.Then t -> go racc forced sr.rend t
      | Spec.Switch { on; arms; default } ->
          let tl =
            match List.find_opt (fun (n, _, _, _) -> n = on) sr.flocs with
            | Some (_, l, _, _) -> l
            | None -> invalid_arg "Codec.stage: switch field missing"  (* validated *)
          in
          let tag_get = getter_at roff tl in
          let kdef =
            match default with
            | Spec.Accept ->
                let sid = finish_shape () in
                fun _ -> sid
            | Spec.Reject -> fun _ -> err_unsupported
          in
          let rec chain = function
            | [] -> kdef
            | (v, t) :: rest ->
                let karm = go racc ((r.name ^ "." ^ on, v) :: forced) sr.rend t in
                let krest = chain rest in
                fun b -> if tag_get b = v then karm b else krest b
          in
          chain arms
    in
    (* wrap with this record's bounds check; header-length nibbles get a
       specialized single-byte read *)
    let hdr_read (hl : loc) u =
      if hl.nbytes = 1 then (
        let b0 = hl.byte0 and sh = hl.shift and m = hl.mask in
        fun b o -> (Char.code (Bytes.unsafe_get b (o + b0)) lsr sh) land m * u)
      else fun b o -> read_at b o hl * u
    in
    match (sr.roff, sr.rhdr) with
    | Kn o, None ->
        let need = o + sr.rfixed in
        fun b -> if Bytes.length b >= need then k b else err_truncated
    | Dyn base, None ->
        let fixed = sr.rfixed in
        fun b -> if Bytes.length b >= base b + fixed then k b else err_truncated
    | Kn o, Some (hl, u) ->
        let fixed = sr.rfixed in
        let need = o + fixed in
        let rd = hdr_read hl u in
        fun b ->
          let blen = Bytes.length b in
          if blen < need then err_truncated
          else
            let actual = rd b o in
            if actual < fixed || blen < o + actual then err_truncated else k b
    | Dyn base, Some (hl, u) ->
        let fixed = sr.rfixed in
        let rd = hdr_read hl u in
        fun b ->
          let o = base b in
          let blen = Bytes.length b in
          if blen < o + fixed then err_truncated
          else
            let actual = rd b o in
            if actual < fixed || blen < o + actual then err_truncated else k b
  in
  let tree = go [] [] (Kn 0) spec in
  let nshapes = !next_sid in
  let shapes =
    let a = Array.make nshapes (List.hd !shapes) in
    List.iter (fun sh -> a.(sh.sid) <- sh) !shapes;
    a
  in
  (* accessor table: one entry per qualified path, arrays indexed by sid *)
  let acc : (string, accessor) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun sh ->
      List.iter
        (fun sr ->
          List.iter
            (fun (fn, l, _, _) ->
              let path = sr.rname ^ "." ^ fn in
              let a =
                match Hashtbl.find_opt acc path with
                | Some a -> a
                | None ->
                    let missing _ =
                      invalid_arg ("Codec: field " ^ path ^ " is absent from this shape")
                    in
                    let a =
                      {
                        get = Array.make nshapes missing;
                        set = Array.make nshapes (fun _ _ -> missing ());
                      }
                    in
                    Hashtbl.add acc path a;
                    a
              in
              a.get.(sh.sid) <- getter_at sr.roff l;
              a.set.(sh.sid) <- setter_at sr.roff l)
            sr.flocs)
        sh.srecs)
    shapes;
  (* derived encoder plans: offsets are static because the encoder always
     emits minimal (option-free) headers *)
  let eplans =
    Array.map
      (fun sh ->
        let offs =
          let o = ref 0 in
          List.map
            (fun sr ->
              let here = !o in
              o := here + sr.rfixed;
              (sr, here))
            sh.srecs
        in
        let e_fixed = sh.smin in
        let values = ref [] in
        let consts = ref [] in
        let lens = ref [] in
        let cks = ref [] in
        let abs o l = { l with byte0 = o + l.byte0 } in
        List.iter
          (fun (sr, o) ->
            List.iter
              (fun (fn, l, kind, _) ->
                let al = abs o l in
                let path = sr.rname ^ "." ^ fn in
                match (kind : Spec.kind) with
                | Spec.Value -> (
                    match List.assoc_opt path sh.sforced with
                    | Some v -> consts := Fx_const (al, v) :: !consts
                    | None -> values := (path, al) :: !values)
                | Spec.Const v -> consts := Fx_const (al, v) :: !consts
                | Spec.Hdr_len { unit_bytes } ->
                    consts := Fx_const (al, sr.rfixed / unit_bytes) :: !consts
                | Spec.Length Spec.From_this_header -> lens := Fx_len (al, `From o) :: !lens
                | Spec.Length Spec.After_this_header ->
                    lens := Fx_len (al, `After (o + sr.rfixed)) :: !lens
                | Spec.Checksum Spec.Ipv4_header ->
                    cks := Fx_ck_hdr { region = o; rlen = sr.rfixed; at = al } :: !cks
                | Spec.Checksum (Spec.L4_pseudo { ip; addrs; proto_field; zero_is_ffff }) ->
                    let ipr, ipo =
                      match List.find_opt (fun (s, _) -> s.rname = ip) offs with
                      | Some x -> x
                      | None ->
                          invalid_arg
                            ("Codec.stage: pseudo-header record " ^ ip ^ " not in shape "
                           ^ sh.sname)
                    in
                    let fl name =
                      match List.find_opt (fun (n, _, _, _) -> n = name) ipr.flocs with
                      | Some (_, l, _, _) -> abs ipo l
                      | None ->
                          invalid_arg
                            ("Codec.stage: pseudo-header field " ^ ip ^ "." ^ name
                           ^ " not declared")
                    in
                    cks :=
                      Fx_ck_pseudo
                        {
                          l4 = o;
                          addrs = List.map fl addrs;
                          proto = fl proto_field;
                          at = al;
                          zero_is_ffff;
                        }
                      :: !cks)
              sr.flocs)
          offs;
        (* fixup order: consts/tags first, then lengths, then checksums in
           reverse record order — an outer pseudo-checksum covers the inner
           headers, so the innermost checksum must settle first *)
        {
          e_fixed;
          e_values = List.rev !values;
          e_fixups = List.rev !consts @ List.rev !lens @ !cks;
        })
      shapes
  in
  { spec; shapes; tree; acc; eplans }

(* ---- classification ------------------------------------------------- *)

let shape_of t b = t.tree b
let shape_count t = Array.length t.shapes
let shape_name t sid = t.shapes.(sid).sname

let shape_named t name =
  let found = ref (-1) in
  Array.iter (fun sh -> if sh.sname = name then found := sh.sid) t.shapes;
  if !found < 0 then invalid_arg ("Codec.shape_named: no shape " ^ name);
  !found

let shape_min_len t sid = t.shapes.(sid).smin
let shape_fields t sid =
  List.concat_map
    (fun sr -> List.map (fun (fn, _, _, _) -> sr.rname ^ "." ^ fn) sr.flocs)
    t.shapes.(sid).srecs

let shape_records t sid = List.map (fun sr -> sr.rname) t.shapes.(sid).srecs
let payload_start t sid b = ofs_fn t.shapes.(sid).send b

let paths t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.acc [] |> List.sort compare

(* ---- field access --------------------------------------------------- *)

let accessor t path =
  match Hashtbl.find_opt t.acc path with
  | Some a -> a
  | None -> invalid_arg ("Codec.accessor: unknown field path " ^ path)

let getter t path = (accessor t path).get
let setter t path = (accessor t path).set

(* ---- typed errors (slow path) --------------------------------------- *)

let error_of t b =
  let n = Bytes.length b in
  let get o (r : Spec.t) name =
    let bit = ref 0 in
    let found = ref None in
    List.iter
      (fun (f : Spec.field) ->
        if f.fname = name then found := Some (loc_of ~bitoff:!bit ~bits:f.bits);
        bit := !bit + f.bits)
      r.fields;
    match !found with
    | Some l -> read_at_safe b o l
    | None -> invalid_arg "Codec.error_of: missing field"
  in
  let rec walk o (r : Spec.t) =
    let fixed = Spec.fixed_bytes r in
    if n < o + fixed then Truncated { record = r.name; need = o + fixed; have = n }
    else
      let actual =
        match Spec.hdr_len_field r with
        | Some f -> (
            match f.fkind with
            | Spec.Hdr_len { unit_bytes } -> get o r f.fname * unit_bytes
            | _ -> fixed)
        | None -> fixed
      in
      if actual < fixed || n < o + actual then
        Truncated { record = r.name; need = o + max fixed actual; have = n }
      else
        match r.next with
        | Spec.Stop -> invalid_arg "Codec.error_of: frame parses cleanly"
        | Spec.Then t -> walk (o + actual) t
        | Spec.Switch { on; arms; default } -> (
            let tag = get o r on in
            match List.assoc_opt tag arms with
            | Some t -> walk (o + actual) t
            | None -> (
                match default with
                | Spec.Reject -> Unsupported { record = r.name; tag_field = on; tag }
                | Spec.Accept -> invalid_arg "Codec.error_of: frame parses cleanly"))
  in
  walk 0 t.spec

(* ---- decode / encode ------------------------------------------------ *)

let decode t b =
  let sid = shape_of t b in
  if sid < 0 then Error (error_of t b)
  else
    let sh = t.shapes.(sid) in
    let fields =
      List.concat_map
        (fun sr ->
          let o = ofs_fn sr.roff b in
          List.map (fun (fn, l, _, _) -> (sr.rname ^ "." ^ fn, read_at b o l)) sr.flocs)
        sh.srecs
    in
    let payload = Bytes.length b - ofs_fn sh.send b in
    Ok (sid, fields, payload)

let write_abs b l v = write_at b 0 l v
let read_abs b l = read_at_safe b 0 l

let encode t ~shape ?(payload_len = 0) fields =
  if shape < 0 || shape >= Array.length t.shapes then
    invalid_arg "Codec.encode: bad shape id";
  if payload_len < 0 then invalid_arg "Codec.encode: negative payload length";
  let ep = t.eplans.(shape) in
  let n = ep.e_fixed + payload_len in
  let b = Bytes.make n '\000' in
  List.iter
    (fun (path, al) ->
      match List.assoc_opt path fields with
      | Some v -> write_abs b al v
      | None -> ())
    ep.e_values;
  List.iter
    (fun fx ->
      match fx with
      | Fx_const (al, v) -> write_abs b al v
      | Fx_len (al, `From o) -> write_abs b al (n - o)
      | Fx_len (al, `After o) -> write_abs b al (n - o)
      | Fx_ck_hdr { region; rlen; at } ->
          write_abs b at (Checksum.finish (Checksum.sum_region b ~off:region ~len:rlen 0))
      | Fx_ck_pseudo { l4; addrs; proto; at; zero_is_ffff } ->
          let l4len = n - l4 in
          let sum = Checksum.sum_region b ~off:l4 ~len:l4len 0 in
          let sum =
            List.fold_left (fun s al -> Checksum.fold_value (read_abs b al) s) sum addrs
          in
          let sum = Checksum.fold_value (read_abs b proto) sum in
          let sum = Checksum.fold_value l4len sum in
          let c = Checksum.finish sum in
          write_abs b at (if c = 0 && zero_is_ffff then 0xffff else c))
    ep.e_fixups;
  b

let encode_fixed_len t ~shape =
  if shape < 0 || shape >= Array.length t.eplans then
    invalid_arg "Codec.encode_fixed_len: bad shape id";
  t.eplans.(shape).e_fixed
