let magic = 0xa1b2c3d4
let linktype_ethernet = 1

(* pcap headers are little-endian when written with the standard magic *)
let add_u16le buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let add_u32le buf v =
  add_u16le buf (v land 0xffff);
  add_u16le buf ((v lsr 16) land 0xffff)

let to_buffer_frames frames =
  let buf = Buffer.create 4096 in
  add_u32le buf magic;
  add_u16le buf 2;
  (* major *)
  add_u16le buf 4;
  (* minor *)
  add_u32le buf 0;
  (* thiszone *)
  add_u32le buf 0;
  (* sigfigs *)
  add_u32le buf 65535;
  (* snaplen *)
  add_u32le buf linktype_ethernet;
  List.iter
    (fun (ts, frame) ->
      add_u32le buf (ts / 1_000_000_000);
      add_u32le buf (ts mod 1_000_000_000 / 1_000);
      add_u32le buf (Bytes.length frame);
      add_u32le buf (Bytes.length frame);
      Buffer.add_bytes buf frame)
    frames;
  buf

let to_buffer pkts =
  to_buffer_frames (List.map (fun p -> (p.Pkt.ts_ns, Wire.serialize p)) pkts)

let write_file path pkts =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc (to_buffer pkts))

let get_u32le s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let frames_of_string s =
  let n = String.length s in
  if n < 24 then Error "pcap: truncated global header"
  else if get_u32le s 0 <> magic then Error "pcap: bad magic (only microsecond LE supported)"
  else begin
    let frames = ref [] in
    let off = ref 24 in
    let error = ref None in
    while !error = None && !off + 16 <= n do
      let sec = get_u32le s !off in
      let usec = get_u32le s (!off + 4) in
      let caplen = get_u32le s (!off + 8) in
      if !off + 16 + caplen > n then error := Some "pcap: truncated packet record"
      else begin
        let frame = Bytes.of_string (String.sub s (!off + 16) caplen) in
        let ts_ns = (sec * 1_000_000_000) + (usec * 1000) in
        frames := (ts_ns, frame) :: !frames;
        off := !off + 16 + caplen
      end
    done;
    match !error with Some e -> Error e | None -> Ok (List.rev !frames)
  end

let of_string s =
  match frames_of_string s with
  | Error _ as e -> e
  | Ok frames ->
      Ok
        (List.filter_map
           (fun (ts_ns, frame) ->
             match Wire.parse ~ts_ns frame with Ok p -> Some p | Error _ -> None)
           frames)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
