(** Reading and writing libpcap capture files.

    The classic [0xa1b2c3d4] microsecond format with Ethernet link type.
    The churn experiments of the paper (§6.3) are driven from generated
    PCAPs replayed in a loop; this module lets those workloads be saved to
    disk and inspected with standard tools. *)

val write_file : string -> Pkt.t list -> unit
(** Serialize the packets (via {!Wire.serialize}) into a pcap file;
    timestamps come from [ts_ns]. *)

val read_file : string -> (Pkt.t list, string) result
(** Parse a pcap file back into packets; the receive [port] of every packet
    is 0.  Frames {!Wire.parse} rejects — truncated, or carrying headers
    the [Pkt.t] view does not model (non-IPv4 ethertypes) — are skipped;
    use {!frames_of_string} to see every captured frame. *)

val to_buffer : Pkt.t list -> Buffer.t

val of_string : string -> (Pkt.t list, string) result

val to_buffer_frames : (int * bytes) list -> Buffer.t
(** Raw capture records as [(ts_ns, frame)] — for fixtures of protocols
    the [Pkt.t] view does not model (VLAN, IPv6, …). *)

val frames_of_string : string -> ((int * bytes) list, string) result
