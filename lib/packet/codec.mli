(** Staged zero-copy codecs compiled from {!Spec} formats.

    {!stage} walks a spec once and bakes every offset, width, tag
    location and bounds check into closures — the same staging
    discipline [Dsl.Compile] applies to NF logic.  At run time a frame
    is classified into a {e shape} (one root-to-leaf path through the
    spec's tagged unions) by {!shape_of}, after which per-field getters
    read straight off the raw bytes: no intermediate record, no
    allocation on the hot path.

    The derived encoder emits minimal (option-free) headers, writes
    caller-supplied values, then fixes up constants, forced switch tags,
    header lengths, computed lengths and finally checksums
    innermost-first — which is what makes [encode ∘ decode = id] hold by
    construction, and [decode ∘ encode = id] hold modulo checksum
    recomputation. *)

type error =
  | Truncated of { record : string; need : int; have : int }
  | Unsupported of { record : string; tag_field : string; tag : int }

val err_truncated : int
(** [-1]: {!shape_of}'s truncation code. *)

val err_unsupported : int
(** [-2]: {!shape_of}'s rejected-tag code. *)

val error_to_string : error -> string

(** The RFC 1071 ones-complement checksum, as an allocation-free region
    primitive.  This is both the encoder's fixup engine and what
    [Wire.internet_checksum] delegates to; the odd-length tail is folded
    in place rather than via a padded copy. *)
module Checksum : sig
  val sum_region : bytes -> off:int -> len:int -> int -> int
  (** [sum_region b ~off ~len acc] adds the region's big-endian 16-bit
      words (odd tail high-padded) onto [acc].  Bounds-checked once at
      entry.  Raises [Invalid_argument] if the region escapes [b]. *)

  val fold_value : int -> int -> int
  (** [fold_value v acc] adds [v]'s 16-bit limbs onto [acc] (for
      pseudo-header members already held as ints). *)

  val finish : int -> int
  (** Fold carries and complement: the wire checksum of an accumulated
      sum. *)
end

type t
(** A staged codec. *)

(** Per-field staged accessors, indexed by shape id.  Entries for shapes
    that do not contain the field raise [Invalid_argument]. *)
type accessor = { get : (bytes -> int) array; set : (bytes -> int -> unit) array }

val stage : Spec.t -> t
(** Compile a spec.  Raises [Invalid_argument] when {!Spec.validate}
    rejects it. *)

(** {1 Classification} *)

val shape_of : t -> bytes -> int
(** Classify a frame: a shape id [>= 0], or {!err_truncated} /
    {!err_unsupported}.  Int-only by design — the hot path pays no
    [result] allocation; recover the typed error with {!error_of}. *)

val error_of : t -> bytes -> error
(** The typed error for a frame {!shape_of} rejected (a slow, safe
    re-walk of the spec).  Raises [Invalid_argument] on a frame that
    parses cleanly. *)

val shape_count : t -> int

val shape_name : t -> int -> string
(** ["eth/ipv4/tcp"]-style path name of a shape. *)

val shape_named : t -> string -> int
(** Inverse of {!shape_name}; raises [Invalid_argument] on unknown
    names. *)

val shape_min_len : t -> int -> int
(** Minimum frame bytes for this shape (sum of fixed header parts). *)

val shape_fields : t -> int -> string list
(** Qualified field paths (["ipv4.src"]) of a shape, in wire order. *)

val shape_records : t -> int -> string list

val payload_start : t -> int -> bytes -> int
(** Offset of the first payload byte (past all headers, honouring
    header-length fields) of a frame already classified into the shape. *)

val paths : t -> string list
(** All qualified field paths across all shapes, sorted. *)

(** {1 Field access} *)

val accessor : t -> string -> accessor
(** The staged accessors of a qualified path.  Raises
    [Invalid_argument] on unknown paths.  Getter entries use unchecked
    reads — only apply them to frames {!shape_of} accepted into a shape
    that contains the field. *)

val getter : t -> string -> (bytes -> int) array
val setter : t -> string -> (bytes -> int -> unit) array

(** {1 Decode / encode} *)

val decode : t -> bytes -> (int * (string * int) list * int, error) result
(** [(shape id, all fields as path/value pairs, payload byte count)].
    The slow convenience form; hot paths use {!shape_of} + getters. *)

val encode : t -> shape:int -> ?payload_len:int -> (string * int) list -> bytes
(** Build a frame of the given shape: caller-supplied plain values from
    the assoc list (missing fields encode as zero, extra entries are
    ignored), derived fields fixed up.  The payload is zero-filled. *)

val encode_fixed_len : t -> shape:int -> int
(** Header bytes {!encode} emits for this shape. *)
