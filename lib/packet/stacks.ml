(* The shipped format specs, written in the Spec combinators, and their
   staged codecs.

   [pkt] is the production stack Wire routes through: Ethernet → IPv4 →
   {TCP, UDP, UDP/VXLAN/inner-Ethernet/inner-IPv4/{TCP,UDP}, GRE/
   inner-IPv4/{TCP,UDP}}.  [full] adds VLAN, QinQ and IPv6 on the
   Ethernet switch — codec-level protocol diversity that Wire's Pkt.t
   view does not (yet) model; it exists so round-trip properties and
   pcap fixtures cover those headers too.

   Classification is first-match on switch tags with no backtracking: a
   plain UDP frame whose destination port happens to be 4789 is taken
   into the VXLAN arm and, if too short for the inner headers, reported
   truncated.  The traffic generators keep ordinary flows away from the
   tunnel port. *)

open Spec

let tcp_rec ~name ~ip ~addrs ~zero_is_ffff =
  record name
    [
      field "sport" 16;
      field "dport" 16;
      field "seq" 32;
      field "ack" 32;
      field ~kind:(Hdr_len { unit_bytes = 4 }) "doff" 4;
      field "flags" 12;
      field "win" 16;
      field
        ~kind:(Checksum (L4_pseudo { ip; addrs; proto_field = "proto"; zero_is_ffff }))
        "cksum" 16;
      field "urg" 16;
    ]
    Stop

let udp_rec ~name ~ip ~addrs next =
  record name
    [
      field "sport" 16;
      field "dport" 16;
      field ~kind:(Length From_this_header) "len" 16;
      field
        ~kind:
          (Checksum (L4_pseudo { ip; addrs; proto_field = "proto"; zero_is_ffff = true }))
        "cksum" 16;
    ]
    next

let ipv4_rec ~name next =
  record name
    [
      const "ver" 4 4;
      field ~kind:(Hdr_len { unit_bytes = 4 }) "ihl" 4;
      field "tos" 8;
      field ~kind:(Length From_this_header) "total_len" 16;
      field "ident" 16;
      field "flags_frag" 16;
      field "ttl" 8;
      field "proto" 8;
      field ~kind:(Checksum Ipv4_header) "cksum" 16;
      field "src" 32;
      field "dst" 32;
    ]
    next

let eth_fields = [ field "dst" 48; field "src" 48; field "type" 16 ]

(* Inner IPv4 subtree shared by the VXLAN and GRE branches, so accessor
   paths ("iipv4.src", "itcp.sport", …) are tunnel-agnostic. *)
let inner_ipv4 =
  let addrs = [ "src"; "dst" ] in
  ipv4_rec ~name:"iipv4"
    (Switch
       {
         on = "proto";
         arms =
           [
             (6, tcp_rec ~name:"itcp" ~ip:"iipv4" ~addrs ~zero_is_ffff:true);
             (17, udp_rec ~name:"iudp" ~ip:"iipv4" ~addrs Stop);
           ];
         default = Accept;
       })

let vxlan_port = 4789

let vxlan =
  record "vxlan"
    [ const "flags" 8 0x08; field "rsvd1" 24; field "vni" 24; field "rsvd2" 8 ]
    (Then
       (record "ieth" eth_fields
          (Switch { on = "type"; arms = [ (0x0800, inner_ipv4) ]; default = Reject })))

(* GRE with the Key bit set (RFC 2890): the 32-bit key is the tunnel id. *)
let gre =
  record "gre"
    [ const "flags_ver" 16 0x2000; field "proto" 16; field "key" 32 ]
    (Switch { on = "proto"; arms = [ (0x0800, inner_ipv4) ]; default = Reject })

let gre_proto = 47

let outer_ipv4 =
  let addrs = [ "src"; "dst" ] in
  ipv4_rec ~name:"ipv4"
    (Switch
       {
         on = "proto";
         arms =
           [
             (6, tcp_rec ~name:"tcp" ~ip:"ipv4" ~addrs ~zero_is_ffff:true);
             ( 17,
               udp_rec ~name:"udp" ~ip:"ipv4" ~addrs
                 (Switch { on = "dport"; arms = [ (vxlan_port, vxlan) ]; default = Accept })
             );
             (gre_proto, gre);
           ];
         default = Accept;
       })

let pkt_spec =
  record "eth" eth_fields
    (Switch { on = "type"; arms = [ (0x0800, outer_ipv4) ]; default = Reject })

(* --- extended stack: VLAN / QinQ / IPv6 ------------------------------ *)

let vlan_fields = [ field "pcp" 3; field "dei" 1; field "vid" 12; field "type" 16 ]

let ipv6 =
  let addrs =
    [ "src0"; "src1"; "src2"; "src3"; "dst0"; "dst1"; "dst2"; "dst3" ]
  in
  record "ipv6"
    ([
       const "ver" 4 6;
       field "tclass" 8;
       field "flow" 20;
       field ~kind:(Length After_this_header) "plen" 16;
       field "nexthdr" 8;
       field "hoplim" 8;
     ]
    @ List.map (fun n -> field n 32) addrs)
    (Switch
       {
         on = "nexthdr";
         arms =
           [
             ( 6,
               record "tcp6"
                 [
                   field "sport" 16;
                   field "dport" 16;
                   field "seq" 32;
                   field "ack" 32;
                   field ~kind:(Hdr_len { unit_bytes = 4 }) "doff" 4;
                   field "flags" 12;
                   field "win" 16;
                   field
                     ~kind:
                       (Checksum
                          (L4_pseudo
                             {
                               ip = "ipv6";
                               addrs;
                               proto_field = "nexthdr";
                               zero_is_ffff = false;
                             }))
                     "cksum" 16;
                   field "urg" 16;
                 ]
                 Stop );
             ( 17,
               record "udp6"
                 [
                   field "sport" 16;
                   field "dport" 16;
                   field ~kind:(Length From_this_header) "len" 16;
                   field
                     ~kind:
                       (Checksum
                          (L4_pseudo
                             {
                               ip = "ipv6";
                               addrs;
                               proto_field = "nexthdr";
                               zero_is_ffff = true;
                             }))
                     "cksum" 16;
                 ]
                 Stop );
           ];
         default = Accept;
       })

let full_spec =
  record "eth" eth_fields
    (Switch
       {
         on = "type";
         arms =
           [
             (0x0800, outer_ipv4);
             ( 0x8100,
               record "vlan" vlan_fields
                 (Switch { on = "type"; arms = [ (0x0800, outer_ipv4) ]; default = Reject })
             );
             ( 0x88a8,
               record "svlan" vlan_fields
                 (Switch
                    {
                      on = "type";
                      arms =
                        [
                          ( 0x8100,
                            record "cvlan" vlan_fields
                              (Switch
                                 {
                                   on = "type";
                                   arms = [ (0x0800, outer_ipv4) ];
                                   default = Reject;
                                 }) );
                        ];
                      default = Reject;
                    }) );
             (0x86dd, ipv6);
           ];
         default = Reject;
       })

let pkt = Codec.stage pkt_spec
let full = Codec.stage full_spec

(* Shape ids of the production stack, by name. *)
module Sid = struct
  let ipv4 = Codec.shape_named pkt "eth/ipv4"
  let tcp = Codec.shape_named pkt "eth/ipv4/tcp"
  let udp = Codec.shape_named pkt "eth/ipv4/udp"
  let vxlan_ip = Codec.shape_named pkt "eth/ipv4/udp/vxlan/ieth/iipv4"
  let vxlan_tcp = Codec.shape_named pkt "eth/ipv4/udp/vxlan/ieth/iipv4/itcp"
  let vxlan_udp = Codec.shape_named pkt "eth/ipv4/udp/vxlan/ieth/iipv4/iudp"
  let gre_ip = Codec.shape_named pkt "eth/ipv4/gre/iipv4"
  let gre_tcp = Codec.shape_named pkt "eth/ipv4/gre/iipv4/itcp"
  let gre_udp = Codec.shape_named pkt "eth/ipv4/gre/iipv4/iudp"
end
