type t =
  | Eth_src
  | Eth_dst
  | Eth_type
  | Ip_src
  | Ip_dst
  | Ip_proto
  | Src_port
  | Dst_port
  | Tunnel_id
  | Inner_ip_src
  | Inner_ip_dst
  | Inner_ip_proto
  | Inner_src_port
  | Inner_dst_port

let all =
  [
    Eth_src;
    Eth_dst;
    Eth_type;
    Ip_src;
    Ip_dst;
    Ip_proto;
    Src_port;
    Dst_port;
    Tunnel_id;
    Inner_ip_src;
    Inner_ip_dst;
    Inner_ip_proto;
    Inner_src_port;
    Inner_dst_port;
  ]

let width = function
  | Eth_src | Eth_dst -> 48
  | Eth_type -> 16
  | Ip_src | Ip_dst | Inner_ip_src | Inner_ip_dst -> 32
  | Ip_proto | Inner_ip_proto -> 8
  | Src_port | Dst_port | Inner_src_port | Inner_dst_port -> 16
  | Tunnel_id -> 32

let rss_capable = function
  | Eth_src | Eth_dst | Eth_type -> false
  | Ip_src | Ip_dst | Ip_proto | Src_port | Dst_port -> true
  (* The tunnel id lives in the VXLAN/GRE shim, which no modeled NIC's
     RSS field sets reach — keying state on it forces a ladder descent
     exactly like MAC-keyed state (rule R4). *)
  | Tunnel_id -> false
  (* Inner headers of terminated tunnels are hashable: the inner-header
     field sets below pair with Field_set's inner byte plans. *)
  | Inner_ip_src | Inner_ip_dst | Inner_ip_proto | Inner_src_port | Inner_dst_port -> true

let symmetric_counterpart = function
  | Ip_src -> Some Ip_dst
  | Ip_dst -> Some Ip_src
  | Src_port -> Some Dst_port
  | Dst_port -> Some Src_port
  | Eth_src -> Some Eth_dst
  | Eth_dst -> Some Eth_src
  | Inner_ip_src -> Some Inner_ip_dst
  | Inner_ip_dst -> Some Inner_ip_src
  | Inner_src_port -> Some Inner_dst_port
  | Inner_dst_port -> Some Inner_src_port
  | Eth_type | Ip_proto | Inner_ip_proto | Tunnel_id -> None

let to_string = function
  | Eth_src -> "eth.src"
  | Eth_dst -> "eth.dst"
  | Eth_type -> "eth.type"
  | Ip_src -> "ip.src"
  | Ip_dst -> "ip.dst"
  | Ip_proto -> "ip.proto"
  | Src_port -> "l4.sport"
  | Dst_port -> "l4.dport"
  | Tunnel_id -> "tunnel.id"
  | Inner_ip_src -> "inner.src"
  | Inner_ip_dst -> "inner.dst"
  | Inner_ip_proto -> "inner.proto"
  | Inner_src_port -> "inner.sport"
  | Inner_dst_port -> "inner.dport"

let of_string s = List.find_opt (fun f -> to_string f = s) all
let pp fmt f = Format.pp_print_string fmt (to_string f)
let equal = ( = )
let compare = Stdlib.compare
