type proto = Tcp | Udp | Other of int

type encap_kind = Vxlan | Gre

type encap = {
  kind : encap_kind;
  tunnel_id : int;
  in_eth_src : int;
  in_eth_dst : int;
  in_ip_src : int;
  in_ip_dst : int;
  in_proto : proto;
  in_src_port : int;
  in_dst_port : int;
}

type t = {
  port : int;
  eth_src : int;
  eth_dst : int;
  eth_type : int;
  ip_src : int;
  ip_dst : int;
  proto : proto;
  src_port : int;
  dst_port : int;
  encap : encap option;
  size : int;
  ts_ns : int;
}

let ipv4_ethertype = 0x0800

let proto_number = function Tcp -> 6 | Udp -> 17 | Other n -> n land 0xff

let proto_of_number = function 6 -> Tcp | 17 -> Udp | n -> Other (n land 0xff)

let default_encap =
  {
    kind = Vxlan;
    tunnel_id = 0;
    in_eth_src = 0x02_00_00_00_01_01;
    in_eth_dst = 0x02_00_00_00_01_02;
    in_ip_src = 0;
    in_ip_dst = 0;
    in_proto = Tcp;
    in_src_port = 0;
    in_dst_port = 0;
  }

let make ?(port = 0) ?(eth_src = 0x02_00_00_00_00_01) ?(eth_dst = 0x02_00_00_00_00_02)
    ?(proto = Tcp) ?(size = 64) ?(ts_ns = 0) ?encap ~ip_src ~ip_dst ~src_port ~dst_port () =
  {
    port;
    eth_src;
    eth_dst;
    eth_type = ipv4_ethertype;
    ip_src;
    ip_dst;
    proto;
    src_port;
    dst_port;
    encap;
    size;
    ts_ns;
  }

let field_int p = function
  | Field.Eth_src -> p.eth_src
  | Field.Eth_dst -> p.eth_dst
  | Field.Eth_type -> p.eth_type
  | Field.Ip_src -> p.ip_src
  | Field.Ip_dst -> p.ip_dst
  | Field.Ip_proto -> proto_number p.proto
  | Field.Src_port -> p.src_port
  | Field.Dst_port -> p.dst_port
  (* Inner fields of a packet that is not encapsulated read as zero, the
     same convention the legacy parser used for absent L4 ports. *)
  | Field.Tunnel_id -> ( match p.encap with Some e -> e.tunnel_id | None -> 0)
  | Field.Inner_ip_src -> ( match p.encap with Some e -> e.in_ip_src | None -> 0)
  | Field.Inner_ip_dst -> ( match p.encap with Some e -> e.in_ip_dst | None -> 0)
  | Field.Inner_ip_proto -> (
      match p.encap with Some e -> proto_number e.in_proto | None -> 0)
  | Field.Inner_src_port -> ( match p.encap with Some e -> e.in_src_port | None -> 0)
  | Field.Inner_dst_port -> ( match p.encap with Some e -> e.in_dst_port | None -> 0)

let get_field p f = Bitvec.of_int ~width:(Field.width f) (field_int p f)

let set_field p f v =
  let enc g =
    let e = match p.encap with Some e -> e | None -> default_encap in
    { p with encap = Some (g e) }
  in
  match f with
  | Field.Eth_src -> { p with eth_src = v }
  | Field.Eth_dst -> { p with eth_dst = v }
  | Field.Eth_type -> { p with eth_type = v }
  | Field.Ip_src -> { p with ip_src = v }
  | Field.Ip_dst -> { p with ip_dst = v }
  | Field.Ip_proto -> { p with proto = proto_of_number v }
  | Field.Src_port -> { p with src_port = v }
  | Field.Dst_port -> { p with dst_port = v }
  | Field.Tunnel_id -> enc (fun e -> { e with tunnel_id = v })
  | Field.Inner_ip_src -> enc (fun e -> { e with in_ip_src = v })
  | Field.Inner_ip_dst -> enc (fun e -> { e with in_ip_dst = v })
  | Field.Inner_ip_proto -> enc (fun e -> { e with in_proto = proto_of_number v })
  | Field.Inner_src_port -> enc (fun e -> { e with in_src_port = v })
  | Field.Inner_dst_port -> enc (fun e -> { e with in_dst_port = v })

let flip p =
  {
    p with
    eth_src = p.eth_dst;
    eth_dst = p.eth_src;
    ip_src = p.ip_dst;
    ip_dst = p.ip_src;
    src_port = p.dst_port;
    dst_port = p.src_port;
    encap =
      Option.map
        (fun e ->
          {
            e with
            in_eth_src = e.in_eth_dst;
            in_eth_dst = e.in_eth_src;
            in_ip_src = e.in_ip_dst;
            in_ip_dst = e.in_ip_src;
            in_src_port = e.in_dst_port;
            in_dst_port = e.in_src_port;
          })
        p.encap;
  }

let with_port p port = { p with port }

(* 7B preamble + 1B SFD + 12B inter-frame gap *)
let wire_size p = p.size + 20

let equal a b = a = b
let compare = Stdlib.compare

let pp_ip fmt ip =
  Format.fprintf fmt "%d.%d.%d.%d" ((ip lsr 24) land 0xff) ((ip lsr 16) land 0xff)
    ((ip lsr 8) land 0xff) (ip land 0xff)

let pp fmt p =
  let proto_str = function Tcp -> "tcp" | Udp -> "udp" | Other n -> string_of_int n in
  (match p.encap with
  | None -> ()
  | Some e ->
      Format.fprintf fmt "%s[%d] "
        (match e.kind with Vxlan -> "vxlan" | Gre -> "gre")
        e.tunnel_id);
  Format.fprintf fmt "[port %d] %a:%d -> %a:%d %s" p.port pp_ip p.ip_src p.src_port pp_ip
    p.ip_dst p.dst_port (proto_str p.proto);
  (match p.encap with
  | None -> ()
  | Some e ->
      Format.fprintf fmt " | inner %a:%d -> %a:%d %s" pp_ip e.in_ip_src e.in_src_port
        pp_ip e.in_ip_dst e.in_dst_port (proto_str e.in_proto));
  Format.fprintf fmt " %dB" p.size
