(** The corpus of evaluated NFs (paper §6.1), by name. *)

val names : string list
(** The paper's corpus:
    ["nop"; "policer"; "sbridge"; "dbridge"; "fw"; "psd"; "nat"; "lb"; "cl"] *)

val extended_names : string list
(** [names] plus this reproduction's extension NFs: the prefix-sharded
    ["hhh"] and the tunnel-terminating ["vxlan_fw"] (inner-5-tuple keys,
    inner-header RSS) and ["gre_peer"] (tunnel-id keys, not hashable). *)

val find : string -> Dsl.Ast.t option
(** Build a fresh NF with default parameters. *)

val find_exn : string -> Dsl.Ast.t

val all : unit -> Dsl.Ast.t list

val compose_chain : string list -> (Dsl.Chain.t, string) result
(** Build a service chain from registry names, in order (the CLI's
    [--chain fw,nat,lb]).  Errors on an unknown name, an empty list, or
    any {!Dsl.Chain.compose} rejection. *)

val expected_strategy : string -> [ `Shared_nothing | `Locks | `Read_only_lb ]
(** What the paper reports Maestro decides for each NF — used by tests and
    by EXPERIMENTS.md assertions.  Raises [Not_found] for unknown names. *)
