let builders : (string * (unit -> Dsl.Ast.t)) list =
  [
    ("nop", Nop.make);
    ("policer", fun () -> Policer.make ());
    ("sbridge", fun () -> Bridge.static ());
    ("dbridge", fun () -> Bridge.dynamic ());
    ("fw", fun () -> Fw.make ());
    ("psd", fun () -> Psd.make ());
    ("nat", fun () -> Nat.make ());
    ("lb", fun () -> Lb.make ());
    ("cl", fun () -> Cl.make ());
  ]

(* extension NFs beyond the paper's corpus *)
let extended_builders : (string * (unit -> Dsl.Ast.t)) list =
  [
    ("hhh", fun () -> Hhh.make ());
    ("vxlan_fw", fun () -> Scenarios.vxlan_fw ());
    ("gre_peer", fun () -> Scenarios.gre_peer ());
  ]

let names = List.map fst builders
let extended_names = names @ List.map fst extended_builders

let find name =
  Option.map (fun b -> b ()) (List.assoc_opt name (builders @ extended_builders))

let find_exn name =
  match find name with
  | Some nf -> nf
  | None -> invalid_arg (Printf.sprintf "unknown NF %s (known: %s)" name (String.concat ", " names))

let all () = List.map (fun (_, b) -> b ()) builders

let compose_chain names =
  let rec lookup acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
        match find n with
        | Some nf -> lookup (nf :: acc) rest
        | None ->
            Error
              (Printf.sprintf "unknown NF %s (known: %s)" n (String.concat ", " extended_names)))
  in
  match names with
  | [] -> Error "empty chain: need at least one NF name"
  | _ -> Result.bind (lookup [] names) (fun nfs -> Dsl.Chain.compose nfs)

let expected_strategy = function
  | "nop" | "sbridge" -> `Read_only_lb
  | "policer" | "fw" | "psd" | "nat" | "cl" | "hhh" | "vxlan_fw" -> `Shared_nothing
  | "dbridge" | "lb" | "gre_peer" -> `Locks
  | _ -> raise Not_found
