(* The micro-NFs of the paper's Figure 2: one per Constraints Generator
   outcome.  They exist to exercise and document rules R1–R5 in isolation
   (unit-tested in test/test_sharding.ml, printed by `bench fig2`). *)

open Dsl.Ast
open Packet

let key_flow = [ Field Field.Ip_src; Field Field.Ip_dst; Field Field.Src_port; Field Field.Dst_port ]

(* ① R1 key equality: a per-flow packet counter — packets of the same flow
   must meet on the same core. *)
let key_equality () =
  {
    name = "fig2_key_equality";
    devices = 2;
    state = [ Decl_map { name = "s1_counter"; capacity = 65536; init = [] } ];
    process =
      Map_get
        {
          obj = "s1_counter";
          key = key_flow;
          found = "s1_f";
          value = "s1_v";
          k =
            If
              ( Var "s1_f",
                Map_put
                  {
                    obj = "s1_counter";
                    key = key_flow;
                    value = Var "s1_v" +. const 1;
                    ok = "s1_ok1";
                    k = Topo.fwd Topo.wan;
                  },
                Map_put
                  {
                    obj = "s1_counter";
                    key = key_flow;
                    value = const 1;
                    ok = "s1_ok2";
                    k = Topo.fwd Topo.wan;
                  } );
        };
  }

(* ② R2 subsumption: a flow tracker plus a per-source counter — sending
   packets with equal sources to one core also satisfies the 4-tuple
   requirement, so the coarser key wins. *)
let subsumption () =
  let per_src = [ Field Field.Ip_src ] in
  {
    name = "fig2_subsumption";
    devices = 2;
    state =
      [
        Decl_map { name = "s2_flows"; capacity = 65536; init = [] };
        Decl_map { name = "s2_per_src"; capacity = 65536; init = [] };
      ];
    process =
      Map_get
        {
          obj = "s2_per_src";
          key = per_src;
          found = "s2_f";
          value = "s2_v";
          k =
            Map_put
              {
                obj = "s2_per_src";
                key = per_src;
                value = Var "s2_v" +. const 1;
                ok = "s2_ok";
                k =
                  Map_put
                    {
                      obj = "s2_flows";
                      key = key_flow;
                      value = const 1;
                      ok = "s2_ok2";
                      k = Topo.fwd Topo.wan;
                    };
              };
        };
  }

(* ③ R3 disjoint dependencies: independent per-source and per-destination
   counters — RSS cannot send "same source OR same destination" to one
   core, so shared-nothing is impossible. *)
let disjoint () =
  {
    name = "fig2_disjoint";
    devices = 2;
    state =
      [
        Decl_map { name = "s3_src"; capacity = 65536; init = [] };
        Decl_map { name = "s3_dst"; capacity = 65536; init = [] };
      ];
    process =
      Map_get
        {
          obj = "s3_src";
          key = [ Field Field.Ip_src ];
          found = "s3_sf";
          value = "s3_sv";
          k =
            Map_put
              {
                obj = "s3_src";
                key = [ Field Field.Ip_src ];
                value = Var "s3_sv" +. const 1;
                ok = "s3_ok1";
                k =
                  Map_get
                    {
                      obj = "s3_dst";
                      key = [ Field Field.Ip_dst ];
                      found = "s3_df";
                      value = "s3_dv";
                      k =
                        Map_put
                          {
                            obj = "s3_dst";
                            key = [ Field Field.Ip_dst ];
                            value = Var "s3_dv" +. const 1;
                            ok = "s3_ok2";
                            k = Topo.fwd Topo.wan;
                          };
                    };
              };
        };
  }

(* ④ R4 incompatible dependencies: a single global counter indexed by a
   constant key — no packet fields to steer by at all. *)
let constant_key () =
  let key = [ const 0 ] in
  {
    name = "fig2_constant_key";
    devices = 2;
    state = [ Decl_map { name = "s4_global"; capacity = 4; init = [] } ];
    process =
      Map_get
        {
          obj = "s4_global";
          key;
          found = "s4_f";
          value = "s4_v";
          k =
            Map_put
              {
                obj = "s4_global";
                key;
                value = Var "s4_v" +. const 1;
                ok = "s4_ok";
                k = Topo.fwd Topo.wan;
              };
        };
  }

(* ⑤ R5 interchangeable constraints: state is keyed by source MAC (which
   RSS cannot hash), but entries also pin the IP address that registered
   them and lookups drop on a mismatch exactly as they drop on a miss —
   sharding on the IP field changes nothing observable. *)
let interchangeable () =
  {
    name = "fig2_interchangeable";
    devices = 2;
    state =
      [
        Decl_map { name = "s5_macs"; capacity = 65536; init = [] };
        Decl_chain { name = "s5_chain"; capacity = 65536 };
        Decl_vector { name = "s5_ips"; capacity = 65536; layout = [ ("ip", 32) ] };
      ];
    process =
      If
        ( Topo.from_lan,
          (* learning side: register (mac, ip) pairs *)
          Map_get
            {
              obj = "s5_macs";
              key = [ Field Field.Eth_src ];
              found = "s5_lf";
              value = "s5_lv";
              k =
                If
                  ( Var "s5_lf",
                    Topo.fwd Topo.wan,
                    Chain_alloc
                      {
                        obj = "s5_chain";
                        index = "s5_new";
                        k_ok =
                          Vec_set
                            {
                              obj = "s5_ips";
                              index = Var "s5_new";
                              fields = [ ("ip", Field Field.Ip_src) ];
                              k =
                                Map_put
                                  {
                                    obj = "s5_macs";
                                    key = [ Field Field.Eth_src ];
                                    value = Var "s5_new";
                                    ok = "s5_ok";
                                    k = Topo.fwd Topo.wan;
                                  };
                            };
                        k_fail = Topo.fwd Topo.wan;
                      } );
            },
          (* filtering side: admit only packets whose destination matches
             the address registered for the destination MAC *)
          Map_get
            {
              obj = "s5_macs";
              key = [ Field Field.Eth_dst ];
              found = "s5_wf";
              value = "s5_wv";
              k =
                If
                  ( Var "s5_wf",
                    Vec_get
                      {
                        obj = "s5_ips";
                        index = Var "s5_wv";
                        record = "s5_r";
                        k =
                          If
                            ( Record_field ("s5_r", "ip") ==. Field Field.Ip_dst,
                              Topo.fwd Topo.lan,
                              Drop );
                      },
                    Drop );
            } );
  }

let all () =
  [ key_equality (); subsumption (); disjoint (); constant_key (); interchangeable () ]

(* --- service chains (ROADMAP item 2) ---------------------------------------

   Composed with [Dsl.Chain]: one flattened AST per chain, every stage's
   state namespaced under [s<i>_<nf>_].  The three shipped chains cover
   the three joint-sharding outcomes:

   - fw→nat: the union of both stages' constraints is satisfiable — and
     *coarser* than the firewall's own key: nat's R5-rescued port map
     demands the server two-tuple (LAN (ip_dst, dst_port) / WAN (ip_src,
     src_port)), R2 subsumption folds the firewall's full 4-tuple under
     it, so the chain still shards shared-nothing, keyed by server.
   - fw→lb: the lb's backend pool is allocator-keyed (R4, no R5 rescue),
     so the union is unsatisfiable and the chain falls down the ladder;
     the blocked reason names the lb stage via its [s1_lb_] prefix.
   - policer→fw→nat: every per-object key is shardable, but the union is
     not — the policer demands WAN sharding on {ip dst} while nat demands
     {ip src, src port}; the R3 verdict names the offending stage pair. *)

let chain_fw_nat () = Dsl.Chain.compose_exn ~name:"chain_fw_nat" [ Fw.make (); Nat.make () ]

let chain_fw_lb () = Dsl.Chain.compose_exn ~name:"chain_fw_lb" [ Fw.make (); Lb.make () ]

let chain_policer_fw_nat () =
  Dsl.Chain.compose_exn ~name:"chain_policer_fw_nat"
    [ Policer.make (); Fw.make (); Nat.make () ]

let chains () = [ chain_fw_nat (); chain_fw_lb (); chain_policer_fw_nat () ]

(* --- tunnel-terminating NFs ------------------------------------------------

   Both shard on fields the zero-copy codec surfaces from *inside* a
   terminated VXLAN/GRE encapsulation (lib/packet/stacks.ml), making the
   inner-header field vocabulary load-bearing end to end:

   - vxlan_fw keys its flow table on the inner 5-tuple.  The inner fields
     are RSS-capable (tunnel-aware NICs hash the innermost headers, DPDK
     RSS_LEVEL_INNERMOST), so the R1 constraint is satisfiable and the NF
     shards shared-nothing — with a symmetric key, like the plain fw.
   - gre_peer counts traffic per tunnel, keyed by the GRE key field.  RSS
     cannot hash a tunnel id (it is not part of any hashable tuple), so
     R4 fires and the NF falls down the ladder to locked sharing. *)

let inner_key_lan =
  [
    Field Field.Inner_ip_src;
    Field Field.Inner_ip_dst;
    Field Field.Inner_src_port;
    Field Field.Inner_dst_port;
  ]

let inner_key_wan =
  [
    Field Field.Inner_ip_dst;
    Field Field.Inner_ip_src;
    Field Field.Inner_dst_port;
    Field Field.Inner_src_port;
  ]

let vxlan_fw ?(capacity = 65536) ?(expiry_ns = 1_000_000_000) () =
  let lan_side =
    Map_get
      {
        obj = "vxfw_flows";
        key = inner_key_lan;
        found = "vxfw_f_lan";
        value = "vxfw_idx_lan";
        k =
          If
            ( Var "vxfw_f_lan",
              Chain_rejuv
                { obj = "vxfw_chain"; index = Var "vxfw_idx_lan"; k = Topo.fwd Topo.wan },
              Chain_alloc
                {
                  obj = "vxfw_chain";
                  index = "vxfw_new";
                  k_ok =
                    Vec_set
                      {
                        obj = "vxfw_keys";
                        index = Var "vxfw_new";
                        fields =
                          [
                            ("sip", Field Field.Inner_ip_src);
                            ("dip", Field Field.Inner_ip_dst);
                            ("sp", Field Field.Inner_src_port);
                            ("dp", Field Field.Inner_dst_port);
                          ];
                        k =
                          Map_put
                            {
                              obj = "vxfw_flows";
                              key = inner_key_lan;
                              value = Var "vxfw_new";
                              ok = "vxfw_put_ok";
                              k = Topo.fwd Topo.wan;
                            };
                      };
                  k_fail = Topo.fwd Topo.wan;
                } );
      }
  in
  let wan_side =
    Map_get
      {
        obj = "vxfw_flows";
        key = inner_key_wan;
        found = "vxfw_f_wan";
        value = "vxfw_idx_wan";
        k =
          If
            ( Var "vxfw_f_wan",
              Chain_rejuv
                { obj = "vxfw_chain"; index = Var "vxfw_idx_wan"; k = Topo.fwd Topo.lan },
              Drop );
      }
  in
  {
    name = "vxlan_fw";
    devices = 2;
    state =
      [
        Decl_map { name = "vxfw_flows"; capacity; init = [] };
        Decl_chain { name = "vxfw_chain"; capacity };
        Decl_vector
          {
            name = "vxfw_keys";
            capacity;
            layout = [ ("sip", 32); ("dip", 32); ("sp", 16); ("dp", 16) ];
          };
      ];
    process =
      Chain_expire
        {
          obj = "vxfw_chain";
          purges = [ ("vxfw_flows", "vxfw_keys") ];
          age_ns = expiry_ns;
          k = If (Topo.from_lan, lan_side, wan_side);
        };
  }

let gre_peer ?(capacity = 4096) () =
  let key = [ Field Field.Tunnel_id ] in
  {
    name = "gre_peer";
    devices = 2;
    state = [ Decl_map { name = "grp_pkts"; capacity; init = [] } ];
    process =
      Map_get
        {
          obj = "grp_pkts";
          key;
          found = "grp_f";
          value = "grp_v";
          k =
            If
              ( Var "grp_f",
                Map_put
                  {
                    obj = "grp_pkts";
                    key;
                    value = Var "grp_v" +. const 1;
                    ok = "grp_ok1";
                    k = Topo.fwd Topo.wan;
                  },
                Map_put
                  {
                    obj = "grp_pkts";
                    key;
                    value = const 1;
                    ok = "grp_ok2";
                    k = Topo.fwd Topo.wan;
                  } );
        };
  }

let tunnels () = [ vxlan_fw (); gre_peer () ]
