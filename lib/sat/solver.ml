type clause = { mutable lits : Lit.t array; mutable act : float; learnt : bool }

let c_clauses = Telemetry.Counter.make "sat.clauses" ~doc:"problem clauses added"
let c_solves = Telemetry.Counter.make "sat.solve_calls" ~doc:"calls to Sat.Solver.solve"
let c_conflicts = Telemetry.Counter.make "sat.conflicts" ~doc:"CDCL conflicts across all solves"

let c_budget_exhausted =
  Telemetry.Counter.make "sat.budget_exhausted"
    ~doc:"solve calls that returned Unknown because a search budget ran out"

(* Assignment values: -1 undefined, 0 false, 1 true. *)
let l_undef = -1

type t = {
  mutable nvars : int;
  mutable clauses : clause list;
  mutable learnts : clause list;
  mutable n_learnts : int;
  mutable watches : clause list array; (* indexed by Lit.to_int *)
  mutable assigns : int array; (* per var *)
  mutable var_level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable polarity : bool array;
  mutable seen : bool array;
  mutable trail : Lit.t array;
  mutable trail_size : int;
  mutable trail_lim : int array;
  mutable n_levels : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;
  mutable core : Lit.t list;
  mutable conflicts : int;
  mutable propagations : int;
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_size : int;
  mutable heap_pos : int array; (* var -> index in heap, -1 if absent *)
  rng : Random.State.t;
}

let create ?(seed = 0x5eed) () =
  {
    nvars = 0;
    clauses = [];
    learnts = [];
    n_learnts = 0;
    watches = Array.make 16 [];
    assigns = Array.make 8 l_undef;
    var_level = Array.make 8 0;
    reason = Array.make 8 None;
    activity = Array.make 8 0.;
    polarity = Array.make 8 false;
    seen = Array.make 8 false;
    trail = Array.make 8 (Lit.pos 0);
    trail_size = 0;
    trail_lim = Array.make 8 0;
    n_levels = 0;
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    core = [];
    conflicts = 0;
    propagations = 0;
    heap = Array.make 8 0;
    heap_size = 0;
    heap_pos = Array.make 8 (-1);
    rng = Random.State.make [| seed |];
  }

let nvars s = s.nvars
let nclauses s = List.length s.clauses
let okay s = s.ok
let n_conflicts s = s.conflicts
let n_propagations s = s.propagations

let grow_array a n default =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* --- activity heap ------------------------------------------------------ *)

let heap_lt s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_lt s s.heap.(i) s.heap.(parent) then begin
      heap_swap s i parent;
      heap_up s parent
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_lt s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_lt s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap <- grow_array s.heap (s.heap_size + 1) 0;
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s (s.heap_size - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_size);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

let heap_fix s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* --- variables ---------------------------------------------------------- *)

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assigns <- grow_array s.assigns (v + 1) l_undef;
  s.var_level <- grow_array s.var_level (v + 1) 0;
  s.reason <- grow_array s.reason (v + 1) None;
  s.activity <- grow_array s.activity (v + 1) 0.;
  s.polarity <- grow_array s.polarity (v + 1) false;
  s.seen <- grow_array s.seen (v + 1) false;
  s.heap_pos <- grow_array s.heap_pos (v + 1) (-1);
  s.watches <- grow_array s.watches (2 * (v + 1)) [];
  s.trail <- grow_array s.trail (v + 1) (Lit.pos 0);
  s.assigns.(v) <- l_undef;
  s.reason.(v) <- None;
  s.heap_pos.(v) <- -1;
  heap_insert s v;
  v

let lit_val s l =
  let a = s.assigns.(Lit.var l) in
  if a = l_undef then l_undef else if Lit.sign l then a else 1 - a

let decision_level s = s.n_levels

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_fix s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s c =
  if c.learnt then begin
    c.act <- c.act +. s.cla_inc;
    if c.act > 1e20 then begin
      List.iter (fun c -> c.act <- c.act *. 1e-20) s.learnts;
      s.cla_inc <- s.cla_inc *. 1e-20
    end
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* --- trail -------------------------------------------------------------- *)

let enqueue s l reason =
  s.assigns.(Lit.var l) <- (if Lit.sign l then 1 else 0);
  s.var_level.(Lit.var l) <- decision_level s;
  s.reason.(Lit.var l) <- reason;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let new_decision_level s =
  s.trail_lim <- grow_array s.trail_lim (s.n_levels + 1) 0;
  s.trail_lim.(s.n_levels) <- s.trail_size;
  s.n_levels <- s.n_levels + 1

let cancel_until s level =
  if decision_level s > level then begin
    let bound = s.trail_lim.(level) in
    for i = s.trail_size - 1 downto bound do
      let l = s.trail.(i) in
      let v = Lit.var l in
      s.polarity.(v) <- Lit.sign l;
      s.assigns.(v) <- l_undef;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.n_levels <- level
  end

(* --- watched literals --------------------------------------------------- *)

let watch s l c = s.watches.(Lit.to_int l) <- c :: s.watches.(Lit.to_int l)

let attach s c =
  watch s (Lit.negate c.lits.(0)) c;
  watch s (Lit.negate c.lits.(1)) c

(* Propagate all enqueued facts; returns the conflicting clause, if any. *)
let propagate s =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_size do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let ws = s.watches.(Lit.to_int p) in
    s.watches.(Lit.to_int p) <- [];
    let rec go = function
      | [] -> ()
      | c :: rest -> (
          (* Invariant: ~p is one of the two watched literals of c. *)
          let not_p = Lit.negate p in
          if Lit.equal c.lits.(0) not_p then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- not_p
          end;
          if lit_val s c.lits.(0) = 1 then begin
            watch s p c;
            go rest
          end
          else
            let n = Array.length c.lits in
            let rec find k = if k >= n then -1 else if lit_val s c.lits.(k) <> 0 then k else find (k + 1) in
            match find 2 with
            | k when k >= 0 ->
                c.lits.(1) <- c.lits.(k);
                c.lits.(k) <- not_p;
                watch s (Lit.negate c.lits.(1)) c;
                go rest
            | _ ->
                watch s p c;
                if lit_val s c.lits.(0) = 0 then begin
                  (* conflict: keep the remaining watchers where they were *)
                  List.iter (fun c -> watch s p c) rest;
                  s.qhead <- s.trail_size;
                  conflict := Some c
                end
                else begin
                  enqueue s c.lits.(0) (Some c);
                  go rest
                end)
    in
    go ws
  done;
  !conflict

(* --- clauses ------------------------------------------------------------ *)

exception Unsat_root

let add_clause_internal s lits learnt =
  match lits with
  | [] -> raise Unsat_root
  | [ l ] ->
      if lit_val s l = 0 then raise Unsat_root
      else if lit_val s l = l_undef then begin
        enqueue s l None;
        match propagate s with Some _ -> raise Unsat_root | None -> ()
      end
  | _ ->
      let c = { lits = Array.of_list lits; act = 0.; learnt } in
      attach s c;
      if learnt then begin
        s.learnts <- c :: s.learnts;
        s.n_learnts <- s.n_learnts + 1
      end
      else s.clauses <- c :: s.clauses

let add_clause s lits =
  Telemetry.Counter.incr c_clauses;
  if s.ok then begin
    (* Root-level simplification: drop false literals, detect tautologies and
       already-satisfied clauses.  Callers may add clauses between solves, so
       first undo any leftover assumption levels. *)
    cancel_until s 0;
    let lits = List.sort_uniq Lit.compare lits in
    let tautology =
      List.exists (fun l -> List.exists (Lit.equal (Lit.negate l)) lits) lits
    in
    let satisfied = List.exists (fun l -> lit_val s l = 1) lits in
    if not (tautology || satisfied) then
      let lits = List.filter (fun l -> lit_val s l <> 0) lits in
      List.iter (fun l -> if Lit.var l >= s.nvars then invalid_arg "Sat.add_clause: unknown variable") lits;
      try add_clause_internal s lits false with Unsat_root -> s.ok <- false
  end

(* --- conflict analysis -------------------------------------------------- *)

(* First-UIP learning scheme. Returns the learnt clause (asserting literal
   first) and the backjump level. *)
let analyze s confl =
  let learnt = ref [] in
  let path_c = ref 0 in
  let p = ref None in
  let index = ref (s.trail_size - 1) in
  let confl = ref (Some confl) in
  let continue = ref true in
  while !continue do
    let c = match !confl with Some c -> c | None -> assert false in
    cla_bump s c;
    Array.iter
      (fun q ->
        let skip = match !p with Some p -> Lit.equal p q | None -> false in
        let v = Lit.var q in
        if (not skip) && (not s.seen.(v)) && s.var_level.(v) > 0 then begin
          s.seen.(v) <- true;
          var_bump s v;
          if s.var_level.(v) >= decision_level s then incr path_c
          else learnt := q :: !learnt
        end)
      c.lits;
    (* next node to expand: most recent seen literal on the trail *)
    while not s.seen.(Lit.var s.trail.(!index)) do
      decr index
    done;
    let pl = s.trail.(!index) in
    decr index;
    s.seen.(Lit.var pl) <- false;
    p := Some pl;
    decr path_c;
    if !path_c <= 0 then continue := false else confl := s.reason.(Lit.var pl)
  done;
  let asserting = Lit.negate (match !p with Some p -> p | None -> assert false) in
  let tail = !learnt in
  List.iter (fun q -> s.seen.(Lit.var q) <- false) tail;
  let bt_level = List.fold_left (fun acc q -> max acc s.var_level.(Lit.var q)) 0 tail in
  (asserting :: tail, bt_level)

(* Conflict clause in terms of assumptions, for unsat cores: walk the trail
   from a failed literal back to the assumption decisions that imply it. *)
let analyze_final s p assumptions =
  let core_vars = Hashtbl.create 16 in
  Hashtbl.replace core_vars (Lit.var p) ();
  if decision_level s > 0 then begin
    s.seen.(Lit.var p) <- true;
    for i = s.trail_size - 1 downto s.trail_lim.(0) do
      let x = Lit.var s.trail.(i) in
      if s.seen.(x) then begin
        (match s.reason.(x) with
        | None -> Hashtbl.replace core_vars x ()
        | Some c ->
            Array.iter
              (fun q -> if s.var_level.(Lit.var q) > 0 then s.seen.(Lit.var q) <- true)
              c.lits);
        s.seen.(x) <- false
      end
    done;
    s.seen.(Lit.var p) <- false
  end;
  List.filter (fun a -> Hashtbl.mem core_vars (Lit.var a)) assumptions

(* --- learnt DB reduction ------------------------------------------------ *)

let locked s c =
  Array.length c.lits > 0
  &&
  let v = Lit.var c.lits.(0) in
  s.assigns.(v) <> l_undef && s.reason.(v) = Some c

let reduce_db s =
  let cmp a b = Float.compare a.act b.act in
  let sorted = List.sort cmp s.learnts in
  let n = s.n_learnts in
  let kept = ref [] and removed = ref 0 in
  List.iteri
    (fun i c ->
      if i < n / 2 && (not (locked s c)) && Array.length c.lits > 2 then begin
        (* detach from watches *)
        let strip l =
          s.watches.(Lit.to_int l) <- List.filter (fun c' -> c' != c) s.watches.(Lit.to_int l)
        in
        strip (Lit.negate c.lits.(0));
        strip (Lit.negate c.lits.(1));
        incr removed
      end
      else kept := c :: !kept)
    sorted;
  s.learnts <- !kept;
  s.n_learnts <- s.n_learnts - !removed

(* --- search ------------------------------------------------------------- *)

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let pick_branch s =
  let rec pop () =
    if s.heap_size = 0 then None
    else
      let v = heap_pop s in
      if s.assigns.(v) = l_undef then Some v else pop ()
  in
  match pop () with
  | None -> None
  | Some v ->
      let sign =
        if Random.State.int s.rng 100 < 2 then Random.State.bool s.rng else s.polarity.(v)
      in
      Some (Lit.make v sign)

type result = Sat | Unsat | Unknown

(* [budget]: maximum (conflicts, propagations) this call may spend before
   giving up with [Unknown].  A negative component is unlimited; 0 is
   exhausted immediately (used by fault plans to force degradation). *)
let solve_cdcl ?(assumptions = []) ?budget s =
  if not s.ok then begin
    s.core <- [];
    Unsat
  end
  else begin
    cancel_until s 0;
    s.core <- [];
    let budget_exceeded =
      match budget with
      | None -> fun () -> false
      | Some (max_conflicts, max_props) ->
          let conflicts0 = s.conflicts and props0 = s.propagations in
          fun () ->
            (max_conflicts >= 0 && s.conflicts - conflicts0 >= max_conflicts)
            || (max_props >= 0 && s.propagations - props0 >= max_props)
    in
    let n_assumptions = List.length assumptions in
    let assumption_arr = Array.of_list assumptions in
    let restart_base = 100 in
    let restart_num = ref 0 in
    let conflict_budget = ref (restart_base * luby !restart_num) in
    let max_learnts = ref (max 1000 (4 * List.length s.clauses)) in
    let result = ref None in
    if budget_exceeded () then result := Some Unknown;
    (try
       while !result = None do
         if budget_exceeded () then result := Some Unknown
         else
         match propagate s with
         | Some confl ->
             s.conflicts <- s.conflicts + 1;
             decr conflict_budget;
             if decision_level s = 0 then begin
               s.ok <- false;
               result := Some Unsat
             end
             else begin
               let learnt, bt = analyze s confl in
               cancel_until s bt;
               (try add_clause_internal s learnt true
                with Unsat_root ->
                  s.ok <- false;
                  result := Some Unsat);
               (match learnt with
               | first :: _ :: _ when !result = None && lit_val s first = l_undef ->
                   (* assert the UIP literal with the learnt clause as reason *)
                   (match s.learnts with
                   | c :: _ when Lit.equal c.lits.(0) first -> enqueue s first (Some c)
                   | _ -> ())
               | _ -> ());
               var_decay s;
               cla_decay s
             end
         | None ->
             if !conflict_budget <= 0 then begin
               incr restart_num;
               conflict_budget := restart_base * luby !restart_num;
               cancel_until s 0
             end
             else if s.n_learnts > !max_learnts then begin
               max_learnts := !max_learnts + (!max_learnts / 2);
               reduce_db s
             end
             else if decision_level s < n_assumptions then begin
               let a = assumption_arr.(decision_level s) in
               match lit_val s a with
               | 1 -> new_decision_level s
               | 0 ->
                   s.core <- analyze_final s a assumptions;
                   result := Some Unsat
               | _ ->
                   new_decision_level s;
                   enqueue s a None
             end
             else begin
               match pick_branch s with
               | None -> result := Some Sat
               | Some l ->
                   new_decision_level s;
                   enqueue s l None
             end
       done
     with Unsat_root ->
       s.ok <- false;
       result := Some Unsat);
    match !result with
    | Some Sat -> Sat (* keep the trail so that [value] can read the model *)
    | Some Unsat ->
        if not s.ok then s.core <- [];
        cancel_until s 0;
        Unsat
    | Some Unknown ->
        (* budget ran out mid-search: roll back to a clean root level; the
           solver stays usable (learnt clauses are kept, so a retry with a
           larger budget resumes stronger) *)
        Telemetry.Counter.incr c_budget_exhausted;
        cancel_until s 0;
        Unknown
    | None -> assert false
  end

let solve ?assumptions ?budget s =
  Telemetry.Counter.incr c_solves;
  (* an installed fault plan may force a budget, exercising the pipeline's
     degradation ladder without a genuinely hard instance *)
  let budget = match Faults.solver_budget () with Some b -> Some b | None -> budget in
  let before = s.conflicts in
  let r = Telemetry.Span.with_span "sat/solve" (fun () -> solve_cdcl ?assumptions ?budget s) in
  Telemetry.Counter.add c_conflicts (s.conflicts - before);
  r

let value s v = if v < 0 || v >= s.nvars then invalid_arg "Sat.value" else s.assigns.(v) = 1

let lit_value s l = if Lit.sign l then value s (Lit.var l) else not (value s (Lit.var l))

let unsat_core s = s.core
