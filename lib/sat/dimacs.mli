(** DIMACS CNF reading and writing, for interoperability and tests. *)

type cnf = { nvars : int; clauses : Lit.t list list }

val parse : string -> (cnf, string) result
(** Parse DIMACS CNF text.  [Error] (never an exception) on malformed
    input: a bad problem line, a non-numeric token, or a negative
    variable count. *)

val parse_exn : string -> cnf
(** Like {!parse} but raises [Failure] — for callers that already
    validated their input. *)

val print : Format.formatter -> cnf -> unit

val load : Solver.t -> cnf -> unit
(** Allocate the variables (those not yet present) and add all clauses. *)
