type cnf = { nvars : int; clauses : Lit.t list list }

let parse text =
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad ("Dimacs.parse: " ^ m))) fmt in
  try
    let nvars = ref (-1) in
    let clauses = ref [] in
    let current = ref [] in
    let lines = String.split_on_char '\n' text in
    List.iter
      (fun line ->
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then ()
        else if line.[0] = 'p' then begin
          if !nvars >= 0 then bad "duplicate problem line %S" line;
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ "p"; "cnf"; nv; _nc ] -> (
              match int_of_string_opt nv with
              | Some n when n >= 0 -> nvars := n
              | _ -> bad "bad variable count %S" nv)
          | _ -> bad "bad problem line %S" line
        end
        else begin
          if !nvars < 0 then bad "clause before the problem line: %S" line;
          String.split_on_char ' ' line
          |> List.filter (( <> ) "")
          |> List.iter (fun tok ->
                 match int_of_string_opt tok with
                 | None -> bad "bad token %S" tok
                 | Some 0 ->
                     clauses := List.rev !current :: !clauses;
                     current := []
                 | Some i ->
                     if abs i > !nvars then
                       bad "variable %d out of range (problem line declared %d)" (abs i) !nvars;
                     current := Lit.of_dimacs i :: !current)
        end)
      lines;
    if !current <> [] then clauses := List.rev !current :: !clauses;
    if !nvars < 0 then bad "missing problem line";
    Ok { nvars = !nvars; clauses = List.rev !clauses }
  with Bad msg -> Error msg

let parse_exn text = match parse text with Ok cnf -> cnf | Error msg -> failwith msg

let print fmt { nvars; clauses } =
  Format.fprintf fmt "p cnf %d %d@." nvars (List.length clauses);
  List.iter
    (fun c ->
      List.iter (fun l -> Format.fprintf fmt "%d " (Lit.to_dimacs l)) c;
      Format.fprintf fmt "0@.")
    clauses

let load s { nvars; clauses } =
  while Solver.nvars s < nvars do
    ignore (Solver.new_var s)
  done;
  List.iter (Solver.add_clause s) clauses
