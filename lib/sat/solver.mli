(** A CDCL SAT solver.

    Conflict-driven clause learning in the MiniSat mould: two-watched-literal
    propagation, first-UIP conflict analysis, VSIDS-style variable activity,
    phase saving, Luby restarts, learnt-clause database reduction, and
    solving under assumptions with extraction of an UNSAT core (the subset of
    assumptions responsible for the conflict, per MiniSat's [analyzeFinal]).

    The core extraction is what RS3 uses for its randomized Fu–Malik-style
    partial-MaxSAT loop when searching for RSS keys with many 1 bits (§4 of
    the paper). *)

type t

val create : ?seed:int -> unit -> t

val new_var : t -> Lit.var
(** Allocate a fresh variable. *)

val nvars : t -> int

val nclauses : t -> int
(** Number of problem (non-learnt) clauses currently held. *)

val add_clause : t -> Lit.t list -> unit
(** Add a clause (a disjunction).  An empty clause, or one falsified at the
    root level, makes the solver permanently unsatisfiable. *)

type result = Sat | Unsat | Unknown

val solve : ?assumptions:Lit.t list -> ?budget:int * int -> t -> result
(** Solve the current clause set under the given assumption literals.  The
    solver remains usable afterwards: more variables and clauses may be
    added and [solve] called again.

    [budget] bounds the search: [(max_conflicts, max_propagations)] this
    call may spend before returning [Unknown] (never an exception).  A
    negative component means unlimited; [0] is exhausted immediately.
    After [Unknown] the solver is still usable — learnt clauses are kept,
    so retrying with a larger budget resumes from a stronger state.  An
    installed {!Faults} plan with a [Solver_budget] event overrides
    [budget], which is how fault injection forces the degradation
    ladder. *)

val value : t -> Lit.var -> bool
(** Model value of a variable after [solve] returned [Sat].  Unconstrained
    variables read as [false]. *)

val lit_value : t -> Lit.t -> bool

val unsat_core : t -> Lit.t list
(** After [solve ~assumptions] returned [Unsat], the subset of [assumptions]
    whose conjunction is inconsistent with the clauses.  Empty when the
    clause set is unsatisfiable on its own. *)

val okay : t -> bool
(** [false] once the clause set is unsatisfiable regardless of assumptions. *)

val n_conflicts : t -> int
(** Total conflicts encountered, for diagnostics. *)

val n_propagations : t -> int
(** Total unit propagations performed, for diagnostics and budgets. *)
