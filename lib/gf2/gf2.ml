(* Rows are augmented bit vectors packed into native ints, 62 bits per word;
   column [cols] (the last logical column) holds the right-hand side. *)

module System = struct
  let word_bits = 62

  let c_equations = Telemetry.Counter.make "gf2.equations" ~doc:"equations added to GF(2) systems"
  let c_eliminations = Telemetry.Counter.make "gf2.eliminations" ~doc:"Gaussian eliminations run"
  let c_samples = Telemetry.Counter.make "gf2.samples" ~doc:"solutions sampled from solved systems"

  type row = int array

  (* Rows live in a growable array in insertion order: [add_equation] is
     amortized O(1) and [eliminate]/[check] walk them without the O(n)
     [List.rev] copy the previous reversed-list representation paid on
     every call. *)
  type t = {
    cols : int;
    words : int; (* words per row, covering cols + 1 bits *)
    mutable equations : row array; (* rows 0 .. count-1 are live *)
    mutable count : int;
  }

  let create ~cols =
    if cols < 0 then invalid_arg "Gf2.System.create";
    { cols; words = ((cols + 1) + word_bits - 1) / word_bits; equations = [||]; count = 0 }

  let iter_rows t f =
    for i = 0 to t.count - 1 do
      f t.equations.(i)
    done

  let cols t = t.cols
  let rows t = t.count

  let row_get (r : row) i = (r.(i / word_bits) lsr (i mod word_bits)) land 1 = 1

  let row_flip (r : row) i = r.(i / word_bits) <- r.(i / word_bits) lxor (1 lsl (i mod word_bits))

  let row_xor (dst : row) (src : row) =
    for w = 0 to Array.length dst - 1 do
      dst.(w) <- dst.(w) lxor src.(w)
    done

  let add_equation t ~coeffs ~rhs =
    let r = Array.make t.words 0 in
    List.iter
      (fun i ->
        if i < 0 || i >= t.cols then invalid_arg "Gf2.System.add_equation: index";
        row_flip r i)
      coeffs;
    if rhs then row_flip r t.cols;
    if t.count = Array.length t.equations then begin
      let cap = max 8 (2 * Array.length t.equations) in
      let grown = Array.make cap [||] in
      Array.blit t.equations 0 grown 0 t.count;
      t.equations <- grown
    end;
    t.equations.(t.count) <- r;
    t.count <- t.count + 1;
    Telemetry.Counter.incr c_equations

  let add_zero t i = add_equation t ~coeffs:[ i ] ~rhs:false
  let add_equal t i j = if i <> j then add_equation t ~coeffs:[ i; j ] ~rhs:false

  type solved = {
    s_cols : int;
    pivots : (int * row) list; (* (pivot column, reduced row), ascending *)
    free : int list; (* non-pivot columns, ascending *)
  }

  (* Standard Gauss-Jordan: after elimination each pivot row has a leading 1
     in its pivot column and zeros in every other pivot column, so solving is
     a direct read-off given values for the free variables. *)
  let eliminate t =
    Telemetry.Counter.incr c_eliminations;
    let rows = List.init t.count (fun i -> Array.copy t.equations.(i)) in
    let pivots = ref [] in
    let remaining = ref rows in
    let inconsistent = ref false in
    for col = 0 to t.cols - 1 do
      if not !inconsistent then begin
        match List.partition (fun r -> row_get r col) !remaining with
        | [], _ -> ()
        | pivot :: others, rest ->
            List.iter (fun r -> row_xor r pivot) others;
            (* clear this column from previously found pivot rows too *)
            List.iter (fun (_, pr) -> if row_get pr col then row_xor pr pivot) !pivots;
            pivots := (col, pivot) :: !pivots;
            remaining := others @ rest
      end
    done;
    (* leftover rows are all-zero coefficients: rhs must be zero *)
    List.iter (fun r -> if row_get r t.cols then inconsistent := true) !remaining;
    if !inconsistent then None
    else
      let pivots = List.sort (fun (a, _) (b, _) -> Int.compare a b) !pivots in
      let pivot_cols = List.map fst pivots in
      let free =
        List.filter (fun c -> not (List.mem c pivot_cols)) (List.init t.cols Fun.id)
      in
      Some { s_cols = t.cols; pivots; free }

  let rank s = List.length s.pivots
  let n_free s = List.length s.free

  let backsub s (x : bool array) =
    List.iter
      (fun (col, r) ->
        (* pivot value = rhs + sum of free columns present in this row *)
        let v = ref (row_get r s.s_cols) in
        List.iter (fun f -> if row_get r f && x.(f) then v := not !v) s.free;
        x.(col) <- !v)
      s.pivots;
    x

  let solve s = backsub s (Array.make s.s_cols false)

  let sample s ~rng ~one_bias =
    Telemetry.Counter.incr c_samples;
    let p = Float.max 0. (Float.min 1. one_bias) in
    let x = Array.make s.s_cols false in
    List.iter (fun f -> x.(f) <- Random.State.float rng 1.0 < p) s.free;
    backsub s x

  let nullspace s =
    List.map
      (fun f ->
        let x = Array.make s.s_cols false in
        x.(f) <- true;
        List.iter
          (fun (col, r) ->
            let v = ref false in
            List.iter (fun f' -> if row_get r f' && x.(f') then v := not !v) s.free;
            x.(col) <- !v)
          s.pivots;
        x)
      s.free

  let check t x =
    if Array.length x <> t.cols then invalid_arg "Gf2.System.check";
    let ok = ref true in
    iter_rows t (fun r ->
        let v = ref false in
        for i = 0 to t.cols - 1 do
          if row_get r i && x.(i) then v := not !v
        done;
        if not (Bool.equal !v (row_get r t.cols)) then ok := false);
    !ok
end
