(* Staged compilation of checked NF programs.

   [stage] walks the AST once and emits a tree of closures — the
   "compiled NF" — in which everything the interpreter re-derives per
   packet is already resolved: variable and record bindings are fixed
   slots in a preallocated frame, expression widths are baked-in mask
   constants, record layouts are field indices, and container keys
   narrow enough to pack ({!State.Key}) are built as tagged ints feeding
   the allocation-free [_packed] container operations.  [bind] then
   resolves the staged program against one {!Instance} and allocates the
   frame; the resulting [bound] value processes packets without touching
   the minor heap on packed-key NFs (wide keys serialize into a per-site
   scratch buffer aliased to the non-retaining map operations, paying a
   string copy only on [put]; a [Fwd] verdict is itself a block — all
   measured by [bench/nfpath.exe]).

   The staging is semantics-preserving by construction and checked by
   the differential suite: every closure mirrors one [Interp] case,
   including the op-event order, the purge-before-emit behaviour of
   [Chain_expire], and the [Runtime_error] conditions. *)

open Ast

let nop_op (_ : Interp.op_event) = ()

(* The per-bound execution frame.  [ints] holds scalar bindings by slot,
   [recs] one scratch array per record binding (records are snapshots in
   the interpreter, so overwriting the scratch on rebinding matches the
   assoc-shadowing semantics), [scratch] one reusable buffer per
   wide-key site. *)
type ctx = {
  ints : int array;
  recs : int array array;
  maps : State.Map_s.t array;
  vecs : Instance.record array array;
  chains : State.Dchain.t array;
  sketches : State.Sketch.t array;
  scratch : Bytes.t array;
  mutable pkt : Packet.Pkt.t;
  mutable on_op : Interp.op_event -> unit;
}

type t = {
  entry : ctx -> Interp.action;
  n_ints : int;
  rec_lens : int array;
  map_names : string array;
  vec_names : string array;
  chain_names : string array;
  sketch_names : string array;
  scratch_sizes : int array;
}

type bound = { b_ctx : ctx; b_entry : ctx -> Interp.action }

let fail fmt = Format.kasprintf (fun s -> raise (Interp.Runtime_error s)) fmt

(* Stage-time slot registries. *)
type reg = {
  r_vars : (string, int) Hashtbl.t;
  mutable r_n_vars : int;
  r_recs : (string, int) Hashtbl.t;
  mutable r_rec_lens : int list; (* reversed *)
  r_maps : (string, int) Hashtbl.t;
  r_vecs : (string, int) Hashtbl.t;
  r_chains : (string, int) Hashtbl.t;
  r_sketches : (string, int) Hashtbl.t;
  mutable r_scratch : int list; (* reversed *)
}

let intern tbl name ~fresh =
  match Hashtbl.find_opt tbl name with
  | Some i -> i
  | None ->
      let i = fresh () in
      Hashtbl.add tbl name i;
      i

let obj_slot tbl name = intern tbl name ~fresh:(fun () -> Hashtbl.length tbl)

let mask_of w = if w >= 62 then -1 else (1 lsl w) - 1

let stage_span = "compile.stage"

let stage (nf : Ast.t) info =
  Telemetry.Span.with_span stage_span @@ fun () ->
  let reg =
    {
      r_vars = Hashtbl.create 16;
      r_n_vars = 0;
      r_recs = Hashtbl.create 8;
      r_rec_lens = [];
      r_maps = Hashtbl.create 4;
      r_vecs = Hashtbl.create 4;
      r_chains = Hashtbl.create 4;
      r_sketches = Hashtbl.create 4;
      r_scratch = [];
    }
  in
  let var_slot x =
    intern reg.r_vars x ~fresh:(fun () ->
        let i = reg.r_n_vars in
        reg.r_n_vars <- i + 1;
        i)
  in
  let rec_slot r =
    intern reg.r_recs r ~fresh:(fun () ->
        let i = Hashtbl.length reg.r_recs in
        reg.r_rec_lens <- List.length (Check.record_layout info r) :: reg.r_rec_lens;
        i)
  in
  let scratch_slot size =
    let i = List.length reg.r_scratch in
    reg.r_scratch <- size :: reg.r_scratch;
    i
  in
  let field_index layout f =
    let rec go i = function
      | [] -> fail "record has no field %s" f
      | (g, _) :: rest -> if String.equal f g then i else go (i + 1) rest
    in
    go 0 layout
  in
  let rec cexpr e : ctx -> int =
    match e with
    | Const (w, v) ->
        let v = v land mask_of w in
        fun _ -> v
    | Field f -> fun c -> Packet.Pkt.field_int c.pkt f
    | In_port -> fun c -> c.pkt.Packet.Pkt.port
    | Now -> fun c -> c.pkt.Packet.Pkt.ts_ns
    | Pkt_len -> fun c -> c.pkt.Packet.Pkt.size
    | Var x ->
        let s = var_slot x in
        fun c -> Array.unsafe_get c.ints s
    | Record_field (r, f) ->
        let rs = rec_slot r in
        let fi = field_index (Check.record_layout info r) f in
        fun c -> Array.unsafe_get (Array.unsafe_get c.recs rs) fi
    | Bin (op, a, b) -> (
        let ga = cexpr a and gb = cexpr b in
        let m = mask_of (max (Check.expr_width info a) (Check.expr_width info b)) in
        match op with
        | Add -> fun c -> (ga c + gb c) land m
        | Sub -> fun c -> (ga c - gb c) land m
        | Mul -> fun c -> (ga c * gb c) land m
        | Div ->
            fun c ->
              let vb = gb c in
              if vb = 0 then 0 else ga c / vb land m
        | Mod ->
            fun c ->
              let vb = gb c in
              if vb = 0 then 0 else ga c mod vb land m
        | Eq -> fun c -> if ga c = gb c then 1 else 0
        | Neq -> fun c -> if ga c <> gb c then 1 else 0
        | Lt -> fun c -> if ga c < gb c then 1 else 0
        | Le -> fun c -> if ga c <= gb c then 1 else 0
        | Land -> fun c -> ga c land gb c
        | Lor -> fun c -> ga c lor gb c)
    | Not a ->
        let ga = cexpr a in
        fun c -> 1 - ga c
    | Cast (w, a) ->
        let ga = cexpr a in
        let m = mask_of w in
        fun c -> ga c land m
  in
  (* A compiled key: packed keys are built by shifting parts into one
     tagged int; wide keys serialize into the site's scratch buffer and
     copy out one string.  Each part is truncated to its byte width,
     exactly as [Ast.key_of_parts] truncates when serializing. *)
  let ckey key =
    let parts =
      List.map
        (fun e ->
          let w = Check.expr_width info e in
          ((w + 7) / 8, cexpr e))
        key
    in
    let total = List.fold_left (fun a (b, _) -> a + b) 0 parts in
    if total <= State.Key.max_packed_bytes then begin
      let f =
        List.fold_left
          (fun acc (b, g) ->
            let shift = 8 * b in
            let pm = (1 lsl shift) - 1 in
            fun c -> (acc c lsl shift) lor (g c land pm))
          (fun _ -> 0)
          parts
      in
      `Packed (fun c -> State.Key.tag ~bytes:total (f c))
    end
    else begin
      let slot = scratch_slot total in
      let _, writers =
        List.fold_left
          (fun (off, acc) (bytes, g) ->
            let w c buf =
              let v = g c in
              for i = 0 to bytes - 1 do
                Bytes.unsafe_set buf (off + i)
                  (Char.unsafe_chr ((v lsr (8 * (bytes - 1 - i))) land 0xff))
              done
            in
            (off + bytes, w :: acc))
          (0, []) parts
      in
      let writers = Array.of_list (List.rev writers) in
      (* Returns the site's scratch buffer itself (sized exactly [total]).
         Call sites alias it with [Bytes.unsafe_to_string] for operations
         that do not retain the key (find/mem/erase/hash) and copy it only
         for [put], which stores the key. *)
      `Wide
        (fun c ->
          let buf = Array.unsafe_get c.scratch slot in
          for i = 0 to Array.length writers - 1 do
            (Array.unsafe_get writers i) c buf
          done;
          buf)
    end
  in
  let event obj kind =
    { Interp.obj; kind; write = Interp.op_is_write kind; expired = 0 }
  in
  let rec crun stmt : ctx -> Interp.action =
    match stmt with
    | If (cond, t, f) ->
        let gc = cexpr cond and kt = crun t and kf = crun f in
        fun c -> if gc c = 1 then kt c else kf c
    | Let (x, e, k) ->
        let ge = cexpr e in
        let s = var_slot x in
        let kk = crun k in
        fun c ->
          Array.unsafe_set c.ints s (ge c);
          kk c
    | Map_get { obj; key; found; value; k } -> (
        let ev = event obj Interp.Op_map_get in
        let ms = obj_slot reg.r_maps obj in
        let fs = var_slot found and vs = var_slot value in
        let kk = crun k in
        match ckey key with
        | `Packed kc ->
            fun c ->
              c.on_op ev;
              let v = State.Map_s.find_packed (Array.unsafe_get c.maps ms) (kc c) ~absent:min_int in
              if v = min_int then begin
                Array.unsafe_set c.ints fs 0;
                Array.unsafe_set c.ints vs 0
              end
              else begin
                Array.unsafe_set c.ints fs 1;
                Array.unsafe_set c.ints vs v
              end;
              kk c
        | `Wide kc ->
            fun c ->
              c.on_op ev;
              let v =
                State.Map_s.find_wide (Array.unsafe_get c.maps ms)
                  (Bytes.unsafe_to_string (kc c))
                  ~absent:min_int
              in
              if v = min_int then begin
                Array.unsafe_set c.ints fs 0;
                Array.unsafe_set c.ints vs 0
              end
              else begin
                Array.unsafe_set c.ints fs 1;
                Array.unsafe_set c.ints vs v
              end;
              kk c)
    | Map_put { obj; key; value; ok; k } -> (
        let ev = event obj Interp.Op_map_put in
        let ms = obj_slot reg.r_maps obj in
        let gv = cexpr value in
        let os = var_slot ok in
        let kk = crun k in
        match ckey key with
        | `Packed kc ->
            fun c ->
              c.on_op ev;
              let r =
                State.Map_s.put_packed (Array.unsafe_get c.maps ms) (kc c) (gv c)
              in
              Array.unsafe_set c.ints os (Bool.to_int r);
              kk c
        | `Wide kc ->
            fun c ->
              c.on_op ev;
              let r =
                State.Map_s.put_wide (Array.unsafe_get c.maps ms)
                  (Bytes.to_string (kc c))
                  (gv c)
              in
              Array.unsafe_set c.ints os (Bool.to_int r);
              kk c)
    | Map_erase { obj; key; k } -> (
        let ev = event obj Interp.Op_map_erase in
        let ms = obj_slot reg.r_maps obj in
        let kk = crun k in
        match ckey key with
        | `Packed kc ->
            fun c ->
              c.on_op ev;
              ignore (State.Map_s.erase_packed (Array.unsafe_get c.maps ms) (kc c));
              kk c
        | `Wide kc ->
            fun c ->
              c.on_op ev;
              ignore
                (State.Map_s.erase_wide (Array.unsafe_get c.maps ms)
                   (Bytes.unsafe_to_string (kc c)));
              kk c)
    | Vec_get { obj; index; record; k } ->
        let ev = event obj Interp.Op_vec_get in
        let vs = obj_slot reg.r_vecs obj in
        let gi = cexpr index in
        let rs = rec_slot record in
        let len = List.length (Check.record_layout info record) in
        let kk = crun k in
        fun c ->
          c.on_op ev;
          let slots = Array.unsafe_get c.vecs vs in
          let i = gi c in
          if i < 0 || i >= Array.length slots then
            fail "vec_get %s: index %d out of range" obj i;
          Array.blit (Array.unsafe_get slots i) 0 (Array.unsafe_get c.recs rs) 0 len;
          kk c
    | Vec_set { obj; index; fields; k } ->
        let ev = event obj Interp.Op_vec_set in
        let vs = obj_slot reg.r_vecs obj in
        let gi = cexpr index in
        let layout = Check.layout_of_object info obj in
        let setters =
          Array.of_list
            (List.map (fun (f, e) -> (field_index layout f, cexpr e)) fields)
        in
        let kk = crun k in
        fun c ->
          c.on_op ev;
          let slots = Array.unsafe_get c.vecs vs in
          let i = gi c in
          if i < 0 || i >= Array.length slots then
            fail "vec_set %s: index %d out of range" obj i;
          let s = Array.unsafe_get slots i in
          for j = 0 to Array.length setters - 1 do
            let p, g = Array.unsafe_get setters j in
            Array.unsafe_set s p (g c)
          done;
          kk c
    | Chain_alloc { obj; index; k_ok; k_fail } ->
        let ev = event obj Interp.Op_chain_alloc in
        let cs = obj_slot reg.r_chains obj in
        let is = var_slot index in
        let kok = crun k_ok and kfail = crun k_fail in
        fun c ->
          c.on_op ev;
          let i =
            State.Dchain.allocate_idx (Array.unsafe_get c.chains cs)
              ~now:c.pkt.Packet.Pkt.ts_ns
          in
          if i >= 0 then begin
            Array.unsafe_set c.ints is i;
            kok c
          end
          else kfail c
    | Chain_rejuv { obj; index; k } ->
        let ev = event obj Interp.Op_chain_rejuv in
        let cs = obj_slot reg.r_chains obj in
        let gi = cexpr index in
        let kk = crun k in
        fun c ->
          c.on_op ev;
          ignore
            (State.Dchain.rejuvenate (Array.unsafe_get c.chains cs) (gi c)
               ~now:c.pkt.Packet.Pkt.ts_ns);
          kk c
    | Chain_expire { obj; purges; age_ns; k } ->
        let ev0 =
          { Interp.obj; kind = Interp.Op_chain_expire; write = false; expired = 0 }
        in
        let cs = obj_slot reg.r_chains obj in
        let purgers =
          Array.of_list
            (List.map
               (fun (map, keyvec) ->
                 let ms = obj_slot reg.r_maps map in
                 let vs = obj_slot reg.r_vecs keyvec in
                 let layout = Check.layout_of_object info keyvec in
                 let total =
                   List.fold_left (fun a (_, w) -> a + ((w + 7) / 8)) 0 layout
                 in
                 if total <= State.Key.max_packed_bytes then begin
                   let shifts_masks =
                     Array.of_list
                       (List.map
                          (fun (_, w) ->
                            let b = (w + 7) / 8 in
                            (8 * b, (1 lsl (8 * b)) - 1))
                          layout)
                   in
                   fun c freed ->
                     let m = Array.unsafe_get c.maps ms in
                     let slots = Array.unsafe_get c.vecs vs in
                     List.iter
                       (fun i ->
                         let s = slots.(i) in
                         let v = ref 0 in
                         for j = 0 to Array.length shifts_masks - 1 do
                           let shift, pm = Array.unsafe_get shifts_masks j in
                           v := (!v lsl shift) lor (Array.unsafe_get s j land pm)
                         done;
                         ignore
                           (State.Map_s.erase_packed m (State.Key.tag ~bytes:total !v)))
                       freed
                 end
                 else
                   fun c freed ->
                     let m = Array.unsafe_get c.maps ms in
                     let slots = Array.unsafe_get c.vecs vs in
                     List.iter
                       (fun i ->
                         let key =
                           key_of_parts
                             (List.mapi (fun j (_, w) -> (w, slots.(i).(j))) layout)
                         in
                         ignore (State.Map_s.erase m key))
                       freed)
               purges)
        in
        let kk = crun k in
        fun c ->
          let chain = Array.unsafe_get c.chains cs in
          let threshold = c.pkt.Packet.Pkt.ts_ns - age_ns in
          let freed = State.Dchain.expire_before chain ~threshold in
          (match freed with
          | [] -> c.on_op ev0
          | _ ->
              for i = 0 to Array.length purgers - 1 do
                (Array.unsafe_get purgers i) c freed
              done;
              c.on_op
                {
                  Interp.obj;
                  kind = Interp.Op_chain_expire;
                  write = true;
                  expired = List.length freed;
                });
          kk c
    | Sketch_touch { obj; key; k } -> (
        let ev = event obj Interp.Op_sketch_touch in
        let ss = obj_slot reg.r_sketches obj in
        let kk = crun k in
        match ckey key with
        | `Packed kc ->
            fun c ->
              c.on_op ev;
              State.Sketch.increment_packed (Array.unsafe_get c.sketches ss) (kc c);
              kk c
        | `Wide kc ->
            fun c ->
              c.on_op ev;
              State.Sketch.increment (Array.unsafe_get c.sketches ss)
                (Bytes.unsafe_to_string (kc c));
              kk c)
    | Sketch_query { obj; key; count; k } -> (
        let ev = event obj Interp.Op_sketch_query in
        let ss = obj_slot reg.r_sketches obj in
        let ns = var_slot count in
        let kk = crun k in
        match ckey key with
        | `Packed kc ->
            fun c ->
              c.on_op ev;
              Array.unsafe_set c.ints ns
                (State.Sketch.count_packed (Array.unsafe_get c.sketches ss) (kc c));
              kk c
        | `Wide kc ->
            fun c ->
              c.on_op ev;
              Array.unsafe_set c.ints ns
                (State.Sketch.count (Array.unsafe_get c.sketches ss)
                   (Bytes.unsafe_to_string (kc c)));
              kk c)
    | Set_field (f, e, k) ->
        let ge = cexpr e in
        let kk = crun k in
        fun c ->
          c.pkt <- Interp.set_pkt_field c.pkt f (ge c);
          kk c
    | Forward e ->
        let ge = cexpr e in
        let devices = nf.devices in
        fun c ->
          let port = ge c in
          if port < 0 || port >= devices then fail "forward to unknown device %d" port;
          Interp.Fwd (port, c.pkt)
    | Drop -> fun _ -> Interp.Dropped
  in
  let entry = crun nf.process in
  let names tbl =
    let a = Array.make (Hashtbl.length tbl) "" in
    Hashtbl.iter (fun name i -> a.(i) <- name) tbl;
    a
  in
  {
    entry;
    n_ints = reg.r_n_vars;
    rec_lens = Array.of_list (List.rev reg.r_rec_lens);
    map_names = names reg.r_maps;
    vec_names = names reg.r_vecs;
    chain_names = names reg.r_chains;
    sketch_names = names reg.r_sketches;
    scratch_sizes = Array.of_list (List.rev reg.r_scratch);
  }

let dummy_pkt = Packet.Pkt.make ~ip_src:0 ~ip_dst:0 ~src_port:0 ~dst_port:0 ()

let bind t instance =
  let resolve kind name f =
    match Instance.find instance name with
    | o -> (
        match f o with
        | Some x -> x
        | None -> invalid_arg (Printf.sprintf "Compile.bind: %s is not a %s" name kind))
    | exception Not_found ->
        invalid_arg (Printf.sprintf "Compile.bind: no object named %s" name)
  in
  let b_ctx =
    {
      ints = Array.make (max t.n_ints 1) 0;
      recs = Array.map (fun n -> Array.make (max n 1) 0) t.rec_lens;
      maps =
        Array.map
          (fun n -> resolve "map" n (function Instance.O_map m -> Some m | _ -> None))
          t.map_names;
      vecs =
        Array.map
          (fun n ->
            resolve "vector" n (function Instance.O_vector (_, s) -> Some s | _ -> None))
          t.vec_names;
      chains =
        Array.map
          (fun n -> resolve "chain" n (function Instance.O_chain c -> Some c | _ -> None))
          t.chain_names;
      sketches =
        Array.map
          (fun n ->
            resolve "sketch" n (function Instance.O_sketch s -> Some s | _ -> None))
          t.sketch_names;
      scratch = Array.map Bytes.create t.scratch_sizes;
      pkt = dummy_pkt;
      on_op = nop_op;
    }
  in
  { b_ctx; b_entry = t.entry }

let process ?(on_op = nop_op) b pkt =
  let c = b.b_ctx in
  c.pkt <- pkt;
  c.on_op <- on_op;
  let r = b.b_entry c in
  c.on_op <- nop_op;
  r

(* Compiled-vs-interpreter dispatch, so every execution site (pool
   workers, the deterministic runtime, the simulator) selects the path
   from one switch. *)

let enabled = ref true
let set_default b = enabled := b
let default_enabled () = !enabled

type staged = S_compiled of t | S_interp of Ast.t * Check.info

type runner =
  | R_compiled of bound
  | R_interp of Ast.t * Check.info * Instance.t

let stage_runner ?compiled nf info =
  let compiled = match compiled with Some b -> b | None -> !enabled in
  if compiled then S_compiled (stage nf info) else S_interp (nf, info)

let bind_runner s instance =
  match s with
  | S_compiled t -> R_compiled (bind t instance)
  | S_interp (nf, info) -> R_interp (nf, info, instance)

let make_runner ?compiled nf info instance =
  bind_runner (stage_runner ?compiled nf info) instance

let run ?on_op r pkt =
  match r with
  | R_compiled b -> process ?on_op b pkt
  | R_interp (nf, info, instance) -> Interp.process ?on_op nf info instance pkt

let is_compiled = function R_compiled _ -> true | R_interp _ -> false
