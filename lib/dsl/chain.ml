(* Service-chain composition (ROADMAP item 2): flatten a list of NF
   instances into ONE composed AST so the whole chain is symbolically
   executed, sharded and staged exactly like a single NF.

   Verdict routing is the NetKAT [Seq]/[Filter] discipline: a packet a
   stage [Forward]s flows into the next stage (the intermediate egress
   port is erased — inside a chain "forward" means "continue"), a [Drop]
   short-circuits the remaining stages, and the final stage's action is
   the chain's verdict.  The flattening substitutes stage [i+1]'s
   statement tree for every [Forward] leaf of stage [i], so the staged
   compiler sees one closure tree: one packet parse, every stage's record
   layouts baked, no allocation and no dispatch between stages.

   Every stage's state objects, int/record bindings and purge pairs are
   renamed under a per-stage prefix ([s<i>_<name>_]) before splicing —
   [Check.check] requires globally unambiguous binding names and unique
   state declarations, and the prefix keeps blocked-sharding reasons
   self-describing: "s2_nat_nat_ports is keyed by ..." names the stage
   that forced the ladder down. *)

open Ast

type stage = { index : int; name : string; prefix : string; nf : Ast.t }

type t = { name : string; devices : int; stages : stage list; composed : Ast.t }

let sanitize name =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_') name

let stage_prefix i name = Printf.sprintf "s%d_%s_" i (sanitize name)

(* --- per-stage renaming ----------------------------------------------------- *)

let rec rename_expr p = function
  | Var x -> Var (p ^ x)
  | Record_field (r, f) -> Record_field (p ^ r, f)
  | Bin (op, a, b) -> Bin (op, rename_expr p a, rename_expr p b)
  | Not e -> Not (rename_expr p e)
  | Cast (w, e) -> Cast (w, rename_expr p e)
  | (Const _ | Field _ | In_port | Now | Pkt_len) as e -> e

let rename_key p key = List.map (rename_expr p) key

let rec rename_stmt p = function
  | If (c, t, f) -> If (rename_expr p c, rename_stmt p t, rename_stmt p f)
  | Let (x, e, k) -> Let (p ^ x, rename_expr p e, rename_stmt p k)
  | Map_get { obj; key; found; value; k } ->
      Map_get
        {
          obj = p ^ obj;
          key = rename_key p key;
          found = p ^ found;
          value = p ^ value;
          k = rename_stmt p k;
        }
  | Map_put { obj; key; value; ok; k } ->
      Map_put
        {
          obj = p ^ obj;
          key = rename_key p key;
          value = rename_expr p value;
          ok = p ^ ok;
          k = rename_stmt p k;
        }
  | Map_erase { obj; key; k } ->
      Map_erase { obj = p ^ obj; key = rename_key p key; k = rename_stmt p k }
  | Vec_get { obj; index; record; k } ->
      Vec_get
        { obj = p ^ obj; index = rename_expr p index; record = p ^ record; k = rename_stmt p k }
  | Vec_set { obj; index; fields; k } ->
      Vec_set
        {
          obj = p ^ obj;
          index = rename_expr p index;
          fields = List.map (fun (f, e) -> (f, rename_expr p e)) fields;
          k = rename_stmt p k;
        }
  | Chain_alloc { obj; index; k_ok; k_fail } ->
      Chain_alloc
        {
          obj = p ^ obj;
          index = p ^ index;
          k_ok = rename_stmt p k_ok;
          k_fail = rename_stmt p k_fail;
        }
  | Chain_rejuv { obj; index; k } ->
      Chain_rejuv { obj = p ^ obj; index = rename_expr p index; k = rename_stmt p k }
  | Chain_expire { obj; purges; age_ns; k } ->
      Chain_expire
        {
          obj = p ^ obj;
          purges = List.map (fun (m, v) -> (p ^ m, p ^ v)) purges;
          age_ns;
          k = rename_stmt p k;
        }
  | Sketch_touch { obj; key; k } ->
      Sketch_touch { obj = p ^ obj; key = rename_key p key; k = rename_stmt p k }
  | Sketch_query { obj; key; count; k } ->
      Sketch_query
        { obj = p ^ obj; key = rename_key p key; count = p ^ count; k = rename_stmt p k }
  | Set_field (f, e, k) -> Set_field (f, rename_expr p e, rename_stmt p k)
  | Forward e -> Forward (rename_expr p e)
  | Drop -> Drop

let rename_decl p = function
  | Decl_map r -> Decl_map { r with name = p ^ r.name }
  | Decl_vector r -> Decl_vector { r with name = p ^ r.name }
  | Decl_chain r -> Decl_chain { r with name = p ^ r.name }
  | Decl_sketch r -> Decl_sketch { r with name = p ^ r.name }

(* --- verdict splicing ------------------------------------------------------- *)

(* Substitute [next] for every [Forward] leaf of one (already renamed)
   stage tree.  [Drop] leaves stand: a dropped packet never reaches the
   rest of the chain. *)
let rec splice next = function
  | If (c, t, f) -> If (c, splice next t, splice next f)
  | Let (x, e, k) -> Let (x, e, splice next k)
  | Map_get r -> Map_get { r with k = splice next r.k }
  | Map_put r -> Map_put { r with k = splice next r.k }
  | Map_erase r -> Map_erase { r with k = splice next r.k }
  | Vec_get r -> Vec_get { r with k = splice next r.k }
  | Vec_set r -> Vec_set { r with k = splice next r.k }
  | Chain_alloc r -> Chain_alloc { r with k_ok = splice next r.k_ok; k_fail = splice next r.k_fail }
  | Chain_rejuv r -> Chain_rejuv { r with k = splice next r.k }
  | Chain_expire r -> Chain_expire { r with k = splice next r.k }
  | Sketch_touch r -> Sketch_touch { r with k = splice next r.k }
  | Sketch_query r -> Sketch_query { r with k = splice next r.k }
  | Set_field (f, e, k) -> Set_field (f, e, splice next k)
  | Forward _ -> next
  | Drop -> Drop

let rec forward_ports acc = function
  | If (_, t, f) -> forward_ports (forward_ports acc t) f
  | Let (_, _, k)
  | Map_get { k; _ }
  | Map_put { k; _ }
  | Map_erase { k; _ }
  | Vec_get { k; _ }
  | Vec_set { k; _ }
  | Chain_rejuv { k; _ }
  | Chain_expire { k; _ }
  | Sketch_touch { k; _ }
  | Sketch_query { k; _ }
  | Set_field (_, _, k) ->
      forward_ports acc k
  | Chain_alloc { k_ok; k_fail; _ } -> forward_ports (forward_ports acc k_ok) k_fail
  | Forward e -> e :: acc
  | Drop -> acc

(* --- composition ------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let check_stage st =
  match Check.check st.nf with
  | Ok _ -> Ok ()
  | Error errs ->
      Error
        (Printf.sprintf "chain stage %d (%s): %s" st.index st.name (String.concat "; " errs))

(* A non-final stage's [Forward] port is erased by the splice, which is
   only sound when the port expression is pure and the forward itself
   cannot fail at runtime: require a constant port within the stage's own
   device range (every shipped NF forwards via [Topo.fwd]). *)
let check_spliceable st =
  let bad =
    List.filter
      (fun e ->
        match e with Const (_, p) -> p < 0 || p >= st.nf.devices | _ -> true)
      (forward_ports [] st.nf.process)
  in
  match bad with
  | [] -> Ok ()
  | e :: _ ->
      Error
        (Format.asprintf
           "chain stage %d (%s): forward port %a is not a constant in-range port, cannot \
            fuse a later stage after it"
           st.index st.name pp_expr e)

let compose ?name nfs =
  match nfs with
  | [] -> Error "chain: empty stage list"
  | _ ->
      let stages =
        List.mapi
          (fun i (nf : Ast.t) ->
            { index = i; name = nf.Ast.name; prefix = stage_prefix i nf.Ast.name; nf })
          nfs
      in
      let n = List.length stages in
      let rec validate = function
        | [] -> Ok ()
        | st :: rest ->
            let* () = check_stage st in
            let* () = if st.index < n - 1 then check_spliceable st else Ok () in
            validate rest
      in
      let* () = validate stages in
      let devices = (List.hd stages).nf.devices in
      (* the final stage's runtime forward bound is the composed device
         count; keeping them identical keeps the fused chain and the
         per-stage oracle bounds-checking the same range *)
      let* () =
        match List.find_opt (fun (st : stage) -> st.nf.devices <> devices) stages with
        | Some st ->
            Error
              (Printf.sprintf
                 "chain stage %d (%s): %d devices, but stage 0 (%s) has %d — chain stages \
                  must share one device count"
                 st.index st.name st.nf.devices (List.hd stages).name devices)
        | None -> Ok ()
      in
      let name =
        match name with
        | Some n -> n
        | None -> "chain_" ^ String.concat "_" (List.map (fun (st : stage) -> sanitize st.name) stages)
      in
      let state =
        List.concat_map (fun (st : stage) -> List.map (rename_decl st.prefix) st.nf.state) stages
      in
      let rec build = function
        | [] -> assert false
        | [ last ] -> rename_stmt last.prefix last.nf.process
        | st :: rest -> splice (build rest) (rename_stmt st.prefix st.nf.process)
      in
      let composed = { Ast.name; devices; state; process = build stages } in
      (* by construction this holds whenever every stage checks; surface a
         composition bug instead of letting it escape as a later check_exn *)
      let* () =
        match Check.check composed with
        | Ok _ -> Ok ()
        | Error errs ->
            Error (Printf.sprintf "chain %s: composed AST fails check: %s" name
                     (String.concat "; " errs))
      in
      Ok { name; devices; stages; composed }

let compose_exn ?name nfs =
  match compose ?name nfs with Ok t -> t | Error e -> invalid_arg e

let nf t = t.composed

let stage_of_obj t obj =
  List.find_opt
    (fun (st : stage) -> String.length obj > String.length st.prefix && String.starts_with ~prefix:st.prefix obj)
    t.stages

let original_obj t obj =
  Option.map
    (fun (st : stage) ->
      (st, String.sub obj (String.length st.prefix) (String.length obj - String.length st.prefix)))
    (stage_of_obj t obj)

(* --- predicate combinators (the NetKAT Filter / Par shapes) ----------------- *)

let filter ?(devices = 2) ~name pred =
  { Ast.name; devices; state = []; process = If (pred, Forward (const ~width:16 0), Drop) }

let branch ?name pred (a : Ast.t) (b : Ast.t) =
  let mk i (nf : Ast.t) =
    { index = i; name = nf.Ast.name; prefix = stage_prefix i nf.Ast.name; nf }
  in
  let sa = mk 0 a and sb = mk 1 b in
  let* () = check_stage sa in
  let* () = check_stage sb in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "branch_%s_%s" (sanitize a.Ast.name) (sanitize b.Ast.name)
  in
  let* () =
    if a.Ast.devices = b.Ast.devices then Ok ()
    else
      Error
        (Printf.sprintf "branch: %s has %d devices but %s has %d — branch arms must share \
                         one device count"
           a.Ast.name a.Ast.devices b.Ast.name b.Ast.devices)
  in
  let composed =
    {
      Ast.name;
      devices = a.Ast.devices;
      state =
        List.map (rename_decl sa.prefix) a.Ast.state
        @ List.map (rename_decl sb.prefix) b.Ast.state;
      process = If (pred, rename_stmt sa.prefix a.Ast.process, rename_stmt sb.prefix b.Ast.process);
    }
  in
  match Check.check composed with
  | Ok _ -> Ok composed
  | Error errs ->
      Error
        (Printf.sprintf "branch %s: composed AST fails check: %s" name (String.concat "; " errs))

(* --- the sequential interpreter composition oracle -------------------------- *)

type oracle = { o_stages : (stage * Check.info * Instance.t) list }

let oracle t =
  {
    o_stages =
      List.map (fun (st : stage) -> (st, Check.check_exn st.nf, Instance.create st.nf)) t.stages;
  }

let oracle_process ?(on_op = fun _ -> ()) o pkt =
  let rec go stages pkt =
    match stages with
    | [] -> assert false
    | (st, info, inst) :: rest -> (
        let on_op (e : Interp.op_event) =
          on_op { e with Interp.obj = st.prefix ^ e.Interp.obj }
        in
        match (Interp.process ~on_op st.nf info inst pkt, rest) with
        | Interp.Dropped, _ -> Interp.Dropped
        | Interp.Fwd (_, pkt'), _ :: _ -> go rest pkt'
        | (Interp.Fwd _ as act), [] -> act)
  in
  go o.o_stages pkt

(* --- staging ----------------------------------------------------------------- *)

let stage_compiled t = Compile.stage t.composed (Check.check_exn t.composed)
