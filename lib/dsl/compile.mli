(** Staged compilation of NF programs to packet-processing closures.

    {!stage} resolves, once per program, everything {!Interp.process}
    re-derives per packet: variable and record bindings become fixed
    slots in a preallocated frame, expression widths become baked-in
    mask constants, record layouts become field indices, and container
    keys that fit {!State.Key.max_packed_bytes} are assembled as tagged
    ints driving the allocation-free [_packed] operations of
    {!State.Map_s} and {!State.Sketch} (wider keys keep the string
    path, serialized through a per-site scratch buffer).

    The compiled closure is observationally identical to the
    interpreter — same verdicts, same [on_op] event stream, same
    {!Interp.Runtime_error} conditions — which the differential suite
    in [test/test_compile.ml] checks against every shipped NF.  The
    interpreter remains the reference semantics; the compiled path is
    the per-core datapath the runtime uses by default (paper §7: the
    per-core packet loop is what sharding leaves on the critical
    path). *)

type t
(** A staged program: instance-independent, reusable across binds. *)

type bound
(** A staged program bound to one {!Instance} with its own execution
    frame.  A [bound] value is single-threaded — bind once per worker;
    binds over the same instance share state but not frames. *)

val stage : Ast.t -> Check.info -> t
(** One-time compilation, timed under the [compile.stage] telemetry
    span. *)

val bind : t -> Instance.t -> bound
(** Resolve container objects and preallocate the frame.  Raises
    [Invalid_argument] if the instance lacks an object the program
    uses or binds it to the wrong kind. *)

val process :
  ?on_op:(Interp.op_event -> unit) -> bound -> Packet.Pkt.t -> Interp.action
(** Run one packet.  Same contract as {!Interp.process}; on NFs whose
    keys all pack, the only per-packet allocation is the [Fwd] verdict
    (plus one string per wide-key operation otherwise). *)

(** {1 Execution-path dispatch}

    Every execution site (pool workers, the deterministic runtime, the
    simulator, the CLI) selects interpreter vs compiled through a
    [runner], so one switch — [--compiled-nf] / [--interp] — controls
    them all. *)

val set_default : bool -> unit
(** Process-wide default for {!stage_runner} and {!make_runner} when
    [?compiled] is omitted.  Initially [true]. *)

val default_enabled : unit -> bool

type staged
(** A runner before instance binding: stage once, bind per worker. *)

type runner

val stage_runner : ?compiled:bool -> Ast.t -> Check.info -> staged

val bind_runner : staged -> Instance.t -> runner

val make_runner : ?compiled:bool -> Ast.t -> Check.info -> Instance.t -> runner

val run : ?on_op:(Interp.op_event -> unit) -> runner -> Packet.Pkt.t -> Interp.action

val is_compiled : runner -> bool
