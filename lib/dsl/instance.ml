type record = int array

type obj =
  | O_map of State.Map_s.t
  | O_vector of (string * int) list * record array
  | O_chain of State.Dchain.t
  | O_sketch of State.Sketch.t

type t = { objs : (string, obj) Hashtbl.t; divide : int }

let scaled divide capacity = max 1 (capacity / divide)

let build divide objs (decl : Ast.state_decl) =
  match decl with
  | Ast.Decl_map { name; capacity; init } ->
      let m = State.Map_s.create ~capacity:(max (scaled divide capacity) (List.length init)) in
      List.iter (fun (k, v) -> ignore (State.Map_s.put m k v)) init;
      Hashtbl.replace objs name (O_map m)
  | Ast.Decl_vector { name; capacity; layout } ->
      let slots =
        Array.init (scaled divide capacity) (fun _ -> Array.make (List.length layout) 0)
      in
      Hashtbl.replace objs name (O_vector (layout, slots))
  | Ast.Decl_chain { name; capacity } ->
      Hashtbl.replace objs name (O_chain (State.Dchain.create ~capacity:(scaled divide capacity)))
  | Ast.Decl_sketch { name; depth; width } ->
      Hashtbl.replace objs name (O_sketch (State.Sketch.create ~depth ~width ()))

let create ?(divide = 1) (nf : Ast.t) =
  if divide < 1 then invalid_arg "Instance.create: divide";
  let objs = Hashtbl.create 16 in
  List.iter (build divide objs) nf.Ast.state;
  { objs; divide }

let find t name = Hashtbl.find t.objs name

let record_bytes layout =
  (List.fold_left (fun acc (_, w) -> acc + w) 0 layout + 7) / 8

let memory_bytes t name =
  match find t name with
  | O_map m -> State.Map_s.capacity m * 24 (* bucket + key ref + value *)
  | O_vector (layout, slots) -> Array.length slots * record_bytes layout
  | O_chain c -> State.Dchain.capacity c * 16
  | O_sketch s -> State.Sketch.memory_bytes s

let total_memory_bytes t = Hashtbl.fold (fun name _ acc -> acc + memory_bytes t name) t.objs 0

let copy t =
  let objs = Hashtbl.create (Hashtbl.length t.objs) in
  Hashtbl.iter
    (fun name obj ->
      let dup =
        match obj with
        | O_map m -> O_map (State.Map_s.copy m)
        | O_vector (layout, slots) -> O_vector (layout, Array.map Array.copy slots)
        | O_chain c -> O_chain (State.Dchain.copy c)
        | O_sketch s -> O_sketch (State.Sketch.copy s)
      in
      Hashtbl.replace objs name dup)
    t.objs;
  { objs; divide = t.divide }

let reset t (nf : Ast.t) =
  Hashtbl.reset t.objs;
  List.iter (build t.divide t.objs) nf.Ast.state
