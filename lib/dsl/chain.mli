(** Service-chain composition: flatten a list of NFs into ONE composed
    AST so the whole chain is checked, symbolically executed, sharded
    and staged exactly like a single NF (ROADMAP item 2).

    {2 Verdict routing}

    Stages run in list order against the {e same} packet view: a stage
    that [Forward]s hands the (possibly rewritten) packet to the next
    stage — inside a chain "forward" means "continue", and the
    intermediate egress port is erased — while [Drop] short-circuits the
    rest of the chain.  The final stage's action is the chain's verdict.
    Every stage observes the original ingress port ([In_port] is never
    rewritten), so a per-port RSS key solved for the composed AST steers
    the whole chain consistently.

    {2 Namespacing}

    Flattening renames each stage's state objects, int/record bindings
    and purge pairs under the prefix [s<i>_<name>_].  The prefix keeps
    {!Check.check}'s global-unambiguity rules satisfied (the same NF can
    even appear twice in one chain) and makes every sharding diagnostic
    self-describing: a blocked reason mentioning [s2_nat_nat_ports]
    names the stage that forced the ladder down.

    {2 Fusion}

    Stage [i+1]'s statement tree is spliced in place of every [Forward]
    leaf of stage [i], so {!Compile.stage} on the composed AST yields a
    single closure tree: one packet parse, every stage's record layouts
    baked at stage time, no allocation and no dispatch between stages.
    This requires every non-final stage to forward through a constant
    in-range port (all registry NFs do, via [Topo.fwd]); {!compose}
    rejects the chain otherwise. *)

type stage = {
  index : int;  (** position in the chain, 0-based *)
  name : string;  (** the stage NF's own name *)
  prefix : string;  (** namespace prefix applied to its objects/bindings *)
  nf : Ast.t;  (** the original, un-renamed stage NF *)
}

type t = {
  name : string;
  devices : int;
  stages : stage list;
  composed : Ast.t;  (** the flattened chain — use it anywhere an NF goes *)
}

val compose : ?name:string -> Ast.t list -> (t, string) result
(** Flatten the stages, in order, into one NF.  [name] defaults to
    [chain_<s0>_<s1>_...].  Errors (never exceptions): an empty list, a
    stage that fails {!Check.check}, a non-final stage with a
    non-constant or out-of-range forward port, or stages that disagree
    on device count. *)

val compose_exn : ?name:string -> Ast.t list -> t

val nf : t -> Ast.t
(** [nf t = t.composed]. *)

val stage_of_obj : t -> string -> stage option
(** Map a namespaced state-object (or binding) name back to its stage —
    the inverse of the flattening rename, for attributing sharding
    constraints and ladder reasons to stages. *)

val original_obj : t -> string -> (stage * string) option
(** Like {!stage_of_obj} but also strips the prefix. *)

val filter : ?devices:int -> name:string -> Ast.expr -> Ast.t
(** A stateless predicate stage (the NetKAT [Filter] shape): packets
    satisfying the condition continue down the chain, others drop.
    [devices] defaults to 2. *)

val branch : ?name:string -> Ast.expr -> Ast.t -> Ast.t -> (Ast.t, string) result
(** [branch pred a b] — predicate branching with verdict routing: the
    packet traverses [a] when [pred] holds and [b] otherwise, with both
    arms' state namespaced apart.  The result is an ordinary NF, usable
    standalone or as a chain stage.  Errors mirror {!compose}. *)

(** {2 The differential oracle}

    The reference semantics of a chain is the {e sequential interpreter
    composition}: run each stage's original NF through {!Interp.process}
    against its own state instance, thread [Fwd] packets to the next
    stage, stop on [Drop].  Op events are re-namespaced with the stage
    prefix so the event stream is comparable, event for event, with a
    run of the fused AST. *)

type oracle

val oracle : t -> oracle
(** Fresh per-stage instances (full capacity, like any sequential run). *)

val oracle_process : ?on_op:(Interp.op_event -> unit) -> oracle -> Packet.Pkt.t -> Interp.action

val stage_compiled : t -> Compile.t
(** Stage the fused chain: [Compile.stage] over the composed AST — one
    closure tree for the whole chain. *)
