(** Concrete interpretation of NF programs — the sequential NF itself, and
    the per-core worker of every parallel implementation Maestro generates.

    Besides the packet verdict, the interpreter can report each stateful
    operation as it executes ([on_op]); the parallel runtimes use this to
    drive lock/transaction choreography and the performance model uses it to
    count memory touches. *)

type action =
  | Fwd of int * Packet.Pkt.t  (** output device, possibly rewritten packet *)
  | Dropped

type op_kind =
  | Op_map_get
  | Op_map_put
  | Op_map_erase
  | Op_vec_get
  | Op_vec_set
  | Op_chain_alloc
  | Op_chain_rejuv
  | Op_chain_expire
  | Op_sketch_touch
  | Op_sketch_query

type op_event = { obj : string; kind : op_kind; write : bool; expired : int }
(** [expired]: flows cleaned by a [Chain_expire] (0 elsewhere). *)

val op_is_write : op_kind -> bool
(** Whether the operation mutates state.  [Chain_expire] only counts as a
    write when it actually expired something — the basis for the paper's
    read-packet / write-packet distinction (§3.6). *)

val process :
  ?on_op:(op_event -> unit) -> Ast.t -> Check.info -> Instance.t -> Packet.Pkt.t -> action
(** Run one packet through the NF against the given state instance.  The
    packet's [port] is the input device and its [ts_ns] the current time. *)

exception Runtime_error of string
(** Raised on conditions {!Check.check} already rejects; reaching it means a
    malformed NF bypassed validation. *)

val set_pkt_field : Packet.Pkt.t -> Packet.Field.t -> int -> Packet.Pkt.t
(** Functional header-field update — shared with {!Compile} so both
    execution paths rewrite packets identically. *)
