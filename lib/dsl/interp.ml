open Ast

type action = Fwd of int * Packet.Pkt.t | Dropped

type op_kind =
  | Op_map_get
  | Op_map_put
  | Op_map_erase
  | Op_vec_get
  | Op_vec_set
  | Op_chain_alloc
  | Op_chain_rejuv
  | Op_chain_expire
  | Op_sketch_touch
  | Op_sketch_query

type op_event = { obj : string; kind : op_kind; write : bool; expired : int }

let op_is_write = function
  | Op_map_put | Op_map_erase | Op_vec_set | Op_chain_alloc | Op_chain_rejuv | Op_sketch_touch
    ->
      true
  | Op_map_get | Op_vec_get | Op_sketch_query | Op_chain_expire -> false

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type env = { vars : (string * int) list; records : (string * Instance.record) list }

let mask width v = if width >= 62 then v else v land ((1 lsl width) - 1)

let set_pkt_field (p : Packet.Pkt.t) f v : Packet.Pkt.t = Packet.Pkt.set_field p f v

let find_field layout r f =
  let rec go i = function
    | [] -> fail "record has no field %s" f
    | (g, _) :: rest -> if String.equal f g then r.(i) else go (i + 1) rest
  in
  go 0 layout

let process ?(on_op = fun _ -> ()) (nf : Ast.t) info instance (pkt0 : Packet.Pkt.t) =
  (* layouts are immutable per program: derive each record's layout once
     per call instead of once per field access *)
  let layout_cache = Hashtbl.create 8 in
  let layout_of r =
    match Hashtbl.find_opt layout_cache r with
    | Some l -> l
    | None ->
        let l = Check.record_layout info r in
        Hashtbl.add layout_cache r l;
        l
  in
  let rec eval env (pkt : Packet.Pkt.t) e =
    match e with
    | Const (w, v) -> mask w v
    | Field f -> Packet.Pkt.field_int pkt f
    | In_port -> pkt.Packet.Pkt.port
    | Now -> pkt.Packet.Pkt.ts_ns
    | Pkt_len -> pkt.Packet.Pkt.size
    | Var x -> (
        match List.assoc_opt x env.vars with
        | Some v -> v
        | None -> fail "unbound variable %s" x)
    | Record_field (r, f) -> (
        match List.assoc_opt r env.records with
        | Some record -> find_field (layout_of r) record f
        | None -> fail "unbound record %s" r)
    | Bin (op, a, b) -> (
        let va = eval env pkt a and vb = eval env pkt b in
        let w = max (Check.expr_width info a) (Check.expr_width info b) in
        match op with
        | Add -> mask w (va + vb)
        | Sub -> mask w (va - vb)
        | Mul -> mask w (va * vb)
        | Div -> if vb = 0 then 0 else mask w (va / vb)
        | Mod -> if vb = 0 then 0 else mask w (va mod vb)
        | Eq -> if va = vb then 1 else 0
        | Neq -> if va <> vb then 1 else 0
        | Lt -> if va < vb then 1 else 0
        | Le -> if va <= vb then 1 else 0
        | Land -> va land vb
        | Lor -> va lor vb)
    | Not a -> 1 - eval env pkt a
    | Cast (w, a) -> mask w (eval env pkt a)
  in
  let eval_key env pkt key =
    key_of_parts (List.map (fun e -> (Check.expr_width info e, eval env pkt e)) key)
  in
  let the_map obj =
    match Instance.find instance obj with O_map m -> m | _ -> fail "%s is not a map" obj
  in
  let the_vector obj =
    match Instance.find instance obj with
    | O_vector (layout, slots) -> (layout, slots)
    | _ -> fail "%s is not a vector" obj
  in
  let the_chain obj =
    match Instance.find instance obj with O_chain c -> c | _ -> fail "%s is not a chain" obj
  in
  let the_sketch obj =
    match Instance.find instance obj with O_sketch s -> s | _ -> fail "%s is not a sketch" obj
  in
  let emit obj kind ?(expired = 0) () =
    let write = match kind with Op_chain_expire -> expired > 0 | _ -> op_is_write kind in
    on_op { obj; kind; write; expired }
  in
  let rec run env pkt stmt =
    match stmt with
    | If (c, t, f) -> if eval env pkt c = 1 then run env pkt t else run env pkt f
    | Let (x, e, k) -> run { env with vars = (x, eval env pkt e) :: env.vars } pkt k
    | Map_get { obj; key; found; value; k } ->
        emit obj Op_map_get ();
        let m = the_map obj in
        let f, v =
          match State.Map_s.get m (eval_key env pkt key) with
          | Some v -> (1, v)
          | None -> (0, 0)
        in
        run { env with vars = (found, f) :: (value, v) :: env.vars } pkt k
    | Map_put { obj; key; value; ok; k } ->
        emit obj Op_map_put ();
        let m = the_map obj in
        let r = if State.Map_s.put m (eval_key env pkt key) (eval env pkt value) then 1 else 0 in
        run { env with vars = (ok, r) :: env.vars } pkt k
    | Map_erase { obj; key; k } ->
        emit obj Op_map_erase ();
        ignore (State.Map_s.erase (the_map obj) (eval_key env pkt key));
        run env pkt k
    | Vec_get { obj; index; record; k } ->
        emit obj Op_vec_get ();
        let _, slots = the_vector obj in
        let i = eval env pkt index in
        if i < 0 || i >= Array.length slots then fail "vec_get %s: index %d out of range" obj i;
        run { env with records = (record, Array.copy slots.(i)) :: env.records } pkt k
    | Vec_set { obj; index; fields; k } ->
        emit obj Op_vec_set ();
        let layout, slots = the_vector obj in
        let i = eval env pkt index in
        if i < 0 || i >= Array.length slots then fail "vec_set %s: index %d out of range" obj i;
        List.iter
          (fun (f, e) ->
            let rec pos j = function
              | [] -> fail "vec_set %s: unknown field %s" obj f
              | (g, _) :: rest -> if String.equal f g then j else pos (j + 1) rest
            in
            slots.(i).(pos 0 layout) <- eval env pkt e)
          fields;
        run env pkt k
    | Chain_alloc { obj; index; k_ok; k_fail } -> (
        emit obj Op_chain_alloc ();
        match State.Dchain.allocate (the_chain obj) ~now:pkt.Packet.Pkt.ts_ns with
        | Some i -> run { env with vars = (index, i) :: env.vars } pkt k_ok
        | None -> run env pkt k_fail)
    | Chain_rejuv { obj; index; k } ->
        emit obj Op_chain_rejuv ();
        ignore
          (State.Dchain.rejuvenate (the_chain obj) (eval env pkt index) ~now:pkt.Packet.Pkt.ts_ns);
        run env pkt k
    | Chain_expire { obj; purges; age_ns; k } ->
        let chain = the_chain obj in
        let threshold = pkt.Packet.Pkt.ts_ns - age_ns in
        let freed = State.Dchain.expire_before chain ~threshold in
        List.iter
          (fun (map, keyvec) ->
            let m = the_map map in
            let layout, slots = the_vector keyvec in
            List.iter
              (fun i ->
                let key =
                  key_of_parts (List.mapi (fun j (_, w) -> (w, slots.(i).(j))) layout)
                in
                ignore (State.Map_s.erase m key))
              freed)
          purges;
        emit obj Op_chain_expire ~expired:(List.length freed) ();
        run env pkt k
    | Sketch_touch { obj; key; k } ->
        emit obj Op_sketch_touch ();
        State.Sketch.increment (the_sketch obj) (eval_key env pkt key);
        run env pkt k
    | Sketch_query { obj; key; count; k } ->
        emit obj Op_sketch_query ();
        let c = State.Sketch.count (the_sketch obj) (eval_key env pkt key) in
        run { env with vars = (count, c) :: env.vars } pkt k
    | Set_field (f, e, k) ->
        let v = eval env pkt e in
        run env (set_pkt_field pkt f v) k
    | Forward e ->
        let port = eval env pkt e in
        if port < 0 || port >= nf.devices then fail "forward to unknown device %d" port;
        Fwd (port, pkt)
    | Drop -> Dropped
  in
  run { vars = []; records = [] } pkt0 nf.process
