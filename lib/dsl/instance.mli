(** Allocated state for one NF instance.

    The sequential NF uses a single instance; a shared-nothing parallel NF
    uses one instance per core with capacities divided so the total memory
    stays constant (paper §4, "State sharding"); lock-based and TM NFs share
    one full-capacity instance between cores. *)

type record = int array
(** A vector slot, fields in layout order. *)

type obj =
  | O_map of State.Map_s.t
  | O_vector of (string * int) list * record array  (** layout, slots *)
  | O_chain of State.Dchain.t
  | O_sketch of State.Sketch.t

type t

val create : ?divide:int -> Ast.t -> t
(** [divide] (default 1) scales every capacity down to
    [max 1 (capacity / divide)]; sketch dimensions are kept (a sketch is an
    estimator, not an allocator).  Map [init] entries are loaded into every
    instance — static configuration is replicated, as Maestro's generated
    code replicates read-only state. *)

val find : t -> string -> obj
(** Raises [Not_found] for undeclared objects (excluded by {!Check}). *)

val memory_bytes : t -> string -> int
(** Approximate resident bytes of one object, for the cache model. *)

val total_memory_bytes : t -> int

val copy : t -> t
(** Deep, structurally-exact duplicate of every object: dchain free-list
    and recency order, map probe layouts and sketch counters are all
    preserved, so two copies driven by the same operation sequence evolve
    in lockstep ({!State.Dchain.copy}).  Discipline switching uses this to
    seed SCR replicas from migrated state and to clone a lock-rung
    instance into per-replica state. *)

val reset : t -> Ast.t -> unit
(** Restore start-up state (map init entries included). *)
