(** The per-packet cycle model.

    Parameters are calibrated once against the paper's testbed (§6.2) and
    then held fixed across every experiment: the *shapes* of the figures
    must emerge from the mechanisms (cache locality, lock serialization,
    transaction aborts), not from per-figure tuning. *)

type params = {
  base_cycles : float;  (** rx + parse + tx + descriptor handling *)
  op_compute_cycles : float;  (** bookkeeping per stateful operation *)
  accesses_per_op : float;  (** memory touches per stateful operation *)
  l1_cycles : float;
  l2_cycles : float;
  llc_cycles : float;
  dram_cycles : float;
  read_lock_cycles : float;  (** core-local atomic flag *)
  remote_lock_cycles : float;  (** one remote per-core flag (cache-line transfer) *)
  write_section_factor : float;
      (** speculative restart: wasted read pass + full write pass *)
  tm_cycle_factor : float;  (** RTM instrumentation overhead *)
  tm_enter_cycles : float;  (** xbegin/xend *)
  tm_conflict_coeff : float;  (** pairwise conflict probability per transactional write *)
  tm_max_retries : int;
  scr_digest_byte_cycles : float;
      (** SCR: cycles per update-digest byte, paid by the dispatcher to
          encode and by each replica to decode *)
  scr_replay_factor : float;
      (** SCR: fraction of the NF's non-base packet cycles a replica
          spends replaying the write-slice of a foreign packet *)
  switch_stall_cycles : float;
      (** adaptive: fixed cost of one discipline switch — the epoch
          quiesce barrier, the indirection-table swap and the runner
          rebinding, independent of how much state moves *)
  switch_flow_cycles : float;
      (** adaptive: cycles to move or copy one flow's state entries
          during the quiesced conversion (shard merge/split, replica
          seeding) *)
}

val default : params

val mem_access_cycles : ?params:params -> Machine.t -> ws_bytes:float -> float
(** Average cycles for one state access given the per-core working set, from
    the stack of hit probabilities down the hierarchy. *)

val working_set_bytes : Profile.t -> shards:int -> float
(** Per-core working set when flows are sharded over [shards] instances
    (1 for shared state).  Uses the {e effective} flow count, so Zipfian
    traffic caches better. *)

val packet_cycles : ?params:params -> Machine.t -> Profile.t -> ws_bytes:float -> float
(** Core-local processing cycles per packet (no coordination). *)

val discipline_switch_cycles : ?params:params -> flows:int -> replicas:int -> unit -> float
(** Price of one adaptive discipline switch: the fixed quiesce stall plus
    per-flow conversion work.  [flows] is the live flow-state population;
    [replicas] is how many target instances each flow must land in — 1
    for shard merges/splits and a lock collapse, the live core count when
    seeding SCR replicas.  Dividing by {!Machine.t} frequency and the
    epoch duration tells the controller (and the operator reading
    EXPERIMENTS.md) how much calm time a switch must buy to pay for
    itself — the reason {!Runtime.Adaptive} defaults to a multi-epoch
    cooldown rather than reacting every epoch. *)
