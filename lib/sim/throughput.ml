type bottleneck = Cpu | Pcie | Line_rate

type eval = {
  mpps : float;
  gbps : float;
  bottleneck : bottleneck;
  cycles_per_pkt : float;
  shares : float array;
  imbalance : float;
}

let bottleneck_name = function
  | Cpu -> "cpu"
  | Pcie -> "pcie"
  | Line_rate -> "line-rate"

let c_evals = Telemetry.Counter.make "sim.evaluations" ~doc:"throughput-model evaluations"
let h_share = Telemetry.Histogram.make "sim.core_share" ~doc:"per-core traffic share per evaluation"

let shares_of ?(balanced = false) (plan : Maestro.Plan.t) pkts =
  let nf = plan.Maestro.Plan.nf in
  let cores = plan.Maestro.Plan.cores in
  let engines =
    Array.init nf.Dsl.Ast.devices (fun port -> Maestro.Plan.rss_engine plan port)
  in
  let engines =
    if not balanced then engines
    else
      Array.map
        (fun engine ->
          let reta = Nic.Rss.reta engine in
          let load = Array.make (Nic.Reta.size reta) 0.0 in
          Array.iter
            (fun pkt ->
              match Nic.Rss.hash_of engine pkt with
              | Some h -> load.(h land (Nic.Reta.size reta - 1)) <- load.(h land (Nic.Reta.size reta - 1)) +. 1.0
              | None -> ())
            pkts;
          Nic.Rss.with_reta engine (Nic.Reta.rebalance reta ~bucket_load:load))
        engines
  in
  let counts = Array.make cores 0 in
  Array.iter
    (fun pkt ->
      let q = Nic.Rss.dispatch engines.(pkt.Packet.Pkt.port) pkt in
      counts.(q) <- counts.(q) + 1)
    pkts;
  let total = Float.max 1.0 (float_of_int (Array.fold_left ( + ) 0 counts)) in
  Array.map (fun c -> float_of_int c /. total) counts

let shares_of_counts counts =
  let total = Float.max 1.0 (float_of_int (Array.fold_left ( + ) 0 counts)) in
  Array.map (fun c -> float_of_int c /. total) counts

let shares_of_pool_stats (s : Runtime.Pool.stats) =
  (* prefer the pool's own post-rebalance share measurement (kept current
     by the online balancer); fall back to raw dispatch counts for stats
     from older runs *)
  if Array.length s.Runtime.Pool.last_core_share > 0 then
    Array.copy s.Runtime.Pool.last_core_share
  else shares_of_counts s.Runtime.Pool.last_per_core_pkts

let evaluate ?(machine = Machine.xeon_6226r) ?(params = Cost.default) ?(balanced_reta = false)
    ?measured_shares (plan : Maestro.Plan.t) (profile : Profile.t) pkts =
  Telemetry.Span.with_span "sim/evaluate" @@ fun () ->
  Telemetry.Counter.incr c_evals;
  let cores = plan.Maestro.Plan.cores in
  let n = float_of_int cores in
  let freq = machine.Machine.freq_hz in
  let shards = match plan.Maestro.Plan.strategy with Maestro.Plan.Shared_nothing -> cores | _ -> 1 in
  let ws = Cost.working_set_bytes profile ~shards in
  let c_pkt = Cost.packet_cycles ~params machine profile ~ws_bytes:ws in
  let shares =
    match measured_shares with
    | Some s ->
        if Array.length s <> cores then invalid_arg "Throughput.evaluate: measured_shares length";
        s
    | None -> shares_of ~balanced:balanced_reta plan pkts
  in
  if Telemetry.enabled () then Array.iter (Telemetry.Histogram.observe h_share) shares;
  let max_share = Array.fold_left Float.max 0.0 shares in
  let x_cpu =
    match plan.Maestro.Plan.strategy with
    | Maestro.Plan.Shared_nothing | Maestro.Plan.Load_balance ->
        (* independent cores: the hottest core saturates first *)
        let per_core_pps = freq /. c_pkt in
        if max_share <= 0.0 then per_core_pps *. n else per_core_pps /. max_share
    | Maestro.Plan.Lock_based ->
        let fw = profile.Profile.write_pkt_fraction in
        let hold = (params.Cost.write_section_factor *. c_pkt) +. (n *. params.Cost.remote_lock_cycles) in
        let read_cost = c_pkt +. params.Cost.read_lock_cycles in
        let denom = (fw *. n *. hold) +. ((1.0 -. fw) *. read_cost) in
        let x_serial = n *. freq /. denom in
        (* load imbalance independently binds the read-parallel part *)
        let x_balance =
          if max_share <= 0.0 then x_serial else freq /. read_cost /. max_share
        in
        Float.min x_serial x_balance
    | Maestro.Plan.Scr ->
        (* every core serves its owned share at full-NF cost plus digest
           encode/decode, and replays the other n-1 cores' write-slices;
           round-robin spray keeps the shares balanced by construction,
           so no max_share term — contention is the replay stream itself *)
        let digest_bytes =
          float_of_int
            (Maestro.Scrspec.derive plan.Maestro.Plan.nf).Maestro.Scrspec.digest_bytes
        in
        let c_digest = digest_bytes *. params.Cost.scr_digest_byte_cycles in
        let c_replay =
          (params.Cost.scr_replay_factor *. Float.max 0.0 (c_pkt -. params.Cost.base_cycles))
          +. c_digest
        in
        let c_own = c_pkt +. c_digest in
        n *. freq /. (c_own +. ((n -. 1.0) *. c_replay))
    | Maestro.Plan.Tm_based ->
        let kappa =
          Float.min 0.85 (params.Cost.tm_conflict_coeff *. profile.Profile.tm_writes_per_pkt)
        in
        let p_abort = 1.0 -. Float.pow (1.0 -. kappa) (n -. 1.0) in
        let attempts =
          Float.min (float_of_int params.Cost.tm_max_retries) (1.0 /. Float.max 0.05 (1.0 -. p_abort))
        in
        let p_fallback = Float.pow p_abort (float_of_int params.Cost.tm_max_retries) in
        let c_tx = (c_pkt *. params.Cost.tm_cycle_factor) +. params.Cost.tm_enter_cycles in
        let hold = (params.Cost.write_section_factor *. c_pkt) +. (n *. params.Cost.remote_lock_cycles) in
        let denom = (p_fallback *. n *. hold) +. ((1.0 -. p_fallback) *. attempts *. c_tx) in
        n *. freq /. denom
  in
  let frame = int_of_float (Float.round profile.Profile.avg_frame_bytes) in
  let x_pcie = Machine.pcie_pps machine ~frame_bytes:frame in
  let x_line = Machine.line_rate_pps machine ~frame_bytes:frame in
  let pps, bottleneck =
    if x_cpu <= x_pcie && x_cpu <= x_line then (x_cpu, Cpu)
    else if x_pcie <= x_line then (x_pcie, Pcie)
    else (x_line, Line_rate)
  in
  let imbalance = if max_share <= 0.0 then 1.0 else max_share *. n in
  {
    mpps = pps /. 1e6;
    gbps = pps *. profile.Profile.avg_frame_bytes *. 8.0 /. 1e9;
    bottleneck;
    cycles_per_pkt = c_pkt;
    shares;
    imbalance;
  }

type cluster_eval = {
  machines : int;
  per_machine : eval;
  machine_shares : float array;
  machine_imbalance : float;
  cluster_mpps : float;
  cluster_gbps : float;
  scaleout : float;
}

let evaluate_cluster ?machine ?params ?balanced_reta ?measured_shares ~machine_shares plan
    profile pkts =
  let n = Array.length machine_shares in
  if n = 0 then invalid_arg "Throughput.evaluate_cluster: no machines";
  let total = Array.fold_left ( +. ) 0.0 machine_shares in
  if total <= 0.0 then invalid_arg "Throughput.evaluate_cluster: machine shares sum to zero";
  let shares = Array.map (fun s -> s /. total) machine_shares in
  let per_machine = evaluate ?machine ?params ?balanced_reta ?measured_shares plan profile pkts in
  let max_share = Array.fold_left Float.max 0.0 shares in
  let mean = 1.0 /. float_of_int n in
  (* hottest machine saturates first — the shared-nothing law one level
     up, with machines in place of cores; NIC-side ceilings are already
     inside [per_machine] and each machine brings its own NIC *)
  let factor = 1.0 /. max_share in
  {
    machines = n;
    per_machine;
    machine_shares = shares;
    machine_imbalance = max_share /. mean;
    cluster_mpps = per_machine.mpps *. factor;
    cluster_gbps = per_machine.gbps *. factor;
    scaleout = factor;
  }
