type t = {
  freq_hz : float;
  cores : int;
  l1d_bytes : int;
  l2_bytes : int;
  llc_bytes : int;
  line_gbps : float;
  pcie_bytes_per_s : float;
  pcie_pkt_overhead : int;
}

(* PCIe 3.0 x16: 15.75 GB/s raw; ~12.8 GB/s after TLP framing.  78 B/packet
   of descriptor + completion + doorbell traffic reproduces the ~45 Gbps
   64-byte ceiling of Fig. 8 (cf. Neugebauer et al., SIGCOMM'18). *)
let xeon_6226r =
  {
    freq_hz = 2.9e9;
    cores = 16;
    l1d_bytes = 32 * 1024;
    l2_bytes = 1024 * 1024;
    llc_bytes = 22 * 1024 * 1024;
    line_gbps = 100.0;
    pcie_bytes_per_s = 12.8e9;
    pcie_pkt_overhead = 78;
  }

let line_rate_pps t ~frame_bytes =
  (* 20 B of preamble + SFD + inter-frame gap per frame on the wire *)
  t.line_gbps *. 1e9 /. 8.0 /. float_of_int (frame_bytes + 20)

let pcie_pps t ~frame_bytes =
  t.pcie_bytes_per_s /. float_of_int (frame_bytes + t.pcie_pkt_overhead)

let peak_pps t ~frame_bytes = Float.min (line_rate_pps t ~frame_bytes) (pcie_pps t ~frame_bytes)

let cluster_peak_pps t ~machines ~frame_bytes =
  float_of_int (max 1 machines) *. peak_pps t ~frame_bytes
