type params = {
  base_cycles : float;
  op_compute_cycles : float;
  accesses_per_op : float;
  l1_cycles : float;
  l2_cycles : float;
  llc_cycles : float;
  dram_cycles : float;
  read_lock_cycles : float;
  remote_lock_cycles : float;
  write_section_factor : float;
  tm_cycle_factor : float;
  tm_enter_cycles : float;
  tm_conflict_coeff : float;
  tm_max_retries : int;
  scr_digest_byte_cycles : float;
  scr_replay_factor : float;
  switch_stall_cycles : float;
  switch_flow_cycles : float;
}

let default =
  {
    base_cycles = 180.0;
    op_compute_cycles = 30.0;
    accesses_per_op = 2.0;
    l1_cycles = 4.0;
    l2_cycles = 14.0;
    llc_cycles = 45.0;
    dram_cycles = 180.0;
    read_lock_cycles = 30.0;
    remote_lock_cycles = 120.0;
    write_section_factor = 1.6;
    tm_cycle_factor = 1.25;
    tm_enter_cycles = 60.0;
    tm_conflict_coeff = 0.06;
    tm_max_retries = 3;
    scr_digest_byte_cycles = 2.0;
    scr_replay_factor = 0.7;
    switch_stall_cycles = 20_000.0;
    switch_flow_cycles = 150.0;
  }

let mem_access_cycles ?(params = default) (m : Machine.t) ~ws_bytes =
  let ws = Float.max 1.0 ws_bytes in
  let frac cap = Float.min 1.0 (float_of_int cap /. ws) in
  let p1 = frac m.Machine.l1d_bytes in
  let p2 = Float.max 0.0 (frac m.Machine.l2_bytes -. p1) in
  let p3 = Float.max 0.0 (frac m.Machine.llc_bytes -. p1 -. p2) in
  let p4 = Float.max 0.0 (1.0 -. p1 -. p2 -. p3) in
  (p1 *. params.l1_cycles) +. (p2 *. params.l2_cycles) +. (p3 *. params.llc_cycles)
  +. (p4 *. params.dram_cycles)

let working_set_bytes (p : Profile.t) ~shards =
  let shards = float_of_int (max 1 shards) in
  let entries =
    Float.min p.Profile.effective_flows (float_of_int p.Profile.flow_capacity)
  in
  (p.Profile.fixed_state_bytes /. shards) +. (p.Profile.bytes_per_flow *. entries /. shards)

let packet_cycles ?(params = default) m (p : Profile.t) ~ws_bytes =
  let ops = p.Profile.reads_per_pkt +. p.Profile.writes_per_pkt in
  let per_op =
    params.op_compute_cycles
    +. (params.accesses_per_op *. mem_access_cycles ~params m ~ws_bytes)
  in
  params.base_cycles +. (ops *. per_op)

let discipline_switch_cycles ?(params = default) ~flows ~replicas () =
  params.switch_stall_cycles
  +. float_of_int (max 0 flows) *. params.switch_flow_cycles *. float_of_int (max 1 replicas)
