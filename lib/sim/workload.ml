type t = { label : string; nf : Dsl.Ast.t; trace : Packet.Pkt.t array; skip : int }

let lan = 0
let wan = 1

let generic ?(fresh = 0.02) ~seed ~flows ~pkts ~size nf label =
  let rng = Random.State.make [| seed |] in
  let fs = Traffic.Gen.flows rng flows in
  let spec =
    {
      Traffic.Gen.default_spec with
      pkts;
      size;
      reply_fraction = 0.5;
      fresh_fraction = fresh;
    }
  in
  let trace, skip = Traffic.Gen.steady_uniform ~spec rng ~flows:fs in
  { label; nf; trace; skip }

(* The NAT's replies must target (external ip, allocated port): learn the
   translation by running the NAT itself over the establishment pass. *)
let nat_workload ?(fresh = 0.02) ~seed ~flows ~pkts ~size nf =
  let rng = Random.State.make [| seed |] in
  let fs = Traffic.Gen.flows rng flows in
  let info = Dsl.Check.check_exn nf in
  let runner = Dsl.Compile.make_runner nf info (Dsl.Instance.create nf) in
  let establish =
    Array.of_list
      (List.mapi (fun i f -> Packet.Flow.to_pkt ~port:lan ~size ~ts_ns:(i * 100) f) fs)
  in
  let translated =
    Array.map
      (fun pkt ->
        match Dsl.Compile.run runner pkt with
        | Dsl.Interp.Fwd (_, out) -> Some (pkt, out)
        | Dsl.Interp.Dropped -> None)
      establish
  in
  let sessions = Array.of_list (List.filter_map Fun.id (Array.to_list translated)) in
  if Array.length sessions = 0 then invalid_arg "Workload: NAT admitted no sessions";
  let offset = Array.length establish * 100 in
  let body =
    Array.init pkts (fun i ->
        let ts_ns = offset + (i * 100) in
        if Random.State.float rng 1.0 < fresh then
          let f = List.hd (Traffic.Gen.flows rng 1) in
          Packet.Flow.to_pkt ~port:lan ~size ~ts_ns f
        else
          let orig, out = sessions.(Random.State.int rng (Array.length sessions)) in
          if Random.State.bool rng then { orig with Packet.Pkt.ts_ns }
          else
            (* the server replies to the translated source *)
            { (Packet.Pkt.flip out) with Packet.Pkt.port = wan; ts_ns })
  in
  { label = "nat"; nf; trace = Array.append establish body; skip = Array.length establish }

(* LB: backends register from their subnet during warmup; clients arrive
   from the WAN addressing the virtual service. *)
let lb_workload ?(fresh = 0.02) ~seed ~flows ~pkts ~size nf =
  let rng = Random.State.make [| seed |] in
  let vip = 0x0a000164 (* 10.0.1.100 *) in
  let backends =
    Array.init Nfs.Lb.default_backends (fun i ->
        Packet.Pkt.make ~port:lan ~size ~ts_ns:(i * 100)
          ~ip_src:(0x0a000100 lor (i + 1))
          ~ip_dst:vip ~src_port:80 ~dst_port:12345 ())
  in
  let client () =
    {
      Packet.Flow.ip_src = 0x60000000 lor Random.State.int rng 0x0fffffff;
      ip_dst = vip;
      src_port = 1024 + Random.State.int rng 60000;
      dst_port = 80;
      proto = Packet.Pkt.Tcp;
    }
  in
  let clients = Array.init flows (fun _ -> client ()) in
  let offset = Array.length backends * 100 in
  let establish =
    Array.mapi
      (fun i f -> Packet.Flow.to_pkt ~port:wan ~size ~ts_ns:(offset + (i * 100)) f)
      clients
  in
  let offset = offset + (Array.length establish * 100) in
  let body =
    Array.init pkts (fun i ->
        let f =
          if Random.State.float rng 1.0 < fresh then client ()
          else clients.(Random.State.int rng (Array.length clients))
        in
        Packet.Flow.to_pkt ~port:wan ~size ~ts_ns:(offset + (i * 100)) f)
  in
  {
    label = "lb";
    nf;
    trace = Array.concat [ backends; establish; body ];
    skip = Array.length backends + Array.length establish;
  }

(* HHH: a monitor for inbound traffic — sources spread over the whole
   address space (the 10/8-client default would collapse every packet onto
   one /8 prefix and one core). *)
let hhh_workload ~seed ~flows ~pkts ~size nf =
  let rng = Random.State.make [| seed |] in
  let source () =
    {
      Packet.Flow.ip_src = Random.State.int rng 0x3fffffff;
      ip_dst = 0x0a000042;
      src_port = 1024 + Random.State.int rng 60000;
      dst_port = 80;
      proto = Packet.Pkt.Tcp;
    }
  in
  let fs = Array.init flows (fun _ -> source ()) in
  let trace =
    Array.init pkts (fun i ->
        Packet.Flow.to_pkt ~port:lan ~size ~ts_ns:(i * 100)
          fs.(Random.State.int rng (Array.length fs)))
  in
  { label = "hhh"; nf; trace; skip = 0 }

(* SBridge: frames addressed between its statically configured hosts. *)
let sbridge_workload ~seed ~pkts ~size nf =
  let rng = Random.State.make [| seed |] in
  let bindings = Array.of_list Nfs.Bridge.default_bindings in
  let pick_host () = bindings.(Random.State.int rng (Array.length bindings)) in
  let trace =
    Array.init pkts (fun i ->
        let src_mac, src_port_dev = pick_host () in
        let dst_mac, _ = pick_host () in
        Packet.Pkt.make ~port:src_port_dev ~size ~ts_ns:(i * 100) ~eth_src:src_mac
          ~eth_dst:dst_mac
          ~ip_src:(Random.State.int rng 0x3fffffff)
          ~ip_dst:(Random.State.int rng 0x3fffffff)
          ~src_port:(Random.State.int rng 0x10000)
          ~dst_port:(Random.State.int rng 0x10000)
          ())
  in
  { label = "sbridge"; nf; trace; skip = 0 }

(* Tunnel NFs: the generic trace becomes the inner traffic of a VXLAN or
   GRE underlay (same flows, same reply mix) so inner-keyed state sees the
   same key spread a plain fw sees from plain traffic. *)
let tunnel_workload ~kind ~fresh ~seed ~flows ~pkts ~size nf label =
  let w = generic ~fresh ~seed ~flows ~pkts ~size nf label in
  { w with trace = Traffic.Gen.encapsulate kind w.trace }

let read_heavy ?(seed = 42) ?(flows = 8192) ?(pkts = 24_000) ?(size = 64) ?(fresh = 0.02) name =
  let nf = Nfs.Registry.find_exn name in
  match name with
  | "nat" -> nat_workload ~fresh ~seed ~flows ~pkts ~size nf
  | "lb" -> lb_workload ~fresh ~seed ~flows ~pkts ~size nf
  | "sbridge" -> sbridge_workload ~seed ~pkts ~size nf
  | "hhh" -> hhh_workload ~seed ~flows ~pkts ~size nf
  | "vxlan_fw" -> tunnel_workload ~kind:Packet.Pkt.Vxlan ~fresh ~seed ~flows ~pkts ~size nf name
  | "gre_peer" -> tunnel_workload ~kind:Packet.Pkt.Gre ~fresh ~seed ~flows ~pkts ~size nf name
  | _ -> { (generic ~fresh ~seed ~flows ~pkts ~size nf name) with label = name }

let zipf ?(seed = 43) ?(pkts = 50_000) ?(size = 64) name =
  let nf = Nfs.Registry.find_exn name in
  match name with
  | "nat" | "lb" | "sbridge" ->
      (* skew only changes flow popularity; reuse the NF-aware shape with a
         reduced flow count so elephants dominate *)
      let w = read_heavy ~seed ~flows:1000 ~pkts ~size name in
      { w with label = name ^ "-zipf" }
  | _ ->
      let rng = Random.State.make [| seed |] in
      let z = Traffic.Zipf.paper () in
      let fs = Traffic.Gen.flows rng (Traffic.Zipf.nflows z) in
      let arr = Array.of_list fs in
      let spec =
        {
          Traffic.Gen.default_spec with
          pkts;
          size;
          reply_fraction = 0.5;
          fresh_fraction = 0.005;
        }
      in
      let trace, skip =
        Traffic.Gen.steady ~spec rng ~flows:fs ~pick:(fun rng ->
            arr.(Traffic.Zipf.sample z rng))
      in
      { label = name ^ "-zipf"; nf; trace; skip }

let profile_of w = Profile.of_trace ~skip:w.skip w.nf w.trace

let body w = Array.sub w.trace w.skip (Array.length w.trace - w.skip)
