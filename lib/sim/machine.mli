(** The modeled testbed (paper §6.2): dual-socket Xeon Gold 6226R at
    2.9 GHz, Intel E810 100 Gbps NICs on PCIe 3.0 ×16.

    Only parameters with first-order performance effects are kept: core
    frequency and count, the cache hierarchy, the line rate, and the PCIe
    packet-size-dependent ceiling that Fig. 8 exposes (per-packet descriptor
    and TLP overhead on top of payload bytes). *)

type t = {
  freq_hz : float;
  cores : int;  (** per NUMA node, as used in the experiments *)
  l1d_bytes : int;  (** per core *)
  l2_bytes : int;  (** per core *)
  llc_bytes : int;  (** shared *)
  line_gbps : float;
  pcie_bytes_per_s : float;  (** effective PCIe data rate *)
  pcie_pkt_overhead : int;  (** per-packet PCIe cost in bytes *)
}

val xeon_6226r : t

val line_rate_pps : t -> frame_bytes:int -> float
(** 100G Ethernet ceiling for a frame size, including preamble and IFG. *)

val pcie_pps : t -> frame_bytes:int -> float
(** PCIe ceiling for a frame size. *)

val peak_pps : t -> frame_bytes:int -> float
(** min of the two NIC-side ceilings — what even a NOP cannot exceed. *)

val cluster_peak_pps : t -> machines:int -> frame_bytes:int -> float
(** Fleet-wide NIC-side ceiling: every machine brings its own NIC and
    PCIe links, so ceilings sum — [machines * peak_pps].  This is the
    scale-out headroom the cluster tier exists for: one box saturates
    {!peak_pps} (~90 Mpps at 64 B over PCIe 3.0), a fleet moves the
    ceiling linearly. *)
