(** System throughput under a parallelization plan — the quantity every
    evaluation figure plots (maximum rate with negligible loss, §6.2).

    The evaluation is trace-driven: per-core load shares come from pushing
    the actual workload through the plan's real RSS configuration (Toeplitz
    keys + indirection table), and the operation mix comes from a profiled
    run of the NF itself.  On top of that, closed-form contention laws turn
    per-core costs into system throughput:

    - {e shared-nothing / load-balance}: cores are independent; the
      slowest-loaded core saturates first, so
      [X = min_i (core_pps_i / share_i)], then the NIC-side PCIe/line-rate
      ceilings apply.
    - {e read/write locks}: a write packet restarts, takes every per-core
      flag and serializes the system for its write section; read packets
      only pay a local atomic.  With write fraction [fw]:
      [X = n·F / (fw·n·(hold + n·lk) + (1-fw)·(c + rd))].
    - {e state-compute replication}: round-robin spray keeps shares
      balanced by construction; each core pays the full NF plus digest
      encode/decode for its [1/n] of the traffic and a cheaper
      write-slice replay ([scr_replay_factor] of the non-base packet
      cost, plus digest decode) for the other [n-1] shares:
      [X = n·F / (c_own + (n-1)·c_replay)].  The working set is the
      {e full} state (replicas are not shards), so SCR also pays in
      cache locality.
    - {e transactional memory}: abort probability grows with concurrent
      writers, [p = 1-(1-κ)^(n-1)] with [κ] proportional to the
      transactional write rate; retries inflate cost and exhausted retries
      fall back to a global lock that serializes like a write packet. *)

type bottleneck = Cpu | Pcie | Line_rate

type eval = {
  mpps : float;
  gbps : float;
  bottleneck : bottleneck;
  cycles_per_pkt : float;  (** core-local cost, coordination excluded *)
  shares : float array;  (** per-core fraction of the traffic *)
  imbalance : float;  (** max/mean of shares *)
}

val evaluate :
  ?machine:Machine.t ->
  ?params:Cost.params ->
  ?balanced_reta:bool ->
  ?measured_shares:float array ->
  Maestro.Plan.t ->
  Profile.t ->
  Packet.Pkt.t array ->
  eval
(** [balanced_reta] applies RSS++-style static table rebalancing using the
    trace's observed bucket loads (Fig. 5's "balanced" series).
    [measured_shares] bypasses the model's own RSS dispatch and feeds the
    contention laws per-core load shares observed elsewhere — e.g.
    {!shares_of_pool_stats} from a real {!Runtime.Pool} run — so model
    throughput and real-domain execution agree on the load they describe.
    Its length must equal the plan's core count. *)

(** Cluster-level pricing: one machine's {!eval} scaled across a fleet
    behind the maglev front tier.  Machines are independent (the whole
    point of the second sharding level), so the same law as
    shared-nothing cores applies one level up: the hottest machine
    saturates first, [X_cluster = X_machine / max_machine_share], and
    cross-machine imbalance is pure lost capacity. *)
type cluster_eval = {
  machines : int;
  per_machine : eval;  (** one machine under its own per-core shares *)
  machine_shares : float array;  (** per-machine fraction of the traffic *)
  machine_imbalance : float;  (** max/mean of machine shares *)
  cluster_mpps : float;
  cluster_gbps : float;
  scaleout : float;
      (** [cluster_mpps / per_machine.mpps] — machines of capacity
          actually realized; [machines / machine_imbalance] in the limit *)
}

val evaluate_cluster :
  ?machine:Machine.t ->
  ?params:Cost.params ->
  ?balanced_reta:bool ->
  ?measured_shares:float array ->
  machine_shares:float array ->
  Maestro.Plan.t ->
  Profile.t ->
  Packet.Pkt.t array ->
  cluster_eval
(** [machine_shares] is each machine's observed fraction of the traffic —
    e.g. {!shares_of_counts} over a {!Cluster.Tier} run's per-machine
    packet counts (raw counts are normalized).  The per-machine leg
    forwards [measured_shares] etc. to {!evaluate}.  Raises
    [Invalid_argument] when [machine_shares] is empty or sums to zero. *)

val shares_of_counts : int array -> float array
(** Normalize per-core packet counts into traffic shares. *)

val shares_of_pool_stats : Runtime.Pool.stats -> float array
(** The most recent run's per-core shares from a persistent domain pool.
    When the run used online rebalancing ({!Runtime.Pool.run} with
    [~rebalance]), these are the measured {e post-rebalance} shares
    ([stats.last_core_share]), so the model sees the load the balancer
    actually produced. *)

val bottleneck_name : bottleneck -> string
