type t = {
  pkts : int;
  reads_per_pkt : float;
  writes_per_pkt : float;
  tm_writes_per_pkt : float;
  chain_ops_per_pkt : float;
  write_pkt_fraction : float;
  distinct_flows : int;
  effective_flows : float;
  avg_frame_bytes : float;
  bytes_per_flow : float;
  flow_capacity : int;
  fixed_state_bytes : float;
  drops : int;
}

let state_footprint (nf : Dsl.Ast.t) =
  (* marginal bytes per tracked flow vs fixed bytes, from the declarations *)
  let per_flow = ref 0.0 and fixed = ref 0.0 in
  let capacity = ref 0 in
  List.iter
    (fun d ->
      match d with
      | Dsl.Ast.Decl_map { capacity = c; _ } ->
          capacity := (if !capacity = 0 then c else min !capacity c);
          per_flow := !per_flow +. 24.0
      | Dsl.Ast.Decl_vector { layout; _ } ->
          let bytes = (List.fold_left (fun a (_, w) -> a + w) 0 layout + 7) / 8 in
          per_flow := !per_flow +. float_of_int bytes
      | Dsl.Ast.Decl_chain _ -> per_flow := !per_flow +. 16.0
      | Dsl.Ast.Decl_sketch { depth; width; _ } ->
          fixed := !fixed +. float_of_int (4 * depth * width))
    nf.Dsl.Ast.state;
  (!per_flow, !fixed, (if !capacity = 0 then max_int else !capacity))

let of_trace ?(skip = 0) nf pkts =
  let info = Dsl.Check.check_exn nf in
  let runner = Dsl.Compile.make_runner nf info (Dsl.Instance.create nf) in
  let n = Array.length pkts - skip in
  if n < 1 then invalid_arg "Profile.of_trace: nothing left after skip";
  let reads = ref 0 and writes = ref 0 and tm_writes = ref 0 in
  let chain_ops = ref 0 and write_pkts = ref 0 and drops = ref 0 in
  let flow_counts = Hashtbl.create 1024 in
  let bytes = ref 0 in
  Array.iteri
    (fun pkt_index pkt ->
      if pkt_index < skip then
        ignore (Dsl.Compile.run runner pkt)
      else begin
      bytes := !bytes + pkt.Packet.Pkt.size;
      let flow = Packet.Flow.normalize (Packet.Flow.of_pkt pkt) in
      Hashtbl.replace flow_counts flow
        (1 + Option.value ~default:0 (Hashtbl.find_opt flow_counts flow));
      let wrote = ref false in
      let on_op (e : Dsl.Interp.op_event) =
        (match e.Dsl.Interp.kind with
        | Dsl.Interp.Op_chain_alloc | Dsl.Interp.Op_chain_rejuv | Dsl.Interp.Op_chain_expire ->
            incr chain_ops
        | _ -> ());
        (* lock-discipline view: rejuvenation is absorbed by per-core aging *)
        let lock_write =
          match e.Dsl.Interp.kind with
          | Dsl.Interp.Op_chain_rejuv -> false
          | Dsl.Interp.Op_chain_expire -> e.Dsl.Interp.expired > 0
          | _ -> e.Dsl.Interp.write
        in
        (* transactional view: every mutation is a transactional write *)
        let tm_write =
          match e.Dsl.Interp.kind with
          | Dsl.Interp.Op_chain_rejuv -> true
          | Dsl.Interp.Op_chain_expire -> e.Dsl.Interp.expired > 0
          | _ -> e.Dsl.Interp.write
        in
        if lock_write then begin
          incr writes;
          wrote := true
        end
        else incr reads;
        if tm_write then incr tm_writes
      in
      (match Dsl.Compile.run ~on_op runner pkt with
      | Dsl.Interp.Dropped -> incr drops
      | Dsl.Interp.Fwd _ -> ());
      if !wrote then incr write_pkts
      end)
    pkts;
  let entropy =
    let total = float_of_int n in
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. total in
        acc -. (p *. Float.log p))
      flow_counts 0.0
  in
  let per_flow, fixed, capacity = state_footprint nf in
  let fn = float_of_int (max 1 n) in
  {
    pkts = n;
    reads_per_pkt = float_of_int !reads /. fn;
    writes_per_pkt = float_of_int !writes /. fn;
    tm_writes_per_pkt = float_of_int !tm_writes /. fn;
    chain_ops_per_pkt = float_of_int !chain_ops /. fn;
    write_pkt_fraction = float_of_int !write_pkts /. fn;
    distinct_flows = Hashtbl.length flow_counts;
    effective_flows = Float.exp entropy;
    avg_frame_bytes = float_of_int !bytes /. fn;
    bytes_per_flow = per_flow;
    flow_capacity = capacity;
    fixed_state_bytes = fixed;
    drops = !drops;
  }

let pp fmt t =
  Format.fprintf fmt
    "pkts %d; r/pkt %.2f; w/pkt %.2f (tm %.2f); write-pkt %.1f%%; flows %d (eff %.0f); avg \
     %.0fB; %.0fB/flow + %.0fB fixed; drops %d"
    t.pkts t.reads_per_pkt t.writes_per_pkt t.tm_writes_per_pkt
    (100.0 *. t.write_pkt_fraction)
    t.distinct_flows t.effective_flows t.avg_frame_bytes t.bytes_per_flow t.fixed_state_bytes
    t.drops
