let lan = 0
let wan = 1

let flows rng n =
  let seen = Hashtbl.create n in
  let rec fresh () =
    let f =
      {
        Packet.Flow.ip_src = 0x0a000000 lor Random.State.int rng 0xffffff;
        ip_dst = 0x60000000 lor Random.State.int rng 0x0fffffff;
        src_port = 1024 + Random.State.int rng 60000;
        dst_port = 1 + Random.State.int rng 1023;
        proto = Packet.Pkt.Tcp;
      }
    in
    if Hashtbl.mem seen f then fresh ()
    else begin
      Hashtbl.replace seen f ();
      f
    end
  in
  List.init n (fun _ -> fresh ())

type trace_spec = {
  pkts : int;
  size : int;
  reply_fraction : float;
  fresh_fraction : float;
  gap_ns : int;
}

let default_spec =
  { pkts = 10_000; size = 64; reply_fraction = 0.3; fresh_fraction = 0.0; gap_ns = 100 }

let fresh_flow rng =
  {
    Packet.Flow.ip_src = 0x0b000000 lor Random.State.int rng 0xffffff;
    ip_dst = 0x60000000 lor Random.State.int rng 0x0fffffff;
    src_port = 1024 + Random.State.int rng 60000;
    dst_port = 1 + Random.State.int rng 1023;
    proto = Packet.Pkt.Tcp;
  }

let trace ?(spec = default_spec) rng ~pick =
  let seen = Hashtbl.create 1024 in
  Array.init spec.pkts (fun i ->
      let flow = pick rng in
      let started = Hashtbl.mem seen flow in
      if not started then Hashtbl.replace seen flow ();
      let reply = started && Random.State.float rng 1.0 < spec.reply_fraction in
      let flow, port = if reply then (Packet.Flow.reverse flow, wan) else (flow, lan) in
      Packet.Flow.to_pkt ~port ~size:spec.size ~ts_ns:(i * spec.gap_ns) flow)

let steady ?(spec = default_spec) rng ~flows:fs ~pick =
  let nf = List.length fs in
  (* both directions are established so the measured body is steady state
     for reply-observing NFs too (a bridge learns the far side's MACs) *)
  let establish =
    Array.of_list
      (List.concat
         (List.mapi
            (fun i f ->
              [
                Packet.Flow.to_pkt ~port:lan ~size:spec.size ~ts_ns:(2 * i * spec.gap_ns) f;
                Packet.Flow.to_pkt ~port:wan ~size:spec.size
                  ~ts_ns:(((2 * i) + 1) * spec.gap_ns)
                  (Packet.Flow.reverse f);
              ])
            fs))
  in
  let offset = 2 * nf * spec.gap_ns in
  let body =
    Array.init spec.pkts (fun i ->
        let flow, port =
          if Random.State.float rng 1.0 < spec.fresh_fraction then (fresh_flow rng, lan)
          else
            let flow = pick rng in
            if Random.State.float rng 1.0 < spec.reply_fraction then
              (Packet.Flow.reverse flow, wan)
            else (flow, lan)
        in
        Packet.Flow.to_pkt ~port ~size:spec.size ~ts_ns:(offset + (i * spec.gap_ns)) flow)
  in
  (Array.append establish body, Array.length establish)

let steady_uniform ?spec rng ~flows:fs =
  let arr = Array.of_list fs in
  if Array.length arr = 0 then invalid_arg "Traffic.Gen.steady_uniform: no flows";
  steady ?spec rng ~flows:fs ~pick:(fun rng -> arr.(Random.State.int rng (Array.length arr)))

let uniform ?spec rng ~flows:fs =
  let arr = Array.of_list fs in
  if Array.length arr = 0 then invalid_arg "Traffic.Gen.uniform: no flows";
  trace ?spec rng ~pick:(fun rng -> arr.(Random.State.int rng (Array.length arr)))

(* Wrap a trace in a VXLAN or GRE underlay: each packet's headers become
   the inner frame and the outer headers describe a VTEP pair picked
   deterministically from the *normalized* flow — both directions of a
   flow traverse the same tunnel, so tunnel-terminating NFs see symmetric
   traffic exactly like their plain counterparts see plain traffic.  VXLAN
   adds 50 bytes (outer Ethernet+IPv4+UDP+VXLAN), GRE 28 (outer IPv4+GRE
   replace nothing: the inner Ethernet is gone but the outer one remains,
   and GRE carries the IP payload directly, so in_eth and the outer ports
   are zero — matching what Wire.parse_typed reconstructs). *)
let encapsulate ?(vteps = 8) kind pkts =
  let open Packet in
  if vteps < 1 then invalid_arg "Traffic.Gen.encapsulate: vteps < 1";
  Array.map
    (fun (p : Pkt.t) ->
      let h = Hashtbl.hash (Flow.normalize (Flow.of_pkt p)) in
      let vtep = h mod vteps in
      let vtep_lan = 0xac100000 lor vtep (* 172.16.0.x *)
      and vtep_wan = 0xac108000 lor vtep (* 172.16.128.x *) in
      let out_src, out_dst =
        if p.Pkt.port = wan then (vtep_wan, vtep_lan) else (vtep_lan, vtep_wan)
      in
      let encap =
        {
          Pkt.kind;
          tunnel_id = 0x100 + vtep;
          in_eth_src = (match kind with Pkt.Vxlan -> p.Pkt.eth_src | Pkt.Gre -> 0);
          in_eth_dst = (match kind with Pkt.Vxlan -> p.Pkt.eth_dst | Pkt.Gre -> 0);
          in_ip_src = p.Pkt.ip_src;
          in_ip_dst = p.Pkt.ip_dst;
          in_proto = p.Pkt.proto;
          in_src_port = p.Pkt.src_port;
          in_dst_port = p.Pkt.dst_port;
        }
      in
      let proto, src_port, dst_port, overhead =
        match kind with
        | Pkt.Vxlan -> (Pkt.Udp, 0xc000 lor (h land 0x3fff), Stacks.vxlan_port, 50)
        | Pkt.Gre -> (Pkt.Other Stacks.gre_proto, 0, 0, 28)
      in
      {
        p with
        Pkt.ip_src = out_src;
        ip_dst = out_dst;
        proto;
        src_port;
        dst_port;
        encap = Some encap;
        size = p.Pkt.size + overhead;
      })
    pkts

let packet_sizes = [ 64; 128; 256; 512; 1024; 1500 ]

let count_new_flows pkts =
  let seen = Hashtbl.create 1024 in
  Array.iter
    (fun p -> Hashtbl.replace seen (Packet.Flow.normalize (Packet.Flow.of_pkt p)) ())
    pkts;
  Hashtbl.length seen
