(** Workload generation: flows and packet traces.

    Traces are deterministic given the RNG seed.  The conventions match the
    evaluated NFs: device 0 is the LAN, device 1 the WAN; client addresses
    live in 10.0.0.0/8 and servers in 96.0.0.0/3, so generated flows never
    collide with each other's reverse direction. *)

val flows : Random.State.t -> int -> Packet.Flow.t list
(** [n] distinct TCP flows, client → server. *)

type trace_spec = {
  pkts : int;  (** packets to generate *)
  size : int;  (** frame bytes *)
  reply_fraction : float;
      (** probability that a packet of an already-seen flow travels
          WAN→LAN (reversed headers); a flow's first packet is always
          LAN→WAN so stateful NFs see the session start *)
  fresh_fraction : float;
      (** probability that a packet starts a brand-new flow — "read-heavy"
          traffic is not read-only (§6.4) *)
  gap_ns : int;  (** inter-packet timestamp gap *)
}

val default_spec : trace_spec

val trace :
  ?spec:trace_spec -> Random.State.t -> pick:(Random.State.t -> Packet.Flow.t) -> Packet.Pkt.t array
(** Build a trace, drawing each packet's flow from [pick]. *)

val uniform :
  ?spec:trace_spec -> Random.State.t -> flows:Packet.Flow.t list -> Packet.Pkt.t array
(** Uniformly distributed flows — the read-heavy workload of §6.4. *)

val steady :
  ?spec:trace_spec ->
  Random.State.t ->
  flows:Packet.Flow.t list ->
  pick:(Random.State.t -> Packet.Flow.t) ->
  Packet.Pkt.t array * int
(** An establishment pass (one LAN packet per flow) followed by the measured
    body drawn from [pick]; returns the trace and the warmup length to skip
    when profiling steady-state behaviour. *)

val steady_uniform :
  ?spec:trace_spec -> Random.State.t -> flows:Packet.Flow.t list -> Packet.Pkt.t array * int

val encapsulate :
  ?vteps:int -> Packet.Pkt.encap_kind -> Packet.Pkt.t array -> Packet.Pkt.t array
(** Wrap each packet of a trace in a VXLAN or GRE underlay: the original
    headers become the inner frame (the {!Packet.Pkt.encap} view) and the
    outer headers address one of [vteps] VTEP pairs, picked
    deterministically from the normalized flow so both directions of a
    flow share a tunnel.  Frame sizes grow by the encapsulation overhead
    (50 bytes for VXLAN, 28 for GRE). *)

val packet_sizes : int list
(** The Fig. 8 sweep: 64 … 1500 bytes. *)

val count_new_flows : Packet.Pkt.t array -> int
(** Number of distinct normalized flows in a trace. *)
