(* Global in-process registry.  The disabled fast path is a single load of
   [on]; everything else only runs when a collection window is open. *)

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

let now () = Unix.gettimeofday ()

(* --- counters ------------------------------------------------------------- *)

module Counter = struct
  type t = { name : string; doc : string; v : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make ?(doc = "") name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { name; doc; v = Atomic.make 0 } in
        Hashtbl.replace registry name c;
        c

  let incr c = if !on then Atomic.incr c.v
  let add c n = if !on then ignore (Atomic.fetch_and_add c.v n)
  let value c = Atomic.get c.v
  let reset () = Hashtbl.iter (fun _ c -> Atomic.set c.v 0) registry
end

(* --- histograms ------------------------------------------------------------ *)

module Histogram = struct
  type t = {
    name : string;
    doc : string;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
    buckets : (int, int) Hashtbl.t;  (* power-of-two exponent -> count *)
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(doc = "") name =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h =
          {
            name;
            doc;
            count = 0;
            sum = 0.0;
            min_v = infinity;
            max_v = neg_infinity;
            buckets = Hashtbl.create 16;
          }
        in
        Hashtbl.replace registry name h;
        h

  (* Observations land in the bucket [2^(e-1), 2^e] (all of [v <= 1] in
     exponent 0): coarse, cheap, and stable across runs. *)
  let exponent v =
    if v <= 1.0 then 0
    else
      let _, e = Float.frexp v in
      e

  let observe h v =
    if !on then begin
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v;
      let e = exponent v in
      Hashtbl.replace h.buckets e (1 + Option.value ~default:0 (Hashtbl.find_opt h.buckets e))
    end

  let reset () =
    Hashtbl.iter
      (fun _ h ->
        h.count <- 0;
        h.sum <- 0.0;
        h.min_v <- infinity;
        h.max_v <- neg_infinity;
        Hashtbl.reset h.buckets)
      registry
end

(* --- spans ----------------------------------------------------------------- *)

type span_agg = { mutable s_count : int; mutable s_total : float; mutable s_max : float }

type trace_event = { ev_path : string; ev_start : float; ev_dur : float }

module Span = struct
  let aggregates : (string, span_agg) Hashtbl.t = Hashtbl.create 32
  let trace : trace_event list ref = ref []  (* newest first *)
  let current_path = ref ""

  let record path t0 dur =
    let agg =
      match Hashtbl.find_opt aggregates path with
      | Some a -> a
      | None ->
          let a = { s_count = 0; s_total = 0.0; s_max = 0.0 } in
          Hashtbl.replace aggregates path a;
          a
    in
    agg.s_count <- agg.s_count + 1;
    agg.s_total <- agg.s_total +. dur;
    if dur > agg.s_max then agg.s_max <- dur;
    trace := { ev_path = path; ev_start = t0; ev_dur = dur } :: !trace

  let with_span name f =
    if not !on then f ()
    else begin
      let parent = !current_path in
      let path = if parent = "" then name else parent ^ "/" ^ name in
      current_path := path;
      let t0 = now () in
      Fun.protect
        ~finally:(fun () ->
          record path t0 (now () -. t0);
          current_path := parent)
        f
    end

  let reset () =
    Hashtbl.reset aggregates;
    trace := [];
    current_path := ""
end

let reset () =
  Counter.reset ();
  Histogram.reset ();
  Span.reset ()

(* --- snapshots -------------------------------------------------------------- *)

type span_stat = { span_path : string; span_count : int; span_total_s : float; span_max_s : float }

type counter_stat = { counter_name : string; counter_doc : string; counter_value : int }

type bucket = { le : float; bucket_count : int }

type histogram_stat = {
  hist_name : string;
  hist_doc : string;
  hist_count : int;
  hist_sum : float;
  hist_min : float;
  hist_max : float;
  hist_buckets : bucket list;
}

type snapshot = {
  spans : span_stat list;
  counters : counter_stat list;
  histograms : histogram_stat list;
}

let snapshot () =
  let spans =
    Hashtbl.fold
      (fun path (a : span_agg) acc ->
        { span_path = path; span_count = a.s_count; span_total_s = a.s_total; span_max_s = a.s_max }
        :: acc)
      Span.aggregates []
    |> List.sort (fun a b -> String.compare a.span_path b.span_path)
  in
  let counters =
    Hashtbl.fold
      (fun _ (c : Counter.t) acc ->
        let v = Counter.value c in
        if v = 0 then acc
        else { counter_name = c.Counter.name; counter_doc = c.Counter.doc; counter_value = v } :: acc)
      Counter.registry []
    |> List.sort (fun a b -> String.compare a.counter_name b.counter_name)
  in
  let histograms =
    Hashtbl.fold
      (fun _ (h : Histogram.t) acc ->
        if h.Histogram.count = 0 then acc
        else
          let exps =
            Hashtbl.fold (fun e n acc -> (e, n) :: acc) h.Histogram.buckets []
            |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          in
          (* cumulative, Prometheus-style *)
          let _, buckets =
            List.fold_left
              (fun (cum, out) (e, n) ->
                let cum = cum + n in
                (cum, { le = Float.pow 2.0 (float_of_int e); bucket_count = cum } :: out))
              (0, []) exps
          in
          {
            hist_name = h.Histogram.name;
            hist_doc = h.Histogram.doc;
            hist_count = h.Histogram.count;
            hist_sum = h.Histogram.sum;
            hist_min = h.Histogram.min_v;
            hist_max = h.Histogram.max_v;
            hist_buckets = List.rev buckets;
          }
          :: acc)
      Histogram.registry []
    |> List.sort (fun a b -> String.compare a.hist_name b.hist_name)
  in
  { spans; counters; histograms }

(* --- human-readable summary -------------------------------------------------- *)

let pp_summary fmt snap =
  Format.fprintf fmt "@[<v>=== telemetry ===@,";
  if snap.spans <> [] then begin
    Format.fprintf fmt "spans (wall clock):@,";
    List.iter
      (fun s ->
        Format.fprintf fmt "  %-36s %6dx %12.3f ms  (max %8.3f ms)@," s.span_path s.span_count
          (1000.0 *. s.span_total_s) (1000.0 *. s.span_max_s))
      snap.spans
  end;
  if snap.counters <> [] then begin
    Format.fprintf fmt "counters:@,";
    List.iter
      (fun c -> Format.fprintf fmt "  %-36s %12d@," c.counter_name c.counter_value)
      snap.counters
  end;
  if snap.histograms <> [] then begin
    Format.fprintf fmt "histograms:@,";
    List.iter
      (fun h ->
        Format.fprintf fmt "  %-36s n=%d avg=%.2f min=%.2f max=%.2f@," h.hist_name h.hist_count
          (h.hist_sum /. float_of_int (max 1 h.hist_count))
          h.hist_min h.hist_max)
      snap.histograms
  end;
  if snap.spans = [] && snap.counters = [] && snap.histograms = [] then
    Format.fprintf fmt "(no data collected — was telemetry enabled?)@,";
  Format.fprintf fmt "@]"

(* --- JSON -------------------------------------------------------------------- *)

let schema_version = "maestro-telemetry/1"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6f" f

let to_json ?(name = "maestro") ?(elide_times = false) snap =
  let b = Buffer.create 4096 in
  let t v = if elide_times then 0.0 else v in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"schema\": \"%s\",\n  \"name\": \"%s\",\n" (json_escape schema_version)
       (json_escape name));
  let list field items render =
    Buffer.add_string b (Printf.sprintf "  \"%s\": [" field);
    List.iteri
      (fun i x ->
        Buffer.add_string b (if i = 0 then "\n" else ",\n");
        Buffer.add_string b ("    " ^ render x))
      items;
    Buffer.add_string b (if items = [] then "]" else "\n  ]")
  in
  list "spans" snap.spans (fun s ->
      Printf.sprintf "{\"path\": \"%s\", \"count\": %d, \"total_ms\": %s, \"max_ms\": %s}"
        (json_escape s.span_path) s.span_count
        (json_float (1000.0 *. t s.span_total_s))
        (json_float (1000.0 *. t s.span_max_s)));
  Buffer.add_string b ",\n";
  list "counters" snap.counters (fun c ->
      Printf.sprintf "{\"name\": \"%s\", \"value\": %d}" (json_escape c.counter_name)
        c.counter_value);
  Buffer.add_string b ",\n";
  list "histograms" snap.histograms (fun h ->
      Printf.sprintf
        "{\"name\": \"%s\", \"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"buckets\": \
         [%s]}"
        (json_escape h.hist_name) h.hist_count (json_float h.hist_sum) (json_float h.hist_min)
        (json_float h.hist_max)
        (String.concat ", "
           (List.map
              (fun bk -> Printf.sprintf "{\"le\": %s, \"count\": %d}" (json_float bk.le) bk.bucket_count)
              h.hist_buckets)));
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let trace_events_json () =
  let events = List.rev !Span.trace in
  let t0 = match events with [] -> 0.0 | e :: _ -> e.ev_start in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  List.iteri
    (fun i e ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": 0, \"tid\": 0, \"ts\": %.1f, \"dur\": \
            %.1f}"
           (json_escape e.ev_path)
           (1e6 *. (e.ev_start -. t0))
           (1e6 *. e.ev_dur)))
    events;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
