(** Dependency-light observability for the Maestro pipeline.

    Every layer of the toolchain — symbolic execution, constraint
    derivation, GF(2)/SAT solving, code generation, the parallel runtime
    and the performance model — reports into one global, in-process
    registry through three instrument kinds:

    - {e spans} ({!Span.with_span}): wall-clock timing of named phases,
      nested into slash-separated paths ([pipeline/symbex]);
    - {e counters} ({!Counter}): monotonic event counts (symbex paths
      explored, SAT clauses added, Toeplitz hashes computed, …);
    - {e histograms} ({!Histogram}): value distributions (per-core packet
      counts, per-core traffic shares, …).

    Collection is {b off by default} and the disabled fast path is a
    single mutable-bool load per call site, so instrumented hot paths
    (e.g. {!Nic.Toeplitz.hash}) cost nothing measurable when telemetry
    is off; [bench/micro.ml] measures this (< 2 % on the 12-byte
    Toeplitz hash, the cheapest instrumented operation).

    Snapshots are rendered either as a human-readable summary
    ({!pp_summary}, the CLI's [--stats] output) or as a versioned JSON
    document ({!to_json}, schema {!schema_version}) — the format of the
    [BENCH_<nf>.json] files written by [bench/main.exe] that make
    perf claims diffable across PRs.  {!trace_events_json} additionally
    renders the chronological span log in the Chrome [about:tracing]
    event format (the CLI's [--trace-json FILE]).

    The registry is process-global and {b not} domain-safe: counters use
    [Atomic] so stray increments from worker domains cannot corrupt
    them, but spans assume a single instrumenting thread (true for the
    pipeline, the deterministic runtime and the benchmark harness). *)

val enabled : unit -> bool
(** Whether collection is currently on. *)

val enable : unit -> unit
(** Turn collection on.  Existing data is kept; call {!reset} first for
    a fresh measurement window. *)

val disable : unit -> unit
(** Turn collection off.  Collected data remains readable via
    {!snapshot}. *)

val reset : unit -> unit
(** Zero every counter and histogram and drop all recorded spans (both
    aggregates and the chronological trace log). *)

(** Monotonic event counters. *)
module Counter : sig
  type t

  val make : ?doc:string -> string -> t
  (** [make name] registers (or retrieves — the registry is keyed by
      name) a counter.  Create counters once at module initialization;
      the returned handle makes the hot-path increment registry-free. *)

  val incr : t -> unit
  (** Add one.  A no-op unless {!Telemetry.enabled}. *)

  val add : t -> int -> unit
  (** Add [n].  A no-op unless {!Telemetry.enabled}. *)

  val value : t -> int
end

(** Value-distribution histograms: count, sum, min, max and
    power-of-two buckets. *)
module Histogram : sig
  type t

  val make : ?doc:string -> string -> t
  (** Same registry semantics as {!Counter.make}. *)

  val observe : t -> float -> unit
  (** Record one observation.  A no-op unless {!Telemetry.enabled}. *)
end

(** Wall-clock phase timing. *)
module Span : sig
  val with_span : string -> (unit -> 'a) -> 'a
  (** [with_span name f] runs [f] and records its wall-clock duration
      under the slash-joined path of all enclosing spans plus [name].
      The result (or exception) of [f] is passed through unchanged, and
      the span stack unwinds correctly on exceptions.  When telemetry
      is disabled this is a single bool test before calling [f]. *)
end

(** {1 Snapshots} *)

type span_stat = {
  span_path : string;  (** slash-joined nesting path *)
  span_count : int;  (** times the span was entered *)
  span_total_s : float;  (** summed wall-clock seconds *)
  span_max_s : float;  (** longest single occurrence *)
}

type counter_stat = { counter_name : string; counter_doc : string; counter_value : int }

type bucket = { le : float; bucket_count : int }
(** Observations [<= le] (cumulative, Prometheus-style). *)

type histogram_stat = {
  hist_name : string;
  hist_doc : string;
  hist_count : int;
  hist_sum : float;
  hist_min : float;
  hist_max : float;
  hist_buckets : bucket list;  (** non-empty power-of-two buckets *)
}

type snapshot = {
  spans : span_stat list;  (** sorted by path *)
  counters : counter_stat list;  (** non-zero only, sorted by name *)
  histograms : histogram_stat list;  (** non-empty only, sorted by name *)
}

val snapshot : unit -> snapshot
(** The current aggregate state.  Deterministic ordering (sorted by
    name/path) so equal measurements render identically. *)

val pp_summary : Format.formatter -> snapshot -> unit
(** The human-readable per-phase summary behind [maestro --stats]. *)

val schema_version : string
(** The versioned identifier embedded in every {!to_json} document,
    currently ["maestro-telemetry/1"].  Bump on any structural change
    so benchmark diffs across PRs stay honest. *)

val to_json : ?name:string -> ?elide_times:bool -> snapshot -> string
(** Render the snapshot as a self-describing JSON document:
    [{ "schema": ..., "name": ..., "spans": [...], "counters": [...],
    "histograms": [...] }].  [elide_times] (default [false]) writes all
    wall-clock fields as [0.0], making the document a deterministic
    function of the computation — what the golden tests compare. *)

val trace_events_json : unit -> string
(** The chronological span log in Chrome trace-event format (load in
    [about:tracing] or [ui.perfetto.dev]); timestamps are microseconds
    relative to the first recorded span. *)
