(** A configured RSS engine for one NIC port: key + field sets + indirection
    table.  This is the hardware mechanism Maestro programs; dispatching a
    packet reproduces exactly what the NIC does in hardware. *)

type t

val configure :
  ?nic:Model.t ->
  ?reta:Reta.t ->
  ?compiled:bool ->
  key:Bitvec.t ->
  sets:Field_set.t list ->
  queues:int ->
  unit ->
  t
(** Raises [Invalid_argument] when the key length differs from the NIC's,
    when a set is unsupported by the NIC, or when [queues] exceeds the NIC's
    maximum.  [nic] defaults to {!Model.E810}; [reta] defaults to a
    round-robin table.  [compiled] selects the table-driven Toeplitz fast
    path ({!Toeplitz.Key}) over the bit-by-bit reference; it defaults to
    the process-wide {!set_compile_default} setting (initially [true]).
    Both paths are bit-exact, so dispatch decisions never depend on the
    choice.  The lookup tables are compiled lazily on first hash. *)

val set_compile_default : bool -> unit
(** Set the process-wide default for [configure]'s [?compiled] — what the
    CLI's [--compiled-rss] flag toggles. *)

val compile_default_enabled : unit -> bool

val random_key : Random.State.t -> Model.t -> Bitvec.t
(** A uniformly random key of the NIC's key size — what Maestro installs
    when no sharding constraints exist (NOP, SBridge) or for lock-based
    parallelization. *)

val key : t -> Bitvec.t

val compiled_key : t -> Toeplitz.Key.t
(** The compiled lookup tables for this engine's key (forcing compilation
    if it has not happened yet). *)

val uses_compiled : t -> bool
(** Whether {!hash_of} and {!dispatch} take the table-driven fast path. *)

val nic : t -> Model.t

val sets : t -> Field_set.t list

val reta : t -> Reta.t

val with_reta : t -> Reta.t -> t

val hash_of : t -> Packet.Pkt.t -> int option
(** The 32-bit Toeplitz hash the NIC computes, or [None] when no configured
    field set matches the packet (it then goes to the default queue). *)

val dispatch : t -> Packet.Pkt.t -> int
(** The queue (= core) this packet is steered to; unmatched packets go to
    queue 0, as DPDK drivers do. *)

val pp : Format.formatter -> t -> unit
