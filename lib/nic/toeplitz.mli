(** The Toeplitz-based RSS hash (paper Fig. 4, Microsoft RSS spec).

    The 32-bit running hash is XOR-ed with the 32 most significant bits of
    the key, left-rotated once per consumed input bit, whenever the current
    input bit is 1.  Equivalently, hash bit [b] is
    [⊕_x d(x) ∧ k(x + b)] — linear over GF(2) in both the key and the
    input, which is the property RS3's solver exploits. *)

val hash : key:Bitvec.t -> Bitvec.t -> int32
(** [hash ~key d] hashes input [d].  Requires
    [Bitvec.length key >= Bitvec.length d + 32] — 52-byte keys cover the
    12-byte IPv4 TCP tuple and more.  Raises [Invalid_argument] otherwise. *)

val hash_int : key:Bitvec.t -> Bitvec.t -> int
(** Same as {!hash} with the result as a non-negative int. *)

val key_bits_for_input : int -> int
(** Minimum key width for a given input width. *)

(** Compiled keys: the table-driven fast path (DPDK [rte_thash] style).

    [compile] precomputes, for every input byte position, a 256-entry table
    of 32-bit partial hashes — entry [b] is the XOR of the key windows
    selected by the set bits of [b] — so hashing costs one lookup and one
    XOR per input byte instead of up to eight bit-window extractions.
    Results are bit-exact against {!hash}, the retained oracle; ragged
    (non-byte-multiple) input widths work because {!Bitvec} keeps the
    unused low-order bits of the last byte at zero. *)
module Key : sig
  type t

  val compile : Bitvec.t -> t
  (** Requires a key of at least 32 bits; raises [Invalid_argument]
      otherwise.  Cost is O(256 × key bytes) — compile once per configured
      key, not per packet. *)

  val key : t -> Bitvec.t
  (** The original key the tables were compiled from. *)

  val max_input_bits : t -> int
  (** Largest input width this key can hash, [length key - 32]. *)

  val hash : t -> Bitvec.t -> int32
  (** Bit-exact equivalent of [hash ~key:(key t)]; raises
      [Invalid_argument] when the input exceeds [max_input_bits]. *)

  val hash_int : t -> Bitvec.t -> int
  (** Same as {!hash} with the result as a non-negative int. *)

  val hash_bytes_int : t -> nbytes:int -> (int -> int) -> int
  (** [hash_bytes_int t ~nbytes get] hashes the [nbytes]-byte input whose
      byte [i] is [get i] (masked to 8 bits) without building a {!Bitvec}
      — the allocation-free inner loop of {!Rss.hash_of}'s fast path.
      Byte [i] must match [Bitvec.byte input i] of the equivalent
      big-endian serialization; the result is then bit-exact with {!hash}.
      Raises [Invalid_argument] when the input exceeds
      [max_input_bits]. *)
end

val microsoft_test_key : Bitvec.t
(** The 40-byte reference key from the Microsoft RSS verification suite,
    usable for validating this implementation against published vectors. *)
