type t = { table : int array; queues : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(size = 512) ~queues () =
  if not (is_power_of_two size) then invalid_arg "Reta.create: size must be a power of two";
  if queues < 1 then invalid_arg "Reta.create: queues must be >= 1";
  { table = Array.init size (fun i -> i mod queues); queues }

let size t = Array.length t.table
let queues t = t.queues
let lookup t hash = t.table.(hash land (Array.length t.table - 1))
let lookup32 t h = lookup t (Int32.to_int h land 0xffffffff)
let entries t = Array.copy t.table

let queue_loads t ~bucket_load =
  if Array.length bucket_load <> Array.length t.table then
    invalid_arg "Reta.queue_loads: bucket_load length";
  let loads = Array.make t.queues 0. in
  Array.iteri (fun i q -> loads.(q) <- loads.(q) +. bucket_load.(i)) t.table;
  loads

let imbalance t ~bucket_load =
  let loads = queue_loads t ~bucket_load in
  let total = Array.fold_left ( +. ) 0. loads in
  if total <= 0. then 1.0
  else
    let mean = total /. float_of_int t.queues in
    Array.fold_left Float.max 0. loads /. mean

(* Greedy rebalance: repeatedly move the lightest bucket of the most loaded
   queue to the least loaded queue while that reduces the spread.  This is
   the static version of the RSS++ algorithm: it swaps indirection entries,
   never splits a bucket (colliding flows stay together, §5 "attacking state
   sharding"). *)
let rebalance t ~bucket_load =
  if Array.length bucket_load <> Array.length t.table then
    invalid_arg "Reta.rebalance: bucket_load length";
  let table = Array.copy t.table in
  let loads = Array.make t.queues 0. in
  Array.iteri (fun i q -> loads.(q) <- loads.(q) +. bucket_load.(i)) table;
  let continue = ref true in
  let guard = ref (4 * Array.length table) in
  while !continue && !guard > 0 do
    decr guard;
    let hi = ref 0 and lo = ref 0 in
    Array.iteri
      (fun q l ->
        if l > loads.(!hi) then hi := q;
        if l < loads.(!lo) then lo := q)
      loads;
    if !hi = !lo then continue := false
    else begin
      (* lightest non-zero bucket currently mapped to the hot queue *)
      let best = ref (-1) in
      Array.iteri
        (fun i q ->
          if q = !hi && bucket_load.(i) > 0. then
            if !best < 0 || bucket_load.(i) < bucket_load.(!best) then best := i)
        table;
      if !best < 0 then continue := false
      else begin
        let moved = bucket_load.(!best) in
        (* only move when it strictly improves the spread *)
        if loads.(!hi) -. moved >= loads.(!lo) +. moved -. 1e-12 then begin
          table.(!best) <- !lo;
          loads.(!hi) <- loads.(!hi) -. moved;
          loads.(!lo) <- loads.(!lo) +. moved
        end
        else continue := false
      end
    end
  done;
  { t with table }

(* Failover remap: reassign every bucket pointing at a dead queue to the
   live queues, round-robin, keeping live assignments untouched.  Whole
   buckets move (colliding flows stay together, exactly like [rebalance]),
   so the sharding invariant — each flow on exactly one live core — is
   preserved by construction. *)
let remap t ~live =
  if Array.length live <> t.queues then invalid_arg "Reta.remap: live length";
  let live_qs =
    Array.of_list (List.filter (fun q -> live.(q)) (List.init t.queues Fun.id))
  in
  if Array.length live_qs = 0 then invalid_arg "Reta.remap: no live queue";
  let k = ref 0 in
  let table =
    Array.map
      (fun q ->
        if live.(q) then q
        else begin
          let q' = live_qs.(!k mod Array.length live_qs) in
          incr k;
          q'
        end)
      t.table
  in
  { t with table }

let diff a b =
  if Array.length a.table <> Array.length b.table then
    invalid_arg "Reta.diff: table sizes differ";
  if a.queues <> b.queues then invalid_arg "Reta.diff: queue counts differ";
  let moves = ref [] in
  for i = Array.length a.table - 1 downto 0 do
    if a.table.(i) <> b.table.(i) then
      moves := (i, a.table.(i), b.table.(i)) :: !moves
  done;
  !moves

let pp fmt t =
  Format.fprintf fmt "reta[%d entries -> %d queues]" (Array.length t.table) t.queues
