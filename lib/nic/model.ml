type t = E810 | X710 | Permissive

let name = function E810 -> "Intel E810" | X710 -> "Intel X710" | Permissive -> "permissive"

let key_bytes = function E810 -> 52 | X710 -> 40 | Permissive -> 52

let all_hashable = [ Field_set.ipv4; Field_set.ipv4_tcp; Field_set.ipv4_udp ]

(* Representative sets only; [supports] is the authority (the E810 accepts
   any subset via the DPDK *_ONLY modifiers, and inner-header sets via
   RSS_LEVEL_INNERMOST — the X710 has neither). *)
let supported_sets = function
  | E810 | Permissive -> all_hashable @ [ Field_set.inner_ipv4_tcp ]
  | X710 -> all_hashable

let supports t set =
  match t with
  | E810 | Permissive -> Field_set.fields set <> []
  | X710 ->
      List.exists (Field_set.equal set) [ Field_set.ipv4; Field_set.ipv4_tcp; Field_set.ipv4_udp ]

let reta_size = function E810 -> 512 | X710 -> 512 | Permissive -> 512

let max_queues = function E810 -> 256 | X710 -> 64 | Permissive -> 256

let set_size s = List.length (Field_set.fields s)

let best_set_covering t required =
  if required = [] then None
  else if List.exists (fun f -> not (Packet.Field.rss_capable f)) required then None
  else
    match t with
    | E810 | Permissive ->
        (* subset hashing: the minimal covering set is the fields themselves *)
        Some (Field_set.make required)
    | X710 ->
        let covers s =
          List.for_all (fun f -> List.exists (Packet.Field.equal f) (Field_set.fields s)) required
        in
        [ Field_set.ipv4; Field_set.ipv4_tcp ]
        |> List.filter covers
        |> List.sort (fun a b -> Int.compare (set_size a) (set_size b))
        |> (function [] -> None | s :: _ -> Some s)

let pp fmt t = Format.pp_print_string fmt (name t)
