open Packet

(* Each selected field contributes its leading [bits] to the hash input; a
   slice shorter than the field models flexible protocol extraction (ice
   RXDID / i40e flex words), which is what prefix-sharded NFs need: hashing
   a full field and cancelling its tail out of the key is not equivalent —
   the zero-windows would confine all hash variability to the top hash bits,
   which the low-bit-indexed indirection table never sees. *)
type t = { ordered : (Field.t * int) list }

(* Canonical Microsoft concatenation order; inner (encapsulated) headers
   follow the outer ones in the same address/port/proto order — the
   "inner header RSS" extraction of tunnel-aware NICs. *)
let canonical_order =
  [
    Field.Ip_src;
    Field.Ip_dst;
    Field.Src_port;
    Field.Dst_port;
    Field.Ip_proto;
    Field.Inner_ip_src;
    Field.Inner_ip_dst;
    Field.Inner_src_port;
    Field.Inner_dst_port;
    Field.Inner_ip_proto;
  ]

let make_sliced slices =
  List.iter
    (fun (f, bits) ->
      if not (Field.rss_capable f) then
        invalid_arg
          (Printf.sprintf "Field_set.make: %s cannot be hashed by RSS" (Field.to_string f));
      if bits < 1 || bits > Field.width f then
        invalid_arg
          (Printf.sprintf "Field_set.make: %d bits out of range for %s" bits (Field.to_string f)))
    slices;
  let sorted =
    List.filter_map
      (fun f -> Option.map (fun bits -> (f, bits)) (List.assoc_opt f slices))
      canonical_order
  in
  if List.length sorted <> List.length slices then
    invalid_arg "Field_set.make: duplicate or unsupported field";
  { ordered = sorted }

let make fields = make_sliced (List.map (fun f -> (f, Field.width f)) fields)

let ipv4 = make [ Field.Ip_src; Field.Ip_dst ]
let ipv4_tcp = make [ Field.Ip_src; Field.Ip_dst; Field.Src_port; Field.Dst_port ]
let ipv4_udp = ipv4_tcp

let inner_ipv4_tcp =
  make
    [
      Field.Inner_ip_src; Field.Inner_ip_dst; Field.Inner_src_port; Field.Inner_dst_port;
    ]

let fields t = List.map fst t.ordered
let slices t = t.ordered

let is_sliced t = List.exists (fun (f, bits) -> bits < Field.width f) t.ordered

let input_bits t = List.fold_left (fun acc (_, bits) -> acc + bits) 0 t.ordered

let offset t f =
  let rec go acc = function
    | [] -> None
    | (g, bits) :: rest -> if Field.equal f g then Some acc else go (acc + bits) rest
  in
  go 0 t.ordered

let slice_bits t f = List.assoc_opt f t.ordered

let needs_ports t =
  List.exists
    (fun (f, _) -> Field.equal f Field.Src_port || Field.equal f Field.Dst_port)
    t.ordered

let is_inner_field = function
  | Field.Inner_ip_src | Field.Inner_ip_dst | Field.Inner_ip_proto | Field.Inner_src_port
  | Field.Inner_dst_port ->
      true
  | _ -> false

let needs_inner t = List.exists (fun (f, _) -> is_inner_field f) t.ordered

let needs_inner_ports t =
  List.exists
    (fun (f, _) -> Field.equal f Field.Inner_src_port || Field.equal f Field.Inner_dst_port)
    t.ordered

let matches t (p : Pkt.t) =
  p.Pkt.eth_type = Pkt.ipv4_ethertype
  && ((not (needs_ports t))
     || match p.Pkt.proto with Pkt.Tcp | Pkt.Udp -> true | Pkt.Other _ -> false)
  && ((not (needs_inner t)) || p.Pkt.encap <> None)
  && ((not (needs_inner_ports t))
     ||
     match p.Pkt.encap with
     | Some { Pkt.in_proto = Pkt.Tcp | Pkt.Udp; _ } -> true
     | _ -> false)

let hash_input t p =
  if not (matches t p) then None
  else
    Some
      (Bitvec.concat
         (List.map
            (fun (f, bits) -> Bitvec.sub (Pkt.get_field p f) ~pos:0 ~len:bits)
            t.ordered))

(* Byte-aligned extraction plan for the per-packet fast path: entry [i]
   is [(f, shift)] such that byte [i] of the concatenated hash input is
   [(field_int p f lsr (8 * shift)) land 0xff].  Only exists when every
   slice is a full, byte-multiple field width — a sliced set's input is
   not byte-aligned, so it keeps the Bitvec path. *)
let byte_plan t =
  if List.exists (fun (f, bits) -> bits <> Field.width f || bits mod 8 <> 0) t.ordered
  then None
  else
    Some
      (Array.of_list
         (List.concat_map
            (fun (f, bits) ->
              let nb = bits / 8 in
              List.init nb (fun i -> (f, nb - 1 - i)))
            t.ordered))

let applies_to_proto _t = function Pkt.Tcp | Pkt.Udp -> true | Pkt.Other _ -> false

let equal a b = a.ordered = b.ordered
let compare a b = Stdlib.compare a.ordered b.ordered

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       (fun fmt (f, bits) ->
         if bits = Field.width f then Field.pp fmt f
         else Format.fprintf fmt "%a[0:%d]" Field.pp f bits))
    t.ordered
