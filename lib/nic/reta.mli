(** The RSS indirection table (RETA).

    The low bits of the Toeplitz hash index a table of queue identifiers.
    Under skewed (Zipfian) traffic some buckets become much hotter than
    others; RSS++-style balancing reassigns hot buckets to underloaded
    queues (paper §4, "Traffic skew").  We implement the static variant the
    paper uses in its experiments. *)

type t

val create : ?size:int -> queues:int -> unit -> t
(** Round-robin filled table; [size] defaults to 512 and must be a power of
    two; [queues >= 1]. *)

val size : t -> int

val queues : t -> int

val lookup : t -> int -> int
(** [lookup t hash] is the queue for a (non-negative) hash value. *)

val lookup32 : t -> int32 -> int

val entries : t -> int array
(** A copy of the table. *)

val rebalance : t -> bucket_load:float array -> t
(** Greedy RSS++-style balancing: given the observed per-bucket load (same
    length as the table), reassign buckets so that per-queue total loads are
    as even as a greedy pass can make them.  Queue count is preserved. *)

val remap : t -> live:bool array -> t
(** Failover remap: every bucket pointing at a queue whose [live] entry is
    [false] is reassigned round-robin to the live queues; buckets already
    on live queues are untouched.  Whole buckets move, so colliding flows
    stay together and each flow still lands on exactly one (live) queue —
    the supervisor uses this to migrate a dead core's traffic (RSS++-style
    remap, paper §4.4).  Raises [Invalid_argument] when [live] does not
    match the queue count or no queue is live. *)

val diff : t -> t -> (int * int * int) list
(** [diff old new_] lists the buckets whose queue assignment changed, as
    [(bucket, from_queue, to_queue)] triples in bucket order — the move set
    a live rebalance must migrate state for.  Raises [Invalid_argument]
    when the tables differ in size or queue count. *)

val queue_loads : t -> bucket_load:float array -> float array
(** Per-queue load implied by a bucket-load vector. *)

val imbalance : t -> bucket_load:float array -> float
(** max(queue load) / mean(queue load); 1.0 is perfectly balanced. *)

val pp : Format.formatter -> t -> unit
