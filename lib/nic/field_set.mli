(** RSS packet-field sets.

    A field set selects which header fields the NIC feeds to the Toeplitz
    hash and in which order — the DPDK [RTE_ETH_RSS_*] options.  The hash
    input is the big-endian concatenation of the selected fields in the
    canonical Microsoft order (addresses before ports, source before
    destination). *)

type t

val make : Packet.Field.t list -> t
(** Whole fields, stored in canonical order regardless of argument order.
    Raises [Invalid_argument] on duplicates or on fields RSS can never hash
    (link-layer fields). *)

val make_sliced : (Packet.Field.t * int) list -> t
(** Each field contributes only its leading [bits] to the hash input — the
    flexible protocol-extraction mode prefix-sharded NFs need (see the
    comment in the implementation for why key-side cancellation cannot
    replace it). *)

val ipv4 : t
(** Source and destination IPv4 addresses (DPDK [RSS_IPV4]). *)

val ipv4_tcp : t
(** Addresses and TCP ports — the 12-byte tuple of [RSS_NONFRAG_IPV4_TCP].
    The IP protocol number is not part of the hash input (it selects which
    field set applies), matching real NICs. *)

val ipv4_udp : t

val inner_ipv4_tcp : t
(** Inner (encapsulated) addresses and ports of a terminated VXLAN/GRE
    tunnel — the inner-header extraction of tunnel-aware NICs (DPDK
    [RSS_LEVEL_INNERMOST]).  Only matches packets carrying an
    {!Packet.Pkt.encap} view. *)

val fields : t -> Packet.Field.t list

val slices : t -> (Packet.Field.t * int) list
(** Field and contributed leading bits, in canonical order. *)

val is_sliced : t -> bool
(** Whether any field contributes fewer than its full bits. *)

val slice_bits : t -> Packet.Field.t -> int option
(** Contributed bits of a field, when selected. *)

val input_bits : t -> int
(** Width of the hash input this set produces. *)

val offset : t -> Packet.Field.t -> int option
(** Bit offset of a field inside the hash input, when selected. *)

val is_inner_field : Packet.Field.t -> bool
(** Whether the field addresses an encapsulated (inner) header. *)

val matches : t -> Packet.Pkt.t -> bool
(** Whether the packet has all the selected fields (e.g. port-bearing sets
    require TCP or UDP; inner-header sets require an encapsulated packet,
    inner-port-bearing ones an inner TCP/UDP). *)

val byte_plan : t -> (Packet.Field.t * int) array option
(** Byte-aligned extraction plan for {!Rss}'s allocation-free hash path:
    entry [i] is [(f, shift)] such that byte [i] of the concatenated hash
    input equals [(Pkt.field_int p f lsr (8 * shift)) land 0xff].  [None]
    when the set is sliced (or otherwise not byte-aligned), in which case
    callers must serialize through {!hash_input}. *)

val hash_input : t -> Packet.Pkt.t -> Bitvec.t option
(** The hash input bits for this packet, or [None] when {!matches} is
    false. *)

val applies_to_proto : t -> Packet.Pkt.proto -> bool
(** Which L4 protocol this set serves when installed: a ports-bearing set
    built with TCP in mind still applies to UDP — sets are generic here and
    selection is done by {!matches}. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
