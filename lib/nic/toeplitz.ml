let key_bits_for_input n = n + 32

let c_hashes = Telemetry.Counter.make "toeplitz.hashes" ~doc:"Toeplitz hashes computed"

let hash ~key d =
  Telemetry.Counter.incr c_hashes;
  let kn = Bitvec.length key and dn = Bitvec.length d in
  if kn < key_bits_for_input dn then invalid_arg "Toeplitz.hash: key too short for input";
  let acc = ref 0 in
  (* window = key bits [x .. x+31] when input bit x is set *)
  for x = 0 to dn - 1 do
    if Bitvec.get d x then begin
      let w = ref 0 in
      for b = 0 to 31 do
        w := (!w lsl 1) lor (if Bitvec.get key (x + b) then 1 else 0)
      done;
      acc := !acc lxor !w
    end
  done;
  Int32.of_int !acc

let hash_int ~key d = Int32.to_int (hash ~key d) land 0xffffffff

(* Key published in the Microsoft RSS hash verification suite and used as
   DPDK's default. *)
let microsoft_test_key =
  Bitvec.of_hex
    "6d5a56da255b0ec24167253d43a38fb0d0ca2bcbae7b30b477cb2da38030f20c6a42b73bbeac01fa"
