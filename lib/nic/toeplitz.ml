let key_bits_for_input n = n + 32

let c_hashes = Telemetry.Counter.make "toeplitz.hashes" ~doc:"Toeplitz hashes computed"

let hash ~key d =
  Telemetry.Counter.incr c_hashes;
  let kn = Bitvec.length key and dn = Bitvec.length d in
  if kn < key_bits_for_input dn then invalid_arg "Toeplitz.hash: key too short for input";
  let acc = ref 0 in
  (* window = key bits [x .. x+31] when input bit x is set *)
  for x = 0 to dn - 1 do
    if Bitvec.get d x then begin
      let w = ref 0 in
      for b = 0 to 31 do
        w := (!w lsl 1) lor (if Bitvec.get key (x + b) then 1 else 0)
      done;
      acc := !acc lxor !w
    end
  done;
  Int32.of_int !acc

let hash_int ~key d = Int32.to_int (hash ~key d) land 0xffffffff

(* Table-driven fast path (DPDK rte_thash style).  For every input *byte*
   position we precompute a 256-entry table of 32-bit partial hashes: entry
   [b] is the XOR of the key windows selected by the set bits of [b].  A
   hash is then one table lookup and one XOR per input byte instead of up to
   eight 32-bit window extractions — the bit-by-bit [hash] above stays as
   the oracle the property tests compare against. *)
module Key = struct
  type t = {
    key : Bitvec.t;
    max_input_bits : int; (* largest input this key can hash *)
    tables : int array array; (* tables.(i).(b): partial hash of byte value b at byte i *)
  }

  let compile key =
    let kn = Bitvec.length key in
    if kn < 32 then invalid_arg "Toeplitz.Key.compile: key shorter than 32 bits";
    let max_input_bits = kn - 32 in
    let nbytes = (max_input_bits + 7) / 8 in
    (* window.(x) = key bits [x .. x+31], computed incrementally *)
    let windows = Array.make (8 * nbytes) 0 in
    let w = ref 0 in
    for b = 0 to 31 do
      w := (!w lsl 1) lor (if Bitvec.get key b then 1 else 0)
    done;
    for x = 0 to max_input_bits - 1 do
      windows.(x) <- !w;
      w := ((!w lsl 1) land 0xffffffff) lor (if Bitvec.get key (x + 32) then 1 else 0)
    done;
    (* positions past [max_input_bits] keep window 0: they are only ever
       indexed by the zero padding bits of a ragged last byte, which never
       select an entry *)
    let tables =
      Array.init nbytes (fun i ->
          let t = Array.make 256 0 in
          (* t.(v) = t.(v with lowest set bit cleared) xor window of that bit;
             bit (1 lsl k) of the byte value is input bit 8i + (7-k) *)
          for v = 1 to 255 do
            let low = v land -v in
            let k = ref 0 in
            while low lsr !k <> 1 do
              incr k
            done;
            t.(v) <- t.(v land (v - 1)) lxor windows.((8 * i) + (7 - !k))
          done;
          t)
    in
    { key; max_input_bits; tables }

  let key t = t.key
  let max_input_bits t = t.max_input_bits

  let hash t d =
    Telemetry.Counter.incr c_hashes;
    let dn = Bitvec.length d in
    if dn > t.max_input_bits then invalid_arg "Toeplitz.Key.hash: key too short for input";
    let acc = ref 0 in
    for i = 0 to Bitvec.bytes_length d - 1 do
      acc := !acc lxor Array.unsafe_get t.tables.(i) (Bitvec.byte d i)
    done;
    Int32.of_int !acc

  let hash_int t d = Int32.to_int (hash t d) land 0xffffffff

  (* Allocation-free variant for the per-packet fast path: the caller
     supplies the input bytes through [get] instead of materializing a
     Bitvec.  Byte [i] must equal [Bitvec.byte input i] of the equivalent
     big-endian serialization, so results stay bit-exact with {!hash}. *)
  let hash_bytes_int t ~nbytes get =
    Telemetry.Counter.incr c_hashes;
    if nbytes * 8 > t.max_input_bits then
      invalid_arg "Toeplitz.Key.hash_bytes_int: key too short for input";
    let acc = ref 0 in
    for i = 0 to nbytes - 1 do
      acc := !acc lxor Array.unsafe_get t.tables.(i) (get i land 0xff)
    done;
    !acc land 0xffffffff
end

(* Key published in the Microsoft RSS hash verification suite and used as
   DPDK's default. *)
let microsoft_test_key =
  Bitvec.of_hex
    "6d5a56da255b0ec24167253d43a38fb0d0ca2bcbae7b30b477cb2da38030f20c6a42b73bbeac01fa"
