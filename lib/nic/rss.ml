(* Whether freshly configured engines hash through compiled Toeplitz tables
   (the fast path) or the bit-by-bit reference.  The CLI's --compiled-rss
   flag flips this; tests flip it to compare the two paths end to end. *)
let compile_default = ref true

let set_compile_default b = compile_default := b
let compile_default_enabled () = !compile_default

type t = {
  nic : Model.t;
  key : Bitvec.t;
  ckey : Toeplitz.Key.t Lazy.t;
  compiled : bool;
  sets : Field_set.t list;
  hashers : (Packet.Pkt.t -> int option) list Lazy.t;
      (* one per field set, in order; each returns the hash when the set
         matches the packet.  Built lazily so engines configured but never
         used for software dispatch pay nothing. *)
  reta : Reta.t;
}

(* Per-set hasher.  Compiled engines with a byte-aligned field set take the
   allocation-free path: field bytes feed the Toeplitz tables directly,
   skipping the per-packet Bitvec serialization of [Field_set.hash_input]
   (which dominated software dispatch cost).  Sliced sets and reference
   (uncompiled) engines keep the Bitvec path, which the property tests use
   as the oracle. *)
let hasher ~compiled ~key ~ckey s =
  match if compiled then Field_set.byte_plan s else None with
  | Some plan ->
      let ck = Lazy.force ckey in
      let nbytes = Array.length plan in
      fun p ->
        if Field_set.matches s p then
          Some
            (Toeplitz.Key.hash_bytes_int ck ~nbytes (fun i ->
                 let f, shift = Array.unsafe_get plan i in
                 Packet.Pkt.field_int p f lsr (8 * shift)))
        else None
  | None -> (
      fun p ->
        match Field_set.hash_input s p with
        | Some d ->
            Some
              (if compiled then Toeplitz.Key.hash_int (Lazy.force ckey) d
               else Toeplitz.hash_int ~key d)
        | None -> None)

let configure ?(nic = Model.E810) ?reta ?compiled ~key ~sets ~queues () =
  if Bitvec.length key <> 8 * Model.key_bytes nic then
    invalid_arg
      (Printf.sprintf "Rss.configure: key must be %d bytes for %s" (Model.key_bytes nic)
         (Model.name nic));
  List.iter
    (fun s ->
      if not (Model.supports nic s) then
        invalid_arg
          (Format.asprintf "Rss.configure: %s does not support field set %a" (Model.name nic)
             Field_set.pp s))
    sets;
  if queues < 1 || queues > Model.max_queues nic then invalid_arg "Rss.configure: queues";
  let reta =
    match reta with
    | Some r ->
        if Reta.queues r <> queues then invalid_arg "Rss.configure: reta queue count";
        r
    | None -> Reta.create ~size:(Model.reta_size nic) ~queues ()
  in
  let compiled = Option.value ~default:!compile_default compiled in
  let ckey = lazy (Toeplitz.Key.compile key) in
  let hashers = lazy (List.map (hasher ~compiled ~key ~ckey) sets) in
  { nic; key; ckey; compiled; sets; hashers; reta }

let random_key rng nic = Bitvec.random rng (8 * Model.key_bytes nic)

let key t = t.key
let compiled_key t = Lazy.force t.ckey
let uses_compiled t = t.compiled
let nic t = t.nic
let sets t = t.sets
let reta t = t.reta
let with_reta t reta = { t with reta }

let hash_of t p =
  let rec go = function
    | [] -> None
    | h :: rest -> ( match h p with Some _ as r -> r | None -> go rest)
  in
  go (Lazy.force t.hashers)

let dispatch t p = match hash_of t p with Some h -> Reta.lookup t.reta h | None -> 0

let pp fmt t =
  Format.fprintf fmt "@[<v>nic: %s@ key: %s@ sets: %a@ %a@]" (Model.name t.nic)
    (Bitvec.to_hex t.key)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Field_set.pp)
    t.sets Reta.pp t.reta
