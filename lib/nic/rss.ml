(* Whether freshly configured engines hash through compiled Toeplitz tables
   (the fast path) or the bit-by-bit reference.  The CLI's --compiled-rss
   flag flips this; tests flip it to compare the two paths end to end. *)
let compile_default = ref true

let set_compile_default b = compile_default := b
let compile_default_enabled () = !compile_default

type t = {
  nic : Model.t;
  key : Bitvec.t;
  ckey : Toeplitz.Key.t Lazy.t;
  compiled : bool;
  sets : Field_set.t list;
  reta : Reta.t;
}

let configure ?(nic = Model.E810) ?reta ?compiled ~key ~sets ~queues () =
  if Bitvec.length key <> 8 * Model.key_bytes nic then
    invalid_arg
      (Printf.sprintf "Rss.configure: key must be %d bytes for %s" (Model.key_bytes nic)
         (Model.name nic));
  List.iter
    (fun s ->
      if not (Model.supports nic s) then
        invalid_arg
          (Format.asprintf "Rss.configure: %s does not support field set %a" (Model.name nic)
             Field_set.pp s))
    sets;
  if queues < 1 || queues > Model.max_queues nic then invalid_arg "Rss.configure: queues";
  let reta =
    match reta with
    | Some r ->
        if Reta.queues r <> queues then invalid_arg "Rss.configure: reta queue count";
        r
    | None -> Reta.create ~size:(Model.reta_size nic) ~queues ()
  in
  let compiled = Option.value ~default:!compile_default compiled in
  { nic; key; ckey = lazy (Toeplitz.Key.compile key); compiled; sets; reta }

let random_key rng nic = Bitvec.random rng (8 * Model.key_bytes nic)

let key t = t.key
let compiled_key t = Lazy.force t.ckey
let uses_compiled t = t.compiled
let nic t = t.nic
let sets t = t.sets
let reta t = t.reta
let with_reta t reta = { t with reta }

let hash_of t p =
  let rec go = function
    | [] -> None
    | s :: rest -> (
        match Field_set.hash_input s p with
        | Some d ->
            Some
              (if t.compiled then Toeplitz.Key.hash_int (Lazy.force t.ckey) d
               else Toeplitz.hash_int ~key:t.key d)
        | None -> go rest)
  in
  go t.sets

let dispatch t p = match hash_of t p with Some h -> Reta.lookup t.reta h | None -> 0

let pp fmt t =
  Format.fprintf fmt "@[<v>nic: %s@ key: %s@ sets: %a@ %a@]" (Model.name t.nic)
    (Bitvec.to_hex t.key)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Field_set.pp)
    t.sets Reta.pp t.reta
