type t = { bits : int; data : Bytes.t }

let nbytes bits = (bits + 7) / 8

let create bits =
  if bits < 0 then invalid_arg "Bitvec.create";
  { bits; data = Bytes.make (nbytes bits) '\000' }

(* Unused low-order bits of the last byte must stay zero so that [equal] and
   [compare] can work directly on the byte representation. *)
let normalize v =
  let nb = nbytes v.bits in
  if nb > 0 then begin
    let used = v.bits - (8 * (nb - 1)) in
    if used < 8 then begin
      let mask = 0xff lxor ((1 lsl (8 - used)) - 1) in
      let last = Char.code (Bytes.get v.data (nb - 1)) in
      Bytes.set v.data (nb - 1) (Char.chr (last land mask))
    end
  end;
  v

let of_bytes ?bits b =
  let bits = match bits with None -> 8 * Bytes.length b | Some n -> n in
  if bits < 0 || nbytes bits > Bytes.length b then invalid_arg "Bitvec.of_bytes";
  normalize { bits; data = Bytes.sub b 0 (nbytes bits) }

let of_string ?bits s = of_bytes ?bits (Bytes.of_string s)

let length v = v.bits

let bytes_length v = nbytes v.bits

let byte v i =
  if i < 0 || i >= nbytes v.bits then invalid_arg "Bitvec.byte: byte index out of range";
  Char.code (Bytes.unsafe_get v.data i)

let check_index v i =
  if i < 0 || i >= v.bits then invalid_arg "Bitvec: bit index out of range"

let get v i =
  check_index v i;
  let byte = Char.code (Bytes.get v.data (i / 8)) in
  byte land (0x80 lsr (i mod 8)) <> 0

let set v i b =
  check_index v i;
  let data = Bytes.copy v.data in
  let cur = Char.code (Bytes.get data (i / 8)) in
  let mask = 0x80 lsr (i mod 8) in
  let nxt = if b then cur lor mask else cur land lnot mask in
  Bytes.set data (i / 8) (Char.chr (nxt land 0xff));
  { v with data }

let init n f =
  let v = create n in
  for i = 0 to n - 1 do
    if f i then begin
      let cur = Char.code (Bytes.get v.data (i / 8)) in
      Bytes.set v.data (i / 8) (Char.chr (cur lor (0x80 lsr (i mod 8))))
    end
  done;
  v

let of_bool_list l =
  let arr = Array.of_list l in
  init (Array.length arr) (fun i -> arr.(i))

let to_bool_list v = List.init v.bits (get v)

let of_hex s =
  let digits = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | ':' -> ()
      | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> Buffer.add_char digits c
      | _ -> invalid_arg "Bitvec.of_hex: invalid character")
    s;
  let s = Buffer.contents digits in
  if String.length s mod 2 <> 0 then invalid_arg "Bitvec.of_hex: odd digit count";
  let nb = String.length s / 2 in
  let data = Bytes.create nb in
  for i = 0 to nb - 1 do
    Bytes.set data i (Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
  done;
  { bits = 8 * nb; data }

let of_int ~width v =
  if width < 0 || width > 62 then invalid_arg "Bitvec.of_int";
  if v < 0 then invalid_arg "Bitvec.of_int: negative";
  init width (fun i -> (v lsr (width - 1 - i)) land 1 = 1)

let of_int32 v =
  init 32 (fun i -> Int32.logand (Int32.shift_right_logical v (31 - i)) 1l = 1l)

let to_int v =
  if v.bits > 62 then invalid_arg "Bitvec.to_int: too wide";
  let r = ref 0 in
  for i = 0 to v.bits - 1 do
    r := (!r lsl 1) lor (if get v i then 1 else 0)
  done;
  !r

let to_int32 v =
  if v.bits <> 32 then invalid_arg "Bitvec.to_int32: not 32 bits";
  let r = ref 0l in
  for i = 0 to 31 do
    r := Int32.logor (Int32.shift_left !r 1) (if get v i then 1l else 0l)
  done;
  !r

let random rng n = init n (fun _ -> Random.State.bool rng)

let append a b =
  init (a.bits + b.bits) (fun i -> if i < a.bits then get a i else get b (i - a.bits))

let concat vs = List.fold_left append (create 0) vs

let sub v ~pos ~len =
  if pos < 0 || len < 0 || pos + len > v.bits then invalid_arg "Bitvec.sub";
  init len (fun i -> get v (pos + i))

let to_bytes v = Bytes.copy v.data

let map2 name f a b =
  if a.bits <> b.bits then invalid_arg name;
  let data = Bytes.create (nbytes a.bits) in
  for i = 0 to Bytes.length data - 1 do
    let x = Char.code (Bytes.get a.data i) and y = Char.code (Bytes.get b.data i) in
    Bytes.set data i (Char.chr (f x y land 0xff))
  done;
  normalize { bits = a.bits; data }

let xor a b = map2 "Bitvec.xor" ( lxor ) a b
let and_ a b = map2 "Bitvec.and_" ( land ) a b
let or_ a b = map2 "Bitvec.or_" ( lor ) a b

let not_ v =
  let data = Bytes.create (nbytes v.bits) in
  for i = 0 to Bytes.length data - 1 do
    Bytes.set data i (Char.chr (lnot (Char.code (Bytes.get v.data i)) land 0xff))
  done;
  normalize { bits = v.bits; data }

let popcount v =
  let n = ref 0 in
  Bytes.iter
    (fun c ->
      let x = ref (Char.code c) in
      while !x <> 0 do
        x := !x land (!x - 1);
        incr n
      done)
    v.data;
  !n

let is_zero v = popcount v = 0

let rotate_left v k =
  if v.bits = 0 then v
  else
    let k = ((k mod v.bits) + v.bits) mod v.bits in
    init v.bits (fun i -> get v ((i + k) mod v.bits))

let equal a b = a.bits = b.bits && Bytes.equal a.data b.data

let compare a b =
  match Int.compare a.bits b.bits with 0 -> Bytes.compare a.data b.data | c -> c

let hex_digit = "0123456789abcdef"

let to_hex v =
  String.init (2 * bytes_length v) (fun i ->
      let b = byte v (i lsr 1) in
      hex_digit.[if i land 1 = 0 then b lsr 4 else b land 0xf])

let to_bin v = String.init v.bits (fun i -> if get v i then '1' else '0')

let pp fmt v = Format.pp_print_string fmt (to_hex v)
