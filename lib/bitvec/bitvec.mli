(** Fixed-width bit vectors with MSB-first bit addressing.

    Bit [0] of a vector is the most significant bit of its first byte, which
    is the convention used by the Toeplitz RSS hash specification and by
    network headers in general.  All vectors carry their width in bits; a
    width that is not a multiple of 8 keeps the unused low-order bits of the
    last byte at zero. *)

type t

(** {1 Construction} *)

val create : int -> t
(** [create n] is an [n]-bit vector of all zeros.  [n >= 0]. *)

val of_bytes : ?bits:int -> bytes -> t
(** [of_bytes b] wraps a copy of [b]; [bits] defaults to [8 * Bytes.length b]
    and may be used to truncate to a non-byte-aligned width. *)

val of_string : ?bits:int -> string -> t
(** Like {!of_bytes} for a string of raw bytes. *)

val of_hex : string -> t
(** [of_hex s] parses a hexadecimal string such as ["6d5a56da"]; whitespace
    and [':'] separators are ignored.  Raises [Invalid_argument] on other
    characters or an odd digit count. *)

val of_int : width:int -> int -> t
(** [of_int ~width v] is the big-endian encoding of [v] in [width] bits
    ([0 <= width <= 62]). *)

val of_int32 : int32 -> t
(** 32-bit big-endian encoding. *)

val of_bool_list : bool list -> t
(** MSB-first list of bits. *)

val init : int -> (int -> bool) -> t
(** [init n f] has bit [i] equal to [f i]. *)

val random : Random.State.t -> int -> t
(** [random rng n] draws [n] uniformly random bits. *)

val append : t -> t -> t
(** [append a b] concatenates, [a]'s bits first. *)

val concat : t list -> t

val sub : t -> pos:int -> len:int -> t
(** [sub v ~pos ~len] extracts bits [pos .. pos+len-1].  Raises
    [Invalid_argument] when out of range. *)

(** {1 Access} *)

val length : t -> int
(** Width in bits. *)

val bytes_length : t -> int
(** Number of bytes backing the vector, [(length + 7) / 8]. *)

val byte : t -> int -> int
(** [byte v i] is byte [i] of the underlying big-endian storage, without
    copying ([0 <= i < bytes_length v]).  Bit [8*i] of the vector is the
    most significant bit of the returned byte; for a width that is not a
    multiple of 8 the unused low-order bits of the last byte are zero.
    Raises [Invalid_argument] when out of range. *)

val get : t -> int -> bool
(** [get v i] is bit [i] (MSB-first).  Raises [Invalid_argument] when out of
    range. *)

val set : t -> int -> bool -> t
(** Functional update of one bit. *)

val to_bytes : t -> bytes
(** A fresh copy of the underlying big-endian bytes. *)

val to_int : t -> int
(** Big-endian value; requires [length <= 62]. *)

val to_int32 : t -> int32
(** Big-endian value of a 32-bit vector. *)

val to_bool_list : t -> bool list

(** {1 Bitwise operations} *)

val xor : t -> t -> t
(** Pointwise xor; widths must match. *)

val and_ : t -> t -> t

val or_ : t -> t -> t

val not_ : t -> t

val popcount : t -> int
(** Number of set bits. *)

val is_zero : t -> bool

val rotate_left : t -> int -> t

(** {1 Comparison and printing} *)

val equal : t -> t -> bool

val compare : t -> t -> int

val to_hex : t -> string
(** Lowercase hexadecimal, zero-padded to whole bytes. *)

val to_bin : t -> string
(** A string of ['0']/['1'] characters, MSB first. *)

val pp : Format.formatter -> t -> unit
(** Prints as hexadecimal. *)
