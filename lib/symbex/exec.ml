open Dsl.Ast

type model = { nf : Dsl.Ast.t; info : Dsl.Check.info; trees : Tree.t array }

let path_budget = 100_000

let c_paths = Telemetry.Counter.make "symbex.paths" ~doc:"execution paths explored"
let c_calls = Telemetry.Counter.make "symbex.calls" ~doc:"stateful calls catalogued"
let c_runs = Telemetry.Counter.make "symbex.runs" ~doc:"exhaustive symbolic executions"

(* Constant folding keeps the tree free of decidable branches. *)
let rec simplify (s : Sym.t) : Sym.t =
  match s with
  | Sym.Bin (op, a, b) -> (
      let a = simplify a and b = simplify b in
      match (op, a, b) with
      | (Eq | Neq | Lt | Le | Add | Sub | Mul | Div | Mod | Land | Lor), Sym.Const (wa, va), Sym.Const (wb, vb)
        ->
          let w = max wa wb in
          let mask v = if w >= 62 then v else v land ((1 lsl w) - 1) in
          let bool_ b = Sym.Const (1, if b then 1 else 0) in
          (match op with
          | Add -> Sym.Const (w, mask (va + vb))
          | Sub -> Sym.Const (w, mask (va - vb))
          | Mul -> Sym.Const (w, mask (va * vb))
          | Div -> Sym.Const (w, if vb = 0 then 0 else mask (va / vb))
          | Mod -> Sym.Const (w, if vb = 0 then 0 else mask (va mod vb))
          | Eq -> bool_ (va = vb)
          | Neq -> bool_ (va <> vb)
          | Lt -> bool_ (va < vb)
          | Le -> bool_ (va <= vb)
          | Land -> Sym.Const (1, va land vb)
          | Lor -> Sym.Const (1, va lor vb))
      | Eq, a, b when Sym.equal a b -> Sym.Const (1, 1)
      | Neq, a, b when Sym.equal a b -> Sym.Const (1, 0)
      | Land, Sym.Const (_, 1), x | Land, x, Sym.Const (_, 1) -> x
      | Land, Sym.Const (_, 0), _ | Land, _, Sym.Const (_, 0) -> Sym.Const (1, 0)
      | Lor, Sym.Const (_, 0), x | Lor, x, Sym.Const (_, 0) -> x
      | Lor, Sym.Const (_, 1), _ | Lor, _, Sym.Const (_, 1) -> Sym.Const (1, 1)
      | _ -> Sym.Bin (op, a, b))
  | Sym.Not a -> (
      match simplify a with Sym.Const (_, v) -> Sym.Const (1, 1 - v) | a -> Sym.Not a)
  | Sym.Cast (w, a) -> (
      match simplify a with
      | Sym.Const (_, v) -> Sym.Const (w, if w >= 62 then v else v land ((1 lsl w) - 1))
      | a -> Sym.Cast (w, a))
  | s -> s

type env = {
  vars : (string * Sym.t) list;
  records : (string * (int * string)) list; (* record var -> (call id, object) *)
  headers : (Packet.Field.t * Sym.t) list; (* current symbolic header values *)
  rewrites : (Packet.Field.t * Sym.t) list; (* Set_field history, oldest first *)
  path : Tree.path;
}

let header env f =
  match List.assoc_opt f env.headers with Some s -> s | None -> Sym.Field f

let run nf =
  let info = Dsl.Check.check_exn nf in
  let next_id = ref 0 in
  let paths_seen = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let rec eval env port (e : expr) : Sym.t =
    match e with
    | Const (w, v) -> Sym.Const (w, v)
    | Field f -> header env f
    | In_port -> Sym.Const (16, port)
    | Now -> Sym.Now
    | Pkt_len -> Sym.Pkt_len
    | Var x -> (
        match List.assoc_opt x env.vars with
        | Some s -> s
        | None -> failwith ("symbex: unbound variable " ^ x))
    | Record_field (r, f) -> (
        match List.assoc_opt r env.records with
        | Some (id, obj) -> Sym.Record (id, obj, f)
        | None -> failwith ("symbex: unbound record " ^ r))
    | Bin (op, a, b) -> simplify (Sym.Bin (op, eval env port a, eval env port b))
    | Not a -> simplify (Sym.Not (eval env port a))
    | Cast (w, a) -> simplify (Sym.Cast (w, eval env port a))
  in
  let eval_key env port key = List.map (eval env port) key in
  let mk_call env port obj kind ?key ?index ?(stored = []) () =
    { Tree.id = fresh (); port; obj; kind; key; index; stored; path = env.path }
  in
  (* Fork on a symbolic condition, pruning syntactically contradicted sides. *)
  let rec branch env port cond k_true k_false =
    match cond with
    | Sym.Const (_, 1) -> go { env with path = env.path } port k_true
    | Sym.Const (_, _) -> go env port k_false
    | _ ->
        let holds b = List.exists (fun (c, p) -> Sym.equal c cond && p = b) env.path in
        if holds true then go env port k_true
        else if holds false then go env port k_false
        else
          let t_true = go { env with path = env.path @ [ (cond, true) ] } port k_true in
          let t_false = go { env with path = env.path @ [ (cond, false) ] } port k_false in
          Tree.Branch { cond; t_true; t_false }
  and go env port stmt : Tree.t =
    match stmt with
    | If (c, t, f) -> branch env port (eval env port c) t f
    | Let (x, e, k) -> go { env with vars = (x, eval env port e) :: env.vars } port k
    | Map_get { obj; key; found; value; k } ->
        let call =
          mk_call env port obj Dsl.Interp.Op_map_get ~key:(eval_key env port key) ()
        in
        let env =
          {
            env with
            vars =
              (found, Sym.Call (call.Tree.id, "found"))
              :: (value, Sym.Call (call.Tree.id, "value"))
              :: env.vars;
          }
        in
        Tree.Call_node (call, go env port k)
    | Map_put { obj; key; value; ok; k } ->
        let call =
          mk_call env port obj Dsl.Interp.Op_map_put ~key:(eval_key env port key)
            ~stored:[ ("value", eval env port value) ]
            ()
        in
        let env = { env with vars = (ok, Sym.Call (call.Tree.id, "ok")) :: env.vars } in
        Tree.Call_node (call, go env port k)
    | Map_erase { obj; key; k } ->
        let call =
          mk_call env port obj Dsl.Interp.Op_map_erase ~key:(eval_key env port key) ()
        in
        Tree.Call_node (call, go env port k)
    | Vec_get { obj; index; record; k } ->
        let call =
          mk_call env port obj Dsl.Interp.Op_vec_get ~index:(eval env port index) ()
        in
        let env = { env with records = (record, (call.Tree.id, obj)) :: env.records } in
        Tree.Call_node (call, go env port k)
    | Vec_set { obj; index; fields; k } ->
        let call =
          mk_call env port obj Dsl.Interp.Op_vec_set ~index:(eval env port index)
            ~stored:(List.map (fun (f, e) -> (f, eval env port e)) fields)
            ()
        in
        Tree.Call_node (call, go env port k)
    | Chain_alloc { obj; index; k_ok; k_fail } ->
        let call = mk_call env port obj Dsl.Interp.Op_chain_alloc () in
        let ok_sym = Sym.Call (call.Tree.id, "ok") in
        let env_ok =
          {
            env with
            vars = (index, Sym.Call (call.Tree.id, "index")) :: env.vars;
            path = env.path @ [ (ok_sym, true) ];
          }
        in
        let env_fail = { env with path = env.path @ [ (ok_sym, false) ] } in
        Tree.Call_node
          ( call,
            Tree.Branch
              { cond = ok_sym; t_true = go env_ok port k_ok; t_false = go env_fail port k_fail }
          )
    | Chain_rejuv { obj; index; k } ->
        let call =
          mk_call env port obj Dsl.Interp.Op_chain_rejuv ~index:(eval env port index) ()
        in
        Tree.Call_node (call, go env port k)
    | Chain_expire { obj; purges; k; _ } ->
        (* the purged maps and key vectors are recorded so the report can tie
           them to the chain's flow-table cluster *)
        let stored =
          List.concat_map (fun (m, v) -> [ (m, Sym.Const (1, 0)); (v, Sym.Const (1, 0)) ]) purges
        in
        let call = mk_call env port obj Dsl.Interp.Op_chain_expire ~stored () in
        Tree.Call_node (call, go env port k)
    | Sketch_touch { obj; key; k } ->
        let call =
          mk_call env port obj Dsl.Interp.Op_sketch_touch ~key:(eval_key env port key) ()
        in
        Tree.Call_node (call, go env port k)
    | Sketch_query { obj; key; count; k } ->
        let call =
          mk_call env port obj Dsl.Interp.Op_sketch_query ~key:(eval_key env port key) ()
        in
        let env = { env with vars = (count, Sym.Call (call.Tree.id, "count")) :: env.vars } in
        Tree.Call_node (call, go env port k)
    | Set_field (f, e, k) ->
        let v = eval env port e in
        let env =
          {
            env with
            headers = (f, v) :: List.remove_assoc f env.headers;
            rewrites = env.rewrites @ [ (f, v) ];
          }
        in
        go env port k
    | Forward e ->
        incr paths_seen;
        if !paths_seen > path_budget then failwith "symbex: path budget exceeded";
        Tree.Action_node { action = Tree.Forward (eval env port e, env.rewrites); path = env.path }
    | Drop ->
        incr paths_seen;
        if !paths_seen > path_budget then failwith "symbex: path budget exceeded";
        Tree.Action_node { action = Tree.Drop; path = env.path }
  in
  let tree_for port =
    go { vars = []; records = []; headers = []; rewrites = []; path = [] } port nf.process
  in
  let model = { nf; info; trees = Array.init nf.devices tree_for } in
  if Telemetry.enabled () then begin
    Telemetry.Counter.incr c_runs;
    Telemetry.Counter.add c_paths
      (Array.fold_left (fun acc t -> acc + Tree.count_paths t) 0 model.trees);
    Telemetry.Counter.add c_calls
      (List.length (Array.to_list model.trees |> List.concat_map Tree.all_calls))
  end;
  model

let calls model = Array.to_list model.trees |> List.concat_map Tree.all_calls

let paths model =
  Array.fold_left (fun acc t -> acc + Tree.count_paths t) 0 model.trees

let pp fmt model =
  Array.iteri
    (fun port tree ->
      Format.fprintf fmt "@[<v 2>== port %d ==@ %a@]@." port Tree.pp tree)
    model.trees
