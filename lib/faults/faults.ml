type event =
  | Worker_crash of { core : int; batch : int; times : int }
  | Slow_worker of { core : int; from_batch : int; spins : int }
  | Ring_stall of { core : int; batch : int; spins : int }
  | Solver_budget of { conflicts : int; propagations : int }
  | Phase_shift of { epoch : int; profile : string }
  | Machine_join of { epoch : int; machine : int }
  | Machine_leave of { epoch : int; machine : int }
  | Machine_fail of { epoch : int; machine : int }

type machine_action = Join | Leave | Fail

type plan = { label : string; events : event list }

exception Injected_crash of { core : int; batch : int }

let c_crashes =
  Telemetry.Counter.make "faults.injected_crashes" ~doc:"worker crashes injected by fault plans"

let c_slow =
  Telemetry.Counter.make "faults.injected_slow_batches"
    ~doc:"batches delayed by slow-worker fault events"

let c_stalls =
  Telemetry.Counter.make "faults.injected_stalls" ~doc:"one-shot consumer stalls injected"

let c_budget =
  Telemetry.Counter.make "faults.solver_budget_overrides"
    ~doc:"solver budgets overridden by fault plans"

(* Compiled plan: one-shot state lives in mutable fields.  Each crash/stall
   event targets a single core, and only that core's worker domain mutates
   its state, so no synchronization beyond the publication of [current] is
   needed. *)

type crash_state = { c_core : int; c_batch : int; mutable c_remaining : int }
type stall_state = { st_core : int; st_batch : int; st_spins : int; mutable st_fired : bool }

type compiled = {
  plan : plan;
  crashes : crash_state list;
  slows : (int * int * int) list; (* core, from_batch, spins *)
  stalls : stall_state list;
  budget : (int * int) option;
  phases : (int * string) list; (* ascending by epoch *)
  machines : (int * machine_action * int) list; (* epoch, action, machine; ascending *)
}

let current : compiled option Atomic.t = Atomic.make None

let compile plan =
  let crashes, slows, stalls, budget, phases, machines =
    List.fold_left
      (fun (cs, sl, st, b, ph, mc) ev ->
        match ev with
        | Worker_crash { core; batch; times } ->
            ({ c_core = core; c_batch = batch; c_remaining = times } :: cs, sl, st, b, ph, mc)
        | Slow_worker { core; from_batch; spins } ->
            (cs, (core, from_batch, spins) :: sl, st, b, ph, mc)
        | Ring_stall { core; batch; spins } ->
            ( cs,
              sl,
              { st_core = core; st_batch = batch; st_spins = spins; st_fired = false } :: st,
              b,
              ph,
              mc )
        | Solver_budget { conflicts; propagations } ->
            (cs, sl, st, Some (conflicts, propagations), ph, mc)
        | Phase_shift { epoch; profile } -> (cs, sl, st, b, (epoch, profile) :: ph, mc)
        | Machine_join { epoch; machine } -> (cs, sl, st, b, ph, (epoch, Join, machine) :: mc)
        | Machine_leave { epoch; machine } -> (cs, sl, st, b, ph, (epoch, Leave, machine) :: mc)
        | Machine_fail { epoch; machine } -> (cs, sl, st, b, ph, (epoch, Fail, machine) :: mc))
      ([], [], [], None, [], []) plan.events
  in
  {
    plan;
    crashes = List.rev crashes;
    slows = List.rev slows;
    stalls = List.rev stalls;
    budget;
    phases = List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev phases);
    machines =
      List.stable_sort (fun (a, _, _) (b, _, _) -> compare a b) (List.rev machines);
  }

let install plan = Atomic.set current (Some (compile plan))
let clear () = Atomic.set current None
let active () = Atomic.get current <> None

let installed () =
  match Atomic.get current with None -> None | Some c -> Some c.plan

let spin n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

let worker_batch ~core ~batch =
  match Atomic.get current with
  | None -> ()
  | Some c ->
      List.iter
        (fun (sc, from, spins) ->
          if sc = core && batch >= from then begin
            Telemetry.Counter.incr c_slow;
            spin spins
          end)
        c.slows;
      List.iter
        (fun st ->
          if st.st_core = core && batch >= st.st_batch && not st.st_fired then begin
            st.st_fired <- true;
            Telemetry.Counter.incr c_stalls;
            spin st.st_spins
          end)
        c.stalls;
      List.iter
        (fun cr ->
          if cr.c_core = core && batch >= cr.c_batch && cr.c_remaining > 0 then begin
            cr.c_remaining <- cr.c_remaining - 1;
            Telemetry.Counter.incr c_crashes;
            raise (Injected_crash { core; batch })
          end)
        c.crashes

let solver_budget () =
  match Atomic.get current with
  | Some { budget = Some b; _ } ->
      Telemetry.Counter.incr c_budget;
      Some b
  | _ -> None

let phases () =
  match Atomic.get current with None -> [] | Some c -> c.phases

let machine_events () =
  match Atomic.get current with None -> [] | Some c -> c.machines

(* --- parsing ---------------------------------------------------------------- *)

let pp_event fmt = function
  | Worker_crash { core; batch; times } ->
      Format.fprintf fmt "crash@%d:%d%s" core batch
        (if times = 1 then "" else Printf.sprintf "x%d" times)
  | Slow_worker { core; from_batch; spins } -> Format.fprintf fmt "slow@%d:%d:%d" core from_batch spins
  | Ring_stall { core; batch; spins } -> Format.fprintf fmt "stall@%d:%d:%d" core batch spins
  | Solver_budget { conflicts; propagations } ->
      Format.fprintf fmt "satbudget@%d:%d" conflicts propagations
  | Phase_shift { epoch; profile } -> Format.fprintf fmt "phase@%d:%s" epoch profile
  | Machine_join { epoch; machine } -> Format.fprintf fmt "join@%d:%d" epoch machine
  | Machine_leave { epoch; machine } -> Format.fprintf fmt "leave@%d:%d" epoch machine
  | Machine_fail { epoch; machine } -> Format.fprintf fmt "fail@%d:%d" epoch machine

let pp_plan fmt p =
  Format.fprintf fmt "%s: %a" p.label
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ";") pp_event)
    p.events

let parse spec =
  let ( let* ) = Result.bind in
  let int_of tok what =
    match int_of_string_opt tok with
    | Some i when i >= 0 -> Ok i
    | _ -> Error (Printf.sprintf "fault plan: bad %s %S" what tok)
  in
  let parse_event ev =
    match String.index_opt ev '@' with
    | None -> Error (Printf.sprintf "fault plan: missing '@' in %S" ev)
    | Some at -> (
        let kind = String.sub ev 0 at in
        let args =
          String.sub ev (at + 1) (String.length ev - at - 1) |> String.split_on_char ':'
        in
        match (kind, args) with
        | "crash", [ core; batch_times ] ->
            let batch, times =
              match String.index_opt batch_times 'x' with
              | None -> (batch_times, "1")
              | Some x ->
                  ( String.sub batch_times 0 x,
                    String.sub batch_times (x + 1) (String.length batch_times - x - 1) )
            in
            let* core = int_of core "core" in
            let* batch = int_of batch "batch" in
            let* times = int_of times "times" in
            Ok (Worker_crash { core; batch; times = max 1 times })
        | "slow", [ core; from_batch; spins ] ->
            let* core = int_of core "core" in
            let* from_batch = int_of from_batch "from-batch" in
            let* spins = int_of spins "spins" in
            Ok (Slow_worker { core; from_batch; spins })
        | "stall", [ core; batch; spins ] ->
            let* core = int_of core "core" in
            let* batch = int_of batch "batch" in
            let* spins = int_of spins "spins" in
            Ok (Ring_stall { core; batch; spins })
        | "satbudget", [ conflicts; propagations ] ->
            let* conflicts = int_of conflicts "conflicts" in
            let* propagations = int_of propagations "propagations" in
            Ok (Solver_budget { conflicts; propagations })
        | "phase", [ epoch; profile ] ->
            let* epoch = int_of epoch "epoch" in
            if profile = "" then Error (Printf.sprintf "fault plan: empty profile in %S" ev)
            else Ok (Phase_shift { epoch; profile })
        | "join", [ epoch; machine ] ->
            let* epoch = int_of epoch "epoch" in
            let* machine = int_of machine "machine" in
            Ok (Machine_join { epoch; machine })
        | "leave", [ epoch; machine ] ->
            let* epoch = int_of epoch "epoch" in
            let* machine = int_of machine "machine" in
            Ok (Machine_leave { epoch; machine })
        | "fail", [ epoch; machine ] ->
            let* epoch = int_of epoch "epoch" in
            let* machine = int_of machine "machine" in
            Ok (Machine_fail { epoch; machine })
        | _ ->
            Error
              (Printf.sprintf
                 "fault plan: unknown event %S (expected crash@C:B[xT], slow@C:F:S, stall@C:B:S, \
                  satbudget@C:P, phase@E:PROFILE, join@E:M, leave@E:M or fail@E:M)"
                 ev))
  in
  let events =
    String.split_on_char ';' spec |> List.map String.trim |> List.filter (( <> ) "")
  in
  if events = [] then Error "fault plan: empty specification"
  else
    List.fold_left
      (fun acc ev ->
        let* acc = acc in
        let* ev = parse_event ev in
        Ok (ev :: acc))
      (Ok []) events
    |> Result.map (fun evs -> { label = spec; events = List.rev evs })
