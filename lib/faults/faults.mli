(** Deterministic fault injection for the runtime and the solver.

    A fault {e plan} is a small, seeded description of what should go
    wrong and when: a worker domain crashing at its Nth batch, a worker
    slowing down, a consumer stalling so its ring fills, or the SAT
    search being forced to exhaust its budget.  Plans are installed
    process-wide; the hooks below are called from the hot paths
    ({!Runtime.Pool}'s worker loop, {!Sat.Solver.solve}) and cost a
    single atomic load when no plan is installed, so production runs pay
    nothing.

    Fault events are deterministic functions of (core, batch) or of the
    solve call — never of wall-clock time — so every recovery path
    (supervisor restart, indirection-table remap, backpressure,
    degradation ladder) is exercised reproducibly by tests and by the
    [fault-smoke] CI job. *)

type event =
  | Worker_crash of { core : int; batch : int; times : int }
      (** Raise {!Injected_crash} in core [core]'s worker loop on every
          batch attempt with index [>= batch], at most [times] times.
          [times > max_restarts] exhausts the supervisor's restart
          budget and forces a permanent core failure. *)
  | Slow_worker of { core : int; from_batch : int; spins : int }
      (** Burn [spins] extra [Domain.cpu_relax] iterations on every
          batch with index [>= from_batch] — a degraded-but-live core. *)
  | Ring_stall of { core : int; batch : int; spins : int }
      (** A one-shot long pause ([spins] relax iterations) before batch
          [batch]: the consumer freezes, the ring fills, and the
          producer's backpressure policy decides what happens. *)
  | Solver_budget of { conflicts : int; propagations : int }
      (** Override the budget of every {!Sat.Solver.solve} call,
          forcing [Unknown] and the pipeline's degradation ladder. *)
  | Phase_shift of { epoch : int; profile : string }
      (** Declare that the trace changes traffic profile (e.g. ["calm"],
          ["skew"]) from epoch [epoch] on.  Purely descriptive: no hook
          fires — trace builders ({!Traffic}, the adaptive bench) read the
          schedule back via {!phases} so the same plan string drives both
          the workload and the faults injected into it. *)
  | Machine_join of { epoch : int; machine : int }
      (** A machine joins the cluster front tier at epoch [epoch].  Like
          {!Phase_shift}, descriptive: the cluster tier reads the schedule
          back via {!machine_events} and performs the maglev-table rebuild
          and flow-state migration at the epoch boundary. *)
  | Machine_leave of { epoch : int; machine : int }
      (** Graceful decommission: the machine's flow state is migrated to
          the surviving owners before it stops taking traffic. *)
  | Machine_fail of { epoch : int; machine : int }
      (** Abrupt machine death: its local state is lost and must be
          rebuilt from SCR digests (when the NF admits a digest program)
          before the survivors take over its flows. *)

type machine_action = Join | Leave | Fail

type plan = { label : string; events : event list }

exception Injected_crash of { core : int; batch : int }
(** The exception raised by {!worker_batch} for {!Worker_crash} events.
    It deliberately escapes the task body so the worker's exception
    barrier and the supervisor see a real worker death. *)

val install : plan -> unit
(** Install [plan] process-wide, replacing any previous plan and
    resetting its one-shot state. *)

val clear : unit -> unit
(** Remove the installed plan; all hooks become no-ops again. *)

val active : unit -> bool

val installed : unit -> plan option

val parse : string -> (plan, string) result
(** Parse the CLI fault-plan syntax: semicolon-separated events

    - [crash@CORE:BATCH] or [crash@CORE:BATCHxTIMES]
    - [slow@CORE:FROM:SPINS]
    - [stall@CORE:BATCH:SPINS]
    - [satbudget@CONFLICTS:PROPS]
    - [phase@EPOCH:PROFILE]
    - [join@EPOCH:MACHINE], [leave@EPOCH:MACHINE], [fail@EPOCH:MACHINE]

    e.g. ["crash@1:3;slow@2:0:500;satbudget@0:0"],
    ["phase@0:calm;phase@4:skew;crash@2:60"] or
    ["join@2:8;leave@4:0;fail@6:3"]. *)

val pp_event : Format.formatter -> event -> unit
val pp_plan : Format.formatter -> plan -> unit

(** {1 Hooks} — called by the instrumented subsystems. *)

val worker_batch : core:int -> batch:int -> unit
(** Called by the pool worker loop before executing a batch, with the
    worker's monotonic attempt index (it keeps counting across
    supervisor restarts).  May spin (slow worker / ring stall) or raise
    {!Injected_crash}.  A no-op when no plan is installed. *)

val solver_budget : unit -> (int * int) option
(** The forced [(conflicts, propagations)] solver budget, if the
    installed plan carries a {!Solver_budget} event. *)

val phases : unit -> (int * string) list
(** The installed plan's {!Phase_shift} schedule, ascending by epoch;
    empty when no plan (or no phase events) is installed. *)

val machine_events : unit -> (int * machine_action * int) list
(** The installed plan's machine churn schedule as
    [(epoch, action, machine)] triples, ascending by epoch; empty when no
    plan (or no machine events) is installed.  Like {!phases} this is
    descriptive — the cluster tier applies it at epoch boundaries. *)
