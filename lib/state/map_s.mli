(** The Vigor map: integers indexed by arbitrary byte-string keys, with a
    fixed capacity (paper Table 1).

    Two operations access the same stored entry iff they use the same key —
    the property the Constraints Generator's rule R1 relies on.  The map
    never resizes: when full, [put] fails and the NF observes it (the
    sequential semantics that sharded per-core instances must reproduce
    locally, §4 "State sharding").

    Storage is hybrid: keys of at most {!Key.max_packed_bytes} bytes live
    in an allocation-free int-keyed table ({!Intmap}) and the [_packed]
    operations below access them by their {!Key.pack_string} form without
    materializing the string — the compiled datapath's zero-allocation
    path.  Wider keys fall back to a string-keyed table.  Both views are
    consistent: [get t s] and [find_packed t (Key.pack_string s)] always
    agree when [Key.fits s].

    Values must be DSL integers (non-negative); [min_int] is reserved as
    the internal absence sentinel. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : t -> int

val size : t -> int

val get : t -> string -> int option

val mem : t -> string -> bool

val put : t -> string -> int -> bool
(** Insert or overwrite; [false] iff the map is full and the key absent. *)

val erase : t -> string -> bool
(** [true] iff the key was present. *)

val mem_packed : t -> int -> bool

val find_packed : t -> int -> absent:int -> int
(** Allocation-free lookup by packed key; [absent] must be a value the
    map cannot hold (any negative int). *)

val put_packed : t -> int -> int -> bool

val erase_packed : t -> int -> bool

val mem_wide : t -> string -> bool
(** Wide-view operations address the string-keyed fallback table directly,
    bypassing the [Key.fits] routing — the compiled datapath uses them for
    keys it knows are too wide to pack.  [mem_wide], [find_wide] and
    [erase_wide] do not retain the key, so a [Bytes.unsafe_to_string]
    alias of a scratch buffer is a sound argument; [put_wide] stores the
    key and must be given a string the caller never mutates. *)

val find_wide : t -> string -> absent:int -> int
(** Allocation-free wide lookup; [absent] as in {!find_packed}. *)

val put_wide : t -> string -> int -> bool

val erase_wide : t -> string -> bool

val iter : t -> (string -> int -> unit) -> unit
(** Iterates packed entries (keys reconstructed as strings) then wide
    entries; order within each group is unspecified. *)

val entries : t -> (string * int) list
(** All [(key, value)] pairs, in unspecified order — a stable snapshot the
    state-migration path can walk while erasing from the live map. *)

val clear : t -> unit

val copy : t -> t
(** Independent duplicate holding the same bindings.  The packed table is
    copied field-exactly (see {!Intmap.copy}), so two copies driven by the
    same operation sequence stay structurally identical — the property
    SCR replica seeding needs when a discipline switch clones state. *)

val packed_stats : t -> int * int * int * int
(** [(max_probe, mean_probe_x100, table_slots, tombstones)] of the packed
    int-keyed table (see {!Intmap.probe_stats}).  O(table) — used by the
    stress harness to gate probe lengths and physical growth, not by the
    datapath. *)

val pp : Format.formatter -> t -> unit
