(** The Vigor "dchain": a time-aware index allocator (paper Table 1).

    It hands out integer indices from a fixed pool, remembers when each
    allocated index was last touched, and expires the stale ones in
    least-recently-touched order.  NFs pair it with a {!Map_s} (flow key →
    index) and {!Vector}s (index → per-flow data) to build flow tables with
    aging. *)

type t

val create : capacity:int -> t

val capacity : t -> int

val copy : t -> t
(** Exact structural duplicate — recency list, free-stack order and
    last-touch times all preserved — so a copy hands out the same indices
    in the same order as the original under an identical operation
    sequence. *)

val allocated : t -> int
(** Number of indices currently allocated. *)

val allocate : t -> now:int -> int option
(** A fresh index touched at [now], or [None] when the pool is exhausted. *)

val allocate_idx : t -> now:int -> int
(** Like {!allocate} but returns [-1] instead of [None] — the
    allocation-free form the compiled datapath uses. *)

val rejuvenate : t -> int -> now:int -> bool
(** Refresh the last-touch time of an allocated index; [false] when the
    index is not allocated. *)

val is_allocated : t -> int -> bool

val last_touch : t -> int -> int option
(** Last-touch time of an allocated index. *)

val free : t -> int -> bool
(** Explicitly release an index; [false] when not allocated. *)

val iter_allocated : t -> (int -> int -> unit) -> unit
(** [iter_allocated t f] calls [f index last_touch] for every allocated
    index, oldest-touched first.  [f] must not allocate or free indices of
    [t] during the walk — collect first when migrating. *)

val allocate_at : t -> touched:int -> int option
(** Like {!allocate}, but inserts the fresh index at the recency-list
    position implied by [touched] instead of at the back — the state
    migration path uses it to hand an entry to another core's chain while
    preserving both its last-touch time and the list's sorted order (so
    {!expire_before} keeps expiring oldest-first).  [None] when the pool
    is exhausted. *)

val expire_before : t -> threshold:int -> int list
(** Free every index whose last touch is strictly below [threshold]; the
    freed indices are returned oldest first, for the caller to purge the
    associated map/vector entries. *)

val oldest : t -> int option
(** The least recently touched allocated index. *)

val pp : Format.formatter -> t -> unit
