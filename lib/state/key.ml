(* Packed map/sketch keys.  The stateful containers are logically keyed by
   byte strings (the Vigor encoding that Dsl.Ast.key_of_parts produces); a
   key of at most [max_packed_bytes] bytes is represented instead as one
   tagged OCaml int — the byte content in the low 56 bits plus the length
   in the bits above — so the per-packet fast path never allocates a key.
   The length tag keeps keys of different byte lengths distinct, exactly as
   their string encodings are. *)

let max_packed_bytes = 7
let tag_shift = 8 * max_packed_bytes

type t = Packed of int | Wide of string

let fits s = String.length s <= max_packed_bytes

let tag ~bytes v = (bytes lsl tag_shift) lor v

let byte_length k = k lsr tag_shift

let pack_string s =
  let n = String.length s in
  if n > max_packed_bytes then invalid_arg "Key.pack_string: key too wide";
  let v = ref 0 in
  for i = 0 to n - 1 do
    v := (!v lsl 8) lor Char.code (String.unsafe_get s i)
  done;
  tag ~bytes:n !v

let unpack_string k =
  let n = byte_length k in
  String.init n (fun i -> Char.chr ((k lsr (8 * (n - 1 - i))) land 0xff))

let of_string s = if fits s then Packed (pack_string s) else Wide s

let pp fmt = function
  | Packed k -> Format.fprintf fmt "packed:%dB:%#x" (byte_length k) (k land ((1 lsl tag_shift) - 1))
  | Wide s -> Format.fprintf fmt "wide:%dB" (String.length s)
