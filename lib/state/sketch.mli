(** A count-min sketch (paper Table 1, used by the Connection Limiter).

    [depth] independent hash rows of [width] counters; an item's estimated
    count is the minimum of its [depth] counters, which can only
    over-estimate.  The CL drops a new connection when every indexed entry
    surpasses the limit — i.e. when the estimate exceeds it (§6.1). *)

type t

val create : ?depth:int -> ?width:int -> unit -> t
(** Defaults: depth 5 (the paper's default), width 4096. *)

val depth : t -> int

val width : t -> int

val increment : t -> string -> unit

val add : t -> string -> int -> unit

val count : t -> string -> int
(** The count-min estimate. *)

val over_limit : t -> string -> limit:int -> bool
(** Whether all of the item's entries surpass [limit] — the CL's drop test. *)

val increment_packed : t -> int -> unit
(** Allocation-free variants keyed by a {!Key.pack_string}-packed key.
    For any string [s] with [Key.fits s], [increment_packed t
    (Key.pack_string s)] touches exactly the counters [increment t s]
    touches — the packed form is the canonical hash input for short
    keys. *)

val add_packed : t -> int -> int -> unit

val count_packed : t -> int -> int

val over_limit_packed : t -> int -> limit:int -> bool

val clear : t -> unit
(** Reset all counters (the periodic refresh of a time-framed limiter). *)

val copy : t -> t
(** Independent duplicate with identical dimensions and counters —
    [equal t (copy t)] always holds. *)

val memory_bytes : t -> int
(** Footprint in bytes (4 per counter), for the cache model. *)

val equal : t -> t -> bool
(** Structural equality of dimensions and every counter — two sketches
    that answer every query identically.  Used by the SCR replica
    checker. *)
