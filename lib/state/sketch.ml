type t = { depth : int; width : int; rows : int array array }

let create ?(depth = 5) ?(width = 4096) () =
  if depth < 1 || width < 1 then invalid_arg "Sketch.create";
  { depth; width; rows = Array.init depth (fun _ -> Array.make width 0) }

let depth t = t.depth
let width t = t.width

(* Per-row salted hashing.  The canonical form of a short key is its
   packed int (see {!Key}): hashing the packed form directly keeps the
   string API and the allocation-free [_packed] API landing on the same
   counters, which the interpreter/compiled differential equivalence
   depends on — a count-min estimate is a function of the collisions. *)
let index_packed t row k =
  Hashtbl.hash (k + ((row + 1) * 0x2545F4914F6CDD1D)) mod t.width

let index t row key =
  if Key.fits key then index_packed t row (Key.pack_string key)
  else Hashtbl.hash (row, key) mod t.width

let add t key n =
  for row = 0 to t.depth - 1 do
    let i = index t row key in
    t.rows.(row).(i) <- t.rows.(row).(i) + n
  done

let increment t key = add t key 1

let count t key =
  let m = ref max_int in
  for row = 0 to t.depth - 1 do
    m := min !m t.rows.(row).(index t row key)
  done;
  !m

let over_limit t key ~limit = count t key > limit

let add_packed t k n =
  for row = 0 to t.depth - 1 do
    let i = index_packed t row k in
    t.rows.(row).(i) <- t.rows.(row).(i) + n
  done

let increment_packed t k = add_packed t k 1

let count_packed t k =
  let m = ref max_int in
  for row = 0 to t.depth - 1 do
    m := min !m t.rows.(row).(index_packed t row k)
  done;
  !m

let over_limit_packed t k ~limit = count_packed t k > limit

let clear t = Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.rows

let copy t = { depth = t.depth; width = t.width; rows = Array.map Array.copy t.rows }

let memory_bytes t = 4 * t.depth * t.width

let equal a b = a.depth = b.depth && a.width = b.width && a.rows = b.rows
