(* Allocated indices form a doubly-linked list in recency order (head =
   oldest); cell [cap] is the list sentinel.  Free indices form a singly
   linked stack through [next]. *)

type t = {
  cap : int;
  next : int array; (* cap + 1 cells; for free cells: next free index or -1 *)
  prev : int array;
  last_touch : int array;
  state : bool array; (* true = allocated *)
  mutable free_head : int;
  mutable n_alloc : int;
}

let nil = -1

let create ~capacity =
  if capacity < 1 then invalid_arg "Dchain.create: capacity must be >= 1";
  let t =
    {
      cap = capacity;
      next = Array.make (capacity + 1) nil;
      prev = Array.make (capacity + 1) nil;
      last_touch = Array.make capacity 0;
      state = Array.make capacity false;
      free_head = 0;
      n_alloc = 0;
    }
  in
  for i = 0 to capacity - 2 do
    t.next.(i) <- i + 1
  done;
  t.next.(capacity - 1) <- nil;
  (* sentinel: empty allocated list *)
  t.next.(capacity) <- capacity;
  t.prev.(capacity) <- capacity;
  t

let copy t =
  (* exact structural duplicate: the recency list, the free stack order
     and every last-touch time are preserved, so a copy allocates the
     same indices in the same order as the original under an identical
     operation sequence — required when discipline switching seeds SCR
     replicas that must then evolve in lockstep *)
  {
    cap = t.cap;
    next = Array.copy t.next;
    prev = Array.copy t.prev;
    last_touch = Array.copy t.last_touch;
    state = Array.copy t.state;
    free_head = t.free_head;
    n_alloc = t.n_alloc;
  }

let capacity t = t.cap
let allocated t = t.n_alloc
let is_allocated t i = i >= 0 && i < t.cap && t.state.(i)

let unlink t i =
  t.next.(t.prev.(i)) <- t.next.(i);
  t.prev.(t.next.(i)) <- t.prev.(i)

let push_back t i =
  let s = t.cap in
  t.prev.(i) <- t.prev.(s);
  t.next.(i) <- s;
  t.next.(t.prev.(s)) <- i;
  t.prev.(s) <- i

let allocate t ~now =
  if t.free_head = nil then None
  else begin
    let i = t.free_head in
    t.free_head <- t.next.(i);
    t.state.(i) <- true;
    t.last_touch.(i) <- now;
    push_back t i;
    t.n_alloc <- t.n_alloc + 1;
    Some i
  end

let allocate_idx t ~now =
  (* allocation-free [allocate] for the compiled path *)
  if t.free_head = nil then -1
  else begin
    let i = t.free_head in
    t.free_head <- t.next.(i);
    t.state.(i) <- true;
    t.last_touch.(i) <- now;
    push_back t i;
    t.n_alloc <- t.n_alloc + 1;
    i
  end

let rejuvenate t i ~now =
  if not (is_allocated t i) then false
  else begin
    t.last_touch.(i) <- max t.last_touch.(i) now;
    unlink t i;
    push_back t i;
    true
  end

let last_touch t i = if is_allocated t i then Some t.last_touch.(i) else None

let free t i =
  if not (is_allocated t i) then false
  else begin
    unlink t i;
    t.state.(i) <- false;
    t.next.(i) <- t.free_head;
    t.free_head <- i;
    t.n_alloc <- t.n_alloc - 1;
    true
  end

let iter_allocated t f =
  let j = ref t.next.(t.cap) in
  while !j <> t.cap do
    let i = !j in
    (* read the successor first so [f] may not confuse the walk by
       touching unrelated cells; freeing during iteration is still the
       caller's responsibility to avoid *)
    j := t.next.(i);
    f i t.last_touch.(i)
  done

let allocate_at t ~touched =
  if t.free_head = nil then None
  else begin
    let i = t.free_head in
    t.free_head <- t.next.(i);
    t.state.(i) <- true;
    t.last_touch.(i) <- touched;
    (* sorted insertion: place [i] after the last cell with last_touch <=
       [touched], so the recency list stays non-decreasing in last_touch
       and [expire_before]'s head scan remains correct after a migration
       hands us entries with historical timestamps.  Scan from the TAIL:
       migration streams arrive oldest-first (ascending touch), so the
       insertion point is almost always at the back and the scan is O(1)
       amortized — a head-first scan made bulk migration quadratic at
       1M flows. *)
    let j = ref t.prev.(t.cap) in
    while !j <> t.cap && t.last_touch.(!j) > touched do
      j := t.prev.(!j)
    done;
    let p = !j in
    let s = t.next.(p) in
    t.prev.(i) <- p;
    t.next.(i) <- s;
    t.next.(p) <- i;
    t.prev.(s) <- i;
    t.n_alloc <- t.n_alloc + 1;
    Some i
  end

let oldest t =
  let h = t.next.(t.cap) in
  if h = t.cap then None else Some h

let expire_before t ~threshold =
  (* allocation-free fast path: the common per-packet call finds nothing
     due (the compiled NF path runs this on every packet) *)
  let h = t.next.(t.cap) in
  if h = t.cap || t.last_touch.(h) >= threshold then []
  else
    let rec go acc =
      let h = t.next.(t.cap) in
      if h <> t.cap && t.last_touch.(h) < threshold then begin
        ignore (free t h);
        go (h :: acc)
      end
      else List.rev acc
    in
    go []

let pp fmt t = Format.fprintf fmt "dchain[%d/%d]" t.n_alloc t.cap
