(** Fixed-capacity int-keyed map with open addressing.

    Backs the packed-key fast path of {!Map_s}: keys are {!Key}-packed
    container keys, values are DSL integers, and every operation is
    allocation-free.  The logical capacity is enforced the way the Vigor
    containers do it — {!put} of an absent key on a full map returns
    [false] — while the physical table grows on demand to keep probe
    sequences short. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : t -> int
val length : t -> int
val mem : t -> int -> bool

val find : t -> int -> absent:int -> int
(** [find t k ~absent] is the value bound to [k], or [absent] when [k] is
    unbound.  The caller picks a sentinel that cannot be a stored value
    (DSL values are non-negative, so any negative int works). *)

val put : t -> int -> int -> bool
(** Insert or replace; [false] iff the map is logically full and [k] is
    absent. *)

val erase : t -> int -> bool
(** [false] iff [k] was absent. *)

val copy : t -> t
(** Field-exact duplicate: same physical table size, probe layout and
    tombstones, so a copy that sees the same operation sequence as the
    original stays structurally identical to it. *)

val iter : t -> (int -> int -> unit) -> unit
val clear : t -> unit

(** {1 Introspection} — read-only physical-layout stats, used by the
    capacity-boundary tests and the 1M-flow stress harness to gate probe
    lengths and to prove tombstone churn keeps the table bounded. *)

val table_slots : t -> int
(** Current physical table size (a power of two). *)

val tombstones : t -> int

val probe_stats : t -> int * int
(** [(max_probe, mean_probe_x100)] over the occupied entries: the extra
    slots a [find] of that key walks past its home slot.  O(table) scan —
    diagnostics only, not for the datapath. *)
