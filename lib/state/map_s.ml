(* Hybrid storage: every key short enough to pack ({!Key.fits}) lives in
   an allocation-free open-addressing {!Intmap}; wider keys fall back to
   the string-keyed Hashtbl.  Both the string API and the packed API
   route through the same tables, so a map populated through one view
   (e.g. DSL [init] entries loaded as strings) is visible through the
   other.  The logical capacity bounds the two tables together. *)

type t = {
  capacity : int;
  packed : Intmap.t;
  wide : (string, int) Hashtbl.t;
}

let c_packed =
  Telemetry.Counter.make ~doc:"map ops served by the packed int-key path"
    "state.key_packed"

let c_fallback =
  Telemetry.Counter.make ~doc:"map ops using the wide string-key fallback"
    "state.key_string_fallback"

let create ~capacity =
  if capacity < 1 then invalid_arg "Map_s.create: capacity must be >= 1";
  {
    capacity;
    packed = Intmap.create ~capacity;
    wide = Hashtbl.create (min capacity 4096);
  }

let capacity t = t.capacity
let size t = Intmap.length t.packed + Hashtbl.length t.wide

(* Packed view — the compiled per-packet path. *)

let mem_packed t k =
  Telemetry.Counter.incr c_packed;
  Intmap.mem t.packed k

let find_packed t k ~absent =
  Telemetry.Counter.incr c_packed;
  Intmap.find t.packed k ~absent

let put_packed t k v =
  Telemetry.Counter.incr c_packed;
  if Hashtbl.length t.wide = 0 then Intmap.put t.packed k v
  else if Intmap.mem t.packed k then Intmap.put t.packed k v
  else if size t >= t.capacity then false
  else Intmap.put t.packed k v

let erase_packed t k =
  Telemetry.Counter.incr c_packed;
  Intmap.erase t.packed k

(* Wide view — string keys that are known (or assumed) not to pack.  The
   compiled path calls these with a [Bytes.unsafe_to_string] alias of its
   per-site scratch buffer: that is sound for every operation here except
   [put_wide], which stores the key and therefore must be given a string
   the caller will not mutate. *)

let mem_wide t k =
  Telemetry.Counter.incr c_fallback;
  Hashtbl.mem t.wide k

let find_wide t k ~absent =
  Telemetry.Counter.incr c_fallback;
  match Hashtbl.find t.wide k with v -> v | exception Not_found -> absent

let put_wide t k v =
  Telemetry.Counter.incr c_fallback;
  if size t < t.capacity || Hashtbl.mem t.wide k then begin
    (* below capacity, or full but overwriting an existing binding *)
    Hashtbl.replace t.wide k v;
    true
  end
  else false

let erase_wide t k =
  Telemetry.Counter.incr c_fallback;
  let before = Hashtbl.length t.wide in
  Hashtbl.remove t.wide k;
  Hashtbl.length t.wide < before

(* String view — init loading, the interpreter oracle and wide keys. *)

let get t k =
  if Key.fits k then begin
    let v = find_packed t (Key.pack_string k) ~absent:min_int in
    if v = min_int then None else Some v
  end
  else begin
    let v = find_wide t k ~absent:min_int in
    if v = min_int then None else Some v
  end

let mem t k = if Key.fits k then mem_packed t (Key.pack_string k) else mem_wide t k

let put t k v =
  if Key.fits k then put_packed t (Key.pack_string k) v else put_wide t k v

let erase t k =
  if Key.fits k then erase_packed t (Key.pack_string k) else erase_wide t k

let iter t f =
  Intmap.iter t.packed (fun k v -> f (Key.unpack_string k) v);
  Hashtbl.iter f t.wide

let entries t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  !acc

let clear t =
  Intmap.clear t.packed;
  Hashtbl.reset t.wide

let copy t =
  { capacity = t.capacity; packed = Intmap.copy t.packed; wide = Hashtbl.copy t.wide }

let packed_stats t =
  let max_probe, mean_probe_x100 = Intmap.probe_stats t.packed in
  (max_probe, mean_probe_x100, Intmap.table_slots t.packed, Intmap.tombstones t.packed)

let pp fmt t = Format.fprintf fmt "map[%d/%d]" (size t) t.capacity
