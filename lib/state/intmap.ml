(* Fixed-capacity int->int map: open addressing, linear probing, tombstone
   deletion.  Keys are packed container keys (Key.t ints) and values are
   DSL integers, both immediate, so every operation is allocation-free —
   the property the compiled per-packet path relies on.  The logical
   capacity is Vigor's: [put] on a full map with an absent key fails and
   the NF observes it.  The physical table grows (it starts small so maps
   that never see packed keys cost nothing) but the load factor stays at
   or below 1/2, which bounds probe sequences and guarantees termination
   without wraparound counters. *)

type t = {
  capacity : int; (* logical capacity; puts beyond it fail *)
  mutable mask : int; (* physical table size - 1 (power of two) *)
  mutable keys : int array;
  mutable vals : int array;
  mutable status : Bytes.t; (* '\000' empty, '\001' occupied, '\002' tombstone *)
  mutable size : int;
  mutable tombs : int;
}

let empty = '\000'
let occupied = '\001'
let tombstone = '\002'

let initial_table = 16

let make_table n =
  (Array.make n 0, Array.make n 0, Bytes.make n empty)

let create ~capacity =
  if capacity < 1 then invalid_arg "Intmap.create: capacity must be >= 1";
  let keys, vals, status = make_table initial_table in
  { capacity; mask = initial_table - 1; keys; vals; status; size = 0; tombs = 0 }

let capacity t = t.capacity
let length t = t.size

(* Fibonacci-style multiplicative mix; the constant fits a 63-bit int and
   multiplication wraps, which is all a table hash needs. *)
let slot t k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land t.mask

(* The probe loops are top-level functions taking every capture as an
   argument: a local [let rec] would close over [t]/[k] and allocate a
   closure per call, defeating the allocation-free contract. *)

(* Index of [k]'s occupied slot, or -1.  Load <= 1/2 keeps an empty slot
   on every probe path, so the loop terminates. *)
let rec probe_find status keys mask k i =
  let s = Bytes.unsafe_get status i in
  if s = empty then -1
  else if s = occupied && Array.unsafe_get keys i = k then i
  else probe_find status keys mask k ((i + 1) land mask)

let find_slot t k = probe_find t.status t.keys t.mask k (slot t k)

let mem t k = find_slot t k >= 0

let find t k ~absent =
  let i = find_slot t k in
  if i < 0 then absent else Array.unsafe_get t.vals i

let rec probe_free status mask i =
  if Bytes.unsafe_get status i = occupied then probe_free status mask ((i + 1) land mask)
  else i

let rec insert_fresh t k v =
  (* precondition: k absent; keep load (occupied + tombstones) <= 1/2 *)
  if 2 * (t.size + t.tombs + 1) > t.mask + 1 then grow t;
  let i = probe_free t.status t.mask (slot t k) in
  if Bytes.unsafe_get t.status i = tombstone then t.tombs <- t.tombs - 1;
  Bytes.unsafe_set t.status i occupied;
  Array.unsafe_set t.keys i k;
  Array.unsafe_set t.vals i v;
  t.size <- t.size + 1

and grow t =
  (* Rebuild at the size the LIVE entries need — smallest power of two
     that leaves them at load <= 1/4 — not at a multiple of the current
     table.  Rebuilding drops every tombstone, so when the load breach is
     tombstone-driven (erase/re-insert churn at a stable live size) the
     table is rebuilt in place instead of doubling without bound; load
     1/4 after a rebuild leaves >= n/4 operations before the next one,
     keeping inserts amortized O(1). *)
  let n = ref initial_table in
  while !n < 4 * (t.size + 1) do
    n := !n * 2
  done;
  let n = !n in
  let old_keys = t.keys and old_vals = t.vals and old_status = t.status in
  let old_n = t.mask + 1 in
  let keys, vals, status = make_table n in
  t.keys <- keys;
  t.vals <- vals;
  t.status <- status;
  t.mask <- n - 1;
  t.size <- 0;
  t.tombs <- 0;
  for i = 0 to old_n - 1 do
    if Bytes.unsafe_get old_status i = occupied then
      insert_fresh t (Array.unsafe_get old_keys i) (Array.unsafe_get old_vals i)
  done

let put t k v =
  let i = find_slot t k in
  if i >= 0 then begin
    Array.unsafe_set t.vals i v;
    true
  end
  else if t.size >= t.capacity then false
  else begin
    insert_fresh t k v;
    true
  end

let erase t k =
  let i = find_slot t k in
  if i < 0 then false
  else begin
    Bytes.unsafe_set t.status i tombstone;
    t.size <- t.size - 1;
    t.tombs <- t.tombs + 1;
    true
  end

let copy t =
  (* field-exact duplicate: same physical table size, same probe layout,
     same tombstones — two copies that see the same operation sequence
     stay structurally identical, which the SCR replica seeding relies
     on (replicas must evolve in lockstep after a discipline switch) *)
  {
    capacity = t.capacity;
    mask = t.mask;
    keys = Array.copy t.keys;
    vals = Array.copy t.vals;
    status = Bytes.copy t.status;
    size = t.size;
    tombs = t.tombs;
  }

let iter t f =
  for i = 0 to t.mask do
    if Bytes.unsafe_get t.status i = occupied then
      f (Array.unsafe_get t.keys i) (Array.unsafe_get t.vals i)
  done

let table_slots t = t.mask + 1
let tombstones t = t.tombs

(* Probe length of an entry = forward distance from its home slot to where
   it actually lives; [find] walks exactly that many extra slots. *)
let probe_stats t =
  let max_p = ref 0 and total = ref 0 in
  for i = 0 to t.mask do
    if Bytes.unsafe_get t.status i = occupied then begin
      let home = slot t (Array.unsafe_get t.keys i) in
      let d = (i - home) land t.mask in
      if d > !max_p then max_p := d;
      total := !total + d
    end
  done;
  let mean_x100 = if t.size = 0 then 0 else 100 * !total / t.size in
  (!max_p, mean_x100)

let clear t =
  let keys, vals, status = make_table initial_table in
  t.keys <- keys;
  t.vals <- vals;
  t.status <- status;
  t.mask <- initial_table - 1;
  t.size <- 0;
  t.tombs <- 0
