(** Packed representation of short container keys.

    The stateful containers are logically keyed by byte strings (the
    encoding [Dsl.Ast.key_of_parts] produces).  Keys of at most
    {!max_packed_bytes} bytes pack losslessly into one tagged, immediate
    OCaml int — byte content in the low bits, byte length above them — so
    the compiled per-packet path performs map and sketch operations
    without allocating.  [pack_string] and [unpack_string] are exact
    inverses on strings that {!fits}, which is what keeps the packed and
    string views of one container consistent. *)

val max_packed_bytes : int
(** 7: the widest key that packs into a 62-bit tagged int. *)

val tag_shift : int
(** Bit position of the length tag ([8 * max_packed_bytes]). *)

type t = Packed of int | Wide of string

val fits : string -> bool
(** Whether a string key packs. *)

val tag : bytes:int -> int -> int
(** [tag ~bytes v] builds the packed form of a [bytes]-byte key whose
    big-endian byte content, read as an integer, is [v]. *)

val byte_length : int -> int
(** Byte length of a packed key. *)

val pack_string : string -> int
(** Raises [Invalid_argument] when the key does not {!fits}. *)

val unpack_string : int -> string
(** Exact inverse of {!pack_string}. *)

val of_string : string -> t

val pp : Format.formatter -> t -> unit
