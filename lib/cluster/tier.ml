(* The cluster front tier.  See tier.mli for the model; the shape of the
   code mirrors the single-machine runtime: a build step that solves keys
   and stages the NF once, and a run step that is a plain dispatch loop
   with all churn handling pushed to epoch boundaries. *)

type config = {
  machines : int;
  table_size : int;
  epoch_pkts : int;
  seed : int;
  request : Maestro.Pipeline.request;
}

let default_config =
  {
    machines = 4;
    table_size = 251;
    epoch_pkts = 4096;
    seed = 7;
    request = Maestro.Pipeline.default_request;
  }

type machine = {
  id : int;
  inst : Dsl.Instance.t;
  mutable runner : Dsl.Compile.runner;
  mutable up : bool;
  mutable pkts : int;
  mutable churned : bool; (* joined late, left, or failed: excluded from imbalance *)
}

type t = {
  nf : Dsl.Ast.t;
  cfg : config;
  outcome : Maestro.Pipeline.outcome;
  engines : Nic.Rss.t array; (* front tier, one per port *)
  key_attempts : int;
  key_free_bits : int;
  mplan : Runtime.Balancer.migration_plan;
  scr : Runtime.Scr.t option;
  staged : Dsl.Compile.staged;
  placeholder : Dsl.Instance.t; (* empty stand-in for unoccupied slots *)
  mutable table : Maglev.t;
  mutable slots : machine option array; (* index = machine id *)
}

type event_log = {
  at_epoch : int;
  action : Faults.machine_action;
  machine : int;
  disruption : float;
  moved : int;
  dropped : int;
  rebuilt : int;
  lost : int;
}

type stats = {
  pkts : int;
  unmatched : int;
  machine_pkts : (int * int) list;
  events : event_log list;
  moved_flows : int;
  dropped_flows : int;
  rebuilt_flows : int;
  lost_flows : int;
  dead_hits : int;
  affinity_violations : int;
  imbalance_x100 : int;
}

let scale_out_ok (plan : Maestro.Plan.t) =
  match plan.strategy with
  | Maestro.Plan.Shared_nothing | Maestro.Plan.Load_balance -> true
  | Maestro.Plan.Scr | Maestro.Plan.Lock_based | Maestro.Plan.Tm_based -> false

(* The second-level key: same constraints, fresh solve.  A different seed
   from the per-machine solve keeps the two keys independent — the
   machine-level hash must not be a function of the core-level hash, or
   the front tier would see only [cores] distinct values per machine. *)
let solve_front_key cfg (nf : Dsl.Ast.t) (plan : Maestro.Plan.t) =
  let nic = cfg.request.Maestro.Pipeline.nic in
  match plan.constraints with
  | [] ->
      let rng = Random.State.make [| cfg.seed; 0x9a61e7 |] in
      Ok
        ( Array.init nf.Dsl.Ast.devices (fun _ ->
              Nic.Rss.configure ~nic ~key:(Nic.Rss.random_key rng nic)
                ~sets:[ Nic.Field_set.ipv4_tcp ] ~queues:1 ()),
          0,
          0 )
  | cstrs -> (
      match Rs3.Problem.for_constraints ~nic ~nports:nf.Dsl.Ast.devices cstrs with
      | Error e -> Error ("cluster: front-tier key: " ^ e)
      | Ok problem -> (
          match
            Rs3.Solve.solve ~backend:cfg.request.Maestro.Pipeline.solver
              ~seed:(cfg.seed lxor 0x5a5a5a) problem
          with
          | Error (_, e) -> Error ("cluster: front-tier key solve failed: " ^ e)
          | Ok sol ->
              Ok
                ( Array.mapi
                    (fun port key ->
                      Nic.Rss.configure ~nic ~key
                        ~sets:[ problem.Rs3.Problem.field_sets.(port) ]
                        ~queues:1 ())
                    sol.Rs3.Solve.keys,
                  sol.Rs3.Solve.attempts,
                  sol.Rs3.Solve.free_bits )))

let fresh_machine t id =
  let inst = Dsl.Instance.create t.nf in
  { id; inst; runner = Dsl.Compile.bind_runner t.staged inst; up = true; pkts = 0; churned = false }

let live_ids t =
  Array.to_list t.slots
  |> List.filter_map (function Some m when m.up -> Some m.id | _ -> None)

let build_table t = Maglev.build ~size:t.cfg.table_size ~machines:(live_ids t) ()

let build ?(config = default_config) nf =
  if config.machines < 1 then invalid_arg "Tier.build: machines must be >= 1";
  if config.epoch_pkts < 1 then invalid_arg "Tier.build: epoch_pkts must be >= 1";
  match Maestro.Pipeline.parallelize ~request:config.request nf with
  | Error e -> Error ("cluster: per-machine plan failed: " ^ e)
  | Ok outcome ->
      if not (scale_out_ok outcome.Maestro.Pipeline.plan) then
        Error
          (Printf.sprintf
             "cluster: the %s rung shares state across the cores of one machine and cannot \
              scale out exactly; only shared-nothing and load-balance plans can"
             (Maestro.Plan.strategy_name outcome.Maestro.Pipeline.plan.Maestro.Plan.strategy))
      else
        (match solve_front_key config nf outcome.Maestro.Pipeline.plan with
        | Error e -> Error e
        | Ok (engines, key_attempts, key_free_bits) ->
            let check = Dsl.Check.check_exn nf in
            let t =
              {
                nf;
                cfg = config;
                outcome;
                engines;
                key_attempts;
                key_free_bits;
                mplan = Runtime.Balancer.migration_plan nf;
                scr =
                  (match Maestro.Scrspec.admissible nf with
                  | Ok spec -> Some (Runtime.Scr.prepare spec)
                  | Error _ -> None);
                staged = Dsl.Compile.stage_runner nf check;
                placeholder = Dsl.Instance.create nf;
                table = Maglev.build ~size:config.table_size ~machines:[ 0 ] ();
                slots = [||];
              }
            in
            t.slots <- Array.init config.machines (fun id -> Some (fresh_machine t id));
            t.table <- build_table t;
            Ok t)

let plan t = t.outcome.Maestro.Pipeline.plan
let outcome t = t.outcome
let table t = t.table
let live_machines t = live_ids t
let key_attempts t = t.key_attempts
let key_free_bits t = t.key_free_bits
let scr_admissible t = t.scr <> None

let front_hash t (pkt : Packet.Pkt.t) = Nic.Rss.hash_of t.engines.(pkt.Packet.Pkt.port) pkt

let owner_of_hash table = function
  | Some h -> Maglev.lookup table h
  | None -> Maglev.slot_owner table 0 (* the default-queue convention, one level up *)

let owner_of_pkt t pkt = owner_of_hash t.table (front_hash t pkt)

(* flows currently resident on an instance = allocated chain cells (the
   NF's flow tables all hang off chains; lone read-mostly maps are not
   per-flow state worth counting twice) *)
let resident_flows t inst =
  List.fold_left
    (fun acc decl ->
      match decl with
      | Dsl.Ast.Decl_chain { name; _ } -> (
          match Dsl.Instance.find inst name with
          | Dsl.Instance.O_chain c -> acc + State.Dchain.allocated c
          | _ -> acc)
      | _ -> acc)
    0 t.nf.Dsl.Ast.state

let ensure_slot t id =
  if id >= Array.length t.slots then begin
    let bigger = Array.make (id + 1) None in
    Array.blit t.slots 0 bigger 0 (Array.length t.slots);
    t.slots <- bigger
  end

let instances t = Array.map (function Some m -> m.inst | None -> t.placeholder) t.slots

let migrate_all t =
  let hash pkt = front_hash t pkt in
  Runtime.Balancer.migrate_by t.mplan ~hash
    ~owner:(fun h -> Maglev.lookup t.table h)
    ~instances:(instances t)

let reset_machine t m =
  Dsl.Instance.reset m.inst t.nf;
  m.runner <- Dsl.Compile.bind_runner t.staged m.inst

(* Rebuild a failed machine's replica from the digest log: replay, in
   arrival order, exactly the log entries whose pseudo-packet the dead
   machine owned under the pre-failure table.  SCR's trajectory-equality
   guarantee makes the scratch replica structurally identical to the
   state the machine had (including expiry, which the write-slice drives
   from the logged timestamps). *)
let replay_into t m ~old_table ~log ~log_len =
  match t.scr with
  | None -> 0
  | Some prog ->
      let stride = Runtime.Scr.ints_per_pkt prog in
      if stride = 0 || log_len = 0 then 0
      else begin
        let repl = Runtime.Scr.bind prog m.inst in
        for k = 0 to (log_len / stride) - 1 do
          let off = k * stride in
          let pkt = Runtime.Scr.decode prog log off in
          if owner_of_hash old_table (front_hash t pkt) = m.id then
            Runtime.Scr.apply repl log off
        done;
        resident_flows t m.inst
      end

let apply_event t ~epoch ~action ~machine:id ~log ~log_len events =
  let record ~disruption ~moved ~dropped ~rebuilt ~lost =
    events :=
      { at_epoch = epoch; action; machine = id; disruption; moved; dropped; rebuilt; lost }
      :: !events
  in
  let slot id = if id < Array.length t.slots then t.slots.(id) else None in
  match action with
  | Faults.Join -> (
      match slot id with
      | Some m when m.up -> () (* already live: no-op *)
      | _ ->
          ensure_slot t id;
          let m = fresh_machine t id in
          m.churned <- true;
          t.slots.(id) <- Some m;
          let old = t.table in
          t.table <- build_table t;
          let d = Maglev.disruption old t.table in
          let o = migrate_all t in
          record ~disruption:d ~moved:o.Runtime.Balancer.moved_flows
            ~dropped:o.Runtime.Balancer.dropped_flows ~rebuilt:0 ~lost:0)
  | Faults.Leave -> (
      match slot id with
      | Some m when m.up && List.length (live_ids t) > 1 ->
          m.up <- false;
          m.churned <- true;
          let old = t.table in
          t.table <- build_table t;
          let d = Maglev.disruption old t.table in
          (* m's instance is still in the slot array, so migrate_by walks
             it as a source; the new table never returns m as an owner *)
          let o = migrate_all t in
          reset_machine t m;
          record ~disruption:d ~moved:o.Runtime.Balancer.moved_flows
            ~dropped:o.Runtime.Balancer.dropped_flows ~rebuilt:0 ~lost:0
      | _ -> () (* unknown, already down, or last machine: no-op *))
  | Faults.Fail -> (
      match slot id with
      | Some m when m.up && List.length (live_ids t) > 1 ->
          m.up <- false;
          m.churned <- true;
          let old_table = t.table in
          t.table <- build_table t;
          let d = Maglev.disruption old_table t.table in
          let lost = if t.scr = None then resident_flows t m.inst else 0 in
          (* the machine's state is gone: reset, then rebuild what the
             digest log can prove it held *)
          reset_machine t m;
          let rebuilt = replay_into t m ~old_table ~log ~log_len in
          let o = migrate_all t in
          reset_machine t m;
          record ~disruption:d ~moved:o.Runtime.Balancer.moved_flows
            ~dropped:o.Runtime.Balancer.dropped_flows ~rebuilt ~lost
      | _ -> ())

let run t trace =
  let n = Array.length trace in
  let verdicts = Array.make n Dsl.Interp.Dropped in
  let schedule = ref (Faults.machine_events ()) in
  let events = ref [] in
  let unmatched = ref 0 and dead_hits = ref 0 and affinity_violations = ref 0 in
  (* digest log: flat segments in arrival order, grown geometrically *)
  let stride = match t.scr with Some p -> Runtime.Scr.ints_per_pkt p | None -> 0 in
  let log = ref (Array.make (max 1 (stride * 4096)) 0) in
  let log_len = ref 0 in
  (* flow -> machine since the last churn event; any event legitimately
     reassigns flows, so the map restarts there *)
  let aff : (Packet.Flow.t, int) Hashtbl.t = Hashtbl.create 4096 in
  for i = 0 to n - 1 do
    if i mod t.cfg.epoch_pkts = 0 then begin
      let epoch = i / t.cfg.epoch_pkts in
      let fired = ref false in
      let rec drain () =
        match !schedule with
        | (e, action, machine) :: rest when e <= epoch ->
            schedule := rest;
            apply_event t ~epoch:e ~action ~machine ~log:!log ~log_len:!log_len events;
            fired := true;
            drain ()
        | _ -> ()
      in
      drain ();
      if !fired then Hashtbl.reset aff
    end;
    let pkt = trace.(i) in
    let h = front_hash t pkt in
    if h = None then incr unmatched;
    let o = owner_of_hash t.table h in
    let m =
      match t.slots.(o) with
      | Some m when m.up -> m
      | _ ->
          incr dead_hits;
          (* should be unreachable: the table only maps live machines *)
          let live = live_ids t in
          Option.get t.slots.(List.hd live)
    in
    let flow = Packet.Flow.normalize (Packet.Flow.of_pkt pkt) in
    (match Hashtbl.find_opt aff flow with
    | Some prev when prev <> m.id -> incr affinity_violations
    | Some _ -> ()
    | None -> Hashtbl.replace aff flow m.id);
    m.pkts <- m.pkts + 1;
    verdicts.(i) <- Dsl.Compile.run m.runner pkt;
    (match t.scr with
    | Some prog ->
        if !log_len + stride > Array.length !log then begin
          let bigger = Array.make (2 * Array.length !log) 0 in
          Array.blit !log 0 bigger 0 !log_len;
          log := bigger
        end;
        Runtime.Scr.encode prog pkt !log !log_len;
        log_len := !log_len + stride
    | None -> ())
  done;
  let events = List.rev !events in
  let machine_pkts =
    Array.to_list t.slots
    |> List.filter_map (function
         | Some (m : machine) when m.pkts > 0 || m.up -> Some (m.id, m.pkts)
         | _ -> None)
  in
  let steady = Array.to_list t.slots |> List.filter_map Fun.id |> List.filter (fun m -> not m.churned) in
  let imbalance_x100 =
    match steady with
    | [] -> 0
    | ms ->
        let counts = List.map (fun (m : machine) -> m.pkts) ms in
        let mx = List.fold_left max 0 counts in
        let mean = float_of_int (List.fold_left ( + ) 0 counts) /. float_of_int (List.length counts) in
        if mean <= 0. then 0 else int_of_float (100. *. float_of_int mx /. mean)
  in
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 events in
  ( verdicts,
    {
      pkts = n;
      unmatched = !unmatched;
      machine_pkts;
      events;
      moved_flows = sum (fun e -> e.moved);
      dropped_flows = sum (fun e -> e.dropped);
      rebuilt_flows = sum (fun e -> e.rebuilt);
      lost_flows = sum (fun e -> e.lost);
      dead_hits = !dead_hits;
      affinity_violations = !affinity_violations;
      imbalance_x100;
    } )
