(** The cluster front tier: one NF plan scaled out over N machines.

    The paper parallelizes one NF across the cores of one machine; the
    front tier adds the second sharding level the ROADMAP's
    millions-of-users target needs.  The same invariant recurs one layer
    up: {e flows that share state must land on the same machine}.  So the
    tier solves a {e second} RS3 instance over the very same sharding
    constraints the per-machine plan was derived from
    ({!Maestro.Plan.t.constraints}) — a fresh Toeplitz key, one per port,
    under which every state-sharing flow group collides into one 32-bit
    hash — and spreads those hashes over machines with a maglev table
    ({!Maglev}), whose minimal-disruption property bounds flow
    reassignment under machine churn.

    Machine churn is driven by the {!Faults} plan language
    ([join@E:M;leave@E:M;fail@E:M]), applied at epoch boundaries:

    - {e join}/{e leave} migrate affected flow state between machines
      with {!Runtime.Balancer.migrate_by} — the same plan classification
      (purge-pair groups, lone maps, decodable key specs) the in-pool
      rebalancer uses, with the maglev lookup as the owner function;
    - {e fail} loses the machine's state: when the NF admits an SCR
      digest program ({!Maestro.Scrspec}), the tier replays its retained
      digest log ({!Runtime.Scr}) filtered to the dead machine's flows
      (each logged pseudo-packet is re-hashed with the front-tier key and
      ownership-tested under the pre-failure table) into a scratch
      replica, then migrates the rebuilt entries to the surviving owners
      — recency order preserved, so expiry semantics survive the crash.

    Only plans whose rung keeps no cross-core shared state scale out
    exactly ([Shared_nothing], [Load_balance]); {!build} refuses the
    lock/TM/SCR rungs. *)

type config = {
  machines : int;  (** initial machine count, ids [0 .. machines-1] *)
  table_size : int;  (** maglev slot floor; rounded up to a prime *)
  epoch_pkts : int;  (** packets per epoch — the churn-event granularity *)
  seed : int;  (** front-tier key solve seed *)
  request : Maestro.Pipeline.request;  (** per-machine plan request *)
}

val default_config : config
(** 4 machines, 251 slots, 4096-packet epochs, seed 7,
    {!Maestro.Pipeline.default_request}. *)

type t

val build : ?config:config -> Dsl.Ast.t -> (t, string) result
(** Derive the per-machine plan, solve the second-level key over its
    sharding constraints, and stand up the initial machines.  [Error]
    when the per-machine plan fails validation, lands on a rung that
    shares state across cores (it cannot scale past one machine), or the
    front-tier key solve fails. *)

val plan : t -> Maestro.Plan.t
val outcome : t -> Maestro.Pipeline.outcome
val table : t -> Maglev.t
val live_machines : t -> int list

val key_attempts : t -> int
(** Sampling rounds the front-tier key solve took (0 when the NF has no
    sharding constraints and a random key suffices). *)

val key_free_bits : t -> int

val scr_admissible : t -> bool
(** Whether machine failure can be survived by digest-log replay. *)

val owner_of_pkt : t -> Packet.Pkt.t -> int
(** The machine the front tier steers this packet to under the current
    table (unmatched packets go to the machine owning slot 0, the
    default-queue convention). *)

(** What one churn event did, for the gate and the CLI. *)
type event_log = {
  at_epoch : int;
  action : Faults.machine_action;
  machine : int;
  disruption : float;  (** maglev slot-reassignment fraction, [0..1] *)
  moved : int;  (** flows migrated between machines *)
  dropped : int;  (** flows evicted because a destination was full *)
  rebuilt : int;  (** flows reconstructed from the SCR digest log *)
  lost : int;  (** flows lost with the machine (no digest program) *)
}

type stats = {
  pkts : int;
  unmatched : int;  (** packets the front-tier field sets did not match *)
  machine_pkts : (int * int) list;  (** packets processed, by machine id *)
  events : event_log list;  (** ascending by epoch *)
  moved_flows : int;
  dropped_flows : int;
  rebuilt_flows : int;
  lost_flows : int;
  dead_hits : int;  (** packets steered to a down machine — must be 0 *)
  affinity_violations : int;
      (** packets of a flow processed by a different machine than the
          flow's previous packet with no churn event in between — must
          be 0: this is the cluster-level statement of the paper's
          "flows sharing state are never split" invariant *)
  imbalance_x100 : int;
      (** max/mean of per-machine packet counts over machines that were
          up for the whole run, x100; meaningful for churn-free runs *)
}

val run : t -> Packet.Pkt.t array -> Dsl.Interp.action array * stats
(** Process a trace through the tier, consuming the installed
    {!Faults.machine_events} schedule at epoch boundaries.  Verdicts are
    positionally comparable with a sequential single-machine run of the
    same trace — the cluster gate's oracle.  A tier is single-shot:
    build a fresh one per run. *)
