(* Maglev lookup-table construction (Eisenbud et al., NSDI'16 §3.4).
   Each machine walks its own permutation of the prime-sized table —
   slot (offset + j * skip) mod size, skip coprime to the prime size —
   and machines claim unfilled slots in round-robin order until the
   table is full.  Determinism matters more here than cryptographic
   spread: offsets and skips derive from the machine id through a
   fixed integer mix, so the same machine set always yields the same
   table and disruption between two sets is a pure function of the
   sets. *)

type t = { size : int; table : int array; machines : int array (* ascending *) }

let is_prime n =
  if n < 2 then false
  else begin
    let d = ref 2 and prime = ref true in
    while !prime && !d * !d <= n do
      if n mod !d = 0 then prime := false;
      incr d
    done;
    !prime
  end

let next_prime n =
  let c = ref (max n 2) in
  while not (is_prime !c) do
    incr c
  done;
  !c

(* splitmix64-style finalizer with the multipliers truncated to OCaml's
   tagged-int range; table-hash quality is all that is needed *)
let mix x =
  let x = x * 0x1E3779B97F4A7C15 in
  let x = (x lxor (x lsr 30)) * 0x3F58476D1CE4E5B9 in
  let x = (x lxor (x lsr 27)) * 0x14D049BB133111EB in
  (x lxor (x lsr 31)) land max_int

let build ?(size = 251) ~machines () =
  let ids = List.sort_uniq compare machines in
  if ids = [] then invalid_arg "Maglev.build: empty machine set";
  if List.hd ids < 0 then invalid_arg "Maglev.build: machine ids must be >= 0";
  let n = List.length ids in
  (* at least a few slots per machine, or balance degrades to lumps *)
  let m = next_prime (max size ((8 * n) + 1)) in
  let ids = Array.of_list ids in
  let offset = Array.map (fun id -> mix ((2 * id) + 1) mod m) ids in
  let skip = Array.map (fun id -> (mix ((2 * id) + 2) mod (m - 1)) + 1) ids in
  let pos = Array.make n 0 in
  let table = Array.make m (-1) in
  let filled = ref 0 in
  while !filled < m do
    for i = 0 to n - 1 do
      if !filled < m then begin
        (* advance machine i's permutation to its next unclaimed slot;
           skip is coprime to the prime size, so the walk visits every
           slot and terminates *)
        let c = ref ((offset.(i) + (pos.(i) * skip.(i))) mod m) in
        pos.(i) <- pos.(i) + 1;
        while table.(!c) >= 0 do
          c := (offset.(i) + (pos.(i) * skip.(i))) mod m;
          pos.(i) <- pos.(i) + 1
        done;
        table.(!c) <- ids.(i);
        incr filled
      end
    done
  done;
  { size = m; table; machines = ids }

let size t = t.size
let machines t = Array.to_list t.machines
let lookup t h = t.table.((h land max_int) mod t.size)
let slot_owner t i = t.table.(i)

let shares t =
  let count = Hashtbl.create 16 in
  Array.iter
    (fun id -> Hashtbl.replace count id (1 + Option.value ~default:0 (Hashtbl.find_opt count id)))
    t.table;
  Array.to_list t.machines
  |> List.map (fun id ->
         (id, float_of_int (Option.value ~default:0 (Hashtbl.find_opt count id)) /. float_of_int t.size))

let disruption a b =
  if a.size <> b.size then invalid_arg "Maglev.disruption: table sizes differ";
  let moved = ref 0 in
  for i = 0 to a.size - 1 do
    if a.table.(i) <> b.table.(i) then incr moved
  done;
  float_of_int !moved /. float_of_int a.size

let pp fmt t =
  Format.fprintf fmt "maglev[%d slots / %d machines]" t.size (Array.length t.machines)
