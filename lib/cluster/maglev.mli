(** Maglev-style consistent hashing for the cluster front tier.

    A lookup table of prime size is filled by letting every machine walk
    its own permutation of the slots (derived from a per-machine offset
    and skip, as in Eisenbud et al., NSDI'16) and claim unfilled slots in
    round-robin order.  The construction gives two properties the front
    tier needs:

    - {e balance}: machine slot counts differ by at most the round-robin
      granularity (within a factor ~2 even while machines churn), and
    - {e minimal disruption}: adding or removing one of [n] machines
      reassigns close to [1/n] of the slots — far less than the [2/n]
      bound the cluster gate enforces — because every surviving machine
      re-walks the {e same} permutation.

    Tables are value-semantics snapshots: churn builds a new table from
    the new machine set and the old one is kept to measure disruption and
    to ownership-filter digest logs during failure rebuilds. *)

type t

val build : ?size:int -> machines:int list -> unit -> t
(** [build ~machines ()] fills a table of the smallest prime [>= size]
    (default 251) over the given machine ids (deduplicated; ids must be
    non-negative).  Deterministic: the permutations derive from the
    machine ids alone, so two builds over the same set are identical —
    the property that makes disruption measurable and rebuilds
    reproducible.  Raises [Invalid_argument] on an empty machine set. *)

val size : t -> int
(** The (prime) number of slots. *)

val machines : t -> int list
(** The machine ids the table was built over, ascending. *)

val lookup : t -> int -> int
(** [lookup t h] is the machine owning hash [h] (any int; reduced
    mod [size]). *)

val slot_owner : t -> int -> int
(** The machine owning table slot [i] directly (for table audits). *)

val shares : t -> (int * float) list
(** Fraction of slots owned by each machine, ascending by id. *)

val disruption : t -> t -> float
(** Fraction of slots whose owner differs between two tables of the same
    size — the flow-reassignment fraction a table swap causes.  Raises
    [Invalid_argument] when the sizes differ. *)

val pp : Format.formatter -> t -> unit
