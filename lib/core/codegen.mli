(** Rendering a parallelization plan as DPDK-style C source.

    The model is a sound and complete representation of the NF, so it can be
    re-materialized as code (paper §3.6).  The runnable artifact in this
    reproduction is the {!Runtime} execution of the plan; this module
    produces the human-facing C translation — per-port RSS key arrays,
    RSS configuration and per-core state allocation, and the packet-
    processing function — mirroring the paper's Appendix A.1 excerpts. *)

val emit_c : Plan.t -> string
(** The full C translation unit: RSS keys, per-core state, lock discipline
    (when the plan is lock-based) and the packet-processing loop. *)

val emit_rss_keys : Plan.t -> string
(** Just the key byte arrays, one per port (the Fig. 13 header block). *)
