type rung = Shared_nothing | Scr | Lock_based | Serial

let rung_name = function
  | Shared_nothing -> "shared-nothing"
  | Scr -> "state-compute-replication"
  | Lock_based -> "lock-based"
  | Serial -> "serial"

let descent = function
  | Shared_nothing -> [ Shared_nothing; Scr; Lock_based; Serial ]
  | Scr -> [ Scr; Lock_based; Serial ]
  | Lock_based -> [ Lock_based; Serial ]
  | Serial -> [ Serial ]

type step = { rung : rung; taken : bool; reason : string }
type t = { chosen : rung; steps : step list }

let c_shared_nothing =
  Telemetry.Counter.make "ladder.shared_nothing" ~doc:"plans that kept the top rung"

let c_scr =
  Telemetry.Counter.make "ladder.scr"
    ~doc:"plans that took the state-compute-replication rung"

let c_lock_based =
  Telemetry.Counter.make "ladder.lock_based" ~doc:"plans degraded to the lock-based rung"

let c_serial = Telemetry.Counter.make "ladder.serial" ~doc:"plans degraded to the serial rung"

let c_degradations =
  Telemetry.Counter.make "ladder.degradations" ~doc:"rungs rejected on the way down the ladder"

let top reason = { chosen = Shared_nothing; steps = [ { rung = Shared_nothing; taken = true; reason } ] }

let make steps =
  let chosen =
    match List.find_opt (fun s -> s.taken) steps with
    | Some s -> s.rung
    | None -> Serial (* the ladder always terminates on its bottom rung *)
  in
  Telemetry.Counter.add c_degradations (List.length (List.filter (fun s -> not s.taken) steps));
  (match chosen with
  | Shared_nothing -> Telemetry.Counter.incr c_shared_nothing
  | Scr -> Telemetry.Counter.incr c_scr
  | Lock_based -> Telemetry.Counter.incr c_lock_based
  | Serial -> Telemetry.Counter.incr c_serial);
  { chosen; steps }

let degraded t = t.chosen <> Shared_nothing

let pp_step fmt s =
  Format.fprintf fmt "%s %s: %s"
    (if s.taken then "->" else " x")
    (rung_name s.rung) s.reason

let pp fmt t =
  Format.fprintf fmt "@[<v>rung: %s@ %a@]" (rung_name t.chosen)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_step)
    t.steps
