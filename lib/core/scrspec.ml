(* State-compute replication (Xu et al., arXiv 2309.14647) — the static
   half: derive, from an NF's AST, everything the runtime needs to let
   every core keep a full state replica and replay other cores' updates
   from a compact per-packet digest.

   The digest is derived from the *packet*, at dispatch time, not from
   the computed write effects: it is the set of header fields (plus
   arrival port / frame length / timestamp when read) that feed any
   write path of the NF.  Each replica then re-executes only the
   {e write-slice} of the program — the original statement tree with
   every subtree that cannot reach a state write pruned to [Drop] — on a
   packet reconstructed from the digest.  Because the slice preserves
   every binder and branch condition on the way to a write, and all
   state operations are deterministic, replaying the global packet
   stream in arrival order drives every replica through exactly the
   sequential state trajectory. *)

type t = {
  nf : Dsl.Ast.t;
  slice : Dsl.Ast.t;
  fields : Packet.Field.t list;
  needs_port : bool;
  needs_len : bool;
  needs_ts : bool;
  written_objects : string list;
  digest_bytes : int;
}

let default_max_bytes = 64

(* --- write classification --------------------------------------------------- *)

let rec stmt_writes (s : Dsl.Ast.stmt) =
  match s with
  | Dsl.Ast.Map_put _ | Dsl.Ast.Map_erase _ | Dsl.Ast.Vec_set _ | Dsl.Ast.Chain_alloc _
  | Dsl.Ast.Chain_rejuv _ | Dsl.Ast.Chain_expire _ | Dsl.Ast.Sketch_touch _ ->
      true
  | Dsl.Ast.If (_, t, f) -> stmt_writes t || stmt_writes f
  | Dsl.Ast.Let (_, _, k)
  | Dsl.Ast.Map_get { k; _ }
  | Dsl.Ast.Vec_get { k; _ }
  | Dsl.Ast.Sketch_query { k; _ }
  | Dsl.Ast.Set_field (_, _, k) ->
      stmt_writes k
  | Dsl.Ast.Forward _ | Dsl.Ast.Drop -> false

let nf_writes (nf : Dsl.Ast.t) = stmt_writes nf.Dsl.Ast.process

let written_objects (nf : Dsl.Ast.t) =
  let objs = ref [] in
  let add o = if not (List.mem o !objs) then objs := o :: !objs in
  let rec go (s : Dsl.Ast.stmt) =
    match s with
    | Dsl.Ast.Map_put { obj; k; _ } | Dsl.Ast.Map_erase { obj; k; _ } ->
        add obj;
        go k
    | Dsl.Ast.Vec_set { obj; k; _ } ->
        add obj;
        go k
    | Dsl.Ast.Chain_alloc { obj; k_ok; k_fail; _ } ->
        add obj;
        go k_ok;
        go k_fail
    | Dsl.Ast.Chain_rejuv { obj; k; _ } ->
        add obj;
        go k
    | Dsl.Ast.Chain_expire { obj; purges; k; _ } ->
        add obj;
        (* each purge pair erases from the map (the key vector is only read) *)
        List.iter (fun (map, _keyvec) -> add map) purges;
        go k
    | Dsl.Ast.Sketch_touch { obj; k; _ } ->
        add obj;
        go k
    | Dsl.Ast.If (_, t, f) ->
        go t;
        go f
    | Dsl.Ast.Let (_, _, k)
    | Dsl.Ast.Map_get { k; _ }
    | Dsl.Ast.Vec_get { k; _ }
    | Dsl.Ast.Sketch_query { k; _ }
    | Dsl.Ast.Set_field (_, _, k) ->
        go k
    | Dsl.Ast.Forward _ | Dsl.Ast.Drop -> ()
  in
  go nf.Dsl.Ast.process;
  List.rev !objs

(* --- the write-slice --------------------------------------------------------- *)

(* Prune every subtree that cannot reach a state write to [Drop].  Reads
   ([Map_get], [Vec_get], [Sketch_query]), [Let] bindings, [Set_field]
   rewrites and [If] conditions are kept whenever their continuation still
   writes — they carry the data and control dependencies of the write —
   and dropped otherwise.  [Forward] becomes [Drop]: a replica replays
   state updates, it does not emit packets. *)
let rec slice_stmt (s : Dsl.Ast.stmt) : Dsl.Ast.stmt =
  if not (stmt_writes s) then Dsl.Ast.Drop
  else
    match s with
    | Dsl.Ast.If (c, t, f) -> Dsl.Ast.If (c, slice_stmt t, slice_stmt f)
    | Dsl.Ast.Let (x, e, k) -> Dsl.Ast.Let (x, e, slice_stmt k)
    | Dsl.Ast.Map_get ({ k; _ } as r) -> Dsl.Ast.Map_get { r with k = slice_stmt k }
    | Dsl.Ast.Map_put ({ k; _ } as r) -> Dsl.Ast.Map_put { r with k = slice_stmt k }
    | Dsl.Ast.Map_erase ({ k; _ } as r) -> Dsl.Ast.Map_erase { r with k = slice_stmt k }
    | Dsl.Ast.Vec_get ({ k; _ } as r) -> Dsl.Ast.Vec_get { r with k = slice_stmt k }
    | Dsl.Ast.Vec_set ({ k; _ } as r) -> Dsl.Ast.Vec_set { r with k = slice_stmt k }
    | Dsl.Ast.Chain_alloc ({ k_ok; k_fail; _ } as r) ->
        Dsl.Ast.Chain_alloc { r with k_ok = slice_stmt k_ok; k_fail = slice_stmt k_fail }
    | Dsl.Ast.Chain_rejuv ({ k; _ } as r) -> Dsl.Ast.Chain_rejuv { r with k = slice_stmt k }
    | Dsl.Ast.Chain_expire ({ k; _ } as r) -> Dsl.Ast.Chain_expire { r with k = slice_stmt k }
    | Dsl.Ast.Sketch_touch ({ k; _ } as r) -> Dsl.Ast.Sketch_touch { r with k = slice_stmt k }
    | Dsl.Ast.Sketch_query ({ k; _ } as r) -> Dsl.Ast.Sketch_query { r with k = slice_stmt k }
    | Dsl.Ast.Set_field (f, e, k) -> Dsl.Ast.Set_field (f, e, slice_stmt k)
    | Dsl.Ast.Forward _ | Dsl.Ast.Drop -> Dsl.Ast.Drop

let slice_nf (nf : Dsl.Ast.t) =
  {
    nf with
    Dsl.Ast.name = nf.Dsl.Ast.name ^ "+scr-slice";
    process = slice_stmt nf.Dsl.Ast.process;
  }

(* --- digest field analysis ---------------------------------------------------- *)

type uses = {
  mutable u_fields : Packet.Field.t list;
  mutable u_port : bool;
  mutable u_len : bool;
  mutable u_ts : bool;
}

let rec expr_uses u (e : Dsl.Ast.expr) =
  match e with
  | Dsl.Ast.Field f -> if not (List.mem f u.u_fields) then u.u_fields <- f :: u.u_fields
  | Dsl.Ast.In_port -> u.u_port <- true
  | Dsl.Ast.Pkt_len -> u.u_len <- true
  | Dsl.Ast.Now -> u.u_ts <- true
  | Dsl.Ast.Bin (_, a, b) ->
      expr_uses u a;
      expr_uses u b
  | Dsl.Ast.Not e | Dsl.Ast.Cast (_, e) -> expr_uses u e
  | Dsl.Ast.Const _ | Dsl.Ast.Var _ | Dsl.Ast.Record_field _ -> ()

let key_uses u = List.iter (expr_uses u)

(* Walk the *slice*: fields read only on verdict-only paths never enter
   the digest.  Chain operations read the packet timestamp implicitly
   (allocate/rejuvenate touch at [now]; expiry thresholds against it). *)
let rec stmt_uses u (s : Dsl.Ast.stmt) =
  match s with
  | Dsl.Ast.If (c, t, f) ->
      expr_uses u c;
      stmt_uses u t;
      stmt_uses u f
  | Dsl.Ast.Let (_, e, k) ->
      expr_uses u e;
      stmt_uses u k
  | Dsl.Ast.Map_get { key; k; _ } ->
      key_uses u key;
      stmt_uses u k
  | Dsl.Ast.Map_put { key; value; k; _ } ->
      key_uses u key;
      expr_uses u value;
      stmt_uses u k
  | Dsl.Ast.Map_erase { key; k; _ } ->
      key_uses u key;
      stmt_uses u k
  | Dsl.Ast.Vec_get { index; k; _ } ->
      expr_uses u index;
      stmt_uses u k
  | Dsl.Ast.Vec_set { index; fields; k; _ } ->
      expr_uses u index;
      List.iter (fun (_, e) -> expr_uses u e) fields;
      stmt_uses u k
  | Dsl.Ast.Chain_alloc { k_ok; k_fail; _ } ->
      u.u_ts <- true;
      stmt_uses u k_ok;
      stmt_uses u k_fail
  | Dsl.Ast.Chain_rejuv { index; k; _ } ->
      u.u_ts <- true;
      expr_uses u index;
      stmt_uses u k
  | Dsl.Ast.Chain_expire { k; _ } ->
      u.u_ts <- true;
      stmt_uses u k
  | Dsl.Ast.Sketch_touch { key; k; _ } ->
      key_uses u key;
      stmt_uses u k
  | Dsl.Ast.Sketch_query { key; k; _ } ->
      key_uses u key;
      stmt_uses u k
  | Dsl.Ast.Set_field (_, e, k) ->
      expr_uses u e;
      stmt_uses u k
  | Dsl.Ast.Forward e -> expr_uses u e
  | Dsl.Ast.Drop -> ()

let field_bytes f = (Packet.Field.width f + 7) / 8

let derive (nf : Dsl.Ast.t) =
  let slice = slice_nf nf in
  let u = { u_fields = []; u_port = false; u_len = false; u_ts = false } in
  stmt_uses u slice.Dsl.Ast.process;
  let fields = List.sort Packet.Field.compare u.u_fields in
  let digest_bytes =
    List.fold_left (fun acc f -> acc + field_bytes f) 0 fields
    + (if u.u_port then 2 else 0)
    + (if u.u_len then 2 else 0)
    + if u.u_ts then 6 else 0
  in
  {
    nf;
    slice;
    fields;
    needs_port = u.u_port;
    needs_len = u.u_len;
    needs_ts = u.u_ts;
    written_objects = written_objects nf;
    digest_bytes;
  }

let admissible ?(max_bytes = default_max_bytes) nf =
  let t = derive nf in
  if t.written_objects = [] then
    Error
      "the NF never writes state: read-only replication (load-balance) is free, a digest \
       stream buys nothing"
  else if t.digest_bytes > max_bytes then
    Error
      (Printf.sprintf
         "the update digest needs %d bytes/pkt, above the %d-byte replication budget"
         t.digest_bytes max_bytes)
  else Ok t

let pp fmt t =
  Format.fprintf fmt "@[<v>scr digest: %d bytes/pkt@ fields: %s%s%s%s@ writes: %s@]"
    t.digest_bytes
    (String.concat ", " (List.map Packet.Field.to_string t.fields))
    (if t.needs_port then " +port" else "")
    (if t.needs_len then " +len" else "")
    (if t.needs_ts then " +ts" else "")
    (String.concat ", " t.written_objects)
