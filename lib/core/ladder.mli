(** The degradation ladder: Maestro's maintain-semantics-at-lower-speed
    contract (paper §4.4, §6) made explicit.

    The pipeline always produces a plan whose behavior matches the
    sequential NF; what degrades under adversity is {e speed}, one rung
    at a time:

    + {e shared-nothing} — full parallel speedup, per-core state shards
      steered by a solved RSS key (also the rung recorded for stateless /
      read-only NFs, which parallelize without a key);
    + {e lock-based} — every core runs, shared state behind the
      reader-writer lock; chosen when no RSS key exists, when the key
      search exhausts its budget, or when sharding rules block;
    + {e serial} — one core, zero contention; chosen when multi-queue
      dispatch itself is unavailable (more cores requested than the NIC
      has queues, or a single-core request).

    Every {!Pipeline.outcome} carries the ladder walked for it: which
    rungs were rejected, why, and which was chosen — so run reports can
    show {e why} a plan is slower than hoped rather than silently
    falling back. *)

type rung = Shared_nothing | Lock_based | Serial

val rung_name : rung -> string

type step = {
  rung : rung;
  taken : bool;  (** [true] for the chosen rung, [false] for rejected ones *)
  reason : string;  (** why this rung was rejected, or why it was chosen *)
}

type t = { chosen : rung; steps : step list }

val top : string -> t
(** A ladder that kept the top rung (no degradation), with the reason it
    was available. *)

val make : step list -> t
(** Build a ladder from the walked steps (ordered top rung first); the
    chosen rung is the first [taken] step.  Feeds the [ladder.*]
    telemetry counters. *)

val degraded : t -> bool
(** [true] when anything below the top rung was chosen. *)

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
